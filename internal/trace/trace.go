// Package trace collects the execution output of a PM2 cluster: the
// "[node0] value = 1" lines produced by pm2_printf and the bare
// "Segmentation fault" lines of crashing threads, exactly as the paper's
// figures show them (Figs. 1–4, 8, 9).
package trace

import (
	"io"
	"regexp"
	"strings"
)

// Log accumulates cluster output. It has no locking of its own: under
// the parallel kernel every append reaches it through an ambient event
// or an Actor.Commit closure, both of which internal/simtime runs on
// the driving goroutine in deterministic merge order — so the log is
// effectively lane-confined and its bytes are identical at any worker
// count.
type Log struct {
	lines   []string
	partial map[int]*strings.Builder
	w       io.Writer
}

// New returns an empty log.
func New() *Log {
	return &Log{partial: make(map[int]*strings.Builder)}
}

// SetWriter mirrors completed lines to w as they are emitted (for the
// command-line tools).
func (l *Log) SetWriter(w io.Writer) { l.w = w }

func (l *Log) emit(line string) {
	l.lines = append(l.lines, line)
	if l.w != nil {
		io.WriteString(l.w, line+"\n")
	}
}

// Printf appends text produced by pm2_printf on node. Output is buffered
// per node and flushed line-by-line with the "[nodeN] " prefix, matching
// the pm2load console format.
func (l *Log) Printf(node int, text string) {
	b, ok := l.partial[node]
	if !ok {
		b = &strings.Builder{}
		l.partial[node] = b
	}
	for _, r := range text {
		if r == '\n' {
			l.emit("[node" + itoa(node) + "] " + b.String())
			b.Reset()
			continue
		}
		b.WriteRune(r)
	}
}

// Raw appends an untagged line (e.g. "Segmentation fault").
func (l *Log) Raw(line string) { l.emit(line) }

// Flush force-completes any partial line on node.
func (l *Log) Flush(node int) {
	if b, ok := l.partial[node]; ok && b.Len() > 0 {
		l.emit("[node" + itoa(node) + "] " + b.String())
		b.Reset()
	}
}

// Restore replaces the line history with a checkpointed one. Partial
// per-node output is discarded: checkpoints are only taken quiesced,
// when no thread holds an unterminated line.
func (l *Log) Restore(lines []string) {
	l.lines = append([]string(nil), lines...)
	l.partial = make(map[int]*strings.Builder)
}

// Lines returns the completed lines so far.
func (l *Log) Lines() []string { return append([]string(nil), l.lines...) }

// String returns the whole log as one newline-joined string.
func (l *Log) String() string { return strings.Join(l.lines, "\n") }

// Len returns the number of completed lines.
func (l *Log) Len() int { return len(l.lines) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

var hexToken = regexp.MustCompile(`\b[0-9a-f]{7,8}\b`)

// MaskPointers replaces printed pointer values (7–8 hex digits, as produced
// by %p) with "&ADDR", so traces can be compared across configurations where
// allocation addresses differ.
func MaskPointers(lines []string) []string {
	out := make([]string, len(lines))
	for i, s := range lines {
		out[i] = hexToken.ReplaceAllString(s, "&ADDR")
	}
	return out
}

// Equal compares two line slices and returns the index of the first
// difference, or -1 if they are identical.
func Equal(a, b []string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
