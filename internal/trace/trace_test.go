package trace

import (
	"strings"
	"testing"
)

func TestPrintfLineAssembly(t *testing.T) {
	l := New()
	l.Printf(0, "value = ")
	l.Printf(0, "1\n")
	l.Printf(1, "other\npartial")
	got := l.Lines()
	want := []string{"[node0] value = 1", "[node1] other"}
	if Equal(got, want) != -1 {
		t.Fatalf("lines = %q", got)
	}
	l.Flush(1)
	if l.Lines()[2] != "[node1] partial" {
		t.Fatalf("flush = %q", l.Lines())
	}
	l.Flush(1) // idempotent
	if l.Len() != 3 {
		t.Fatal("double flush emitted")
	}
}

func TestInterleavedNodesKeepSeparateBuffers(t *testing.T) {
	l := New()
	l.Printf(0, "aa")
	l.Printf(1, "bb")
	l.Printf(0, "cc\n")
	l.Printf(1, "dd\n")
	want := []string{"[node0] aacc", "[node1] bbdd"}
	if Equal(l.Lines(), want) != -1 {
		t.Fatalf("lines = %q", l.Lines())
	}
}

func TestRawLine(t *testing.T) {
	l := New()
	l.Printf(0, "Element 101 = 57654\n")
	l.Raw("Segmentation fault")
	if l.Lines()[1] != "Segmentation fault" {
		t.Fatalf("lines = %q", l.Lines())
	}
}

func TestWriterMirrors(t *testing.T) {
	l := New()
	var sb strings.Builder
	l.SetWriter(&sb)
	l.Printf(3, "hello\n")
	if sb.String() != "[node3] hello\n" {
		t.Fatalf("writer got %q", sb.String())
	}
}

func TestMaskPointers(t *testing.T) {
	in := []string{"I am thread eeff0020", "Element 0 = 1", "at 1801002c ok"}
	out := MaskPointers(in)
	if out[0] != "I am thread &ADDR" || out[1] != "Element 0 = 1" || out[2] != "at &ADDR ok" {
		t.Fatalf("masked = %q", out)
	}
}

func TestEqualReportsFirstDiff(t *testing.T) {
	a := []string{"x", "y", "z"}
	if Equal(a, []string{"x", "y", "z"}) != -1 {
		t.Fatal("equal slices reported diff")
	}
	if got := Equal(a, []string{"x", "q", "z"}); got != 1 {
		t.Fatalf("diff index = %d", got)
	}
	if got := Equal(a, []string{"x", "y"}); got != 2 {
		t.Fatalf("length diff index = %d", got)
	}
}

func TestStringJoins(t *testing.T) {
	l := New()
	l.Printf(0, "a\nb\n")
	if l.String() != "[node0] a\n[node0] b" {
		t.Fatalf("String = %q", l.String())
	}
}
