package fault

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "crash:1@3000us;partition:0-3@1000us..2000us;slow:2x4@1000us..2000us"
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	// String renders the schedule, which is sorted by time.
	sorted := "partition:0-3@1000us..2000us;slow:2x4@1000us..2000us;crash:1@3000us"
	if got := p.String(); got != sorted {
		t.Fatalf("round trip: got %q want %q", got, sorted)
	}
	if len(p.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(p.Events))
	}
	if p.Events[0].Kind == Crash {
		t.Fatalf("events not sorted by time: %v first", p.Events[0])
	}
}

func TestParseUnits(t *testing.T) {
	p, err := Parse("crash:1@3ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Events[0].At; got != 3*simtime.Millisecond {
		t.Fatalf("3ms parsed as %d", got)
	}
	p, err = Parse("crash:1@500")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Events[0].At; got != 500*simtime.Microsecond {
		t.Fatalf("bare 500 should default to µs, got %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"crash:1",                     // no time
		"explode:1@3ms",               // unknown kind
		"partition:1@1ms..2ms",        // one endpoint
		"partition:0-1@2ms..1ms",      // empty window
		"slow:1x0@1ms..2ms;crash:zz@", // two broken events
		"crash:1@-5us",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	ok, _ := Parse("crash:3@1ms;slow:1x2@1ms..2ms")
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for spec, wantSub := range map[string]string{
		"crash:0@1ms":             "rank 0",
		"crash:9@1ms":             "outside",
		"partition:0-9@1ms..2ms":  "outside",
		"partition:2-2@1ms..2ms":  "itself",
		"crash:1@1ms;crash:1@2ms": "twice",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		err = p.Validate(4)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Validate(%q) = %v, want error containing %q", spec, err, wantSub)
		}
	}
}

func TestStateCrash(t *testing.T) {
	p, _ := Parse("crash:2@1000us")
	s := NewState(p)
	if s.Crashed(2, 999*simtime.Microsecond) {
		t.Fatal("crashed before its time")
	}
	if !s.Crashed(2, 1000*simtime.Microsecond) {
		t.Fatal("not crashed at its time")
	}
	if s.Crashed(1, 5000*simtime.Microsecond) {
		t.Fatal("wrong node crashed")
	}
	// A message in flight at the crash instant is dropped if it would
	// arrive after the node died.
	start := 990 * simtime.Microsecond
	arrive := 1005 * simtime.Microsecond
	if got, drop := s.Adjust(0, 2, start, arrive); !drop || got != arrive {
		t.Fatalf("Adjust to dead node = (%d, %v), want (%d, true)", got, drop, arrive)
	}
	// One that lands before the crash is delivered.
	if _, drop := s.Adjust(0, 2, start, 995*simtime.Microsecond); drop {
		t.Fatal("message landing before the crash was dropped")
	}
	// The dead node sends nothing.
	if _, drop := s.Adjust(2, 0, 1100*simtime.Microsecond, 1110*simtime.Microsecond); !drop {
		t.Fatal("send from a dead node was delivered")
	}
}

func TestStatePartitionAndSlow(t *testing.T) {
	p, _ := Parse("partition:0-1@1000us..2000us;slow:3x4@1000us..2000us")
	s := NewState(p)
	// Partitioned send: held at the partition, delivered at the heal
	// instant (store-and-forward).
	start := 1500 * simtime.Microsecond
	arrive := 1510 * simtime.Microsecond
	got, drop := s.Adjust(0, 1, start, arrive)
	want := 2000 * simtime.Microsecond
	if drop || got != want {
		t.Fatalf("partitioned Adjust = (%d, %v), want (%d, false)", got, drop, want)
	}
	// Symmetric.
	if got2, _ := s.Adjust(1, 0, start, arrive); got2 != want {
		t.Fatalf("partition not symmetric: %d vs %d", got2, want)
	}
	// Outside the window: untouched.
	if got3, _ := s.Adjust(0, 1, 2500*simtime.Microsecond, 2510*simtime.Microsecond); got3 != 2510*simtime.Microsecond {
		t.Fatalf("healed partition still delaying: %d", got3)
	}
	// Unrelated pair: untouched.
	if got4, _ := s.Adjust(0, 2, start, arrive); got4 != arrive {
		t.Fatalf("partition leaked to unrelated pair: %d", got4)
	}
	// Slow node: wire portion multiplied.
	got5, _ := s.Adjust(3, 2, start, arrive)
	if want5 := start + (arrive-start)*4; got5 != want5 {
		t.Fatalf("slow Adjust = %d, want %d", got5, want5)
	}
	// A send that would arrive after the heal instant anyway keeps its
	// fault-free arrival time.
	lateStart := 1990 * simtime.Microsecond
	lateArrive := 2200 * simtime.Microsecond
	if got6, _ := s.Adjust(0, 1, lateStart, lateArrive); got6 != lateArrive {
		t.Fatalf("late in-window Adjust = %d, want %d", got6, lateArrive)
	}
}

func TestStateWindowQueries(t *testing.T) {
	p, _ := Parse("partition:0-1@1000us..2000us;slow:3x4@1500us..2500us;crash:2@3000us")
	s := NewState(p)
	if !s.Partitioned(0, 1, 1500*simtime.Microsecond) || !s.Partitioned(1, 0, 1000*simtime.Microsecond) {
		t.Fatal("open partition window not reported")
	}
	if s.Partitioned(0, 1, 2000*simtime.Microsecond) {
		t.Fatal("healed partition still reported (Until is exclusive)")
	}
	if s.Partitioned(0, 2, 1500*simtime.Microsecond) {
		t.Fatal("partition leaked to an unrelated pair")
	}
	if !s.Isolated(1, 1500*simtime.Microsecond) || s.Isolated(3, 1500*simtime.Microsecond) {
		t.Fatal("Isolated wrong")
	}
	if got := s.ActiveAt(1600 * simtime.Microsecond); len(got) != 2 {
		t.Fatalf("ActiveAt(1600us) = %d events, want 2 (partition + slow)", len(got))
	}
	if got := s.ActiveAt(2200 * simtime.Microsecond); len(got) != 1 || got[0].Kind != Slow {
		t.Fatalf("ActiveAt(2200us) = %v, want just the slow window", got)
	}
	// Transition boundaries in order: 1000, 1500, 2000, 2500, 3000.
	wantBounds := []simtime.Time{
		1000 * simtime.Microsecond, 1500 * simtime.Microsecond,
		2000 * simtime.Microsecond, 2500 * simtime.Microsecond,
		3000 * simtime.Microsecond,
	}
	at := simtime.Time(0)
	for _, want := range wantBounds {
		next, ok := s.NextTransition(at)
		if !ok || next != want {
			t.Fatalf("NextTransition(%d) = (%d, %v), want %d", at, next, ok, want)
		}
		at = next
	}
	if _, ok := s.NextTransition(at); ok {
		t.Fatal("transitions past the plan's end")
	}
}

// TestAdjustPartitionFIFO is the store-and-forward healing property:
// for any partition plan and any per-pair sequence of sends whose
// fault-free arrivals are ordered (the per-link serialization bip
// enforces), the adjusted deliveries must preserve that order — two
// sends held by the window must not reorder against each other or
// against post-heal traffic.
func TestAdjustPartitionFIFO(t *testing.T) {
	rng := newTestRNG(0x5eed)
	for trial := 0; trial < 200; trial++ {
		// Random plan: 1-3 partition windows over a 4-node cluster.
		var specs []string
		for w, nw := 0, 1+rng.intn(3); w < nw; w++ {
			a := rng.intn(4)
			b := (a + 1 + rng.intn(3)) % 4
			at := 100 + rng.intn(3000)
			until := at + 100 + rng.intn(3000)
			specs = append(specs, sprintfPartition(a, b, at, until))
		}
		p, err := Parse(strings.Join(specs, ";"))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s := NewState(p)
		// Random per-pair send sequence with increasing fault-free
		// arrivals (starts increase too; wire time varies per send).
		src, dst := rng.intn(4), 0
		for dst = rng.intn(4); dst == src; dst = rng.intn(4) {
		}
		start := simtime.Time(rng.intn(500)) * simtime.Microsecond
		arrive := start + simtime.Time(1+rng.intn(50))*simtime.Microsecond
		prev := simtime.Time(-1)
		for i := 0; i < 40; i++ {
			got, _ := s.Adjust(src, dst, start, arrive)
			if got < prev {
				t.Fatalf("trial %d: FIFO violated on %d->%d: send(start=%d arrive=%d) delivered at %d, after %d",
					trial, src, dst, start, arrive, got, prev)
			}
			prev = got
			step := simtime.Time(1+rng.intn(200)) * simtime.Microsecond
			start += step
			next := start + simtime.Time(1+rng.intn(50))*simtime.Microsecond
			if next <= arrive { // per-link serialization: arrivals are ordered
				next = arrive + simtime.Time(1+rng.intn(10))*simtime.Microsecond
			}
			arrive = next
		}
	}
}

func sprintfPartition(a, b, atUS, untilUS int) string {
	return "partition:" + strconv.Itoa(a) + "-" + strconv.Itoa(b) + "@" +
		strconv.Itoa(atUS) + "us.." + strconv.Itoa(untilUS) + "us"
}

// testRNG is a tiny deterministic xorshift generator so the property
// test explores the same trials on every run.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed | 1} }

func (r *testRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *testRNG) intn(n int) int { return int(r.next() % uint64(n)) }
