package fault

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "crash:1@3000us;partition:0-3@1000us..2000us;slow:2x4@1000us..2000us"
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	// String renders the schedule, which is sorted by time.
	sorted := "partition:0-3@1000us..2000us;slow:2x4@1000us..2000us;crash:1@3000us"
	if got := p.String(); got != sorted {
		t.Fatalf("round trip: got %q want %q", got, sorted)
	}
	if len(p.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(p.Events))
	}
	if p.Events[0].Kind == Crash {
		t.Fatalf("events not sorted by time: %v first", p.Events[0])
	}
}

func TestParseUnits(t *testing.T) {
	p, err := Parse("crash:1@3ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Events[0].At; got != 3*simtime.Millisecond {
		t.Fatalf("3ms parsed as %d", got)
	}
	p, err = Parse("crash:1@500")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Events[0].At; got != 500*simtime.Microsecond {
		t.Fatalf("bare 500 should default to µs, got %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"crash:1",                     // no time
		"explode:1@3ms",               // unknown kind
		"partition:1@1ms..2ms",        // one endpoint
		"partition:0-1@2ms..1ms",      // empty window
		"slow:1x0@1ms..2ms;crash:zz@", // two broken events
		"crash:1@-5us",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	ok, _ := Parse("crash:3@1ms;slow:1x2@1ms..2ms")
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for spec, wantSub := range map[string]string{
		"crash:0@1ms":             "rank 0",
		"crash:9@1ms":             "outside",
		"partition:0-9@1ms..2ms":  "outside",
		"partition:2-2@1ms..2ms":  "itself",
		"crash:1@1ms;crash:1@2ms": "twice",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		err = p.Validate(4)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Validate(%q) = %v, want error containing %q", spec, err, wantSub)
		}
	}
}

func TestStateCrash(t *testing.T) {
	p, _ := Parse("crash:2@1000us")
	s := NewState(p)
	if s.Crashed(2, 999*simtime.Microsecond) {
		t.Fatal("crashed before its time")
	}
	if !s.Crashed(2, 1000*simtime.Microsecond) {
		t.Fatal("not crashed at its time")
	}
	if s.Crashed(1, 5000*simtime.Microsecond) {
		t.Fatal("wrong node crashed")
	}
	// A message in flight at the crash instant is dropped if it would
	// arrive after the node died.
	start := 990 * simtime.Microsecond
	arrive := 1005 * simtime.Microsecond
	if got, drop := s.Adjust(0, 2, start, arrive); !drop || got != arrive {
		t.Fatalf("Adjust to dead node = (%d, %v), want (%d, true)", got, drop, arrive)
	}
	// One that lands before the crash is delivered.
	if _, drop := s.Adjust(0, 2, start, 995*simtime.Microsecond); drop {
		t.Fatal("message landing before the crash was dropped")
	}
	// The dead node sends nothing.
	if _, drop := s.Adjust(2, 0, 1100*simtime.Microsecond, 1110*simtime.Microsecond); !drop {
		t.Fatal("send from a dead node was delivered")
	}
}

func TestStatePartitionAndSlow(t *testing.T) {
	p, _ := Parse("partition:0-1@1000us..2000us;slow:3x4@1000us..2000us")
	s := NewState(p)
	// Partitioned send: delivery shifts by the remaining window.
	start := 1500 * simtime.Microsecond
	arrive := 1510 * simtime.Microsecond
	got, drop := s.Adjust(0, 1, start, arrive)
	want := arrive + 500*simtime.Microsecond
	if drop || got != want {
		t.Fatalf("partitioned Adjust = (%d, %v), want (%d, false)", got, drop, want)
	}
	// Symmetric.
	if got2, _ := s.Adjust(1, 0, start, arrive); got2 != want {
		t.Fatalf("partition not symmetric: %d vs %d", got2, want)
	}
	// Outside the window: untouched.
	if got3, _ := s.Adjust(0, 1, 2500*simtime.Microsecond, 2510*simtime.Microsecond); got3 != 2510*simtime.Microsecond {
		t.Fatalf("healed partition still delaying: %d", got3)
	}
	// Unrelated pair: untouched.
	if got4, _ := s.Adjust(0, 2, start, arrive); got4 != arrive {
		t.Fatalf("partition leaked to unrelated pair: %d", got4)
	}
	// Slow node: wire portion multiplied.
	got5, _ := s.Adjust(3, 2, start, arrive)
	if want5 := start + (arrive-start)*4; got5 != want5 {
		t.Fatalf("slow Adjust = %d, want %d", got5, want5)
	}
}
