// Package fault models node and link failures for the simulated PM2
// cluster: fail-stop node crashes, temporary network partitions and
// slow links. A Plan is a deterministic schedule of such events,
// parsed from a compact textual spec; State is the runtime view the
// network layer consults on every send (bip.Network.SetFaults) and the
// runtime consults when it gates a dead node's lane.
//
// Semantics:
//
//   - crash:N@T — node N fail-stops at virtual time T. Its lane drains
//     to a tombstone (the runtime executes nothing on it after T) and
//     every message that would arrive at or after T is dropped. The
//     node's memory remains readable by the simulator, which is what
//     lets the heartbeat-detection path evacuate its resident threads.
//   - partition:A-B@T1..T2 — messages between A and B (either
//     direction) whose send starts inside [T1, T2) are held and
//     delivered at the heal instant T2 (or at their fault-free arrival
//     time, if that is later), modeling store-and-forward recovery.
//     Nothing is lost, and because max(arrive, T2) is monotone in the
//     fault-free arrival time, per-pair FIFO delivery order survives
//     the healing: two in-window sends cannot reorder against each
//     other or against post-heal traffic.
//   - slow:NxF@T1..T2 — messages to or from node N whose send starts
//     inside [T1, T2) take F times their wire time.
//
// Times accept ns/us/µs/ms/s suffixes (default µs). Events are
// separated by ';'.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/simtime"
)

// Kind enumerates the failure modes.
type Kind int

const (
	// Crash is a fail-stop node failure at Event.At.
	Crash Kind = iota
	// Partition delays traffic between Event.Node and Event.Peer
	// during [Event.At, Event.Until).
	Partition
	// Slow multiplies the wire time of traffic touching Event.Node by
	// Event.Factor during [Event.At, Event.Until).
	Slow
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Partition:
		return "partition"
	case Slow:
		return "slow"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// Event is one scheduled failure.
type Event struct {
	Kind Kind
	// Node is the failing node (crash, slow) or one endpoint of the
	// partition.
	Node int
	// Peer is the other endpoint of a partition.
	Peer int
	// At is when the failure begins.
	At simtime.Time
	// Until ends a partition or slow window (exclusive). Unused for
	// crashes — a crash is forever.
	Until simtime.Time
	// Factor is the slow-node wire-time multiplier (>= 1).
	Factor int
}

// String renders the event in the Parse syntax.
func (ev Event) String() string {
	switch ev.Kind {
	case Crash:
		return fmt.Sprintf("crash:%d@%dus", ev.Node, int64(ev.At)/int64(simtime.Microsecond))
	case Partition:
		return fmt.Sprintf("partition:%d-%d@%dus..%dus", ev.Node, ev.Peer,
			int64(ev.At)/int64(simtime.Microsecond), int64(ev.Until)/int64(simtime.Microsecond))
	default:
		return fmt.Sprintf("slow:%dx%d@%dus..%dus", ev.Node, ev.Factor,
			int64(ev.At)/int64(simtime.Microsecond), int64(ev.Until)/int64(simtime.Microsecond))
	}
}

// Plan is a deterministic failure schedule, sorted by (At, spec order).
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// String renders the plan in the Parse syntax.
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, ev := range p.Events {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ";")
}

// Parse reads a plan spec: ';'-separated events in the syntax
// documented on the package. An empty spec yields an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, ev)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p, nil
}

func parseEvent(s string) (Event, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q wants kind:spec", s)
	}
	switch kind {
	case "crash":
		// crash:N@T
		nodeStr, atStr, ok := strings.Cut(rest, "@")
		if !ok {
			return Event{}, fmt.Errorf("fault: crash event %q wants crash:N@T", s)
		}
		node, err := strconv.Atoi(nodeStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad node in %q: %w", s, err)
		}
		at, err := parseTime(atStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad time in %q: %w", s, err)
		}
		return Event{Kind: Crash, Node: node, At: at}, nil
	case "partition":
		// partition:A-B@T1..T2
		pair, window, ok := strings.Cut(rest, "@")
		if !ok {
			return Event{}, fmt.Errorf("fault: partition event %q wants partition:A-B@T1..T2", s)
		}
		aStr, bStr, ok := strings.Cut(pair, "-")
		if !ok {
			return Event{}, fmt.Errorf("fault: partition event %q wants two endpoints A-B", s)
		}
		a, err := strconv.Atoi(aStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad endpoint in %q: %w", s, err)
		}
		b, err := strconv.Atoi(bStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad endpoint in %q: %w", s, err)
		}
		at, until, err := parseWindow(window)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad window in %q: %w", s, err)
		}
		return Event{Kind: Partition, Node: a, Peer: b, At: at, Until: until}, nil
	case "slow":
		// slow:NxF@T1..T2
		pair, window, ok := strings.Cut(rest, "@")
		if !ok {
			return Event{}, fmt.Errorf("fault: slow event %q wants slow:NxF@T1..T2", s)
		}
		nodeStr, facStr, ok := strings.Cut(pair, "x")
		if !ok {
			return Event{}, fmt.Errorf("fault: slow event %q wants a xF factor", s)
		}
		node, err := strconv.Atoi(nodeStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad node in %q: %w", s, err)
		}
		factor, err := strconv.Atoi(facStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad factor in %q: %w", s, err)
		}
		at, until, err := parseWindow(window)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad window in %q: %w", s, err)
		}
		return Event{Kind: Slow, Node: node, Factor: factor, At: at, Until: until}, nil
	}
	return Event{}, fmt.Errorf("fault: unknown event kind %q (want crash, partition or slow)", kind)
}

func parseWindow(s string) (from, until simtime.Time, err error) {
	fromStr, untilStr, ok := strings.Cut(s, "..")
	if !ok {
		return 0, 0, fmt.Errorf("window %q wants T1..T2", s)
	}
	if from, err = parseTime(fromStr); err != nil {
		return 0, 0, err
	}
	if until, err = parseTime(untilStr); err != nil {
		return 0, 0, err
	}
	if until <= from {
		return 0, 0, fmt.Errorf("window %q is empty", s)
	}
	return from, until, nil
}

func parseTime(s string) (simtime.Time, error) {
	s = strings.TrimSpace(s)
	unit := simtime.Microsecond
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, s = simtime.Nanosecond, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "us"):
		s = strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "µs"):
		s = strings.TrimSuffix(s, "µs")
	case strings.HasSuffix(s, "ms"):
		unit, s = simtime.Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		unit, s = simtime.Second, strings.TrimSuffix(s, "s")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative time %q", s)
	}
	return simtime.Time(v) * unit, nil
}

// Validate checks the plan against a cluster size: every rank in
// range, rank 0 never crashes (it hosts the global negotiation lock
// and the defragmentation coordinator), factors sane, and at most one
// crash per node.
func (p *Plan) Validate(nodes int) error {
	if p.Empty() {
		return nil
	}
	crashed := map[int]bool{}
	for _, ev := range p.Events {
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("fault: %s names node %d outside the %d-node cluster", ev, ev.Node, nodes)
		}
		switch ev.Kind {
		case Crash:
			if ev.Node == 0 {
				return fmt.Errorf("fault: %s — rank 0 hosts the global lock manager and cannot crash", ev)
			}
			if crashed[ev.Node] {
				return fmt.Errorf("fault: node %d crashes twice", ev.Node)
			}
			crashed[ev.Node] = true
		case Partition:
			if ev.Peer < 0 || ev.Peer >= nodes {
				return fmt.Errorf("fault: %s names node %d outside the %d-node cluster", ev, ev.Peer, nodes)
			}
			if ev.Peer == ev.Node {
				return fmt.Errorf("fault: %s partitions a node from itself", ev)
			}
		case Slow:
			if ev.Factor < 1 {
				return fmt.Errorf("fault: %s wants a factor >= 1", ev)
			}
		}
	}
	return nil
}

// Crashes returns the crash events of the plan in schedule order.
func (p *Plan) Crashes() []Event {
	if p.Empty() {
		return nil
	}
	var out []Event
	for _, ev := range p.Events {
		if ev.Kind == Crash {
			out = append(out, ev)
		}
	}
	return out
}

// State is the runtime fault view: it implements the network-layer
// adjustment hook (bip.Network.SetFaults takes exactly this Adjust
// signature) and answers liveness queries for the runtime. All methods
// are pure functions of the plan plus the query times, so every
// consultation is deterministic.
type State struct {
	plan    *Plan
	crashAt map[int]simtime.Time
}

// NewState builds the runtime view of a plan.
func NewState(p *Plan) *State {
	s := &State{plan: p, crashAt: map[int]simtime.Time{}}
	for _, ev := range p.Crashes() {
		s.crashAt[ev.Node] = ev.At
	}
	return s
}

// Plan returns the schedule the state was built from.
func (s *State) Plan() *Plan { return s.plan }

// CrashTime returns node n's crash time, if the plan crashes it.
func (s *State) CrashTime(n int) (simtime.Time, bool) {
	t, ok := s.crashAt[n]
	return t, ok
}

// Crashed reports whether node n is dead at time t.
func (s *State) Crashed(n int, t simtime.Time) bool {
	at, ok := s.crashAt[n]
	return ok && t >= at
}

// Partitioned reports whether a partition window separating nodes a
// and b is open at time t. Like every State query it is a pure
// function of the plan, so it may be consulted from any lane.
func (s *State) Partitioned(a, b int, t simtime.Time) bool {
	for _, ev := range s.plan.Events {
		if ev.Kind == Partition && t >= ev.At && t < ev.Until &&
			((ev.Node == a && ev.Peer == b) || (ev.Node == b && ev.Peer == a)) {
			return true
		}
	}
	return false
}

// Isolated reports whether node n has any open partition window at
// time t — the coarse "is this node cut off from someone" signal the
// failure detector uses to distinguish a live-but-unreachable node
// from a crashed one.
func (s *State) Isolated(n int, t simtime.Time) bool {
	for _, ev := range s.plan.Events {
		if ev.Kind == Partition && t >= ev.At && t < ev.Until &&
			(ev.Node == n || ev.Peer == n) {
			return true
		}
	}
	return false
}

// ActiveAt returns the partition and slow events whose windows are
// open at time t, in schedule order. Crashes are permanent and are
// answered by Crashed/CrashTime instead.
func (s *State) ActiveAt(t simtime.Time) []Event {
	var out []Event
	for _, ev := range s.plan.Events {
		if ev.Kind != Crash && t >= ev.At && t < ev.Until {
			out = append(out, ev)
		}
	}
	return out
}

// NextTransition returns the earliest event boundary (an At or an
// Until of any event) strictly after t, or 0, false when the plan has
// no further transitions — what a scheduler needs to re-examine the
// fault state exactly when it can change.
func (s *State) NextTransition(t simtime.Time) (simtime.Time, bool) {
	var next simtime.Time
	found := false
	consider := func(x simtime.Time) {
		if x > t && (!found || x < next) {
			next, found = x, true
		}
	}
	for _, ev := range s.plan.Events {
		consider(ev.At)
		if ev.Kind != Crash {
			consider(ev.Until)
		}
	}
	return next, found
}

// Adjust is the per-send hook: given a message from src to dst whose
// send starts at start and would be delivered at arrive, it returns
// the (possibly delayed) delivery time and whether the message is
// dropped instead. Partitions and slow windows apply to sends that
// start inside their window; a crash drops everything that would
// arrive at or after the crash instant.
func (s *State) Adjust(src, dst int, start, arrive simtime.Time) (simtime.Time, bool) {
	for _, ev := range s.plan.Events {
		switch ev.Kind {
		case Partition:
			if start >= ev.At && start < ev.Until &&
				((ev.Node == src && ev.Peer == dst) || (ev.Node == dst && ev.Peer == src)) {
				// Store-and-forward at heal time: the message is held at
				// the partition and delivered at the heal instant. Taking
				// max(arrive, Until) — rather than shifting every send by
				// its own remaining window — keeps the adjustment monotone
				// in the fault-free arrival time, so per-pair FIFO order
				// is preserved across the healing.
				if arrive < ev.Until {
					arrive = ev.Until
				}
			}
		case Slow:
			if start >= ev.At && start < ev.Until && (ev.Node == src || ev.Node == dst) {
				arrive = start + (arrive-start)*simtime.Time(ev.Factor)
			}
		}
	}
	if s.Crashed(dst, arrive) || s.Crashed(src, start) {
		return arrive, true
	}
	return arrive, false
}
