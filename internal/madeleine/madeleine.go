// Package madeleine reproduces the Madeleine communication layer used by
// PM2: an efficient, portable message-passing interface on top of the
// low-level BIP driver.
//
// It provides two things. Buffer is an incremental pack/unpack facility
// (Madeleine's pack/unpack calls) used to marshal thread resources, slot
// images and protocol records. Endpoint adds tagged dispatch and a
// request/reply (LRPC-style) discipline on top of bip.NIC, which the PM2
// runtime uses for migration, remote thread creation and the slot
// negotiation protocol.
package madeleine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/bip"
	"repro/internal/simtime"
)

// ActorT is the node CPU actor type endpoints bind to.
type ActorT = simtime.Actor

// ErrUnderflow is reported by Buffer when unpacking past the end of a
// message.
var ErrUnderflow = errors.New("madeleine: unpack past end of message")

// Buffer packs and unpacks typed fields in little-endian order. Packing
// appends; unpacking consumes from the front. Unpack errors are sticky: the
// first failure poisons the buffer and zero values are returned thereafter.
//
// Besides the copying Pack* calls, a Buffer accepts *borrowed* sections
// (PackBytesRef, PackBytesVec): iovec-style spans that are recorded by
// reference and spliced into the byte stream only when the message is
// materialized — once, at Send/Call time, directly into the wire body. The
// caller must keep a borrowed span stable until the buffer is sent (or
// Bytes() is called); the wire format is identical to PackBytes.
type Buffer struct {
	data []byte
	off  int
	err  error
	// refs are the borrowed sections, each spliced after data[:at].
	// at values are non-decreasing; refLen caches their total size.
	refs   []bufRef
	refLen int
}

type bufRef struct {
	at int
	b  []byte
}

// NewBuffer returns an empty pack buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// FromBytes returns an unpack buffer over data (not copied).
func FromBytes(data []byte) *Buffer { return &Buffer{data: data} }

// Bytes returns the packed message, materializing any borrowed sections
// into one contiguous slice (at most once: the refs are consumed).
func (b *Buffer) Bytes() []byte {
	b.flatten()
	return b.data
}

// flatten splices the borrowed sections into the inline stream.
func (b *Buffer) flatten() {
	if len(b.refs) == 0 {
		return
	}
	out := make([]byte, 0, b.Len())
	for _, seg := range b.segments() {
		out = append(out, seg...)
	}
	b.data, b.refs, b.refLen = out, b.refs[:0], 0
}

// segments returns the message as an ordered span list — the inline
// stream split around the borrowed sections — without materializing.
func (b *Buffer) segments() [][]byte {
	if len(b.refs) == 0 {
		return [][]byte{b.data}
	}
	out := make([][]byte, 0, 2*len(b.refs)+1)
	prev := 0
	for _, r := range b.refs {
		if r.at > prev {
			out = append(out, b.data[prev:r.at])
			prev = r.at
		}
		out = append(out, r.b)
	}
	if prev < len(b.data) {
		out = append(out, b.data[prev:])
	}
	return out
}

// Len returns the total packed length in bytes, borrowed sections included.
func (b *Buffer) Len() int { return len(b.data) + b.refLen }

// InlineLen returns the bytes of the message that live in the inline
// stream — everything except the borrowed sections. This is the portion a
// scatter-gather NIC must still copy (the express header words and length
// prefixes); the borrowed payload is gathered by DMA.
func (b *Buffer) InlineLen() int { return len(b.data) }

// Remaining returns the number of bytes not yet unpacked.
func (b *Buffer) Remaining() int { return b.Len() - b.off }

// reset clears the buffer for reuse, keeping its backing storage.
func (b *Buffer) reset() {
	b.data = b.data[:0]
	b.off = 0
	b.err = nil
	b.refs = b.refs[:0]
	b.refLen = 0
}

// Err returns the sticky unpack error, if any.
func (b *Buffer) Err() error { return b.err }

// PackU32 appends a 32-bit word.
func (b *Buffer) PackU32(v uint32) *Buffer {
	b.data = binary.LittleEndian.AppendUint32(b.data, v)
	return b
}

// PackU64 appends a 64-bit word.
func (b *Buffer) PackU64(v uint64) *Buffer {
	b.data = binary.LittleEndian.AppendUint64(b.data, v)
	return b
}

// PackBytes appends a length-prefixed byte section.
func (b *Buffer) PackBytes(p []byte) *Buffer {
	b.PackU32(uint32(len(p)))
	b.data = append(b.data, p...)
	return b
}

// PackString appends a length-prefixed string.
func (b *Buffer) PackString(s string) *Buffer { return b.PackBytes([]byte(s)) }

// PackBytesRef appends a length-prefixed byte section *by reference*: only
// the 4-byte prefix is written now; p itself is spliced in when the buffer
// is materialized (Send/Call/Bytes). p must stay unchanged until then.
func (b *Buffer) PackBytesRef(p []byte) *Buffer {
	b.PackU32(uint32(len(p)))
	b.appendRef(p)
	return b
}

// PackBytesVec appends ONE length-prefixed byte section whose payload is
// the concatenation of frags, each borrowed by reference — the natural fit
// for data gathered from paged memory (vmem.Space.ReadAliases), where a
// contiguous span surfaces as per-page fragments.
func (b *Buffer) PackBytesVec(frags [][]byte) *Buffer {
	total := 0
	for _, f := range frags {
		total += len(f)
	}
	b.PackU32(uint32(total))
	for _, f := range frags {
		b.appendRef(f)
	}
	return b
}

func (b *Buffer) appendRef(p []byte) {
	if len(p) == 0 {
		return
	}
	b.refs = append(b.refs, bufRef{at: len(b.data), b: p})
	b.refLen += len(p)
}

func (b *Buffer) fail() {
	if b.err == nil {
		b.err = ErrUnderflow
	}
}

// U32 consumes a 32-bit word.
func (b *Buffer) U32() uint32 {
	b.flatten()
	if b.err != nil || b.off+4 > len(b.data) {
		b.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(b.data[b.off:])
	b.off += 4
	return v
}

// U64 consumes a 64-bit word.
func (b *Buffer) U64() uint64 {
	b.flatten()
	if b.err != nil || b.off+8 > len(b.data) {
		b.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(b.data[b.off:])
	b.off += 8
	return v
}

// BytesSection consumes a length-prefixed byte section. The returned slice
// aliases the message.
func (b *Buffer) BytesSection() []byte {
	n := b.U32() // flattens

	if b.err != nil || b.off+int(n) > len(b.data) {
		b.fail()
		return nil
	}
	p := b.data[b.off : b.off+int(n)]
	b.off += int(n)
	return p
}

// String consumes a length-prefixed string.
func (b *Buffer) String() string { return string(b.BytesSection()) }

// Pool recycles pack Buffers so the hot messaging paths (migration
// packing, envelope assembly) stop allocating a fresh Buffer — and a fresh
// backing array — per message. A nil *Pool is valid and degrades to plain
// allocation, so callers never need to branch. Only *outgoing* buffers may
// be pooled: inbound dispatch buffers can be retained by handlers (pending
// Calls keep their request message alive).
type Pool struct {
	mu   sync.Mutex
	free []*Buffer
	gets uint64
	hits uint64
}

// NewPool returns an empty buffer pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a reset buffer, reusing a pooled one when available.
func (p *Pool) Get() *Buffer {
	if p == nil {
		return NewBuffer()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		p.hits++
		return b
	}
	return NewBuffer()
}

// Put returns a buffer to the pool. The buffer must not be used afterwards.
func (p *Pool) Put(b *Buffer) {
	if p == nil || b == nil {
		return
	}
	b.reset()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, b)
}

// Stats reports how many Gets were served and how many of them reused a
// pooled buffer — the deterministic signal the allocation-guard tests pin.
func (p *Pool) Stats() (gets, hits uint64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.hits
}

// Envelope kinds carried in the first word of every endpoint message.
const (
	kindOneway uint32 = 0
	kindCall   uint32 = 1
	kindReply  uint32 = 2
	// kindCallDL is a request carrying a virtual-time deadline: the
	// receiver discards it unanswered when it arrives past the
	// deadline (a partition-delayed request must not execute after its
	// initiator has timed out, retried and moved on). Wire layout is
	// kindCall's plus one u64 deadline word; CallDL only ever emits it
	// for a finite deadline, so plain Call traffic is byte-identical
	// with deadlines disabled.
	kindCallDL uint32 = 3
)

// Handler processes an inbound one-way message.
type Handler func(src int, msg *Buffer)

// CallHandler processes an inbound request. It may reply immediately or
// retain the Call and reply later, once local events complete.
type CallHandler func(src int, req *Call)

// Call is a pending inbound request awaiting a reply.
type Call struct {
	ep    *Endpoint
	src   int
	reqID uint32
	// Msg is the request payload.
	Msg  *Buffer
	done bool
}

// Src returns the requesting node.
func (c *Call) Src() int { return c.src }

// Reply sends the response payload back to the requester. It must be called
// exactly once, from the receiving node's actor.
func (c *Call) Reply(build func(*Buffer)) {
	if c.done {
		panic("madeleine: double reply")
	}
	c.done = true
	out := c.ep.pool.Get()
	out.PackU32(kindReply)
	out.PackU32(c.reqID)
	if build != nil {
		build(out)
	}
	c.ep.nic.Send(c.src, 0, out.Bytes())
	c.ep.pool.Put(out)
}

// Endpoint is a node's Madeleine port: tagged one-way messages plus a
// request/reply discipline. All callbacks run on the node's CPU actor, in
// virtual time.
type Endpoint struct {
	nic      *bip.NIC
	actor    *ActorT
	handlers map[uint32]Handler
	calls    map[uint32]CallHandler
	pending  map[uint32]func(*Buffer)
	// canceled tombstones requests whose initiator gave up waiting
	// (Cancel): a late reply to one is silently dropped instead of
	// panicking as an unknown-request reply.
	canceled map[uint32]bool
	nextReq  uint32
	// expired counts deadline requests this endpoint discarded on
	// arrival — the receiver-side half of the RPC-timeout discipline.
	expired uint64
	// pool recycles outgoing buffers; nil means plain allocation.
	pool *Pool
}

// Attach creates node id's endpoint on the network, bound to its CPU actor.
func Attach(nw *bip.Network, id int, actor *ActorT) *Endpoint {
	ep := &Endpoint{
		actor:    actor,
		handlers: make(map[uint32]Handler),
		calls:    make(map[uint32]CallHandler),
		pending:  make(map[uint32]func(*Buffer)),
		canceled: make(map[uint32]bool),
	}
	ep.nic = nw.Attach(id, actor, ep.dispatch)
	return ep
}

// ID returns the node id of the endpoint.
func (ep *Endpoint) ID() int { return ep.nic.ID() }

// NIC exposes the endpoint's network interface, for the checkpoint
// layer's counter capture.
func (ep *Endpoint) NIC() *bip.NIC { return ep.nic }

// SetPool installs a buffer pool for this endpoint's outgoing messages.
// Endpoints of one cluster share the cluster's pool so reuse statistics
// stay deterministic per run.
func (ep *Endpoint) SetPool(p *Pool) { ep.pool = p }

// Handle registers the handler for one-way messages on channel ch.
func (ep *Endpoint) Handle(ch uint32, h Handler) {
	if _, dup := ep.handlers[ch]; dup {
		panic(fmt.Sprintf("madeleine: duplicate handler for channel %d", ch))
	}
	ep.handlers[ch] = h
}

// HandleCall registers the request handler for channel ch.
func (ep *Endpoint) HandleCall(ch uint32, h CallHandler) {
	if _, dup := ep.calls[ch]; dup {
		panic(fmt.Sprintf("madeleine: duplicate call handler for channel %d", ch))
	}
	ep.calls[ch] = h
}

// Send transmits a one-way message on channel ch to node dst. build packs
// the payload (may be nil for empty messages).
func (ep *Endpoint) Send(dst int, ch uint32, build func(*Buffer)) {
	out := ep.pool.Get()
	out.PackU32(kindOneway)
	out.PackU32(ch)
	if build != nil {
		build(out)
	}
	ep.nic.Send(dst, ch, out.Bytes())
	ep.pool.Put(out)
}

// SendBody transmits a pre-built body as a one-way message on channel ch:
// the wire bytes are exactly those of Send packing body as one
// length-prefixed section, but the body is never re-copied into an outer
// buffer — the envelope words and the body's spans go to the NIC as a
// span list and are gathered once, into the wire message itself. Charges
// are identical to Send (the NIC still copies every byte); body may be
// released to a pool as soon as SendBody returns.
func (ep *Endpoint) SendBody(dst int, ch uint32, body *Buffer) {
	ep.sendBody(dst, ch, body, false)
}

// SendBodyZeroCopy is SendBody over a scatter-gather NIC: the borrowed
// sections of body are DMA'd straight from their source memory, so the
// sender and receiver CPUs are charged only for the inline bytes (envelope
// words and length prefixes) — not for the payload. Wire occupancy still
// covers every byte. This is the BIP long-message discipline the migration
// pipeline rides on.
func (ep *Endpoint) SendBodyZeroCopy(dst int, ch uint32, body *Buffer) {
	ep.sendBody(dst, ch, body, true)
}

func (ep *Endpoint) sendBody(dst int, ch uint32, body *Buffer, zeroCopy bool) {
	env := ep.pool.Get()
	env.PackU32(kindOneway)
	env.PackU32(ch)
	env.PackU32(uint32(body.Len()))
	segs := append([][]byte{env.Bytes()}, body.segments()...)
	cpuBytes := env.Len() + body.Len()
	if zeroCopy {
		cpuBytes = env.Len() + body.InlineLen()
	}
	ep.nic.SendV(dst, ch, segs, cpuBytes)
	ep.pool.Put(env)
}

// Call issues a request on channel ch to node dst; done runs on this node's
// actor when the reply arrives.
func (ep *Endpoint) Call(dst int, ch uint32, build func(*Buffer), done func(*Buffer)) {
	ep.nextReq++
	id := ep.nextReq
	ep.pending[id] = done
	out := ep.pool.Get()
	out.PackU32(kindCall)
	out.PackU32(ch)
	out.PackU32(id)
	if build != nil {
		build(out)
	}
	ep.nic.Send(dst, ch, out.Bytes())
	ep.pool.Put(out)
}

// CallDL is Call with a virtual-time delivery deadline: the receiver
// discards the request unanswered if it arrives after deadline. The
// returned request id lets the initiator Cancel its half of the wait
// when its own timer fires. A deadline of 0 means none — the envelope
// degrades to a plain Call, byte-identical on the wire.
func (ep *Endpoint) CallDL(dst int, ch uint32, deadline simtime.Time, build func(*Buffer), done func(*Buffer)) uint32 {
	if deadline == 0 {
		ep.Call(dst, ch, build, done)
		return ep.nextReq
	}
	ep.nextReq++
	id := ep.nextReq
	ep.pending[id] = done
	out := ep.pool.Get()
	out.PackU32(kindCallDL)
	out.PackU32(ch)
	out.PackU32(id)
	out.PackU64(uint64(deadline))
	if build != nil {
		build(out)
	}
	ep.nic.Send(dst, ch, out.Bytes())
	ep.pool.Put(out)
	return id
}

// Cancel abandons the wait for request id: the pending continuation is
// dropped and the id tombstoned, so a reply that still arrives (the
// request executed, but its reply was delayed past the initiator's
// patience) is discarded instead of faulting dispatch. Canceling an
// id that is no longer pending (the reply already ran) is a no-op.
func (ep *Endpoint) Cancel(id uint32) {
	if _, ok := ep.pending[id]; !ok {
		return
	}
	delete(ep.pending, id)
	ep.canceled[id] = true
}

// ExpiredRequests reports how many deadline requests this endpoint
// discarded on arrival.
func (ep *Endpoint) ExpiredRequests() uint64 { return ep.expired }

func (ep *Endpoint) dispatch(src int, _ uint32, payload []byte) {
	msg := FromBytes(payload)
	switch kind := msg.U32(); kind {
	case kindOneway:
		ch := msg.U32()
		h, ok := ep.handlers[ch]
		if !ok {
			panic(fmt.Sprintf("madeleine: node %d: no handler for channel %d", ep.ID(), ch))
		}
		h(src, msg)
	case kindCall, kindCallDL:
		ch := msg.U32()
		reqID := msg.U32()
		if kind == kindCallDL {
			deadline := simtime.Time(msg.U64())
			if ep.actor.Now() > deadline {
				// The initiator has already timed out this request:
				// executing it now could double-apply a retried
				// operation. Store-and-forward delays (partitions) are
				// exactly the case this guards.
				ep.expired++
				return
			}
		}
		h, ok := ep.calls[ch]
		if !ok {
			panic(fmt.Sprintf("madeleine: node %d: no call handler for channel %d", ep.ID(), ch))
		}
		h(src, &Call{ep: ep, src: src, reqID: reqID, Msg: msg})
	case kindReply:
		reqID := msg.U32()
		done, ok := ep.pending[reqID]
		if !ok {
			if ep.canceled[reqID] {
				// A reply outran its initiator's patience: the wait was
				// canceled, drop the orphan and retire the tombstone.
				delete(ep.canceled, reqID)
				return
			}
			panic(fmt.Sprintf("madeleine: node %d: reply for unknown request %d", ep.ID(), reqID))
		}
		delete(ep.pending, reqID)
		if done != nil {
			done(msg)
		}
	default:
		panic(fmt.Sprintf("madeleine: bad envelope kind %d", kind))
	}
}
