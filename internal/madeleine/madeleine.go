// Package madeleine reproduces the Madeleine communication layer used by
// PM2: an efficient, portable message-passing interface on top of the
// low-level BIP driver.
//
// It provides two things. Buffer is an incremental pack/unpack facility
// (Madeleine's pack/unpack calls) used to marshal thread resources, slot
// images and protocol records. Endpoint adds tagged dispatch and a
// request/reply (LRPC-style) discipline on top of bip.NIC, which the PM2
// runtime uses for migration, remote thread creation and the slot
// negotiation protocol.
package madeleine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bip"
	"repro/internal/simtime"
)

// ActorT is the node CPU actor type endpoints bind to.
type ActorT = simtime.Actor

// ErrUnderflow is reported by Buffer when unpacking past the end of a
// message.
var ErrUnderflow = errors.New("madeleine: unpack past end of message")

// Buffer packs and unpacks typed fields in little-endian order. Packing
// appends; unpacking consumes from the front. Unpack errors are sticky: the
// first failure poisons the buffer and zero values are returned thereafter.
type Buffer struct {
	data []byte
	off  int
	err  error
}

// NewBuffer returns an empty pack buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// FromBytes returns an unpack buffer over data (not copied).
func FromBytes(data []byte) *Buffer { return &Buffer{data: data} }

// Bytes returns the packed message.
func (b *Buffer) Bytes() []byte { return b.data }

// Len returns the total packed length in bytes.
func (b *Buffer) Len() int { return len(b.data) }

// Remaining returns the number of bytes not yet unpacked.
func (b *Buffer) Remaining() int { return len(b.data) - b.off }

// Err returns the sticky unpack error, if any.
func (b *Buffer) Err() error { return b.err }

// PackU32 appends a 32-bit word.
func (b *Buffer) PackU32(v uint32) *Buffer {
	b.data = binary.LittleEndian.AppendUint32(b.data, v)
	return b
}

// PackU64 appends a 64-bit word.
func (b *Buffer) PackU64(v uint64) *Buffer {
	b.data = binary.LittleEndian.AppendUint64(b.data, v)
	return b
}

// PackBytes appends a length-prefixed byte section.
func (b *Buffer) PackBytes(p []byte) *Buffer {
	b.PackU32(uint32(len(p)))
	b.data = append(b.data, p...)
	return b
}

// PackString appends a length-prefixed string.
func (b *Buffer) PackString(s string) *Buffer { return b.PackBytes([]byte(s)) }

func (b *Buffer) fail() {
	if b.err == nil {
		b.err = ErrUnderflow
	}
}

// U32 consumes a 32-bit word.
func (b *Buffer) U32() uint32 {
	if b.err != nil || b.off+4 > len(b.data) {
		b.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(b.data[b.off:])
	b.off += 4
	return v
}

// U64 consumes a 64-bit word.
func (b *Buffer) U64() uint64 {
	if b.err != nil || b.off+8 > len(b.data) {
		b.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(b.data[b.off:])
	b.off += 8
	return v
}

// BytesSection consumes a length-prefixed byte section. The returned slice
// aliases the message.
func (b *Buffer) BytesSection() []byte {
	n := b.U32()
	if b.err != nil || b.off+int(n) > len(b.data) {
		b.fail()
		return nil
	}
	p := b.data[b.off : b.off+int(n)]
	b.off += int(n)
	return p
}

// String consumes a length-prefixed string.
func (b *Buffer) String() string { return string(b.BytesSection()) }

// Envelope kinds carried in the first word of every endpoint message.
const (
	kindOneway uint32 = 0
	kindCall   uint32 = 1
	kindReply  uint32 = 2
)

// Handler processes an inbound one-way message.
type Handler func(src int, msg *Buffer)

// CallHandler processes an inbound request. It may reply immediately or
// retain the Call and reply later, once local events complete.
type CallHandler func(src int, req *Call)

// Call is a pending inbound request awaiting a reply.
type Call struct {
	ep    *Endpoint
	src   int
	reqID uint32
	// Msg is the request payload.
	Msg  *Buffer
	done bool
}

// Src returns the requesting node.
func (c *Call) Src() int { return c.src }

// Reply sends the response payload back to the requester. It must be called
// exactly once, from the receiving node's actor.
func (c *Call) Reply(build func(*Buffer)) {
	if c.done {
		panic("madeleine: double reply")
	}
	c.done = true
	out := NewBuffer()
	out.PackU32(kindReply)
	out.PackU32(c.reqID)
	if build != nil {
		build(out)
	}
	c.ep.nic.Send(c.src, 0, out.Bytes())
}

// Endpoint is a node's Madeleine port: tagged one-way messages plus a
// request/reply discipline. All callbacks run on the node's CPU actor, in
// virtual time.
type Endpoint struct {
	nic      *bip.NIC
	handlers map[uint32]Handler
	calls    map[uint32]CallHandler
	pending  map[uint32]func(*Buffer)
	nextReq  uint32
}

// Attach creates node id's endpoint on the network, bound to its CPU actor.
func Attach(nw *bip.Network, id int, actor *ActorT) *Endpoint {
	ep := &Endpoint{
		handlers: make(map[uint32]Handler),
		calls:    make(map[uint32]CallHandler),
		pending:  make(map[uint32]func(*Buffer)),
	}
	ep.nic = nw.Attach(id, actor, ep.dispatch)
	return ep
}

// ID returns the node id of the endpoint.
func (ep *Endpoint) ID() int { return ep.nic.ID() }

// Handle registers the handler for one-way messages on channel ch.
func (ep *Endpoint) Handle(ch uint32, h Handler) {
	if _, dup := ep.handlers[ch]; dup {
		panic(fmt.Sprintf("madeleine: duplicate handler for channel %d", ch))
	}
	ep.handlers[ch] = h
}

// HandleCall registers the request handler for channel ch.
func (ep *Endpoint) HandleCall(ch uint32, h CallHandler) {
	if _, dup := ep.calls[ch]; dup {
		panic(fmt.Sprintf("madeleine: duplicate call handler for channel %d", ch))
	}
	ep.calls[ch] = h
}

// Send transmits a one-way message on channel ch to node dst. build packs
// the payload (may be nil for empty messages).
func (ep *Endpoint) Send(dst int, ch uint32, build func(*Buffer)) {
	out := NewBuffer()
	out.PackU32(kindOneway)
	out.PackU32(ch)
	if build != nil {
		build(out)
	}
	ep.nic.Send(dst, ch, out.Bytes())
}

// Call issues a request on channel ch to node dst; done runs on this node's
// actor when the reply arrives.
func (ep *Endpoint) Call(dst int, ch uint32, build func(*Buffer), done func(*Buffer)) {
	ep.nextReq++
	id := ep.nextReq
	ep.pending[id] = done
	out := NewBuffer()
	out.PackU32(kindCall)
	out.PackU32(ch)
	out.PackU32(id)
	if build != nil {
		build(out)
	}
	ep.nic.Send(dst, ch, out.Bytes())
}

func (ep *Endpoint) dispatch(src int, _ uint32, payload []byte) {
	msg := FromBytes(payload)
	switch kind := msg.U32(); kind {
	case kindOneway:
		ch := msg.U32()
		h, ok := ep.handlers[ch]
		if !ok {
			panic(fmt.Sprintf("madeleine: node %d: no handler for channel %d", ep.ID(), ch))
		}
		h(src, msg)
	case kindCall:
		ch := msg.U32()
		reqID := msg.U32()
		h, ok := ep.calls[ch]
		if !ok {
			panic(fmt.Sprintf("madeleine: node %d: no call handler for channel %d", ep.ID(), ch))
		}
		h(src, &Call{ep: ep, src: src, reqID: reqID, Msg: msg})
	case kindReply:
		reqID := msg.U32()
		done, ok := ep.pending[reqID]
		if !ok {
			panic(fmt.Sprintf("madeleine: node %d: reply for unknown request %d", ep.ID(), reqID))
		}
		delete(ep.pending, reqID)
		if done != nil {
			done(msg)
		}
	default:
		panic(fmt.Sprintf("madeleine: bad envelope kind %d", kind))
	}
}
