package madeleine

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzBufferRoundTrip drives the pack/unpack machinery with a fuzzer-chosen
// op sequence and checks three properties on every input:
//
//  1. Round trip: whatever mix of copying (PackU32/PackU64/PackBytes) and
//     borrowed (PackBytesRef/PackBytesVec) sections is packed unpacks to
//     the same values, whether the message was materialized via Bytes()
//     or gathered segment-by-segment the way bip.SendV does.
//  2. Convoy framing: the same message wrapped as a convoy-framed body
//     (count word + length-prefixed records, the chConvoy shape) survives
//     the wrap/unwrap.
//  3. Underflow poisoning: unpacking past the end of a truncated message
//     sets ErrUnderflow, sticks, and yields zero values from then on.
//
// The fuzz input is an instruction tape: each op byte selects a pack call,
// subsequent bytes feed its operands.
func FuzzBufferRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 1, 2}, uint8(3))
	f.Add([]byte{2, 8, 3, 16, 4, 32, 2, 0}, uint8(1))
	f.Add([]byte{4, 255, 4, 1, 0, 0}, uint8(0))
	f.Add([]byte{}, uint8(9))

	f.Fuzz(func(t *testing.T, tape []byte, cut uint8) {
		type field struct {
			kind byte // 0: u32, 1: u64, 2+: bytes section
			u    uint64
			b    []byte
		}
		next := func(i *int) byte {
			if *i >= len(tape) {
				return 0
			}
			v := tape[*i]
			*i++
			return v
		}
		// chunk derives a deterministic payload from the tape position.
		chunk := func(i *int) []byte {
			n := int(next(i)) % 64
			out := make([]byte, n)
			for j := range out {
				out[j] = byte(*i + j)
			}
			return out
		}

		var fields []field
		b := NewBuffer()
		for i := 0; i < len(tape) && len(fields) < 32; {
			switch op := next(&i) % 5; op {
			case 0:
				v := uint32(next(&i))<<8 | uint32(next(&i))
				b.PackU32(v)
				fields = append(fields, field{kind: 0, u: uint64(v)})
			case 1:
				v := uint64(next(&i))<<32 | uint64(next(&i))
				b.PackU64(v)
				fields = append(fields, field{kind: 1, u: v})
			case 2:
				p := chunk(&i)
				b.PackBytes(p)
				fields = append(fields, field{kind: 2, b: p})
			case 3:
				p := chunk(&i)
				b.PackBytesRef(p)
				fields = append(fields, field{kind: 2, b: p})
			case 4:
				// A span split into page-like fragments: one section
				// on the wire, several borrowed refs behind it.
				p := chunk(&i)
				mid := len(p) / 2
				b.PackBytesVec([][]byte{p[:mid], p[mid:]})
				fields = append(fields, field{kind: 2, b: p})
			}
		}

		// The segment view must concatenate to exactly the materialized
		// stream (bip.SendV gathers segments; Bytes() flattens).
		var gathered []byte
		for _, seg := range b.segments() {
			gathered = append(gathered, seg...)
		}
		wire := b.Bytes()
		if !bytes.Equal(gathered, wire) {
			t.Fatalf("segment gather (%d B) != materialized stream (%d B)", len(gathered), len(wire))
		}
		if b.Len() != len(wire) {
			t.Fatalf("Len() = %d, materialized %d", b.Len(), len(wire))
		}

		verify := func(in *Buffer) {
			for fi, fl := range fields {
				switch fl.kind {
				case 0:
					if got := in.U32(); got != uint32(fl.u) {
						t.Fatalf("field %d: U32 = %d, want %d (err %v)", fi, got, fl.u, in.Err())
					}
				case 1:
					if got := in.U64(); got != fl.u {
						t.Fatalf("field %d: U64 = %d, want %d (err %v)", fi, got, fl.u, in.Err())
					}
				default:
					if got := in.BytesSection(); !bytes.Equal(got, fl.b) {
						t.Fatalf("field %d: section = %v, want %v (err %v)", fi, got, fl.b, in.Err())
					}
				}
			}
			if in.Err() != nil {
				t.Fatalf("round trip poisoned: %v", in.Err())
			}
			if in.Remaining() != 0 {
				t.Fatalf("round trip left %d bytes", in.Remaining())
			}
		}
		verify(FromBytes(wire))

		// Convoy framing: k copies of the record as length-prefixed
		// sections behind a count word — the chMigrate/chConvoy shape.
		k := int(cut)%3 + 1
		frame := NewBuffer()
		frame.PackU32(uint32(k))
		for i := 0; i < k; i++ {
			if i%2 == 0 {
				frame.PackBytesRef(wire)
			} else {
				frame.PackBytes(wire)
			}
		}
		in := FromBytes(frame.Bytes())
		if got := in.U32(); got != uint32(k) {
			t.Fatalf("convoy count = %d, want %d", got, k)
		}
		for i := 0; i < k; i++ {
			verify(FromBytes(in.BytesSection()))
		}

		// Underflow poisoning: truncate the wire stream and read past the
		// end. The first failing read poisons the buffer; every later
		// read returns zero values and the error sticks.
		if len(wire) > 0 {
			trunc := FromBytes(wire[:int(cut)%len(wire)])
			for trunc.Err() == nil {
				trunc.U64()
			}
			if trunc.Err() != ErrUnderflow {
				t.Fatalf("truncated unpack error = %v, want ErrUnderflow", trunc.Err())
			}
			if got := trunc.U32(); got != 0 {
				t.Fatalf("poisoned U32 = %d, want 0", got)
			}
			if got := trunc.BytesSection(); got != nil {
				t.Fatalf("poisoned BytesSection = %v, want nil", got)
			}
		}

		// A length prefix pointing past the end must also poison.
		bad := binary.LittleEndian.AppendUint32(nil, 1<<30)
		in = FromBytes(bad)
		if in.BytesSection() != nil || in.Err() != ErrUnderflow {
			t.Fatalf("oversized section not poisoned: err %v", in.Err())
		}
	})
}
