package madeleine

import (
	"testing"
	"testing/quick"

	"repro/internal/bip"
	"repro/internal/cost"
	"repro/internal/simtime"
)

func TestBufferRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.PackU32(42).PackU64(1 << 40).PackString("pm2").PackBytes([]byte{9, 8, 7})
	r := FromBytes(b.Bytes())
	if got := r.U32(); got != 42 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.String(); got != "pm2" {
		t.Fatalf("String = %q", got)
	}
	sec := r.BytesSection()
	if len(sec) != 3 || sec[0] != 9 {
		t.Fatalf("BytesSection = %v", sec)
	}
	if r.Remaining() != 0 || r.Err() != nil {
		t.Fatalf("leftover %d, err %v", r.Remaining(), r.Err())
	}
}

func TestBufferUnderflowIsSticky(t *testing.T) {
	r := FromBytes([]byte{1, 2})
	if got := r.U32(); got != 0 {
		t.Fatalf("underflow U32 = %d", got)
	}
	if r.Err() != ErrUnderflow {
		t.Fatalf("Err = %v", r.Err())
	}
	// Later reads keep failing and return zero values.
	if r.U64() != 0 || r.String() != "" || r.BytesSection() != nil {
		t.Fatal("poisoned buffer returned non-zero values")
	}
}

func TestBufferTruncatedSection(t *testing.T) {
	b := NewBuffer()
	b.PackU32(100) // claims a 100-byte section that isn't there
	r := FromBytes(b.Bytes())
	if r.BytesSection() != nil || r.Err() == nil {
		t.Fatal("truncated section must error")
	}
}

func TestBufferPropertyU32(t *testing.T) {
	f := func(vals []uint32) bool {
		b := NewBuffer()
		for _, v := range vals {
			b.PackU32(v)
		}
		r := FromBytes(b.Bytes())
		for _, v := range vals {
			if r.U32() != v {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type pair struct {
	eng *simtime.Engine
	eps [2]*Endpoint
	act [2]*simtime.Actor
}

func newPair(t *testing.T) *pair {
	t.Helper()
	p := &pair{eng: simtime.NewEngine()}
	nw := bip.NewNetwork(p.eng, cost.Default(), 2)
	for i := 0; i < 2; i++ {
		p.act[i] = simtime.NewActor(p.eng, "node")
		p.eps[i] = Attach(nw, i, p.act[i])
	}
	return p
}

func TestOnewayMessage(t *testing.T) {
	p := newPair(t)
	var got []uint32
	var from int
	p.eps[1].Handle(5, func(src int, msg *Buffer) {
		from = src
		got = append(got, msg.U32(), msg.U32())
	})
	p.act[0].Post(0, func() {
		p.eps[0].Send(1, 5, func(b *Buffer) { b.PackU32(11).PackU32(22) })
	})
	p.eng.Run(0)
	if from != 0 || len(got) != 2 || got[0] != 11 || got[1] != 22 {
		t.Fatalf("from=%d got=%v", from, got)
	}
}

func TestCallReply(t *testing.T) {
	p := newPair(t)
	p.eps[1].HandleCall(3, func(src int, req *Call) {
		x := req.Msg.U32()
		req.Reply(func(b *Buffer) { b.PackU32(x * 2) })
	})
	var answer uint32
	var doneAt simtime.Time
	p.act[0].Post(0, func() {
		p.eps[0].Call(1, 3, func(b *Buffer) { b.PackU32(21) }, func(b *Buffer) {
			answer = b.U32()
			doneAt = p.act[0].Now()
		})
	})
	p.eng.Run(0)
	if answer != 42 {
		t.Fatalf("answer = %d", answer)
	}
	if doneAt <= 0 {
		t.Fatal("reply must consume virtual time")
	}
}

func TestDeferredReply(t *testing.T) {
	p := newPair(t)
	// The callee holds the Call and replies after some local work.
	p.eps[1].HandleCall(1, func(src int, req *Call) {
		r := req
		p.act[1].PostAfter(50*simtime.Microsecond, func() {
			r.Reply(func(b *Buffer) { b.PackString("late") })
		})
	})
	var got string
	p.act[0].Post(0, func() {
		p.eps[0].Call(1, 1, nil, func(b *Buffer) { got = b.String() })
	})
	p.eng.Run(0)
	if got != "late" {
		t.Fatalf("got %q", got)
	}
}

func TestConcurrentCallsCorrelate(t *testing.T) {
	p := newPair(t)
	p.eps[1].HandleCall(2, func(src int, req *Call) {
		v := req.Msg.U32()
		req.Reply(func(b *Buffer) { b.PackU32(v + 100) })
	})
	results := map[uint32]uint32{}
	p.act[0].Post(0, func() {
		for i := uint32(0); i < 5; i++ {
			i := i
			p.eps[0].Call(1, 2, func(b *Buffer) { b.PackU32(i) }, func(b *Buffer) {
				results[i] = b.U32()
			})
		}
	})
	p.eng.Run(0)
	if len(results) != 5 {
		t.Fatalf("results = %v", results)
	}
	for i := uint32(0); i < 5; i++ {
		if results[i] != i+100 {
			t.Fatalf("call %d got %d", i, results[i])
		}
	}
}

func TestDoubleReplyPanics(t *testing.T) {
	p := newPair(t)
	p.eps[1].HandleCall(1, func(src int, req *Call) {
		req.Reply(nil)
		defer func() {
			if recover() == nil {
				t.Error("double reply should panic")
			}
		}()
		req.Reply(nil)
	})
	p.act[0].Post(0, func() { p.eps[0].Call(1, 1, nil, nil) })
	p.eng.Run(0)
}

func TestDuplicateHandlerPanics(t *testing.T) {
	p := newPair(t)
	p.eps[0].Handle(1, func(int, *Buffer) {})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.eps[0].Handle(1, func(int, *Buffer) {})
}
