package madeleine

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/bip"
	"repro/internal/cost"
	"repro/internal/simtime"
)

func TestBufferRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.PackU32(42).PackU64(1 << 40).PackString("pm2").PackBytes([]byte{9, 8, 7})
	r := FromBytes(b.Bytes())
	if got := r.U32(); got != 42 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<40 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.String(); got != "pm2" {
		t.Fatalf("String = %q", got)
	}
	sec := r.BytesSection()
	if len(sec) != 3 || sec[0] != 9 {
		t.Fatalf("BytesSection = %v", sec)
	}
	if r.Remaining() != 0 || r.Err() != nil {
		t.Fatalf("leftover %d, err %v", r.Remaining(), r.Err())
	}
}

func TestBufferUnderflowIsSticky(t *testing.T) {
	r := FromBytes([]byte{1, 2})
	if got := r.U32(); got != 0 {
		t.Fatalf("underflow U32 = %d", got)
	}
	if r.Err() != ErrUnderflow {
		t.Fatalf("Err = %v", r.Err())
	}
	// Later reads keep failing and return zero values.
	if r.U64() != 0 || r.String() != "" || r.BytesSection() != nil {
		t.Fatal("poisoned buffer returned non-zero values")
	}
}

func TestBufferTruncatedSection(t *testing.T) {
	b := NewBuffer()
	b.PackU32(100) // claims a 100-byte section that isn't there
	r := FromBytes(b.Bytes())
	if r.BytesSection() != nil || r.Err() == nil {
		t.Fatal("truncated section must error")
	}
}

func TestBufferPropertyU32(t *testing.T) {
	f := func(vals []uint32) bool {
		b := NewBuffer()
		for _, v := range vals {
			b.PackU32(v)
		}
		r := FromBytes(b.Bytes())
		for _, v := range vals {
			if r.U32() != v {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type pair struct {
	eng *simtime.Engine
	eps [2]*Endpoint
	act [2]*simtime.Actor
}

func newPair(t *testing.T) *pair {
	t.Helper()
	p := &pair{eng: simtime.NewEngine()}
	nw := bip.NewNetwork(p.eng, cost.Default(), 2)
	for i := 0; i < 2; i++ {
		p.act[i] = simtime.NewActor(p.eng, "node")
		p.eps[i] = Attach(nw, i, p.act[i])
	}
	return p
}

func TestOnewayMessage(t *testing.T) {
	p := newPair(t)
	var got []uint32
	var from int
	p.eps[1].Handle(5, func(src int, msg *Buffer) {
		from = src
		got = append(got, msg.U32(), msg.U32())
	})
	p.act[0].Post(0, func() {
		p.eps[0].Send(1, 5, func(b *Buffer) { b.PackU32(11).PackU32(22) })
	})
	p.eng.Run(0)
	if from != 0 || len(got) != 2 || got[0] != 11 || got[1] != 22 {
		t.Fatalf("from=%d got=%v", from, got)
	}
}

func TestCallReply(t *testing.T) {
	p := newPair(t)
	p.eps[1].HandleCall(3, func(src int, req *Call) {
		x := req.Msg.U32()
		req.Reply(func(b *Buffer) { b.PackU32(x * 2) })
	})
	var answer uint32
	var doneAt simtime.Time
	p.act[0].Post(0, func() {
		p.eps[0].Call(1, 3, func(b *Buffer) { b.PackU32(21) }, func(b *Buffer) {
			answer = b.U32()
			doneAt = p.act[0].Now()
		})
	})
	p.eng.Run(0)
	if answer != 42 {
		t.Fatalf("answer = %d", answer)
	}
	if doneAt <= 0 {
		t.Fatal("reply must consume virtual time")
	}
}

func TestDeferredReply(t *testing.T) {
	p := newPair(t)
	// The callee holds the Call and replies after some local work.
	p.eps[1].HandleCall(1, func(src int, req *Call) {
		r := req
		p.act[1].PostAfter(50*simtime.Microsecond, func() {
			r.Reply(func(b *Buffer) { b.PackString("late") })
		})
	})
	var got string
	p.act[0].Post(0, func() {
		p.eps[0].Call(1, 1, nil, func(b *Buffer) { got = b.String() })
	})
	p.eng.Run(0)
	if got != "late" {
		t.Fatalf("got %q", got)
	}
}

func TestConcurrentCallsCorrelate(t *testing.T) {
	p := newPair(t)
	p.eps[1].HandleCall(2, func(src int, req *Call) {
		v := req.Msg.U32()
		req.Reply(func(b *Buffer) { b.PackU32(v + 100) })
	})
	results := map[uint32]uint32{}
	p.act[0].Post(0, func() {
		for i := uint32(0); i < 5; i++ {
			i := i
			p.eps[0].Call(1, 2, func(b *Buffer) { b.PackU32(i) }, func(b *Buffer) {
				results[i] = b.U32()
			})
		}
	})
	p.eng.Run(0)
	if len(results) != 5 {
		t.Fatalf("results = %v", results)
	}
	for i := uint32(0); i < 5; i++ {
		if results[i] != i+100 {
			t.Fatalf("call %d got %d", i, results[i])
		}
	}
}

func TestDoubleReplyPanics(t *testing.T) {
	p := newPair(t)
	p.eps[1].HandleCall(1, func(src int, req *Call) {
		req.Reply(nil)
		defer func() {
			if recover() == nil {
				t.Error("double reply should panic")
			}
		}()
		req.Reply(nil)
	})
	p.act[0].Post(0, func() { p.eps[0].Call(1, 1, nil, nil) })
	p.eng.Run(0)
}

func TestDuplicateHandlerPanics(t *testing.T) {
	p := newPair(t)
	p.eps[0].Handle(1, func(int, *Buffer) {})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.eps[0].Handle(1, func(int, *Buffer) {})
}

// TestSendBodyWireEquivalence pins the golden-neutrality property of the
// pre-built-body send: SendBody must put the exact bytes of
// Send+PackBytes on the wire — same envelope, same length prefix, same
// payload, same virtual arrival time — whatever mix of copied and
// borrowed sections the body holds. Only then can the migration path
// switch to it without disturbing a single golden trace.
func TestSendBodyWireEquivalence(t *testing.T) {
	deliver := func(send func(ep *Endpoint)) (payload []byte, at simtime.Time) {
		p := newPair(t)
		p.eps[1].Handle(7, func(src int, msg *Buffer) {
			payload = append([]byte(nil), msg.data...)
			at = p.act[1].Now()
		})
		p.act[0].Post(0, func() { send(p.eps[0]) })
		p.eng.Run(0)
		return payload, at
	}

	span := []byte{1, 2, 3, 4, 5, 6, 7}
	legacy, legacyAt := deliver(func(ep *Endpoint) {
		inner := NewBuffer()
		inner.PackU32(99).PackBytes(span).PackU64(1 << 33)
		ep.Send(1, 7, func(b *Buffer) { b.PackBytes(inner.Bytes()) })
	})
	body, bodyAt := deliver(func(ep *Endpoint) {
		inner := NewBuffer()
		inner.PackU32(99).PackBytesVec([][]byte{span[:3], span[3:]}).PackU64(1 << 33)
		ep.SendBody(1, 7, inner)
	})
	if !bytes.Equal(legacy, body) {
		t.Fatalf("wire bytes differ:\nlegacy %v\nbody   %v", legacy, body)
	}
	if legacyAt != bodyAt {
		t.Fatalf("arrival differs: legacy %v, body %v", legacyAt, bodyAt)
	}
}

// TestSendBodyZeroCopyCheaper: the zero-copy variant ships the same
// bytes but charges the CPUs only for the inline header words, so with a
// large borrowed payload the message must complete strictly earlier.
func TestSendBodyZeroCopyCheaper(t *testing.T) {
	run := func(zero bool) (n int, at simtime.Time) {
		p := newPair(t)
		payload := make([]byte, 32<<10)
		p.eps[1].Handle(7, func(src int, msg *Buffer) {
			body := FromBytes(msg.BytesSection())
			n = len(body.BytesSection())
			at = p.act[1].Now()
		})
		p.act[0].Post(0, func() {
			body := NewBuffer()
			body.PackBytesRef(payload)
			if zero {
				p.eps[0].SendBodyZeroCopy(1, 7, body)
			} else {
				p.eps[0].SendBody(1, 7, body)
			}
		})
		p.eng.Run(0)
		return n, at
	}
	nCopy, atCopy := run(false)
	nZero, atZero := run(true)
	if nCopy != 32<<10 || nZero != 32<<10 {
		t.Fatalf("payload sizes: copy %d, zero %d", nCopy, nZero)
	}
	if atZero >= atCopy {
		t.Fatalf("zero-copy delivery at %v not before copying delivery at %v", atZero, atCopy)
	}
}

// TestPoolReuse: a pooled buffer comes back reset and is handed out
// again; the counters see the reuse. A nil pool degrades to allocation.
func TestPoolReuse(t *testing.T) {
	p := NewPool()
	a := p.Get()
	a.PackU32(7).PackBytesRef([]byte{1, 2})
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("pool did not reuse the returned buffer")
	}
	if b.Len() != 0 || b.InlineLen() != 0 || b.Err() != nil || b.Remaining() != 0 {
		t.Fatalf("reused buffer not reset: len=%d err=%v", b.Len(), b.Err())
	}
	gets, hits := p.Stats()
	if gets != 2 || hits != 1 {
		t.Fatalf("stats = %d gets / %d hits, want 2/1", gets, hits)
	}
	var nilPool *Pool
	if nilPool.Get() == nil {
		t.Fatal("nil pool must allocate")
	}
	nilPool.Put(NewBuffer()) // must not panic
}
