package vm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/vmem"
)

// faultCase runs src and expects a fault whose message contains want.
func faultCase(t *testing.T, src, want string) {
	t.Helper()
	_, st, _, _ := run(t, src)
	if st.Kind != Faulted {
		t.Fatalf("status = %v, want fault containing %q", st.Kind, want)
	}
	if !strings.Contains(st.Fault.Error(), want) {
		t.Fatalf("fault = %v, want contains %q", st.Fault, want)
	}
}

func TestFaultMatrix(t *testing.T) {
	t.Run("mod by zero", func(t *testing.T) {
		faultCase(t, `
.program f
main:
    loadi r1, 7
    loadi r2, 0
    mod   r3, r1, r2
    halt
`, "division by zero")
	})
	t.Run("store to unmapped", func(t *testing.T) {
		faultCase(t, `
.program f
main:
    loadi r1, 0x700000
    store [r1], r2
    halt
`, "segmentation fault")
	})
	t.Run("loadb unmapped", func(t *testing.T) {
		faultCase(t, `
.program f
main:
    loadi r1, 0x700000
    loadb r2, [r1]
    halt
`, "segmentation fault")
	})
	t.Run("storeb unmapped", func(t *testing.T) {
		faultCase(t, `
.program f
main:
    loadi r1, 0x700000
    storeb [r1], r2
    halt
`, "segmentation fault")
	})
	t.Run("pop from unmapped sp", func(t *testing.T) {
		faultCase(t, `
.program f
main:
    loadi r1, 0x700000
    mov   sp, r1
    pop   r2
`, "segmentation fault")
	})
	t.Run("ret from unmapped sp", func(t *testing.T) {
		faultCase(t, `
.program f
main:
    loadi r1, 0x700000
    mov   sp, r1
    ret
`, "segmentation fault")
	})
	t.Run("leave with corrupt fp", func(t *testing.T) {
		faultCase(t, `
.program f
main:
    loadi r1, 0x700000
    mov   fp, r1
    leave
`, "segmentation fault")
	})
	t.Run("branch to garbage", func(t *testing.T) {
		faultCase(t, `
.program f
main:
    br 0x40
`, "instruction fetch")
	})
}

func TestIllegalInstructionFaults(t *testing.T) {
	im := isa.NewImage()
	lp, err := im.AddProgram("ill", []isa.Instr{{Op: isa.Op(99)}}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := vmem.NewSpace()
	if err := sp.Mmap(layout.IsoBase, layout.SlotSize); err != nil {
		t.Fatal(err)
	}
	th := &Thread{Regs: &RegFile{PC: lp.Entry, SP: layout.IsoBase + layout.SlotSize}}
	st := Run(im, sp, th, &testEnv{}, 10)
	if st.Kind != Faulted || !strings.Contains(st.Fault.Error(), "illegal instruction") {
		t.Fatalf("st = %v (%v)", st.Kind, st.Fault)
	}
}

func TestBadBuiltinControlPanics(t *testing.T) {
	im, sp, th, env := harness(t, `
.program bad
main:
    callb exit
`)
	env.results[isa.BExit] = BuiltinResult{Ctl: Control(42)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bogus control")
		}
	}()
	Run(im, sp, th, env, 10)
}

func TestShiftMasking(t *testing.T) {
	// Shift counts use only the low 5 bits, like real 32-bit hardware.
	th, st, _, _ := run(t, `
.program sh
main:
    loadi r1, 1
    loadi r2, 33
    shl   r3, r1, r2   ; 1 << (33 & 31) = 2
    loadi r4, 0x80000000
    shr   r5, r4, r2   ; >> 1
    halt
`)
	if st.Kind != Exited || th.Regs.R[3] != 2 || th.Regs.R[5] != 0x40000000 {
		t.Fatalf("r3=%#x r5=%#x st=%v", th.Regs.R[3], th.Regs.R[5], st.Kind)
	}
}

func TestStatusKindStrings(t *testing.T) {
	for kind, want := range map[StatusKind]string{
		Running: "running", Yielded: "yielded", Blocked: "blocked",
		Exited: "exited", Faulted: "faulted", Migrating: "migrating",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", kind, kind.String())
		}
	}
	if StatusKind(99).String() != "?" {
		t.Error("unknown status should be ?")
	}
}

func TestRegFilePanicsOnBogusRegister(t *testing.T) {
	rf := &RegFile{}
	for _, f := range []func(){
		func() { rf.Get(isa.Reg(30)) },
		func() { rf.Set(isa.Reg(30), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
