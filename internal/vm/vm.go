// Package vm interprets thread programs over the simulated address space.
//
// The interpreter is deliberately machine-like: the program counter, stack
// pointer and frame pointer are raw simulated addresses; CALL pushes the
// return address onto the simulated stack; ENTER pushes the caller's frame
// pointer (the "compiler-generated pointer chaining the stack frames" of the
// paper §2). A thread's complete execution state is therefore (a) the
// register file and (b) bytes in simulated memory — which is exactly what
// iso-address migration moves.
package vm

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vmem"
)

// RegFile is a thread's register state. It is cached in Go while the thread
// runs and spilled into the in-memory thread descriptor on freeze.
type RegFile struct {
	R      [16]uint32
	SP, FP uint32
	PC     uint32
}

// Get reads general register r (including SP/FP).
func (rf *RegFile) Get(r isa.Reg) uint32 {
	switch {
	case r < 16:
		return rf.R[r]
	case r == isa.SP:
		return rf.SP
	case r == isa.FP:
		return rf.FP
	}
	panic(fmt.Sprintf("vm: bad register %d", r))
}

// Set writes general register r (including SP/FP).
func (rf *RegFile) Set(r isa.Reg, v uint32) {
	switch {
	case r < 16:
		rf.R[r] = v
	case r == isa.SP:
		rf.SP = v
	case r == isa.FP:
		rf.FP = v
	default:
		panic(fmt.Sprintf("vm: bad register %d", r))
	}
}

// StatusKind classifies why Run returned.
type StatusKind int

// Status kinds.
const (
	// Running: the instruction budget was exhausted; the thread is still
	// runnable (this is where preemption happens).
	Running StatusKind = iota
	// Yielded: the thread executed a yield builtin.
	Yielded
	// Blocked: a builtin parked the thread; the runtime will wake it.
	Blocked
	// Exited: the thread terminated (halt or exit builtin).
	Exited
	// Faulted: the thread hit a fatal error (segfault, bad opcode, ...).
	Faulted
	// Migrating: the thread requested migration to Status.Dest.
	Migrating
)

func (k StatusKind) String() string {
	switch k {
	case Running:
		return "running"
	case Yielded:
		return "yielded"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	case Faulted:
		return "faulted"
	case Migrating:
		return "migrating"
	}
	return "?"
}

// Status is the outcome of a Run call.
type Status struct {
	Kind StatusKind
	// Dest is the destination node for Kind == Migrating.
	Dest int
	// Fault holds the error for Kind == Faulted.
	Fault error
	// Instrs is the number of instructions executed during this run,
	// for cost accounting.
	Instrs int64
	// Builtins is the number of builtin calls executed during this run.
	Builtins int64
}

// Control tells the interpreter what to do after a builtin call.
type Control int

// Builtin control outcomes.
const (
	// CtlReturn: place Ret in r0 and continue.
	CtlReturn Control = iota
	// CtlYield: place Ret in r0 and yield the processor.
	CtlYield
	// CtlBlock: park the thread; the runtime sets r0 when it wakes it.
	CtlBlock
	// CtlExit: terminate the thread.
	CtlExit
	// CtlMigrate: freeze and migrate the thread to Dest. Execution
	// resumes after the builtin call on the destination node.
	CtlMigrate
	// CtlFault: kill the thread with Err.
	CtlFault
)

// BuiltinResult is the outcome of one runtime call.
type BuiltinResult struct {
	Ctl  Control
	Ret  uint32
	Dest int
	Err  error
}

// Env supplies the runtime half of the machine: the PM2 builtins. The
// callback runs on the node's actor, synchronously with the interpreter.
type Env interface {
	Builtin(id uint32, args [4]uint32) BuiltinResult
}

// Thread bundles what the interpreter needs to run one thread.
type Thread struct {
	Regs *RegFile
	// StackLimit is the lowest address the stack may grow to (the end of
	// the thread descriptor in its stack slot). Pushing below it is a
	// stack-overflow fault.
	StackLimit uint32
}

func fault(format string, args ...any) error {
	return fmt.Errorf("thread fault: %s", fmt.Sprintf(format, args...))
}

// Run interprets up to max instructions of thread t against image im and
// address space sp, dispatching builtins to env. It returns when the budget
// is exhausted or the thread yields, blocks, exits, faults, or migrates.
func Run(im *isa.Image, sp *vmem.Space, t *Thread, env Env, max int64) Status {
	rf := t.Regs
	var st Status
	for st.Instrs < max {
		in, ok := im.InstrAt(rf.PC)
		if !ok {
			st.Kind = Faulted
			st.Fault = fault("instruction fetch from %#08x", rf.PC)
			return st
		}
		rf.PC += isa.InstrBytes
		st.Instrs++

		switch in.Op {
		case isa.OpNop:

		case isa.OpLoadI:
			rf.Set(in.Rd, in.Imm)

		case isa.OpMov:
			rf.Set(in.Rd, rf.Get(in.Rs))

		case isa.OpAdd:
			rf.Set(in.Rd, rf.Get(in.Rs)+rf.Get(in.Rt))
		case isa.OpSub:
			rf.Set(in.Rd, rf.Get(in.Rs)-rf.Get(in.Rt))
		case isa.OpMul:
			rf.Set(in.Rd, rf.Get(in.Rs)*rf.Get(in.Rt))
		case isa.OpDiv, isa.OpMod:
			d := rf.Get(in.Rt)
			if d == 0 {
				st.Kind = Faulted
				st.Fault = fault("division by zero at %#08x", rf.PC-isa.InstrBytes)
				return st
			}
			if in.Op == isa.OpDiv {
				rf.Set(in.Rd, rf.Get(in.Rs)/d)
			} else {
				rf.Set(in.Rd, rf.Get(in.Rs)%d)
			}
		case isa.OpAnd:
			rf.Set(in.Rd, rf.Get(in.Rs)&rf.Get(in.Rt))
		case isa.OpOr:
			rf.Set(in.Rd, rf.Get(in.Rs)|rf.Get(in.Rt))
		case isa.OpXor:
			rf.Set(in.Rd, rf.Get(in.Rs)^rf.Get(in.Rt))
		case isa.OpShl:
			rf.Set(in.Rd, rf.Get(in.Rs)<<(rf.Get(in.Rt)&31))
		case isa.OpShr:
			rf.Set(in.Rd, rf.Get(in.Rs)>>(rf.Get(in.Rt)&31))

		case isa.OpAddI:
			rf.Set(in.Rd, rf.Get(in.Rs)+in.Imm)

		case isa.OpLoad:
			v, err := sp.Load32(rf.Get(in.Rs) + in.Imm)
			if err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}
			rf.Set(in.Rd, v)
		case isa.OpStore:
			if err := sp.Store32(rf.Get(in.Rd)+in.Imm, rf.Get(in.Rs)); err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}
		case isa.OpLoadB:
			v, err := sp.Load8(rf.Get(in.Rs) + in.Imm)
			if err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}
			rf.Set(in.Rd, uint32(v))
		case isa.OpStoreB:
			if err := sp.Store8(rf.Get(in.Rd)+in.Imm, byte(rf.Get(in.Rs))); err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}

		case isa.OpBr:
			rf.PC = in.Imm
		case isa.OpBeq:
			if rf.Get(in.Rs) == rf.Get(in.Rt) {
				rf.PC = in.Imm
			}
		case isa.OpBne:
			if rf.Get(in.Rs) != rf.Get(in.Rt) {
				rf.PC = in.Imm
			}
		case isa.OpBlt:
			if int32(rf.Get(in.Rs)) < int32(rf.Get(in.Rt)) {
				rf.PC = in.Imm
			}
		case isa.OpBge:
			if int32(rf.Get(in.Rs)) >= int32(rf.Get(in.Rt)) {
				rf.PC = in.Imm
			}
		case isa.OpBltU:
			if rf.Get(in.Rs) < rf.Get(in.Rt) {
				rf.PC = in.Imm
			}
		case isa.OpBgeU:
			if rf.Get(in.Rs) >= rf.Get(in.Rt) {
				rf.PC = in.Imm
			}

		case isa.OpPush:
			if err := push(sp, t, rf.Get(in.Rs)); err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}
		case isa.OpPop:
			v, err := pop(sp, rf)
			if err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}
			rf.Set(in.Rd, v)

		case isa.OpCall:
			if err := push(sp, t, rf.PC); err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}
			rf.PC = in.Imm
		case isa.OpRet:
			v, err := pop(sp, rf)
			if err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}
			rf.PC = v

		case isa.OpEnter:
			// Push caller FP — the frame-chain pointer lives in
			// simulated stack memory from here on.
			if err := push(sp, t, rf.FP); err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}
			rf.FP = rf.SP
			rf.SP -= in.Imm
			if rf.SP < t.StackLimit || rf.SP > rf.FP {
				st.Kind = Faulted
				st.Fault = fault("stack overflow (sp=%#08x limit=%#08x)", rf.SP, t.StackLimit)
				return st
			}
		case isa.OpLeave:
			rf.SP = rf.FP
			v, err := pop(sp, rf)
			if err != nil {
				st.Kind = Faulted
				st.Fault = err
				return st
			}
			rf.FP = v

		case isa.OpCallB:
			st.Builtins++
			res := env.Builtin(in.Imm, [4]uint32{rf.R[1], rf.R[2], rf.R[3], rf.R[4]})
			switch res.Ctl {
			case CtlReturn:
				rf.R[0] = res.Ret
			case CtlYield:
				rf.R[0] = res.Ret
				st.Kind = Yielded
				return st
			case CtlBlock:
				st.Kind = Blocked
				return st
			case CtlExit:
				st.Kind = Exited
				return st
			case CtlMigrate:
				st.Kind = Migrating
				st.Dest = res.Dest
				return st
			case CtlFault:
				st.Kind = Faulted
				st.Fault = res.Err
				return st
			default:
				panic(fmt.Sprintf("vm: bad builtin control %d", res.Ctl))
			}

		case isa.OpHalt:
			st.Kind = Exited
			return st

		default:
			st.Kind = Faulted
			st.Fault = fault("illegal instruction %v at %#08x", in.Op, rf.PC-isa.InstrBytes)
			return st
		}
	}
	st.Kind = Running
	return st
}

func push(sp *vmem.Space, t *Thread, v uint32) error {
	rf := t.Regs
	rf.SP -= 4
	if rf.SP < t.StackLimit {
		return fault("stack overflow (sp=%#08x limit=%#08x)", rf.SP, t.StackLimit)
	}
	return sp.Store32(rf.SP, v)
}

func pop(sp *vmem.Space, rf *RegFile) (uint32, error) {
	v, err := sp.Load32(rf.SP)
	if err != nil {
		return 0, err
	}
	rf.SP += 4
	return v, nil
}
