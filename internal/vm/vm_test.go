package vm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/vmem"
)

// testEnv records builtin calls and returns scripted results.
type testEnv struct {
	calls   []uint32
	args    [][4]uint32
	results map[uint32]BuiltinResult
}

func (e *testEnv) Builtin(id uint32, args [4]uint32) BuiltinResult {
	e.calls = append(e.calls, id)
	e.args = append(e.args, args)
	if r, ok := e.results[id]; ok {
		return r
	}
	return BuiltinResult{Ctl: CtlReturn, Ret: 0}
}

// harness assembles src, maps a 64 KB stack and returns a ready thread.
func harness(t *testing.T, src string) (*isa.Image, *vmem.Space, *Thread, *testEnv) {
	t.Helper()
	im := isa.NewImage()
	lp, err := asm.Assemble(im, src)
	if err != nil {
		t.Fatal(err)
	}
	sp := vmem.NewSpace()
	stackBase := isa.Addr(layout.IsoBase)
	if err := sp.Mmap(stackBase, layout.SlotSize); err != nil {
		t.Fatal(err)
	}
	if data := im.DataImage(); len(data) > 0 {
		if err := sp.Mmap(layout.DataBase, int(layout.PageCeil(uint32(len(data))))); err != nil {
			t.Fatal(err)
		}
		if err := sp.Write(layout.DataBase, data); err != nil {
			t.Fatal(err)
		}
	}
	rf := &RegFile{PC: uint32(lp.Entry), SP: uint32(stackBase) + layout.SlotSize}
	th := &Thread{Regs: rf, StackLimit: uint32(stackBase) + 256}
	return im, sp, th, &testEnv{results: map[uint32]BuiltinResult{}}
}

func run(t *testing.T, src string) (*Thread, Status, *vmem.Space, *testEnv) {
	t.Helper()
	im, sp, th, env := harness(t, src)
	st := Run(im, sp, th, env, 1_000_000)
	return th, st, sp, env
}

func TestArithmetic(t *testing.T) {
	th, st, _, _ := run(t, `
.program a
main:
    loadi r1, 20
    loadi r2, 3
    add  r3, r1, r2   ; 23
    sub  r4, r1, r2   ; 17
    mul  r5, r1, r2   ; 60
    div  r6, r1, r2   ; 6
    mod  r7, r1, r2   ; 2
    and  r8, r1, r2   ; 0
    or   r9, r1, r2   ; 23
    xor  r10, r1, r2  ; 23
    shl  r11, r1, r2  ; 160
    shr  r12, r1, r2  ; 2
    addi r13, r1, -25 ; -5
    halt
`)
	if st.Kind != Exited {
		t.Fatalf("status = %v (%v)", st.Kind, st.Fault)
	}
	want := map[int]uint32{3: 23, 4: 17, 5: 60, 6: 6, 7: 2, 8: 0, 9: 23, 10: 23, 11: 160, 12: 2}
	for r, v := range want {
		if th.Regs.R[r] != v {
			t.Errorf("r%d = %d, want %d", r, th.Regs.R[r], v)
		}
	}
	if int32(th.Regs.R[13]) != -5 {
		t.Errorf("r13 = %d, want -5", int32(th.Regs.R[13]))
	}
	if st.Instrs != 14 {
		t.Errorf("Instrs = %d, want 14", st.Instrs)
	}
}

func TestArithmeticMatchesGoSemantics(t *testing.T) {
	im := isa.NewImage()
	lp, err := asm.Assemble(im, `
.program ops
main:
    add r3, r1, r2
    sub r4, r1, r2
    mul r5, r1, r2
    and r6, r1, r2
    or  r7, r1, r2
    xor r8, r1, r2
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	sp := vmem.NewSpace()
	f := func(a, b uint32) bool {
		rf := &RegFile{PC: uint32(lp.Entry), SP: 0x1000}
		rf.R[1], rf.R[2] = a, b
		th := &Thread{Regs: rf}
		st := Run(im, sp, th, &testEnv{}, 100)
		return st.Kind == Exited &&
			rf.R[3] == a+b && rf.R[4] == a-b && rf.R[5] == a*b &&
			rf.R[6] == a&b && rf.R[7] == a|b && rf.R[8] == a^b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBranches(t *testing.T) {
	th, st, _, _ := run(t, `
.program b
main:
    loadi r1, -1       ; signed -1
    loadi r2, 1
    blt   r1, r2, ok1  ; signed: -1 < 1
    halt
ok1:
    bltu  r2, r1, ok2  ; unsigned: 1 < 0xffffffff
    halt
ok2:
    beq   r1, r1, ok3
    halt
ok3:
    bne   r1, r2, ok4
    halt
ok4:
    bge   r2, r1, ok5  ; signed 1 >= -1
    halt
ok5:
    bgeu  r1, r2, ok6  ; unsigned max >= 1
    halt
ok6:
    loadi r15, 777
    halt
`)
	if st.Kind != Exited || th.Regs.R[15] != 777 {
		t.Fatalf("branch chain broken: r15=%d st=%v", th.Regs.R[15], st.Kind)
	}
}

func TestLoopSum(t *testing.T) {
	th, st, _, _ := run(t, `
.program sum
main:
    loadi r1, 0     ; i
    loadi r2, 0     ; sum
    loadi r3, 100
top:
    bge   r1, r3, done
    add   r2, r2, r1
    addi  r1, r1, 1
    br    top
done:
    halt
`)
	if st.Kind != Exited || th.Regs.R[2] != 4950 {
		t.Fatalf("sum = %d, st = %v", th.Regs.R[2], st.Kind)
	}
}

func TestMemoryAndByteOps(t *testing.T) {
	th, st, _, _ := run(t, `
.program mem
main:
    mov   r1, sp
    addi  r1, r1, -64
    loadi r2, 0x11223344
    store [r1+8], r2
    load  r3, [r1+8]
    loadb r4, [r1+8]    ; low byte, little endian = 0x44
    loadi r5, 0xff
    storeb [r1+9], r5
    load  r6, [r1+8]    ; 0x1122ff44
    halt
`)
	if st.Kind != Exited {
		t.Fatalf("st = %v (%v)", st.Kind, st.Fault)
	}
	if th.Regs.R[3] != 0x11223344 || th.Regs.R[4] != 0x44 || th.Regs.R[6] != 0x1122ff44 {
		t.Fatalf("r3=%#x r4=%#x r6=%#x", th.Regs.R[3], th.Regs.R[4], th.Regs.R[6])
	}
}

func TestCallEnterLeaveFactorial(t *testing.T) {
	// Recursive factorial exercises the full frame discipline: CALL/RET,
	// ENTER/LEAVE, arguments on the stack, locals, and the FP chain.
	th, st, _, _ := run(t, `
.program fact
main:
    loadi r1, 10
    push  r1
    call  fact
    addi  sp, sp, 4
    halt
fact:                  ; arg n at [fp+8]; returns r0 = n!
    enter 4
    load  r1, [fp+8]
    loadi r2, 2
    bge   r1, r2, rec
    loadi r0, 1
    leave
    ret
rec:
    store [fp-4], r1   ; save n in a local (in simulated memory!)
    addi  r1, r1, -1
    push  r1
    call  fact
    addi  sp, sp, 4
    load  r1, [fp-4]
    mul   r0, r0, r1
    leave
    ret
`)
	if st.Kind != Exited {
		t.Fatalf("st = %v (%v)", st.Kind, st.Fault)
	}
	if th.Regs.R[0] != 3628800 {
		t.Fatalf("10! = %d", th.Regs.R[0])
	}
}

func TestFPChainLivesInMemory(t *testing.T) {
	// After ENTER, the word at [FP] is the caller's FP: the compiler-
	// generated chain the paper relies on. Verify it by walking it.
	im, sp, th, env := harness(t, `
.program chain
main:
    enter 8
    call  f1
    halt
f1:
    enter 16
    call  f2
    leave
    ret
f2:
    enter 4
    callb yield     ; stop here so we can inspect three live frames
    leave
    ret
`)
	env.results[isa.BYield] = BuiltinResult{Ctl: CtlYield}
	st := Run(im, sp, th, env, 10_000)
	if st.Kind != Yielded {
		t.Fatalf("st = %v (%v)", st.Kind, st.Fault)
	}
	// Walk the chain: FP -> caller FP -> caller's caller FP -> 0.
	depth := 0
	fp := th.Regs.FP
	for fp != 0 {
		depth++
		v, err := sp.Load32(fp)
		if err != nil {
			t.Fatalf("chain walk fault at %#x: %v", fp, err)
		}
		if v != 0 && v <= fp {
			t.Fatalf("chain not monotonic: %#x -> %#x", fp, v)
		}
		fp = v
		if depth > 10 {
			t.Fatal("chain too deep")
		}
	}
	if depth != 3 {
		t.Fatalf("frame depth = %d, want 3", depth)
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	_, st, _, _ := run(t, `
.program dz
main:
    loadi r1, 5
    loadi r2, 0
    div   r3, r1, r2
    halt
`)
	if st.Kind != Faulted || !strings.Contains(st.Fault.Error(), "division by zero") {
		t.Fatalf("st = %v (%v)", st.Kind, st.Fault)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	_, st, _, _ := run(t, `
.program sf
main:
    loadi r1, 0x500000
    load  r2, [r1]
    halt
`)
	if st.Kind != Faulted || !vmem.IsSegfault(st.Fault) {
		t.Fatalf("st = %v (%v)", st.Kind, st.Fault)
	}
}

func TestStackOverflowFaults(t *testing.T) {
	_, st, _, _ := run(t, `
.program so
main:
    call main      ; infinite recursion
`)
	if st.Kind != Faulted || !strings.Contains(st.Fault.Error(), "stack overflow") {
		t.Fatalf("st = %v (%v)", st.Kind, st.Fault)
	}
}

func TestEnterOverflowFaults(t *testing.T) {
	_, st, _, _ := run(t, `
.program eo
main:
    enter 0x100000   ; locals bigger than the stack
    halt
`)
	if st.Kind != Faulted || !strings.Contains(st.Fault.Error(), "stack overflow") {
		t.Fatalf("st = %v (%v)", st.Kind, st.Fault)
	}
}

func TestBadFetchFaults(t *testing.T) {
	im, sp, th, env := harness(t, ".program f\nmain:\n nop\n nop")
	th.Regs.PC = 0x10 // outside the code region
	st := Run(im, sp, th, env, 10)
	if st.Kind != Faulted || !strings.Contains(st.Fault.Error(), "instruction fetch") {
		t.Fatalf("st = %v (%v)", st.Kind, st.Fault)
	}
}

func TestRunOffEndFaults(t *testing.T) {
	_, st, _, _ := run(t, ".program off\nmain:\n nop") // no halt
	if st.Kind != Faulted {
		t.Fatalf("st = %v", st.Kind)
	}
}

func TestBudgetPreemption(t *testing.T) {
	im, sp, th, env := harness(t, `
.program spin
main:
    br main
`)
	st := Run(im, sp, th, env, 50)
	if st.Kind != Running || st.Instrs != 50 {
		t.Fatalf("st = %v instrs = %d", st.Kind, st.Instrs)
	}
	// Resuming continues seamlessly.
	st = Run(im, sp, th, env, 70)
	if st.Kind != Running || st.Instrs != 70 {
		t.Fatalf("resume st = %v instrs = %d", st.Kind, st.Instrs)
	}
}

func TestBuiltinReturnAndArgs(t *testing.T) {
	im, sp, th, env := harness(t, `
.program bi
main:
    loadi r1, 11
    loadi r2, 22
    loadi r3, 33
    loadi r4, 44
    callb isomalloc
    halt
`)
	env.results[isa.BIsomalloc] = BuiltinResult{Ctl: CtlReturn, Ret: 0xbeef}
	st := Run(im, sp, th, env, 100)
	if st.Kind != Exited {
		t.Fatalf("st = %v", st.Kind)
	}
	if th.Regs.R[0] != 0xbeef {
		t.Fatalf("r0 = %#x", th.Regs.R[0])
	}
	if len(env.calls) != 1 || env.calls[0] != isa.BIsomalloc {
		t.Fatalf("calls = %v", env.calls)
	}
	if env.args[0] != [4]uint32{11, 22, 33, 44} {
		t.Fatalf("args = %v", env.args[0])
	}
	if st.Builtins != 1 {
		t.Fatalf("Builtins = %d", st.Builtins)
	}
}

func TestBuiltinControls(t *testing.T) {
	cases := []struct {
		ctl  Control
		want StatusKind
	}{
		{CtlYield, Yielded},
		{CtlBlock, Blocked},
		{CtlExit, Exited},
		{CtlMigrate, Migrating},
		{CtlFault, Faulted},
	}
	for _, c := range cases {
		im, sp, th, env := harness(t, `
.program ctl
main:
    callb exit
    loadi r15, 1
    halt
`)
		env.results[isa.BExit] = BuiltinResult{Ctl: c.ctl, Dest: 3, Err: fault("scripted")}
		st := Run(im, sp, th, env, 100)
		if st.Kind != c.want {
			t.Errorf("ctl %v: st = %v", c.ctl, st.Kind)
		}
		if c.ctl == CtlMigrate && st.Dest != 3 {
			t.Errorf("migrate dest = %d", st.Dest)
		}
		if th.Regs.R[15] != 0 {
			t.Errorf("ctl %v: execution continued past builtin", c.ctl)
		}
		// PC is already past the callb: resuming executes the rest.
		if c.ctl == CtlYield || c.ctl == CtlBlock || c.ctl == CtlMigrate {
			st = Run(im, sp, th, env, 100)
			if st.Kind != Exited || th.Regs.R[15] != 1 {
				t.Errorf("ctl %v: resume failed st=%v r15=%d", c.ctl, st.Kind, th.Regs.R[15])
			}
		}
	}
}

func TestPushPopRoundTrip(t *testing.T) {
	th, st, _, _ := run(t, `
.program pp
main:
    loadi r1, 111
    loadi r2, 222
    push  r1
    push  r2
    pop   r3    ; 222
    pop   r4    ; 111
    halt
`)
	if st.Kind != Exited || th.Regs.R[3] != 222 || th.Regs.R[4] != 111 {
		t.Fatalf("r3=%d r4=%d st=%v", th.Regs.R[3], th.Regs.R[4], st.Kind)
	}
}

func TestRegFileGetSet(t *testing.T) {
	rf := &RegFile{}
	rf.Set(isa.SP, 100)
	rf.Set(isa.FP, 200)
	rf.Set(isa.R7, 7)
	if rf.Get(isa.SP) != 100 || rf.Get(isa.FP) != 200 || rf.Get(isa.R7) != 7 {
		t.Fatal("Get/Set broken")
	}
	if rf.SP != 100 || rf.FP != 200 {
		t.Fatal("SP/FP fields not aliased")
	}
}
