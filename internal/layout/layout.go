// Package layout defines the simulated 32-bit process memory layout shared by
// every node of a PM2 cluster (paper, Figure 5).
//
// All nodes are binary compatible and run "the same operating system": the
// code, static data, local heap, iso-address area and process stack cover the
// same virtual ranges on every node. The iso-address area sits between the
// local heap and the process stack and is divided into fixed-size slots.
package layout

// Addr is a simulated 32-bit virtual address. The reproduction keeps the
// paper's era-accurate 32-bit address space: pointers stored in simulated
// memory are 4-byte little-endian words.
type Addr = uint32

// Geometry constants of the simulated address space.
const (
	// PageSize is the size of a virtual memory page (4 KB, as on the
	// paper's Linux 2.0.36 / PentiumPro nodes).
	PageSize = 4 * 1024
	// PageShift is log2(PageSize).
	PageShift = 12

	// SlotSize is the size of an iso-address slot: 64 KB = 16 pages
	// (paper §4.1: "the slot size was chosen so as to fit a thread stack
	// and was fixed to 64 kB, that is 16 pages").
	SlotSize = 64 * 1024
	// SlotShift is log2(SlotSize).
	SlotShift = 16
	// PagesPerSlot is the number of pages covered by one slot.
	PagesPerSlot = SlotSize / PageSize

	// WordSize is the machine word (and pointer) size in bytes.
	WordSize = 4
)

// Region boundaries (Figure 5). The iso-address area is exactly 3.5 GB so
// that the per-node slot bitmap is exactly 7 KB, matching the paper's
// arithmetic (3.5 GB / 64 KB = 57344 slots = 7168 bytes of bitmap).
const (
	// CodeBase .. CodeEnd holds the replicated SPMD program text. It is
	// mapped at the same address on every node, so code addresses (return
	// addresses on thread stacks in particular) stay valid across
	// migration without any translation.
	CodeBase Addr = 0x0040_0000
	CodeEnd  Addr = 0x0100_0000

	// DataBase .. DataEnd holds static data (the string table of the
	// loaded program, global counters, ...). Identical on every node.
	DataBase Addr = 0x0100_0000
	DataEnd  Addr = 0x0200_0000

	// HeapBase .. HeapEnd is the node-local heap used by the baseline
	// malloc/free. Data allocated here never migrates; the same range on
	// another node holds that node's own, unrelated heap.
	HeapBase Addr = 0x0200_0000
	HeapEnd  Addr = 0x1800_0000

	// IsoBase .. IsoEnd is the iso-address area: globally partitioned,
	// locally allocated. A slot busy on one node is kept free on all
	// others.
	IsoBase Addr = 0x1800_0000
	IsoEnd  Addr = 0xF800_0000

	// StackBase .. StackEnd is the (unique) container-process stack,
	// located at the same virtual address on all nodes. PM2 threads do
	// not run on it; their stacks live in iso-address slots.
	StackBase Addr = 0xF800_0000
	StackEnd  Addr = 0xF801_0000
)

// Derived sizes.
const (
	// IsoAreaSize is the byte size of the iso-address area (3.5 GB).
	IsoAreaSize = uint64(IsoEnd - IsoBase)
	// SlotCount is the number of slots in the iso-address area (57344).
	SlotCount = int(IsoAreaSize / SlotSize)
	// BitmapBytes is the size of a per-node slot bitmap (7 KB).
	BitmapBytes = SlotCount / 8
)

// SlotIndex returns the slot number containing addr. addr must lie inside the
// iso-address area; callers validate with InIsoArea first.
func SlotIndex(addr Addr) int {
	return int((addr - IsoBase) >> SlotShift)
}

// SlotBase returns the first address of slot index i.
func SlotBase(i int) Addr {
	return IsoBase + Addr(i)<<SlotShift
}

// InIsoArea reports whether addr lies inside the iso-address area.
func InIsoArea(addr Addr) bool {
	return addr >= IsoBase && addr < IsoEnd
}

// InHeap reports whether addr lies inside the node-local heap region.
func InHeap(addr Addr) bool {
	return addr >= HeapBase && addr < HeapEnd
}

// InCode reports whether addr lies inside the code region.
func InCode(addr Addr) bool {
	return addr >= CodeBase && addr < CodeEnd
}

// InData reports whether addr lies inside the static data region.
func InData(addr Addr) bool {
	return addr >= DataBase && addr < DataEnd
}

// PageAligned reports whether addr is a multiple of the page size.
func PageAligned(addr Addr) bool { return addr&(PageSize-1) == 0 }

// SlotAligned reports whether addr is a multiple of the slot size.
func SlotAligned(addr Addr) bool { return addr&(SlotSize-1) == 0 }

// PageFloor rounds addr down to a page boundary.
func PageFloor(addr Addr) Addr { return addr &^ (PageSize - 1) }

// PageCeil rounds n up to a whole number of pages.
func PageCeil(n uint32) uint32 { return (n + PageSize - 1) &^ (PageSize - 1) }

// SlotCeil rounds n up to a whole number of slots and reports that count.
func SlotCeil(n uint32) int { return int((uint64(n) + SlotSize - 1) / SlotSize) }

// WordAligned reports whether addr is a multiple of the word size.
func WordAligned(addr Addr) bool { return addr&(WordSize-1) == 0 }
