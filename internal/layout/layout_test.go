package layout

import (
	"testing"
	"testing/quick"
)

// TestLayoutFigure5 pins the paper's Figure 5 arithmetic: the iso-address
// area is 3.5 GB, slots are 64 KB (16 pages), so there are 57344 slots and
// the per-node bitmap is exactly 7 KB.
func TestLayoutFigure5(t *testing.T) {
	if got, want := IsoAreaSize, uint64(3584)*1024*1024; got != want {
		t.Errorf("iso area size = %d, want 3.5 GB (%d)", got, want)
	}
	if SlotCount != 57344 {
		t.Errorf("SlotCount = %d, want 57344", SlotCount)
	}
	if BitmapBytes != 7*1024 {
		t.Errorf("BitmapBytes = %d, want 7168", BitmapBytes)
	}
	if PagesPerSlot != 16 {
		t.Errorf("PagesPerSlot = %d, want 16", PagesPerSlot)
	}
}

func TestRegionsAreOrderedAndDisjoint(t *testing.T) {
	bounds := []struct {
		name       string
		base, end  Addr
		wantBeside Addr // next region's base, 0 = don't care
	}{
		{"code", CodeBase, CodeEnd, DataBase},
		{"data", DataBase, DataEnd, HeapBase},
		{"heap", HeapBase, HeapEnd, IsoBase},
		{"iso", IsoBase, IsoEnd, StackBase},
		{"stack", StackBase, StackEnd, 0},
	}
	for _, r := range bounds {
		if r.base >= r.end {
			t.Errorf("%s region empty or inverted: [%#x, %#x)", r.name, r.base, r.end)
		}
		if r.wantBeside != 0 && r.end > r.wantBeside {
			t.Errorf("%s region overlaps next: end %#x > next base %#x", r.name, r.end, r.wantBeside)
		}
		if !PageAligned(r.base) || !PageAligned(r.end) {
			t.Errorf("%s region not page aligned: [%#x, %#x)", r.name, r.base, r.end)
		}
	}
	// The iso area sits between the heap and the process stack (Fig. 5).
	if !(HeapEnd <= IsoBase && IsoEnd <= StackBase) {
		t.Errorf("iso area not between heap and stack")
	}
}

func TestSlotIndexRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, 2, 1000, SlotCount - 1} {
		base := SlotBase(i)
		if !InIsoArea(base) {
			t.Errorf("SlotBase(%d) = %#x not in iso area", i, base)
		}
		if got := SlotIndex(base); got != i {
			t.Errorf("SlotIndex(SlotBase(%d)) = %d", i, got)
		}
		if got := SlotIndex(base + SlotSize - 1); got != i {
			t.Errorf("SlotIndex(last byte of slot %d) = %d", i, got)
		}
		if !SlotAligned(base) {
			t.Errorf("SlotBase(%d) = %#x not slot aligned", i, base)
		}
	}
	if end := SlotBase(SlotCount-1) + SlotSize; end != IsoEnd {
		t.Errorf("last slot ends at %#x, want IsoEnd %#x", end, IsoEnd)
	}
}

func TestSlotIndexProperty(t *testing.T) {
	f := func(off uint32) bool {
		addr := IsoBase + Addr(uint64(off)%IsoAreaSize)
		i := SlotIndex(addr)
		return i >= 0 && i < SlotCount && SlotBase(i) <= addr && addr < SlotBase(i)+SlotSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignmentHelpers(t *testing.T) {
	cases := []struct {
		n    uint32
		ceil uint32
	}{
		{0, 0},
		{1, PageSize},
		{PageSize, PageSize},
		{PageSize + 1, 2 * PageSize},
	}
	for _, c := range cases {
		if got := PageCeil(c.n); got != c.ceil {
			t.Errorf("PageCeil(%d) = %d, want %d", c.n, got, c.ceil)
		}
	}
	slotCases := []struct {
		n    uint32
		want int
	}{
		{0, 0},
		{1, 1},
		{SlotSize, 1},
		{SlotSize + 1, 2},
		{8 * 1024 * 1024, 128},
	}
	for _, c := range slotCases {
		if got := SlotCeil(c.n); got != c.want {
			t.Errorf("SlotCeil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if PageFloor(0x1234_5678) != 0x1234_5000 {
		t.Errorf("PageFloor broken: %#x", PageFloor(0x1234_5678))
	}
	if !WordAligned(8) || WordAligned(6) {
		t.Errorf("WordAligned broken")
	}
}

func TestRegionPredicates(t *testing.T) {
	if !InIsoArea(IsoBase) || InIsoArea(IsoEnd) || InIsoArea(IsoBase-1) {
		t.Errorf("InIsoArea boundary conditions wrong")
	}
	if !InHeap(HeapBase) || InHeap(HeapEnd) {
		t.Errorf("InHeap boundary conditions wrong")
	}
	if !InCode(CodeBase) || InCode(CodeEnd) {
		t.Errorf("InCode boundary conditions wrong")
	}
	if !InData(DataBase) || InData(DataEnd) {
		t.Errorf("InData boundary conditions wrong")
	}
}
