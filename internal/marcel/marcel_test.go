package marcel

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/vm"
	"repro/internal/vmem"
)

// fakeEnv implements the builtins marcel's own tests need, standing in for
// the PM2 runtime.
type fakeEnv struct {
	s  *Scheduler
	ns *core.NodeSlots
}

func (e *fakeEnv) Builtin(id uint32, args [4]uint32) vm.BuiltinResult {
	t := e.s.Current()
	switch id {
	case isa.BYield:
		return vm.BuiltinResult{Ctl: vm.CtlYield}
	case isa.BExit:
		return vm.BuiltinResult{Ctl: vm.CtlExit}
	case isa.BMigrate:
		return vm.BuiltinResult{Ctl: vm.CtlMigrate, Dest: int(args[0])}
	case isa.BSelfThread:
		return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: t.Desc}
	case isa.BIsomalloc:
		addr, err := e.s.Arena(t).Isomalloc(args[0], e.ns)
		if err != nil {
			return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: 0}
		}
		return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: addr}
	case isa.BIsofree:
		if err := e.s.Arena(t).Isofree(args[0], e.ns); err != nil {
			return vm.BuiltinResult{Ctl: vm.CtlFault, Err: err}
		}
		return vm.BuiltinResult{Ctl: vm.CtlReturn}
	case isa.BJoin:
		if e.s.Join(t, args[0]) {
			return vm.BuiltinResult{Ctl: vm.CtlReturn}
		}
		return vm.BuiltinResult{Ctl: vm.CtlBlock}
	}
	return vm.BuiltinResult{Ctl: vm.CtlFault, Err: vmErr(id)}
}

func vmErr(id uint32) error {
	return &unsupported{id}
}

type unsupported struct{ id uint32 }

func (u *unsupported) Error() string { return "unsupported builtin " + isa.BuiltinName(u.id) }

type fixture struct {
	im  *isa.Image
	ns  *core.NodeSlots
	s   *Scheduler
	env *fakeEnv
}

func newFixture(t *testing.T, quantum int64) *fixture {
	t.Helper()
	im := isa.NewImage()
	ns := core.NewNodeSlots(vmem.NewSpace(), core.NopCharger{}, core.NodeConfig{
		NodeID: 0, NumNodes: 1, CacheCap: 4,
	})
	s := NewScheduler(ns.Space(), im, ns, core.NopCharger{}, Config{NodeID: 0, Quantum: quantum})
	env := &fakeEnv{s: s, ns: ns}
	s.SetEnv(env)
	return &fixture{im: im, ns: ns, s: s, env: env}
}

func (f *fixture) program(t *testing.T, src string) Addr {
	t.Helper()
	lp, err := asm.Assemble(f.im, src)
	if err != nil {
		t.Fatal(err)
	}
	return lp.Entry
}

// drain runs the scheduler until no thread is ready (bounded).
func (f *fixture) drain(t *testing.T) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if !f.s.RunOne() {
			return
		}
	}
	t.Fatal("scheduler did not drain")
}

func TestCreateRunExit(t *testing.T) {
	f := newFixture(t, 64)
	entry := f.program(t, `
.program trivial
main:
    loadi r2, 5
    loadi r3, 7
    mul   r4, r2, r3
    halt
`)
	var exited []*Thread
	f.s.SetHooks(Hooks{Exit: func(th *Thread) { exited = append(exited, th) }})
	th, err := f.s.Create(entry, 0)
	if err != nil {
		t.Fatal(err)
	}
	if th.TID == 0 || !layout.InIsoArea(th.Desc) {
		t.Fatalf("thread = %+v", th)
	}
	f.drain(t)
	if len(exited) != 1 || exited[0].TID != th.TID {
		t.Fatalf("exit hook: %+v", exited)
	}
	if f.s.Threads() != 0 {
		t.Fatal("thread not reaped")
	}
	// All slots returned to the node (the stack slot included).
	if f.ns.OwnedFree() != layout.SlotCount {
		t.Fatalf("owned = %d, want all", f.ns.OwnedFree())
	}
}

func TestArgumentPassing(t *testing.T) {
	f := newFixture(t, 64)
	// The thread stores its argument into isomalloc'd memory.
	entry := f.program(t, `
.program argstore
main:
    mov   r5, r1        ; save arg
    loadi r1, 64
    callb isomalloc
    mov   r6, r0        ; yield clobbers r0
    store [r6], r5
    callb yield         ; park so we can inspect before exit
    halt
`)
	th, err := f.s.Create(entry, 0xCAFE)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && f.s.RunOne(); i++ {
	}
	// After the yield the thread is still resident; r6 holds the
	// isomalloc address.
	addr := th.Regs.R[6]
	v, err := f.ns.Space().Load32(addr)
	if err != nil || v != 0xCAFE {
		t.Fatalf("arg in memory = %#x, %v", v, err)
	}
}

func TestRoundRobinInterleaving(t *testing.T) {
	f := newFixture(t, 10)
	entry := f.program(t, `
.program spin
main:
    loadi r2, 0
    loadi r3, 100
top:
    addi  r2, r2, 1
    blt   r2, r3, top
    halt
`)
	a, _ := f.s.Create(entry, 0)
	b, _ := f.s.Create(entry, 0)
	// With a quantum of 10 and a 100-iteration loop, both threads must
	// interleave: after 4 dispatches, both have run.
	for i := 0; i < 4; i++ {
		f.s.RunOne()
	}
	if a.Regs.R[2] == 0 || b.Regs.R[2] == 0 {
		t.Fatalf("no interleaving: a=%d b=%d", a.Regs.R[2], b.Regs.R[2])
	}
	f.drain(t)
	if f.s.Threads() != 0 {
		t.Fatal("threads not finished")
	}
}

func TestFaultHookAndCleanup(t *testing.T) {
	f := newFixture(t, 64)
	entry := f.program(t, `
.program crash
main:
    loadi r1, 0x10
    load  r2, [r1]     ; unmapped
    halt
`)
	var faults []error
	f.s.SetHooks(Hooks{Fault: func(th *Thread, err error) { faults = append(faults, err) }})
	if _, err := f.s.Create(entry, 0); err != nil {
		t.Fatal(err)
	}
	f.drain(t)
	if len(faults) != 1 || !strings.Contains(faults[0].Error(), "segmentation fault") {
		t.Fatalf("faults = %v", faults)
	}
	if f.ns.OwnedFree() != layout.SlotCount {
		t.Fatal("faulted thread's slots leaked")
	}
}

func TestJoin(t *testing.T) {
	f := newFixture(t, 8)
	worker := f.program(t, `
.program worker
main:
    loadi r2, 0
    loadi r3, 50
wtop:
    addi  r2, r2, 1
    blt   r2, r3, wtop
    halt
`)
	_ = worker
	f2 := f.program(t, `
.program joiner
main:
    callb join         ; r1 = tid of the worker (passed as arg)
    loadi r15, 123
    halt
`)
	w, err := f.s.Create(worker, 0)
	if err != nil {
		t.Fatal(err)
	}
	j, err := f.s.Create(f2, w.TID)
	if err != nil {
		t.Fatal(err)
	}
	j.Regs.R[1] = w.TID
	f.drain(t)
	if j.Regs.R[15] != 123 {
		t.Fatal("joiner did not resume after worker exit")
	}
	// Joining an already-dead thread returns immediately.
	j2, _ := f.s.Create(f2, w.TID)
	j2.Regs.R[1] = w.TID
	f.drain(t)
	if j2.Regs.R[15] != 123 {
		t.Fatal("join on dead thread should not block")
	}
}

func TestBlockAndWake(t *testing.T) {
	f := newFixture(t, 64)
	entry := f.program(t, `
.program blocker
main:
    callb join        ; will block (self-arranged below)
    mov   r15, r0     ; r0 set by Wake
    halt
`)
	victim := f.program(t, `
.program sleeper
main:
top:
    callb yield
    br top
`)
	v, _ := f.s.Create(victim, 0)
	b, _ := f.s.Create(entry, 0)
	b.Regs.R[1] = v.TID // join the immortal sleeper → blocks
	for i := 0; i < 20; i++ {
		f.s.RunOne()
	}
	if !b.blocked {
		t.Fatal("joiner should be blocked")
	}
	f.s.Wake(b, 77)
	for i := 0; i < 20; i++ {
		f.s.RunOne()
	}
	if b.Regs.R[15] != 77 {
		t.Fatalf("r15 = %d, want the Wake value", b.Regs.R[15])
	}
}

func TestFreezeThawRoundTrip(t *testing.T) {
	f := newFixture(t, 6)
	entry := f.program(t, `
.program counter
main:
    loadi r2, 0
    loadi r3, 1000
top:
    addi  r2, r2, 1
    blt   r2, r3, top
    mov   r15, r2
    halt
`)
	th, err := f.s.Create(entry, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Run a few quanta, then freeze mid-loop.
	for i := 0; i < 5; i++ {
		f.s.RunOne()
	}
	mid := th.Regs.R[2]
	if mid == 0 || mid >= 1000 {
		t.Fatalf("r2 = %d, want mid-loop", mid)
	}
	if err := f.s.Freeze(th); err != nil {
		t.Fatal(err)
	}
	f.s.Detach(th)
	if f.s.Threads() != 0 {
		t.Fatal("detach failed")
	}
	// Thaw from memory alone: state must continue exactly.
	th2, err := f.s.Thaw(th.Desc)
	if err != nil {
		t.Fatal(err)
	}
	if th2.TID != th.TID || th2.Regs.R[2] != mid || th2.Regs.PC != th.Regs.PC {
		t.Fatalf("thawed state differs: %+v vs %+v", th2.Regs, th.Regs)
	}
	f.drain(t)
	if th2.Regs.R[15] != 1000 {
		t.Fatalf("r15 = %d after thawed completion", th2.Regs.R[15])
	}
}

func TestVoluntaryMigrationHook(t *testing.T) {
	f := newFixture(t, 64)
	entry := f.program(t, `
.program mig
main:
    loadi r1, 1
    callb migrate
    halt
`)
	var gone []*Thread
	var dests []int
	f.s.SetHooks(Hooks{Migrate: func(th *Thread, dest int) { gone = append(gone, th); dests = append(dests, dest) }})
	th, _ := f.s.Create(entry, 0)
	f.drain(t)
	if len(gone) != 1 || gone[0].TID != th.TID || dests[0] != 1 {
		t.Fatalf("migration hook: %v %v", gone, dests)
	}
	if f.s.Threads() != 0 {
		t.Fatal("migrating thread still resident")
	}
	// Frozen descriptor records the state.
	buf, _ := f.ns.Space().ReadBytes(th.Desc+dStatus, 4)
	if buf[0] != StatusFrozen {
		t.Fatalf("descriptor status = %d", buf[0])
	}
}

func TestPreemptiveMigrationRequest(t *testing.T) {
	f := newFixture(t, 8)
	entry := f.program(t, `
.program loopy
main:
top:
    addi r2, r2, 1
    br top
`)
	var migrated *Thread
	var dest int
	f.s.SetHooks(Hooks{Migrate: func(th *Thread, d int) { migrated = th; dest = d }})
	th, _ := f.s.Create(entry, 0)
	for i := 0; i < 3; i++ {
		f.s.RunOne()
	}
	if !f.s.RequestMigration(th.TID, 2) {
		t.Fatal("RequestMigration failed")
	}
	f.s.RunOne() // boundary: migration fires instead of another quantum
	if migrated == nil || migrated.TID != th.TID || dest != 2 {
		t.Fatalf("preemptive migration: %+v dest=%d", migrated, dest)
	}
	if f.s.RequestMigration(999, 1) {
		t.Fatal("RequestMigration on unknown tid should fail")
	}
}

func TestSchedulerStats(t *testing.T) {
	f := newFixture(t, 16)
	entry := f.program(t, `
.program quick
main:
    halt
`)
	f.s.Create(entry, 0)
	f.s.Create(entry, 0)
	f.drain(t)
	created, finished, faulted, dispatches, instrs := f.s.Stats()
	if created != 2 || finished != 2 || faulted != 0 {
		t.Fatalf("stats: %d %d %d", created, finished, faulted)
	}
	if dispatches < 2 || instrs < 2 {
		t.Fatalf("dispatches=%d instrs=%d", dispatches, instrs)
	}
}

func TestThawRejectsGarbage(t *testing.T) {
	f := newFixture(t, 16)
	sp := f.ns.Space()
	if err := sp.Mmap(layout.IsoBase, layout.SlotSize); err != nil {
		t.Fatal(err)
	}
	if _, err := f.s.Thaw(layout.IsoBase + core.SlotHeaderSize); err == nil {
		t.Fatal("thawing garbage must fail")
	}
}
