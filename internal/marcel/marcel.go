// Package marcel reproduces Marcel, PM2's user-level thread library: thread
// creation, round-robin scheduling with quantum preemption, join, freeze and
// thaw.
//
// A thread's authoritative state lives in simulated memory: its descriptor
// (registers, program counter, stack and frame pointers, slot-list head) is
// stored at a fixed offset inside its stack slot, and its stack grows down
// from the slot end. The Go-side Thread object is merely a cache that is
// spilled into the descriptor on freeze and reloaded on thaw — which is
// exactly why migration can move a thread by copying slot bytes: Thaw on the
// destination node reconstructs everything from memory at the same
// addresses (paper §2: a thread is "a set of resources: its state descriptor
// and its private execution stack").
package marcel

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/vm"
	"repro/internal/vmem"
)

// Addr is a simulated virtual address.
type Addr = layout.Addr

// Thread descriptor layout, at stackSlotBase + core.SlotHeaderSize. All
// fields are 32-bit little-endian words in simulated memory.
const (
	// DescMagic marks a valid descriptor.
	DescMagic = 0xDE5C0001

	dMagic    = 0
	dTID      = 4
	dPC       = 8
	dSP       = 12
	dFP       = 16
	dStatus   = 20
	dSlotHead = 24 // head of the thread's slot list (its stack slot)
	dEntry    = 28
	dArg      = 32
	dRegs     = 36 // 16 words

	// DescSize is the reserved descriptor area inside the stack slot.
	DescSize = 128

	// Exported field offsets for runtime components that patch frozen
	// descriptors (the relocation baseline).
	DescOffPC       = dPC
	DescOffSP       = dSP
	DescOffFP       = dFP
	DescOffSlotHead = dSlotHead
)

// Descriptor status words (informational; the Go scheduler state is
// authoritative while the thread is resident).
const (
	StatusReady   = 1
	StatusRunning = 2
	StatusBlocked = 3
	StatusExited  = 4
	StatusFrozen  = 5
)

// Thread is the resident, Go-side view of one PM2 thread.
type Thread struct {
	// TID is the cluster-unique thread id.
	TID uint32
	// Desc is the descriptor address — the value of marcel_self(), and
	// stable across migrations thanks to iso-address allocation.
	Desc Addr
	// Regs caches the register file while the thread is resident.
	Regs vm.RegFile
	// Entry and Arg record the start configuration (for diagnostics).
	Entry Addr
	Arg   uint32
	// MigrateTo is the pending preemptive-migration destination (-1 =
	// none); checked at the next quantum boundary.
	MigrateTo int

	ready   bool
	blocked bool
}

// Blocked reports whether the thread is parked waiting for the runtime.
func (t *Thread) Blocked() bool { return t.blocked }

// StackBase returns the thread's stack slot base.
func (t *Thread) StackBase() Addr { return t.Desc - core.SlotHeaderSize }

// StackLimit returns the lowest valid stack address.
func (t *Thread) StackLimit() Addr { return t.Desc + DescSize }

// HeadAddr returns the simulated address of the slot-list head pointer.
func (t *Thread) HeadAddr() Addr { return t.Desc + dSlotHead }

// Hooks connect the scheduler to the runtime (PM2).
type Hooks struct {
	// Exit runs after a thread terminates and its slots are released.
	Exit func(t *Thread)
	// Fault runs when a thread dies on an error (segfault, ...). The
	// thread's slots are released after the hook returns.
	Fault func(t *Thread, err error)
	// Migrate runs when a thread must leave this node (voluntary
	// pm2_migrate or preemptive request). The scheduler has already
	// frozen the thread and removed it from its tables; the hook packs
	// and ships it.
	Migrate func(t *Thread, dest int)
}

// Config parameterizes a scheduler.
type Config struct {
	NodeID int
	// Quantum is the preemption budget in instructions per dispatch.
	Quantum int64
	Model   *cost.Model
}

// Scheduler is one node's thread scheduler.
type Scheduler struct {
	cfg     Config
	sp      *vmem.Space
	im      *isa.Image
	ns      *core.NodeSlots
	ch      core.Charger
	env     vm.Env
	hooks   Hooks
	runq    []*Thread
	threads map[uint32]*Thread
	current *Thread
	joiners map[uint32][]*Thread
	exited  map[uint32]bool
	nextSeq uint32
	// nBlocked counts resident threads with blocked set (Runnable).
	nBlocked int
	// stats
	created, finished, faulted, dispatches uint64
	instrs                                 uint64
}

// NewScheduler builds a scheduler over the node's space, image and slot
// layer. env (the builtin dispatcher) and hooks are set by the runtime
// before any thread runs.
func NewScheduler(sp *vmem.Space, im *isa.Image, ns *core.NodeSlots, ch core.Charger, cfg Config) *Scheduler {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 64
	}
	if cfg.Model == nil {
		cfg.Model = cost.Default()
	}
	return &Scheduler{
		cfg:     cfg,
		sp:      sp,
		im:      im,
		ns:      ns,
		ch:      ch,
		threads: make(map[uint32]*Thread),
		joiners: make(map[uint32][]*Thread),
		exited:  make(map[uint32]bool),
	}
}

// SetEnv installs the builtin dispatcher (the PM2 runtime).
func (s *Scheduler) SetEnv(env vm.Env) { s.env = env }

// SetHooks installs the runtime hooks.
func (s *Scheduler) SetHooks(h Hooks) { s.hooks = h }

// Arena returns the block-layer view of thread t's slots.
func (s *Scheduler) Arena(t *Thread) *core.Arena {
	return core.NewArena(s.sp, s.ch, s.cfg.Model, t.HeadAddr())
}

// Current returns the thread currently dispatched, if any.
func (s *Scheduler) Current() *Thread { return s.current }

// Ready reports whether any thread is runnable.
func (s *Scheduler) Ready() bool { return len(s.runq) > 0 }

// Threads returns the number of resident threads.
func (s *Scheduler) Threads() int { return len(s.threads) }

// Runnable returns the number of resident threads that are not blocked
// (the load signal placement policies use to spot starving nodes). The
// count is maintained incrementally so load sampling stays O(1) per
// node; CheckCounters cross-checks it against a full walk.
func (s *Scheduler) Runnable() int { return len(s.threads) - s.nBlocked }

// setBlocked flips a thread's blocked flag, keeping the counter exact
// even when a transition is signalled twice (Block followed by the
// dispatcher observing vm.Blocked).
func (s *Scheduler) setBlocked(t *Thread, blocked bool) {
	if t.blocked == blocked {
		return
	}
	t.blocked = blocked
	if blocked {
		s.nBlocked++
	} else {
		s.nBlocked--
	}
}

// CheckCounters validates the incremental runnable accounting against a
// full thread walk.
func (s *Scheduler) CheckCounters() error {
	walked := 0
	for _, t := range s.threads {
		if t.blocked {
			walked++
		}
	}
	if walked != s.nBlocked {
		return fmt.Errorf("marcel: blocked counter %d, walk found %d", s.nBlocked, walked)
	}
	return nil
}

// Lookup finds a resident thread by id.
func (s *Scheduler) Lookup(tid uint32) (*Thread, bool) {
	t, ok := s.threads[tid]
	return t, ok
}

// Snapshot returns the resident threads in ascending TID order (a stable
// order keeps the simulation deterministic).
func (s *Scheduler) Snapshot() []*Thread {
	out := make([]*Thread, 0, len(s.threads))
	for _, t := range s.threads {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}

// Stats returns counters: threads created here, finished, faulted,
// dispatches and instructions executed.
func (s *Scheduler) Stats() (created, finished, faulted, dispatches, instrs uint64) {
	return s.created, s.finished, s.faulted, s.dispatches, s.instrs
}

// RestoreStats installs counters captured by Stats — restore-time
// state installation only.
func (s *Scheduler) RestoreStats(created, finished, faulted, dispatches, instrs uint64) {
	s.created, s.finished, s.faulted, s.dispatches, s.instrs =
		created, finished, faulted, dispatches, instrs
}

// NextSeq returns the TID sequence counter for checkpointing.
func (s *Scheduler) NextSeq() uint32 { return s.nextSeq }

// RestoreNextSeq installs a TID sequence counter captured by NextSeq,
// so threads created after a restore get the same ids as in the
// uninterrupted run.
func (s *Scheduler) RestoreNextSeq(v uint32) { s.nextSeq = v }

// ExitedTIDs returns the ids of threads that terminated here, in
// ascending order — the join bookkeeping a checkpoint must carry so a
// restored joiner still sees its target as exited.
func (s *Scheduler) ExitedTIDs() []uint32 {
	out := make([]uint32, 0, len(s.exited))
	for tid := range s.exited {
		out = append(out, tid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RestoreExited installs an exited-thread set captured by ExitedTIDs.
func (s *Scheduler) RestoreExited(tids []uint32) {
	for _, tid := range tids {
		s.exited[tid] = true
	}
}

// ErrNoThreadSlots wraps core.ErrNoSlots for thread creation.
var ErrNoThreadSlots = errors.New("marcel: no free slot for thread stack")

// Create starts a thread running the program at entry with r1 = arg. One
// slot is acquired locally for descriptor + stack — thread creation never
// negotiates (paper §4.1: "thread creation is a local operation ...
// irrespective of the slot distribution, since a single slot is required").
func (s *Scheduler) Create(entry Addr, arg uint32) (*Thread, error) {
	idx, err := s.ns.AcquireOne()
	if err != nil {
		return nil, ErrNoThreadSlots
	}
	base := layout.SlotBase(idx)
	desc := base + core.SlotHeaderSize

	s.nextSeq++
	tid := uint32(s.cfg.NodeID)<<20 | s.nextSeq
	t := &Thread{
		TID:       tid,
		Desc:      desc,
		Entry:     entry,
		Arg:       arg,
		MigrateTo: -1,
	}
	t.Regs.PC = entry
	t.Regs.SP = base + layout.SlotSize
	t.Regs.FP = 0
	t.Regs.R[1] = arg

	// Slot header + list head live inside the slot.
	ar := s.Arena(t)
	// The head pointer is inside the descriptor, which is inside the
	// freshly mapped slot; write descriptor first, then the header.
	if err := s.writeDescriptor(t, StatusReady); err != nil {
		return nil, err
	}
	if err := ar.InitStackSlot(base); err != nil {
		return nil, err
	}
	s.ch.Charge(cost.Fixed(s.cfg.Model.ThreadInitNs))
	// First touch of the descriptor/stack page.
	s.ch.Charge(s.cfg.Model.ZeroFill(layout.PageSize))

	s.threads[tid] = t
	s.enqueue(t)
	s.created++
	return t, nil
}

func (s *Scheduler) enqueue(t *Thread) {
	if t.ready {
		panic(fmt.Sprintf("marcel: thread %#x enqueued twice", t.TID))
	}
	t.ready = true
	s.setBlocked(t, false)
	s.runq = append(s.runq, t)
}

func (s *Scheduler) dequeue() *Thread {
	t := s.runq[0]
	s.runq = s.runq[:copy(s.runq, s.runq[1:])]
	t.ready = false
	return t
}

// writeDescriptor spills the full thread state into simulated memory.
func (s *Scheduler) writeDescriptor(t *Thread, status uint32) error {
	buf := make([]byte, DescSize)
	put := func(off int, v uint32) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
		buf[off+2] = byte(v >> 16)
		buf[off+3] = byte(v >> 24)
	}
	put(dMagic, DescMagic)
	put(dTID, t.TID)
	put(dPC, t.Regs.PC)
	put(dSP, t.Regs.SP)
	put(dFP, t.Regs.FP)
	put(dStatus, status)
	// dSlotHead is owned by the arena (InitStackSlot/attach): preserve
	// the current value if the descriptor already exists.
	head := uint32(0)
	if v, err := s.sp.Load32(t.Desc + dMagic); err == nil && v == DescMagic {
		if hv, err := s.sp.Load32(t.Desc + dSlotHead); err == nil {
			head = hv
		}
	}
	put(dSlotHead, head)
	put(dEntry, t.Entry)
	put(dArg, t.Arg)
	for i, r := range t.Regs.R {
		put(dRegs+4*i, r)
	}
	return s.sp.Write(t.Desc, buf)
}

// Freeze stops thread t and spills its registers into the descriptor; the
// thread's entire state is then in its slots, ready to be packed.
func (s *Scheduler) Freeze(t *Thread) error {
	s.ch.Charge(cost.Fixed(s.cfg.Model.FreezeNs))
	return s.writeDescriptor(t, StatusFrozen)
}

// Thaw reconstructs a thread from the descriptor at desc — the receiving
// half of a migration. The slots must already be installed. No pointer in
// the descriptor or the slots is adjusted: iso-addressing makes the bytes
// valid as-is.
func (s *Scheduler) Thaw(desc Addr) (*Thread, error) {
	buf, err := s.sp.ReadBytes(desc, DescSize)
	if err != nil {
		return nil, err
	}
	w := func(off int) uint32 {
		return uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24
	}
	if w(dMagic) != DescMagic {
		return nil, fmt.Errorf("marcel: bad descriptor magic at %#08x", desc)
	}
	t := &Thread{
		TID:       w(dTID),
		Desc:      desc,
		Entry:     w(dEntry),
		Arg:       w(dArg),
		MigrateTo: -1,
	}
	t.Regs.PC = w(dPC)
	t.Regs.SP = w(dSP)
	t.Regs.FP = w(dFP)
	for i := range t.Regs.R {
		t.Regs.R[i] = w(dRegs + 4*i)
	}
	if _, dup := s.threads[t.TID]; dup {
		return nil, fmt.Errorf("marcel: thread %#x already resident", t.TID)
	}
	s.threads[t.TID] = t
	s.enqueue(t)
	s.ch.Charge(cost.Fixed(s.cfg.Model.ResumeNs))
	return t, nil
}

// Detach removes a migrating thread from the scheduler tables (after
// Freeze, before its slots leave the node). A blocked thread leaves the
// blocked count with it: once detached it is this scheduler's thread no
// longer, and a waker still holding the pointer finds a stale target
// (see Wake).
func (s *Scheduler) Detach(t *Thread) {
	delete(s.threads, t.TID)
	if t.ready {
		for i, q := range s.runq {
			if q == t {
				s.runq = append(s.runq[:i], s.runq[i+1:]...)
				break
			}
		}
		t.ready = false
	}
	s.setBlocked(t, false)
}

// Block marks the current thread as waiting; the runtime wakes it later.
func (s *Scheduler) Block(t *Thread) {
	s.setBlocked(t, true)
}

// Wake makes a blocked thread runnable again with r0 = ret. A wake whose
// target is no longer resident — detached for migration or evacuation
// between blocking and waking — is dropped: the pointer is stale, and
// the thread it described now lives (runnable) on another node.
func (s *Scheduler) Wake(t *Thread, ret uint32) {
	if s.threads[t.TID] != t {
		return
	}
	if !t.blocked {
		panic(fmt.Sprintf("marcel: waking non-blocked thread %#x", t.TID))
	}
	t.Regs.R[0] = ret
	s.enqueue(t)
}

// Join makes the current thread wait for tid. It returns true if tid has
// already terminated (no blocking needed).
func (s *Scheduler) Join(waiter *Thread, tid uint32) bool {
	if s.exited[tid] {
		return true
	}
	if _, resident := s.threads[tid]; !resident {
		// Unknown thread (possibly migrated away): treat as exited to
		// avoid deadlock; PM2 applications join local workers only.
		return true
	}
	s.joiners[tid] = append(s.joiners[tid], waiter)
	s.Block(waiter)
	return false
}

// reap finishes a thread: wakes joiners and releases all its slots to the
// local node (paper Fig. 6 step 4).
func (s *Scheduler) reap(t *Thread) error {
	delete(s.threads, t.TID)
	s.exited[t.TID] = true
	for _, j := range s.joiners[t.TID] {
		s.Wake(j, 0)
	}
	delete(s.joiners, t.TID)
	return s.Arena(t).ReleaseAll(s.ns)
}

// RunOne dispatches the next ready thread for one quantum. It reports
// whether any thread was dispatched.
func (s *Scheduler) RunOne() bool {
	if s.env == nil {
		panic("marcel: scheduler has no Env")
	}
	for len(s.runq) > 0 {
		t := s.dequeue()
		// Preemptive migration request caught at the dispatch
		// boundary ("it may also be preemptively migrated by another
		// thread", paper §2).
		if t.MigrateTo >= 0 {
			s.startMigration(t, t.MigrateTo)
			continue
		}
		s.dispatch(t)
		return true
	}
	return false
}

func (s *Scheduler) dispatch(t *Thread) {
	s.current = t
	s.dispatches++
	s.ch.Charge(cost.Fixed(s.cfg.Model.CtxSwitchNs))
	th := &vm.Thread{Regs: &t.Regs, StackLimit: t.StackLimit()}
	st := vm.Run(s.im, s.sp, th, s.env, s.cfg.Quantum)
	s.instrs += uint64(st.Instrs)
	s.ch.Charge(s.cfg.Model.Instr(st.Instrs))
	s.current = nil

	switch st.Kind {
	case vm.Running, vm.Yielded:
		if t.MigrateTo >= 0 {
			s.startMigration(t, t.MigrateTo)
			return
		}
		s.enqueue(t)
	case vm.Blocked:
		s.setBlocked(t, true)
	case vm.Exited:
		s.finished++
		if err := s.reap(t); err != nil {
			panic(fmt.Sprintf("marcel: reap %#x: %v", t.TID, err))
		}
		if s.hooks.Exit != nil {
			s.hooks.Exit(t)
		}
	case vm.Faulted:
		s.faulted++
		if s.hooks.Fault != nil {
			s.hooks.Fault(t, st.Fault)
		}
		if err := s.reap(t); err != nil {
			panic(fmt.Sprintf("marcel: reap faulted %#x: %v", t.TID, err))
		}
	case vm.Migrating:
		s.startMigration(t, st.Dest)
	default:
		panic("marcel: unexpected vm status")
	}
}

func (s *Scheduler) startMigration(t *Thread, dest int) {
	if s.hooks.Migrate == nil {
		panic("marcel: migration requested but no Migrate hook")
	}
	t.MigrateTo = -1
	if err := s.Freeze(t); err != nil {
		panic(fmt.Sprintf("marcel: freeze %#x: %v", t.TID, err))
	}
	s.Detach(t)
	s.hooks.Migrate(t, dest)
}

// RequestMigration marks thread tid for preemptive migration to dest at its
// next quantum boundary. It reports whether the thread was found.
func (s *Scheduler) RequestMigration(tid uint32, dest int) bool {
	t, ok := s.threads[tid]
	if !ok {
		return false
	}
	t.MigrateTo = dest
	return true
}
