// Package bip simulates the BIP low-level communication interface over a
// Myrinet network, the interconnect of the paper's PoPC cluster.
//
// Each node owns a NIC attached to a shared Network. Messages are tagged
// byte payloads; delivery charges the calibrated BIP costs: sender CPU
// overhead, one-way latency plus serialization on the sender's outgoing
// link (with link occupancy, so back-to-back messages queue), and receiver
// CPU overhead. All of it happens in virtual time on the discrete-event
// engine, deterministically.
package bip

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/simtime"
)

// Handler receives a delivered message on the destination node's actor.
// The payload is owned by the receiver.
type Handler func(src int, tag uint32, payload []byte)

// Stats aggregates traffic counters for a network.
type Stats struct {
	Messages uint64
	Bytes    uint64
	// Dropped counts messages the fault policy discarded (sends whose
	// delivery would land on a crashed node).
	Dropped uint64
}

// FaultPolicy lets a failure model adjust every remote delivery.
// Adjust is consulted at send time with the send start and the
// fault-free delivery instant; it returns the (possibly delayed)
// delivery time and whether the message is dropped instead. It must be
// a pure function of its arguments so delivery stays deterministic.
type FaultPolicy interface {
	Adjust(src, dst int, start, arrive simtime.Time) (simtime.Time, bool)
}

// Network is the shared Myrinet fabric connecting all NICs of a cluster.
type Network struct {
	eng    *simtime.Engine
	model  *cost.Model
	nics   []*NIC
	faults FaultPolicy
}

// SetFaults installs a fault policy consulted on every remote send.
// A nil policy (the default) is a healthy network.
func (nw *Network) SetFaults(p FaultPolicy) { nw.faults = p }

// NewNetwork creates a network for n nodes. Each node i must later attach a
// NIC with Attach(i, actor, handler).
func NewNetwork(eng *simtime.Engine, model *cost.Model, n int) *Network {
	if n <= 0 {
		panic("bip: network needs at least one node")
	}
	return &Network{eng: eng, model: model, nics: make([]*NIC, n)}
}

// Size returns the number of node ports on the network.
func (nw *Network) Size() int { return len(nw.nics) }

// Stats returns the traffic counters, summed over the per-NIC tallies.
// Each NIC counts its own sends (lane-affine under the parallel
// executor); the sum is order-independent, so it is identical at any
// worker count.
func (nw *Network) Stats() Stats {
	var s Stats
	for _, nic := range nw.nics {
		if nic != nil {
			s.Messages += nic.sent
			s.Bytes += nic.sentBytes
			s.Dropped += nic.dropped
		}
	}
	return s
}

// Attach creates node id's NIC, bound to its CPU actor and inbound handler.
func (nw *Network) Attach(id int, actor *simtime.Actor, h Handler) *NIC {
	if id < 0 || id >= len(nw.nics) {
		panic(fmt.Sprintf("bip: node id %d out of range", id))
	}
	if nw.nics[id] != nil {
		panic(fmt.Sprintf("bip: node %d already attached", id))
	}
	nic := &NIC{net: nw, id: id, actor: actor, handler: h}
	nw.nics[id] = nic
	return nic
}

// NIC is one node's network interface.
type NIC struct {
	net     *Network
	id      int
	actor   *simtime.Actor
	handler Handler
	// linkFreeAt is the instant the outgoing link finishes its current
	// transmission; later sends serialize behind it.
	linkFreeAt simtime.Time
	// sent / sentBytes / dropped are this NIC's outbound traffic
	// counters, mutated only from the owning node's handlers
	// (lane-affine) and summed by Network.Stats.
	sent      uint64
	sentBytes uint64
	dropped   uint64
}

// ID returns the node id of this NIC.
func (n *NIC) ID() int { return n.id }

// SentCounters returns the NIC's outbound tallies for checkpointing.
func (n *NIC) SentCounters() (sent, sentBytes, dropped uint64) {
	return n.sent, n.sentBytes, n.dropped
}

// RestoreSentCounters installs tallies captured by SentCounters —
// restore-time state installation only.
func (n *NIC) RestoreSentCounters(sent, sentBytes, dropped uint64) {
	n.sent, n.sentBytes, n.dropped = sent, sentBytes, dropped
}

// Send transmits payload to node dst with the given tag. It must be called
// from within the owning node's actor handler: the sender-side CPU cost is
// charged to that actor, and the message is delivered to the destination
// actor after the wire delay. Sending to self is a cheap loopback.
func (n *NIC) Send(dst int, tag uint32, payload []byte) {
	n.sendGathered(dst, tag, [][]byte{payload}, len(payload))
}

// SendV is the scatter-gather send: the message is the concatenation of
// segs, gathered once — directly into the wire body — instead of being
// concatenated by the caller first. cpuBytes is the portion of the message
// the sender and receiver CPUs actually touch: pass the total length for a
// programmed-I/O send (charges identical to Send), or just the
// header/express bytes when the payload segments are DMA'd from their
// source memory (BIP's zero-copy long-message mode) — wire occupancy
// always covers every byte. The segments are consumed synchronously:
// callers may reuse them once SendV returns.
func (n *NIC) SendV(dst int, tag uint32, segs [][]byte, cpuBytes int) {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if cpuBytes < 0 || cpuBytes > total {
		panic(fmt.Sprintf("bip: SendV cpuBytes %d out of range [0,%d]", cpuBytes, total))
	}
	n.sendGathered(dst, tag, segs, cpuBytes)
}

func (n *NIC) sendGathered(dst int, tag uint32, segs [][]byte, cpuBytes int) {
	nw := n.net
	if dst < 0 || dst >= len(nw.nics) || nw.nics[dst] == nil {
		panic(fmt.Sprintf("bip: send to invalid node %d", dst))
	}
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	n.sent++
	n.sentBytes += uint64(total)

	// Gather once: this is the single host-side copy of the data path,
	// and it doubles as the delivery body (the receiver owns it).
	body := make([]byte, 0, total)
	for _, s := range segs {
		body = append(body, s...)
	}

	m := nw.model
	if dst == n.id {
		// Loopback: no NIC/wire involved, just a local queue hop.
		n.actor.Charge(m.Send(cpuBytes) / 4)
		src := n.id
		n.actor.Post(n.actor.Now(), func() {
			n.handler(src, tag, body)
		})
		return
	}

	// Sender CPU: overhead + copy of the CPU-touched bytes into the NIC
	// buffer (everything for programmed I/O, headers only under DMA).
	n.actor.Charge(m.Send(cpuBytes))

	// Wire: serialize on this NIC's outgoing link.
	start := n.actor.Now()
	if n.linkFreeAt > start {
		start = n.linkFreeAt
	}
	arrive := start + m.WireTime(total)
	n.linkFreeAt = arrive

	// Failure model: partitions delay the delivery, slow windows stretch
	// it, and a delivery landing on a crashed node is dropped on the
	// floor. The link was still occupied either way — linkFreeAt keeps
	// the fault-free serialization point so the sender's own timing
	// never depends on the fate of the message.
	if nw.faults != nil {
		var drop bool
		arrive, drop = nw.faults.Adjust(n.id, dst, start, arrive)
		if drop {
			n.dropped++
			return
		}
	}

	// Cross-lane delivery: PostTo buffers the arrival on the sending lane
	// during a parallel window and the commit phase delivers it in serial
	// merge order. The wire latency floor (cost.Model.WireLatencyNs) is
	// the executor's conservative horizon, so arrive always lands at or
	// beyond the window bound.
	dstNIC := nw.nics[dst]
	src := n.id
	n.actor.PostTo(dstNIC.actor, arrive, func() {
		dstNIC.actor.Charge(m.Recv(cpuBytes))
		dstNIC.handler(src, tag, body)
	})
}
