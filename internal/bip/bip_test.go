package bip

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/simtime"
)

type delivery struct {
	src     int
	tag     uint32
	payload []byte
	at      simtime.Time
}

func twoNodes(t *testing.T) (*simtime.Engine, *Network, []*NIC, []*[]delivery) {
	t.Helper()
	eng := simtime.NewEngine()
	nw := NewNetwork(eng, cost.Default(), 2)
	nics := make([]*NIC, 2)
	logs := make([]*[]delivery, 2)
	for i := 0; i < 2; i++ {
		i := i
		log := &[]delivery{}
		logs[i] = log
		actor := simtime.NewActor(eng, "node")
		nics[i] = nw.Attach(i, actor, func(src int, tag uint32, payload []byte) {
			*log = append(*log, delivery{src, tag, payload, actor.Now()})
		})
	}
	return eng, nw, nics, logs
}

func TestDelivery(t *testing.T) {
	eng, nw, nics, logs := twoNodes(t)
	actor0 := nicActor(nics[0])
	actor0.Post(0, func() {
		nics[0].Send(1, 7, []byte("hello"))
	})
	eng.Run(0)
	got := *logs[1]
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	d := got[0]
	if d.src != 0 || d.tag != 7 || string(d.payload) != "hello" {
		t.Fatalf("delivery = %+v", d)
	}
	if d.at <= 0 {
		t.Fatal("delivery should take virtual time")
	}
	st := nw.Stats()
	if st.Messages != 1 || st.Bytes != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

// nicActor digs out the actor for test scheduling.
func nicActor(n *NIC) *simtime.Actor { return n.actor }

func TestLatencyMatchesModel(t *testing.T) {
	eng, _, nics, logs := twoNodes(t)
	m := cost.Default()
	actor0 := nicActor(nics[0])
	payload := make([]byte, 1000)
	actor0.Post(0, func() { nics[0].Send(1, 1, payload) })
	eng.Run(0)
	d := (*logs[1])[0]
	want := m.Send(1000) + m.WireTime(1000) + m.Recv(1000)
	if d.at != want {
		t.Fatalf("delivery at %v, want %v", d.at, want)
	}
}

func TestLinkOccupancySerializesBackToBackSends(t *testing.T) {
	eng, _, nics, logs := twoNodes(t)
	m := cost.Default()
	actor0 := nicActor(nics[0])
	big := make([]byte, 100_000)
	actor0.Post(0, func() {
		nics[0].Send(1, 1, big)
		nics[0].Send(1, 2, []byte{1})
	})
	eng.Run(0)
	got := *logs[1]
	if len(got) != 2 {
		t.Fatalf("deliveries = %d", len(got))
	}
	if got[0].tag != 1 || got[1].tag != 2 {
		t.Fatalf("FIFO violated: %+v", got)
	}
	// The second (tiny) message must arrive after the big one finishes
	// occupying the wire, not merely one latency after its send.
	firstWireDone := m.Send(100_000) + m.WireTime(100_000)
	if got[1].at < firstWireDone {
		t.Fatalf("second message overtook link occupancy: %v < %v", got[1].at, firstWireDone)
	}
}

func TestLoopback(t *testing.T) {
	eng, _, nics, logs := twoNodes(t)
	actor0 := nicActor(nics[0])
	actor0.Post(0, func() { nics[0].Send(0, 9, []byte("me")) })
	eng.Run(0)
	got := *logs[0]
	if len(got) != 1 || got[0].src != 0 || string(got[0].payload) != "me" {
		t.Fatalf("loopback = %+v", got)
	}
	// Loopback must be much cheaper than a wire round.
	if got[0].at > 5*simtime.Microsecond {
		t.Fatalf("loopback too slow: %v", got[0].at)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	eng, _, nics, logs := twoNodes(t)
	actor0 := nicActor(nics[0])
	buf := []byte{1, 2, 3}
	actor0.Post(0, func() {
		nics[0].Send(1, 1, buf)
		buf[0] = 99 // mutate after send; receiver must see the original
	})
	eng.Run(0)
	if (*logs[1])[0].payload[0] != 1 {
		t.Fatal("payload aliased sender buffer")
	}
}

func TestInvalidAttachAndSendPanic(t *testing.T) {
	eng := simtime.NewEngine()
	nw := NewNetwork(eng, cost.Default(), 1)
	actor := simtime.NewActor(eng, "n")
	nic := nw.Attach(0, actor, func(int, uint32, []byte) {})
	mustPanic(t, func() { nw.Attach(0, actor, nil) })
	mustPanic(t, func() { nw.Attach(5, actor, nil) })
	actor.Post(0, func() {
		mustPanic(t, func() { nic.Send(3, 0, nil) })
	})
	eng.Run(0)
	mustPanic(t, func() { NewNetwork(eng, cost.Default(), 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
