package bitmap

import "testing"

func TestWordAccessors(t *testing.T) {
	b := New(130) // 3 words, 2 valid bits in the last
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Word(0) != 1 || b.Word(1) != 1 || b.Word(2) != 2 {
		t.Fatalf("words = %x %x %x", b.Word(0), b.Word(1), b.Word(2))
	}
	if b.Words() != 3 {
		t.Fatalf("Words() = %d", b.Words())
	}
	b.SetWord(1, 0xff00)
	if b.Word(1) != 0xff00 {
		t.Fatalf("word 1 = %x after SetWord", b.Word(1))
	}
	// Tail bits beyond the map length are masked off.
	b.SetWord(2, ^uint64(0))
	if b.Word(2) != 3 {
		t.Fatalf("tail word = %x, want masked 3", b.Word(2))
	}
	if b.Count() != 1+8+2 {
		t.Fatalf("count = %d", b.Count())
	}
}

// TestWordDeltaRoundTrip: replaying the dirty words of a mutated bitmap
// onto a stale copy reconstructs the source exactly — the delta-apply
// step of the gather.
func TestWordDeltaRoundTrip(t *testing.T) {
	src := New(1024)
	for i := 0; i < 1024; i += 3 {
		src.Set(i)
	}
	stale := src.Clone()
	j := NewJournal(64)
	base := j.Version()

	mutate := func(start, n int, set bool) {
		if set {
			src.SetRun(start, n)
		} else {
			src.ClearRun(start, n)
		}
		j.NoteBits(start, n)
	}
	mutate(10, 5, false)
	mutate(100, 130, true) // spans three words
	mutate(1000, 20, false)

	words, ok := j.WordsSince(base)
	if !ok {
		t.Fatal("journal truncated unexpectedly")
	}
	for _, w := range words {
		stale.SetWord(w, src.Word(w))
	}
	if !stale.Equal(src) {
		t.Fatal("delta replay did not reconstruct the source bitmap")
	}
}

func TestJournalVersioningAndOrder(t *testing.T) {
	j := NewJournal(32)
	if j.Version() != 0 {
		t.Fatalf("fresh journal version = %d", j.Version())
	}
	if words, ok := j.WordsSince(0); !ok || len(words) != 0 {
		t.Fatalf("pristine journal: words=%v ok=%v", words, ok)
	}
	j.NoteBits(200, 1) // word 3
	j.NoteBits(0, 1)   // word 0
	j.NoteBits(70, 1)  // word 1
	if j.Version() != 3 {
		t.Fatalf("version = %d after 3 mutations", j.Version())
	}
	words, ok := j.WordsSince(0)
	if !ok || len(words) != 3 || words[0] != 0 || words[1] != 1 || words[2] != 3 {
		t.Fatalf("WordsSince(0) = %v ok=%v, want sorted [0 1 3]", words, ok)
	}
	// Mid-stream query sees only the later mutations.
	words, ok = j.WordsSince(1)
	if !ok || len(words) != 2 || words[0] != 0 || words[1] != 1 {
		t.Fatalf("WordsSince(1) = %v ok=%v", words, ok)
	}
	// A re-dirtied word reports its latest version.
	j.NoteBits(200, 1)
	words, ok = j.WordsSince(3)
	if !ok || len(words) != 1 || words[0] != 3 {
		t.Fatalf("WordsSince(3) = %v ok=%v", words, ok)
	}
	// The future is unanswerable.
	if _, ok := j.WordsSince(j.Version() + 1); ok {
		t.Fatal("journal answered a future version")
	}
	// Zero-length mutations change nothing.
	v := j.Version()
	j.NoteBits(5, 0)
	if j.Version() != v {
		t.Fatal("empty NoteBits bumped the version")
	}
}

func TestJournalTruncation(t *testing.T) {
	j := NewJournal(4)
	base := j.Version()
	for i := 0; i < 5; i++ {
		j.NoteBits(i*wordBits, 1) // 5 distinct words overflow cap 4
	}
	if _, ok := j.WordsSince(base); ok {
		t.Fatal("truncated journal still answered a pre-truncation version")
	}
	// After truncation the journal resyncs from the current version.
	now := j.Version()
	j.NoteBits(0, 1)
	words, ok := j.WordsSince(now)
	if !ok || len(words) != 1 || words[0] != 0 {
		t.Fatalf("post-truncation WordsSince = %v ok=%v", words, ok)
	}
}
