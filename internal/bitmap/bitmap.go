// Package bitmap implements the fixed-size bit vectors that PM2 nodes use to
// track ownership of iso-address slots (paper §4.2).
//
// Bit i set to 1 means "slot i is owned by this node and free". Bit 0 means
// the slot belongs to another node, or to some (local or remote) thread. The
// negotiation protocol of §4.4 combines the bitmaps of all nodes with a
// global OR and searches the result for runs of contiguous free slots.
package bitmap

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap is a fixed-size bit vector. The zero value is unusable; create one
// with New or FromBytes.
type Bitmap struct {
	n     int // number of valid bits
	words []uint64
}

// New returns a Bitmap of n bits, all zero.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative size")
	}
	return &Bitmap{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the number of bits in the map.
func (b *Bitmap) Len() int { return b.n }

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, b.n))
	}
}

// Set sets bit i to 1.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is 1.
func (b *Bitmap) Test(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetRun sets bits [i, i+n) to 1.
func (b *Bitmap) SetRun(i, n int) {
	for k := i; k < i+n; k++ {
		b.Set(k)
	}
}

// ClearRun sets bits [i, i+n) to 0.
func (b *Bitmap) ClearRun(i, n int) {
	for k := i; k < i+n; k++ {
		b.Clear(k)
	}
}

// TestRun reports whether all bits in [i, i+n) are 1.
func (b *Bitmap) TestRun(i, n int) bool {
	for k := i; k < i+n; k++ {
		if !b.Test(k) {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// FirstSet returns the index of the lowest set bit at or after from, or -1.
func (b *Bitmap) FirstSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= b.n {
		return -1
	}
	wi := from / wordBits
	w := b.words[wi] >> (uint(from) % wordBits)
	if w != 0 {
		i := from + bits.TrailingZeros64(w)
		if i < b.n {
			return i
		}
		return -1
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			i := wi*wordBits + bits.TrailingZeros64(b.words[wi])
			if i < b.n {
				return i
			}
			return -1
		}
	}
	return -1
}

// FindRun returns the index of the first run of n consecutive set bits
// (first-fit, as in the paper's slot search), or -1 if none exists.
func (b *Bitmap) FindRun(n int) int {
	return b.FindRunFrom(0, n)
}

// FindRunFrom is FindRun starting the search at bit from.
func (b *Bitmap) FindRunFrom(from, n int) int {
	if n <= 0 {
		panic("bitmap: FindRun with non-positive length")
	}
	i := from
	for {
		i = b.FirstSet(i)
		if i < 0 || i+n > b.n {
			return -1
		}
		// Extend the run as far as it goes.
		run := 1
		for run < n && b.Test(i+run) {
			run++
		}
		if run == n {
			return i
		}
		// The bit at i+run is clear; restart after it.
		i += run + 1
	}
}

// LongestRun returns the length of the longest run of consecutive set
// bits — the free-run summary a node publishes as a negotiation hint: a
// node whose longest run is zero owns no free slots and cannot contribute
// to any purchase.
func (b *Bitmap) LongestRun() int {
	best, run := 0, 0
	for wi, w := range b.words {
		if w == 0 {
			run = 0
			continue
		}
		if w == ^uint64(0) {
			run += wordBits
			if run > best {
				best = run
			}
			continue
		}
		base := wi * wordBits
		for i := 0; i < wordBits && base+i < b.n; i++ {
			if w&(1<<uint(i)) != 0 {
				run++
				if run > best {
					best = run
				}
			} else {
				run = 0
			}
		}
	}
	return best
}

// Words returns the number of 64-bit words backing the map.
func (b *Bitmap) Words() int { return len(b.words) }

// Word returns the i-th backing word. Together with SetWord it is the
// unit of the delta exchange: a dirty-word journal names changed words,
// and a delta payload carries their absolute values.
func (b *Bitmap) Word(i int) uint64 {
	if i < 0 || i >= len(b.words) {
		panic(fmt.Sprintf("bitmap: word %d out of range [0,%d)", i, len(b.words)))
	}
	return b.words[i]
}

// SetWord overwrites the i-th backing word. Bits beyond the map length
// are masked off, so a delta can never set a bit outside the map.
func (b *Bitmap) SetWord(i int, w uint64) {
	if i < 0 || i >= len(b.words) {
		panic(fmt.Sprintf("bitmap: word %d out of range [0,%d)", i, len(b.words)))
	}
	if tail := b.n - i*wordBits; tail < wordBits {
		w &= (1 << uint(tail)) - 1
	}
	b.words[i] = w
}

// Or sets b to the bitwise OR of b and other. The maps must have equal size.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic("bitmap: size mismatch in Or")
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndNot clears in b every bit set in other.
func (b *Bitmap) AndNot(other *Bitmap) {
	if b.n != other.n {
		panic("bitmap: size mismatch in AndNot")
	}
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// Intersects reports whether b and other have any common set bit.
func (b *Bitmap) Intersects(other *Bitmap) bool {
	if b.n != other.n {
		panic("bitmap: size mismatch in Intersects")
	}
	for i := range b.words {
		if b.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether b and other hold the same bits.
func (b *Bitmap) Equal(other *Bitmap) bool {
	if b.n != other.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of b.
func (b *Bitmap) Clone() *Bitmap {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// Bytes serializes the bitmap into a little-endian byte slice of
// ceil(n/8) bytes, as shipped over the wire during negotiation.
func (b *Bitmap) Bytes() []byte {
	out := make([]byte, (b.n+7)/8)
	for i := range out {
		out[i] = byte(b.words[i/8] >> (uint(i%8) * 8))
	}
	return out
}

// OrBytes merges the serialization produced by Bytes into b without
// allocating an intermediate Bitmap — the combining step of a tree
// gather, where interior nodes fold each child's map into their own. It
// returns an error if the payload is the wrong length for b.
func (b *Bitmap) OrBytes(data []byte) error {
	want := (b.n + 7) / 8
	if len(data) != want {
		return fmt.Errorf("bitmap: payload is %d bytes, want %d for %d bits", len(data), want, b.n)
	}
	for i, by := range data {
		b.words[i/8] |= uint64(by) << (uint(i%8) * 8)
	}
	return nil
}

// FromBytes reconstructs an n-bit bitmap from the serialization produced by
// Bytes. It returns an error if the payload is the wrong length.
func FromBytes(n int, data []byte) (*Bitmap, error) {
	want := (n + 7) / 8
	if len(data) != want {
		return nil, fmt.Errorf("bitmap: payload is %d bytes, want %d for %d bits", len(data), want, n)
	}
	b := New(n)
	for i, by := range data {
		b.words[i/8] |= uint64(by) << (uint(i%8) * 8)
	}
	return b, nil
}

// String renders small bitmaps as 0/1 runs for debugging; large maps are
// summarized.
func (b *Bitmap) String() string {
	if b.n <= 128 {
		out := make([]byte, b.n)
		for i := 0; i < b.n; i++ {
			if b.Test(i) {
				out[i] = '1'
			} else {
				out[i] = '0'
			}
		}
		return string(out)
	}
	return fmt.Sprintf("Bitmap(%d bits, %d set)", b.n, b.Count())
}
