package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetClearTest(t *testing.T) {
	b := New(200)
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		if got := b.Test(i); got != want {
			t.Fatalf("Test(%d) = %v, want %v", i, got, want)
		}
	}
	b.Clear(0)
	if b.Test(0) {
		t.Fatal("Clear(0) did not clear")
	}
	if got, want := b.Count(), 66; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, f := range []func(){
		func() { b.Set(10) },
		func() { b.Clear(-1) },
		func() { b.Test(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range index")
				}
			}()
			f()
		}()
	}
}

func TestFirstSet(t *testing.T) {
	b := New(300)
	if b.FirstSet(0) != -1 {
		t.Fatal("FirstSet on empty map should be -1")
	}
	b.Set(5)
	b.Set(70)
	b.Set(299)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 70}, {70, 70}, {71, 299}, {299, 299}, {300, -1}, {-5, 5},
	}
	for _, c := range cases {
		if got := b.FirstSet(c.from); got != c.want {
			t.Errorf("FirstSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

// findRunRef is a straightforward reference implementation of first-fit run
// search, used to validate the optimized FindRun.
func findRunRef(b *Bitmap, from, n int) int {
	for i := from; i+n <= b.Len(); i++ {
		ok := true
		for k := 0; k < n; k++ {
			if !b.Test(i + k) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

func TestFindRunBasic(t *testing.T) {
	b := New(64)
	b.SetRun(10, 3)
	b.SetRun(20, 8)
	if got := b.FindRun(1); got != 10 {
		t.Errorf("FindRun(1) = %d, want 10", got)
	}
	if got := b.FindRun(3); got != 10 {
		t.Errorf("FindRun(3) = %d, want 10", got)
	}
	if got := b.FindRun(4); got != 20 {
		t.Errorf("FindRun(4) = %d, want 20", got)
	}
	if got := b.FindRun(8); got != 20 {
		t.Errorf("FindRun(8) = %d, want 20", got)
	}
	if got := b.FindRun(9); got != -1 {
		t.Errorf("FindRun(9) = %d, want -1", got)
	}
	if got := b.FindRunFrom(11, 3); got != 20 {
		t.Errorf("FindRunFrom(11, 3) = %d, want 20", got)
	}
}

func TestFindRunAtEnd(t *testing.T) {
	b := New(130)
	b.SetRun(127, 3)
	if got := b.FindRun(3); got != 127 {
		t.Errorf("FindRun(3) = %d, want 127", got)
	}
	if got := b.FindRun(4); got != -1 {
		t.Errorf("FindRun(4) = %d, want -1", got)
	}
}

func TestFindRunMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(256)
		b := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		run := 1 + rng.Intn(10)
		from := rng.Intn(n)
		if got, want := b.FindRunFrom(from, run), findRunRef(b, from, run); got != want {
			t.Fatalf("trial %d: FindRunFrom(%d, %d) = %d, want %d on %v", trial, from, run, got, want, b)
		}
	}
}

func TestOrAndNotIntersects(t *testing.T) {
	a := New(100)
	b := New(100)
	a.SetRun(0, 10)
	b.SetRun(5, 10)
	if !a.Intersects(b) {
		t.Error("expected intersection")
	}
	c := a.Clone()
	c.Or(b)
	if got := c.Count(); got != 15 {
		t.Errorf("Or count = %d, want 15", got)
	}
	c.AndNot(b)
	if got := c.Count(); got != 5 {
		t.Errorf("AndNot count = %d, want 5", got)
	}
	if c.Intersects(b) {
		t.Error("AndNot left an intersection")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 57344} {
		b := New(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		data := b.Bytes()
		if want := (n + 7) / 8; len(data) != want {
			t.Fatalf("n=%d: Bytes len %d, want %d", n, len(data), want)
		}
		got, err := FromBytes(n, data)
		if err != nil {
			t.Fatalf("n=%d: FromBytes: %v", n, err)
		}
		if !got.Equal(b) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestFromBytesRejectsBadLength(t *testing.T) {
	if _, err := FromBytes(16, make([]byte, 3)); err == nil {
		t.Error("expected error for wrong payload length")
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		n := len(raw) * 8
		if n == 0 {
			return true
		}
		b, err := FromBytes(n, raw)
		if err != nil {
			return false
		}
		out := b.Bytes()
		if len(out) != len(raw) {
			return false
		}
		for i := range raw {
			if out[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrIsUnionProperty(t *testing.T) {
	f := func(x, y []byte) bool {
		n := 128
		bx, by := New(n), New(n)
		for i := 0; i < n; i++ {
			if len(x) > 0 && x[i%len(x)]&(1<<(i%8)) != 0 {
				bx.Set(i)
			}
			if len(y) > 0 && y[i%len(y)]&(1<<(i%8)) != 0 {
				by.Set(i)
			}
		}
		u := bx.Clone()
		u.Or(by)
		for i := 0; i < n; i++ {
			if u.Test(i) != (bx.Test(i) || by.Test(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunHelpers(t *testing.T) {
	b := New(50)
	b.SetRun(10, 5)
	if !b.TestRun(10, 5) {
		t.Error("TestRun(10,5) should be true")
	}
	if b.TestRun(9, 5) || b.TestRun(11, 5) {
		t.Error("TestRun should be false when run extends past set bits")
	}
	b.ClearRun(12, 3)
	if b.Count() != 2 {
		t.Errorf("after ClearRun, Count = %d, want 2", b.Count())
	}
}

func TestStringForms(t *testing.T) {
	b := New(8)
	b.Set(1)
	if got := b.String(); got != "01000000" {
		t.Errorf("String() = %q", got)
	}
	big := New(1024)
	big.Set(3)
	if got := big.String(); got != "Bitmap(1024 bits, 1 set)" {
		t.Errorf("big String() = %q", got)
	}
}

func TestLongestRun(t *testing.T) {
	cases := []struct {
		n    int
		runs [][2]int // (start, len) runs to set
		want int
	}{
		{50, nil, 0},
		{50, [][2]int{{0, 1}}, 1},
		{50, [][2]int{{3, 7}, {20, 4}}, 7},
		{200, [][2]int{{60, 10}}, 10},            // straddles a word boundary
		{200, [][2]int{{0, 200}}, 200},           // everything set
		{200, [][2]int{{0, 64}, {65, 100}}, 100}, // full word then longer run
	}
	for _, c := range cases {
		b := New(c.n)
		for _, r := range c.runs {
			b.SetRun(r[0], r[1])
		}
		if got := b.LongestRun(); got != c.want {
			t.Errorf("LongestRun(%v over %d bits) = %d, want %d", c.runs, c.n, got, c.want)
		}
	}
}

func TestOrBytes(t *testing.T) {
	a := New(200)
	a.SetRun(3, 5)
	b := New(200)
	b.SetRun(100, 20)
	merged := a.Clone()
	if err := merged.OrBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	want := a.Clone()
	want.Or(b)
	if !merged.Equal(want) {
		t.Fatalf("OrBytes = %s, want %s", merged, want)
	}
	if err := merged.OrBytes(make([]byte, 3)); err == nil {
		t.Fatal("OrBytes accepted a wrong-length payload")
	}
}
