package bitmap

import "sort"

// Journal is the version stamp and bounded dirty-word journal of one
// node's slot bitmap, the server half of the delta gather (§4.4
// extension): every ownership mutation bumps the version and records
// which 64-bit words it touched, so a peer that cached the map at
// version v can be answered with just the words dirtied since v instead
// of the full 7 KB map.
//
// The journal is bounded: once it tracks more than its capacity of
// distinct dirty words, it truncates — the floor rises to the current
// version and queries older than the floor fall back to a full map.
// Truncation only ever costs bandwidth, never correctness.
type Journal struct {
	version uint64
	// floor is the oldest version (exclusive lower bound) the journal
	// can still answer incrementally; queries for versions below it
	// need a full map.
	floor uint64
	// dirty maps a word index to the version at which it last changed.
	dirty map[int]uint64
	cap   int
}

// NewJournal returns an empty journal bounded to capWords distinct
// dirty words (minimum 1).
func NewJournal(capWords int) *Journal {
	if capWords < 1 {
		capWords = 1
	}
	return &Journal{dirty: make(map[int]uint64), cap: capWords}
}

// Version returns the current version stamp. Version 0 is the pristine
// initial distribution; every mutation bumps it by one.
func (j *Journal) Version() uint64 { return j.version }

// NoteBits records a mutation of bits [start, start+n) under a new
// version. When the dirty set outgrows the bound, the journal truncates:
// the map empties and the floor rises, so older cached views re-fetch
// the full map once and resync.
func (j *Journal) NoteBits(start, n int) {
	if n <= 0 {
		return
	}
	j.version++
	for w := start / wordBits; w <= (start+n-1)/wordBits; w++ {
		j.dirty[w] = j.version
	}
	if len(j.dirty) > j.cap {
		j.dirty = make(map[int]uint64)
		j.floor = j.version
	}
}

// Truncate empties the dirty set and raises the floor to the current
// version: every peer view cached at an older version must resync with
// one full map. Checkpoint capture uses it so the in-process
// continuation answers gathers exactly like a freshly restored cluster
// (whose journals start empty at the same version).
func (j *Journal) Truncate() {
	j.dirty = make(map[int]uint64)
	j.floor = j.version
}

// RestoreVersion reinstates a checkpointed version stamp. The journal
// restarts truncated at that version: incremental answers resume for
// mutations made after the restore.
func (j *Journal) RestoreVersion(v uint64) {
	j.version = v
	j.dirty = make(map[int]uint64)
	j.floor = v
}

// WordsSince returns the indices of every word dirtied after version
// since, sorted ascending (the deterministic wire order). ok is false
// when the journal cannot answer — since predates the truncation floor
// or lies in the future — and the caller must ship the full map.
func (j *Journal) WordsSince(since uint64) (words []int, ok bool) {
	if since < j.floor || since > j.version {
		return nil, false
	}
	for w, v := range j.dirty {
		if v > since {
			words = append(words, w)
		}
	}
	sort.Ints(words)
	return words, true
}
