package policy

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/simtime"
)

// Purchase-plan ranking for the decentralized negotiation arbiters.
//
// The paper's protocol commits to the first-fit run of the global OR,
// which under a shared lock is harmless: nobody else is negotiating, so
// the only cost dimension is the run itself. Once negotiations run
// concurrently (sharded or optimistic arbiter), the *shape* of the plan
// matters: every distinct seller is one more purchase round trip, one
// more bitmap whose version can move underneath an optimistic plan, and
// one more node whose shard may be contended. The planner therefore
// ranks candidate runs fewest-owners-first, priced through the cost
// model, and keeps scan order (locality: the candidate nearest the
// initiator's home region) as the tie-break.

// purchaseWireBytes approximates the purchase message footprint per
// seller: the op word, version stamp, share count and one packed share.
const purchaseWireBytes = 4 + 8 + 4 + 8

// PurchasePlanCost estimates the protocol cost of executing plan p: one
// request/reply round trip per distinct seller.
func PurchasePlanCost(p core.Purchase, m *cost.Model) simtime.Time {
	return simtime.Time(p.Owners()) * m.RoundTrip(purchaseWireBytes, 4)
}

// CheapestPurchase returns the index of the cheapest candidate under
// PurchasePlanCost; ties keep the earliest candidate (scan order, i.e.
// closest to the search origin). The slice must be non-empty.
func CheapestPurchase(cands []core.Purchase, m *cost.Model) int {
	best, bestCost := 0, PurchasePlanCost(cands[0], m)
	for i := 1; i < len(cands); i++ {
		if c := PurchasePlanCost(cands[i], m); c < bestCost {
			best, bestCost = i, c
		}
	}
	return best
}
