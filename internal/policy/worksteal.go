package policy

// WorkStealing is a pull model: starving nodes (no runnable threads)
// steal half the imbalance from the currently richest node. Spawns stay
// where the caller put them — locality is preserved until a node
// actually runs dry, which suits workloads with bursty, self-draining
// queues.
type WorkStealing struct {
	// MinVictim is the minimum resident count a node must have to be
	// robbed (default 2: never steal a node's last thread).
	MinVictim int
	// MaxSteal bounds the batch one thief takes per round (default 2).
	MaxSteal int
}

// NewWorkStealing returns the default-tuned stealing policy.
func NewWorkStealing() *WorkStealing { return &WorkStealing{MinVictim: 2, MaxSteal: 2} }

// Name implements Policy.
func (p *WorkStealing) Name() string { return "work-stealing" }

// OnLoadReport implements Policy; stealing is memoryless.
func (p *WorkStealing) OnLoadReport(LoadReport) {}

// ShouldMigrate implements Policy: act only when some fresh node is
// starving — nothing runnable, even if blocked threads still reside
// there — while another has threads to spare.
func (p *WorkStealing) ShouldMigrate(v View) bool {
	starving, rich := false, false
	for _, r := range v.Reports {
		if r.Stale {
			continue
		}
		if r.Runnable == 0 {
			starving = true
		}
		if r.Resident >= p.minVictim() {
			rich = true
		}
	}
	return starving && rich
}

// PickTarget implements Policy: each starving node, in rank order, robs
// the currently richest node; a working copy of the loads keeps multiple
// thieves in one round from mugging the same victim blind.
func (p *WorkStealing) PickTarget(v View) []Move {
	loads := make([]int, len(v.Reports))
	for i, r := range v.Reports {
		loads[i] = r.Resident
	}
	var out []Move
	for _, thief := range v.Reports {
		if thief.Stale || thief.Runnable != 0 {
			continue
		}
		victim, max := -1, p.minVictim()-1
		for _, r := range v.Reports {
			if !r.Stale && r.Node != thief.Node && loads[r.Node] > max {
				max, victim = loads[r.Node], r.Node
			}
		}
		// Only rob a victim that is actually richer than the thief's
		// resident count (blocked threads still occupy the thief).
		if victim < 0 || loads[victim] <= loads[thief.Node] {
			continue
		}
		count := (loads[victim] - loads[thief.Node]) / 2
		if count > p.maxSteal() {
			count = p.maxSteal()
		}
		if count < 1 {
			count = 1
		}
		loads[victim] -= count
		loads[thief.Node] += count
		out = append(out, Move{Src: victim, Dst: thief.Node, Count: count})
	}
	return out
}

// PickSpawn implements Policy: spawns keep their locality.
func (p *WorkStealing) PickSpawn(pref int, _ View) int { return pref }

func (p *WorkStealing) minVictim() int {
	if p.MinVictim <= 0 {
		return 2
	}
	return p.MinVictim
}

func (p *WorkStealing) maxSteal() int {
	if p.MaxSteal <= 0 {
		return 2
	}
	return p.MaxSteal
}
