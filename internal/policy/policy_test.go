package policy

import (
	"reflect"
	"testing"

	"repro/internal/simtime"
)

func view(now simtime.Time, resident ...int) View {
	v := View{Now: now, Reports: make([]LoadReport, len(resident))}
	for i, r := range resident {
		v.Reports[i] = LoadReport{Node: i, Resident: r, Runnable: r, Time: now}
	}
	return v
}

func TestParse(t *testing.T) {
	for name, want := range map[string]string{
		"":              "negotiation",
		"negotiation":   "negotiation",
		"threshold":     "negotiation",
		"round-robin":   "round-robin",
		"rr":            "round-robin",
		"work-stealing": "work-stealing",
		"steal":         "work-stealing",
	} {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("Parse(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Fatal("Parse accepted an unknown policy")
	}
	if len(Names()) != 3 {
		t.Fatalf("Names() = %v", Names())
	}
}

func TestNegotiationMatchesSeedBalancer(t *testing.T) {
	p := NewNegotiation()
	// Balanced: below threshold.
	if p.ShouldMigrate(view(0, 3, 2, 3)) {
		t.Fatal("moved across a balanced cluster")
	}
	// Imbalanced: one busiest->idlest move, halving the gap but capped
	// at MaxMoves (1).
	v := view(0, 6, 0, 3)
	if !p.ShouldMigrate(v) {
		t.Fatal("did not react to imbalance")
	}
	if got := p.PickTarget(v); !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 1, Count: 1}}) {
		t.Fatalf("PickTarget = %v", got)
	}
	// MaxMoves raises the cap; (max-min)/2 still binds.
	p.MaxMoves = 5
	if got := p.PickTarget(v); !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 1, Count: 3}}) {
		t.Fatalf("PickTarget = %v", got)
	}
	// Ties break toward the lowest rank, as in the seed balancer.
	if got := p.PickTarget(view(0, 4, 4, 0, 0)); !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 2, Count: 2}}) {
		t.Fatalf("PickTarget = %v", got)
	}
	// Spawns are never rerouted.
	if got := p.PickSpawn(2, v); got != 2 {
		t.Fatalf("PickSpawn = %d", got)
	}
}

func TestRoundRobinSpread(t *testing.T) {
	p := NewRoundRobinSpread()
	// Spawn placement rotates regardless of preference.
	v := view(0, 0, 0, 0, 0)
	got := []int{p.PickSpawn(0, v), p.PickSpawn(0, v), p.PickSpawn(0, v), p.PickSpawn(0, v)}
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("spawn rotation = %v", got)
	}
	// Over-ceiling nodes shed toward under-ceiling ones.
	v = view(0, 6, 0, 0)
	if !p.ShouldMigrate(v) {
		t.Fatal("did not react to imbalance")
	}
	moves := p.PickTarget(v)
	if len(moves) == 0 {
		t.Fatal("no moves")
	}
	total := 0
	for _, m := range moves {
		if m.Src != 0 || m.Dst == 0 || m.Count <= 0 {
			t.Fatalf("bad move %v", m)
		}
		total += m.Count
	}
	if total > p.MaxMoves {
		t.Fatalf("moved %d > MaxMoves %d", total, p.MaxMoves)
	}
	// A one-thread gap is left alone (anti-ping-pong).
	if p.ShouldMigrate(view(0, 2, 1, 2)) {
		t.Fatal("reacted to a one-thread gap")
	}
}

func TestWorkStealing(t *testing.T) {
	p := NewWorkStealing()
	// No starving node: nothing moves even under imbalance.
	if p.ShouldMigrate(view(0, 6, 1, 1)) {
		t.Fatal("stole with no starving node")
	}
	// Starving nodes rob the richest; one round's thieves see each
	// other's takings.
	v := view(0, 8, 0, 0)
	if !p.ShouldMigrate(v) {
		t.Fatal("starving nodes did not steal")
	}
	moves := p.PickTarget(v)
	if len(moves) != 2 {
		t.Fatalf("moves = %v", moves)
	}
	for _, m := range moves {
		if m.Src != 0 || m.Count < 1 || m.Count > p.MaxSteal {
			t.Fatalf("bad steal %v", m)
		}
	}
	// A lone thread is never stolen.
	if p.ShouldMigrate(view(0, 1, 0)) {
		t.Fatal("stole a node's last thread")
	}
	if got := p.PickSpawn(1, v); got != 1 {
		t.Fatalf("PickSpawn = %d", got)
	}
}

func TestEngineSanitizesMoves(t *testing.T) {
	bad := &scriptedPolicy{moves: []Move{
		{Src: 0, Dst: 0, Count: 1},  // self-move
		{Src: -1, Dst: 1, Count: 1}, // bad rank
		{Src: 0, Dst: 9, Count: 1},  // bad rank
		{Src: 0, Dst: 1, Count: 0},  // empty batch
		{Src: 0, Dst: 1, Count: 2},  // the one valid move
	}}
	e := NewEngine(bad, 2)
	e.Report(LoadReport{Node: 0, Resident: 4, Time: 0})
	e.Report(LoadReport{Node: 1, Resident: 0, Time: 0})
	got := e.Decide(0)
	if !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 1, Count: 2}}) {
		t.Fatalf("Decide = %v", got)
	}
}

func TestEngineClampsOverAskingCounts(t *testing.T) {
	over := &scriptedPolicy{moves: []Move{
		{Src: 0, Dst: 1, Count: 99}, // more threads than node 0 hosts
		{Src: 1, Dst: 0, Count: 5},  // source hosts nothing at all
	}}
	e := NewEngine(over, 2)
	e.Report(LoadReport{Node: 0, Resident: 3, Time: 0})
	e.Report(LoadReport{Node: 1, Resident: 0, Time: 0})
	got := e.Decide(0)
	if !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 1, Count: 3}}) {
		t.Fatalf("Decide = %v, want count clamped to resident 3 and the empty-source move dropped", got)
	}
}

func TestEngineStaleness(t *testing.T) {
	pol := NewNegotiation()
	e := NewEngine(pol, 3)
	e.StaleAfter = 10 * simtime.Millisecond
	e.Report(LoadReport{Node: 0, Resident: 6, Time: 0})
	e.Report(LoadReport{Node: 1, Resident: 0, Time: 0})
	e.Report(LoadReport{Node: 2, Resident: 0, Time: 0})
	// Fresh: the imbalance is visible.
	if got := e.Decide(1 * simtime.Millisecond); len(got) != 1 {
		t.Fatalf("fresh Decide = %v", got)
	}
	// Node 1's report goes stale; node 2 stays fresh and becomes the
	// destination.
	e.Report(LoadReport{Node: 0, Resident: 6, Time: 20 * simtime.Millisecond})
	e.Report(LoadReport{Node: 2, Resident: 0, Time: 20 * simtime.Millisecond})
	got := e.Decide(20 * simtime.Millisecond)
	if !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 2, Count: 1}}) {
		t.Fatalf("stale Decide = %v", got)
	}
	// All peers stale: nothing is eligible, nothing moves.
	got = e.Decide(60 * simtime.Millisecond)
	if len(got) != 0 {
		t.Fatalf("Decide with all-stale reports = %v", got)
	}
}

func TestEngineNeverReportedIsStale(t *testing.T) {
	e := NewEngine(NewNegotiation(), 2)
	v := e.View(0)
	if !v.Reports[0].Stale || !v.Reports[1].Stale {
		t.Fatalf("unreported nodes not stale: %+v", v.Reports)
	}
	if got := e.Decide(0); len(got) != 0 {
		t.Fatalf("Decide on unreported cluster = %v", got)
	}
}

func TestEnginePlaceSpawnFallback(t *testing.T) {
	e := NewEngine(&scriptedPolicy{spawn: 99}, 2)
	if got := e.PlaceSpawn(1, 0); got != 1 {
		t.Fatalf("PlaceSpawn with out-of-range answer = %d, want pref", got)
	}
}

// scriptedPolicy returns canned decisions, for engine-sanitization tests.
type scriptedPolicy struct {
	moves []Move
	spawn int
}

func (s *scriptedPolicy) Name() string                   { return "scripted" }
func (s *scriptedPolicy) OnLoadReport(LoadReport)        {}
func (s *scriptedPolicy) ShouldMigrate(View) bool        { return true }
func (s *scriptedPolicy) PickTarget(View) []Move         { return s.moves }
func (s *scriptedPolicy) PickSpawn(pref int, _ View) int { return s.spawn }

// TestNegotiationContentionBackoff: with ContentionBackoff on, the idlest
// node is skipped as a migration destination while its cumulative version
// declines are growing between reports — the balancer must not feed
// threads (and their allocation pressure) to a node already losing races
// for contended slot regions. Once the declines stop growing, the node is
// eligible again; with every candidate contended the unfiltered choice
// stands; with the feature off behavior is byte-identical to the seed.
func TestNegotiationContentionBackoff(t *testing.T) {
	report := func(p *Negotiation, declines ...int) View {
		v := view(0, 6, 1, 0) // node 2 idlest, node 1 next
		for i := range v.Reports {
			v.Reports[i].VersionDeclines = declines[i]
			p.OnLoadReport(v.Reports[i])
		}
		return v
	}

	p := NewNegotiation()
	p.ContentionBackoff = true

	// First report: no delta is computable yet, nothing is contended.
	v := report(p, 0, 0, 4)
	if got := p.PickTarget(v); !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 2, Count: 1}}) {
		t.Fatalf("first round PickTarget = %v, want move to idlest node 2", got)
	}

	// Node 2's declines grew since the last report: it is contended, so
	// the move goes to the idlest uncontended node instead.
	v = report(p, 0, 0, 9)
	if got := p.PickTarget(v); !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 1, Count: 1}}) {
		t.Fatalf("contended round PickTarget = %v, want backoff to node 1", got)
	}

	// Declines stopped growing: node 2 is calm again.
	v = report(p, 0, 0, 9)
	if got := p.PickTarget(v); !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 2, Count: 1}}) {
		t.Fatalf("calm round PickTarget = %v, want node 2 back", got)
	}

	// Every candidate contended: keep the unfiltered choice rather than
	// stalling the balancer.
	v = report(p, 5, 3, 12)
	if got := p.PickTarget(v); !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 2, Count: 1}}) {
		t.Fatalf("all-contended PickTarget = %v, want unfiltered node 2", got)
	}

	// The substitute destination must still satisfy the threshold: if
	// backing off would move work onto a node nearly as loaded as the
	// source, no move happens this round.
	q := NewNegotiation()
	q.ContentionBackoff = true
	w := view(0, 3, 2, 0)
	for _, declines := range [][]int{{0, 0, 0}, {0, 0, 7}} {
		for i := range w.Reports {
			w.Reports[i].VersionDeclines = declines[i]
			q.OnLoadReport(w.Reports[i])
		}
	}
	if got := q.PickTarget(w); got != nil {
		t.Fatalf("threshold-violating backoff produced %v, want no move", got)
	}

	// Feature off: identical to the seed scheme even with declines set.
	off := NewNegotiation()
	v = view(0, 6, 1, 0)
	for i := range v.Reports {
		v.Reports[i].VersionDeclines = 100 * (i + 1)
		off.OnLoadReport(v.Reports[i])
	}
	if got := off.PickTarget(v); !reflect.DeepEqual(got, []Move{{Src: 0, Dst: 2, Count: 1}}) {
		t.Fatalf("backoff-off PickTarget = %v", got)
	}
}
