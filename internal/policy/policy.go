// Package policy is the migration-policy engine: it decides *when* and
// *where* threads move, separated from the mechanism that moves them
// (internal/pm2's iso-address or relocation migration).
//
// The paper's evaluation (Figures 6–9) shows that placement decisions
// dominate end-to-end cost, yet the original PM2 hard-wires a single
// negotiation-driven path. Here every decision point — spawn placement,
// balancing rounds, migration target selection — goes through a Policy,
// so alternatives (round-robin spread, work stealing, future schemes) are
// swappable and testable against the same deterministic workloads
// (internal/scenario).
//
// A Policy is consulted through an Engine, which owns the load-report
// store, computes report staleness, and sanitizes the policy's output so
// a buggy policy cannot produce invalid migrations. Policies are
// single-goroutine objects living inside the cluster's virtual-time
// world; they must be deterministic (no maps iterated, no real time, no
// randomness) or golden-trace tests will catch them.
//
// To add a policy: implement Policy, keep every method deterministic,
// register a name in Parse, and add the name to Names. The scenario
// harness and its golden/property tests pick it up from there.
package policy

import (
	"fmt"

	"repro/internal/simtime"
)

// LoadReport is one node's load sample, as fed to OnLoadReport and as
// seen (with Stale computed) in a View.
type LoadReport struct {
	// Node is the reporting node's rank.
	Node int
	// Resident is the number of threads hosted by the node, including
	// blocked ones (what the paper's balancer counts).
	Resident int
	// Runnable is the number of resident threads that are not blocked.
	Runnable int
	// VersionDeclines is the cumulative count of optimistic-arbiter
	// version declines this node has suffered as a negotiation
	// initiator. A count that grows between two reports marks the node
	// as actively losing races for contended slot regions — a signal
	// contention-aware policies use to back off placing more allocation
	// pressure there.
	VersionDeclines int
	// Time is the virtual time the sample was taken.
	Time simtime.Time
	// Stale marks a report older than the engine's StaleAfter window.
	// Policies must not move threads to or from a stale node: its true
	// load is unknown.
	Stale bool
}

// View is the cluster state a policy sees at decision time: one report
// per node (Reports[i].Node == i) plus the current virtual time.
type View struct {
	Now     simtime.Time
	Reports []LoadReport
}

// Move is one requested migration batch: Count threads from node Src to
// node Dst.
type Move struct {
	Src, Dst, Count int
}

func (m Move) String() string { return fmt.Sprintf("%d->%dx%d", m.Src, m.Dst, m.Count) }

// Policy decides thread placement and migration. Implementations must be
// deterministic; they may keep state across calls (the Engine never
// copies a Policy).
type Policy interface {
	// Name returns the canonical policy name (as accepted by Parse).
	Name() string
	// OnLoadReport ingests one node's fresh load sample. Called for
	// every sample the engine stores, before any decision that sample
	// participates in.
	OnLoadReport(r LoadReport)
	// ShouldMigrate reports whether the policy wants to move anything
	// under the given view. PickTarget is only consulted when true.
	ShouldMigrate(v View) bool
	// PickTarget selects this round's migrations.
	PickTarget(v View) []Move
	// PickSpawn chooses the node for a new thread whose creator asked
	// for node pref. Behavior-preserving policies return pref.
	PickSpawn(pref int, v View) int
}

// SpawnRerouter is the optional capability of policies whose PickSpawn
// may return something other than the caller's preference. The runtime
// only samples cluster loads and consults PickSpawn on the spawn path
// for policies that implement it and return true — for everything else
// (the default negotiation scheme, work stealing) spawn placement is a
// no-op and stays off the hot path.
type SpawnRerouter interface {
	ReroutesSpawns() bool
}

// Reroutes reports whether p may reroute spawns.
func Reroutes(p Policy) bool {
	r, ok := p.(SpawnRerouter)
	return ok && r.ReroutesSpawns()
}

// Parse resolves a policy name to a fresh Policy instance. The empty
// string selects the default (the paper's threshold/negotiation scheme).
func Parse(name string) (Policy, error) {
	switch name {
	case "", "negotiation", "threshold":
		return NewNegotiation(), nil
	case "round-robin", "rr", "spread":
		return NewRoundRobinSpread(), nil
	case "work-stealing", "steal", "ws":
		return NewWorkStealing(), nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
}

// Names lists the canonical policy names.
func Names() []string { return []string{"negotiation", "round-robin", "work-stealing"} }

// Engine drives a Policy: it stores the latest load report per node,
// stamps staleness, and validates every decision before the runtime acts
// on it.
type Engine struct {
	// StaleAfter marks reports older than this as stale when building a
	// view (0 = reports never go stale).
	StaleAfter simtime.Time

	pol     Policy
	reports []LoadReport
	down    []bool
	suspect []bool
}

// NewEngine builds an engine over pol for a cluster of nodes ranks.
func NewEngine(pol Policy, nodes int) *Engine {
	e := &Engine{
		pol:     pol,
		reports: make([]LoadReport, nodes),
		down:    make([]bool, nodes),
		suspect: make([]bool, nodes),
	}
	for i := range e.reports {
		e.reports[i] = LoadReport{Node: i, Time: -1} // never reported
	}
	return e
}

// Policy returns the wrapped policy.
func (e *Engine) Policy() Policy { return e.pol }

// SetDown marks a node as permanently dead: its reports are dropped,
// every view shows it stale (so Decide never moves threads to or from
// it), and PlaceSpawn reroutes around it.
func (e *Engine) SetDown(node int) {
	if node >= 0 && node < len(e.down) {
		e.down[node] = true
	}
}

// SetSuspect marks node as suspected (true) or clears the suspicion
// (false). A suspected node behaves like a dead one for every decision —
// reports dropped, views stale, spawns rerouted — but reversibly: the
// failure detector clears the flag when a partitioned node rejoins.
func (e *Engine) SetSuspect(node int, suspected bool) {
	if node >= 0 && node < len(e.suspect) {
		e.suspect[node] = suspected
	}
}

// Report stores one node's sample and forwards it to the policy.
func (e *Engine) Report(r LoadReport) {
	if r.Node < 0 || r.Node >= len(e.reports) || e.down[r.Node] || e.suspect[r.Node] {
		return
	}
	r.Stale = false
	e.reports[r.Node] = r
	e.pol.OnLoadReport(r)
}

// View assembles the policy's view at virtual time now, computing
// staleness from StaleAfter. Nodes that never reported are stale.
func (e *Engine) View(now simtime.Time) View {
	v := View{Now: now, Reports: make([]LoadReport, len(e.reports))}
	copy(v.Reports, e.reports)
	for i := range v.Reports {
		r := &v.Reports[i]
		if r.Time < 0 || e.down[i] || e.suspect[i] {
			r.Stale = true
			continue
		}
		if e.StaleAfter > 0 && now-r.Time > e.StaleAfter {
			r.Stale = true
		}
	}
	return v
}

// Decide runs one balancing decision: gate on ShouldMigrate, then return
// PickTarget's moves with invalid entries (bad ranks, self-moves,
// non-positive counts, stale endpoints) dropped and over-asking counts
// clamped to the source's fresh resident population — a buggy policy
// must not request more threads than exist, or the balancer's Moves()
// accounting would misstate what was actually possible.
func (e *Engine) Decide(now simtime.Time) []Move {
	v := e.View(now)
	if !e.pol.ShouldMigrate(v) {
		return nil
	}
	var out []Move
	for _, m := range e.pol.PickTarget(v) {
		if m.Src < 0 || m.Src >= len(v.Reports) || m.Dst < 0 || m.Dst >= len(v.Reports) {
			continue
		}
		if m.Src == m.Dst || m.Count <= 0 {
			continue
		}
		if v.Reports[m.Src].Stale || v.Reports[m.Dst].Stale {
			continue
		}
		if r := v.Reports[m.Src].Resident; m.Count > r {
			m.Count = r
		}
		if m.Count <= 0 {
			continue
		}
		out = append(out, m)
	}
	return out
}

// PlaceSpawn asks the policy where to create a thread whose creator
// asked for node pref, falling back to pref on an invalid answer.
// Dead nodes are never returned: both the preference and the policy's
// answer are rerouted to the next live rank.
func (e *Engine) PlaceSpawn(pref int, now simtime.Time) int {
	pref = e.NextLive(pref)
	n := e.pol.PickSpawn(pref, e.View(now))
	if n < 0 || n >= len(e.reports) {
		return pref
	}
	return e.NextLive(n)
}

// NextLive returns node if it is alive and unsuspected, otherwise the
// next such rank scanning upward with wraparound (node itself if none
// qualifies).
func (e *Engine) NextLive(node int) int {
	if node < 0 || node >= len(e.down) {
		return node
	}
	for i := 0; i < len(e.down); i++ {
		cand := (node + i) % len(e.down)
		if !e.down[cand] && !e.suspect[cand] {
			return cand
		}
	}
	return node
}
