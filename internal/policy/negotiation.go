package policy

// Negotiation is the paper's threshold scheme and the default policy: a
// balancing round moves threads from the most loaded node to the least
// loaded one when the imbalance reaches Threshold, and spawns stay where
// the caller put them (placement happens only through the §4.4 slot
// negotiation, hence the name). This policy reproduces the seed
// balancer's behavior exactly.
type Negotiation struct {
	// Threshold is the minimum load imbalance (max - min resident
	// threads) that triggers a migration (default 2).
	Threshold int
	// MaxMoves bounds migrations per round (default 1).
	MaxMoves int
	// ContentionBackoff makes the policy avoid placing threads onto
	// nodes whose negotiations are actively losing version races
	// (LoadReport.VersionDeclines growing between reports): landing
	// more allocation pressure on a node already fighting for contended
	// slot regions only feeds the conflict. A contended node is skipped
	// as a migration destination while an uncontended candidate exists.
	// Off by default — the paper's scheme ignores contention, and the
	// existing golden traces pin that behavior.
	ContentionBackoff bool

	// lastDeclines/contended track the per-node decline delta between
	// consecutive reports (only maintained under ContentionBackoff).
	lastDeclines map[int]int
	contended    map[int]bool
}

// NewNegotiation returns the default-tuned threshold policy.
func NewNegotiation() *Negotiation { return &Negotiation{Threshold: 2, MaxMoves: 1} }

// Name implements Policy.
func (p *Negotiation) Name() string { return "negotiation" }

// OnLoadReport implements Policy. The threshold scheme itself is
// memoryless; under ContentionBackoff the report's cumulative version
// declines are differenced here so decision time can see which nodes are
// *currently* contended, not which ever were.
func (p *Negotiation) OnLoadReport(r LoadReport) {
	if !p.ContentionBackoff {
		return
	}
	if p.lastDeclines == nil {
		p.lastDeclines = make(map[int]int)
		p.contended = make(map[int]bool)
	}
	prev, seen := p.lastDeclines[r.Node]
	p.contended[r.Node] = seen && r.VersionDeclines > prev
	p.lastDeclines[r.Node] = r.VersionDeclines
}

// extremes finds the first busiest and first idlest fresh nodes, in node
// order (ties break low, as in the seed balancer).
func extremes(v View) (busiest, idlest, max, min int) {
	busiest, idlest = -1, -1
	max, min = -1, 1<<30
	for _, r := range v.Reports {
		if r.Stale {
			continue
		}
		if r.Resident > max {
			max, busiest = r.Resident, r.Node
		}
		if r.Resident < min {
			min, idlest = r.Resident, r.Node
		}
	}
	return busiest, idlest, max, min
}

// ShouldMigrate implements Policy.
func (p *Negotiation) ShouldMigrate(v View) bool {
	busiest, idlest, max, min := extremes(v)
	return busiest >= 0 && idlest >= 0 && busiest != idlest && max-min >= p.threshold()
}

// PickTarget implements Policy: one busiest-to-idlest batch, halving the
// imbalance but never exceeding MaxMoves. Under ContentionBackoff the
// destination is the idlest *uncontended* node when one exists — a node
// losing version races for slot regions is not handed extra threads (and
// the allocation pressure they bring) while a calmer peer can take them.
func (p *Negotiation) PickTarget(v View) []Move {
	busiest, idlest, max, min := extremes(v)
	if busiest < 0 || idlest < 0 || busiest == idlest || max-min < p.threshold() {
		return nil
	}
	if p.ContentionBackoff && p.contended[idlest] {
		if alt, altLoad := p.idlestUncontended(v, busiest); alt >= 0 && alt != idlest {
			// Re-apply the threshold against the substitute: backing
			// off must not create moves the imbalance does not justify.
			if max-altLoad >= p.threshold() {
				idlest, min = alt, altLoad
			} else {
				return nil
			}
		}
	}
	count := p.maxMoves()
	if d := (max - min) / 2; d < count {
		count = d
	}
	if count < 1 {
		count = 1
	}
	return []Move{{Src: busiest, Dst: idlest, Count: count}}
}

// idlestUncontended returns the least-loaded fresh node (ties break low)
// that is not currently contended and is not src, or -1 when every
// candidate is contended — in which case the caller keeps the unfiltered
// choice rather than suppressing balancing entirely.
func (p *Negotiation) idlestUncontended(v View, src int) (node, load int) {
	node, load = -1, 1<<30
	for _, r := range v.Reports {
		if r.Stale || r.Node == src || p.contended[r.Node] {
			continue
		}
		if r.Resident < load {
			node, load = r.Node, r.Resident
		}
	}
	return node, load
}

// PickSpawn implements Policy: spawns are not rerouted.
func (p *Negotiation) PickSpawn(pref int, _ View) int { return pref }

func (p *Negotiation) threshold() int {
	if p.Threshold <= 0 {
		return 2
	}
	return p.Threshold
}

func (p *Negotiation) maxMoves() int {
	if p.MaxMoves <= 0 {
		return 1
	}
	return p.MaxMoves
}
