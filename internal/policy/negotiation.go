package policy

// Negotiation is the paper's threshold scheme and the default policy: a
// balancing round moves threads from the most loaded node to the least
// loaded one when the imbalance reaches Threshold, and spawns stay where
// the caller put them (placement happens only through the §4.4 slot
// negotiation, hence the name). This policy reproduces the seed
// balancer's behavior exactly.
type Negotiation struct {
	// Threshold is the minimum load imbalance (max - min resident
	// threads) that triggers a migration (default 2).
	Threshold int
	// MaxMoves bounds migrations per round (default 1).
	MaxMoves int
}

// NewNegotiation returns the default-tuned threshold policy.
func NewNegotiation() *Negotiation { return &Negotiation{Threshold: 2, MaxMoves: 1} }

// Name implements Policy.
func (p *Negotiation) Name() string { return "negotiation" }

// OnLoadReport implements Policy; the threshold scheme is memoryless.
func (p *Negotiation) OnLoadReport(LoadReport) {}

// extremes finds the first busiest and first idlest fresh nodes, in node
// order (ties break low, as in the seed balancer).
func extremes(v View) (busiest, idlest, max, min int) {
	busiest, idlest = -1, -1
	max, min = -1, 1<<30
	for _, r := range v.Reports {
		if r.Stale {
			continue
		}
		if r.Resident > max {
			max, busiest = r.Resident, r.Node
		}
		if r.Resident < min {
			min, idlest = r.Resident, r.Node
		}
	}
	return busiest, idlest, max, min
}

// ShouldMigrate implements Policy.
func (p *Negotiation) ShouldMigrate(v View) bool {
	busiest, idlest, max, min := extremes(v)
	return busiest >= 0 && idlest >= 0 && busiest != idlest && max-min >= p.threshold()
}

// PickTarget implements Policy: one busiest-to-idlest batch, halving the
// imbalance but never exceeding MaxMoves.
func (p *Negotiation) PickTarget(v View) []Move {
	busiest, idlest, max, min := extremes(v)
	if busiest < 0 || idlest < 0 || busiest == idlest || max-min < p.threshold() {
		return nil
	}
	count := p.maxMoves()
	if d := (max - min) / 2; d < count {
		count = d
	}
	if count < 1 {
		count = 1
	}
	return []Move{{Src: busiest, Dst: idlest, Count: count}}
}

// PickSpawn implements Policy: spawns are not rerouted.
func (p *Negotiation) PickSpawn(pref int, _ View) int { return pref }

func (p *Negotiation) threshold() int {
	if p.Threshold <= 0 {
		return 2
	}
	return p.Threshold
}

func (p *Negotiation) maxMoves() int {
	if p.MaxMoves <= 0 {
		return 1
	}
	return p.MaxMoves
}
