package policy

// RoundRobinSpread places work round-robin across the cluster at spawn
// time and, each balancing round, shaves load off over-average nodes
// onto under-average ones, cycling the destination cursor so no single
// node becomes the permanent dumping ground. It is the "spread early"
// counterpoint to the paper's "negotiate late" default: cheap placement
// decisions up front instead of reactive migration.
type RoundRobinSpread struct {
	// MaxMoves bounds migrations per round (default 2).
	MaxMoves int

	// spawnCursor rotates spawn placement; moveCursor rotates the
	// destination scan between rounds.
	spawnCursor int
	moveCursor  int
}

// NewRoundRobinSpread returns the default-tuned spread policy.
func NewRoundRobinSpread() *RoundRobinSpread { return &RoundRobinSpread{MaxMoves: 2} }

// Name implements Policy.
func (p *RoundRobinSpread) Name() string { return "round-robin" }

// OnLoadReport implements Policy; spreading is memoryless.
func (p *RoundRobinSpread) OnLoadReport(LoadReport) {}

// ShouldMigrate implements Policy: act when some fresh pair of nodes is
// more than one thread apart (a difference of one would only ping-pong).
func (p *RoundRobinSpread) ShouldMigrate(v View) bool {
	busiest, idlest, max, min := extremes(v)
	return busiest >= 0 && idlest >= 0 && busiest != idlest && max-min >= 2
}

// PickTarget implements Policy: walk nodes above the ceiling of the
// average load and ship their excess to below-average nodes, scanning
// destinations from a cursor that advances every round.
func (p *RoundRobinSpread) PickTarget(v View) []Move {
	n := len(v.Reports)
	if n == 0 {
		return nil
	}
	total, fresh := 0, 0
	for _, r := range v.Reports {
		if !r.Stale {
			total += r.Resident
			fresh++
		}
	}
	if fresh < 2 {
		return nil
	}
	ceil := (total + fresh - 1) / fresh
	loads := make([]int, n)
	for i, r := range v.Reports {
		loads[i] = r.Resident
	}
	cursor := p.moveCursor
	p.moveCursor = (p.moveCursor + 1) % n
	budget := p.maxMoves()
	var out []Move
	for src := 0; src < n && budget > 0; src++ {
		if v.Reports[src].Stale || loads[src] <= ceil {
			continue
		}
		for k := 0; k < n && loads[src] > ceil && budget > 0; k++ {
			dst := (cursor + k) % n
			if dst == src || v.Reports[dst].Stale || loads[dst] >= ceil {
				continue
			}
			count := loads[src] - ceil
			if room := ceil - loads[dst]; room < count {
				count = room
			}
			if count > budget {
				count = budget
			}
			loads[src] -= count
			loads[dst] += count
			budget -= count
			out = append(out, Move{Src: src, Dst: dst, Count: count})
		}
	}
	return out
}

// ReroutesSpawns implements SpawnRerouter: spawn placement is where the
// spread happens.
func (p *RoundRobinSpread) ReroutesSpawns() bool { return true }

// PickSpawn implements Policy: ignore the preference and rotate over the
// cluster, skipping stale nodes when fresh ones exist.
func (p *RoundRobinSpread) PickSpawn(pref int, v View) int {
	n := len(v.Reports)
	if n == 0 {
		return pref
	}
	for k := 0; k < n; k++ {
		cand := (p.spawnCursor + k) % n
		if !v.Reports[cand].Stale {
			p.spawnCursor = (cand + 1) % n
			return cand
		}
	}
	// Everything is stale (e.g. no reports yet): rotate blindly.
	cand := p.spawnCursor % n
	p.spawnCursor = (cand + 1) % n
	return cand
}

func (p *RoundRobinSpread) maxMoves() int {
	if p.MaxMoves <= 0 {
		return 2
	}
	return p.MaxMoves
}
