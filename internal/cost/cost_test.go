package cost

import (
	"testing"

	"repro/internal/simtime"
)

func TestDefaultIsEraPlausible(t *testing.T) {
	m := Default()
	if m.CycleNs != 5 {
		t.Errorf("CycleNs = %d, want 5 (200 MHz PentiumPro)", m.CycleNs)
	}
	// The relations the reproduction depends on.
	if m.ZeroFillNsPerByte <= m.MemcpyNsPerByte {
		t.Error("first-touch zero-fill must cost more than resident memcpy")
	}
	if m.WireLatencyNs < 1000 || m.WireLatencyNs > 50_000 {
		t.Errorf("BIP latency %d ns implausible", m.WireLatencyNs)
	}
	if m.WireNsPerByte != 8 {
		t.Errorf("wire bandwidth should be 125 MB/s (8 ns/B), got %v", m.WireNsPerByte)
	}
}

func TestInstrAndBuiltin(t *testing.T) {
	m := Default()
	if got := m.Instr(100); got != simtime.Time(100*m.CyclesPerInstr*m.CycleNs) {
		t.Errorf("Instr(100) = %v", got)
	}
	if m.Builtin() <= 0 {
		t.Error("builtin entry must cost time")
	}
}

func TestMemoryCosts(t *testing.T) {
	m := Default()
	if m.Memcpy(0) != 0 || m.ZeroFill(0) != 0 {
		t.Error("zero-byte operations must be free")
	}
	// 64 KB copy at 3 ns/B = 196.6 µs.
	if got := m.Memcpy(64 << 10).Micros(); got < 190 || got > 205 {
		t.Errorf("Memcpy(64K) = %v µs", got)
	}
	// Zero-fill of 8 MB should land near the paper's 100 ms allocation.
	if got := m.ZeroFill(8 << 20).Micros(); got < 90_000 || got > 115_000 {
		t.Errorf("ZeroFill(8M) = %v µs, want ≈100000 (paper Fig 11)", got)
	}
	if m.Mmap(16) <= m.Mmap(1) {
		t.Error("mmap must scale with pages")
	}
	if m.Munmap(16) <= 0 {
		t.Error("munmap must cost time")
	}
}

func TestWireTimes(t *testing.T) {
	m := Default()
	lat := m.WireTime(0)
	if lat != simtime.Time(m.WireLatencyNs) {
		t.Errorf("empty message wire time = %v", lat)
	}
	// 7168-byte bitmap: latency + 57.3 µs serialization.
	bm := m.WireTime(7168)
	if d := (bm - lat).Micros(); d < 55 || d > 60 {
		t.Errorf("bitmap serialization = %v µs", d)
	}
	if m.Send(100) <= simtime.Time(m.SendOverheadNs) {
		t.Error("send must include the payload copy")
	}
	if m.Recv(100) <= simtime.Time(m.RecvOverheadNs) {
		t.Error("recv must include the payload copy")
	}
}

func TestScanAndProbes(t *testing.T) {
	m := Default()
	if m.Probes(10) != 10*m.Probes(1) {
		t.Error("probes must be linear")
	}
	if m.BitmapScan(7168) <= 0 {
		t.Error("bitmap scan must cost time")
	}
	if Fixed(1500) != 1500*simtime.Nanosecond {
		t.Error("Fixed broken")
	}
}

// TestHeadlineBudgets sanity-checks that the calibration leaves room for
// the paper's headline numbers; the real measurements live in the pm2 and
// bench tests.
func TestHeadlineBudgets(t *testing.T) {
	m := Default()
	// One migration hop must fit in 75 µs: freeze + pack(600B) + send +
	// wire + recv + mmap(16 pages) + copy + resume.
	est := Fixed(m.FreezeNs) + m.Memcpy(600) + m.Send(600) + m.WireTime(600) +
		m.Recv(600) + m.Mmap(16) + m.Memcpy(600) + m.ZeroFill(600) + Fixed(m.ResumeNs)
	if est.Micros() >= 75 {
		t.Errorf("migration budget estimate %v µs ≥ 75", est.Micros())
	}
	// A bitmap gather round must stay in the 165 µs ballpark.
	gather := m.Send(12) + m.WireTime(12) + m.Recv(12) + // request
		m.Memcpy(7168) + m.Send(7168) + m.WireTime(7168) + m.Recv(7168) + // reply
		m.BitmapScan(7168) // OR
	if g := gather.Micros(); g < 120 || g > 220 {
		t.Errorf("gather estimate %v µs, want ≈165", g)
	}
}
