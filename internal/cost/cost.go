// Package cost holds the calibrated cost model for the simulated 1999 PoPC
// cluster of the paper: 200 MHz PentiumPro nodes running Linux 2.0.36,
// interconnected by Myrinet accessed through BIP.
//
// Every simulated operation (interpreting a thread instruction, memcpy,
// first-touch zero-fill, mmap/munmap, network send) charges virtual time
// through one of the helpers below. The constants are calibrated so that the
// paper's headline measurements emerge from the mechanisms (not hard-coded):
// thread migration < 75 µs, negotiation ≈ 255 µs on two nodes plus ≈ 165 µs
// per extra node, and the malloc/isomalloc curves of Figure 11. EXPERIMENTS.md
// records the calibration and the measured outcomes.
package cost

import "repro/internal/simtime"

// Model is a set of cost constants. Benchmarks and ablations may copy and
// perturb a Model; the runtime treats it as read-only.
type Model struct {
	// CPU.

	// CycleNs is the duration of one CPU cycle (5 ns at 200 MHz).
	CycleNs int64
	// CyclesPerInstr is the charge per interpreted thread instruction.
	CyclesPerInstr int64
	// CyclesPerBuiltin is the fixed entry overhead of a runtime call
	// (pm2_isomalloc, pm2_printf, ...), modeling the library call path.
	CyclesPerBuiltin int64

	// Memory.

	// MemcpyNsPerByte is the cost of copying resident memory.
	MemcpyNsPerByte float64
	// ZeroFillNsPerByte is the first-touch cost of freshly mapped memory
	// (kernel page clearing plus fault handling), charged when an
	// allocation hands out new pages.
	ZeroFillNsPerByte float64
	// MmapFixedNs and MmapPerPageNs model the mmap system call.
	MmapFixedNs   int64
	MmapPerPageNs int64
	// MunmapFixedNs and MunmapPerPageNs model munmap.
	MunmapFixedNs   int64
	MunmapPerPageNs int64

	// Allocator bookkeeping.

	// AllocSearchNsPerProbe is the charge per free-list or bitmap probe.
	AllocSearchNsPerProbe int64
	// BitmapScanNsPerByte is the charge for scanning/merging slot bitmaps
	// during negotiation.
	BitmapScanNsPerByte float64

	// Network (BIP over Myrinet).

	// WireLatencyNs is the one-way small-message latency.
	WireLatencyNs int64
	// WireNsPerByte is the inverse bandwidth of the link (8 ns/B = 125 MB/s).
	WireNsPerByte float64
	// SendOverheadNs is CPU time on the sender per message.
	SendOverheadNs int64
	// RecvOverheadNs is CPU time on the receiver per message.
	RecvOverheadNs int64

	// Thread and migration machinery.

	// ThreadInitNs is the CPU cost of initializing a thread descriptor
	// and stack (beyond slot acquisition).
	ThreadInitNs int64
	// CtxSwitchNs is a scheduler context switch.
	CtxSwitchNs int64
	// FreezeNs is stopping a thread and spilling its registers into the
	// in-memory descriptor.
	FreezeNs int64
	// ResumeNs is re-enqueueing and reloading a thawed thread.
	ResumeNs int64
	// PointerFixupNs is the per-pointer charge of the post-migration
	// update pass used by the relocation baseline (registered pointers
	// and compiler frame-chain entries alike).
	PointerFixupNs int64
	// DmaSetupNs is the per-segment cost of posting one entry of a
	// scatter-gather list to the NIC (address translation + descriptor
	// write), paid on both sides of a zero-copy BIP transfer in place of
	// the per-byte copy the programmed-I/O path charges.
	DmaSetupNs int64
}

// Default returns the calibrated model for the paper's platform.
func Default() *Model {
	return &Model{
		CycleNs:          5, // 200 MHz
		CyclesPerInstr:   2,
		CyclesPerBuiltin: 60,

		MemcpyNsPerByte:   3,    // ~330 MB/s resident copy
		ZeroFillNsPerByte: 12.2, // ~82 MB/s first touch (kernel clear_page + fault)
		MmapFixedNs:       9_000,
		MmapPerPageNs:     150,
		MunmapFixedNs:     6_000,
		MunmapPerPageNs:   100,

		AllocSearchNsPerProbe: 40,
		BitmapScanNsPerByte:   2,

		WireLatencyNs:  9_000, // BIP one-way latency (Madeleine over BIP)
		WireNsPerByte:  8,     // 125 MB/s
		SendOverheadNs: 4_000,
		RecvOverheadNs: 4_000,

		ThreadInitNs:   6_000,
		CtxSwitchNs:    1_500,
		FreezeNs:       3_000,
		ResumeNs:       3_500,
		PointerFixupNs: 900,
		DmaSetupNs:     400,
	}
}

func ns(v float64) simtime.Time {
	return simtime.Time(v) * simtime.Nanosecond
}

// Instr returns the cost of executing n interpreted instructions.
func (m *Model) Instr(n int64) simtime.Time {
	return simtime.Time(n*m.CyclesPerInstr*m.CycleNs) * simtime.Nanosecond
}

// Builtin returns the fixed entry cost of one runtime call.
func (m *Model) Builtin() simtime.Time {
	return simtime.Time(m.CyclesPerBuiltin*m.CycleNs) * simtime.Nanosecond
}

// Memcpy returns the cost of copying n resident bytes.
func (m *Model) Memcpy(n int) simtime.Time {
	return ns(float64(n) * m.MemcpyNsPerByte)
}

// ZeroFill returns the first-touch cost of n freshly mapped bytes.
func (m *Model) ZeroFill(n int) simtime.Time {
	return ns(float64(n) * m.ZeroFillNsPerByte)
}

// Mmap returns the cost of mapping n bytes (n is rounded up to pages by the
// caller; pages is the page count).
func (m *Model) Mmap(pages int) simtime.Time {
	return simtime.Time(m.MmapFixedNs+int64(pages)*m.MmapPerPageNs) * simtime.Nanosecond
}

// Munmap returns the cost of unmapping pages pages.
func (m *Model) Munmap(pages int) simtime.Time {
	return simtime.Time(m.MunmapFixedNs+int64(pages)*m.MunmapPerPageNs) * simtime.Nanosecond
}

// Probes returns the cost of n allocator probes.
func (m *Model) Probes(n int) simtime.Time {
	return simtime.Time(int64(n)*m.AllocSearchNsPerProbe) * simtime.Nanosecond
}

// BitmapScan returns the cost of scanning n bitmap bytes.
func (m *Model) BitmapScan(n int) simtime.Time {
	return ns(float64(n) * m.BitmapScanNsPerByte)
}

// WireTime returns the link occupancy of an n-byte message: latency plus
// serialization.
func (m *Model) WireTime(n int) simtime.Time {
	return simtime.Time(m.WireLatencyNs)*simtime.Nanosecond + ns(float64(n)*m.WireNsPerByte)
}

// Send returns the sender-side CPU cost of an n-byte message (overhead plus
// copying the payload into the NIC buffer).
func (m *Model) Send(n int) simtime.Time {
	return simtime.Time(m.SendOverheadNs)*simtime.Nanosecond + m.Memcpy(n)
}

// Recv returns the receiver-side CPU cost of an n-byte message.
func (m *Model) Recv(n int) simtime.Time {
	return simtime.Time(m.RecvOverheadNs)*simtime.Nanosecond + m.Memcpy(n)
}

// DmaSetup returns the cost of posting n scatter-gather segments to the
// NIC — the zero-copy pipeline's replacement for the per-byte pack copy.
func (m *Model) DmaSetup(n int) simtime.Time {
	return simtime.Time(int64(n)*m.DmaSetupNs) * simtime.Nanosecond
}

// Fixed returns v nanoseconds as virtual time; used for the one-off charges
// (freeze, resume, context switch, ...).
func Fixed(v int64) simtime.Time { return simtime.Time(v) * simtime.Nanosecond }

// RoundTrip returns the end-to-end cost of one request/reply exchange
// carrying reqBytes out and replyBytes back: both messages' CPU
// overheads plus their wire occupancy. The negotiation planner uses it
// to price purchase plans — each distinct seller costs one round trip
// (paper step 2e sends one purchase message per owner).
func (m *Model) RoundTrip(reqBytes, replyBytes int) simtime.Time {
	return m.Send(reqBytes) + m.WireTime(reqBytes) + m.Recv(reqBytes) +
		m.Send(replyBytes) + m.WireTime(replyBytes) + m.Recv(replyBytes)
}
