package scenario

import "repro/internal/rng"

// Rand is the harness's deterministic splitmix64 stream (see
// internal/rng; the harness owns its generator instead of math/rand so
// scenario streams are reproducible bit-for-bit across Go releases —
// golden traces depend on it).
type Rand = rng.Rand

// NewRand seeds a generator under the repository-wide seed rule: seed 0
// is canonicalized to 1 (rng.CanonSeed), the same rule Spec.withDefaults
// applies, so a recorded trace header and a live run can never disagree
// about which stream seed 0 means.
func NewRand(seed uint64) *Rand {
	return rng.New(seed)
}
