package scenario

// Rand is a splitmix64 PRNG. The harness owns its own generator instead
// of math/rand so scenario streams are reproducible bit-for-bit across
// Go releases — golden traces depend on it.
type Rand struct {
	state uint64
}

// NewRand seeds a generator. Seed 0 is remapped so the stream is never
// degenerate.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("scenario: Intn on non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a value in [lo, hi].
func (r *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("scenario: empty range")
	}
	return lo + r.Intn(hi-lo+1)
}
