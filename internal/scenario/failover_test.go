package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/policy"
)

// TestFailoverTraceIdentity pins the failover acceptance property at the
// harness level: on a 16-node cluster losing one node mid-run, the
// canonical trace is byte-identical across worker counts 1, 2 and 4 and
// across all three negotiation arbiters — node death, lease-expiry
// detection, convoy evacuation and slot reclaim are all deterministic,
// and none of them consults the arbiter (the workload never negotiates).
func TestFailoverTraceIdentity(t *testing.T) {
	var want string
	for _, arb := range []string{"", "sharded", "optimistic"} {
		for _, workers := range []int{1, 2, 4} {
			name := fmt.Sprintf("arb=%q workers=%d", arb, workers)
			res, err := Run(Spec{Scenario: "failover", Nodes: 16, Arbiter: arb, Workers: workers})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := res.Verify(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := res.TraceString()
			// Compare the body below the header: the header names the
			// arbiter and would legitimately differ... except it does not —
			// Spec.Arbiter is not part of the recorded header line, so the
			// full trace must match.
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("%s: trace deviates from the first run:\ngot:\n%s\nwant:\n%s", name, got, want)
			}
		}
	}
	if !strings.Contains(want, "declared dead") {
		t.Fatalf("no node was declared dead at n=16:\n%s", want)
	}
}

// TestFailoverUnderAllPolicies runs the fail-stop workload under every
// placement policy and a spread of seeds: every spawned worker must
// finish despite the crash (zero lost TIDs), the dead node must end the
// run empty, and the survivors must keep the cluster-wide iso-address
// invariants (checked inside Run) after evacuating and reclaiming.
func TestFailoverUnderAllPolicies(t *testing.T) {
	for _, p := range policy.Names() {
		for _, seed := range []uint64{1, 2, 3} {
			name := fmt.Sprintf("%s/seed%d", p, seed)
			res, err := Run(Spec{Scenario: "failover", Policy: p, Seed: seed, Nodes: 8})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := res.Verify(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, left := range res.ThreadsLeft {
				if left != 0 {
					t.Fatalf("%s: %d thread(s) stranded on node %d", name, left, i)
				}
			}
			if res.Stats.Evacuations != 1 {
				t.Fatalf("%s: %d evacuations, want 1", name, res.Stats.Evacuations)
			}
		}
	}
}
