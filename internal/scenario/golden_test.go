package scenario

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/policy"
)

var update = flag.Bool("update", false, "rewrite the golden scenario traces")

// TestGoldenTraces pins the canonical event trace of every
// (generator, policy) pair: same seed + policy ⇒ byte-identical trace.
// Regenerate with `go test ./internal/scenario -run TestGoldenTraces -update`
// after an intentional behavior change, and review the diff like code.
func TestGoldenTraces(t *testing.T) {
	for _, g := range Generators() {
		for _, p := range policy.Names() {
			name := fmt.Sprintf("%s_%s", g.Name, p)
			t.Run(name, func(t *testing.T) {
				res, err := Run(Spec{Scenario: g.Name, Policy: p})
				if err != nil {
					t.Fatal(err)
				}
				got := res.TraceString()
				path := filepath.Join("testdata", name+".golden")
				if *update {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden trace (run with -update): %v", err)
				}
				if got != string(want) {
					t.Fatalf("trace deviates from %s.golden — placement behavior changed.\nGot:\n%s", name, got)
				}
			})
		}
	}
}

// TestGoldenTracesAtScale pins the negotiation-heavy workload at the
// larger cluster sizes (16 and 64 nodes) under every policy: the §4.4
// protocol must stay deterministic when the gather spans dozens of peers
// and initiators queue on the lock manager.
func TestGoldenTracesAtScale(t *testing.T) {
	for _, nodes := range []int{16, 64} {
		for _, p := range policy.Names() {
			name := fmt.Sprintf("negostress_%s_n%d", p, nodes)
			t.Run(name, func(t *testing.T) {
				res, err := Run(Spec{Scenario: "negostress", Policy: p, Nodes: nodes})
				if err != nil {
					t.Fatal(err)
				}
				if err := res.Verify(); err != nil {
					t.Fatal(err)
				}
				got := res.TraceString()
				path := filepath.Join("testdata", name+".golden")
				if *update {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden trace (run with -update): %v", err)
				}
				if got != string(want) {
					t.Fatalf("trace deviates from %s.golden — negotiation behavior changed at scale.\nGot:\n%s", name, got)
				}
			})
		}
	}
}

// TestGoldenTracesDeltaGather pins the negotiation-heavy workload under
// the incremental delta gather at 4, 16 and 64 nodes: the versioned
// bitmap exchange, cached views and give-back version bumps must stay
// byte-identically deterministic under load, at scale, under every
// policy. (The sequential-gather goldens above are untouched by the
// delta machinery — it is fully off under the paper-faithful default.)
func TestGoldenTracesDeltaGather(t *testing.T) {
	for _, nodes := range []int{4, 16, 64} {
		for _, p := range policy.Names() {
			name := fmt.Sprintf("negostress_%s_delta_n%d", p, nodes)
			t.Run(name, func(t *testing.T) {
				res, err := Run(Spec{Scenario: "negostress", Policy: p, Nodes: nodes, Gather: "delta"})
				if err != nil {
					t.Fatal(err)
				}
				if err := res.Verify(); err != nil {
					t.Fatal(err)
				}
				got := res.TraceString()
				path := filepath.Join("testdata", name+".golden")
				if *update {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden trace (run with -update): %v", err)
				}
				if got != string(want) {
					t.Fatalf("trace deviates from %s.golden — delta-gather behavior changed.\nGot:\n%s", name, got)
				}
			})
		}
	}
}

// TestGoldenTracesArbiters pins the contention-heavy workload under the
// decentralized negotiation arbiters at 16 nodes: the sharded lock
// order, the optimistic version declines and the deterministic retry
// backoff must all be byte-identically reproducible under every
// policy. (The global-arbiter goldens above are untouched by the
// arbiter machinery — it is fully off under the paper-faithful
// default.)
func TestGoldenTracesArbiters(t *testing.T) {
	for _, arb := range []string{"sharded", "optimistic"} {
		for _, p := range policy.Names() {
			name := fmt.Sprintf("contend_%s_%s_n16", p, arb)
			t.Run(name, func(t *testing.T) {
				res, err := Run(Spec{Scenario: "contend", Policy: p, Nodes: 16, Arbiter: arb})
				if err != nil {
					t.Fatal(err)
				}
				if err := res.Verify(); err != nil {
					t.Fatal(err)
				}
				got := res.TraceString()
				path := filepath.Join("testdata", name+".golden")
				if *update {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden trace (run with -update): %v", err)
				}
				if got != string(want) {
					t.Fatalf("trace deviates from %s.golden — arbiter behavior changed.\nGot:\n%s", name, got)
				}
			})
		}
	}
}

// TestTraceDeterminism runs the same spec twice in-process and demands
// byte-identical traces — policies with hidden nondeterminism (map
// iteration, real time, shared global state) fail here even before the
// golden files are consulted.
func TestTraceDeterminism(t *testing.T) {
	for _, g := range Generators() {
		for _, p := range policy.Names() {
			a, err := Run(Spec{Scenario: g.Name, Policy: p, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(Spec{Scenario: g.Name, Policy: p, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if a.TraceString() != b.TraceString() {
				t.Fatalf("%s/%s: two identical runs produced different traces", g.Name, p)
			}
		}
	}
}

// TestPoliciesActuallyDiffer guards against the engine silently ignoring
// the policy selection: on the burst scenario, the three policies must
// produce three distinct traces.
func TestPoliciesActuallyDiffer(t *testing.T) {
	seen := map[string]string{}
	for _, p := range policy.Names() {
		res, err := Run(Spec{Scenario: "burst", Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		// Compare decision lines only (the header names the policy and
		// would mask identical behavior).
		body := ""
		for _, l := range res.Trace[1:] {
			body += l + "\n"
		}
		for other, otherBody := range seen {
			if body == otherBody {
				t.Fatalf("policies %s and %s produced identical burst traces", p, other)
			}
		}
		seen[p] = body
	}
}
