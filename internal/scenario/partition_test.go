package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/policy"
)

// TestPartitionTraceIdentity pins the partial-failure acceptance
// property: on an 8-node cluster with one node partitioned away
// mid-run, the run completes with zero hung initiators (the engine
// drains), zero evacuations (the victim is alive — suspicion must not
// graduate to declaration), a positive RPC-timeout count (the deadline
// layer actually fired against the unreachable rank), and a canonical
// trace that is byte-identical across worker counts 1, 2 and 4 — per
// arbiter and per gather mode, since a negotiation runs mid-window and
// its wire pattern legitimately differs between those.
func TestPartitionTraceIdentity(t *testing.T) {
	for _, arb := range []string{"", "sharded", "optimistic"} {
		for _, gather := range []string{"", "delta"} {
			want := ""
			for _, workers := range []int{1, 2, 4} {
				name := fmt.Sprintf("arb=%q gather=%q workers=%d", arb, gather, workers)
				res, err := Run(Spec{Scenario: "partition", Nodes: 8, Arbiter: arb, Gather: gather, Workers: workers})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := res.Verify(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if res.Stats.Evacuations != 0 {
					t.Fatalf("%s: %d evacuations of a live partitioned node", name, res.Stats.Evacuations)
				}
				if res.Stats.RPCTimeouts == 0 {
					t.Fatalf("%s: no RPC timeouts — the deadline layer never fired", name)
				}
				if res.Stats.Suspicions != 1 || res.Stats.Rejoins != 1 {
					t.Fatalf("%s: suspicions=%d rejoins=%d, want 1 and 1",
						name, res.Stats.Suspicions, res.Stats.Rejoins)
				}
				got := res.TraceString()
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s: trace deviates from the workers=1 run:\ngot:\n%s\nwant:\n%s", name, got, want)
				}
			}
			if !strings.Contains(want, "[suspect]") || !strings.Contains(want, "[rejoin]") {
				t.Fatalf("arb=%q gather=%q: no suspicion lifecycle in the trace:\n%s", arb, gather, want)
			}
		}
	}
	// The batched and tree gathers are serial-kernel only; they must
	// still complete the partition workload without hanging.
	for _, gather := range []string{"batched", "tree"} {
		res, err := Run(Spec{Scenario: "partition", Nodes: 8, Gather: gather})
		if err != nil {
			t.Fatalf("gather=%s: %v", gather, err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("gather=%s: %v", gather, err)
		}
		if res.Stats.Evacuations != 0 {
			t.Fatalf("gather=%s: %d evacuations of a live partitioned node", gather, res.Stats.Evacuations)
		}
	}
}

// TestPartitionUnderAllPolicies runs the partition workload under every
// placement policy and a spread of seeds: every worker must finish
// despite the 6 ms isolation (store-and-forward healing loses nothing),
// no thread may end up stranded, and the live victim must never be
// evacuated — the heartbeat false-positive property at harness level.
func TestPartitionUnderAllPolicies(t *testing.T) {
	for _, p := range policy.Names() {
		for _, seed := range []uint64{1, 2, 3} {
			name := fmt.Sprintf("%s/seed%d", p, seed)
			res, err := Run(Spec{Scenario: "partition", Policy: p, Seed: seed, Nodes: 8})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := res.Verify(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, left := range res.ThreadsLeft {
				if left != 0 {
					t.Fatalf("%s: %d thread(s) stranded on node %d", name, left, i)
				}
			}
			if res.Stats.Evacuations != 0 {
				t.Fatalf("%s: %d evacuations, want 0 — the partitioned node is alive", name, res.Stats.Evacuations)
			}
			if res.Stats.Rejoins != 1 {
				t.Fatalf("%s: %d rejoins, want 1", name, res.Stats.Rejoins)
			}
		}
	}
}
