package serve

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/simtime"
)

// TraceVersion is the current trace-file format version. Decoders reject
// anything newer; bumping it is a deliberate format change. v2 added the
// ckpt line binding a trace to the pm2ckpt image it was recorded
// against; v1 files still decode, with no checkpoint binding.
const TraceVersion = 2

// Trace is a recorded serving workload: the harness parameters it was
// synthesized against plus the fully-expanded request stream. Replaying
// a Trace bypasses synthesis entirely — the stream on disk is the
// stream that runs — so a recorded run is byte-identical no matter what
// happens to the generator defaults later.
type Trace struct {
	Policy  string
	Nodes   int
	Seed    uint64
	Gather  string
	Arbiter string
	// CkptDigest binds the trace to a pm2ckpt checkpoint image: the
	// checkpoint's sealed FNV-1a digest, or 0 when the trace replays on
	// a freshly booted cluster (the v1 behavior). A replay that starts
	// from a checkpoint must present an image with this exact digest.
	CkptDigest uint64
	Requests   []Request
}

// Digest returns the FNV-1a hash of the canonical request stream (the
// exact bytes Encode writes for the req lines). Recorded in the file
// footer and re-checked on decode and after replay-side synthesis, so a
// corrupted or hand-edited stream is caught before it silently produces
// a different run.
func (t *Trace) Digest() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, r := range t.Requests {
		for _, b := range []byte(reqLine(r)) {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}

func reqLine(r Request) string {
	return fmt.Sprintf("req %d %s %s %d %d\n", int64(r.At), r.Cohort, r.Prog, r.Arg, r.Pref)
}

// Encode writes the trace in the versioned text format:
//
//	pm2serve-trace v2
//	policy <name>
//	nodes <n>
//	seed <decimal>
//	gather <mode>
//	arbiter <mode>
//	ckpt <fnv1a-hex>                           (0 = fresh-boot replay)
//	requests <count>
//	req <at-ns> <cohort> <prog> <arg> <pref>   (count lines)
//	digest <fnv1a-hex>
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "pm2serve-trace v%d\n", TraceVersion)
	fmt.Fprintf(bw, "policy %s\n", t.Policy)
	fmt.Fprintf(bw, "nodes %d\n", t.Nodes)
	fmt.Fprintf(bw, "seed %d\n", t.Seed)
	fmt.Fprintf(bw, "gather %s\n", t.Gather)
	fmt.Fprintf(bw, "arbiter %s\n", t.Arbiter)
	fmt.Fprintf(bw, "ckpt %016x\n", t.CkptDigest)
	fmt.Fprintf(bw, "requests %d\n", len(t.Requests))
	for _, r := range t.Requests {
		bw.WriteString(reqLine(r))
	}
	fmt.Fprintf(bw, "digest %016x\n", t.Digest())
	return bw.Flush()
}

// Decode parses a trace file, validating the version header, the
// request count, and the stream digest.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}

	hdr, err := line()
	if err != nil {
		return nil, fmt.Errorf("serve: reading trace header: %w", err)
	}
	var version int
	if _, err := fmt.Sscanf(hdr, "pm2serve-trace v%d", &version); err != nil {
		return nil, fmt.Errorf("serve: not a serve trace (header %q)", hdr)
	}
	if version > TraceVersion {
		return nil, fmt.Errorf("serve: trace version %d is newer than supported v%d", version, TraceVersion)
	}

	t := &Trace{}
	var count int
	field := func(key string) (string, error) {
		l, err := line()
		if err != nil {
			return "", fmt.Errorf("serve: reading %s: %w", key, err)
		}
		val, ok := strings.CutPrefix(l, key+" ")
		if !ok {
			return "", fmt.Errorf("serve: expected %q line, got %q", key, l)
		}
		return val, nil
	}
	if t.Policy, err = field("policy"); err != nil {
		return nil, err
	}
	v, err := field("nodes")
	if err != nil {
		return nil, err
	}
	if t.Nodes, err = strconv.Atoi(v); err != nil {
		return nil, fmt.Errorf("serve: bad nodes %q: %w", v, err)
	}
	if v, err = field("seed"); err != nil {
		return nil, err
	}
	if t.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
		return nil, fmt.Errorf("serve: bad seed %q: %w", v, err)
	}
	if t.Gather, err = field("gather"); err != nil {
		return nil, err
	}
	if t.Arbiter, err = field("arbiter"); err != nil {
		return nil, err
	}
	if version >= 2 {
		if v, err = field("ckpt"); err != nil {
			return nil, err
		}
		if t.CkptDigest, err = strconv.ParseUint(v, 16, 64); err != nil {
			return nil, fmt.Errorf("serve: bad ckpt digest %q: %w", v, err)
		}
	}
	if v, err = field("requests"); err != nil {
		return nil, err
	}
	if count, err = strconv.Atoi(v); err != nil || count < 0 {
		return nil, fmt.Errorf("serve: bad request count %q", v)
	}

	t.Requests = make([]Request, 0, count)
	for i := 0; i < count; i++ {
		l, err := line()
		if err != nil {
			return nil, fmt.Errorf("serve: reading request %d/%d: %w", i+1, count, err)
		}
		req, err := parseReq(l)
		if err != nil {
			return nil, fmt.Errorf("serve: request %d: %w", i+1, err)
		}
		t.Requests = append(t.Requests, req)
	}

	if v, err = field("digest"); err != nil {
		return nil, err
	}
	want, err := strconv.ParseUint(v, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("serve: bad digest %q: %w", v, err)
	}
	if got := t.Digest(); got != want {
		return nil, fmt.Errorf("serve: trace digest mismatch: file says %016x, stream hashes to %016x", want, got)
	}
	return t, nil
}

func parseReq(l string) (Request, error) {
	fields := strings.Fields(l)
	if len(fields) != 6 || fields[0] != "req" {
		return Request{}, fmt.Errorf("malformed line %q", l)
	}
	at, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || at < 0 {
		return Request{}, fmt.Errorf("bad arrival time %q", fields[1])
	}
	arg, err := strconv.ParseUint(fields[4], 10, 32)
	if err != nil {
		return Request{}, fmt.Errorf("bad arg %q", fields[4])
	}
	pref, err := strconv.Atoi(fields[5])
	if err != nil || pref < 0 {
		return Request{}, fmt.Errorf("bad pref %q", fields[5])
	}
	return Request{
		At:     simtime.Time(at),
		Cohort: fields[2],
		Prog:   fields[3],
		Arg:    uint32(arg),
		Pref:   pref,
	}, nil
}
