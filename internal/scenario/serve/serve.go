// Package serve synthesizes open-loop serving workloads for the
// scenario harness: the traffic a production PM2 would face, as opposed
// to the closed-loop micro-shapes of the other generators.
//
// A Spec names tenant cohorts; each cohort has an arrival process
// (open-loop Poisson, or a diurnal multi-period curve that cycles
// piecewise-constant rate weights), a heavy-tailed work-size
// distribution (lognormal or Pareto, with clamps), a program profile
// (compute-loop workers or deep-stack chain threads), and a placement
// preference (spread across the cluster, or homed on one node like a
// sticky tenant). Synthesize expands the Spec into a deterministic
// request stream — every draw comes from per-cohort splitmix64
// substreams (internal/rng), so the same (Spec, nodes) pair always
// yields the identical stream, which is what the trace-file format
// (trace.go) records and replays byte-identically.
//
// The scenario harness registers the "serve" generator on top of this
// package and threads per-request SLO accounting (time-to-placement and
// end-to-end latency per cohort) through the run; internal/bench sweeps
// Spec.RateScale to locate the cluster's throughput knee.
package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// Arrival process names.
const (
	ArrivalPoisson = "poisson"
	ArrivalDiurnal = "diurnal"
)

// Work-size distribution names.
const (
	WorkLogNormal = "lognormal"
	WorkPareto    = "pareto"
	WorkFixed     = "fixed"
)

// Request is one open-loop arrival: at virtual time At, a thread
// running Prog with argument Arg is spawned preferring node Pref, on
// behalf of cohort Cohort.
type Request struct {
	At     simtime.Time
	Cohort string
	Prog   string
	Arg    uint32
	Pref   int
}

// Period is one segment of a diurnal arrival curve: for DurationMicros
// of virtual time the cohort's base rate is multiplied by Weight. The
// period list cycles until the horizon.
type Period struct {
	Weight         float64
	DurationMicros float64
}

// Cohort is one named tenant profile.
type Cohort struct {
	// Name identifies the cohort in SLO accounting and trace files. It
	// must be a non-empty token without whitespace.
	Name string
	// Arrival selects the arrival process (default poisson).
	Arrival string
	// RatePerMs is the base arrival rate in requests per virtual
	// millisecond (scaled by Spec.RateScale, and per-period by Weight
	// under the diurnal process).
	RatePerMs float64
	// Periods is the diurnal curve (required iff Arrival == diurnal).
	Periods []Period
	// Work selects the work-size distribution (default lognormal).
	Work string
	// WorkScale is the distribution scale: the median for lognormal,
	// the minimum for Pareto, the exact value for fixed.
	WorkScale float64
	// WorkSigma is the lognormal shape (σ of the underlying normal).
	WorkSigma float64
	// WorkAlpha is the Pareto tail index (smaller = heavier tail).
	WorkAlpha float64
	// WorkMin/WorkMax clamp every draw (0 = unclamped).
	WorkMin, WorkMax uint32
	// Prog is the thread profile: "worker" (compute loop of Arg
	// iterations with private isomalloc state; the default) or "chain"
	// (recurse to depth Arg and migrate at the deepest frame — the
	// paper's deep-stack stress as a serving tenant).
	Prog string
	// Spread picks a uniform-random preferred node per request; when
	// false every request prefers Home (a sticky tenant hammering one
	// node).
	Spread bool
	// Home is the preferred node of a non-spread cohort.
	Home int
}

// Spec is one serving workload: named cohorts arriving open-loop over a
// fixed horizon.
type Spec struct {
	// Seed feeds the per-cohort splitmix64 substreams. Stored
	// canonically (rng.CanonSeed): seed 0 means seed 1, everywhere.
	Seed uint64
	// HorizonMicros is the arrival window in virtual microseconds;
	// arrivals stop at the horizon, the run drains afterwards.
	HorizonMicros float64
	// RateScale multiplies every cohort's rate — the saturation sweep's
	// knob (default 1).
	RateScale float64
	// Cohorts lists the tenant profiles.
	Cohorts []Cohort
}

// WithDefaults fills zero fields with their documented defaults and
// canonicalizes the seed.
func (s Spec) WithDefaults() Spec {
	s.Seed = rng.CanonSeed(s.Seed)
	if s.HorizonMicros <= 0 {
		s.HorizonMicros = 10_000
	}
	if s.RateScale <= 0 {
		s.RateScale = 1
	}
	out := make([]Cohort, len(s.Cohorts))
	for i, c := range s.Cohorts {
		if c.Arrival == "" {
			c.Arrival = ArrivalPoisson
		}
		if c.Work == "" {
			c.Work = WorkLogNormal
		}
		if c.Prog == "" {
			c.Prog = "worker"
		}
		out[i] = c
	}
	s.Cohorts = out
	return s
}

// Validate rejects malformed specs with a descriptive error.
func (s Spec) Validate() error {
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("serve: spec has no cohorts")
	}
	seen := map[string]bool{}
	for _, c := range s.Cohorts {
		if c.Name == "" || hasSpace(c.Name) {
			return fmt.Errorf("serve: cohort name %q must be a non-empty token", c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("serve: duplicate cohort %q", c.Name)
		}
		seen[c.Name] = true
		if c.RatePerMs <= 0 {
			return fmt.Errorf("serve: cohort %s: rate %v must be positive", c.Name, c.RatePerMs)
		}
		switch c.Arrival {
		case ArrivalPoisson:
		case ArrivalDiurnal:
			if len(c.Periods) == 0 {
				return fmt.Errorf("serve: cohort %s: diurnal arrivals need periods", c.Name)
			}
			for _, p := range c.Periods {
				if p.Weight < 0 || p.DurationMicros <= 0 {
					return fmt.Errorf("serve: cohort %s: bad period %+v", c.Name, p)
				}
			}
		default:
			return fmt.Errorf("serve: cohort %s: unknown arrival process %q", c.Name, c.Arrival)
		}
		switch c.Work {
		case WorkLogNormal, WorkPareto, WorkFixed:
		default:
			return fmt.Errorf("serve: cohort %s: unknown work distribution %q", c.Name, c.Work)
		}
		if c.WorkScale <= 0 {
			return fmt.Errorf("serve: cohort %s: work scale %v must be positive", c.Name, c.WorkScale)
		}
		if c.Work == WorkPareto && c.WorkAlpha <= 0 {
			return fmt.Errorf("serve: cohort %s: pareto needs a positive alpha", c.Name)
		}
		switch c.Prog {
		case "worker", "chain":
		default:
			return fmt.Errorf("serve: cohort %s: unknown program profile %q", c.Name, c.Prog)
		}
	}
	return nil
}

func hasSpace(s string) bool {
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			return true
		}
	}
	return false
}

// DeriveSpec is the registered serve generator's default workload: three
// tenant cohorts over a 10 ms horizon —
//
//   - api: open-loop Poisson, moderate lognormal works, spread prefs
//     (the steady interactive tenant);
//   - batch: diurnal two-period curve (quiet quarter-rate, then a
//     7/4-rate burst), Pareto heavy-tail works, homed on node 0 (the
//     sticky bulk tenant that stresses balancing);
//   - deep: sparse Poisson chain threads with Pareto stack depths (the
//     paper's deep-stack migration stress as a serving tenant).
//
// Deterministic in (seed, nodes); the scenario goldens pin its stream.
func DeriveSpec(seed uint64, nodes int) Spec {
	_ = nodes // profiles are cluster-size independent; prefs are drawn at synthesis
	return Spec{
		Seed:          rng.CanonSeed(seed),
		HorizonMicros: 10_000,
		RateScale:     1,
		Cohorts: []Cohort{
			{
				Name: "api", Arrival: ArrivalPoisson, RatePerMs: 1.2,
				Work: WorkLogNormal, WorkScale: 6000, WorkSigma: 0.6,
				WorkMin: 2000, WorkMax: 24000, Prog: "worker", Spread: true,
			},
			{
				Name: "batch", Arrival: ArrivalDiurnal, RatePerMs: 0.8,
				Periods: []Period{{Weight: 0.25, DurationMicros: 2500}, {Weight: 1.75, DurationMicros: 2500}},
				Work:    WorkPareto, WorkScale: 8000, WorkAlpha: 1.5,
				WorkMin: 8000, WorkMax: 40000, Prog: "worker", Home: 0,
			},
			{
				Name: "deep", Arrival: ArrivalPoisson, RatePerMs: 0.35,
				Work: WorkPareto, WorkScale: 10, WorkAlpha: 1.2,
				WorkMin: 8, WorkMax: 28, Prog: "chain", Spread: true,
			},
		},
	}
}

// Synthesize expands the spec into its deterministic request stream for
// a cluster of the given size: per-cohort substreams are drawn
// independently (seeded from Spec.Seed and the cohort name), then
// merged into one stream ordered by arrival time, with cohort order as
// the tiebreak. Arrival times are quantized to whole microseconds so
// the stream is robust to sub-µs float noise.
func (s Spec) Synthesize(nodes int) ([]Request, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("serve: synthesize needs a positive node count")
	}
	var all []Request
	for _, c := range s.Cohorts {
		r := rng.New(s.Seed ^ cohortSalt(c.Name))
		for _, atUs := range arrivals(r, c, s) {
			at := simtime.Time(atUs) * simtime.Microsecond
			arg := drawWork(r, c)
			pref := c.Home % nodes
			if c.Spread {
				pref = r.Intn(nodes)
			}
			all = append(all, Request{At: at, Cohort: c.Name, Prog: c.Prog, Arg: arg, Pref: pref})
		}
	}
	// Stable merge: arrival time first, then cohort order as listed in
	// the spec (SliceStable keeps per-cohort draw order within ties).
	order := map[string]int{}
	for i, c := range s.Cohorts {
		order[c.Name] = i
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return order[all[i].Cohort] < order[all[j].Cohort]
	})
	return all, nil
}

// cohortSalt folds a cohort name into a 64-bit FNV-1a salt so each
// cohort draws an independent substream of the spec seed.
func cohortSalt(name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// arrivals generates the cohort's arrival times in whole microseconds.
func arrivals(r *rng.Rand, c Cohort, s Spec) []int64 {
	ratePerUs := c.RatePerMs * s.RateScale / 1000
	var out []int64
	switch c.Arrival {
	case ArrivalPoisson:
		t := 0.0
		for {
			t += r.Exp(ratePerUs)
			if t >= s.HorizonMicros {
				return out
			}
			out = append(out, int64(math.Floor(t)))
		}
	case ArrivalDiurnal:
		// Piecewise-constant-rate Poisson by inversion: draw a
		// unit-exponential target and advance time, consuming
		// rate×duration area period by period until the target is met.
		// Correct across period boundaries (no residual is discarded).
		t := 0.0
		for {
			need := r.Exp(1)
			for {
				if t >= s.HorizonMicros {
					return out
				}
				w := periodAt(c.Periods, t)
				end := periodEnd(c.Periods, t)
				if end > s.HorizonMicros {
					end = s.HorizonMicros
				}
				rate := ratePerUs * w
				if rate <= 0 {
					t = end
					continue
				}
				span := end - t
				area := rate * span
				if need <= area {
					t += need / rate
					break
				}
				need -= area
				t = end
			}
			if t >= s.HorizonMicros {
				return out
			}
			out = append(out, int64(math.Floor(t)))
		}
	}
	return out
}

// periodAt returns the weight of the period covering time t (the
// period list cycles).
func periodAt(ps []Period, t float64) float64 {
	var cycle float64
	for _, p := range ps {
		cycle += p.DurationMicros
	}
	t = math.Mod(t, cycle)
	for _, p := range ps {
		if t < p.DurationMicros {
			return p.Weight
		}
		t -= p.DurationMicros
	}
	return ps[len(ps)-1].Weight
}

// periodEnd returns the absolute end time of the period covering t.
func periodEnd(ps []Period, t float64) float64 {
	var cycle float64
	for _, p := range ps {
		cycle += p.DurationMicros
	}
	base := math.Floor(t/cycle) * cycle
	off := t - base
	var acc float64
	for _, p := range ps {
		acc += p.DurationMicros
		if off < acc {
			return base + acc
		}
	}
	return base + cycle
}

// drawWork draws one work size (or chain depth) from the cohort's
// distribution, clamped to [WorkMin, WorkMax].
func drawWork(r *rng.Rand, c Cohort) uint32 {
	var v float64
	switch c.Work {
	case WorkLogNormal:
		v = r.LogNormal(math.Log(c.WorkScale), c.WorkSigma)
	case WorkPareto:
		v = r.Pareto(c.WorkScale, c.WorkAlpha)
	case WorkFixed:
		v = c.WorkScale
	}
	w := int64(math.Floor(v))
	if c.WorkMin > 0 && w < int64(c.WorkMin) {
		w = int64(c.WorkMin)
	}
	if c.WorkMax > 0 && w > int64(c.WorkMax) {
		w = int64(c.WorkMax)
	}
	if w < 1 {
		w = 1
	}
	return uint32(w)
}
