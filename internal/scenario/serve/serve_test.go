package serve

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestSynthesizeDeterministic pins the tentpole property: the same
// (Spec, nodes) pair always expands to the identical request stream.
// The issue's acceptance criteria hang off this — recorded traces and
// golden runs are only stable if synthesis is.
func TestSynthesizeDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 42} {
		for _, nodes := range []int{2, 4, 16} {
			a, err := DeriveSpec(seed, nodes).Synthesize(nodes)
			if err != nil {
				t.Fatalf("seed=%d nodes=%d: %v", seed, nodes, err)
			}
			b, err := DeriveSpec(seed, nodes).Synthesize(nodes)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed=%d nodes=%d: two syntheses differ", seed, nodes)
			}
			if len(a) == 0 {
				t.Fatalf("seed=%d nodes=%d: empty stream", seed, nodes)
			}
		}
	}
	// Seed 0 and seed 1 are the same stream (one canonical seed rule).
	z, _ := DeriveSpec(0, 4).Synthesize(4)
	o, _ := DeriveSpec(1, 4).Synthesize(4)
	if !reflect.DeepEqual(z, o) {
		t.Fatal("seed 0 and seed 1 produced different streams — CanonSeed rule broken")
	}
	// Different seeds diverge.
	x, _ := DeriveSpec(7, 4).Synthesize(4)
	if reflect.DeepEqual(o, x) {
		t.Fatal("seeds 1 and 7 produced identical streams")
	}
}

// TestSynthesizeStreamShape sanity-checks the expanded stream: sorted
// arrivals inside the horizon, clamped work sizes, prefs in range, and
// every cohort present.
func TestSynthesizeStreamShape(t *testing.T) {
	spec := DeriveSpec(3, 8)
	reqs, err := spec.Synthesize(8)
	if err != nil {
		t.Fatal(err)
	}
	clamp := map[string][2]uint32{}
	for _, c := range spec.Cohorts {
		clamp[c.Name] = [2]uint32{c.WorkMin, c.WorkMax}
	}
	seen := map[string]int{}
	horizon := int64(spec.HorizonMicros) * 1000 // µs → ns
	for i, r := range reqs {
		if i > 0 && r.At < reqs[i-1].At {
			t.Fatalf("stream not sorted at %d: %v after %v", i, r.At, reqs[i-1].At)
		}
		if int64(r.At) < 0 || int64(r.At) >= horizon {
			t.Fatalf("request %d arrives at %v, outside [0, %d)", i, r.At, horizon)
		}
		if r.Pref < 0 || r.Pref >= 8 {
			t.Fatalf("request %d prefers node %d of 8", i, r.Pref)
		}
		cl := clamp[r.Cohort]
		if r.Arg < cl[0] || r.Arg > cl[1] {
			t.Fatalf("request %d (%s): work %d outside clamp [%d, %d]", i, r.Cohort, r.Arg, cl[0], cl[1])
		}
		seen[r.Cohort]++
	}
	for _, c := range spec.Cohorts {
		if seen[c.Name] == 0 {
			t.Fatalf("cohort %s produced no arrivals over the horizon", c.Name)
		}
	}
	// The sticky tenant never leaves home.
	for _, r := range reqs {
		if r.Cohort == "batch" && r.Pref != 0 {
			t.Fatalf("homed cohort batch preferred node %d", r.Pref)
		}
	}
}

// TestDiurnalRateModulation checks the piecewise arrival curve actually
// modulates: with a quiet quarter-rate first half and a 7x-heavier
// second half, the second half must carry clearly more arrivals.
func TestDiurnalRateModulation(t *testing.T) {
	spec := Spec{
		Seed:          9,
		HorizonMicros: 40_000,
		Cohorts: []Cohort{{
			Name: "d", Arrival: ArrivalDiurnal, RatePerMs: 2,
			Periods:   []Period{{Weight: 0.25, DurationMicros: 20_000}, {Weight: 1.75, DurationMicros: 20_000}},
			Work:      WorkFixed,
			WorkScale: 100,
		}},
	}
	reqs, err := spec.Synthesize(4)
	if err != nil {
		t.Fatal(err)
	}
	var quiet, busy int
	for _, r := range reqs {
		if int64(r.At) < 20_000*1000 {
			quiet++
		} else {
			busy++
		}
	}
	if quiet == 0 || busy == 0 {
		t.Fatalf("degenerate split quiet=%d busy=%d", quiet, busy)
	}
	// Expected ratio 7:1; demand at least 3:1 to stay robust to noise.
	if busy < 3*quiet {
		t.Fatalf("diurnal curve not modulating: quiet=%d busy=%d (want busy ≥ 3×quiet)", quiet, busy)
	}
}

// TestTraceRoundTrip is the record→replay property test: for a spread
// of seeds and cluster sizes, Encode→Decode must reproduce the exact
// Trace, and re-encoding the decoded trace must be byte-identical.
func TestTraceRoundTrip(t *testing.T) {
	for _, seed := range []uint64{1, 5, 99, 1 << 40} {
		for _, nodes := range []int{2, 16, 64} {
			reqs, err := DeriveSpec(seed, nodes).Synthesize(nodes)
			if err != nil {
				t.Fatal(err)
			}
			tr := &Trace{
				Policy: "work-stealing", Nodes: nodes, Seed: seed,
				Gather: "delta", Arbiter: "chain", Requests: reqs,
			}
			var buf bytes.Buffer
			if err := tr.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			first := buf.String()
			got, err := Decode(strings.NewReader(first))
			if err != nil {
				t.Fatalf("seed=%d nodes=%d: decode: %v", seed, nodes, err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Fatalf("seed=%d nodes=%d: decoded trace differs from original", seed, nodes)
			}
			var buf2 bytes.Buffer
			if err := got.Encode(&buf2); err != nil {
				t.Fatal(err)
			}
			if buf2.String() != first {
				t.Fatalf("seed=%d nodes=%d: re-encode not byte-identical", seed, nodes)
			}
		}
	}
}

// TestDecodeRejectsCorruption pins the digest and format guards.
func TestDecodeRejectsCorruption(t *testing.T) {
	reqs, err := DeriveSpec(1, 4).Synthesize(4)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Policy: "negotiation", Nodes: 4, Seed: 1, Gather: "delta", Arbiter: "chain", Requests: reqs}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	if _, err := Decode(strings.NewReader(good)); err != nil {
		t.Fatalf("pristine trace rejected: %v", err)
	}
	// Tamper with one request's work size: digest must catch it.
	tampered := strings.Replace(good, fmt.Sprintf("req %d", int64(reqs[0].At)), fmt.Sprintf("req %d", int64(reqs[0].At)+1), 1)
	if _, err := Decode(strings.NewReader(tampered)); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("tampered stream: want digest mismatch, got %v", err)
	}
	// Future version must be refused.
	future := strings.Replace(good, fmt.Sprintf("pm2serve-trace v%d", TraceVersion), "pm2serve-trace v99", 1)
	if _, err := Decode(strings.NewReader(future)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: want version error, got %v", err)
	}
	// A v1 file — no ckpt line — must still decode, with no checkpoint binding.
	v1 := strings.Replace(good, fmt.Sprintf("pm2serve-trace v%d", TraceVersion), "pm2serve-trace v1", 1)
	v1 = strings.Replace(v1, "ckpt 0000000000000000\n", "", 1)
	old, err := Decode(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 trace rejected: %v", err)
	}
	if old.CkptDigest != 0 {
		t.Fatalf("v1 trace decoded with ckpt digest %016x, want 0", old.CkptDigest)
	}
	// Truncation must be refused.
	if _, err := Decode(strings.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
	// Garbage header.
	if _, err := Decode(strings.NewReader("hello world\n")); err == nil {
		t.Fatal("garbage header accepted")
	}
}

// TestValidate covers the spec guards.
func TestValidate(t *testing.T) {
	base := func() Spec { return DeriveSpec(1, 4) }
	if err := base().WithDefaults().Validate(); err != nil {
		t.Fatalf("derived spec invalid: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }, "no cohorts"},
		{"empty name", func(s *Spec) { s.Cohorts[0].Name = "" }, "non-empty token"},
		{"space in name", func(s *Spec) { s.Cohorts[0].Name = "a b" }, "non-empty token"},
		{"duplicate", func(s *Spec) { s.Cohorts[1].Name = s.Cohorts[0].Name }, "duplicate"},
		{"zero rate", func(s *Spec) { s.Cohorts[0].RatePerMs = 0 }, "rate"},
		{"bad arrival", func(s *Spec) { s.Cohorts[0].Arrival = "bursty" }, "arrival"},
		{"diurnal no periods", func(s *Spec) { s.Cohorts[1].Periods = nil }, "periods"},
		{"bad work", func(s *Spec) { s.Cohorts[0].Work = "uniform" }, "work distribution"},
		{"zero scale", func(s *Spec) { s.Cohorts[0].WorkScale = 0 }, "scale"},
		{"pareto no alpha", func(s *Spec) { s.Cohorts[1].WorkAlpha = 0 }, "alpha"},
		{"bad prog", func(s *Spec) { s.Cohorts[0].Prog = "webserver" }, "program profile"},
	}
	for _, tc := range bad {
		s := base()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}
