package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestWorkersIdentity pins the tentpole's end-to-end guarantee at the
// harness level: Workers=1 and Workers=N produce byte-identical traces
// and identical Stats on the contend, negostress and serve workloads —
// and both match the committed serial goldens, so enabling the parallel
// executor can never move a golden.
func TestWorkersIdentity(t *testing.T) {
	cases := []struct {
		spec   Spec
		golden string
	}{
		{Spec{Scenario: "contend", Policy: "negotiation", Nodes: 16, Arbiter: "sharded"}, "contend_negotiation_sharded_n16"},
		{Spec{Scenario: "negostress", Policy: "negotiation", Nodes: 16}, "negostress_negotiation_n16"},
		{Spec{Scenario: "serve", Policy: "negotiation"}, "serve_negotiation"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_%s", tc.spec.Scenario, tc.spec.Policy), func(t *testing.T) {
			serialSpec := tc.spec
			serialSpec.Workers = 1
			serial, err := Run(serialSpec)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				parSpec := tc.spec
				parSpec.Workers = workers
				par, err := Run(parSpec)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := par.TraceString(), serial.TraceString(); got != want {
					t.Fatalf("workers=%d trace deviates from serial run:\ngot:\n%s\nwant:\n%s", workers, got, want)
				}
				if !reflect.DeepEqual(par.Stats, serial.Stats) {
					t.Fatalf("workers=%d stats deviate from serial run:\ngot:  %+v\nwant: %+v", workers, par.Stats, serial.Stats)
				}
				if par.Steps != serial.Steps || par.VirtualMicros != serial.VirtualMicros {
					t.Fatalf("workers=%d steps/clock deviate: %d/%.3f vs %d/%.3f",
						workers, par.Steps, par.VirtualMicros, serial.Steps, serial.VirtualMicros)
				}
			}
			// The serial run must itself match the committed golden, so
			// the identity above transitively pins the parallel runs to
			// the pre-existing golden bytes.
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden+".golden"))
			if err != nil {
				t.Fatalf("reading golden: %v", err)
			}
			if serial.TraceString() != string(want) {
				t.Fatalf("serial run deviates from %s.golden", tc.golden)
			}
		})
	}
}

// TestWorkersRejectBatchedGather pins the documented incompatibility:
// the batched/tree gathers read peer hints cross-lane, so the harness
// must refuse to combine them with a parallel kernel instead of racing.
func TestWorkersRejectBatchedGather(t *testing.T) {
	for _, gather := range []string{"batched", "tree"} {
		_, err := Run(Spec{Scenario: "negostress", Workers: 4, Gather: gather})
		if err == nil {
			t.Fatalf("workers=4 gather=%s: expected a validation error", gather)
		}
	}
}
