package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestWorkersIdentity pins the tentpole's end-to-end guarantee at the
// harness level: Workers=1 and Workers=N produce byte-identical traces
// and identical Stats on the contend, negostress and serve workloads —
// and both match the committed serial goldens, so enabling the parallel
// executor can never move a golden.
func TestWorkersIdentity(t *testing.T) {
	cases := []struct {
		spec   Spec
		golden string
	}{
		{Spec{Scenario: "contend", Policy: "negotiation", Nodes: 16, Arbiter: "sharded"}, "contend_negotiation_sharded_n16"},
		{Spec{Scenario: "negostress", Policy: "negotiation", Nodes: 16}, "negostress_negotiation_n16"},
		{Spec{Scenario: "serve", Policy: "negotiation"}, "serve_negotiation"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s_%s", tc.spec.Scenario, tc.spec.Policy), func(t *testing.T) {
			serialSpec := tc.spec
			serialSpec.Workers = 1
			serial, err := Run(serialSpec)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				parSpec := tc.spec
				parSpec.Workers = workers
				par, err := Run(parSpec)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := par.TraceString(), serial.TraceString(); got != want {
					t.Fatalf("workers=%d trace deviates from serial run:\ngot:\n%s\nwant:\n%s", workers, got, want)
				}
				if !reflect.DeepEqual(par.Stats, serial.Stats) {
					t.Fatalf("workers=%d stats deviate from serial run:\ngot:  %+v\nwant: %+v", workers, par.Stats, serial.Stats)
				}
				if par.Steps != serial.Steps || par.VirtualMicros != serial.VirtualMicros {
					t.Fatalf("workers=%d steps/clock deviate: %d/%.3f vs %d/%.3f",
						workers, par.Steps, par.VirtualMicros, serial.Steps, serial.VirtualMicros)
				}
			}
			// The serial run must itself match the committed golden, so
			// the identity above transitively pins the parallel runs to
			// the pre-existing golden bytes.
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden+".golden"))
			if err != nil {
				t.Fatalf("reading golden: %v", err)
			}
			if serial.TraceString() != string(want) {
				t.Fatalf("serial run deviates from %s.golden", tc.golden)
			}
		})
	}
}

// TestWorkersGatherMatrix extends the identity guarantee to the full
// gather matrix at the harness level: since the lane-affine hint
// protocol, every gather strategy composes with the parallel kernel, so
// negostress — the workload built to hammer §4.4 negotiations — must
// produce byte-identical traces and identical stats at workers 1, 2 and
// 4 under every gather and a representative arbiter spread. The new
// combinations have no committed goldens; self-consistency against the
// in-process serial run is the pinned property (the golden-backed
// combinations are covered by TestWorkersIdentity above).
func TestWorkersGatherMatrix(t *testing.T) {
	cases := []struct{ gather, arbiter string }{
		{"sequential", "global"},
		{"batched", "global"},
		{"batched", "sharded"},
		{"tree", "global"},
		{"tree", "optimistic"},
		{"delta", "optimistic"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.gather+"_"+tc.arbiter, func(t *testing.T) {
			t.Parallel()
			spec := Spec{Scenario: "negostress", Policy: "negotiation", Nodes: 16,
				Gather: tc.gather, Arbiter: tc.arbiter}
			serialSpec := spec
			serialSpec.Workers = 1
			serial, err := Run(serialSpec)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Stats.Negotiations == 0 {
				t.Fatal("negostress performed no negotiations — not exercising the gather")
			}
			for _, workers := range []int{2, 4} {
				parSpec := spec
				parSpec.Workers = workers
				par, err := Run(parSpec)
				if err != nil {
					t.Fatal(err)
				}
				if par.TraceString() != serial.TraceString() {
					t.Fatalf("workers=%d trace deviates from serial run", workers)
				}
				if !reflect.DeepEqual(par.Stats, serial.Stats) {
					t.Fatalf("workers=%d stats deviate:\ngot:  %+v\nwant: %+v", workers, par.Stats, serial.Stats)
				}
				if par.Steps != serial.Steps || par.VirtualMicros != serial.VirtualMicros {
					t.Fatalf("workers=%d steps/clock deviate: %d/%.3f vs %d/%.3f",
						workers, par.Steps, par.VirtualMicros, serial.Steps, serial.VirtualMicros)
				}
			}
		})
	}
}

// TestWorkersInvalidSpec pins that a structurally invalid configuration
// surfaces as an error from the harness (via pm2.Config.Validate), not a
// panic — the batched/tree gathers are no longer rejected, so a negative
// worker count is the representative invalid input.
func TestWorkersInvalidSpec(t *testing.T) {
	if _, err := Run(Spec{Scenario: "negostress", Workers: -2}); err == nil {
		t.Fatal("workers=-2: expected a validation error")
	}
}
