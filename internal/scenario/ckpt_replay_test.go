package scenario

import (
	"testing"

	ipm2 "repro/internal/pm2"
	"repro/internal/scenario/serve"
	"repro/internal/simtime"
)

// captureCheckpoint stages a 4-node cluster over the harness image,
// runs it into the middle of a migration-bearing workload and captures
// it — the fixture every replay-from-checkpoint test continues.
func captureCheckpoint(t *testing.T) *ipm2.Checkpoint {
	t.Helper()
	cl := ipm2.New(ipm2.Config{Nodes: 4}, Image())
	cl.Spawn(0, "p4", 1000)
	cl.RunFor(500 * simtime.Microsecond)
	ck, err := cl.Checkpoint()
	if err != nil {
		t.Fatalf("capturing fixture checkpoint: %v", err)
	}
	return ck
}

// TestReplayFromCheckpoint pins the checkpoint-bound replay path: a
// serve request stream continued from a capture verifies, and two
// replays of the same (stream, checkpoint) pair — and the same pair
// under the parallel kernel — produce byte-identical canonical traces.
func TestReplayFromCheckpoint(t *testing.T) {
	ck := captureCheckpoint(t)
	sp := serve.DeriveSpec(7, 4)
	reqs, err := sp.Synthesize(4)
	if err != nil {
		t.Fatalf("synthesizing request stream: %v", err)
	}
	spec := Spec{Nodes: 4, Seed: sp.Seed}

	first, err := ReplayFromCheckpoint(spec, reqs, ck)
	if err != nil {
		t.Fatalf("replay from checkpoint: %v", err)
	}
	if err := first.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		s := spec
		s.Workers = workers
		again, err := ReplayFromCheckpoint(s, reqs, captureCheckpoint(t))
		if err != nil {
			t.Fatalf("workers=%d: replay from checkpoint: %v", workers, err)
		}
		if again.TraceString() != first.TraceString() {
			t.Fatalf("workers=%d: replay trace diverged from first run", workers)
		}
	}
}

// TestReplayFromCheckpointRejectsMismatch pins the structural guard: a
// spec whose node count disagrees with the checkpoint is refused.
func TestReplayFromCheckpointRejectsMismatch(t *testing.T) {
	ck := captureCheckpoint(t)
	sp := serve.DeriveSpec(7, 8)
	reqs, err := sp.Synthesize(8)
	if err != nil {
		t.Fatalf("synthesizing request stream: %v", err)
	}
	if _, err := ReplayFromCheckpoint(Spec{Nodes: 8, Seed: sp.Seed}, reqs, ck); err == nil {
		t.Fatal("8-node replay of a 4-node checkpoint accepted")
	}
}
