package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario/serve"
)

// TestServeReplayByteIdentical is the record→replay acceptance test at
// the harness level: synthesizing the serve stream and replaying it
// through a round-tripped trace file must reproduce the live run's
// canonical trace byte for byte.
func TestServeReplayByteIdentical(t *testing.T) {
	for _, p := range []string{"negotiation", "round-robin", "work-stealing"} {
		spec := Spec{Scenario: "serve", Policy: p, Nodes: 4, Seed: 11}
		live, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: live run: %v", p, err)
		}
		reqs, err := serve.DeriveSpec(spec.Seed, spec.Nodes).Synthesize(spec.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip the stream through the on-disk format, as the
		// pm2trace record/replay commands do.
		tr := &serve.Trace{Policy: p, Nodes: spec.Nodes, Seed: spec.Seed,
			Gather: live.Spec.Gather, Arbiter: live.Spec.Arbiter, Requests: reqs}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		dec, err := serve.Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := Replay(Spec{Policy: dec.Policy, Nodes: dec.Nodes, Seed: dec.Seed,
			Gather: dec.Gather, Arbiter: dec.Arbiter}, dec.Requests)
		if err != nil {
			t.Fatalf("%s: replay: %v", p, err)
		}
		if live.TraceString() != replayed.TraceString() {
			t.Fatalf("%s: replayed trace differs from live trace", p)
		}
		if err := replayed.Verify(); err != nil {
			t.Fatalf("%s: replayed run failed verification: %v", p, err)
		}
	}
}

// TestServeCohortSLOs checks the per-cohort accounting a serve run
// surfaces: all three tenants present, every request completed, and
// non-degenerate latency percentiles with placement ≤ end-to-end.
func TestServeCohortSLOs(t *testing.T) {
	res, err := Run(Spec{Scenario: "serve", Policy: "negotiation"})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	slos := res.CohortSLOs()
	if len(slos) != 3 {
		t.Fatalf("got %d cohorts, want 3: %+v", len(slos), slos)
	}
	want := []string{"api", "batch", "deep"}
	for i, s := range slos {
		if s.Cohort != want[i] {
			t.Fatalf("cohort %d = %s, want %s (sorted)", i, s.Cohort, want[i])
		}
		if s.Requests == 0 || s.Completed != s.Requests {
			t.Fatalf("%s: %d/%d completed — a drained run must complete everything",
				s.Cohort, s.Completed, s.Requests)
		}
		if s.EndToEnd.P50 <= 0 || s.EndToEnd.P99 < s.EndToEnd.P50 {
			t.Fatalf("%s: degenerate e2e percentiles %+v", s.Cohort, s.EndToEnd)
		}
		if s.Placement.P99 > s.EndToEnd.P99 {
			t.Fatalf("%s: placement p99 %v exceeds end-to-end p99 %v",
				s.Cohort, s.Placement.P99, s.EndToEnd.P99)
		}
	}
}

// TestSaturatedPartialResult pins the fixed step-budget contract: an
// exhausted budget with AllowSaturated yields a partial Result flagged
// Saturated (the saturation sweep's past-knee measurement), while the
// default strict mode still errors — closed-loop scenarios must drain.
func TestSaturatedPartialResult(t *testing.T) {
	// A budget far too small for the serve workload.
	spec := Spec{Scenario: "serve", Policy: "negotiation", MaxSteps: 200, AllowSaturated: true}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("AllowSaturated run errored instead of returning a partial result: %v", err)
	}
	if !res.Saturated {
		t.Fatal("undrained run not flagged Saturated")
	}
	left := 0
	for _, n := range res.ThreadsLeft {
		left += n
	}
	incomplete := 0
	for _, s := range res.Stats.CohortSamples {
		if !s.Done {
			incomplete++
		}
	}
	if left == 0 && incomplete == 0 {
		t.Fatal("saturated result shows no residual work — cutoff did not happen mid-run")
	}

	// Same budget, strict mode: must error, and say so usefully.
	spec.AllowSaturated = false
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "not drained") {
		t.Fatalf("strict undrained run: want 'not drained' error, got %v", err)
	}

	// A drained run must not be flagged.
	ok, err := Run(Spec{Scenario: "burst", Policy: "negotiation", AllowSaturated: true})
	if err != nil {
		t.Fatal(err)
	}
	if ok.Saturated {
		t.Fatal("drained run flagged Saturated")
	}
}

// TestServeArrivalStreamDeterminism re-checks stream determinism at the
// harness boundary: two serve runs of the same spec must schedule the
// identical arrivals (already covered byte-for-byte by the golden, but
// this pins it across cluster sizes the goldens don't cover).
func TestServeArrivalStreamDeterminism(t *testing.T) {
	for _, nodes := range []int{3, 16, 64} {
		a, err := serve.DeriveSpec(21, nodes).Synthesize(nodes)
		if err != nil {
			t.Fatal(err)
		}
		b, err := serve.DeriveSpec(21, nodes).Synthesize(nodes)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("nodes=%d: stream lengths differ", nodes)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("nodes=%d: request %d differs: %+v vs %+v", nodes, i, a[i], b[i])
			}
		}
	}
}
