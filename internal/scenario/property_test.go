package scenario

import (
	"fmt"
	"testing"

	"repro/internal/policy"
)

// TestIsoAddressInvariantsUnderAllPolicies is the harness's property
// test: for every generator × policy × a handful of seeds, the run must
// (a) drain, (b) keep the cluster-wide iso-address invariants (single
// slot ownership, no double mapping, arena integrity — checked inside
// Run), and (c) produce exactly the output the generator promised:
// every worker's isomalloc'd accumulator stayed reachable through its
// pointer across every preemptive migration, and every chain thread
// unwound a deep frame chain to the correct sum after migrating at
// maximum stack depth. Pointers survive migration under every policy,
// not just the paper's default.
func TestIsoAddressInvariantsUnderAllPolicies(t *testing.T) {
	for _, g := range Generators() {
		for _, p := range policy.Names() {
			for _, seed := range []uint64{1, 2, 3} {
				name := fmt.Sprintf("%s/%s/seed%d", g.Name, p, seed)
				res, err := Run(Spec{Scenario: g.Name, Policy: p, Seed: seed})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := res.Verify(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				// Every thread exited; nothing is stranded mid-migration.
				for i, left := range res.ThreadsLeft {
					if left != 0 {
						t.Fatalf("%s: %d thread(s) stranded on node %d", name, left, i)
					}
				}
			}
		}
	}
}

// TestScenariosScaleWithClusterSize re-runs one scenario per generator
// on a larger cluster: placement must stay within range and the
// invariants must hold when there are more nodes than the default.
func TestScenariosScaleWithClusterSize(t *testing.T) {
	for _, g := range Generators() {
		for _, p := range policy.Names() {
			res, err := Run(Spec{Scenario: g.Name, Policy: p, Nodes: 7, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Verify(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestContendAcrossArbiters runs the contention workload — every node
// negotiating at once — under each arbiter × gather × policy: the run
// must drain with no thread stranded, keep the iso-address invariants
// (no slot double-owned; resident counts conserved down to zero), prove
// pointer integrity through the generator's output expectations, and be
// byte-identically reproducible — the deterministic-backoff guarantee
// under real contention.
func TestContendAcrossArbiters(t *testing.T) {
	for _, arb := range []string{"sharded", "optimistic"} {
		for _, gather := range []string{"sequential", "batched", "tree", "delta"} {
			for _, p := range policy.Names() {
				name := fmt.Sprintf("%s/%s/%s", arb, gather, p)
				spec := Spec{Scenario: "contend", Policy: p, Nodes: 8, Gather: gather, Arbiter: arb}
				a, err := Run(spec)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := a.Verify(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if a.Stats.Negotiations == 0 {
					t.Fatalf("%s: the contention workload negotiated zero times", name)
				}
				for i, left := range a.ThreadsLeft {
					if left != 0 {
						t.Fatalf("%s: %d thread(s) stranded on node %d", name, left, i)
					}
				}
				b, err := Run(spec)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if a.TraceString() != b.TraceString() {
					t.Fatalf("%s: two identical runs produced different traces", name)
				}
			}
		}
	}
}

// TestNegoStressAcrossGatherStrategies runs the negotiation-heavy
// workload under every gather strategy at 4, 16 and 64 nodes and every
// policy: each run must drain, keep the iso-address invariants, prove
// pointer integrity, and be byte-identically reproducible. The batched
// and tree gathers must not change *what* the protocol achieves — only
// what it costs.
func TestNegoStressAcrossGatherStrategies(t *testing.T) {
	for _, gather := range []string{"batched", "tree", "delta"} {
		for _, nodes := range []int{4, 16, 64} {
			for _, p := range policy.Names() {
				name := fmt.Sprintf("%s/%d/%s", gather, nodes, p)
				spec := Spec{Scenario: "negostress", Policy: p, Nodes: nodes, Gather: gather}
				a, err := Run(spec)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := a.Verify(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if a.Stats.Negotiations == 0 {
					t.Fatalf("%s: the stress workload negotiated zero times", name)
				}
				for i, left := range a.ThreadsLeft {
					if left != 0 {
						t.Fatalf("%s: %d thread(s) stranded on node %d", name, left, i)
					}
				}
				b, err := Run(spec)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if a.TraceString() != b.TraceString() {
					t.Fatalf("%s: two identical runs produced different traces", name)
				}
			}
		}
	}
}
