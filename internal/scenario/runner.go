package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/loadbal"
	ipm2 "repro/internal/pm2"
	"repro/internal/policy"
	"repro/internal/simtime"
)

// balancePeriod is the harness's balancing cadence: short enough that
// every scenario sees multiple rounds, long enough that threads make
// progress between them.
const balancePeriod = 2 * simtime.Millisecond

// maxSteps bounds a run; a drained engine well under the bound is the
// expected outcome, hitting it means a scenario ran away.
const maxSteps = 10_000_000

// Result is one completed harness run.
type Result struct {
	Spec Spec
	// Trace is the canonical event trace: header, time-stamped
	// placement and migration decisions, end summary, program output.
	// Byte-identical across runs of the same Spec.
	Trace []string
	// Output is the cluster's pm2_printf trace.
	Output []string
	// Stats is the cluster's aggregate measurements.
	Stats ipm2.Stats
	// BalancerMoves counts migrations the balancer requested.
	BalancerMoves int
	// ThreadsLeft is the per-node resident count at the end of the run
	// (all zeros when every thread exited).
	ThreadsLeft []int
	// VirtualMicros is the total virtual time consumed.
	VirtualMicros float64

	expects []expectation
}

// Percentiles summarizes a latency distribution in microseconds.
type Percentiles struct {
	P50, P95, P99 float64
}

// percentiles computes nearest-rank percentiles over a latency series
// (zero-valued when the series is empty).
func percentiles(ls []simtime.Time) Percentiles {
	if len(ls) == 0 {
		return Percentiles{}
	}
	sorted := append([]simtime.Time(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i].Micros()
	}
	return Percentiles{P50: at(0.50), P95: at(0.95), P99: at(0.99)}
}

// NegotiationPercentiles summarizes the run's negotiation latencies.
func (r *Result) NegotiationPercentiles() Percentiles {
	return percentiles(r.Stats.NegotiationLatencies)
}

// MigrationPercentiles summarizes the run's migration latencies.
func (r *Result) MigrationPercentiles() Percentiles {
	return percentiles(r.Stats.MigrationLatencies)
}

// TraceString renders the canonical trace, one line each, newline
// terminated.
func (r *Result) TraceString() string { return strings.Join(r.Trace, "\n") + "\n" }

// Verify checks the run produced exactly the output the generator
// promised: every spawned worker finished, every chain unwound to the
// correct sum. Together with the cluster invariant check this is the
// "pointers survive migration" property, policy-independent.
func (r *Result) Verify() error {
	for _, e := range r.expects {
		got := 0
		for _, l := range r.Output {
			if strings.Contains(l, e.substr) {
				got++
			}
		}
		if got != e.count {
			return fmt.Errorf("scenario %s/%s: output lines containing %q = %d, want %d",
				r.Spec.Scenario, r.Spec.Policy, e.substr, got, e.count)
		}
	}
	return nil
}

// Run executes one scenario under one policy and returns its result.
func Run(spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	gen, ok := LookupGenerator(spec.Scenario)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown generator %q (have %v)", spec.Scenario, GeneratorNames())
	}
	pol, err := policy.Parse(spec.Policy)
	if err != nil {
		return nil, err
	}
	spec.Policy = pol.Name()
	gather, err := ipm2.ParseGatherMode(spec.Gather)
	if err != nil {
		return nil, err
	}
	spec.Gather = gather.String()
	arbiter, err := ipm2.ParseArbiterMode(spec.Arbiter)
	if err != nil {
		return nil, err
	}
	spec.Arbiter = arbiter.String()

	rec := &recorder{}
	cl := ipm2.New(ipm2.Config{
		Nodes:     spec.Nodes,
		Gather:    gather,
		Arbiter:   arbiter,
		Placement: &recordingPolicy{inner: pol, rec: rec},
	}, Image())

	rec.logf("scenario=%s policy=%s nodes=%d seed=%d", spec.Scenario, spec.Policy, spec.Nodes, spec.Seed)
	d := &Driver{spec: spec, cl: cl, r: NewRand(spec.Seed), rec: rec}
	gen.Plan(d)

	bal := loadbal.Attach(cl, loadbal.Config{
		Period:         balancePeriod,
		KeepAliveUntil: d.horizon + 2*balancePeriod,
	})

	cl.Run(maxSteps)
	if cl.Engine().Pending() > 0 {
		return nil, fmt.Errorf("scenario %s/%s: engine not drained after %d steps", spec.Scenario, spec.Policy, maxSteps)
	}
	if err := cl.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("scenario %s/%s: %w", spec.Scenario, spec.Policy, err)
	}

	res := &Result{
		Spec:          spec,
		Output:        cl.Trace().Lines(),
		Stats:         cl.Stats(),
		BalancerMoves: bal.Moves(),
		VirtualMicros: cl.Now().Micros(),
		expects:       d.expects,
	}
	threads := make([]string, spec.Nodes)
	res.ThreadsLeft = make([]int, spec.Nodes)
	for i := 0; i < spec.Nodes; i++ {
		res.ThreadsLeft[i] = cl.Node(i).Scheduler().Threads()
		threads[i] = fmt.Sprint(res.ThreadsLeft[i])
	}
	rec.logf("end virtual=%.3fus migrations=%d negotiations=%d balmoves=%d threads=[%s]",
		res.VirtualMicros, res.Stats.Migrations, res.Stats.Negotiations,
		res.BalancerMoves, strings.Join(threads, " "))
	rec.lines = append(rec.lines, "-- output --")
	rec.lines = append(rec.lines, res.Output...)
	res.Trace = rec.lines
	return res, nil
}

// recorder accumulates the canonical trace. The cluster's event loop is
// single-threaded, so appends happen in deterministic event order.
type recorder struct {
	lines []string
}

func (r *recorder) logf(format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

// recordingPolicy wraps the policy under test, logging every placement
// and migration decision into the canonical trace.
type recordingPolicy struct {
	inner policy.Policy
	rec   *recorder
}

// ReroutesSpawns keeps the runtime consulting PickSpawn for every
// policy under test, so every trace records spawn placement — even for
// policies that never reroute.
func (p *recordingPolicy) ReroutesSpawns() bool { return true }

func (p *recordingPolicy) Name() string                     { return p.inner.Name() }
func (p *recordingPolicy) OnLoadReport(r policy.LoadReport) { p.inner.OnLoadReport(r) }
func (p *recordingPolicy) ShouldMigrate(v policy.View) bool { return p.inner.ShouldMigrate(v) }

func (p *recordingPolicy) PickTarget(v policy.View) []policy.Move {
	moves := p.inner.PickTarget(v)
	if len(moves) > 0 {
		strs := make([]string, len(moves))
		for i, m := range moves {
			strs[i] = m.String()
		}
		p.rec.logf("t=%.3f moves %s", v.Now.Micros(), strings.Join(strs, " "))
	}
	return moves
}

func (p *recordingPolicy) PickSpawn(pref int, v policy.View) int {
	n := p.inner.PickSpawn(pref, v)
	p.rec.logf("t=%.3f place pref=%d node=%d", v.Now.Micros(), pref, n)
	return n
}
