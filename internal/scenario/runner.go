package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/loadbal"
	ipm2 "repro/internal/pm2"
	"repro/internal/policy"
	"repro/internal/scenario/serve"
	"repro/internal/simtime"
)

// balancePeriod is the harness's balancing cadence: short enough that
// every scenario sees multiple rounds, long enough that threads make
// progress between them.
const balancePeriod = 2 * simtime.Millisecond

// maxSteps bounds a run; a drained engine well under the bound is the
// expected outcome, hitting it means a scenario ran away.
const maxSteps = 10_000_000

// Result is one completed harness run.
type Result struct {
	Spec Spec
	// Trace is the canonical event trace: header, time-stamped
	// placement and migration decisions, end summary, program output.
	// Byte-identical across runs of the same Spec.
	Trace []string
	// Output is the cluster's pm2_printf trace.
	Output []string
	// Stats is the cluster's aggregate measurements.
	Stats ipm2.Stats
	// BalancerMoves counts migrations the balancer requested.
	BalancerMoves int
	// ThreadsLeft is the per-node resident count at the end of the run
	// (all zeros when every thread exited).
	ThreadsLeft []int
	// VirtualMicros is the total virtual time consumed.
	VirtualMicros float64
	// Steps is the number of engine events the run executed — the cost
	// the step budget (Spec.MaxSteps) is charged against.
	Steps uint64
	// Saturated reports that the run exhausted its step budget with
	// work still pending: the offered load outran the cluster. The
	// Result is the partial measurement up to the cutoff. Only runs
	// with Spec.AllowSaturated reach callers in this state.
	Saturated bool

	expects []expectation
}

// Percentiles summarizes a latency distribution in microseconds. It is
// the shared nearest-rank helper from internal/pm2 — one
// implementation, used by the harness, the cohort SLO accounting, and
// the bench tables alike.
type Percentiles = ipm2.Percentiles

// NegotiationPercentiles summarizes the run's negotiation latencies.
func (r *Result) NegotiationPercentiles() Percentiles {
	return ipm2.NearestRank(r.Stats.NegotiationLatencies)
}

// MigrationPercentiles summarizes the run's migration latencies.
func (r *Result) MigrationPercentiles() Percentiles {
	return ipm2.NearestRank(r.Stats.MigrationLatencies)
}

// CohortSLO is one cohort's per-request service summary.
type CohortSLO struct {
	// Cohort is the tenant name.
	Cohort string
	// Requests counts tagged spawns; Completed counts those whose
	// thread exited before the run (or its step budget) ended. They
	// differ only on saturated runs.
	Requests  int
	Completed int
	// Placement is time-to-placement (spawn request to running thread,
	// including any §4.4 slot negotiation); EndToEnd is arrival to
	// thread exit. Both over completed samples only, nearest-rank, µs.
	Placement Percentiles
	EndToEnd  Percentiles
}

// CohortSLOs summarizes the per-request accounting by cohort, sorted by
// cohort name. Empty for scenarios that never tag a spawn.
func (r *Result) CohortSLOs() []CohortSLO {
	byName := map[string]*CohortSLO{}
	place := map[string][]simtime.Time{}
	e2e := map[string][]simtime.Time{}
	var names []string
	for _, s := range r.Stats.CohortSamples {
		c := byName[s.Cohort]
		if c == nil {
			c = &CohortSLO{Cohort: s.Cohort}
			byName[s.Cohort] = c
			names = append(names, s.Cohort)
		}
		c.Requests++
		if s.Done {
			c.Completed++
			place[s.Cohort] = append(place[s.Cohort], s.PlacementLatency())
			e2e[s.Cohort] = append(e2e[s.Cohort], s.EndToEndLatency())
		}
	}
	sort.Strings(names)
	out := make([]CohortSLO, 0, len(names))
	for _, n := range names {
		c := byName[n]
		c.Placement = ipm2.NearestRank(place[n])
		c.EndToEnd = ipm2.NearestRank(e2e[n])
		out = append(out, *c)
	}
	return out
}

// TraceString renders the canonical trace, one line each, newline
// terminated.
func (r *Result) TraceString() string { return strings.Join(r.Trace, "\n") + "\n" }

// Verify checks the run produced exactly the output the generator
// promised: every spawned worker finished, every chain unwound to the
// correct sum. Together with the cluster invariant check this is the
// "pointers survive migration" property, policy-independent.
func (r *Result) Verify() error {
	for _, e := range r.expects {
		got := 0
		for _, l := range r.Output {
			if strings.Contains(l, e.substr) {
				got++
			}
		}
		if got != e.count {
			return fmt.Errorf("scenario %s/%s: output lines containing %q = %d, want %d",
				r.Spec.Scenario, r.Spec.Policy, e.substr, got, e.count)
		}
	}
	return nil
}

// Run executes one scenario under one policy and returns its result.
func Run(spec Spec) (*Result, error) {
	return run(spec, nil)
}

// Replay executes a pre-expanded serve request stream under the
// harness, bypassing synthesis: the stream on the wire is the stream
// that runs. The live serve generator and Replay share the scheduling
// path, so replaying a recorded trace with the same Spec reproduces the
// live run's canonical trace byte for byte. Replay is also how the
// bench saturation sweep injects rate-scaled streams.
func Replay(spec Spec, reqs []serve.Request) (*Result, error) {
	if spec.Scenario == "" {
		spec.Scenario = "serve"
	}
	return run(spec, reqs)
}

// ReplayFromCheckpoint is Replay against a restored cluster: the
// request stream continues a pm2ckpt capture instead of a fresh boot.
// The engine clock resumes at the checkpoint's quiescent instant, so
// every request's arrival time is shifted by ck.Now — a trace recorded
// against a checkpoint replays the same relative arrival schedule no
// matter when the capture was taken. Structural parameters the spec
// leaves free (distribution, convoy, pack, heartbeat lease) are taken
// from the checkpoint; the ones the spec does fix (nodes, policy,
// gather, arbiter) must match it, enforced by RestoreCluster.
func ReplayFromCheckpoint(spec Spec, reqs []serve.Request, ck *ipm2.Checkpoint) (*Result, error) {
	if spec.Scenario == "" {
		spec.Scenario = "serve"
	}
	spec = spec.withDefaults()
	pol, err := policy.Parse(spec.Policy)
	if err != nil {
		return nil, err
	}
	spec.Policy = pol.Name()
	gather, err := ipm2.ParseGatherMode(spec.Gather)
	if err != nil {
		return nil, err
	}
	spec.Gather = gather.String()
	arbiter, err := ipm2.ParseArbiterMode(spec.Arbiter)
	if err != nil {
		return nil, err
	}
	spec.Arbiter = arbiter.String()
	dist, err := ipm2.DistFromName(ck.Dist)
	if err != nil {
		return nil, err
	}

	rec := &recorder{}
	cl, err := ipm2.RestoreCluster(ipm2.Config{
		Nodes:           spec.Nodes,
		Gather:          gather,
		Arbiter:         arbiter,
		Placement:       &recordingPolicy{inner: pol, rec: rec},
		Workers:         spec.Workers,
		Dist:            dist,
		Convoy:          ck.Convoy,
		Pack:            ipm2.PackMode(ck.Pack),
		HeartbeatMisses: ck.HeartbeatMisses,
		RPCTimeout:      rpcTimeout(spec, 0),
	}, Image(), ck)
	if err != nil {
		return nil, err
	}

	rec.logf("scenario=%s policy=%s nodes=%d seed=%d ckpt=%016x", spec.Scenario, spec.Policy, spec.Nodes, spec.Seed, ck.Digest())
	d := &Driver{spec: spec, cl: cl, r: NewRand(spec.Seed), rec: rec}
	shifted := make([]serve.Request, len(reqs))
	for i, q := range reqs {
		q.At += ck.Now
		shifted[i] = q
	}
	d.scheduleRequests(shifted)
	return finish(spec, d, cl, rec)
}

// rpcTimeout resolves the deadline-layer setting for a run: an explicit
// Spec.RPCTimeoutMicros wins (> 0 a deadline in µs, < 0 the cost-model
// default), otherwise the generator's own default applies — zero (off)
// for every generator except partition, so the pre-existing goldens run
// the machinery-free path byte for byte.
func rpcTimeout(spec Spec, genDefault simtime.Time) simtime.Time {
	switch {
	case spec.RPCTimeoutMicros > 0:
		return simtime.Time(spec.RPCTimeoutMicros) * simtime.Microsecond
	case spec.RPCTimeoutMicros < 0:
		return -1
	default:
		return genDefault
	}
}

// run is the shared harness body: replay == nil plans via the spec's
// generator, otherwise the replay stream is scheduled directly.
func run(spec Spec, replay []serve.Request) (*Result, error) {
	spec = spec.withDefaults()
	gen, ok := LookupGenerator(spec.Scenario)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown generator %q (have %v)", spec.Scenario, GeneratorNames())
	}
	pol, err := policy.Parse(spec.Policy)
	if err != nil {
		return nil, err
	}
	spec.Policy = pol.Name()
	gather, err := ipm2.ParseGatherMode(spec.Gather)
	if err != nil {
		return nil, err
	}
	spec.Gather = gather.String()
	arbiter, err := ipm2.ParseArbiterMode(spec.Arbiter)
	if err != nil {
		return nil, err
	}
	spec.Arbiter = arbiter.String()

	rec := &recorder{}
	cl, err := ipm2.NewChecked(ipm2.Config{
		Nodes:      spec.Nodes,
		Gather:     gather,
		Arbiter:    arbiter,
		Placement:  &recordingPolicy{inner: pol, rec: rec},
		Workers:    spec.Workers,
		RPCTimeout: rpcTimeout(spec, gen.RPCTimeout),
	}, Image())
	if err != nil {
		return nil, err
	}

	rec.logf("scenario=%s policy=%s nodes=%d seed=%d", spec.Scenario, spec.Policy, spec.Nodes, spec.Seed)
	d := &Driver{spec: spec, cl: cl, r: NewRand(spec.Seed), rec: rec}
	if replay != nil {
		d.scheduleRequests(replay)
	} else {
		gen.Plan(d)
	}
	return finish(spec, d, cl, rec)
}

// finish is the harness tail shared by fresh-boot and
// restored-from-checkpoint runs: attach the balancer, drive the engine
// to quiescence (or the step budget), check invariants, assemble the
// Result and seal the canonical trace.
func finish(spec Spec, d *Driver, cl *ipm2.Cluster, rec *recorder) (*Result, error) {
	bal := loadbal.Attach(cl, loadbal.Config{
		Period:         balancePeriod,
		KeepAliveUntil: d.horizon + 2*balancePeriod,
	})

	budget := uint64(maxSteps)
	if spec.MaxSteps > 0 {
		budget = uint64(spec.MaxSteps)
	}
	cl.Run(budget)
	saturated := cl.Engine().Pending() > 0
	if saturated && !spec.AllowSaturated {
		// Closed-loop scenarios must drain: an exhausted budget there is
		// a runaway run, not a measurement.
		return nil, fmt.Errorf("scenario %s/%s: engine not drained after %d steps", spec.Scenario, spec.Policy, budget)
	}
	if !saturated {
		// Invariants are checked on quiescent clusters only; a saturated
		// cutoff legitimately leaves threads and messages in flight.
		if err := cl.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("scenario %s/%s: %w", spec.Scenario, spec.Policy, err)
		}
	}

	res := &Result{
		Spec:          spec,
		Output:        cl.Trace().Lines(),
		Stats:         cl.Stats(),
		BalancerMoves: bal.Moves(),
		VirtualMicros: cl.Now().Micros(),
		Steps:         cl.Engine().Steps(),
		Saturated:     saturated,
		expects:       d.expects,
	}
	threads := make([]string, spec.Nodes)
	res.ThreadsLeft = make([]int, spec.Nodes)
	for i := 0; i < spec.Nodes; i++ {
		res.ThreadsLeft[i] = cl.Node(i).Scheduler().Threads()
		threads[i] = fmt.Sprint(res.ThreadsLeft[i])
	}
	rec.logf("end virtual=%.3fus migrations=%d negotiations=%d balmoves=%d threads=[%s]",
		res.VirtualMicros, res.Stats.Migrations, res.Stats.Negotiations,
		res.BalancerMoves, strings.Join(threads, " "))
	rec.lines = append(rec.lines, "-- output --")
	rec.lines = append(rec.lines, res.Output...)
	res.Trace = rec.lines
	return res, nil
}

// recorder accumulates the canonical trace. Appends happen from ambient
// (barrier) events and from the node handlers' commit closures, both of
// which the kernel runs in deterministic serial merge order at any
// worker count — so the trace bytes are identical whether the event
// lanes execute on one goroutine or a pool (see internal/simtime).
type recorder struct {
	lines []string
}

func (r *recorder) logf(format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

// recordingPolicy wraps the policy under test, logging every placement
// and migration decision into the canonical trace.
type recordingPolicy struct {
	inner policy.Policy
	rec   *recorder
}

// ReroutesSpawns keeps the runtime consulting PickSpawn for every
// policy under test, so every trace records spawn placement — even for
// policies that never reroute.
func (p *recordingPolicy) ReroutesSpawns() bool { return true }

func (p *recordingPolicy) Name() string                     { return p.inner.Name() }
func (p *recordingPolicy) OnLoadReport(r policy.LoadReport) { p.inner.OnLoadReport(r) }
func (p *recordingPolicy) ShouldMigrate(v policy.View) bool { return p.inner.ShouldMigrate(v) }

func (p *recordingPolicy) PickTarget(v policy.View) []policy.Move {
	moves := p.inner.PickTarget(v)
	if len(moves) > 0 {
		strs := make([]string, len(moves))
		for i, m := range moves {
			strs[i] = m.String()
		}
		p.rec.logf("t=%.3f moves %s", v.Now.Micros(), strings.Join(strs, " "))
	}
	return moves
}

func (p *recordingPolicy) PickSpawn(pref int, v policy.View) int {
	n := p.inner.PickSpawn(pref, v)
	p.rec.logf("t=%.3f place pref=%d node=%d", v.Now.Micros(), pref, n)
	return n
}
