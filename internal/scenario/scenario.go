// Package scenario is the deterministic workload harness for the
// migration-policy engine (internal/policy): parameterized generators —
// burst spawn, skewed hotspot, churn, deep-stack chains, negotiation
// stress, arbiter contention, and the open-loop multi-tenant serving
// workload (serve, backed by internal/scenario/serve) — drive the
// virtual-time cluster under a chosen policy and emit comparable
// per-policy stats plus a canonical event trace.
//
// Everything is deterministic: the generators draw from a seeded
// splitmix64 stream (internal/rng), the cluster runs in discrete
// virtual time, and the policies are deterministic by contract. The
// same (scenario, policy, nodes, seed) tuple therefore produces a
// byte-identical trace, which is what the golden-trace regression tests
// pin down — and what lets a recorded serve trace replay exactly.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/isa"
	ipm2 "repro/internal/pm2"
	"repro/internal/progs"
	"repro/internal/rng"
	"repro/internal/scenario/serve"
	"repro/internal/simtime"
)

// Spec names one harness run.
type Spec struct {
	// Scenario is the generator name (see Generators).
	Scenario string
	// Policy is the placement-policy name (see policy.Parse); empty
	// selects the default negotiation scheme.
	Policy string
	// Nodes is the cluster size (default 4; the harness is routinely
	// exercised at 16 and 64).
	Nodes int
	// Seed feeds the workload PRNG (default 1).
	Seed uint64
	// Gather is the §4.4 bitmap-gather strategy (see
	// pm2.ParseGatherMode); empty selects the paper-faithful sequential
	// gather, which is what every golden trace pins.
	Gather string
	// Arbiter is the negotiation concurrency scheme (see
	// pm2.ParseArbiterMode); empty selects the paper-faithful global
	// lock on node 0.
	Arbiter string
	// Workers is the simulation kernel's worker count (pm2.Config.Workers):
	// 0 or 1 is the exact serial executor, >1 runs node lanes on a worker
	// pool. Traces and stats are bit-identical at any worker count, so
	// Workers is not part of the trace header — the same golden pins every
	// setting. Incompatible with the batched/tree gathers.
	Workers int
	// RPCTimeoutMicros overrides the partial-failure deadline layer
	// (pm2.Config.RPCTimeout): > 0 is a deadline in virtual µs, < 0
	// selects the cost-model default, and 0 defers to the generator's
	// own setting (off for every generator except partition). Like
	// Workers it is not part of the trace header.
	RPCTimeoutMicros int64
	// MaxSteps overrides the engine step budget (default 10M). The
	// saturation sweep sets a small budget so past-knee runs cut off
	// cheaply — virtual steps are deterministic, so the cutoff is too.
	MaxSteps int
	// AllowSaturated makes an exhausted step budget a measurement
	// (Result.Saturated) instead of an error. Closed-loop scenarios
	// leave it false: for them an undrained engine is a runaway bug.
	AllowSaturated bool
}

func (s Spec) withDefaults() Spec {
	if s.Nodes <= 0 {
		s.Nodes = 4
	}
	s.Seed = rng.CanonSeed(s.Seed)
	return s
}

// Generator is one parameterized workload shape.
type Generator struct {
	// Name identifies the generator in Specs and trace headers.
	Name string
	// RPCTimeout is the generator's default deadline setting
	// (pm2.Config.RPCTimeout semantics: 0 off, -1 cost-model default),
	// applied when the Spec leaves RPCTimeoutMicros at zero. Only the
	// partition generator turns it on — every pre-existing golden runs
	// with the machinery fully off.
	RPCTimeout simtime.Time
	// Plan schedules the workload onto the driver's cluster.
	Plan func(d *Driver)
}

// Generators lists every workload generator, in canonical order.
func Generators() []Generator {
	return []Generator{burstGen, hotspotGen, churnGen, deepChainGen, negoStressGen, contendGen, serveGen, failoverGen, partitionGen}
}

// LookupGenerator resolves a generator by name.
func LookupGenerator(name string) (Generator, bool) {
	for _, g := range Generators() {
		if g.Name == name {
			return g, true
		}
	}
	return Generator{}, false
}

// GeneratorNames lists the generator names, in canonical order.
func GeneratorNames() []string {
	var out []string
	for _, g := range Generators() {
		out = append(out, g.Name)
	}
	return out
}

// Driver is what a generator plans against: it schedules spawns at
// absolute virtual times, draws randomness from the scenario stream, and
// records what output the run must produce to be considered correct.
type Driver struct {
	spec    Spec
	cl      *ipm2.Cluster
	r       *Rand
	rec     *recorder
	horizon simtime.Time
	expects []expectation
}

type expectation struct {
	substr string
	count  int
}

// Nodes returns the cluster size.
func (d *Driver) Nodes() int { return d.spec.Nodes }

// Rand returns the scenario's deterministic random stream.
func (d *Driver) Rand() *Rand { return d.r }

// SpawnAt schedules program prog with argument arg at virtual time at,
// preferring node pref; the placement policy has the final word.
func (d *Driver) SpawnAt(at simtime.Time, pref int, prog string, arg uint32) {
	d.SpawnCohortAt(at, pref, prog, arg, "")
}

// SpawnCohortAt is SpawnAt with SLO accounting: a non-empty cohort tags
// the thread so the cluster records its time-to-placement and
// end-to-end latency (Stats.CohortSamples). The trace line gains a
// " cohort=x" suffix only when the tag is non-empty, so untagged
// scenarios keep their historical trace bytes.
func (d *Driver) SpawnCohortAt(at simtime.Time, pref int, prog string, arg uint32, cohort string) {
	if at > d.horizon {
		d.horizon = at
	}
	d.cl.Engine().At(at, func() {
		if cohort == "" {
			d.rec.logf("t=%.3f spawn %s/%d pref=%d", at.Micros(), prog, arg, pref)
			d.cl.Spawn(pref, prog, arg)
			return
		}
		d.rec.logf("t=%.3f spawn %s/%d pref=%d cohort=%s", at.Micros(), prog, arg, pref, cohort)
		d.cl.SpawnCohort(pref, prog, arg, cohort)
	})
}

// scheduleRequests schedules an expanded serve request stream — the one
// path shared by the live serve generator and trace replay, so a
// recorded run and its replay schedule identical events and expect
// identical output.
func (d *Driver) scheduleRequests(reqs []serve.Request) {
	for _, q := range reqs {
		d.SpawnCohortAt(q.At, q.Pref, q.Prog, q.Arg, q.Cohort)
		switch q.Prog {
		case "chain":
			n := int(q.Arg)
			d.Expect(fmt.Sprintf("chain sum = %d on node", n*(n+1)/2))
		default:
			d.Expect(" finished on node ")
		}
	}
}

// InjectFault installs a fail-stop fault plan (internal/fault spec
// syntax, e.g. "crash:1@3000") on the run's cluster and records it in
// the canonical trace. Detection rides the harness balancer's existing
// heartbeat rounds — the plan changes nothing about how the generator
// spawns or what it expects. Panics on a malformed spec: generators are
// code, not input.
func (d *Driver) InjectFault(spec string) {
	plan, err := fault.Parse(spec)
	if err != nil {
		panic(fmt.Sprintf("scenario: fault spec: %v", err))
	}
	if err := d.cl.InstallFaults(plan); err != nil {
		panic(fmt.Sprintf("scenario: installing fault plan: %v", err))
	}
	d.rec.logf("fault %s", spec)
}

// Expect records that the run's output must contain a line with substr,
// once per call.
func (d *Driver) Expect(substr string) {
	for i := range d.expects {
		if d.expects[i].substr == substr {
			d.expects[i].count++
			return
		}
	}
	d.expects = append(d.expects, expectation{substr: substr, count: 1})
}

// The generators.

// burstGen models an irregular application phase: a burst of workers all
// created on one node in the same instant — the worst case for the
// negotiation policy's reactive balancing and the best for spread/steal.
var burstGen = Generator{
	Name: "burst",
	Plan: func(d *Driver) {
		r := d.Rand()
		for i := 0; i < 10; i++ {
			d.SpawnAt(0, 0, "worker", uint32(r.Range(8_000, 16_000)))
			d.Expect(" finished on node ")
		}
	},
}

// hotspotGen models a skewed arrival stream: spawns trickle in over time
// and most of them prefer node 0.
var hotspotGen = Generator{
	Name: "hotspot",
	Plan: func(d *Driver) {
		r := d.Rand()
		at := simtime.Time(0)
		for i := 0; i < 12; i++ {
			at += simtime.Time(r.Range(200, 1_200)) * simtime.Microsecond
			pref := 0
			if d.Nodes() > 1 && r.Intn(4) == 0 {
				pref = r.Range(1, d.Nodes()-1)
			}
			d.SpawnAt(at, pref, "worker", uint32(r.Range(4_000, 10_000)))
			d.Expect(" finished on node ")
		}
	},
}

// churnGen models arrival/departure churn: waves of short-lived workers
// landing on rotating nodes, with idle gaps between waves that the
// balancer must survive.
var churnGen = Generator{
	Name: "churn",
	Plan: func(d *Driver) {
		r := d.Rand()
		for wave := 0; wave < 5; wave++ {
			at := simtime.Time(wave) * 3 * simtime.Millisecond
			pref := r.Intn(d.Nodes()) // the whole wave lands on one node
			for j, k := 0, r.Range(2, 4); j < k; j++ {
				d.SpawnAt(at, pref, "worker", uint32(r.Range(5_000, 12_000)))
				d.Expect(" finished on node ")
			}
		}
	},
}

// deepChainGen mixes deep-stack chain threads — which migrate at maximum
// recursion depth, the paper's central stress on the frame chain — with
// background workers the balancer shuffles around them.
var deepChainGen = Generator{
	Name: "deepchain",
	Plan: func(d *Driver) {
		r := d.Rand()
		for i := 0; i < 3; i++ {
			d.SpawnAt(0, 0, "worker", uint32(r.Range(6_000, 9_000)))
			d.Expect(" finished on node ")
		}
		for i := 0; i < 5; i++ {
			at := simtime.Time(i) * 1_500 * simtime.Microsecond
			depth := r.Range(12, 40)
			d.SpawnAt(at, r.Intn(d.Nodes()), "chain", uint32(depth))
			d.Expect(fmt.Sprintf("chain sum = %d on node", depth*(depth+1)/2))
		}
	},
}

// negoStressGen is the allocation-heavy workload: every thread isomallocs
// a multi-slot block (130–250 KB, 3–4 slots), which under the default
// round-robin distribution always fails locally and negotiates — so the
// §4.4 protocol runs under load, with concurrent initiators queueing on
// the node-0 lock manager while the balancer migrates threads around
// them. The worst case for the sequential gather and the workload the
// gather-strategy comparison is measured on.
var negoStressGen = Generator{
	Name: "negostress",
	Plan: func(d *Driver) {
		r := d.Rand()
		at := simtime.Time(0)
		for i := 0; i < 8; i++ {
			at += simtime.Time(r.Range(50, 400)) * simtime.Microsecond
			size := uint32(r.Range(130_000, 250_000))
			d.SpawnAt(at, r.Intn(d.Nodes()), "negostress", size)
			d.Expect(" freed on node ")
		}
	},
}

// contendGen is the arbiter-contention workload: every node fires a
// multi-slot allocation in the same instant (and again half a
// millisecond later), so the maximum number of initiators negotiate
// concurrently. Under the global arbiter they all queue on node 0's
// lock; the sharded and optimistic arbiters let the disjoint
// negotiations overlap — the workload the contention figure and the
// per-arbiter goldens pin down.
var contendGen = Generator{
	Name: "contend",
	Plan: func(d *Driver) {
		r := d.Rand()
		for wave := 0; wave < 2; wave++ {
			at := simtime.Time(wave) * 500 * simtime.Microsecond
			for i := 0; i < d.Nodes(); i++ {
				size := uint32(r.Range(130_000, 250_000))
				d.SpawnAt(at, i, "negostress", size)
				d.Expect(" freed on node ")
			}
		}
	},
}

// serveGen is the open-loop serving workload: the default three-tenant
// spec from internal/scenario/serve (steady api traffic, a diurnal
// sticky batch tenant, sparse deep-stack chains), synthesized for this
// run's seed and cluster size and scheduled with per-cohort SLO
// accounting. Unlike the closed-loop generators above, arrivals do not
// wait for completions — the workload the saturation sweep rate-scales.
var serveGen = Generator{
	Name: "serve",
	Plan: func(d *Driver) {
		reqs, err := serve.DeriveSpec(d.spec.Seed, d.Nodes()).Synthesize(d.Nodes())
		if err != nil {
			// The derived spec is valid by construction; a failure here
			// is a programming error, not an input error.
			panic(fmt.Sprintf("scenario: serve synthesis failed: %v", err))
		}
		d.scheduleRequests(reqs)
	},
}

// failoverGen is the fail-stop workload: long-lived workers spread over
// every node, then one non-root node crashes mid-run. The balancer's
// heartbeat rounds age the victim's lease until it is declared dead, its
// resident threads are evacuated to the survivors as convoys, and its
// owned slot range is reclaimed — every worker still finishes, on
// whichever node it was carried to. The workers' single-slot allocations
// never negotiate, so the trace is byte-identical under every arbiter
// and gather: the failover goldens pin the detection, evacuation and
// reclaim behavior itself, nothing else.
var failoverGen = Generator{
	Name: "failover",
	Plan: func(d *Driver) {
		r := d.Rand()
		for i := 0; i < 2*d.Nodes(); i++ {
			at := simtime.Time(r.Range(0, 400)) * simtime.Microsecond
			d.SpawnAt(at, i%d.Nodes(), "worker", uint32(r.Range(18_000, 40_000)))
			d.Expect(" finished on node ")
		}
		victim := r.Range(1, d.Nodes()-1) // rank 0 hosts the lock manager and cannot crash
		d.InjectFault(fmt.Sprintf("crash:%d@3000", victim))
		d.Expect(fmt.Sprintf("[failover] node %d declared dead", victim))
	},
}

// partitionGen is the partial-failure workload: one live node is cut off
// from every other rank for a 6 ms window mid-run. With the deadline
// layer on (the generator defaults RPCTimeout to the cost-model value),
// a negotiation started during the window abandons its gather requests
// against the unreachable rank after bounded retries instead of hanging,
// the heartbeat rounds suspect the victim — routed around, never
// evacuated, because it is alive — and the healed partition rejoins it
// with every stale cross-node belief dropped. A post-heal spawn wave,
// some of it preferring the rejoined victim, pins that a rejoined node
// serves placements again. Store-and-forward healing means nothing is
// lost: every worker finishes, on the victim included.
var partitionGen = Generator{
	Name:       "partition",
	RPCTimeout: -1, // cost-model default: the partial-failure machinery on
	Plan: func(d *Driver) {
		r := d.Rand()
		for i := 0; i < 2*d.Nodes(); i++ {
			at := simtime.Time(r.Range(0, 400)) * simtime.Microsecond
			d.SpawnAt(at, i%d.Nodes(), "worker", uint32(r.Range(18_000, 40_000)))
			d.Expect(" finished on node ")
		}
		victim := r.Range(1, d.Nodes()-1) // rank 0 hosts the heartbeat vantage
		evs := make([]string, 0, d.Nodes()-1)
		for p := 0; p < d.Nodes(); p++ {
			if p != victim {
				evs = append(evs, fmt.Sprintf("partition:%d-%d@3000..9000", victim, p))
			}
		}
		d.InjectFault(strings.Join(evs, ";"))
		// 2 ms balancer rounds, 2-miss lease: misses at 4 and 6 ms suspect
		// the victim, the 10 ms round (first after the 9 ms heal) rejoins it.
		d.Expect(fmt.Sprintf("[suspect] node %d suspected", victim))
		d.Expect(fmt.Sprintf("[rejoin] node %d rejoined", victim))
		// A multi-slot allocation inside the window: its gather must time
		// out against the victim and the negotiation still succeed on the
		// reachable ranks' slots (2–3 slots, so runs avoiding the victim's
		// interleaved words exist under round-robin).
		d.SpawnAt(4*simtime.Millisecond, 0, "negostress", uint32(r.Range(130_000, 180_000)))
		d.Expect(" freed on node ")
		// Post-heal wave, half of it preferring the rejoined victim.
		for i := 0; i < d.Nodes(); i++ {
			at := simtime.Time(10_400+r.Range(0, 400)) * simtime.Microsecond
			pref := victim
			if i%2 == 1 {
				pref = i % d.Nodes()
			}
			d.SpawnAt(at, pref, "worker", uint32(r.Range(8_000, 16_000)))
			d.Expect(" finished on node ")
		}
	},
}

// negoStressSrc allocates a multi-slot iso-address block of r1 bytes,
// writes a marker through the pointer, yields (inviting a preemptive
// migration), reads the marker back — pointer integrity across the
// negotiation-bought slots — and frees the block where it ended up.
const negoStressSrc = `
.program negostress
.string fmt_done "negostress %u freed on node %d\n"
.string fmt_bad  "negostress BAD marker %d\n"
main:
    enter 8
    store [fp-4], r1        ; size
    callb isomalloc         ; multi-slot: negotiates under round-robin
    store [fp-8], r0
    loadi r2, 0
    beq   r0, r2, fail
    loadi r3, 4051
    store [r0], r3          ; marker through the iso pointer
    callb yield             ; let the balancer move us mid-lifetime
    load  r4, [fp-8]
    load  r5, [r4]          ; read back after any migration
    loadi r3, 4051
    beq   r5, r3, good
    mov   r2, r5
    loadi r1, fmt_bad
    callb printf
    br    out
good:
    load  r1, [fp-8]
    callb isofree           ; released on whatever node we reached
    callb self_node
    mov   r3, r0
    load  r2, [fp-4]
    loadi r1, fmt_done
    callb printf
out:
    leave
    halt
fail:
    loadi r2, 0
    loadi r1, fmt_bad
    callb printf
    leave
    halt
`

// chainSrc is the deep-stack chain program: recurse to depth r1, hop to
// the next node at the deepest point, then unwind summing 1..n — every
// return address and saved frame pointer must survive the mid-recursion
// migration (and any preemptive migrations the balancer adds on top).
const chainSrc = `
.program chain
.string fmt_sum "chain sum = %d on node %d\n"
main:
    enter 4
    store [fp-4], r1      ; depth
    push  r1
    call  crec
    addi  sp, sp, 4
    mov   r2, r0
    callb self_node
    mov   r3, r0
    loadi r1, fmt_sum
    callb printf
    leave
    halt

crec:                     ; arg n at [fp+8]; returns sum 1..n; hops at n<=1
    enter 4
    load  r1, [fp+8]
    loadi r2, 2
    bge   r1, r2, cdeeper
    callb self_node
    addi  r1, r0, 1
    callb node_count
    mov   r2, r0
    mod   r1, r1, r2
    callb migrate         ; to (self+1) mod nodes, at maximum stack depth
    load  r0, [fp+8]
    leave
    ret
cdeeper:
    load  r1, [fp+8]
    store [fp-4], r1
    addi  r1, r1, -1
    push  r1
    call  crec
    addi  sp, sp, 4
    load  r1, [fp-4]
    add   r0, r0, r1
    leave
    ret
`

// Image returns the harness program image: every example program plus
// the chain and negotiation-stress workloads.
func Image() *isa.Image {
	im := progs.NewImage()
	asm.MustAssemble(im, chainSrc)
	asm.MustAssemble(im, negoStressSrc)
	return im
}
