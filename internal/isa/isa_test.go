package isa

import (
	"strings"
	"testing"

	"repro/internal/layout"
)

func TestRegisterNames(t *testing.T) {
	if R0.String() != "r0" || R15.String() != "r15" || SP.String() != "sp" || FP.String() != "fp" {
		t.Fatal("register names broken")
	}
	if !strings.Contains(Reg(99).String(), "?") {
		t.Fatal("invalid register should render with ?")
	}
}

func TestOpcodeNamesAndValidity(t *testing.T) {
	cases := map[Op]string{
		OpNop: "nop", OpLoadI: "loadi", OpAdd: "add", OpDiv: "div",
		OpLoad: "load", OpStoreB: "storeb", OpBltU: "bltu",
		OpCall: "call", OpEnter: "enter", OpCallB: "callb", OpHalt: "halt",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
		if !op.Valid() {
			t.Errorf("%v should be valid", op)
		}
	}
	if Op(200).Valid() {
		t.Error("op 200 should be invalid")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpLoadI, Rd: R3, Imm: 0xff}, "loadi r3, 0xff"},
		{Instr{Op: OpAddI, Rd: R1, Rs: R2, Imm: 0xFFFFFFFC}, "addi r1, r2, -4"},
		{Instr{Op: OpMov, Rd: R1, Rs: R2}, "mov r1, r2"},
		{Instr{Op: OpLoad, Rd: R1, Rs: FP, Imm: 0xFFFFFFF8}, "load r1, [fp-8]"},
		{Instr{Op: OpStore, Rd: SP, Rs: R9, Imm: 12}, "store [sp+12], r9"},
		{Instr{Op: OpPush, Rs: R5}, "push r5"},
		{Instr{Op: OpPop, Rd: R6}, "pop r6"},
		{Instr{Op: OpEnter, Imm: 16}, "enter 16"},
		{Instr{Op: OpCallB, Imm: BIsomalloc}, "callb isomalloc"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestBuiltinTables(t *testing.T) {
	if Builtins["isomalloc"] != BIsomalloc || Builtins["migrate"] != BMigrate {
		t.Fatal("builtin name table broken")
	}
	if BuiltinName(BPrintf) != "printf" {
		t.Fatal("BuiltinName broken")
	}
	if !strings.Contains(BuiltinName(9999), "?") {
		t.Fatal("unknown builtin should render with ?")
	}
	// Names must be unique and ids contiguous from 1.
	seen := map[uint32]bool{}
	for name, id := range Builtins {
		if seen[id] {
			t.Errorf("duplicate builtin id %d", id)
		}
		seen[id] = true
		if BuiltinName(id) != name {
			t.Errorf("round trip failed for %q", name)
		}
	}
}

func TestImageAddProgram(t *testing.T) {
	im := NewImage()
	code := []Instr{{Op: OpNop}, {Op: OpHalt}}
	lp, err := im.AddProgram("a", code, 1, map[string]int{"end": 1})
	if err != nil {
		t.Fatal(err)
	}
	if lp.Base != layout.CodeBase || lp.Entry != lp.Base+InstrBytes || lp.N != 2 {
		t.Fatalf("lp = %+v", lp)
	}
	// Second program is laid out contiguously.
	lp2, err := im.AddProgram("b", code, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lp2.Base != lp.Base+Addr(2*InstrBytes) {
		t.Fatalf("lp2.Base = %#x", lp2.Base)
	}
	if im.CodeSize() != 4 {
		t.Fatalf("CodeSize = %d", im.CodeSize())
	}
	// Label re-export.
	if a, ok := im.Label("a.end"); !ok || a != lp.Base+InstrBytes {
		t.Fatalf("Label = %#x, %v", a, ok)
	}
	// Lookup helpers.
	if p, ok := im.Program("a"); !ok || p != lp {
		t.Fatal("Program lookup broken")
	}
	if e, ok := im.EntryOf("b"); !ok || e != lp2.Entry {
		t.Fatalf("EntryOf = %#x", e)
	}
	if _, ok := im.EntryOf("zzz"); ok {
		t.Fatal("EntryOf on unknown program")
	}
	if p, ok := im.ProgramAt(lp2.Base); !ok || p.Name != "b" {
		t.Fatal("ProgramAt broken")
	}
	if _, ok := im.ProgramAt(0xF000_0000); ok {
		t.Fatal("ProgramAt outside code")
	}
}

func TestImageAddProgramErrors(t *testing.T) {
	im := NewImage()
	code := []Instr{{Op: OpHalt}}
	if _, err := im.AddProgram("", code, 0, nil); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := im.AddProgram("x", nil, 0, nil); err == nil {
		t.Error("empty code must fail")
	}
	if _, err := im.AddProgram("x", code, 5, nil); err == nil {
		t.Error("bad entry must fail")
	}
	if _, err := im.AddProgram("x", code, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := im.AddProgram("x", code, 0, nil); err == nil {
		t.Error("duplicate must fail")
	}
}

func TestInstrAt(t *testing.T) {
	im := NewImage()
	lp, _ := im.AddProgram("p", []Instr{{Op: OpNop}, {Op: OpHalt}}, 0, nil)
	if in, ok := im.InstrAt(lp.Base); !ok || in.Op != OpNop {
		t.Fatal("fetch 0 broken")
	}
	if in, ok := im.InstrAt(lp.Base + InstrBytes); !ok || in.Op != OpHalt {
		t.Fatal("fetch 1 broken")
	}
	if _, ok := im.InstrAt(lp.Base + 2*InstrBytes); ok {
		t.Fatal("fetch past end should fail")
	}
	if _, ok := im.InstrAt(lp.Base + 1); ok {
		t.Fatal("misaligned fetch should fail")
	}
	if _, ok := im.InstrAt(0); ok {
		t.Fatal("fetch below code base should fail")
	}
}

func TestInternString(t *testing.T) {
	im := NewImage()
	a := im.InternString("hello")
	b := im.InternString("world")
	c := im.InternString("hello")
	if a == b {
		t.Fatal("distinct strings share an address")
	}
	if a != c {
		t.Fatal("identical strings not deduped")
	}
	data := im.DataImage()
	if string(data[a-layout.DataBase:a-layout.DataBase+6]) != "hello\x00" {
		t.Fatalf("data image = %q", data)
	}
}

func TestSealBlocksMutation(t *testing.T) {
	im := NewImage()
	im.AddProgram("p", []Instr{{Op: OpHalt}}, 0, nil)
	im.InternString("ok")
	im.Seal()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddProgram after Seal should panic")
			}
		}()
		im.AddProgram("q", []Instr{{Op: OpHalt}}, 0, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("InternString of a new string after Seal should panic")
			}
		}()
		im.InternString("new")
	}()
	// Interning an existing string is a read: allowed.
	if im.InternString("ok") == 0 {
		t.Error("existing string lookup should still work")
	}
}
