package isa

import (
	"fmt"

	"repro/internal/layout"
)

// Addr is a simulated virtual address.
type Addr = layout.Addr

// Image is the replicated SPMD binary: all loaded programs laid out
// contiguously in the code region, plus the static data segment (string
// table). Per the paper's rule 1, the same image is loaded at the same
// virtual addresses on every node of a cluster, so code and data addresses
// never need translation on migration. An Image is built once, before the
// cluster starts, and is read-only afterwards.
type Image struct {
	instrs   []Instr
	programs map[string]*LoadedProgram
	labels   map[string]Addr // "prog.label" → code address
	data     []byte          // data segment, mapped at layout.DataBase
	strings  map[string]Addr // interned string → data address
	sealed   bool
}

// LoadedProgram describes one program resolved into the image.
type LoadedProgram struct {
	Name string
	// Base is the code address of the program's first instruction.
	Base Addr
	// Entry is the code address threads start at.
	Entry Addr
	// N is the instruction count.
	N int
}

// NewImage returns an empty binary image.
func NewImage() *Image {
	return &Image{
		programs: make(map[string]*LoadedProgram),
		labels:   make(map[string]Addr),
		strings:  make(map[string]Addr),
	}
}

// Seal marks the image immutable; the cluster seals it at start-up.
func (im *Image) Seal() { im.sealed = true }

func (im *Image) mustMutable() {
	if im.sealed {
		panic("isa: image mutated after cluster start (SPMD images must be identical on all nodes)")
	}
}

// Top returns the next free code address.
func (im *Image) Top() Addr {
	return layout.CodeBase + Addr(len(im.instrs)*InstrBytes)
}

// AddProgram appends a program's instructions to the image. code must
// already be fully resolved (absolute addresses in branch/call immediates);
// entry is the instruction index of the entry point; labels maps local label
// names to instruction indices and is re-exported as "name.label".
func (im *Image) AddProgram(name string, code []Instr, entry int, labels map[string]int) (*LoadedProgram, error) {
	im.mustMutable()
	if name == "" {
		return nil, fmt.Errorf("isa: empty program name")
	}
	if _, dup := im.programs[name]; dup {
		return nil, fmt.Errorf("isa: duplicate program %q", name)
	}
	if len(code) == 0 {
		return nil, fmt.Errorf("isa: program %q has no instructions", name)
	}
	if entry < 0 || entry >= len(code) {
		return nil, fmt.Errorf("isa: program %q entry %d out of range", name, entry)
	}
	base := im.Top()
	if uint64(base)+uint64(len(code)*InstrBytes) > uint64(layout.CodeEnd) {
		return nil, fmt.Errorf("isa: code region overflow loading %q", name)
	}
	im.instrs = append(im.instrs, code...)
	lp := &LoadedProgram{
		Name:  name,
		Base:  base,
		Entry: base + Addr(entry*InstrBytes),
		N:     len(code),
	}
	im.programs[name] = lp
	for l, idx := range labels {
		im.labels[name+"."+l] = base + Addr(idx*InstrBytes)
	}
	return lp, nil
}

// Program returns the loaded program named name.
func (im *Image) Program(name string) (*LoadedProgram, bool) {
	p, ok := im.programs[name]
	return p, ok
}

// EntryOf returns the entry address of program name.
func (im *Image) EntryOf(name string) (Addr, bool) {
	p, ok := im.programs[name]
	if !ok {
		return 0, false
	}
	return p.Entry, true
}

// Label resolves a fully-qualified "prog.label" code address.
func (im *Image) Label(qualified string) (Addr, bool) {
	a, ok := im.labels[qualified]
	return a, ok
}

// InstrAt fetches the instruction at code address addr. ok is false for
// addresses outside the loaded image or misaligned — an instruction-fetch
// fault.
func (im *Image) InstrAt(addr Addr) (Instr, bool) {
	if addr < layout.CodeBase || addr%InstrBytes != 0 {
		return Instr{}, false
	}
	idx := int(addr-layout.CodeBase) / InstrBytes
	if idx >= len(im.instrs) {
		return Instr{}, false
	}
	return im.instrs[idx], true
}

// ProgramAt returns the program containing code address addr, for
// diagnostics.
func (im *Image) ProgramAt(addr Addr) (*LoadedProgram, bool) {
	for _, p := range im.programs {
		if addr >= p.Base && addr < p.Base+Addr(p.N*InstrBytes) {
			return p, true
		}
	}
	return nil, false
}

// InternString places a NUL-terminated string in the data segment (deduped)
// and returns its address.
func (im *Image) InternString(s string) Addr {
	if a, ok := im.strings[s]; ok {
		return a
	}
	im.mustMutable()
	a := layout.DataBase + Addr(len(im.data))
	need := len(im.data) + len(s) + 1
	if uint64(layout.DataBase)+uint64(need) > uint64(layout.DataEnd) {
		panic("isa: data region overflow")
	}
	im.data = append(im.data, s...)
	im.data = append(im.data, 0)
	im.strings[s] = a
	return a
}

// DataImage returns the static data segment to map at layout.DataBase on
// every node. The caller must not modify it.
func (im *Image) DataImage() []byte { return im.data }

// CodeSize returns the number of loaded instructions.
func (im *Image) CodeSize() int { return len(im.instrs) }
