// Package isa defines the instruction set of the simulated threads.
//
// PM2 threads in the paper are ordinary compiled C code; what matters for
// iso-address migration is that their stacks hold real machine pointers
// (saved frame pointers, return addresses, user pointers) at concrete virtual
// addresses. We reproduce that with a small register machine: programs are
// the replicated SPMD "binary", loaded at identical code addresses on every
// node, and all thread state — call frames, locals, saved FP chain, return
// addresses — lives in the simulated address space. Whether a pointer
// survives migration is then decided purely by addresses, exactly as in C.
package isa

import "fmt"

// Reg names a register. R0..R15 are general purpose; SP and FP address the
// simulated stack. PC is not directly addressable.
type Reg uint8

// Register file layout.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	SP
	FP
	// NumRegs is the size of the register file.
	NumRegs = 18
)

func (r Reg) String() string {
	switch {
	case r < 16:
		return fmt.Sprintf("r%d", int(r))
	case r == SP:
		return "sp"
	case r == FP:
		return "fp"
	}
	return fmt.Sprintf("reg?%d", int(r))
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. Loads and stores move 32-bit words (or single bytes for the B
// variants) between registers and simulated memory.
const (
	OpNop Op = iota
	// OpLoadI: rd = imm.
	OpLoadI
	// OpMov: rd = rs.
	OpMov
	// Three-register ALU: rd = rs <op> rt. Division and modulo by zero
	// fault the thread.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// OpAddI: rd = rs + imm (imm is two's-complement).
	OpAddI
	// OpLoad: rd = mem32[rs + imm].
	OpLoad
	// OpStore: mem32[rd + imm] = rs.
	OpStore
	// OpLoadB: rd = zero-extended mem8[rs + imm].
	OpLoadB
	// OpStoreB: mem8[rd + imm] = low byte of rs.
	OpStoreB
	// OpBr: pc = imm (absolute code address).
	OpBr
	// Conditional branches compare rs against rt. The U variants compare
	// unsigned; the others are signed two's-complement comparisons.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltU
	OpBgeU
	// OpPush: sp -= 4; mem32[sp] = rs.
	OpPush
	// OpPop: rd = mem32[sp]; sp += 4.
	OpPop
	// OpCall: push return address; pc = imm.
	OpCall
	// OpRet: pc = pop.
	OpRet
	// OpEnter: push fp; fp = sp; sp -= imm (local bytes). The pushed
	// caller FP is the compiler-generated frame-chain pointer of the
	// paper: a raw address stored in thread stack memory.
	OpEnter
	// OpLeave: sp = fp; fp = pop.
	OpLeave
	// OpCallB: invoke runtime builtin imm (see Builtin constants);
	// arguments in r1..r4, result in r0.
	OpCallB
	// OpHalt: the thread terminates.
	OpHalt

	opMax
)

var opNames = [...]string{
	OpNop: "nop", OpLoadI: "loadi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddI: "addi", OpLoad: "load", OpStore: "store",
	OpLoadB: "loadb", OpStoreB: "storeb",
	OpBr: "br", OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltU: "bltu", OpBgeU: "bgeu",
	OpPush: "push", OpPop: "pop", OpCall: "call", OpRet: "ret",
	OpEnter: "enter", OpLeave: "leave", OpCallB: "callb", OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", int(o))
}

// Instr is one decoded instruction. Every instruction occupies InstrBytes of
// simulated code space, so code addresses advance uniformly.
type Instr struct {
	Op         Op
	Rd, Rs, Rt Reg
	// Imm holds the immediate: a constant, a signed offset, an absolute
	// code address (branches, calls), a data address, or a builtin id.
	Imm uint32
}

// InstrBytes is the simulated footprint of one instruction.
const InstrBytes = 4

func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpRet, OpLeave, OpHalt:
		return i.Op.String()
	case OpLoadI, OpAddI:
		if i.Op == OpAddI {
			return fmt.Sprintf("addi %s, %s, %d", i.Rd, i.Rs, int32(i.Imm))
		}
		return fmt.Sprintf("loadi %s, %#x", i.Rd, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", i.Rd, i.Rs)
	case OpLoad, OpLoadB:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, i.Rd, i.Rs, int32(i.Imm))
	case OpStore, OpStoreB:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, i.Rd, int32(i.Imm), i.Rs)
	case OpBr, OpCall:
		return fmt.Sprintf("%s %#x", i.Op, i.Imm)
	case OpBeq, OpBne, OpBlt, OpBge, OpBltU, OpBgeU:
		return fmt.Sprintf("%s %s, %s, %#x", i.Op, i.Rs, i.Rt, i.Imm)
	case OpPush:
		return fmt.Sprintf("push %s", i.Rs)
	case OpPop:
		return fmt.Sprintf("pop %s", i.Rd)
	case OpEnter:
		return fmt.Sprintf("enter %d", i.Imm)
	case OpCallB:
		return fmt.Sprintf("callb %s", BuiltinName(i.Imm))
	default:
		return fmt.Sprintf("%s %s,%s,%s,%#x", i.Op, i.Rd, i.Rs, i.Rt, i.Imm)
	}
}

// Valid reports whether the opcode is defined.
func (o Op) Valid() bool { return o < opMax }

// Runtime builtins, invoked with OpCallB. Arguments are taken from r1..r4,
// the result is placed in r0. These correspond to the PM2 programming
// interface of the paper (§3.4) plus the baseline primitives of §2.
const (
	// BIsomalloc: r0 = pm2_isomalloc(r1 bytes); 0 on failure.
	BIsomalloc uint32 = iota + 1
	// BIsofree: pm2_isofree(r1).
	BIsofree
	// BMalloc: r0 = malloc(r1 bytes) from the node-local heap.
	BMalloc
	// BFree: free(r1) to the node-local heap.
	BFree
	// BMigrate: pm2_migrate(marcel_self(), r1) — migrate the calling
	// thread to node r1.
	BMigrate
	// BSelfNode: r0 = pm2_self() — the current node id.
	BSelfNode
	// BSelfThread: r0 = marcel_self() — the thread handle (the address
	// of its descriptor, stable under iso-address migration).
	BSelfThread
	// BPrintf: pm2_printf(fmt=r1, args r2, r3, r4). The format string
	// lives in the replicated data segment.
	BPrintf
	// BRegisterPtr: r0 = pm2_register_pointer(&ptr = r1) (old scheme).
	BRegisterPtr
	// BUnregisterPtr: pm2_unregister_pointer(key = r1).
	BUnregisterPtr
	// BYield: yield the processor to the next ready thread.
	BYield
	// BExit: terminate the calling thread (equivalent to returning from
	// its root function).
	BExit
	// BSpawn: r0 = tid of a new local thread running program entry r1
	// with argument r2.
	BSpawn
	// BSpawnRemote: create a thread on node r1 running entry r2 with
	// argument r3; r0 = 1 once acknowledged.
	BSpawnRemote
	// BJoin: block until local thread r1 (tid) terminates.
	BJoin
	// BNodeCount: r0 = pm2_config_size().
	BNodeCount
	// BClock: r0 = current virtual time in microseconds (saturating).
	BClock
	// BSleep: block the calling thread for r1 microseconds of virtual
	// time.
	BSleep
)

var builtinNames = map[uint32]string{
	BIsomalloc: "isomalloc", BIsofree: "isofree",
	BMalloc: "malloc", BFree: "free",
	BMigrate: "migrate", BSelfNode: "self_node", BSelfThread: "self_thread",
	BPrintf: "printf", BRegisterPtr: "register_ptr", BUnregisterPtr: "unregister_ptr",
	BYield: "yield", BExit: "exit",
	BSpawn: "spawn", BSpawnRemote: "spawn_remote", BJoin: "join",
	BNodeCount: "node_count", BClock: "clock", BSleep: "sleep",
}

// Builtins maps builtin names (as written in assembly) to ids.
var Builtins = func() map[string]uint32 {
	m := make(map[string]uint32, len(builtinNames))
	for id, name := range builtinNames {
		m[name] = id
	}
	return m
}()

// BuiltinName returns the assembly name of builtin id.
func BuiltinName(id uint32) string {
	if n, ok := builtinNames[id]; ok {
		return n
	}
	return fmt.Sprintf("builtin?%d", id)
}
