// Package vmem implements the simulated per-node 32-bit virtual address
// space on which the whole reproduction runs.
//
// Portable Go gives no control over the placement of goroutine stacks or heap
// objects, so the paper's central mechanism — re-installing a thread's memory
// at the very same virtual addresses on another node — cannot be expressed on
// the Go runtime directly. Instead every node owns a Space: a sparse,
// page-granular map from simulated addresses to byte pages, with mmap-like
// mapping at caller-chosen addresses and hard faults on unmapped access.
// "Segmentation fault" is a first-class, catchable outcome, exactly as in the
// paper's Figures 2, 4 and 9.
package vmem

import (
	"encoding/binary"
	"fmt"

	"repro/internal/layout"
)

// Addr is a simulated 32-bit virtual address.
type Addr = layout.Addr

// FaultOp describes the access that triggered a fault.
type FaultOp uint8

// Fault operations.
const (
	OpRead FaultOp = iota
	OpWrite
	OpMap
	OpUnmap
)

func (op FaultOp) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpMap:
		return "mmap"
	case OpUnmap:
		return "munmap"
	}
	return "?"
}

// Fault is the error returned for invalid memory operations. A Fault from
// OpRead or OpWrite corresponds to a SIGSEGV delivered to the faulting
// thread.
type Fault struct {
	Addr Addr
	Op   FaultOp
	Why  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("segmentation fault: %s at %#08x (%s)", f.Op, f.Addr, f.Why)
}

// IsSegfault reports whether err is a read/write access fault (as opposed to
// a mapping-management error).
func IsSegfault(err error) bool {
	f, ok := err.(*Fault)
	return ok && (f.Op == OpRead || f.Op == OpWrite)
}

type page [layout.PageSize]byte

// Space is one node's simulated virtual address space. It has no
// locking: a Space belongs to exactly one node, every access happens
// inside that node's event lane, and the parallel kernel never runs
// two events of one lane concurrently (see internal/simtime) — the
// space is lane-affine state, like the scheduler and the slot table.
type Space struct {
	pages map[uint32]*page
	// mappedBytes counts currently mapped memory, for accounting tests.
	mappedBytes uint64
}

// NewSpace returns an empty address space: no page is mapped.
func NewSpace() *Space {
	return &Space{pages: make(map[uint32]*page)}
}

// MappedBytes returns the number of currently mapped bytes.
func (s *Space) MappedBytes() uint64 { return s.mappedBytes }

// MappedPages returns the number of currently mapped pages.
func (s *Space) MappedPages() int { return len(s.pages) }

func pageIndex(a Addr) uint32 { return uint32(a) >> layout.PageShift }

// checkRange validates an [addr, addr+n) range against 32-bit wraparound.
func checkRange(addr Addr, n int, op FaultOp) error {
	if n < 0 {
		return &Fault{Addr: addr, Op: op, Why: "negative length"}
	}
	if uint64(addr)+uint64(n) > 1<<32 {
		return &Fault{Addr: addr, Op: op, Why: "range wraps address space"}
	}
	return nil
}

// Mmap maps the page-aligned range [addr, addr+n) with zero-filled pages.
// It fails (without mapping anything) if the range is misaligned, wraps, or
// overlaps an existing mapping — the iso-address discipline guarantees the
// runtime never legitimately double-maps a slot.
func (s *Space) Mmap(addr Addr, n int) error {
	if err := checkRange(addr, n, OpMap); err != nil {
		return err
	}
	if !layout.PageAligned(addr) || n%layout.PageSize != 0 {
		return &Fault{Addr: addr, Op: OpMap, Why: fmt.Sprintf("misaligned mapping of %d bytes", n)}
	}
	npages := n / layout.PageSize
	first := pageIndex(addr)
	for i := 0; i < npages; i++ {
		if _, ok := s.pages[first+uint32(i)]; ok {
			return &Fault{Addr: addr + Addr(i*layout.PageSize), Op: OpMap, Why: "page already mapped"}
		}
	}
	for i := 0; i < npages; i++ {
		s.pages[first+uint32(i)] = new(page)
	}
	s.mappedBytes += uint64(n)
	return nil
}

// Munmap unmaps the page-aligned range [addr, addr+n). Every page in the
// range must currently be mapped.
func (s *Space) Munmap(addr Addr, n int) error {
	if err := checkRange(addr, n, OpUnmap); err != nil {
		return err
	}
	if !layout.PageAligned(addr) || n%layout.PageSize != 0 {
		return &Fault{Addr: addr, Op: OpUnmap, Why: fmt.Sprintf("misaligned unmapping of %d bytes", n)}
	}
	npages := n / layout.PageSize
	first := pageIndex(addr)
	for i := 0; i < npages; i++ {
		if _, ok := s.pages[first+uint32(i)]; !ok {
			return &Fault{Addr: addr + Addr(i*layout.PageSize), Op: OpUnmap, Why: "page not mapped"}
		}
	}
	for i := 0; i < npages; i++ {
		delete(s.pages, first+uint32(i))
	}
	s.mappedBytes -= uint64(n)
	return nil
}

// IsMapped reports whether every byte of [addr, addr+n) is mapped.
func (s *Space) IsMapped(addr Addr, n int) bool {
	if n <= 0 {
		return n == 0
	}
	if uint64(addr)+uint64(n) > 1<<32 {
		return false
	}
	for pi := pageIndex(addr); pi <= pageIndex(addr+Addr(n-1)); pi++ {
		if _, ok := s.pages[pi]; !ok {
			return false
		}
	}
	return true
}

// Read copies len(p) bytes from [addr, ...) into p, faulting if any byte is
// unmapped.
func (s *Space) Read(addr Addr, p []byte) error {
	if err := checkRange(addr, len(p), OpRead); err != nil {
		return err
	}
	off := 0
	for off < len(p) {
		pg, ok := s.pages[pageIndex(addr+Addr(off))]
		if !ok {
			return &Fault{Addr: addr + Addr(off), Op: OpRead, Why: "unmapped page"}
		}
		in := int(addr+Addr(off)) & (layout.PageSize - 1)
		n := copy(p[off:], pg[in:])
		off += n
	}
	return nil
}

// Write copies p into simulated memory at addr, faulting if any byte is
// unmapped.
func (s *Space) Write(addr Addr, p []byte) error {
	if err := checkRange(addr, len(p), OpWrite); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	// Validate the full range before mutating anything, so a faulting
	// write has no partial effect.
	for pi := pageIndex(addr); pi <= pageIndex(addr+Addr(len(p)-1)); pi++ {
		if _, ok := s.pages[pi]; !ok {
			fa := Addr(pi) << layout.PageShift
			if fa < addr {
				fa = addr
			}
			return &Fault{Addr: fa, Op: OpWrite, Why: "unmapped page"}
		}
	}
	off := 0
	for off < len(p) {
		pg := s.pages[pageIndex(addr+Addr(off))]
		in := int(addr+Addr(off)) & (layout.PageSize - 1)
		n := copy(pg[in:], p[off:])
		off += n
	}
	return nil
}

// Load32 reads a little-endian 32-bit word at addr.
func (s *Space) Load32(addr Addr) (uint32, error) {
	var buf [4]byte
	if err := s.Read(addr, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// Store32 writes a little-endian 32-bit word at addr.
func (s *Space) Store32(addr Addr, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return s.Write(addr, buf[:])
}

// Load8 reads one byte at addr.
func (s *Space) Load8(addr Addr) (byte, error) {
	var buf [1]byte
	if err := s.Read(addr, buf[:]); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// Store8 writes one byte at addr.
func (s *Space) Store8(addr Addr, v byte) error {
	return s.Write(addr, []byte{v})
}

// ReadBytes returns a fresh copy of [addr, addr+n).
func (s *Space) ReadBytes(addr Addr, n int) ([]byte, error) {
	p := make([]byte, n)
	if err := s.Read(addr, p); err != nil {
		return nil, err
	}
	return p, nil
}

// ReadAliases returns [addr, addr+n) as a list of page-fragment slices
// that alias the simulated pages directly — no copy. The zero-copy
// migration packer hands these to the NIC's gather list. The fragments
// are only valid until the range is written or unmapped; callers must
// consume them (or copy) before releasing the pages.
func (s *Space) ReadAliases(addr Addr, n int) ([][]byte, error) {
	if err := checkRange(addr, n, OpRead); err != nil {
		return nil, err
	}
	var out [][]byte
	off := 0
	for off < n {
		pg, ok := s.pages[pageIndex(addr+Addr(off))]
		if !ok {
			return nil, &Fault{Addr: addr + Addr(off), Op: OpRead, Why: "unmapped page"}
		}
		in := int(addr+Addr(off)) & (layout.PageSize - 1)
		frag := pg[in:]
		if len(frag) > n-off {
			frag = frag[:n-off]
		}
		out = append(out, frag)
		off += len(frag)
	}
	return out, nil
}

// Zero writes n zero bytes at addr.
func (s *Space) Zero(addr Addr, n int) error {
	return s.Write(addr, make([]byte, n))
}

// ReadCString reads a NUL-terminated string of at most max bytes from addr.
func (s *Space) ReadCString(addr Addr, max int) (string, error) {
	out := make([]byte, 0, 32)
	for i := 0; i < max; i++ {
		b, err := s.Load8(addr + Addr(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", &Fault{Addr: addr, Op: OpRead, Why: "unterminated string"}
}
