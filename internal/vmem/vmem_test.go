package vmem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/layout"
)

func TestMmapAndAccess(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.IsoBase)
	if err := s.Mmap(base, 2*layout.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := s.MappedBytes(); got != 2*layout.PageSize {
		t.Fatalf("MappedBytes = %d", got)
	}
	if got := s.MappedPages(); got != 2 {
		t.Fatalf("MappedPages = %d", got)
	}
	// Fresh pages read as zero.
	b, err := s.ReadBytes(base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, make([]byte, 64)) {
		t.Fatal("fresh mapping not zero-filled")
	}
	// Round-trip a word.
	if err := s.Store32(base+100, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load32(base + 100)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Fatalf("Load32 = %#x", v)
	}
}

func TestCrossPageAccess(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.IsoBase)
	if err := s.Mmap(base, 2*layout.PageSize); err != nil {
		t.Fatal(err)
	}
	// A word straddling the page boundary.
	at := base + layout.PageSize - 2
	if err := s.Store32(at, 0x11223344); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load32(at)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x11223344 {
		t.Fatalf("cross-page Load32 = %#x", v)
	}
	// A large buffer spanning both pages.
	buf := make([]byte, layout.PageSize+100)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := s.Write(base+50, buf); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBytes(base+50, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("cross-page buffer mismatch")
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	s := NewSpace()
	if _, err := s.Load32(0x1000); !IsSegfault(err) {
		t.Fatalf("expected segfault, got %v", err)
	}
	if err := s.Store32(0x1000, 1); !IsSegfault(err) {
		t.Fatalf("expected segfault, got %v", err)
	}
	f, ok := err2fault(s.Store8(0x2345, 1))
	if !ok || f.Op != OpWrite || f.Addr != 0x2345 {
		t.Fatalf("fault detail wrong: %+v", f)
	}
}

func err2fault(err error) (*Fault, bool) {
	f, ok := err.(*Fault)
	return f, ok
}

func TestPartialRangeFaults(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.IsoBase)
	if err := s.Mmap(base, layout.PageSize); err != nil {
		t.Fatal(err)
	}
	// Write starting in the mapped page, spilling into unmapped space:
	// must fault without modifying the mapped part.
	marker := []byte{1, 2, 3, 4}
	if err := s.Write(base+layout.PageSize-4, marker); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 16)
	err := s.Write(base+layout.PageSize-4, big)
	if !IsSegfault(err) {
		t.Fatalf("expected segfault, got %v", err)
	}
	got, _ := s.ReadBytes(base+layout.PageSize-4, 4)
	if !bytes.Equal(got, marker) {
		t.Fatalf("faulting write had partial effect: %v", got)
	}
	// Read across the hole faults too.
	if _, err := s.ReadBytes(base+layout.PageSize-4, 16); !IsSegfault(err) {
		t.Fatal("expected read fault")
	}
}

func TestMmapErrors(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.IsoBase)
	if err := s.Mmap(base+1, layout.PageSize); err == nil {
		t.Fatal("misaligned mmap must fail")
	}
	if err := s.Mmap(base, layout.PageSize+1); err == nil {
		t.Fatal("non-page-multiple mmap must fail")
	}
	if err := s.Mmap(base, layout.PageSize); err != nil {
		t.Fatal(err)
	}
	// Overlap rejected atomically: nothing new mapped.
	before := s.MappedPages()
	if err := s.Mmap(base-layout.PageSize, 3*layout.PageSize); err == nil {
		t.Fatal("overlapping mmap must fail")
	}
	if s.MappedPages() != before {
		t.Fatal("failed mmap leaked pages")
	}
	// Wraparound rejected.
	if err := s.Mmap(0xFFFF_F000, 2*layout.PageSize); err == nil {
		t.Fatal("wrapping mmap must fail")
	}
}

func TestMunmap(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.IsoBase)
	if err := s.Mmap(base, 4*layout.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Munmap(base+layout.PageSize, 2*layout.PageSize); err != nil {
		t.Fatal(err)
	}
	if s.IsMapped(base+layout.PageSize, 1) {
		t.Fatal("page still mapped after munmap")
	}
	if !s.IsMapped(base, layout.PageSize) || !s.IsMapped(base+3*layout.PageSize, layout.PageSize) {
		t.Fatal("munmap removed wrong pages")
	}
	if got := s.MappedBytes(); got != 2*layout.PageSize {
		t.Fatalf("MappedBytes = %d", got)
	}
	// Unmapping an unmapped page fails atomically.
	if err := s.Munmap(base, 2*layout.PageSize); err == nil {
		t.Fatal("munmap over hole must fail")
	}
	if !s.IsMapped(base, layout.PageSize) {
		t.Fatal("failed munmap removed a page")
	}
}

func TestRemapAfterUnmapIsZeroed(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.IsoBase)
	if err := s.Mmap(base, layout.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Store32(base, 0x12345678); err != nil {
		t.Fatal(err)
	}
	if err := s.Munmap(base, layout.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Mmap(base, layout.PageSize); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load32(base)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("remapped page not zeroed: %#x", v)
	}
}

func TestIsMappedEdges(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.IsoBase)
	if err := s.Mmap(base, layout.PageSize); err != nil {
		t.Fatal(err)
	}
	if !s.IsMapped(base, layout.PageSize) {
		t.Fatal("exact range should be mapped")
	}
	if s.IsMapped(base, layout.PageSize+1) {
		t.Fatal("range past mapping should not be mapped")
	}
	if !s.IsMapped(base+layout.PageSize-1, 1) {
		t.Fatal("last byte should be mapped")
	}
	if !s.IsMapped(base, 0) {
		t.Fatal("empty range is trivially mapped")
	}
	if s.IsMapped(0xFFFF_FFFF, 2) {
		t.Fatal("wrapping range is not mapped")
	}
}

func TestReadWriteProperty(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.IsoBase)
	if err := s.Mmap(base, 16*layout.PageSize); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		addr := base + Addr(off)
		if len(data) == 0 {
			return true
		}
		if int(off)+len(data) > 16*layout.PageSize {
			// The write overruns the mapping: it must fault and leave
			// the space untouched.
			return s.Write(addr, data) != nil
		}
		if err := s.Write(addr, data); err != nil {
			return false
		}
		got, err := s.ReadBytes(addr, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoad8Store8AndCString(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.DataBase)
	if err := s.Mmap(base, layout.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(base+5, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, err := s.Load8(base + 5)
	if err != nil || b != 0xAB {
		t.Fatalf("Load8 = %#x, %v", b, err)
	}
	if err := s.Write(base+16, append([]byte("hello"), 0)); err != nil {
		t.Fatal(err)
	}
	str, err := s.ReadCString(base+16, 100)
	if err != nil || str != "hello" {
		t.Fatalf("ReadCString = %q, %v", str, err)
	}
	if _, err := s.ReadCString(base+16, 3); err == nil {
		t.Fatal("unterminated string should error")
	}
}

func TestZero(t *testing.T) {
	s := NewSpace()
	base := Addr(layout.HeapBase)
	if err := s.Mmap(base, layout.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(base, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Zero(base+1, 3); err != nil {
		t.Fatal(err)
	}
	got, _ := s.ReadBytes(base, 5)
	if !bytes.Equal(got, []byte{1, 0, 0, 0, 5}) {
		t.Fatalf("Zero result = %v", got)
	}
}

func TestFaultErrorText(t *testing.T) {
	f := &Fault{Addr: 0xeeff0020, Op: OpRead, Why: "unmapped page"}
	want := "segmentation fault: read at 0xeeff0020 (unmapped page)"
	if f.Error() != want {
		t.Fatalf("Error() = %q, want %q", f.Error(), want)
	}
	if IsSegfault(&Fault{Op: OpMap}) {
		t.Fatal("mapping errors are not segfaults")
	}
}
