package progs

import (
	"testing"

	"repro/internal/isa"
)

func TestAllProgramsAssemble(t *testing.T) {
	im := NewImage()
	for _, name := range []string{
		"p1", "p2", "p2r", "p3", "p4", "p4m",
		"heapjunk", "pingpong", "pingpongdata", "pingpongreg",
		"allocone", "worker",
	} {
		if _, ok := im.EntryOf(name); !ok {
			t.Errorf("program %q missing from image", name)
		}
	}
	if im.CodeSize() == 0 {
		t.Fatal("empty image")
	}
}

func TestStringsLandInDataSegment(t *testing.T) {
	im := NewImage()
	data := string(im.DataImage())
	for _, s := range []string{
		"value = %d\n",
		"I am thread %p\n",
		"Initializing migration from node %d\n",
		"Arrived at node %d\n",
		"Element %d = %d\n",
	} {
		if !contains(data, s+"\x00") {
			t.Errorf("string %q not interned", s)
		}
	}
}

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func TestImageIsDeterministic(t *testing.T) {
	a, b := NewImage(), NewImage()
	if a.CodeSize() != b.CodeSize() {
		t.Fatal("code sizes differ")
	}
	for i := 0; i < a.CodeSize(); i++ {
		addr := isa.Addr(0x0040_0000 + i*isa.InstrBytes)
		ia, _ := a.InstrAt(addr)
		ib, _ := b.InstrAt(addr)
		if ia != ib {
			t.Fatalf("instruction %d differs: %v vs %v", i, ia, ib)
		}
	}
	da, db := a.DataImage(), b.DataImage()
	if string(da) != string(db) {
		t.Fatal("data images differ")
	}
}

// TestRegisterIntoExistingImage ensures All composes with user programs.
func TestRegisterIntoExistingImage(t *testing.T) {
	im := isa.NewImage()
	All(im)
	if _, ok := im.Program("p4"); !ok {
		t.Fatal("p4 missing")
	}
	// Double registration must fail loudly (duplicate program names).
	defer func() {
		if recover() == nil {
			t.Fatal("double registration should panic")
		}
	}()
	All(im)
}
