// Package progs holds the paper's example procedures (Figures 1–4 and 7)
// and the workload programs used by the benchmarks, written in the thread
// assembly and registered into a replicated SPMD image.
//
// Each source mirrors the corresponding C listing: locals live in stack
// frames (so they migrate with the stack), pointers are real simulated
// addresses, and the PM2 primitives are runtime builtins.
package progs

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// P1 is Figure 1: a local variable survives migration because it lives in
// the thread stack.
//
//	void p1() {
//	    int x;
//	    x = 1;
//	    pm2_printf("value = %d\n", x);
//	    pm2_migrate(marcel_self(), 1);
//	    pm2_printf("value = %d\n", x);
//	}
const P1 = `
.program p1
.string fmt "value = %d\n"
main:
    enter 4
    loadi r2, 1
    store [fp-4], r2        ; x = 1
    loadi r1, fmt
    load  r2, [fp-4]
    callb printf            ; value = 1 (on the source node)
    loadi r1, 1
    callb migrate           ; pm2_migrate(marcel_self(), 1)
    loadi r1, fmt
    load  r2, [fp-4]
    callb printf            ; value = 1 (on the destination node)
    leave
    halt
`

// P2 is Figure 2: a pointer to stack data. Transparent under iso-address
// migration; a segmentation fault under the relocation baseline, because
// ptr still holds the old stack address.
//
//	void p2() {
//	    int x;
//	    int *ptr = &x;
//	    x = 1;
//	    pm2_printf("value = %d\n", *ptr);
//	    pm2_migrate(marcel_self(), 1);
//	    pm2_printf("value = %d\n", *ptr);
//	}
const P2 = `
.program p2
.string fmt "value = %d\n"
main:
    enter 8                 ; x at fp-4, ptr at fp-8
    loadi r2, 1
    store [fp-4], r2        ; x = 1
    mov   r3, fp
    addi  r3, r3, -4
    store [fp-8], r3        ; ptr = &x
    load  r4, [fp-8]
    load  r2, [r4]          ; *ptr
    loadi r1, fmt
    callb printf
    loadi r1, 1
    callb migrate
    load  r4, [fp-8]        ; reload ptr from the (migrated) stack
    load  r2, [r4]          ; *ptr — address validity decides the outcome
    loadi r1, fmt
    callb printf
    leave
    halt
`

// P2R is Figure 3: the same procedure using the early-PM2 registered
// pointer interface, which makes the relocation baseline work at the cost
// of explicit declarations.
const P2R = `
.program p2r
.string fmt "value = %d\n"
main:
    enter 12                ; x at fp-4, ptr at fp-8, key at fp-12
    loadi r2, 1
    store [fp-4], r2        ; x = 1
    mov   r3, fp
    addi  r3, r3, -4
    store [fp-8], r3        ; ptr = &x
    mov   r1, fp
    addi  r1, r1, -8        ; &ptr
    callb register_ptr      ; key = pm2_register_pointer(&ptr)
    store [fp-12], r0
    load  r4, [fp-8]
    load  r2, [r4]
    loadi r1, fmt
    callb printf
    loadi r1, 1
    callb migrate
    load  r4, [fp-8]        ; ptr was patched by the post-migration pass
    load  r2, [r4]
    loadi r1, fmt
    callb printf
    load  r1, [fp-12]
    callb unregister_ptr
    leave
    halt
`

// P3 is Figure 4: malloc'd heap data does not follow the thread; the access
// after migration faults under every policy.
//
//	void p3() {
//	    int *t = (int *)malloc(100 * sizeof(int));
//	    t[10] = 1;
//	    pm2_printf("value = %d\n", t[10]);
//	    pm2_migrate(marcel_self(), 1);
//	    pm2_printf("value = %d\n", t[10]);
//	}
const P3 = `
.program p3
.string fmt "value = %d\n"
main:
    enter 4
    loadi r1, 400           ; 100 * sizeof(int)
    callb malloc
    store [fp-4], r0        ; t
    loadi r2, 1
    store [r0+40], r2       ; t[10] = 1
    load  r3, [fp-4]
    load  r2, [r3+40]
    loadi r1, fmt
    callb printf
    loadi r1, 1
    callb migrate
    load  r3, [fp-4]        ; t migrated with the stack...
    load  r2, [r3+40]       ; ...but the heap block did not: fault
    loadi r1, fmt
    callb printf
    leave
    halt
`

// P4 is Figure 7: build a linked list with pm2_isomalloc, traverse it,
// migrate at element 100 and keep traversing on the destination node. The
// element count is the thread argument (the paper uses 100000).
//
// List item layout: {int value; struct item *next;} — value at +0, next at
// +4.
const P4 = `
.program p4
.string fmt_thread "I am thread %p\n"
.string fmt_init   "Initializing migration from node %d\n"
.string fmt_arr    "Arrived at node %d\n"
.string fmt_elem   "Element %d = %d\n"
main:
    enter 16                ; head fp-4, j fp-8, ptr fp-12, n fp-16
    store [fp-16], r1       ; n = arg
    loadi r2, 0
    store [fp-4], r2        ; head = NULL
    load  r2, [fp-16]
    addi  r2, r2, -1
    store [fp-8], r2        ; j = n-1 (build downwards so the
                            ; prepended list reads 1, 3, 5, ...)
build:
    load  r2, [fp-8]
    loadi r3, 0
    blt   r2, r3, built
    loadi r1, 8             ; sizeof(item)
    callb isomalloc         ; ptr = pm2_isomalloc(8)
    load  r2, [fp-8]
    loadi r3, 2
    mul   r4, r2, r3
    addi  r4, r4, 1         ; j*2 + 1
    store [r0], r4          ; ptr->value
    load  r5, [fp-4]
    store [r0+4], r5        ; ptr->next = head
    store [fp-4], r0        ; head = ptr
    addi  r2, r2, -1
    store [fp-8], r2
    br    build
built:
    callb self_thread
    mov   r2, r0
    loadi r1, fmt_thread
    callb printf            ; I am thread %p
    loadi r2, 0
    store [fp-8], r2        ; j = 0
    load  r2, [fp-4]
    store [fp-12], r2       ; ptr = head
loop:
    load  r4, [fp-12]
    loadi r5, 0
    beq   r4, r5, done      ; while (ptr != NULL)
    load  r2, [fp-8]
    loadi r3, 100
    bne   r2, r3, print     ; if (j == 100) migrate
    callb self_node
    mov   r2, r0
    loadi r1, fmt_init
    callb printf            ; Initializing migration from node %d
    loadi r1, 1
    callb migrate
    callb self_node
    mov   r2, r0
    loadi r1, fmt_arr
    callb printf            ; Arrived at node %d
print:
    load  r2, [fp-8]        ; j
    load  r4, [fp-12]
    load  r3, [r4]          ; ptr->value
    loadi r1, fmt_elem
    callb printf            ; Element %d = %d
    load  r4, [fp-12]
    load  r4, [r4+4]        ; ptr = ptr->next
    store [fp-12], r4
    load  r2, [fp-8]
    addi  r2, r2, 1
    store [fp-8], r2
    br    loop
done:
    leave
    halt
`

// P4M is Figure 9: the same program with malloc instead of pm2_isomalloc.
// The list stays on the source node's heap; after migration the thread reads
// whatever the destination heap holds at those addresses.
const P4M = `
.program p4m
.string fmt_thread "I am thread %p\n"
.string fmt_init   "Initializing migration from node %d\n"
.string fmt_arr    "Arrived at node %d\n"
.string fmt_elem   "Element %d = %d\n"
main:
    enter 16
    store [fp-16], r1
    loadi r2, 0
    store [fp-4], r2
    load  r2, [fp-16]
    addi  r2, r2, -1
    store [fp-8], r2
build:
    load  r2, [fp-8]
    loadi r3, 0
    blt   r2, r3, built
    loadi r1, 8
    callb malloc            ; the only difference from p4
    load  r2, [fp-8]
    loadi r3, 2
    mul   r4, r2, r3
    addi  r4, r4, 1
    store [r0], r4
    load  r5, [fp-4]
    store [r0+4], r5
    store [fp-4], r0
    addi  r2, r2, -1
    store [fp-8], r2
    br    build
built:
    callb self_thread
    mov   r2, r0
    loadi r1, fmt_thread
    callb printf
    loadi r2, 0
    store [fp-8], r2
    load  r2, [fp-4]
    store [fp-12], r2
loop:
    load  r4, [fp-12]
    loadi r5, 0
    beq   r4, r5, done
    load  r2, [fp-8]
    loadi r3, 100
    bne   r2, r3, print
    callb self_node
    mov   r2, r0
    loadi r1, fmt_init
    callb printf
    loadi r1, 1
    callb migrate
    callb self_node
    mov   r2, r0
    loadi r1, fmt_arr
    callb printf
print:
    load  r2, [fp-8]
    load  r4, [fp-12]
    load  r3, [r4]          ; on node 1 this reads foreign heap memory
    loadi r1, fmt_elem
    callb printf
    load  r4, [fp-12]
    load  r4, [r4+4]
    store [fp-12], r4
    load  r2, [fp-8]
    addi  r2, r2, 1
    store [fp-8], r2
    br    loop
done:
    leave
    halt
`

// HeapJunk warms a node's heap the way a long-running process would: it
// allocates r1 bytes, fills them with a junk pattern, and frees the block.
// Used to reproduce Figure 9's garbage reads (the destination heap holds
// stale data at the list's addresses). The junk word 0x94DFD2E0 is the
// paper's own first garbage value: -1797270816.
const HeapJunk = `
.program heapjunk
main:
    enter 8
    store [fp-4], r1        ; size
    callb malloc
    store [fp-8], r0
    loadi r5, 0
    beq   r0, r5, done      ; malloc failed: nothing to do
    mov   r2, r0
    load  r3, [fp-4]
    add   r3, r2, r3        ; end
    loadi r4, 0x94DFD2E0
fill:
    bgeu  r2, r3, filled
    store [r2], r4
    addi  r2, r2, 4
    br    fill
filled:
    load  r1, [fp-8]
    callb free
done:
    leave
    halt
`

// PingPong migrates back and forth between nodes 0 and 1; the hop count is
// the thread argument. This is the paper's §5 migration measurement ("a
// thread ping-pong between two nodes").
const PingPong = `
.program pingpong
main:
    enter 4
    store [fp-4], r1        ; remaining hops
hop:
    load  r2, [fp-4]
    loadi r3, 0
    beq   r2, r3, done
    callb self_node
    loadi r3, 1
    sub   r1, r3, r0        ; dest = 1 - self
    callb migrate
    load  r2, [fp-4]
    addi  r2, r2, -1
    store [fp-4], r2
    br    hop
done:
    leave
    halt
`

// PingPongData is PingPong carrying r2 bytes of isomalloc'd private data:
// the ablation workload for migration cost versus payload size.
const PingPongData = `
.program pingpongdata
main:
    enter 8
    store [fp-4], r1        ; hops
    loadi r3, 0
    store [fp-8], r3        ; data = NULL
    beq   r2, r3, hop       ; no payload requested
    mov   r1, r2
    callb isomalloc
    store [fp-8], r0
hop:
    load  r2, [fp-4]
    loadi r3, 0
    beq   r2, r3, done
    callb self_node
    loadi r3, 1
    sub   r1, r3, r0        ; dest = 1 - self
    callb migrate
    load  r2, [fp-4]
    addi  r2, r2, -1
    store [fp-4], r2
    br    hop
done:
    load  r1, [fp-8]
    loadi r3, 0
    beq   r1, r3, out
    callb isofree
out:
    leave
    halt
`

// PingPongReg is the relocation-baseline ping-pong: before migrating it
// registers r2 user pointers (all aliases of one stack address), so every
// hop pays the post-migration pointer-update pass. The ablation workload
// for migration cost versus registered-pointer count (paper §2).
const PingPongReg = `
.program pingpongreg
main:
    enter 12                ; hops fp-4, count fp-8, ptrvar fp-12
    store [fp-4], r1
    store [fp-8], r2
    mov   r4, fp
    addi  r4, r4, -4
    store [fp-12], r4       ; ptrvar = &hops (a pointer into the stack)
reg:
    load  r3, [fp-8]
    loadi r5, 0
    beq   r3, r5, hop
    mov   r1, fp
    addi  r1, r1, -12       ; &ptrvar
    callb register_ptr
    load  r3, [fp-8]
    addi  r3, r3, -1
    store [fp-8], r3
    br    reg
hop:
    load  r2, [fp-4]
    loadi r3, 0
    beq   r2, r3, done
    callb self_node
    loadi r3, 1
    sub   r1, r3, r0
    callb migrate
    load  r2, [fp-4]
    addi  r2, r2, -1
    store [fp-4], r2
    br    hop
done:
    leave
    halt
`

// AllocOnce performs a single allocation of r1 bytes — with pm2_isomalloc
// when r2 is 0, with malloc when r2 is 1 — then exits. The Figure 11
// harness measures the allocation's virtual-time cost.
const AllocOnce = `
.program allocone
main:
    loadi r3, 1
    beq   r2, r3, usemalloc
    callb isomalloc
    halt
usemalloc:
    callb malloc
    halt
`

// Worker runs a compute loop of r1 iterations, yielding periodically; used
// by the load-balancing example and the stress tests as a migratable
// workload that keeps private isomalloc state.
const Worker = `
.program worker
.string fmt_done "worker %p finished on node %d\n"
main:
    enter 12                ; iters fp-4, acc-cell fp-8, i fp-12
    store [fp-4], r1
    loadi r1, 64
    callb isomalloc         ; private accumulator cell (migrates with us)
    store [fp-8], r0
    loadi r2, 0
    store [fp-12], r2
wtop:
    load  r2, [fp-12]
    load  r3, [fp-4]
    bge   r2, r3, wdone
    load  r4, [fp-8]
    load  r5, [r4]
    add   r5, r5, r2
    store [r4], r5          ; acc += i (through the isomalloc pointer)
    addi  r2, r2, 1
    store [fp-12], r2
    loadi r6, 63
    and   r7, r2, r6
    loadi r6, 0
    bne   r7, r6, wtop
    callb yield             ; let the scheduler rotate
    br    wtop
wdone:
    callb self_thread
    mov   r2, r0
    callb self_node
    mov   r3, r0
    loadi r1, fmt_done
    callb printf
    load  r1, [fp-8]
    callb isofree
    leave
    halt
`

// All registers every program above into the image.
func All(im *isa.Image) {
	for _, src := range []string{P1, P2, P2R, P3, P4, P4M, HeapJunk, PingPong, PingPongData, PingPongReg, AllocOnce, Worker} {
		asm.MustAssemble(im, src)
	}
}

// NewImage returns a fresh image with all example programs registered.
func NewImage() *isa.Image {
	im := isa.NewImage()
	All(im)
	return im
}
