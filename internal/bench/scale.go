package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/asm"
	"repro/internal/pm2"
	"repro/internal/progs"
)

// The kernel-scaling measurement behind `pm2bench -fig scale`: how many
// events per second the lane-decomposed kernel executes at
// 64/256/1024/4096 nodes, serially and on a worker pool. The workload
// is a ring of compute-and-hop threads — every thread spins locally,
// migrates to (self+1) mod nodes, and repeats — so every lane has
// private work between cross-lane messages and the conservative windows
// have real width. Each cluster size also runs a negotiation burst per
// gather strategy (the per-gather columns): ring-hop threads never
// negotiate, so the burst is what exercises the §4.4 protocol — and,
// since the lane-affine hint protocol, every gather runs under the
// parallel kernel too. Virtual quantities (events, migrations,
// negotiations, merged bytes, virtual time) are exact and identical at
// any worker count; they are what benchcheck gates. Wall-clock figures
// are the machine-dependent payoff and stay informational.

// ringHopSrc spins r2 iterations, hops to the next node round-robin,
// and repeats r1 times.
const ringHopSrc = `
.program ringhop
main:
    enter 8
    store [fp-4], r1        ; hops remaining
    store [fp-8], r2        ; spin per hop
loop:
    load  r3, [fp-8]
spin:
    loadi r4, 0
    beq   r3, r4, hop
    addi  r3, r3, -1
    br    spin
hop:
    load  r1, [fp-4]
    loadi r2, 0
    beq   r1, r2, done
    addi  r1, r1, -1
    store [fp-4], r1
    callb self_node
    addi  r1, r0, 1
    callb node_count
    mov   r2, r0
    mod   r1, r1, r2
    callb migrate
    br    loop
done:
    leave
    halt
`

// ScaleWorkerRun is one worker count's execution of a cluster's
// workload. Wall-clock and derived throughput are informational (they
// measure the machine); the virtual outcome is asserted identical to
// the serial run before the row is emitted.
type ScaleWorkerRun struct {
	Workers      int     `json:"workers"`
	WallMs       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is serial wall-clock over this run's wall-clock.
	Speedup float64 `json:"speedup"`
}

// ScaleGatherReport is one gather strategy's negotiation burst on one
// cluster size: a fresh cluster, eight initiators spread around the
// ring, each asking for a multi-slot run it cannot satisfy locally
// (round-robin striping owns every nodes-th slot, so any contiguous
// k ≥ 2 is remote). The virtual quantities are exact and identical at
// every worker count — the gate that pins "every gather composes with
// the parallel kernel" in CI; the per-worker runs are informational.
type ScaleGatherReport struct {
	Gather string `json:"gather"`
	Events uint64 `json:"events"`
	// Negotiations/Failures are the cluster's own §4.4 counters; a
	// burst that fails to negotiate would show up here, not silently
	// shrink the merge volume.
	Negotiations  int              `json:"negotiations"`
	Failures      int              `json:"failures"`
	MergedBytes   uint64           `json:"merged_bytes"`
	VirtualMicros float64          `json:"virtual_us"`
	Runs          []ScaleWorkerRun `json:"runs"`
}

// ScaleClusterReport is one cluster size's entry: the exact virtual
// quantities (CI-gated) and the per-worker wall-clock runs, plus one
// negotiation-burst row per gather strategy.
type ScaleClusterReport struct {
	Nodes   int `json:"nodes"`
	Threads int `json:"threads"`
	// Events is the total kernel events executed draining the workload —
	// an exact virtual quantity, identical at every worker count.
	Events        uint64              `json:"events"`
	Migrations    int                 `json:"migrations"`
	VirtualMicros float64             `json:"virtual_us"`
	Runs          []ScaleWorkerRun    `json:"runs"`
	Gathers       []ScaleGatherReport `json:"gathers,omitempty"`
}

// ScaleReport is the BENCH_scale.json schema. CI runs `pm2bench -fig
// scale -json` and benchcheck requires the virtual quantities to match
// ci/BENCH_scale.baseline.json exactly — they are deterministic event
// counts, not timings, so any drift is a kernel behavior change, not
// noise. EventsSlopePerNode summarizes how total kernel work grows with
// cluster size over the measured points.
type ScaleReport struct {
	Figure string `json:"figure"`
	Hops   int    `json:"hops"`
	Spin   int    `json:"spin"`
	// MaxProcs records runtime.GOMAXPROCS at measurement time. On a
	// single-core runner the worker pool cannot physically run lanes
	// concurrently, so wall-clock speedups are meaningless there — the
	// parity guarantee is carried entirely by the exact virtual
	// quantities. benchcheck reads this to decide how to present the
	// wall-clock columns; the virtual gate is unconditional.
	MaxProcs int `json:"maxprocs"`
	// EventsSlopePerNode is the least-squares slope of total events
	// against cluster size — the events/sec slope divides this by the
	// measured wall-clock, so the virtual slope is the gated part.
	EventsSlopePerNode float64              `json:"events_slope_per_node"`
	Clusters           []ScaleClusterReport `json:"clusters"`
}

// scaleThreads is the thread count for a given cluster size: one ring
// thread per two nodes keeps total virtual work linear in the cluster
// while leaving every other lane free to serve migrations in, so
// windows always have both busy and idle lanes.
func scaleThreads(nodes int) int {
	t := nodes / 2
	if t < 1 {
		t = 1
	}
	return t
}

// scaleCluster builds a cluster with the ring-hop workload queued:
// construction (image assembly, slot mmaps, thread creation) stays
// outside the timed region, which measures only the event drain.
func scaleCluster(nodes, workers, hops, spin int) *pm2.Cluster {
	im := progs.NewImage()
	asm.MustAssemble(im, ringHopSrc)
	c := pm2.New(pm2.Config{
		Nodes: nodes,
		// A larger quantum gives each kernel event more simulated
		// instructions, matching the profile of a compute-bound cluster
		// and giving the worker pool meaningful work per event.
		Quantum: 256,
		Workers: workers,
	}, im)
	threads := scaleThreads(nodes)
	for i := 0; i < threads; i++ {
		node := i % nodes
		c.At(node, func(n *pm2.Node) {
			entry, ok := c.Image().EntryOf("ringhop")
			if !ok {
				panic("bench: ringhop program missing")
			}
			th, err := n.Scheduler().Create(entry, uint32(hops))
			if err != nil {
				panic(err)
			}
			th.Regs.R[1] = uint32(hops)
			th.Regs.R[2] = uint32(spin)
			n.Kick()
		})
	}
	return c
}

// scaleRun drains the ring-hop workload on a fresh cluster and returns
// the exact virtual outcome plus the wall-clock the drain took.
func scaleRun(nodes, workers, hops, spin int) (events uint64, migrations int, virtualMicros float64, wall time.Duration) {
	c := scaleCluster(nodes, workers, hops, spin)
	start := time.Now()
	c.Run(0)
	wall = time.Since(start)
	st := c.Stats()
	return c.Engine().Steps(), st.Migrations, c.Now().Micros(), wall
}

// The negotiation burst: eight initiators spread around the ring each
// ask for a 3-slot contiguous run. Under round-robin striping a node
// owns every nodes-th slot, so a 3-run is never local and every request
// walks the full gather protocol (lock, gather, plan, buy, release).
const (
	scaleGatherInitiators = 8
	scaleGatherSlots      = 3
)

// scaleGatherRun drains one gather strategy's negotiation burst on a
// fresh cluster and returns the exact virtual outcome plus the
// wall-clock the drain took.
func scaleGatherRun(nodes, workers int, gather pm2.GatherMode) (events uint64, negos, fails int, merged uint64, virtualMicros float64, wall time.Duration) {
	c := pm2.New(pm2.Config{
		Nodes:   nodes,
		Quantum: 256,
		Workers: workers,
		Gather:  gather,
	}, progs.NewImage())
	inits := scaleGatherInitiators
	if inits > nodes {
		inits = nodes
	}
	for i := 0; i < inits; i++ {
		node := i * nodes / inits
		c.At(node, func(n *pm2.Node) {
			n.Negotiate(scaleGatherSlots, func(bool) {})
		})
	}
	start := time.Now()
	c.Run(0)
	wall = time.Since(start)
	st := c.Stats()
	return c.Engine().Steps(), st.Negotiations, st.NegotiationFailures,
		st.GatherMergedBytes, c.Now().Micros(), wall
}

// Scale measures the kernel at each cluster size under each worker
// count: the ring-hop drain, then one negotiation burst per requested
// gather strategy. The serial run of every workload is the reference:
// any worker count that produces different virtual quantities panics,
// so the report can never show a speedup bought with divergence.
func Scale(nodeCounts, workerCounts []int, hops, spin int, gathers []pm2.GatherMode) ScaleReport {
	rep := ScaleReport{Figure: "scale", Hops: hops, Spin: spin, MaxProcs: runtime.GOMAXPROCS(0)}
	var sx, sy, sxx, sxy float64
	for _, nodes := range nodeCounts {
		cl := ScaleClusterReport{Nodes: nodes, Threads: scaleThreads(nodes)}
		var serialWall time.Duration
		for i, workers := range workerCounts {
			events, migs, vus, wall := scaleRun(nodes, workers, hops, spin)
			if i == 0 {
				if workers != 1 {
					panic("bench: scale worker counts must start at 1 (the serial reference)")
				}
				cl.Events, cl.Migrations, cl.VirtualMicros = events, migs, vus
				serialWall = wall
			} else if events != cl.Events || migs != cl.Migrations || vus != cl.VirtualMicros {
				panic(fmt.Sprintf("bench: scale n=%d workers=%d diverged from serial: events %d/%d migrations %d/%d virtual %.3f/%.3f",
					nodes, workers, events, cl.Events, migs, cl.Migrations, vus, cl.VirtualMicros))
			}
			run := ScaleWorkerRun{Workers: workers, WallMs: float64(wall.Microseconds()) / 1000}
			if wall > 0 {
				run.EventsPerSec = float64(events) / wall.Seconds()
				run.Speedup = float64(serialWall) / float64(wall)
			}
			cl.Runs = append(cl.Runs, run)
		}
		for _, gm := range gathers {
			gr := ScaleGatherReport{Gather: gm.String()}
			var gatherSerialWall time.Duration
			for i, workers := range workerCounts {
				events, negos, fails, merged, vus, wall := scaleGatherRun(nodes, workers, gm)
				if i == 0 {
					gr.Events, gr.Negotiations, gr.Failures = events, negos, fails
					gr.MergedBytes, gr.VirtualMicros = merged, vus
					gatherSerialWall = wall
				} else if events != gr.Events || negos != gr.Negotiations || fails != gr.Failures ||
					merged != gr.MergedBytes || vus != gr.VirtualMicros {
					panic(fmt.Sprintf("bench: scale n=%d gather=%v workers=%d diverged from serial: events %d/%d negotiations %d/%d failures %d/%d merged %d/%d virtual %.3f/%.3f",
						nodes, gm, workers, events, gr.Events, negos, gr.Negotiations,
						fails, gr.Failures, merged, gr.MergedBytes, vus, gr.VirtualMicros))
				}
				run := ScaleWorkerRun{Workers: workers, WallMs: float64(wall.Microseconds()) / 1000}
				if wall > 0 {
					run.EventsPerSec = float64(events) / wall.Seconds()
					run.Speedup = float64(gatherSerialWall) / float64(wall)
				}
				gr.Runs = append(gr.Runs, run)
			}
			cl.Gathers = append(cl.Gathers, gr)
		}
		rep.Clusters = append(rep.Clusters, cl)
		sx += float64(nodes)
		sy += float64(cl.Events)
		sxx += float64(nodes) * float64(nodes)
		sxy += float64(nodes) * float64(cl.Events)
	}
	if n := float64(len(nodeCounts)); n >= 2 {
		rep.EventsSlopePerNode = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	}
	return rep
}
