package bench

import (
	"testing"

	"repro/internal/pm2"
)

// TestScaleDeterministic pins the scale figure's virtual quantities at
// small sizes: Scale itself asserts every worker count reproduces the
// serial run exactly (it panics on divergence) — for the ring-hop drain
// and for every gather burst — so a passing run is the identity proof;
// here we additionally require the workloads to exercise the kernel and
// the event count to scale linearly with the cluster.
func TestScaleDeterministic(t *testing.T) {
	gathers := []pm2.GatherMode{pm2.GatherSequential, pm2.GatherBatched, pm2.GatherTree, pm2.GatherDelta}
	rep := Scale([]int{8, 16}, []int{1, 2, 4}, 4, 200, gathers)
	if rep.MaxProcs < 1 {
		t.Errorf("MaxProcs = %d, want >= 1", rep.MaxProcs)
	}
	for _, cl := range rep.Clusters {
		if cl.Migrations != cl.Threads*rep.Hops {
			t.Errorf("n=%d: %d migrations, want threads*hops = %d", cl.Nodes, cl.Migrations, cl.Threads*rep.Hops)
		}
		if cl.Events == 0 {
			t.Errorf("n=%d: no events", cl.Nodes)
		}
		if len(cl.Gathers) != len(gathers) {
			t.Fatalf("n=%d: %d gather rows, want %d", cl.Nodes, len(cl.Gathers), len(gathers))
		}
		for _, g := range cl.Gathers {
			if g.Negotiations != scaleGatherInitiators || g.Failures != 0 {
				t.Errorf("n=%d %s: %d negotiations (%d failed), want %d clean",
					cl.Nodes, g.Gather, g.Negotiations, g.Failures, scaleGatherInitiators)
			}
			if g.MergedBytes == 0 || g.Events == 0 {
				t.Errorf("n=%d %s: merged %d bytes over %d events — burst did not gather",
					cl.Nodes, g.Gather, g.MergedBytes, g.Events)
			}
		}
	}
	// Thread count doubles with the cluster, so total events must too —
	// the linear slope the full figure reports at 64/256/1024.
	if got, want := rep.Clusters[1].Events, 2*rep.Clusters[0].Events; got != want {
		t.Errorf("events did not scale linearly: n=16 has %d, want %d (2× n=8)", got, want)
	}
}

// TestScaleWindowShape pins that the ring-hop workload actually
// decomposes into wide windows — the structural parallelism the figure
// measures. The schedule is deterministic, so the window accounting is
// an exact quantity: with one ring thread per two nodes and spin far
// longer than the horizon, every busy lane participates in every
// window.
func TestScaleWindowShape(t *testing.T) {
	c := scaleCluster(64, 8, 16, 2000)
	c.Run(0)
	ws := c.Engine().WindowStats()
	if ws.ParallelWindows == 0 {
		t.Fatal("no parallel windows formed")
	}
	mean := float64(ws.Participants) / float64(ws.ParallelWindows)
	if mean < 16 {
		t.Errorf("mean participants per window = %.1f, want >= 16 (of 32 busy lanes)", mean)
	}
	if ws.ParallelEvents+ws.SingleLaneWindows == 0 {
		t.Error("no events executed inside windows")
	}
}
