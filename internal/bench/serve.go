package bench

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/scenario/serve"
)

// ServeSLOBudgetMicros is the serving SLO the saturation analyzer holds
// every cohort to: worst per-cohort p99 end-to-end latency, in virtual
// microseconds. A rate point is sustainable only when the run drains
// within budget and meets this bound.
const ServeSLOBudgetMicros = 50_000

// ServeRateScales is the canonical saturation sweep: multiples of the
// base three-tenant arrival rate (~2.35 requests per virtual ms).
func ServeRateScales() []float64 {
	return []float64{1, 2, 4, 8, 12, 16, 24, 32}
}

// ServeCohortReport is one cohort's SLO summary at the base arrival
// rate — the per-tenant serving quality the CI report records.
type ServeCohortReport struct {
	Cohort         string  `json:"cohort"`
	Requests       int     `json:"requests"`
	PlacementP50Us float64 `json:"placement_p50_us"`
	PlacementP95Us float64 `json:"placement_p95_us"`
	PlacementP99Us float64 `json:"placement_p99_us"`
	EndToEndP50Us  float64 `json:"e2e_p50_us"`
	EndToEndP95Us  float64 `json:"e2e_p95_us"`
	EndToEndP99Us  float64 `json:"e2e_p99_us"`
}

// ServeSweepPoint is one rate point of the saturation sweep.
type ServeSweepPoint struct {
	RateScale float64 `json:"rate_scale"`
	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	// Saturated: the run was cut off by its step budget with work still
	// pending (only past-knee points run under a tightened budget).
	Saturated bool `json:"saturated"`
	// WorstP99Us is the worst per-cohort p99 end-to-end latency over
	// the requests that completed.
	WorstP99Us float64 `json:"worst_p99_us"`
	// Sustainable: drained within budget and WorstP99Us within the SLO.
	Sustainable bool `json:"sustainable"`
}

// ServeClusterReport is the serving figure for one cluster size: the
// per-cohort SLO at base rate plus the saturation sweep and its knee.
type ServeClusterReport struct {
	Nodes   int                 `json:"nodes"`
	Cohorts []ServeCohortReport `json:"cohorts"`
	Sweep   []ServeSweepPoint   `json:"sweep"`
	// KneeRateScale is the highest sustainable rate scale (0 when even
	// the base rate misses the SLO) — the throughput knee the CI gate
	// holds as a floor.
	KneeRateScale float64 `json:"knee_rate_scale"`
	// KneeThroughputPerMs is the completed requests per virtual
	// millisecond at the knee point.
	KneeThroughputPerMs float64 `json:"knee_throughput_per_ms"`
}

// ServeReport is the BENCH_serve.json schema. CI runs `pm2bench -fig
// serve -json` and `benchcheck` holds each cluster's knee against the
// committed ci/BENCH_serve.baseline.json as a floor — a knee that falls
// is a serving-capacity regression. Shared by pm2bench (writer) and
// benchcheck (gate) so a schema change is a compile-time event.
type ServeReport struct {
	Figure      string               `json:"figure"`
	Policy      string               `json:"policy"`
	Seed        uint64               `json:"seed"`
	SLOBudgetUs float64              `json:"slo_budget_us"`
	Clusters    []ServeClusterReport `json:"clusters"`
}

// serveRun replays the derived serving workload at one rate scale.
func serveRun(policy string, seed uint64, nodes int, scale float64, maxSteps int) (*scenario.Result, error) {
	sp := serve.DeriveSpec(seed, nodes)
	sp.RateScale = scale
	reqs, err := sp.Synthesize(nodes)
	if err != nil {
		return nil, err
	}
	res, err := scenario.Replay(scenario.Spec{
		Policy:         policy,
		Nodes:          nodes,
		Seed:           seed,
		MaxSteps:       maxSteps,
		AllowSaturated: true,
	}, reqs)
	if err != nil {
		return nil, err
	}
	if len(reqs) > 0 && len(res.Stats.CohortSamples) != len(reqs) {
		return nil, fmt.Errorf("bench: serve run recorded %d samples for %d requests", len(res.Stats.CohortSamples), len(reqs))
	}
	return res, nil
}

// worstP99 returns the worst per-cohort p99 end-to-end latency.
func worstP99(slos []scenario.CohortSLO) float64 {
	var worst float64
	for _, s := range slos {
		if s.EndToEnd.P99 > worst {
			worst = s.EndToEnd.P99
		}
	}
	return worst
}

// ServeFigure measures the serving workload on one cluster size: the
// per-cohort SLO at the base rate, then the ascending saturation sweep.
// The knee is the highest rate scale whose run drains and keeps every
// cohort's p99 end-to-end latency within ServeSLOBudgetMicros. Once a
// point misses the SLO the remaining (strictly worse) points run under
// a tightened step budget — twice the steps of the last sustainable
// point — so they cut off cheaply through the Saturated path instead of
// simulating a hopeless backlog to the end. Virtual steps are
// deterministic, so the cutoffs are too.
func ServeFigure(policy string, seed uint64, nodes int, scales []float64) (ServeClusterReport, error) {
	rep := ServeClusterReport{Nodes: nodes}

	base, err := serveRun(policy, seed, nodes, 1, 0)
	if err != nil {
		return rep, err
	}
	if base.Saturated {
		return rep, fmt.Errorf("bench: base-rate serve run saturated the default step budget")
	}
	if err := base.Verify(); err != nil {
		return rep, err
	}
	for _, s := range base.CohortSLOs() {
		rep.Cohorts = append(rep.Cohorts, ServeCohortReport{
			Cohort:         s.Cohort,
			Requests:       s.Requests,
			PlacementP50Us: s.Placement.P50,
			PlacementP95Us: s.Placement.P95,
			PlacementP99Us: s.Placement.P99,
			EndToEndP50Us:  s.EndToEnd.P50,
			EndToEndP95Us:  s.EndToEnd.P95,
			EndToEndP99Us:  s.EndToEnd.P99,
		})
	}

	pastKnee := false
	budget := 0 // 0 = the harness default
	var lastSustainableSteps uint64
	for _, scale := range scales {
		res, err := serveRun(policy, seed, nodes, scale, budget)
		if err != nil {
			return rep, err
		}
		slos := res.CohortSLOs()
		pt := ServeSweepPoint{RateScale: scale, Saturated: res.Saturated, WorstP99Us: worstP99(slos)}
		for _, s := range slos {
			pt.Requests += s.Requests
			pt.Completed += s.Completed
		}
		pt.Sustainable = !res.Saturated && pt.WorstP99Us <= ServeSLOBudgetMicros
		rep.Sweep = append(rep.Sweep, pt)
		if pt.Sustainable {
			rep.KneeRateScale = scale
			if virtMs := res.VirtualMicros / 1000; virtMs > 0 {
				rep.KneeThroughputPerMs = float64(pt.Completed) / virtMs
			}
			lastSustainableSteps = res.Steps
		} else if !pastKnee {
			pastKnee = true
			if lastSustainableSteps > 0 {
				budget = int(2 * lastSustainableSteps)
			}
		}
	}
	return rep, nil
}

// ServeSweep runs ServeFigure for each cluster size and assembles the
// BENCH_serve.json report.
func ServeSweep(policy string, seed uint64, nodeCounts []int) (ServeReport, error) {
	rep := ServeReport{
		Figure:      "serve",
		Policy:      policy,
		Seed:        seed,
		SLOBudgetUs: ServeSLOBudgetMicros,
	}
	for _, nodes := range nodeCounts {
		cl, err := ServeFigure(policy, seed, nodes, ServeRateScales())
		if err != nil {
			return rep, err
		}
		rep.Clusters = append(rep.Clusters, cl)
	}
	return rep, nil
}
