package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/pm2"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// FailoverRow is one point of the failover measurement: k threads
// resident on the victim node at its crash instant, evacuated to the
// survivors once the lease expires.
type FailoverRow struct {
	K int `json:"k"`
	// EvacLegacyMicros / EvacConvoyMicros is the evacuation makespan —
	// lease expiry (declaration) to the last evacuated thread thawed on
	// its survivor — under the paper-faithful copying charges versus the
	// zero-copy convoy pipeline (Config.Convoy).
	EvacLegacyMicros float64 `json:"evac_legacy_us"`
	EvacConvoyMicros float64 `json:"evac_convoy_us"`
	// ReclaimedSlots counts the dead rank's owned-free slots re-dealt to
	// the survivors; an exact protocol quantity, reported for context.
	ReclaimedSlots int `json:"reclaimed_slots"`
}

// FailoverReport is the BENCH_failover.json schema. CI runs `pm2bench
// -fig failover -json` and `benchcheck` compares the detection latency
// and the per-k evacuation makespans against the committed
// ci/BENCH_failover.baseline.json, failing the job on a regression
// beyond tolerance. Shared by pm2bench (writer) and benchcheck (gate)
// so a schema change is a compile-time event.
type FailoverReport struct {
	Figure string `json:"figure"`
	Nodes  int    `json:"nodes"`
	// DetectionMicros is the crash-to-declaration latency: the lease
	// period times Config.HeartbeatMisses, independent of k.
	DetectionMicros float64       `json:"detection_us"`
	Rows            []FailoverRow `json:"rows"`
}

// failoverCrashMicros / failoverTickMicros shape every failover run: the
// victim crashes at 1 ms, heartbeats tick every 1 ms, so with the
// default 2-miss lease the declaration lands at 3 ms of virtual time.
const (
	failoverCrashMicros = 1_000
	failoverTickMicros  = 1_000
)

// Failover measures fail-stop recovery on a 4-node cluster: for each k
// it stages k long-running workers on node 1, crashes the node under
// them, drives the heartbeat rounds until the lease expires, and reports
// the evacuation makespan with the convoy pipeline off and on. Every
// worker must finish on a survivor — a lost thread panics the
// measurement rather than skewing it.
func Failover(ks []int) FailoverReport {
	report := FailoverReport{Figure: "failover", Nodes: 4}
	for _, k := range ks {
		row := FailoverRow{K: k}
		for _, convoy := range []bool{false, true} {
			det, evac, reclaimed := failoverRun(k, convoy)
			if report.DetectionMicros == 0 {
				report.DetectionMicros = det
			} else if det != report.DetectionMicros {
				panic(fmt.Sprintf("bench: detection latency moved with k: %v vs %v µs", det, report.DetectionMicros))
			}
			if convoy {
				row.EvacConvoyMicros = evac
			} else {
				row.EvacLegacyMicros = evac
				row.ReclaimedSlots = reclaimed
			}
		}
		report.Rows = append(report.Rows, row)
	}
	return report
}

// failoverRun is one staged crash: k workers on the victim, lease-expiry
// detection via periodic heartbeat rounds, evacuation and reclaim.
// Returns the detection latency, the evacuation makespan (both µs) and
// the reclaimed slot count.
func failoverRun(k int, convoy bool) (detectionMicros, evacMicros float64, reclaimed int) {
	const victim = 1
	plan, err := fault.Parse(fmt.Sprintf("crash:%d@%d", victim, failoverCrashMicros))
	if err != nil {
		panic(fmt.Sprintf("bench: failover plan: %v", err))
	}
	c := pm2.New(pm2.Config{
		Nodes:  4,
		Dist:   core.Partition{}, // single-slot worker cells never negotiate
		Faults: plan,
		Convoy: convoy,
	}, progs.NewImage())
	for i := 0; i < k; i++ {
		c.Spawn(victim, "worker", 30_000)
	}
	// The heartbeat rounds a load balancer would drive: one ambient tick
	// per millisecond, enough of them to outlive any batch size.
	for i := 1; i <= 64; i++ {
		c.Engine().At(simtime.Time(i*failoverTickMicros)*simtime.Microsecond, c.HeartbeatTick)
	}
	c.Run(0)
	st := c.Stats()
	if st.Evacuations != 1 || st.EvacuatedThreads != k {
		panic(fmt.Sprintf("bench: failover k=%d convoy=%v: %d evacuations, %d threads evacuated",
			k, convoy, st.Evacuations, st.EvacuatedThreads))
	}
	if len(st.DetectionLatencies) != 1 || len(st.EvacuationLatencies) != k {
		panic(fmt.Sprintf("bench: failover k=%d convoy=%v: %d detection, %d evacuation samples",
			k, convoy, len(st.DetectionLatencies), len(st.EvacuationLatencies)))
	}
	var makespan simtime.Time
	for _, l := range st.EvacuationLatencies {
		if l > makespan {
			makespan = l
		}
	}
	return st.DetectionLatencies[0].Micros(), makespan.Micros(), st.ReclaimedSlots
}
