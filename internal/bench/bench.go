// Package bench is the shared experiment harness: one function per figure,
// table or in-text measurement of the paper's evaluation (§5), plus the
// ablations from DESIGN.md. Both cmd/pm2bench and the root benchmark suite
// call into it, so the printed tables and the testing.B metrics come from
// the same code paths.
//
// All measurements are in virtual microseconds from the calibrated cost
// model; runs are deterministic.
package bench

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/pm2"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// spawnWithRegs creates a thread on node 0 running prog with r1..r3 preset,
// before any instruction executes.
func spawnWithRegs(c *pm2.Cluster, prog string, r1, r2, r3 uint32) {
	entry, ok := c.Image().EntryOf(prog)
	if !ok {
		panic("bench: unknown program " + prog)
	}
	c.At(0, func(n *pm2.Node) {
		th, err := n.Scheduler().Create(entry, r1)
		if err != nil {
			panic(err)
		}
		th.Regs.R[1] = r1
		th.Regs.R[2] = r2
		th.Regs.R[3] = r3
		// kick happens through the public surface: posting again is
		// harmless, Create left the thread queued.
		n.Kick()
	})
}

// Fig11Row is one point of the Figure 11 sweep.
type Fig11Row struct {
	Size         uint32
	MallocMicros float64
	IsoMicros    float64
	Negotiated   bool // whether the isomalloc point required negotiation
}

// Fig11 measures the average allocation time of malloc and pm2_isomalloc
// for each size, on a cluster of the given node count with round-robin
// slots (the paper's configuration). Every trial runs on a fresh cluster so
// multi-slot isomalloc requests always face the round-robin worst case,
// exactly as in the paper's experiment.
func Fig11(sizes []uint32, trials, nodes int) []Fig11Row {
	rows := make([]Fig11Row, 0, len(sizes))
	for _, size := range sizes {
		row := Fig11Row{Size: size}
		for _, iso := range []bool{false, true} {
			var sum float64
			for trial := 0; trial < trials; trial++ {
				c := pm2.New(pm2.Config{
					Nodes:        nodes,
					Dist:         core.RoundRobin{},
					RecordAllocs: true,
				}, progs.NewImage())
				which := uint32(1) // malloc
				if iso {
					which = 0
				}
				spawnWithRegs(c, "allocone", size, which, 0)
				c.Run(0)
				samples := c.AllocSamples()
				if len(samples) != 1 || !samples[0].OK {
					panic(fmt.Sprintf("bench: fig11 size %d iso=%v: samples %+v", size, iso, samples))
				}
				sum += samples[0].Latency.Micros()
				if iso && c.Stats().Negotiations > 0 {
					row.Negotiated = true
				}
			}
			avg := sum / float64(trials)
			if iso {
				row.IsoMicros = avg
			} else {
				row.MallocMicros = avg
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// MigrationResult summarizes a ping-pong run.
type MigrationResult struct {
	Hops        int
	AvgMicros   float64
	WorstMicros float64
	BytesOnWire uint64
}

// MigrationPingPong reproduces the §5 measurement: a thread with no static
// data bounces between two nodes; the result is the average end-to-end
// migration latency (freeze → resume).
func MigrationPingPong(hops int, cfg pm2.Config) MigrationResult {
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	c := pm2.New(cfg, progs.NewImage())
	c.Spawn(0, "pingpong", uint32(hops))
	c.Run(0)
	return migrationResult(c, hops)
}

// MigrationWithPayload is the ablation: the thread carries payload bytes of
// isomalloc'd data on every hop.
func MigrationWithPayload(hops int, payload uint32, cfg pm2.Config) MigrationResult {
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	c := pm2.New(cfg, progs.NewImage())
	spawnWithRegs(c, "pingpongdata", uint32(hops), payload, 0)
	c.Run(0)
	return migrationResult(c, hops)
}

// convoyHoldSrc is the convoy workload: the thread isomallocs r1 bytes of
// private payload, writes a marker through the pointer, then yields on its
// birth node until a (convoy) migration lands it elsewhere — where it
// reads the marker back, frees the block and exits. The yield loop keeps
// the thread runnable (so it can be frozen into a convoy at any
// scheduling boundary) with a time-invariant stack image.
const convoyHoldSrc = `
.program convoyhold
.string fmt_done "convoy %u done on node %d\n"
main:
    enter 8
    store [fp-4], r1        ; payload size
    loadi r2, 0
    store [fp-8], r2        ; ptr = NULL
    beq   r1, r2, wait      ; no payload requested
    callb isomalloc
    store [fp-8], r0
    loadi r3, 4051
    store [r0], r3          ; marker through the iso pointer
wait:
    callb self_node
    loadi r2, 0
    bne   r0, r2, away      ; migrated off node 0: finish up
    callb yield
    br    wait
away:
    load  r1, [fp-8]
    loadi r2, 0
    beq   r1, r2, fin
    load  r3, [r1]          ; pointer integrity after the convoy
    callb isofree
fin:
    callb self_node
    mov   r3, r0
    load  r2, [fp-4]
    loadi r1, fmt_done
    callb printf
    leave
    halt
`

// ConvoyRow is one point of the convoy batching measurement: k threads,
// each carrying Payload bytes of isomalloc'd data, moved from node 0 to
// node 1 in one balancing decision — as k individual messages (the legacy
// path) versus one zero-copy convoy message.
type ConvoyRow struct {
	Payload uint32
	K       int
	// PerThreadLegacyMicros / PerThreadConvoyMicros is the makespan of
	// the whole batch (migration request to last thread resumed)
	// divided by k.
	PerThreadLegacyMicros float64
	PerThreadConvoyMicros float64
	// LegacyMessages / ConvoyMessages count the migration messages the
	// batch put on the wire (k versus 1).
	LegacyMessages uint64
	ConvoyMessages uint64
	// LegacyBytesPerThread / ConvoyBytesPerThread is the wire traffic of
	// the batch divided by k.
	LegacyBytesPerThread uint64
	ConvoyBytesPerThread uint64
}

// MigrationConvoy measures the convoy batching win: for each k it stages
// k convoyhold threads on node 0 of a two-node cluster (partitioned slot
// distribution, so staging never negotiates), waits for their payload
// allocations, then moves all of them to node 1 — per-thread messages
// with Config.Convoy off, one convoy with it on — and reports the
// per-thread makespan and wire cost of each scheme.
func MigrationConvoy(payload uint32, ks []int) []ConvoyRow {
	rows := make([]ConvoyRow, 0, len(ks))
	for _, k := range ks {
		row := ConvoyRow{Payload: payload, K: k}
		for _, convoy := range []bool{false, true} {
			perThread, msgs, bytes := convoyBatchRun(payload, k, convoy)
			if convoy {
				row.PerThreadConvoyMicros = perThread
				row.ConvoyMessages = msgs
				row.ConvoyBytesPerThread = bytes / uint64(k)
			} else {
				row.PerThreadLegacyMicros = perThread
				row.LegacyMessages = msgs
				row.LegacyBytesPerThread = bytes / uint64(k)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// convoyBatchRun stages and moves one batch, returning the per-thread
// makespan in microseconds plus the migration-phase message and byte
// counts.
func convoyBatchRun(payload uint32, k int, convoy bool) (perThreadMicros float64, msgs, bytes uint64) {
	im := progs.NewImage()
	asm.MustAssemble(im, convoyHoldSrc)
	c := pm2.New(pm2.Config{
		Nodes:        2,
		Dist:         core.Partition{},
		Convoy:       convoy,
		RecordAllocs: true,
	}, im)
	for i := 0; i < k; i++ {
		spawnWithRegs(c, "convoyhold", payload, 0, 0)
	}
	// Drive until every thread has its payload in place and is parked in
	// the yield loop (a zero payload allocates nothing — the snapshot
	// wait below is then the only staging barrier).
	for payload > 0 && len(c.AllocSamples()) < k {
		if !c.Engine().Step() {
			panic("bench: convoy staging drained early")
		}
	}
	var tids []uint32
	c.At(0, func(n *pm2.Node) {
		for _, t := range n.Scheduler().Snapshot() {
			tids = append(tids, t.TID)
		}
	})
	for len(tids) < k {
		if !c.Engine().Step() {
			panic("bench: convoy staging drained early")
		}
	}

	pre := c.Stats()
	t0 := c.Now()
	c.At(0, func(n *pm2.Node) {
		if convoy {
			if moved := n.MigrateBatch(tids, 1); moved != k {
				panic(fmt.Sprintf("bench: convoy moved %d of %d threads", moved, k))
			}
			return
		}
		for _, tid := range tids {
			if !n.Scheduler().RequestMigration(tid, 1) {
				panic("bench: thread vanished before migration")
			}
		}
	})
	for c.Stats().Migrations < k {
		if !c.Engine().Step() {
			panic("bench: batch never completed")
		}
	}
	makespan := c.Now() - t0
	c.Run(0) // drain: threads verify their marker and exit on node 1
	st := c.Stats()
	if st.Migrations != k {
		panic(fmt.Sprintf("bench: %d migrations, want %d", st.Migrations, k))
	}
	return (makespan / simtime.Time(k)).Micros(), st.Net.Messages - pre.Net.Messages, st.Net.Bytes - pre.Net.Bytes
}

// ConvoyReport is one batch size's entry in the BENCH_migration.json
// report (the CI-gated per-thread cost and wire bytes of the convoy
// path, with the legacy figures for context).
type ConvoyReport struct {
	K                     int     `json:"k"`
	PerThreadLegacyMicros float64 `json:"per_thread_legacy_us"`
	PerThreadConvoyMicros float64 `json:"per_thread_convoy_us"`
	ConvoyBytesPerThread  uint64  `json:"convoy_bytes_per_thread"`
}

// MigrationReport is the BENCH_migration.json schema. CI runs `pm2bench
// -fig migration -json` and `benchcheck` compares the ping-pong µs/hop
// and the convoy per-thread µs and bytes/thread against the committed
// ci/BENCH_migration.baseline.json, failing the job on a regression
// beyond tolerance. Shared by pm2bench (writer) and benchcheck (gate) so
// a schema change is a compile-time event.
type MigrationReport struct {
	Figure       string `json:"figure"`
	PayloadBytes uint32 `json:"payload_bytes"`
	// LegacyMicrosPerHop / ZeroCopyMicrosPerHop is the ping-pong
	// migration latency at PayloadBytes under the copying and the
	// scatter-gather pipeline.
	LegacyMicrosPerHop   float64        `json:"legacy_us_per_hop"`
	ZeroCopyMicrosPerHop float64        `json:"zerocopy_us_per_hop"`
	Convoy               []ConvoyReport `json:"convoy"`
}

// RelocationPingPong measures the §2 baseline with regPtrs registered user
// pointers: every hop pays the relocation fixup pass.
func RelocationPingPong(hops, regPtrs int) MigrationResult {
	c := pm2.New(pm2.Config{Nodes: 2, Policy: pm2.PolicyRelocate}, progs.NewImage())
	spawnWithRegs(c, "pingpongreg", uint32(hops), uint32(regPtrs), 0)
	c.Run(0)
	return migrationResult(c, hops)
}

func migrationResult(c *pm2.Cluster, hops int) MigrationResult {
	st := c.Stats()
	if st.Migrations != hops {
		panic(fmt.Sprintf("bench: %d migrations, want %d", st.Migrations, hops))
	}
	var sum, worst simtime.Time
	for _, l := range st.MigrationLatencies {
		sum += l
		if l > worst {
			worst = l
		}
	}
	return MigrationResult{
		Hops:        hops,
		AvgMicros:   (sum / simtime.Time(hops)).Micros(),
		WorstMicros: worst.Micros(),
		BytesOnWire: st.Net.Bytes,
	}
}

// NegotiationRow is one point of the negotiation scaling measurement.
type NegotiationRow struct {
	Nodes  int
	Micros float64
	// MergedBytes is the bitmap payload the gather participants folded
	// into global views during the measured negotiation(s) — 7 KB per
	// peer per round for the full-map gathers, delta words only for the
	// incremental gather.
	MergedBytes uint64
}

// NegotiationScaling measures the negotiation protocol cost for each
// cluster size: one multi-slot allocation on node 0 under round-robin slots
// (which guarantees the negotiation, §5), with the paper's sequential
// bitmap gather.
func NegotiationScaling(nodeCounts []int) []NegotiationRow {
	return NegotiationScalingGather(nodeCounts, pm2.GatherSequential)
}

// NegotiationScalingGather is NegotiationScaling under a chosen §4.4
// gather strategy, for the per-strategy slope comparison.
func NegotiationScalingGather(nodeCounts []int, gather pm2.GatherMode) []NegotiationRow {
	rows := make([]NegotiationRow, 0, len(nodeCounts))
	for _, p := range nodeCounts {
		c := pm2.New(pm2.Config{Nodes: p, Gather: gather}, progs.NewImage())
		spawnWithRegs(c, "allocone", 100_000, 0, 0)
		c.Run(0)
		st := c.Stats()
		if st.Negotiations != 1 {
			panic(fmt.Sprintf("bench: %d-node run negotiated %d times", p, st.Negotiations))
		}
		rows = append(rows, NegotiationRow{
			Nodes:       p,
			Micros:      st.NegotiationLatencies[0].Micros(),
			MergedBytes: st.GatherMergedBytes,
		})
	}
	return rows
}

// NegotiationScalingGatherWarm measures the steady-state negotiation
// cost: two successive multi-slot allocations by the same thread (the
// remedy workload with two iterations), reporting the latency of the
// second negotiation and the bytes merged across both. Under the
// full-map gathers both negotiations cost the same; under the delta
// gather the first pays full maps (first contact) and the second ships
// only the words the first round dirtied — the per-node slope of this
// measurement is the delta gather's headline.
func NegotiationScalingGatherWarm(nodeCounts []int, gather pm2.GatherMode) []NegotiationRow {
	rows := make([]NegotiationRow, 0, len(nodeCounts))
	for _, p := range nodeCounts {
		im := progs.NewImage()
		asm.MustAssemble(im, remedySrc)
		c := pm2.New(pm2.Config{Nodes: p, Gather: gather}, im)
		c.Spawn(0, "remedyalloc", 2)
		c.Run(0)
		st := c.Stats()
		if st.Negotiations != 2 || len(st.NegotiationLatencies) != 2 {
			panic(fmt.Sprintf("bench: %d-node warm run negotiated %d times", p, st.Negotiations))
		}
		rows = append(rows, NegotiationRow{
			Nodes:       p,
			Micros:      st.NegotiationLatencies[1].Micros(),
			MergedBytes: st.GatherMergedBytes,
		})
	}
	return rows
}

// GatherReport is one gather strategy's entry in the
// BENCH_negotiation.json report: the cold and warm per-node slopes
// (the CI-gated figures) plus the merged bitmap bytes at the largest
// measured cluster. Shared by pm2bench (writer) and benchcheck
// (gate) so a schema change is a compile-time event, not a silently
// neutralized gate.
type GatherReport struct {
	ColdSlopeMicrosPerNode float64 `json:"cold_slope_us_per_node"`
	WarmSlopeMicrosPerNode float64 `json:"warm_slope_us_per_node"`
	ColdMergedBytes        uint64  `json:"cold_merged_bytes"`
	WarmMergedBytes        uint64  `json:"warm_merged_bytes"`
}

// NegotiationReport is the BENCH_negotiation.json schema. CI runs
// `pm2bench -fig negotiation -json` and `benchcheck` compares the
// slopes against the committed ci/BENCH_negotiation.baseline.json,
// failing the job on a regression beyond tolerance.
type NegotiationReport struct {
	Figure  string                  `json:"figure"`
	Nodes   []int                   `json:"nodes"`
	Gathers map[string]GatherReport `json:"gathers"`
}

// ContentionRow is one point of the arbiter contention measurement.
type ContentionRow struct {
	Arbiter    string
	Nodes      int
	Initiators int
	// Succeeded / Retries / VersionDeclines describe the protocol work;
	// MakespanMicros is the virtual time until the last negotiation
	// completed, and ThroughputPerMs the successful negotiations per
	// virtual millisecond of that makespan.
	Succeeded       int
	Retries         int
	VersionDeclines int
	MakespanMicros  float64
	ThroughputPerMs float64
	// P50/P95/P99 are nearest-rank percentiles over the successful
	// negotiation latencies, in microseconds.
	P50, P95, P99 float64
}

// Contention measures the negotiation protocol under concurrent
// initiators: m nodes (evenly spread over the cluster) each start a
// 3-slot negotiation in the same instant, once per arbiter scheme. The
// global arbiter serializes all of them through the node-0 lock, so its
// makespan grows with m; the sharded and optimistic arbiters let
// disjoint negotiations overlap — the figure the decentralized
// arbiters exist for.
func Contention(nodes, m int, arbiters []pm2.ArbiterMode, gather pm2.GatherMode) []ContentionRow {
	if m > nodes {
		m = nodes
	}
	rows := make([]ContentionRow, 0, len(arbiters))
	for _, arb := range arbiters {
		c := pm2.New(pm2.Config{Nodes: nodes, Gather: gather, Arbiter: arb}, progs.NewImage())
		succeeded := 0
		for i := 0; i < m; i++ {
			// Spread the initiators over the ranks so their home regions
			// (and shard sets) are representative, not adjacent.
			id := i * nodes / m
			c.At(id, func(n *pm2.Node) {
				n.Negotiate(3, func(ok bool) {
					if ok {
						succeeded++
					}
				})
			})
		}
		c.Run(0)
		st := c.Stats()
		row := ContentionRow{
			Arbiter:         arb.String(),
			Nodes:           nodes,
			Initiators:      m,
			Succeeded:       succeeded,
			Retries:         st.NegotiationRetries,
			VersionDeclines: st.VersionDeclines,
			MakespanMicros:  c.Now().Micros(),
		}
		if row.MakespanMicros > 0 {
			row.ThroughputPerMs = float64(succeeded) / (row.MakespanMicros / 1000)
		}
		// The shared nearest-rank helper (pm2.NearestRank): one percentile
		// implementation across the bench tables, the scenario harness and
		// the cohort SLO accounting.
		pct := pm2.NearestRank(st.NegotiationLatencies)
		row.P50, row.P95, row.P99 = pct.P50, pct.P95, pct.P99
		rows = append(rows, row)
	}
	return rows
}

// SlopeMicrosPerNode least-squares-fits cost against cluster size over
// the measured rows: the per-extra-node cost of the gather strategy (the
// paper's "+165 µs per extra node" for the sequential gather).
func SlopeMicrosPerNode(rows []NegotiationRow) float64 {
	if len(rows) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, r := range rows {
		x, y := float64(r.Nodes), r.Micros
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(rows))
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// ThreadCreate measures the average virtual cost of creating (and
// destroying) a thread: one slot acquisition plus descriptor and stack
// initialization — a purely local operation (§4.1).
func ThreadCreate(n int, cfg pm2.Config) (avgCreateMicros float64) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	c := pm2.New(cfg, progs.NewImage())
	entry, _ := c.Image().EntryOf("pingpong") // any program; threads exit at once with 0 hops
	var total float64
	done := false
	c.At(0, func(node *pm2.Node) {
		for i := 0; i < n; i++ {
			t0 := node.Actor().Now()
			th, err := node.Scheduler().Create(entry, 0)
			if err != nil {
				panic(err)
			}
			total += (node.Actor().Now() - t0).Micros()
			_ = th
		}
		node.Kick()
		done = true
	})
	for !done && c.Engine().Step() {
	}
	c.Run(0)
	return total / float64(n)
}

// DistRow is one row of the distribution ablation.
type DistRow struct {
	Dist         string
	Negotiations int
	AvgNegMicros float64
	TotalMicros  float64
}

// DistributionAblation runs the same multi-slot allocation workload under
// each slot distribution (paper §4.1: the initial distribution decides how
// often multi-slot requests go global).
func DistributionAblation(dists []core.Distribution, allocs, nodes int) []DistRow {
	rows := make([]DistRow, 0, len(dists))
	for _, d := range dists {
		c := pm2.New(pm2.Config{Nodes: nodes, Dist: d}, progs.NewImage())
		// One thread per allocation so each faces the initial state of
		// its node's bitmap evolution.
		for i := 0; i < allocs; i++ {
			spawnWithRegs(c, "allocone", 150_000, 0, 0)
		}
		c.Run(0)
		st := c.Stats()
		row := DistRow{Dist: d.Name(), Negotiations: st.Negotiations, TotalMicros: c.Now().Micros()}
		var sum simtime.Time
		for _, l := range st.NegotiationLatencies {
			sum += l
		}
		if st.Negotiations > 0 {
			row.AvgNegMicros = (sum / simtime.Time(st.Negotiations)).Micros()
		}
		rows = append(rows, row)
	}
	return rows
}

// CacheRow is one row of the slot-cache ablation.
type CacheRow struct {
	Label           string
	AvgCreateMicros float64
	Mmaps           uint64
	CacheHits       uint64
}

// SlotCacheAblation measures thread create/destroy churn with and without
// the mmapped-slot cache (the paper's §6 optimization).
func SlotCacheAblation(churn int) []CacheRow {
	out := make([]CacheRow, 0, 2)
	for _, withCache := range []bool{true, false} {
		cfg := pm2.Config{Nodes: 1}
		if !withCache {
			cfg.NoCache = true
		}
		c := pm2.New(cfg, progs.NewImage())
		entry, _ := c.Image().EntryOf("pingpong")
		var total float64
		for i := 0; i < churn; i++ {
			created := false
			c.At(0, func(node *pm2.Node) {
				t0 := node.Actor().Now()
				if _, err := node.Scheduler().Create(entry, 0); err != nil {
					panic(err)
				}
				total += (node.Actor().Now() - t0).Micros()
				node.Kick()
				created = true
			})
			for !created && c.Engine().Step() {
			}
			// Drain: the thread exits and its slot is released —
			// into the cache when enabled, munmapped otherwise —
			// so the next creation sees the steady-state path.
			c.Run(0)
		}
		st := c.Node(0).Slots().Stats()
		label := "cache=8"
		if !withCache {
			label = "cache=off"
		}
		out = append(out, CacheRow{
			Label:           label,
			AvgCreateMicros: total / float64(churn),
			Mmaps:           st.Mmaps,
			CacheHits:       st.CacheHits,
		})
	}
	return out
}

// PackRow is one row of the pack-mode ablation.
type PackRow struct {
	Mode        string
	Elements    int
	AvgMicros   float64
	BytesOnWire uint64
}

// PackModeAblation migrates the Figure 7 list thread under both packing
// modes for each list size: used-blocks packing ships only live data (§6),
// whole-slot packing ships every slot byte.
func PackModeAblation(elementCounts []int) []PackRow {
	var rows []PackRow
	for _, mode := range []pm2.PackMode{pm2.PackUsed, pm2.PackWhole} {
		for _, n := range elementCounts {
			c := pm2.New(pm2.Config{Nodes: 2, Pack: mode}, progs.NewImage())
			c.Spawn(0, "p4", uint32(n))
			c.Run(0)
			st := c.Stats()
			if st.Migrations != 1 {
				panic("bench: pack ablation expected exactly one migration")
			}
			rows = append(rows, PackRow{
				Mode:        mode.String(),
				Elements:    n,
				AvgMicros:   st.MigrationLatencies[0].Micros(),
				BytesOnWire: st.Net.Bytes,
			})
		}
	}
	return rows
}

// RemedyRow is one row of the §4.4 remedies ablation: what pre-buying or a
// global defragmentation does to the negotiation count of a multi-slot
// allocation sequence.
type RemedyRow struct {
	Remedy       string
	Negotiations int
	TotalMicros  float64
}

// remedySrc performs `arg` successive ~2-slot allocations.
const remedySrc = `
.program remedyalloc
main:
    enter 4
    store [fp-4], r1
top:
    load  r2, [fp-4]
    loadi r3, 0
    beq   r2, r3, done
    loadi r1, 100000
    callb isomalloc
    load  r2, [fp-4]
    addi  r2, r2, -1
    store [fp-4], r2
    br    top
done:
    leave
    halt
`

// RemediesAblation compares plain round-robin against the paper's §4.4
// remedies: pre-buying during the first negotiation, and a global
// defragmentation before the workload.
func RemediesAblation(allocs, nodes int) []RemedyRow {
	run := func(remedy string) RemedyRow {
		im := progs.NewImage()
		asm.MustAssemble(im, remedySrc)
		cfg := pm2.Config{Nodes: nodes}
		if remedy == "pre-buy:8" {
			cfg.PreBuySlots = 8
		}
		c := pm2.New(cfg, im)
		if remedy == "defragment" {
			c.DefragmentSync(0)
		}
		c.Spawn(0, "remedyalloc", uint32(allocs))
		c.Run(0)
		return RemedyRow{
			Remedy:       remedy,
			Negotiations: c.Stats().Negotiations,
			TotalMicros:  c.Now().Micros(),
		}
	}
	return []RemedyRow{run("none"), run("pre-buy:8"), run("defragment")}
}

// RegPtrRow is one row of the registered-pointer ablation.
type RegPtrRow struct {
	Pointers    int
	IsoMicros   float64 // iso-address migration: flat, no fixups
	RelocMicros float64 // relocation baseline: grows with pointer count
}

// RegisteredPointerAblation compares migration cost as a function of the
// number of (registered) user pointers: the iso-address scheme never looks
// at them, the relocation baseline patches each one.
func RegisteredPointerAblation(counts []int, hops int) []RegPtrRow {
	rows := make([]RegPtrRow, 0, len(counts))
	iso := MigrationPingPong(hops, pm2.Config{Nodes: 2})
	for _, k := range counts {
		reloc := RelocationPingPong(hops, k)
		rows = append(rows, RegPtrRow{
			Pointers:    k,
			IsoMicros:   iso.AvgMicros,
			RelocMicros: reloc.AvgMicros,
		})
	}
	return rows
}
