package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pm2"
)

// TestFig11Shape validates the qualitative content of Figure 11: both
// curves grow with size, isomalloc carries a roughly constant overhead for
// multi-slot requests (the negotiation), and that overhead becomes
// insignificant relative to the total for large blocks.
func TestFig11Shape(t *testing.T) {
	rows := Fig11([]uint32{4 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}, 1, 2)
	for i := 1; i < len(rows); i++ {
		if rows[i].MallocMicros <= rows[i-1].MallocMicros {
			t.Errorf("malloc curve not increasing at %d bytes", rows[i].Size)
		}
		if rows[i].IsoMicros <= rows[i-1].IsoMicros {
			t.Errorf("isomalloc curve not increasing at %d bytes", rows[i].Size)
		}
	}
	// Single-slot requests: no negotiation, overhead small.
	small := rows[0]
	if small.Negotiated {
		t.Error("4 KB allocation should not negotiate")
	}
	// Multi-slot requests negotiate under 2-node round-robin.
	big := rows[len(rows)-1]
	if !big.Negotiated {
		t.Error("4 MB allocation must negotiate under round-robin")
	}
	// Overhead ≈ negotiation cost: a few hundred µs, roughly constant.
	for _, r := range rows[2:] {
		over := r.IsoMicros - r.MallocMicros
		if over < 100 || over > 900 {
			t.Errorf("size %d: isomalloc overhead %.1f µs out of expected negotiation range", r.Size, over)
		}
	}
	// And insignificant for large allocations (paper: "for large
	// allocations, this overhead is small and rather insignificant").
	if frac := (big.IsoMicros - big.MallocMicros) / big.MallocMicros; frac > 0.05 {
		t.Errorf("4 MB overhead fraction %.3f, want < 5%%", frac)
	}
}

func TestMigrationBench(t *testing.T) {
	r := MigrationPingPong(20, pm2.Config{})
	if r.AvgMicros <= 0 || r.AvgMicros >= 75 {
		t.Fatalf("avg migration %v µs", r.AvgMicros)
	}
	// Payload increases cost monotonically.
	r8k := MigrationWithPayload(10, 8<<10, pm2.Config{})
	r32k := MigrationWithPayload(10, 32<<10, pm2.Config{})
	if !(r.AvgMicros < r8k.AvgMicros && r8k.AvgMicros < r32k.AvgMicros) {
		t.Fatalf("payload scaling broken: %v %v %v", r.AvgMicros, r8k.AvgMicros, r32k.AvgMicros)
	}
}

// TestRelocationCrossover documents the honest comparison with the §2
// baseline: with zero registered pointers the relocation scheme is slightly
// cheaper per hop (the destination reuses a pooled local slot instead of
// mapping a dictated address), but its cost grows linearly with the number
// of pointers to patch while iso-address migration stays flat — and it is
// not transparent (Figure 2). The crossover sits at a few dozen pointers.
func TestRelocationCrossover(t *testing.T) {
	iso := MigrationPingPong(10, pm2.Config{})
	rel0 := RelocationPingPong(10, 0)
	rel64 := RelocationPingPong(10, 64)
	rel256 := RelocationPingPong(10, 256)
	if rel64.AvgMicros <= rel0.AvgMicros || rel256.AvgMicros <= rel64.AvgMicros {
		t.Errorf("registered pointers should add cost: %v %v %v",
			rel0.AvgMicros, rel64.AvgMicros, rel256.AvgMicros)
	}
	if rel256.AvgMicros <= iso.AvgMicros {
		t.Errorf("with 256 pointers relocation (%v µs) must exceed iso (%v µs)",
			rel256.AvgMicros, iso.AvgMicros)
	}
}

func TestNegotiationScalingBench(t *testing.T) {
	rows := NegotiationScaling([]int{2, 4})
	if rows[0].Micros <= 0 || rows[1].Micros <= rows[0].Micros {
		t.Fatalf("rows = %+v", rows)
	}
}

// TestWarmDeltaSlopeBelowBatched pins the delta gather's headline: on
// the steady-state measurement (second negotiation by the same
// initiator) its per-node slope must sit strictly below the batched
// gather's, and its warm rounds must merge only delta bytes instead of
// a full map per peer.
func TestWarmDeltaSlopeBelowBatched(t *testing.T) {
	counts := []int{4, 8, 16}
	bat := NegotiationScalingGatherWarm(counts, pm2.GatherBatched)
	del := NegotiationScalingGatherWarm(counts, pm2.GatherDelta)
	batSlope, delSlope := SlopeMicrosPerNode(bat), SlopeMicrosPerNode(del)
	if delSlope <= 0 || delSlope >= batSlope {
		t.Fatalf("warm delta slope %.1f µs/node not strictly below batched %.1f", delSlope, batSlope)
	}
	// Both negotiations under batched merge full maps; delta pays full
	// maps once (first contact) and words after that.
	last := len(counts) - 1
	if del[last].MergedBytes >= bat[last].MergedBytes*3/4 {
		t.Fatalf("delta merged %d bytes, not well below batched's %d",
			del[last].MergedBytes, bat[last].MergedBytes)
	}
}

func TestThreadCreateBench(t *testing.T) {
	avg := ThreadCreate(50, pm2.Config{})
	if avg <= 0 || avg > 200 {
		t.Fatalf("thread create avg %v µs", avg)
	}
}

func TestDistributionAblation(t *testing.T) {
	rows := DistributionAblation([]core.Distribution{
		core.RoundRobin{}, core.BlockCyclic{K: 16}, core.Partition{},
	}, 3, 4)
	if rows[0].Negotiations == 0 {
		t.Error("round-robin must negotiate for multi-slot allocations")
	}
	if rows[1].Negotiations != 0 || rows[2].Negotiations != 0 {
		t.Errorf("block-cyclic/partition should stay local: %+v", rows)
	}
	if rows[0].TotalMicros <= rows[1].TotalMicros {
		t.Error("negotiations should cost virtual time")
	}
}

func TestSlotCacheAblation(t *testing.T) {
	rows := SlotCacheAblation(40)
	var with, without CacheRow
	for _, r := range rows {
		if r.Label == "cache=8" {
			with = r
		} else {
			without = r
		}
	}
	if with.CacheHits == 0 || without.CacheHits != 0 {
		t.Fatalf("cache hits: %+v", rows)
	}
	if with.Mmaps >= without.Mmaps {
		t.Fatalf("cache should save mmaps: %+v", rows)
	}
	if with.AvgCreateMicros >= without.AvgCreateMicros {
		t.Fatalf("cache should make creation cheaper: %+v", rows)
	}
}

func TestPackModeAblation(t *testing.T) {
	rows := PackModeAblation([]int{200, 2000})
	byKey := map[string]PackRow{}
	for _, r := range rows {
		byKey[r.Mode+string(rune('0'+r.Elements/200))] = r
	}
	used := byKey["used-blocks1"]
	whole := byKey["whole-slot1"]
	if used.BytesOnWire >= whole.BytesOnWire {
		t.Fatalf("used-blocks should ship fewer bytes: %+v vs %+v", used, whole)
	}
	if used.AvgMicros >= whole.AvgMicros {
		t.Fatalf("used-blocks should migrate faster: %+v vs %+v", used, whole)
	}
}

func TestRegisteredPointerAblation(t *testing.T) {
	rows := RegisteredPointerAblation([]int{0, 16, 64}, 6)
	for i := 1; i < len(rows); i++ {
		if rows[i].RelocMicros <= rows[i-1].RelocMicros {
			t.Errorf("relocation cost should grow with pointers: %+v", rows)
		}
		if rows[i].IsoMicros != rows[0].IsoMicros {
			t.Errorf("iso cost must not depend on pointer count: %+v", rows)
		}
	}
}

// TestContentionDecentralizedArbitersWin pins the point of the arbiter
// abstraction: at 16 nodes with 4+ concurrent initiators, the sharded
// and optimistic arbiters must beat the global lock's throughput — the
// global arbiter serializes every negotiation through node 0, the
// decentralized ones let disjoint purchases overlap.
func TestContentionDecentralizedArbitersWin(t *testing.T) {
	arbs := []pm2.ArbiterMode{pm2.ArbiterGlobal, pm2.ArbiterSharded, pm2.ArbiterOptimistic}
	for _, m := range []int{4, 8} {
		rows := Contention(16, m, arbs, pm2.GatherBatched)
		byName := map[string]ContentionRow{}
		for _, r := range rows {
			if r.Succeeded != m {
				t.Fatalf("%s at m=%d: %d of %d negotiations succeeded", r.Arbiter, m, r.Succeeded, m)
			}
			byName[r.Arbiter] = r
		}
		global := byName["global"]
		for _, name := range []string{"sharded", "optimistic"} {
			if got := byName[name]; got.ThroughputPerMs <= global.ThroughputPerMs {
				t.Errorf("m=%d: %s throughput %.2f/ms does not beat global %.2f/ms",
					m, name, got.ThroughputPerMs, global.ThroughputPerMs)
			}
		}
	}
}

// TestMigrationConvoySubLinear pins the convoy acceptance property: for
// every measured batch size the convoy's per-thread cost undercuts k
// individual messages, the advantage comes with one message instead of k,
// and per-thread cost keeps falling as the batch grows (the header,
// overhead and wire-latency terms amortize — sub-linear total cost).
func TestMigrationConvoySubLinear(t *testing.T) {
	rows := MigrationConvoy(64<<10, []int{2, 4, 8})
	for i, r := range rows {
		if r.PerThreadConvoyMicros >= r.PerThreadLegacyMicros {
			t.Errorf("k=%d: convoy %.1f µs/thread not below %.1f legacy",
				r.K, r.PerThreadConvoyMicros, r.PerThreadLegacyMicros)
		}
		if r.ConvoyMessages != 1 {
			t.Errorf("k=%d: convoy used %d messages, want 1", r.K, r.ConvoyMessages)
		}
		if r.LegacyMessages != uint64(r.K) {
			t.Errorf("k=%d: legacy used %d messages, want %d", r.K, r.LegacyMessages, r.K)
		}
		if i > 0 && r.PerThreadConvoyMicros >= rows[i-1].PerThreadConvoyMicros {
			t.Errorf("k=%d: per-thread convoy cost %.1f µs did not fall from %.1f at k=%d",
				r.K, r.PerThreadConvoyMicros, rows[i-1].PerThreadConvoyMicros, rows[i-1].K)
		}
	}
}

// TestZeroCopyMigrationBench checks the pipeline through the public bench
// entry points: the zero-copy ping-pong beats the copying path by the
// gated 30% at a one-slot payload, and the no-payload headline stays
// under the paper's 75 µs under both pipelines.
func TestZeroCopyMigrationBench(t *testing.T) {
	legacy := MigrationWithPayload(20, 64<<10, pm2.Config{})
	zc := MigrationWithPayload(20, 64<<10, pm2.Config{Convoy: true})
	if reduction := 1 - zc.AvgMicros/legacy.AvgMicros; reduction < 0.30 {
		t.Fatalf("zero-copy reduction %.1f%% below 30%% (legacy %.1f, zero-copy %.1f µs)",
			100*reduction, legacy.AvgMicros, zc.AvgMicros)
	}
	if r := MigrationPingPong(20, pm2.Config{Convoy: true}); r.AvgMicros <= 0 || r.AvgMicros >= 75 {
		t.Fatalf("zero-copy null migration %v µs", r.AvgMicros)
	}
}
