package bench

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/pm2"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// PartitionRow is one point of the partial-failure measurement: k
// concurrent negotiations launched while one rank is partitioned away,
// each forced to abandon the unreachable peer at its RPC deadline and
// plan around its slots.
type PartitionRow struct {
	K int `json:"k"`
	// RPCTimeouts counts the deadline expiries the k negotiations (and
	// any ambient protocol traffic) burned routing around the victim.
	RPCTimeouts int `json:"rpc_timeouts"`
	// NegotiationMicros is the negotiation makespan: the slowest of the
	// k concurrent negotiations, timeout and retry stalls included.
	NegotiationMicros float64 `json:"negotiation_us"`
}

// PartitionSlowRow is one point of the slow-node companion table: a
// single negotiation against a cluster whose victim rank multiplies
// wire time by Factor — slow enough to blow deadlines, but alive, so
// nothing may be suspected or evacuated.
type PartitionSlowRow struct {
	Factor            int     `json:"factor"`
	RPCTimeouts       int     `json:"rpc_timeouts"`
	NegotiationMicros float64 `json:"negotiation_us"`
}

// PartitionReport is the BENCH_partition.json schema. CI runs
// `pm2bench -fig partition -json` and `benchcheck` compares the rejoin
// latency and the per-k timeout counts and makespans against the
// committed ci/BENCH_partition.baseline.json. Shared by pm2bench
// (writer) and benchcheck (gate) so a schema change is a compile-time
// event.
type PartitionReport struct {
	Figure string `json:"figure"`
	Nodes  int    `json:"nodes"`
	// RejoinMicros is the time the live victim spends suspected: from
	// the lease expiry that routed around it to the first heartbeat
	// round after the heal — a pure protocol quantity, independent of k.
	RejoinMicros float64            `json:"rejoin_us"`
	Rows         []PartitionRow     `json:"rows"`
	SlowRows     []PartitionSlowRow `json:"slow_rows"`
}

// Partition window and heartbeat cadence for every partition run: the
// victim is unreachable from 1 ms to 9 ms, heartbeats tick every 1 ms,
// so the default 2-miss lease suspects it at 2 ms and the 9 ms round
// clears it — 7 ms spent suspected.
const (
	partitionStartMicros = 1_000
	partitionEndMicros   = 9_000
	partitionTickMicros  = 1_000
	// partitionNegoMicros launches the negotiations inside the window
	// but before the lease expires at 2 ms: the first initiator must
	// discover the victim unreachable through RPC deadlines; the ones
	// queued behind it run after suspicion lands and route around the
	// victim for free.
	partitionNegoMicros = 1_500
)

// Partition measures partial-failure tolerance on an 8-node cluster:
// for each k it partitions the last rank away from every peer, launches
// k concurrent negotiations from distinct live initiators mid-window,
// and reports the deadline expiries and the negotiation makespan. The
// victim is alive throughout: any evacuation, declaration, or failed
// negotiation panics the measurement rather than skewing it. The slow
// table repeats the exercise against a slowed (not partitioned) rank.
func Partition(ks, slowFactors []int) PartitionReport {
	report := PartitionReport{Figure: "partition", Nodes: 8}
	for _, k := range ks {
		timeouts, nego, rejoin := partitionRun(k)
		if report.RejoinMicros == 0 {
			report.RejoinMicros = rejoin
		} else if rejoin != report.RejoinMicros {
			panic(fmt.Sprintf("bench: rejoin latency moved with k: %v vs %v µs", rejoin, report.RejoinMicros))
		}
		report.Rows = append(report.Rows, PartitionRow{K: k, RPCTimeouts: timeouts, NegotiationMicros: nego})
	}
	for _, f := range slowFactors {
		timeouts, nego := slowRun(f)
		report.SlowRows = append(report.SlowRows, PartitionSlowRow{Factor: f, RPCTimeouts: timeouts, NegotiationMicros: nego})
	}
	return report
}

// partitionRun is one staged partition: the victim cut off from every
// peer for the window, k negotiations launched mid-window before the
// lease expires. Returns the RPC-timeout count, the negotiation
// makespan and the rejoin latency (µs).
func partitionRun(k int) (timeouts int, negoMicros, rejoinMicros float64) {
	const nodes = 8
	const victim = nodes - 1
	spec := ""
	for p := 0; p < victim; p++ {
		if p > 0 {
			spec += ";"
		}
		spec += fmt.Sprintf("partition:%d-%d@%d..%d", victim, p, partitionStartMicros, partitionEndMicros)
	}
	plan, err := fault.Parse(spec)
	if err != nil {
		panic(fmt.Sprintf("bench: partition plan: %v", err))
	}
	c := pm2.New(pm2.Config{
		Nodes:      nodes,
		RPCTimeout: -1,
		Faults:     plan,
	}, progs.NewImage())
	for i := 1; i <= 64; i++ {
		c.Engine().At(simtime.Time(i*partitionTickMicros)*simtime.Microsecond, c.HeartbeatTick)
	}
	succeeded := 0
	for i := 0; i < k; i++ {
		initiator := i % victim // every live rank but never the victim
		c.Engine().At(partitionNegoMicros*simtime.Microsecond, func() {
			c.At(initiator, func(n *pm2.Node) {
				n.Negotiate(3, func(ok bool) {
					if !ok {
						panic(fmt.Sprintf("bench: partition k=%d: negotiation from node %d failed", k, initiator))
					}
					succeeded++
				})
			})
		})
	}
	c.Run(0)
	st := c.Stats()
	if succeeded != k {
		panic(fmt.Sprintf("bench: partition k=%d: %d negotiations succeeded", k, succeeded))
	}
	if st.Evacuations != 0 || c.NodeDown(victim) {
		panic(fmt.Sprintf("bench: partition k=%d: live victim evacuated or declared dead", k))
	}
	if st.Suspicions != 1 || st.Rejoins != 1 || len(st.RejoinLatencies) != 1 {
		panic(fmt.Sprintf("bench: partition k=%d: suspicions=%d rejoins=%d", k, st.Suspicions, st.Rejoins))
	}
	var makespan simtime.Time
	for _, l := range st.NegotiationLatencies {
		if l > makespan {
			makespan = l
		}
	}
	return st.RPCTimeouts, makespan.Micros(), st.RejoinLatencies[0].Micros()
}

// slowRun is one negotiation against a 4-node cluster whose last rank
// multiplies wire time by factor for the whole run. Returns the
// RPC-timeout count and the negotiation latency (µs).
func slowRun(factor int) (timeouts int, negoMicros float64) {
	const nodes = 4
	const victim = nodes - 1
	plan, err := fault.Parse(fmt.Sprintf("slow:%dx%d@0..100000", victim, factor))
	if err != nil {
		panic(fmt.Sprintf("bench: slow plan: %v", err))
	}
	c := pm2.New(pm2.Config{
		Nodes:      nodes,
		RPCTimeout: -1,
		Faults:     plan,
	}, progs.NewImage())
	for i := 1; i <= 64; i++ {
		c.Engine().At(simtime.Time(i*partitionTickMicros)*simtime.Microsecond, c.HeartbeatTick)
	}
	ok := false
	c.Engine().At(partitionTickMicros*simtime.Microsecond, func() {
		c.At(0, func(n *pm2.Node) { n.Negotiate(3, func(r bool) { ok = r }) })
	})
	c.Run(0)
	st := c.Stats()
	if !ok {
		panic(fmt.Sprintf("bench: slow x%d: negotiation failed", factor))
	}
	if st.Suspicions != 0 || st.Evacuations != 0 {
		panic(fmt.Sprintf("bench: slow x%d: suspicions=%d evacuations=%d, want 0", factor, st.Suspicions, st.Evacuations))
	}
	if len(st.NegotiationLatencies) != 1 {
		panic(fmt.Sprintf("bench: slow x%d: %d latency samples", factor, len(st.NegotiationLatencies)))
	}
	return st.RPCTimeouts, st.NegotiationLatencies[0].Micros()
}
