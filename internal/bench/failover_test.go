package bench

import "testing"

// TestFailoverBench pins the failover measurement's shape: detection is
// phase-exact and independent of batch size, evacuation makespan does
// not shrink as the victim holds more threads, and reclaim always
// recovers the dead rank's slot range.
func TestFailoverBench(t *testing.T) {
	report := Failover([]int{1, 4, 8})
	// The staged crash lands exactly on a heartbeat tick, so the first
	// miss is immediate and the 2-miss lease expires one period after
	// the crash — not two. (The general bound is (misses-1)·period <
	// detection ≤ misses·period, set by the crash's phase within the
	// heartbeat round.)
	if report.DetectionMicros != failoverTickMicros {
		t.Fatalf("detection %.1f µs, want %d (lease expiry one period after an on-tick crash)",
			report.DetectionMicros, failoverTickMicros)
	}
	prev := 0.0
	for _, row := range report.Rows {
		if row.EvacLegacyMicros <= 0 || row.EvacConvoyMicros <= 0 {
			t.Fatalf("k=%d: non-positive evacuation makespan %+v", row.K, row)
		}
		if row.EvacLegacyMicros < prev {
			t.Fatalf("k=%d: legacy makespan %.1f µs shrank below k-1's %.1f",
				row.K, row.EvacLegacyMicros, prev)
		}
		prev = row.EvacLegacyMicros
		if row.ReclaimedSlots == 0 {
			t.Fatalf("k=%d: no slots reclaimed", row.K)
		}
	}
}
