package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/layout"
)

func TestAssembleBasicProgram(t *testing.T) {
	im := isa.NewImage()
	lp, err := Assemble(im, `
; a trivial program
.program demo
.entry main
main:
    loadi r1, 42
    addi  r2, r1, -1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Name != "demo" || lp.N != 3 {
		t.Fatalf("loaded = %+v", lp)
	}
	if lp.Base != layout.CodeBase || lp.Entry != lp.Base {
		t.Fatalf("base/entry = %#x/%#x", lp.Base, lp.Entry)
	}
	in, ok := im.InstrAt(lp.Base)
	if !ok || in.Op != isa.OpLoadI || in.Rd != isa.R1 || in.Imm != 42 {
		t.Fatalf("instr 0 = %v", in)
	}
	in, _ = im.InstrAt(lp.Base + 4)
	if in.Op != isa.OpAddI || in.Rd != isa.R2 || in.Rs != isa.R1 || int32(in.Imm) != -1 {
		t.Fatalf("instr 1 = %v", in)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	im := isa.NewImage()
	lp, err := Assemble(im, `
.program loop
main:
    loadi r1, 0
    loadi r2, 10
top:
    addi r1, r1, 1
    blt  r1, r2, top
    br   done
    nop
done:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	blt, _ := im.InstrAt(lp.Base + 3*4)
	if blt.Op != isa.OpBlt || blt.Imm != uint32(lp.Base+2*4) {
		t.Fatalf("blt = %v, want target %#x", blt, lp.Base+2*4)
	}
	br, _ := im.InstrAt(lp.Base + 4*4)
	if br.Op != isa.OpBr || br.Imm != uint32(lp.Base+6*4) {
		t.Fatalf("br = %v", br)
	}
}

func TestForwardAndMultipleLabels(t *testing.T) {
	im := isa.NewImage()
	lp, err := Assemble(im, `
.program fwd
main:
    br end
a: b:
    nop
end:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	br, _ := im.InstrAt(lp.Base)
	if br.Imm != uint32(lp.Base+2*4) {
		t.Fatalf("forward br = %v", br)
	}
	if a, ok := im.Label("fwd.a"); !ok || a != lp.Base+4 {
		t.Fatalf("label a = %#x, %v", a, ok)
	}
	if b, ok := im.Label("fwd.b"); !ok || b != lp.Base+4 {
		t.Fatalf("label b = %#x, %v", b, ok)
	}
}

func TestStringsInterned(t *testing.T) {
	im := isa.NewImage()
	lp, err := Assemble(im, `
.program strs
.string fmt "value = %d\n"
.string fmt2 "value = %d\n"
main:
    loadi r1, fmt
    loadi r2, fmt2
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	i0, _ := im.InstrAt(lp.Base)
	i1, _ := im.InstrAt(lp.Base + 4)
	if i0.Imm != i1.Imm {
		t.Fatal("identical strings should be deduped")
	}
	if isa.Addr(i0.Imm) < layout.DataBase || isa.Addr(i0.Imm) >= layout.DataEnd {
		t.Fatalf("string addr %#x outside data region", i0.Imm)
	}
	data := im.DataImage()
	s := string(data[i0.Imm-uint32(layout.DataBase):])
	if !strings.HasPrefix(s, "value = %d\n\x00") {
		t.Fatalf("data image = %q", s)
	}
}

func TestMemoryOperands(t *testing.T) {
	im := isa.NewImage()
	lp, err := Assemble(im, `
.program mem
main:
    load  r1, [r2]
    load  r3, [fp-8]
    store [sp+12], r4
    loadb r5, [r6+1]
    storeb [r7-1], r8
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		idx int
		op  isa.Op
		rd  isa.Reg
		rs  isa.Reg
		imm int32
	}{
		{0, isa.OpLoad, isa.R1, isa.R2, 0},
		{1, isa.OpLoad, isa.R3, isa.FP, -8},
		{2, isa.OpStore, isa.SP, isa.R4, 12},
		{3, isa.OpLoadB, isa.R5, isa.R6, 1},
		{4, isa.OpStoreB, isa.R7, isa.R8, -1},
	}
	for _, c := range cases {
		in, _ := im.InstrAt(lp.Base + isa.Addr(c.idx*4))
		if in.Op != c.op || in.Rd != c.rd || in.Rs != c.rs || int32(in.Imm) != c.imm {
			t.Errorf("instr %d = %v (imm %d), want op=%v rd=%v rs=%v imm=%d",
				c.idx, in, int32(in.Imm), c.op, c.rd, c.rs, c.imm)
		}
	}
}

func TestCallBuiltinByName(t *testing.T) {
	im := isa.NewImage()
	lp, err := Assemble(im, `
.program b
main:
    callb isomalloc
    callb printf
    callb 17
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	i0, _ := im.InstrAt(lp.Base)
	if i0.Op != isa.OpCallB || i0.Imm != isa.BIsomalloc {
		t.Fatalf("callb = %v", i0)
	}
	i1, _ := im.InstrAt(lp.Base + 4)
	if i1.Imm != isa.BPrintf {
		t.Fatalf("callb printf = %v", i1)
	}
	i2, _ := im.InstrAt(lp.Base + 8)
	if i2.Imm != 17 {
		t.Fatalf("callb 17 = %v", i2)
	}
}

func TestCrossProgramCall(t *testing.T) {
	im := isa.NewImage()
	_, err := Assemble(im, `
.program lib
main:
helper:
    loadi r0, 7
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	lp2, err := Assemble(im, `
.program app
main:
    call lib.helper
    call lib
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	helperAddr, _ := im.Label("lib.helper")
	c0, _ := im.InstrAt(lp2.Base)
	if c0.Imm != uint32(helperAddr) {
		t.Fatalf("cross call = %v, want %#x", c0, helperAddr)
	}
	libEntry, _ := im.EntryOf("lib")
	c1, _ := im.InstrAt(lp2.Base + 4)
	if c1.Imm != uint32(libEntry) {
		t.Fatalf("call by program name = %v, want %#x", c1, libEntry)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	im := isa.NewImage()
	lp, err := Assemble(im, `
.program c
; full line comment
# hash comment
.string s "semi ; colon"   ; comment after string
main:
    nop       ; trailing
    halt      # trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if lp.N != 2 {
		t.Fatalf("N = %d, want 2", lp.N)
	}
	// The interned string must keep its semicolon.
	i := strings.Index(string(im.DataImage()), "semi ; colon")
	if i < 0 {
		t.Fatal("string with semicolon mangled")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no program", "main:\n nop", "code before .program"},
		{"missing directive", "   \n", "missing .program"},
		{"unknown mnemonic", ".program x\nmain:\n frob r1", "unknown mnemonic"},
		{"bad register", ".program x\nmain:\n mov r99, r1", "bad register"},
		{"undefined label", ".program x\nmain:\n br nowhere", "undefined label"},
		{"duplicate label", ".program x\na:\na:\n nop", "duplicate label"},
		{"operand count", ".program x\nmain:\n add r1, r2", "needs 3 operand"},
		{"bad entry", ".program x\n.entry nope\nmain:\n nop", `entry label "nope"`},
		{"bad mem", ".program x\nmain:\n load r1, r2", "bad memory operand"},
		{"empty", ".program x\n", "no instructions"},
		{"bad string", ".program x\n.string s nope\n main: nop", "double-quoted"},
		{"bad escape", ".program x\n.string s \"a\\q\"\nmain:\n nop", "unknown escape"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(isa.NewImage(), c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want contains %q", err, c.want)
			}
		})
	}
}

func TestDuplicateProgramRejected(t *testing.T) {
	im := isa.NewImage()
	MustAssemble(im, ".program a\nmain:\n halt")
	if _, err := Assemble(im, ".program a\nmain:\n halt"); err == nil {
		t.Fatal("duplicate program must fail")
	}
}

func TestEntryDefaultsToFirstInstruction(t *testing.T) {
	im := isa.NewImage()
	lp, err := Assemble(im, ".program nolabels\n nop\n halt")
	if err != nil {
		t.Fatal(err)
	}
	if lp.Entry != lp.Base {
		t.Fatalf("entry = %#x, want base %#x", lp.Entry, lp.Base)
	}
}

func TestSealedImageRejectsLoads(t *testing.T) {
	im := isa.NewImage()
	MustAssemble(im, ".program a\nmain:\n halt")
	im.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on post-seal load")
		}
	}()
	MustAssemble(im, ".program b\nmain:\n halt")
}

func TestNegativeAndHexImmediates(t *testing.T) {
	im := isa.NewImage()
	lp, err := Assemble(im, `
.program imm
main:
    loadi r1, -5
    loadi r2, 0xdeadbeef
    addi  sp, sp, -16
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	i0, _ := im.InstrAt(lp.Base)
	if int32(i0.Imm) != -5 {
		t.Fatalf("loadi -5 = %d", int32(i0.Imm))
	}
	i1, _ := im.InstrAt(lp.Base + 4)
	if i1.Imm != 0xdeadbeef {
		t.Fatalf("hex imm = %#x", i1.Imm)
	}
	i2, _ := im.InstrAt(lp.Base + 8)
	if i2.Op != isa.OpAddI || i2.Rd != isa.SP || int32(i2.Imm) != -16 {
		t.Fatalf("addi sp = %v", i2)
	}
}
