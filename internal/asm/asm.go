// Package asm implements a small two-pass assembler for the thread ISA.
//
// The paper's example procedures (p1..p4) are written in this assembly and
// registered into the replicated SPMD image before the cluster starts. The
// syntax is line-oriented:
//
//	; comment                      # comment
//	.program p4                    ; program name (required, first)
//	.entry main                    ; optional; defaults to label "main"
//	.string fmt "value = %d\n"     ; interned in the data segment
//
//	main:
//	    loadi r1, 100              ; immediates: decimal, 0x hex, labels
//	    enter 16                   ; 16 bytes of locals
//	    load  r2, [fp-4]           ; word load, signed offset
//	    store [r1+8], r2
//	    beq   r1, r2, done
//	    call  helper               ; or otherprog.helper
//	    callb isomalloc            ; runtime builtin by name
//	done:
//	    halt
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses src, resolves labels and strings, and loads the program
// into the image. Cross-program references use the "prog.label" form and
// must already be loaded.
func Assemble(im *isa.Image, src string) (*isa.LoadedProgram, error) {
	p := &parser{im: im, labels: make(map[string]int), strings: make(map[string]isa.Addr)}
	if err := p.firstPass(src); err != nil {
		return nil, err
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	entry, err := p.entryIndex()
	if err != nil {
		return nil, err
	}
	return im.AddProgram(p.name, p.code, entry, p.labels)
}

// MustAssemble is Assemble that panics on error; intended for registering
// the built-in example programs.
func MustAssemble(im *isa.Image, src string) *isa.LoadedProgram {
	lp, err := Assemble(im, src)
	if err != nil {
		panic(err)
	}
	return lp
}

type fixup struct {
	instr int    // instruction index whose Imm needs the address
	ref   string // label name
	line  int
}

type parser struct {
	im      *isa.Image
	name    string
	entry   string
	code    []isa.Instr
	labels  map[string]int      // local label → instruction index
	strings map[string]isa.Addr // string label → data address
	fixups  []fixup
	base    isa.Addr
}

func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("asm:%d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) firstPass(src string) error {
	p.base = p.im.Top()
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, ".program"):
			if p.name != "" {
				return p.errf(line, "duplicate .program")
			}
			f := strings.Fields(text)
			if len(f) != 2 {
				return p.errf(line, ".program needs exactly one name")
			}
			p.name = f[1]
			continue
		case strings.HasPrefix(text, ".entry"):
			f := strings.Fields(text)
			if len(f) != 2 {
				return p.errf(line, ".entry needs exactly one label")
			}
			p.entry = f[1]
			continue
		case strings.HasPrefix(text, ".string"):
			if err := p.parseString(line, text); err != nil {
				return err
			}
			continue
		}
		if p.name == "" {
			return p.errf(line, "code before .program directive")
		}
		// Leading labels (possibly several on one line).
		for {
			i := strings.Index(text, ":")
			if i < 0 || strings.ContainsAny(text[:i], " \t,[") {
				break
			}
			label := text[:i]
			if _, dup := p.labels[label]; dup {
				return p.errf(line, "duplicate label %q", label)
			}
			p.labels[label] = len(p.code)
			text = strings.TrimSpace(text[i+1:])
		}
		if text == "" {
			continue
		}
		if err := p.parseInstr(line, text); err != nil {
			return err
		}
	}
	if p.name == "" {
		return fmt.Errorf("asm: missing .program directive")
	}
	if len(p.code) == 0 {
		return fmt.Errorf("asm: program %q has no instructions", p.name)
	}
	return nil
}

func stripComment(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ';' || s[i] == '#' {
			// Don't cut inside a string literal.
			if strings.Count(s[:i], `"`)%2 == 1 {
				continue
			}
			return s[:i]
		}
	}
	return s
}

func (p *parser) parseString(line int, text string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(text, ".string"))
	sp := strings.IndexAny(rest, " \t")
	if sp < 0 {
		return p.errf(line, `.string needs: .string label "text"`)
	}
	label := rest[:sp]
	lit := strings.TrimSpace(rest[sp:])
	if len(lit) < 2 || lit[0] != '"' || lit[len(lit)-1] != '"' {
		return p.errf(line, ".string literal must be double-quoted")
	}
	val, err := unescape(lit[1 : len(lit)-1])
	if err != nil {
		return p.errf(line, "bad string literal: %v", err)
	}
	if _, dup := p.strings[label]; dup {
		return p.errf(line, "duplicate string label %q", label)
	}
	p.strings[label] = p.im.InternString(val)
	return nil
}

func unescape(s string) (string, error) {
	var out strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case 'n':
			out.WriteByte('\n')
		case 't':
			out.WriteByte('\t')
		case '\\':
			out.WriteByte('\\')
		case '"':
			out.WriteByte('"')
		case '0':
			out.WriteByte(0)
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i])
		}
	}
	return out.String(), nil
}

// operand splitting: mnemonic, then comma-separated operands.
func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

var regNames = func() map[string]isa.Reg {
	m := map[string]isa.Reg{"sp": isa.SP, "fp": isa.FP}
	for i := 0; i < 16; i++ {
		m[fmt.Sprintf("r%d", i)] = isa.Reg(i)
	}
	return m
}()

func (p *parser) reg(line int, tok string) (isa.Reg, error) {
	r, ok := regNames[strings.ToLower(tok)]
	if !ok {
		return 0, p.errf(line, "bad register %q", tok)
	}
	return r, nil
}

// imm parses an integer immediate or records a label fixup for instruction
// idx and returns 0.
func (p *parser) imm(line, idx int, tok string) (uint32, error) {
	if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
		if v < -(1<<31) || v > (1<<32)-1 {
			return 0, p.errf(line, "immediate %q out of 32-bit range", tok)
		}
		return uint32(v), nil
	}
	if !isIdent(tok) {
		return 0, p.errf(line, "bad immediate %q", tok)
	}
	p.fixups = append(p.fixups, fixup{instr: idx, ref: tok, line: line})
	return 0, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == '.' && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// mem parses "[reg]", "[reg+imm]" or "[reg-imm]".
func (p *parser) mem(line int, tok string) (isa.Reg, uint32, error) {
	if len(tok) < 3 || tok[0] != '[' || tok[len(tok)-1] != ']' {
		return 0, 0, p.errf(line, "bad memory operand %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := p.reg(line, inner)
		return r, 0, err
	}
	r, err := p.reg(line, strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(strings.TrimSpace(inner[sep:]), 0, 64)
	if err != nil {
		return 0, 0, p.errf(line, "bad memory offset in %q", tok)
	}
	return r, uint32(int32(off)), nil
}

var aluOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul, "div": isa.OpDiv,
	"mod": isa.OpMod, "and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"shl": isa.OpShl, "shr": isa.OpShr,
}

var branchOps = map[string]isa.Op{
	"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt, "bge": isa.OpBge,
	"bltu": isa.OpBltU, "bgeu": isa.OpBgeU,
}

func (p *parser) parseInstr(line int, text string) error {
	sp := strings.IndexAny(text, " \t")
	mn := text
	rest := ""
	if sp >= 0 {
		mn, rest = text[:sp], strings.TrimSpace(text[sp:])
	}
	mn = strings.ToLower(mn)
	ops := splitOperands(rest)
	idx := len(p.code)

	need := func(n int) error {
		if len(ops) != n {
			return p.errf(line, "%s needs %d operand(s), got %d", mn, n, len(ops))
		}
		return nil
	}

	var in isa.Instr
	var err error
	switch {
	case mn == "nop" || mn == "ret" || mn == "leave" || mn == "halt":
		if err = need(0); err != nil {
			return err
		}
		in.Op = map[string]isa.Op{"nop": isa.OpNop, "ret": isa.OpRet, "leave": isa.OpLeave, "halt": isa.OpHalt}[mn]

	case mn == "loadi":
		if err = need(2); err != nil {
			return err
		}
		in.Op = isa.OpLoadI
		if in.Rd, err = p.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Imm, err = p.imm(line, idx, ops[1]); err != nil {
			return err
		}

	case mn == "mov":
		if err = need(2); err != nil {
			return err
		}
		in.Op = isa.OpMov
		if in.Rd, err = p.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs, err = p.reg(line, ops[1]); err != nil {
			return err
		}

	case aluOps[mn] != 0:
		if err = need(3); err != nil {
			return err
		}
		in.Op = aluOps[mn]
		if in.Rd, err = p.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs, err = p.reg(line, ops[1]); err != nil {
			return err
		}
		if in.Rt, err = p.reg(line, ops[2]); err != nil {
			return err
		}

	case mn == "addi":
		if err = need(3); err != nil {
			return err
		}
		in.Op = isa.OpAddI
		if in.Rd, err = p.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs, err = p.reg(line, ops[1]); err != nil {
			return err
		}
		if in.Imm, err = p.imm(line, idx, ops[2]); err != nil {
			return err
		}

	case mn == "load" || mn == "loadb":
		if err = need(2); err != nil {
			return err
		}
		in.Op = isa.OpLoad
		if mn == "loadb" {
			in.Op = isa.OpLoadB
		}
		if in.Rd, err = p.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rs, in.Imm, err = p.mem(line, ops[1]); err != nil {
			return err
		}

	case mn == "store" || mn == "storeb":
		if err = need(2); err != nil {
			return err
		}
		in.Op = isa.OpStore
		if mn == "storeb" {
			in.Op = isa.OpStoreB
		}
		if in.Rd, in.Imm, err = p.mem(line, ops[0]); err != nil {
			return err
		}
		if in.Rs, err = p.reg(line, ops[1]); err != nil {
			return err
		}

	case mn == "br" || mn == "call":
		if err = need(1); err != nil {
			return err
		}
		in.Op = isa.OpBr
		if mn == "call" {
			in.Op = isa.OpCall
		}
		if in.Imm, err = p.imm(line, idx, ops[0]); err != nil {
			return err
		}

	case branchOps[mn] != 0:
		if err = need(3); err != nil {
			return err
		}
		in.Op = branchOps[mn]
		if in.Rs, err = p.reg(line, ops[0]); err != nil {
			return err
		}
		if in.Rt, err = p.reg(line, ops[1]); err != nil {
			return err
		}
		if in.Imm, err = p.imm(line, idx, ops[2]); err != nil {
			return err
		}

	case mn == "push":
		if err = need(1); err != nil {
			return err
		}
		in.Op = isa.OpPush
		if in.Rs, err = p.reg(line, ops[0]); err != nil {
			return err
		}

	case mn == "pop":
		if err = need(1); err != nil {
			return err
		}
		in.Op = isa.OpPop
		if in.Rd, err = p.reg(line, ops[0]); err != nil {
			return err
		}

	case mn == "enter":
		if err = need(1); err != nil {
			return err
		}
		in.Op = isa.OpEnter
		if in.Imm, err = p.imm(line, idx, ops[0]); err != nil {
			return err
		}

	case mn == "callb":
		if err = need(1); err != nil {
			return err
		}
		in.Op = isa.OpCallB
		if id, ok := isa.Builtins[strings.ToLower(ops[0])]; ok {
			in.Imm = id
		} else if in.Imm, err = p.imm(line, idx, ops[0]); err != nil {
			return err
		}

	default:
		return p.errf(line, "unknown mnemonic %q", mn)
	}

	p.code = append(p.code, in)
	return nil
}

// resolve patches label fixups with absolute addresses: local code labels,
// then local string labels, then image-global "prog.label" references.
func (p *parser) resolve() error {
	for _, f := range p.fixups {
		var addr isa.Addr
		switch {
		case hasLocal(p.labels, f.ref):
			addr = p.base + isa.Addr(p.labels[f.ref]*isa.InstrBytes)
		case hasStr(p.strings, f.ref):
			addr = p.strings[f.ref]
		default:
			if a, ok := p.im.Label(f.ref); ok {
				addr = a
			} else if lp, ok := p.im.Program(f.ref); ok {
				addr = lp.Entry
			} else {
				return p.errf(f.line, "undefined label %q", f.ref)
			}
		}
		p.code[f.instr].Imm = uint32(addr)
	}
	return nil
}

func hasLocal(m map[string]int, k string) bool    { _, ok := m[k]; return ok }
func hasStr(m map[string]isa.Addr, k string) bool { _, ok := m[k]; return ok }

func (p *parser) entryIndex() (int, error) {
	name := p.entry
	if name == "" {
		if _, ok := p.labels["main"]; ok {
			name = "main"
		} else {
			return 0, nil
		}
	}
	idx, ok := p.labels[name]
	if !ok {
		return 0, fmt.Errorf("asm: entry label %q not defined in %q", name, p.name)
	}
	return idx, nil
}
