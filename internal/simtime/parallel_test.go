package simtime

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// buildMesh wires nActors actors into a randomized message mesh: every
// handler charges local work, sometimes self-posts a continuation at a
// small delta (lane-local descendant), sometimes sends to a random other
// actor at now + horizon + jitter (cross-lane), and records its
// observations through Commit. All randomness is chained through
// per-handler seeds and all recursion depth through per-chain budgets,
// so the workload itself is lane-affine — no shared mutable state
// outside the Commit-protected log, which is exactly the discipline the
// pm2 layer follows.
func buildMesh(e *Engine, nActors, nSeeds int, horizon Time, seed uint64) *[]string {
	r := rng.New(seed)
	actors := make([]*Actor, nActors)
	for i := range actors {
		actors[i] = NewActor(e, fmt.Sprintf("n%d", i))
	}
	log := &[]string{}
	var handler func(self int, hseed uint64, budget int) func()
	handler = func(self int, hseed uint64, budget int) func() {
		return func() {
			hr := rng.New(hseed)
			a := actors[self]
			a.Charge(Time(1+hr.Intn(5)) * Microsecond)
			at := a.Now()
			a.Commit(func() {
				*log = append(*log, fmt.Sprintf("n%d@%d", self, at))
			})
			if budget <= 0 {
				return
			}
			now := a.Now()
			switch hr.Intn(3) {
			case 0: // lane-local descendant, possibly tying with siblings
				a.Post(now+Time(hr.Intn(3)), handler(self, hseed*31+1, budget-1))
			case 1: // cross-lane message, latency >= horizon
				dst := hr.Intn(nActors)
				if dst == self {
					dst = (dst + 1) % nActors
				}
				a.PostTo(actors[dst], now+horizon+Time(hr.Intn(2000)), handler(dst, hseed*31+2, budget-1))
			default: // both
				a.Post(now, handler(self, hseed*31+3, budget-1))
				dst := hr.Intn(nActors)
				if dst == self {
					dst = (dst + 1) % nActors
				}
				a.PostTo(actors[dst], now+horizon, handler(dst, hseed*31+4, budget-1))
			}
		}
	}
	for i := 0; i < nSeeds; i++ {
		self := r.Intn(nActors)
		actors[self].Post(Time(r.Intn(20))*Microsecond, handler(self, seed+uint64(i)*977, 8))
	}
	// A few ambient barriers mid-run, reading the global clock.
	for i := 0; i < 3; i++ {
		at := Time(200+500*i) * Microsecond
		e.At(at, func() {
			now := e.Now()
			*log = append(*log, fmt.Sprintf("ambient@%d", now))
		})
	}
	return log
}

// TestParallelMatchesSerial pins the tentpole's core guarantee: the
// windowed parallel executor produces bit-identical observable state —
// commit-ordered shared log, virtual clock, step count — for any worker
// count, on a workload mixing lane-local descendants, cross-lane
// messages at the horizon, timestamp ties, and ambient barriers.
func TestParallelMatchesSerial(t *testing.T) {
	const horizon = 9 * Microsecond
	run := func(workers int, seed uint64) ([]string, Time, uint64) {
		e := NewEngine()
		e.SetParallel(workers, horizon)
		log := buildMesh(e, 16, 24, horizon, seed)
		e.Run(0)
		return *log, e.Now(), e.Steps()
	}
	for _, seed := range []uint64{1, 42, 0xdecaf} {
		wantLog, wantNow, wantSteps := run(1, seed)
		if len(wantLog) == 0 {
			t.Fatalf("seed %d: empty serial log", seed)
		}
		for _, workers := range []int{2, 4, 8} {
			gotLog, gotNow, gotSteps := run(workers, seed)
			if gotNow != wantNow || gotSteps != wantSteps {
				t.Fatalf("seed %d workers %d: now/steps %v/%d, serial %v/%d",
					seed, workers, gotNow, gotSteps, wantNow, wantSteps)
			}
			if len(gotLog) != len(wantLog) {
				t.Fatalf("seed %d workers %d: log length %d, serial %d",
					seed, workers, len(gotLog), len(wantLog))
			}
			for i := range wantLog {
				if gotLog[i] != wantLog[i] {
					t.Fatalf("seed %d workers %d: log[%d] = %q, serial %q",
						seed, workers, i, gotLog[i], wantLog[i])
				}
			}
		}
	}
}

// TestParallelRunUntil pins that the deadline bound composes with
// windows: no event past the deadline executes, and Now lands on the
// deadline exactly as in a serial run.
func TestParallelRunUntil(t *testing.T) {
	const horizon = 9 * Microsecond
	run := func(workers int) ([]string, Time, uint64) {
		e := NewEngine()
		e.SetParallel(workers, horizon)
		log := buildMesh(e, 8, 12, horizon, 7)
		e.RunUntil(300 * Microsecond)
		return *log, e.Now(), e.Steps()
	}
	wantLog, wantNow, wantSteps := run(1)
	if wantNow != 300*Microsecond {
		t.Fatalf("serial RunUntil now = %v", wantNow)
	}
	gotLog, gotNow, gotSteps := run(4)
	if gotNow != wantNow || gotSteps != wantSteps || len(gotLog) != len(wantLog) {
		t.Fatalf("parallel RunUntil diverged: now %v/%v steps %d/%d log %d/%d",
			gotNow, wantNow, gotSteps, wantSteps, len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		if gotLog[i] != wantLog[i] {
			t.Fatalf("log[%d] = %q, serial %q", i, gotLog[i], wantLog[i])
		}
	}
}

// TestHorizonViolationPanics pins the conservative-window safety check:
// a cross-lane message below the configured horizon is a model bug and
// must be caught, not silently reordered.
func TestHorizonViolationPanics(t *testing.T) {
	e := NewEngine()
	e.SetParallel(4, 100*Microsecond)
	a := NewActor(e, "a")
	b := NewActor(e, "b")
	c := NewActor(e, "c")
	defer func() {
		if recover() == nil {
			t.Error("expected horizon-violation panic")
		}
	}()
	// Two lanes must have sub-bound work for a true parallel window (a
	// single participant falls back to the serial path, where any
	// latency is legal).
	a.Post(0, func() { a.PostTo(b, a.Now()+Microsecond, func() {}) })
	c.Post(0, func() { c.Charge(Microsecond) })
	e.Run(0)
}

// TestAmbientDuringWindowPanics pins that Engine.At cannot be called
// from inside a parallel window: ambient events are barriers.
func TestAmbientDuringWindowPanics(t *testing.T) {
	e := NewEngine()
	e.SetParallel(4, 100*Microsecond)
	a := NewActor(e, "a")
	b := NewActor(e, "b")
	defer func() {
		if recover() == nil {
			t.Error("expected ambient-during-window panic")
		}
	}()
	a.Post(0, func() { e.At(Microsecond, func() {}) })
	b.Post(0, func() { b.Charge(Microsecond) })
	e.Run(0)
}
