package simtime

// A lane is one actor's private event queue (plus the engine's ambient
// lane 0 for events scheduled through Engine.At). Decomposing the old
// global event heap into lanes gives every node of the simulated
// cluster its own queue with the three step primitives —
// HasPendingEvents, PeekNextEventTime, ProcessNextEvent — while the
// engine performs a deterministic earliest-(at, seq) merge across
// lanes. Because the global sequence counter is preserved and the merge
// comparator is the old heap comparator, the merged pop order is
// provably identical to the monolithic heap's order (pinned by
// TestLaneMergeMatchesReference).
//
// The lane heap is a concrete index-based binary heap: no
// container/heap interface, no boxing through any, and popped event
// structs are recycled through a per-lane free list, so the steady
// state of the kernel allocates nothing per event (pinned by
// TestKernelStepAllocations).

// event is one scheduled closure. When actor is non-nil the event was
// posted through Actor.Post and the busy-clock prologue/epilogue runs
// around fn without a wrapper closure.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	actor *Actor
}

// eventLess is the one ordering in the kernel: earliest time first,
// scheduling order among ties. Sequence numbers are unique, so the
// order is total.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// keyLess compares two (at, seq) keys the same way.
func keyLess(at1 Time, seq1 uint64, at2 Time, seq2 uint64) bool {
	if at1 != at2 {
		return at1 < at2
	}
	return seq1 < seq2
}

type lane struct {
	eng *Engine
	id  int
	// heap is the lane's pending events, a concrete binary min-heap
	// ordered by eventLess.
	heap []*event
	// free recycles event structs popped from this lane.
	free []*event
	// pos is the lane's index in the engine's merge heap, -1 while the
	// lane is empty.
	pos int

	// now is the lane-local clock: the timestamp of the event currently
	// (or last) executing on this lane. During serial execution it
	// always equals Engine.Now at the same instant; during a parallel
	// window it is the lane's private view of the serial clock.
	now Time
	// executing marks the lane as running inside a parallel window on a
	// worker goroutine (see parallel.go).
	executing bool

	// Parallel-window recording state (parallel.go): the ordered log of
	// events this lane executed in the current window, the events they
	// pushed, and the commit closures they deferred. Flat slices reused
	// across windows.
	recs    []execRec
	pushes  []pushEntry
	commits []func()
	tempSeq uint64
	cursor  int
}

func (e *Engine) newLane() *lane {
	l := &lane{eng: e, id: len(e.lanes), pos: -1}
	e.lanes = append(e.lanes, l)
	return l
}

// HasPendingEvents reports whether the lane has queued events — the
// first step primitive.
func (l *lane) HasPendingEvents() bool { return len(l.heap) > 0 }

// PeekNextEventTime returns the (at, seq) key of the lane's earliest
// pending event — the second step primitive. The lane must be
// non-empty.
func (l *lane) PeekNextEventTime() (Time, uint64) {
	e := l.heap[0]
	return e.at, e.seq
}

// ProcessNextEvent pops and executes the lane's earliest pending event,
// advancing the lane-local clock to its timestamp — the third step
// primitive. The popped event is returned so the caller decides when to
// recycle it (immediately in serial execution, at commit time in a
// parallel window).
func (l *lane) ProcessNextEvent() *event {
	ev := l.pop()
	l.exec(ev)
	return ev
}

// exec runs one event on this lane, with the actor busy-clock
// prologue/epilogue inlined for actor-posted events.
func (l *lane) exec(ev *event) {
	l.now = ev.at
	if a := ev.actor; a != nil {
		start := ev.at
		if a.busyUntil > start {
			start = a.busyUntil
		}
		a.localNow = start
		a.inside = true
		ev.fn()
		a.inside = false
		a.busyUntil = a.localNow
	} else {
		ev.fn()
	}
}

// alloc takes an event struct from the lane's free list (or the heap of
// last resort: Go's) and initializes it.
func (l *lane) alloc(at Time, seq uint64, fn func(), a *Actor) *event {
	var ev *event
	if n := len(l.free); n > 0 {
		ev = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.actor = at, seq, fn, a
	return ev
}

// recycle returns a finished event to the free list, dropping its
// closure so it does not pin captured state.
func (l *lane) recycle(ev *event) {
	ev.fn, ev.actor = nil, nil
	l.free = append(l.free, ev)
}

// push inserts ev into the lane heap.
func (l *lane) push(ev *event) {
	l.heap = append(l.heap, ev)
	l.siftUp(len(l.heap) - 1)
}

// pop removes and returns the lane's earliest event.
func (l *lane) pop() *event {
	h := l.heap
	ev := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	l.heap = h[:last]
	if last > 0 {
		l.siftDown(0)
	}
	return ev
}

func (l *lane) siftUp(i int) {
	h := l.heap
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (l *lane) siftDown(i int) {
	h := l.heap
	n := len(h)
	for {
		least := i
		if c := 2*i + 1; c < n && eventLess(h[c], h[least]) {
			least = c
		}
		if c := 2*i + 2; c < n && eventLess(h[c], h[least]) {
			least = c
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// The merge heap: the engine's index of non-empty lanes, ordered by
// each lane's head-event key. Lanes carry their position (lane.pos) so
// a head change re-sifts in O(log lanes) without a search.

func mergeLess(a, b *lane) bool { return eventLess(a.heap[0], b.heap[0]) }

// mergeFix restores lane l's merge-heap position after its head event
// changed: inserted when it became non-empty, removed when it drained,
// re-sifted otherwise.
func (e *Engine) mergeFix(l *lane) {
	if len(l.heap) == 0 {
		if l.pos >= 0 {
			e.mergeRemove(l.pos)
			l.pos = -1
		}
		return
	}
	if l.pos < 0 {
		l.pos = len(e.merge)
		e.merge = append(e.merge, l)
	}
	e.mergeSiftUp(l.pos)
	e.mergeSiftDown(l.pos)
}

func (e *Engine) mergeRemove(i int) {
	m := e.merge
	last := len(m) - 1
	m[i] = m[last]
	m[i].pos = i
	m[last] = nil
	e.merge = m[:last]
	if i < last {
		e.mergeSiftUp(i)
		e.mergeSiftDown(i)
	}
}

func (e *Engine) mergeSiftUp(i int) {
	m := e.merge
	for i > 0 {
		p := (i - 1) / 2
		if !mergeLess(m[i], m[p]) {
			break
		}
		m[i], m[p] = m[p], m[i]
		m[i].pos, m[p].pos = i, p
		i = p
	}
}

func (e *Engine) mergeSiftDown(i int) {
	m := e.merge
	n := len(m)
	for {
		least := i
		if c := 2*i + 1; c < n && mergeLess(m[c], m[least]) {
			least = c
		}
		if c := 2*i + 2; c < n && mergeLess(m[c], m[least]) {
			least = c
		}
		if least == i {
			return
		}
		m[i], m[least] = m[least], m[i]
		m[i].pos, m[least].pos = i, least
		i = least
	}
}

// rebuildMerge reconstructs the merge heap and the pending count from
// scratch — O(lanes), used once per parallel window, where incremental
// fixes would have to reason about many simultaneously-stale lane
// heads.
func (e *Engine) rebuildMerge() {
	e.merge = e.merge[:0]
	e.nPending = 0
	for _, l := range e.lanes {
		e.nPending += len(l.heap)
		if len(l.heap) > 0 {
			l.pos = len(e.merge)
			e.merge = append(e.merge, l)
		} else {
			l.pos = -1
		}
	}
	for i := len(e.merge)/2 - 1; i >= 0; i-- {
		e.mergeSiftDown(i)
	}
}
