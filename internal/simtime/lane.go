package simtime

// A lane is one actor's private event queue (plus the engine's ambient
// lane 0 for events scheduled through Engine.At). Decomposing the old
// global event heap into lanes gives every node of the simulated
// cluster its own queue with the three step primitives —
// HasPendingEvents, PeekNextEventTime, ProcessNextEvent — while the
// engine performs a deterministic earliest-(at, seq) merge across
// lanes. Because the global sequence counter is preserved and the merge
// comparator is the old heap comparator, the merged pop order is
// provably identical to the monolithic heap's order (pinned by
// TestLaneMergeMatchesReference).
//
// The lane heap is a concrete index-based binary heap: no
// container/heap interface, no boxing through any, and popped event
// structs are recycled through a per-lane free list, so the steady
// state of the kernel allocates nothing per event (pinned by
// TestKernelStepAllocations).

// event is one scheduled closure. When actor is non-nil the event was
// posted through Actor.Post and the busy-clock prologue/epilogue runs
// around fn without a wrapper closure.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	actor *Actor
}

// eventLess is the one ordering in the kernel: earliest time first,
// scheduling order among ties. Sequence numbers are unique, so the
// order is total.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// keyLess compares two (at, seq) keys the same way.
func keyLess(at1 Time, seq1 uint64, at2 Time, seq2 uint64) bool {
	if at1 != at2 {
		return at1 < at2
	}
	return seq1 < seq2
}

type lane struct {
	eng *Engine
	id  int
	// heap is the lane's pending events, a concrete binary min-heap
	// ordered by eventLess.
	heap []*event
	// free recycles event structs popped from this lane.
	free []*event
	// bkt/bpos locate the lane in the engine's calendar merge: the
	// bucket index and the lane's slot within that bucket. bkt is -1
	// while the lane is empty (untracked).
	bkt  int
	bpos int

	// now is the lane-local clock: the timestamp of the event currently
	// (or last) executing on this lane. During serial execution it
	// always equals Engine.Now at the same instant; during a parallel
	// window it is the lane's private view of the serial clock.
	now Time
	// executing marks the lane as running inside a parallel window on a
	// worker goroutine (see parallel.go).
	executing bool

	// Parallel-window recording state (parallel.go): the ordered log of
	// events this lane executed in the current window, the events they
	// pushed, and the commit closures they deferred. Flat slices reused
	// across windows.
	recs    []execRec
	pushes  []pushEntry
	commits []func()
	tempSeq uint64
	cursor  int
}

func (e *Engine) newLane() *lane {
	l := &lane{eng: e, id: len(e.lanes), bkt: -1}
	e.lanes = append(e.lanes, l)
	return l
}

// HasPendingEvents reports whether the lane has queued events — the
// first step primitive.
func (l *lane) HasPendingEvents() bool { return len(l.heap) > 0 }

// PeekNextEventTime returns the (at, seq) key of the lane's earliest
// pending event — the second step primitive. The lane must be
// non-empty.
func (l *lane) PeekNextEventTime() (Time, uint64) {
	e := l.heap[0]
	return e.at, e.seq
}

// ProcessNextEvent pops and executes the lane's earliest pending event,
// advancing the lane-local clock to its timestamp — the third step
// primitive. The popped event is returned so the caller decides when to
// recycle it (immediately in serial execution, at commit time in a
// parallel window).
func (l *lane) ProcessNextEvent() *event {
	ev := l.pop()
	l.exec(ev)
	return ev
}

// exec runs one event on this lane, with the actor busy-clock
// prologue/epilogue inlined for actor-posted events.
func (l *lane) exec(ev *event) {
	l.now = ev.at
	if a := ev.actor; a != nil {
		start := ev.at
		if a.busyUntil > start {
			start = a.busyUntil
		}
		a.localNow = start
		a.inside = true
		ev.fn()
		a.inside = false
		a.busyUntil = a.localNow
	} else {
		ev.fn()
	}
}

// alloc takes an event struct from the lane's free list (or the heap of
// last resort: Go's) and initializes it.
func (l *lane) alloc(at Time, seq uint64, fn func(), a *Actor) *event {
	var ev *event
	if n := len(l.free); n > 0 {
		ev = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.actor = at, seq, fn, a
	return ev
}

// recycle returns a finished event to the free list, dropping its
// closure so it does not pin captured state.
func (l *lane) recycle(ev *event) {
	ev.fn, ev.actor = nil, nil
	l.free = append(l.free, ev)
}

// push inserts ev into the lane heap.
func (l *lane) push(ev *event) {
	l.heap = append(l.heap, ev)
	l.siftUp(len(l.heap) - 1)
}

// pop removes and returns the lane's earliest event.
func (l *lane) pop() *event {
	h := l.heap
	ev := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	l.heap = h[:last]
	if last > 0 {
		l.siftDown(0)
	}
	return ev
}

func (l *lane) siftUp(i int) {
	h := l.heap
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (l *lane) siftDown(i int) {
	h := l.heap
	n := len(h)
	for {
		least := i
		if c := 2*i + 1; c < n && eventLess(h[c], h[least]) {
			least = c
		}
		if c := 2*i + 2; c < n && eventLess(h[c], h[least]) {
			least = c
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// The calendar merge: the engine's index of non-empty lanes, keyed by
// each lane's head-event key. Instead of one binary heap over every
// lane (an O(log lanes) sift on every head change), lanes hash into
// time buckets of power-of-two width — bucket(at) = (at >> shift) &
// mask — and the minimum is found by scanning forward from a monotone
// floor, the timestamp of the last dequeued event. Each bucket is
// itself a small (at, seq) min-heap, so a scan peeks one lane per
// bucket and maintenance costs O(log occupancy): with the width tuned
// to the mean head gap that occupancy is O(1), flattening the
// per-event merge constant, and under pathological clustering (many
// lanes in lockstep at one timestamp) it degrades exactly to the old
// global-heap cost rather than below it. Two properties make the
// monotone scan valid: engine time never goes backward (schedule
// clamps to Now, and window commits only raise it), so every tracked
// key is >= floor; and events with equal timestamps share a bucket, so
// the (at, seq) tie-break — the old heap comparator, still the one
// total order — is decided locally. The cached min short-circuits the
// common case where nothing cheaper arrived since the last scan.

// calendar is the engine's merge structure over non-empty lane heads.
type calendar struct {
	// buckets[i] is a min-heap (by head-event key) of the tracked lanes
	// whose head event falls in time slice i; len(buckets) is a power
	// of two. Lanes carry their bucket index and heap position
	// (lane.bkt, lane.bpos).
	buckets [][]*lane
	shift   uint // bucket width is 1 << shift nanoseconds
	mask    int  // len(buckets) - 1
	count   int  // tracked (non-empty) lanes
	// min caches the lane holding the global minimum key; nil means
	// unknown (recomputed lazily by minLane).
	min *lane
	// floor is a monotone lower bound on every tracked key: the
	// timestamp of the last event dequeued (or the engine clock at the
	// last rebuild). Scans start at its bucket.
	floor Time
	// ops counts head-change operations since the last retune; the
	// width is re-estimated every few thousand so the bucket occupancy
	// tracks the workload's event spacing.
	ops int
}

func (c *calendar) bucketOf(at Time) int {
	return int(at>>c.shift) & c.mask
}

func (c *calendar) insert(l *lane) {
	b := c.bucketOf(l.heap[0].at)
	l.bkt, l.bpos = b, len(c.buckets[b])
	c.buckets[b] = append(c.buckets[b], l)
	c.siftUp(b, l.bpos)
	c.count++
	if c.min != nil && eventLess(l.heap[0], c.min.heap[0]) {
		c.min = l
	}
}

func (c *calendar) remove(l *lane) {
	b, i := l.bkt, l.bpos
	s := c.buckets[b]
	last := len(s) - 1
	s[i] = s[last]
	s[i].bpos = i
	s[last] = nil
	c.buckets[b] = s[:last]
	l.bkt = -1
	c.count--
	if i < last {
		c.siftUp(b, i)
		c.siftDown(b, i)
	}
	if c.min == l {
		c.min = nil
	}
}

func (c *calendar) siftUp(b, i int) {
	s := c.buckets[b]
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(s[i].heap[0], s[p].heap[0]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		s[i].bpos, s[p].bpos = i, p
		i = p
	}
}

func (c *calendar) siftDown(b, i int) {
	s := c.buckets[b]
	n := len(s)
	for {
		least := i
		if x := 2*i + 1; x < n && eventLess(s[x].heap[0], s[least].heap[0]) {
			least = x
		}
		if x := 2*i + 2; x < n && eventLess(s[x].heap[0], s[least].heap[0]) {
			least = x
		}
		if least == i {
			return
		}
		s[i], s[least] = s[least], s[i]
		s[i].bpos, s[least].bpos = i, least
		i = least
	}
}

// mergeFix restores lane l's calendar position after its head event
// changed: inserted when it became non-empty, removed when it drained,
// rebucketed otherwise. Amortized O(1).
func (e *Engine) mergeFix(l *lane) {
	c := &e.cal
	if len(l.heap) == 0 {
		if l.bkt >= 0 {
			c.remove(l)
		}
		return
	}
	c.ops++
	if l.bkt < 0 {
		if len(c.buckets) == 0 || c.count >= 2*len(c.buckets) {
			e.calRebuild() // re-inserts every non-empty lane, including l
			return
		}
		c.insert(l)
		return
	}
	if b := c.bucketOf(l.heap[0].at); b != l.bkt {
		// remove clears the cached min if l held it; insert re-crowns l
		// only by comparing against a still-valid cache.
		c.remove(l)
		c.insert(l)
		return
	}
	c.siftUp(l.bkt, l.bpos)
	c.siftDown(l.bkt, l.bpos)
	if c.min == l {
		// Head changed in place; it may no longer be the minimum.
		c.min = nil
	} else if c.min != nil && eventLess(l.heap[0], c.min.heap[0]) {
		c.min = l
	}
}

// minLane returns the lane holding the earliest (at, seq) head key, or
// nil when no lane has pending events. It advances the scan floor to
// the returned key, which the monotonicity of engine time justifies.
func (e *Engine) minLane() *lane {
	c := &e.cal
	if c.min != nil {
		return c.min
	}
	if c.count == 0 {
		return nil
	}
	if c.ops > 8*c.count+4096 {
		e.calRebuild()
	}
	c.min = c.scan()
	c.floor = c.min.heap[0].at
	return c.min
}

// scan locates the minimum head key: walk one calendar year of buckets
// forward from the floor, peeking each bucket's heap top. A top inside
// the bucket's current time slice is the global minimum — every
// tracked key is >= floor, later buckets of the year hold later
// timestamps, aliased entries from later years sort after in-slice
// ones, and equal timestamps share a bucket so the (at, seq) tie-break
// is decided by the bucket heap. If a whole year is empty, fall back
// to a direct sweep of the bucket tops.
func (c *calendar) scan() *lane {
	n := len(c.buckets)
	start := int64(c.floor >> c.shift)
	for t := 0; t < n; t++ {
		idx := int(start+int64(t)) & c.mask
		s := c.buckets[idx]
		if len(s) == 0 {
			continue
		}
		if end := Time(start+int64(t)+1) << c.shift; s[0].heap[0].at < end {
			return s[0]
		}
	}
	var best *lane
	for _, s := range c.buckets {
		if len(s) > 0 && (best == nil || eventLess(s[0].heap[0], best.heap[0])) {
			best = s[0]
		}
	}
	return best
}

// calRebuild re-sizes and re-tunes the calendar from the live lane set:
// the bucket count is the power of two covering the non-empty lanes and
// the bucket width is the power of two nearest the mean head gap, so a
// dequeue typically lands on a bucket holding one lane. Deterministic —
// both parameters are pure functions of the queue content.
func (e *Engine) calRebuild() {
	c := &e.cal
	n := 0
	minAt, maxAt := Time(0), Time(0)
	for _, l := range e.lanes {
		if len(l.heap) == 0 {
			continue
		}
		at := l.heap[0].at
		if n == 0 || at < minAt {
			minAt = at
		}
		if n == 0 || at > maxAt {
			maxAt = at
		}
		n++
	}
	size := 8
	for size < n {
		size *= 2
	}
	shift := uint(0)
	if n > 0 {
		if gap := (maxAt - minAt) / Time(n); gap > 0 {
			for shift < 40 && Time(1)<<(shift+1) <= gap {
				shift++
			}
		}
	}
	if size != len(c.buckets) {
		c.buckets = make([][]*lane, size)
	} else {
		for i := range c.buckets {
			c.buckets[i] = c.buckets[i][:0]
		}
	}
	c.shift, c.mask, c.count, c.min, c.ops = shift, size-1, 0, nil, 0
	c.floor = e.now
	for _, l := range e.lanes {
		l.bkt = -1
		if len(l.heap) > 0 {
			c.insert(l)
		}
	}
}

// rebuildMerge reconstructs the calendar and the pending count from
// scratch — O(lanes), used once per parallel window, where incremental
// fixes would have to reason about many simultaneously-stale lane
// heads.
func (e *Engine) rebuildMerge() {
	e.nPending = 0
	for _, l := range e.lanes {
		e.nPending += len(l.heap)
	}
	e.calRebuild()
}
