package simtime

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestTieBreakIsSchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		e.At(50, func() {
			if e.Now() != 100 {
				t.Errorf("past event ran at %v, want clamped to 100", e.Now())
			}
		})
	})
	e.Run(0)
}

func TestAfterAndRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(10, func() { fired++ })
	e.After(20, func() { fired++ })
	e.After(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	e.Run(0)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	n := 0
	var self func()
	self = func() {
		n++
		e.After(1, self)
	}
	e.After(1, self)
	if got := e.Run(100); got != 100 {
		t.Fatalf("Run(100) executed %d", got)
	}
	if n != 100 {
		t.Fatalf("n = %d", n)
	}
	if e.Steps() != 100 {
		t.Fatalf("Steps = %d", e.Steps())
	}
}

func TestActorSerializesWork(t *testing.T) {
	e := NewEngine()
	a := NewActor(e, "node0")
	var t1, t2 Time
	// Two handlers posted at the same instant: the second must start after
	// the first one's charged work.
	a.Post(0, func() {
		a.Charge(10 * Microsecond)
		t1 = a.Now()
	})
	a.Post(0, func() {
		t2 = a.Now()
		a.Charge(5 * Microsecond)
	})
	e.Run(0)
	if t1 != 10*Microsecond {
		t.Fatalf("t1 = %v, want 10µs", t1)
	}
	if t2 != 10*Microsecond {
		t.Fatalf("t2 = %v, want 10µs (serialized after first handler)", t2)
	}
	if got := a.Now(); got != 15*Microsecond {
		t.Fatalf("busyUntil = %v, want 15µs", got)
	}
}

func TestActorsAreIndependent(t *testing.T) {
	e := NewEngine()
	a := NewActor(e, "a")
	b := NewActor(e, "b")
	var ta, tb Time
	a.Post(0, func() { a.Charge(100 * Microsecond); ta = a.Now() })
	b.Post(0, func() { b.Charge(1 * Microsecond); tb = b.Now() })
	e.Run(0)
	if ta != 100*Microsecond || tb != 1*Microsecond {
		t.Fatalf("ta=%v tb=%v: actors should not serialize against each other", ta, tb)
	}
}

func TestChargeOutsideHandlerPanics(t *testing.T) {
	e := NewEngine()
	a := NewActor(e, "x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.Charge(1)
}

func TestNegativeChargePanics(t *testing.T) {
	e := NewEngine()
	a := NewActor(e, "x")
	a.Post(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		a.Charge(-1)
	})
	e.Run(0)
}

func TestTimeUnitsAndString(t *testing.T) {
	if Microsecond != 1000*Nanosecond || Millisecond != 1000*Microsecond || Second != 1000*Millisecond {
		t.Fatal("unit arithmetic broken")
	}
	if got := (75 * Microsecond).Micros(); got != 75 {
		t.Fatalf("Micros = %v", got)
	}
	if got := (1500 * Nanosecond).String(); got != "1.500µs" {
		t.Fatalf("String = %q", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		a := NewActor(e, "a")
		b := NewActor(e, "b")
		var log []Time
		var ping, pong func()
		n := 0
		ping = func() {
			a.Charge(3 * Microsecond)
			log = append(log, a.Now())
			if n++; n < 20 {
				b.Post(a.Now()+2*Microsecond, pong)
			}
		}
		pong = func() {
			b.Charge(7 * Microsecond)
			log = append(log, b.Now())
			a.Post(b.Now()+2*Microsecond, ping)
		}
		a.Post(0, ping)
		e.Run(0)
		return log
	}
	x, y := run(), run()
	if len(x) == 0 || len(x) != len(y) {
		t.Fatalf("lengths differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, x[i], y[i])
		}
	}
}
