// Package simtime provides the discrete-event simulation kernel under the
// PM2 cluster reproduction.
//
// The paper reports microsecond-scale measurements (thread migration in less
// than 75 µs, slot negotiations of a few hundred µs) taken on a 1999 PoPC
// cluster. We reproduce those measurements in virtual time: nodes are actors
// with private busy clocks, every simulated operation charges a calibrated
// cost, and network messages are future events. The whole simulation is
// single-threaded and deterministic: equal seeds yield bit-identical event
// orders and timings.
package simtime

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros returns t expressed in (fractional) microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time as microseconds, the natural unit of the paper.
func (t Time) String() string { return fmt.Sprintf("%.3fµs", t.Micros()) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; the entire cluster simulation runs on one goroutine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	nSteps uint64
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Times in the past are
// clamped to Now; ties run in scheduling order.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the earliest pending event, advancing Now to its timestamp.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.nSteps++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the step limit is hit.
// A limit of 0 means no limit. It returns the number of events executed.
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	for limit == 0 || n < limit {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline and then advances Now
// to deadline (if the queue drained earlier).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Actor models a sequential resource (a node's CPU): events destined for the
// actor serialize on its busy clock, and handlers charge virtual time for
// the work they model.
type Actor struct {
	eng  *Engine
	name string
	// busyUntil is the first instant at which the actor is free.
	busyUntil Time
	// localNow is the actor-local clock while inside a handler.
	localNow Time
	inside   bool
}

// NewActor returns an actor bound to engine eng. The name is used in panics
// and debugging output only.
func NewActor(eng *Engine, name string) *Actor {
	return &Actor{eng: eng, name: name}
}

// Name returns the actor's debug name.
func (a *Actor) Name() string { return a.name }

// Engine returns the engine the actor is bound to.
func (a *Actor) Engine() *Engine { return a.eng }

// Now returns the actor-local clock: inside a handler this includes time
// charged so far; outside it is the instant the actor becomes free.
func (a *Actor) Now() Time {
	if a.inside {
		return a.localNow
	}
	if a.busyUntil > a.eng.Now() {
		return a.busyUntil
	}
	return a.eng.Now()
}

// Post schedules fn on the actor at or after absolute time at. If the actor
// is still busy at that instant the handler is delayed until it frees up, so
// handlers on one actor never overlap in virtual time.
func (a *Actor) Post(at Time, fn func()) {
	a.eng.At(at, func() {
		start := a.eng.Now()
		if a.busyUntil > start {
			start = a.busyUntil
		}
		a.localNow = start
		a.inside = true
		fn()
		a.inside = false
		a.busyUntil = a.localNow
	})
}

// PostAfter schedules fn on the actor d after the current engine time.
func (a *Actor) PostAfter(d Time, fn func()) { a.Post(a.eng.Now()+d, fn) }

// Charge advances the actor-local clock by d, modeling d of CPU work. It
// must be called from within a handler posted via Post.
func (a *Actor) Charge(d Time) {
	if !a.inside {
		panic("simtime: Charge outside of actor handler (" + a.name + ")")
	}
	if d < 0 {
		panic("simtime: negative charge on " + a.name)
	}
	a.localNow += d
}
