// Package simtime provides the discrete-event simulation kernel under the
// PM2 cluster reproduction.
//
// The paper reports microsecond-scale measurements (thread migration in less
// than 75 µs, slot negotiations of a few hundred µs) taken on a 1999 PoPC
// cluster. We reproduce those measurements in virtual time: nodes are actors
// with private busy clocks, every simulated operation charges a calibrated
// cost, and network messages are future events. Every actor owns a private
// event lane (lane.go) and the engine merges lanes in earliest-(at, seq)
// order, so execution is deterministic: equal seeds yield bit-identical
// event orders and timings. By default the merge runs on one goroutine;
// SetParallel enables the conservative time-window executor (parallel.go),
// which runs lanes on a worker pool while keeping handler state lane-affine
// and shared-state updates commit-ordered — results are bit-identical at
// any worker count.
package simtime

import "fmt"

// Time is a point in virtual time, in nanoseconds.
type Time int64

// Convenient virtual-time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros returns t expressed in (fractional) microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time as microseconds, the natural unit of the paper.
func (t Time) String() string { return fmt.Sprintf("%.3fµs", t.Micros()) }

// Engine is a deterministic discrete-event scheduler over per-actor event
// lanes. Scheduling and stepping happen on the driving goroutine; during a
// parallel window (SetParallel) worker goroutines execute their own lanes
// only, and everything cross-lane is applied in merge order by the commit
// phase — so all observable state evolves exactly as in a serial run.
type Engine struct {
	now      Time
	seq      uint64
	nSteps   uint64
	nPending int
	// lanes[0] is the ambient lane: events scheduled through Engine.At
	// (drivers, balancers, public cluster API) rather than on an actor.
	// Ambient events may touch any lane's state, so the parallel
	// executor treats them as barriers.
	ambient *lane
	lanes   []*lane
	// cal is the calendar merge over non-empty lanes by head-event key
	// (lane.go).
	cal calendar

	// Parallel execution configuration and window state (parallel.go).
	workers       int
	horizon       Time
	inWindow      bool
	windowBoundAt Time
	inCommit      bool
	participants  []*lane
	cursorHeap    []*lane
	deferred      []pushEntry
	wstats        WindowStats
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	e.ambient = e.newLane()
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.nPending }

// Clock returns the engine's full clock state — current virtual time,
// last assigned sequence number and executed step count — for
// checkpointing. Meaningful only while the queue is drained; a
// restored engine continues assigning sequence numbers exactly where
// the checkpointed one stopped, which is what keeps post-restore event
// orders identical to the uninterrupted run.
func (e *Engine) Clock() (now Time, seq, steps uint64) {
	return e.now, e.seq, e.nSteps
}

// RestoreClock sets the engine clock state captured by Clock on a
// fresh engine. It must be called before any events are scheduled
// (restore-time state installation only).
func (e *Engine) RestoreClock(now Time, seq, steps uint64) {
	if e.nPending != 0 {
		panic("simtime: RestoreClock with pending events")
	}
	e.now, e.seq, e.nSteps = now, seq, steps
}

// At schedules fn to run at absolute virtual time t, on the ambient lane.
// Times in the past are clamped to Now; ties run in scheduling order.
// Ambient events are cross-lane by nature (they may read or mutate any
// node's state), so scheduling one from inside a parallel window is a
// bug: post to an actor instead, or schedule before/after the window.
func (e *Engine) At(t Time, fn func()) {
	if e.inWindow {
		panic("simtime: Engine.At during a parallel window (ambient events are barriers; post to an actor instead)")
	}
	e.schedule(e.ambient, t, fn, nil)
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// schedule assigns the next global sequence number and queues the event
// on lane l. Serial contexts only (including barriers and the commit
// phase's deferred delivery); parallel windows record pushes per lane
// instead (parallel.go).
func (e *Engine) schedule(l *lane, t Time, fn func(), a *Actor) {
	if e.inCommit {
		panic("simtime: scheduling from a commit closure (commits are state application only)")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := l.alloc(t, e.seq, fn, a)
	l.push(ev)
	e.nPending++
	if l.heap[0] == ev {
		e.mergeFix(l)
	}
}

// Step executes the earliest pending event across all lanes, advancing
// Now to its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	l := e.minLane()
	if l == nil {
		return false
	}
	ev := l.pop()
	e.nPending--
	e.mergeFix(l)
	e.now = ev.at
	e.nSteps++
	l.exec(ev)
	l.recycle(ev)
	return true
}

// Run executes events until the queue is empty or the step limit is hit.
// A limit of 0 means no limit. It returns the number of events executed.
// With SetParallel(workers > 1) the events run window-by-window; a window
// is committed whole, so a saturated run may overshoot the limit by the
// tail of its last window (drained runs are unaffected, and execute the
// exact serial event sequence).
func (e *Engine) Run(limit uint64) uint64 {
	if e.workers > 1 {
		return e.runParallel(limit, 0, false)
	}
	var n uint64
	for limit == 0 || n < limit {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline and then advances
// Now to deadline (if the queue drained earlier).
func (e *Engine) RunUntil(deadline Time) {
	if e.workers > 1 {
		e.runParallel(0, deadline, true)
	} else {
		for l := e.minLane(); l != nil && l.heap[0].at <= deadline; l = e.minLane() {
			e.Step()
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Actor models a sequential resource (a node's CPU): events destined for the
// actor serialize on its busy clock, and handlers charge virtual time for
// the work they model. Each actor owns one event lane; all of the actor's
// state is lane-affine, mutated only by its own handlers (or by ambient
// events, which the parallel executor runs as barriers).
type Actor struct {
	eng  *Engine
	lane *lane
	name string
	// busyUntil is the first instant at which the actor is free.
	busyUntil Time
	// localNow is the actor-local clock while inside a handler.
	localNow Time
	inside   bool
}

// NewActor returns an actor bound to engine eng, owning a fresh lane. The
// name is used in panics and debugging output only.
func NewActor(eng *Engine, name string) *Actor {
	return &Actor{eng: eng, lane: eng.newLane(), name: name}
}

// Name returns the actor's debug name.
func (a *Actor) Name() string { return a.name }

// Engine returns the engine the actor is bound to.
func (a *Actor) Engine() *Engine { return a.eng }

// base returns the actor's view of the serial clock: the lane-local clock
// while the lane executes inside a parallel window (where Engine.Now is
// frozen at the window start), the engine clock otherwise (where the two
// agree).
func (a *Actor) base() Time {
	if a.lane.executing {
		return a.lane.now
	}
	return a.eng.now
}

// Now returns the actor-local clock: inside a handler this includes time
// charged so far; outside it is the instant the actor becomes free.
func (a *Actor) Now() Time {
	if a.inside {
		return a.localNow
	}
	if b := a.base(); a.busyUntil <= b {
		return b
	}
	return a.busyUntil
}

// Post schedules fn on the actor at or after absolute time at. If the actor
// is still busy at that instant the handler is delayed until it frees up, so
// handlers on one actor never overlap in virtual time.
//
// During a parallel window, Post is lane-local: it may only be called from
// this actor's own executing handlers (self-posts, quantum pumps, timer
// continuations). Cross-actor messages sent from inside a handler go
// through PostTo on the sending actor.
func (a *Actor) Post(at Time, fn func()) {
	e := a.eng
	if e.inWindow {
		l := a.lane
		if !l.executing {
			panic("simtime: Post to " + a.name + " from a parallel window it is not part of (use PostTo from the sending actor)")
		}
		l.postLocal(at, fn, a)
		return
	}
	e.schedule(a.lane, at, fn, a)
}

// PostAfter schedules fn on the actor d after the current virtual time.
func (a *Actor) PostAfter(d Time, fn func()) {
	if a.lane.executing {
		a.Post(a.lane.now+d, fn)
		return
	}
	a.Post(a.eng.now+d, fn)
}

// PostTo schedules fn on actor dst at absolute time at, from a handler
// running on actor a — the cross-lane message primitive (network
// delivery). Serially it is identical to dst.Post(at, fn). During a
// parallel window the event is buffered on the sending lane and delivered
// by the commit phase with its serial-equivalent sequence number; at must
// then lie at or beyond the window bound, which the conservative horizon
// (the minimum cross-lane message latency) guarantees for any
// latency-respecting model.
func (a *Actor) PostTo(dst *Actor, at Time, fn func()) {
	e := a.eng
	if !e.inWindow || dst.lane == a.lane {
		dst.Post(at, fn)
		return
	}
	l := a.lane
	if !l.executing {
		panic("simtime: PostTo from " + a.name + " outside its own executing handler")
	}
	if at < e.windowBoundAt {
		panic("simtime: PostTo from " + a.name + " to " + dst.name +
			" inside the safe horizon — cross-lane latency below the configured window bound")
	}
	ev := l.alloc(at, 0, fn, dst)
	l.pushes = append(l.pushes, pushEntry{ev: ev, dst: dst.lane})
}

// Commit runs fn in serial merge order: immediately when execution is
// already serial (the default, barriers, setup code), or deferred to the
// window's commit phase when the actor's lane is executing in parallel —
// where all commit closures apply in the exact (at, seq) order of the
// events that issued them. Handlers wrap their mutations of cluster-shared
// state (stats series, trace log, cohort accounting) in Commit, with the
// values to record captured at execution time.
func (a *Actor) Commit(fn func()) {
	if a.eng.inWindow {
		l := a.lane
		if !l.executing {
			panic("simtime: Commit on " + a.name + " from a parallel window it is not part of")
		}
		l.commits = append(l.commits, fn)
		return
	}
	fn()
}

// BusyUntil returns the first instant at which the actor is free — the
// busy-clock state a checkpoint captures. Meaningful outside handlers
// only (a quiesced engine).
func (a *Actor) BusyUntil() Time {
	if a.inside {
		panic("simtime: BusyUntil from inside a handler on " + a.name)
	}
	return a.busyUntil
}

// RestoreBusy sets the actor's busy clock to a value captured by
// BusyUntil — restore-time state installation only.
func (a *Actor) RestoreBusy(t Time) {
	if a.inside {
		panic("simtime: RestoreBusy from inside a handler on " + a.name)
	}
	a.busyUntil = t
}

// Mute runs fn in a handler-like context on the actor with all charges
// discarded: fn may call methods that Charge (state installation paths
// shared with charged handlers) without advancing the busy clock.
// Checkpoint capture and restore use it — the captured busy clocks
// already include every charge of the quiesce itself, so replaying the
// installation must cost nothing. Callable from serial contexts only
// (barriers, setup code), never from inside a parallel window.
func (a *Actor) Mute(fn func()) {
	if a.eng.inWindow {
		panic("simtime: Mute on " + a.name + " during a parallel window")
	}
	savedInside, savedLocal := a.inside, a.localNow
	free := a.Now()
	a.inside = true
	a.localNow = free
	defer func() {
		a.inside, a.localNow = savedInside, savedLocal
	}()
	fn()
}

// Charge advances the actor-local clock by d, modeling d of CPU work. It
// must be called from within a handler posted via Post.
func (a *Actor) Charge(d Time) {
	if !a.inside {
		panic("simtime: Charge outside of actor handler (" + a.name + ")")
	}
	if d < 0 {
		panic("simtime: negative charge on " + a.name)
	}
	a.localNow += d
}
