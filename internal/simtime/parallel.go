package simtime

import (
	"sync"
	"sync/atomic"
)

// The conservative time-window executor. One window works like this:
//
//  1. The engine finds the earliest pending key (T, s). If it belongs to
//     the ambient lane the event is a barrier — it may read or mutate any
//     lane's state (load reports, balancer rounds, driver arrivals) — and
//     runs as a plain serial Step.
//  2. Otherwise the window bound B is the earliest of (T + horizon, 0)
//     and the ambient lane's head key (and the RunUntil deadline, when
//     set). The horizon is the minimum cross-lane message latency, so no
//     event executed in this window can schedule work on another lane
//     before B: events on different lanes inside [T, B) are causally
//     independent and may run concurrently.
//  3. Every lane whose head key precedes B executes its own events past
//     the bound on a worker goroutine — including same-lane descendants
//     pushed during the window, which join the lane's heap immediately
//     with temporary sequence numbers that preserve their lane-local
//     order. Cross-lane pushes (PostTo) and shared-state mutations
//     (Commit) are recorded per lane, in execution order.
//  4. The commit phase replays the per-lane execution logs in global
//     (at, seq) merge order on the driving goroutine. Replaying an event
//     assigns the next global sequence numbers to its recorded pushes in
//     push order — the exact numbering a serial run would have produced,
//     because the replay order is the serial execution order — and runs
//     its commit closures. Cross-lane events are then delivered with
//     their final keys.
//
// After a window commits, every queue, clock, counter and piece of
// committed shared state is byte-identical to a serial run of the same
// schedule — which is what makes traces and stats bit-identical at any
// worker count (pinned by TestParallelMatchesSerial and the scenario
// workers-identity tests).

// tempSeqBase keys same-lane descendants above every real sequence
// number for the duration of a window. A descendant pushed during the
// window would serially receive a sequence number greater than that of
// any event queued before the window, so ordering it after all real
// keys at equal timestamps is already the serial order; descendants
// order among themselves by lane-local push order, which the commit
// replay proves equal to their serial relative order.
const tempSeqBase = uint64(1) << 62

// execRec is one executed event in a lane's window log, with the spans
// of the lane's push and commit buffers it produced.
type execRec struct {
	ev             *event
	pushLo, pushHi int
	comLo, comHi   int
}

// pushEntry is one event pushed during a window. dst is nil for a
// same-lane descendant (already in the lane's heap under a temporary
// sequence number, renumbered at commit) and the destination lane for a
// cross-lane PostTo (delivered at commit).
type pushEntry struct {
	ev  *event
	dst *lane
}

// SetParallel configures the worker pool: workers <= 1 keeps the exact
// serial executor; workers > 1 enables windowed parallel execution with
// the given conservative horizon — the minimum cross-lane message
// latency of the model driving this engine. Call before running.
func (e *Engine) SetParallel(workers int, horizon Time) {
	if workers < 1 {
		workers = 1
	}
	if workers > 1 && horizon <= 0 {
		panic("simtime: parallel execution needs a positive horizon")
	}
	e.workers = workers
	e.horizon = horizon
}

// Workers returns the configured worker count (1 = serial).
func (e *Engine) Workers() int {
	if e.workers < 1 {
		return 1
	}
	return e.workers
}

// WindowStats describes how the parallel executor actually ran: how the
// event stream decomposed into windows and how wide they were. The
// schedule is deterministic, so these counts are too — they are the
// numbers to look at when a parallel run shows no speedup (a mean
// participant count near 1 means the workload serializes on the
// horizon, not on the locks).
type WindowStats struct {
	// AmbientSteps counts barrier events run serially between windows.
	AmbientSteps uint64
	// SingleLaneWindows ran on the driving goroutine (one participant).
	SingleLaneWindows uint64
	// ParallelWindows ran on the worker pool.
	ParallelWindows uint64
	// ParallelEvents is the events executed inside parallel windows;
	// Participants sums the lane count over those windows.
	ParallelEvents uint64
	Participants   uint64
}

// WindowStats returns the executor's window accounting so far. All
// zeros on a serial engine.
func (e *Engine) WindowStats() WindowStats { return e.wstats }

// postLocal queues a same-lane descendant during a parallel window.
func (l *lane) postLocal(at Time, fn func(), a *Actor) {
	if at < l.now {
		at = l.now
	}
	l.tempSeq++
	ev := l.alloc(at, tempSeqBase+l.tempSeq, fn, a)
	l.push(ev)
	l.pushes = append(l.pushes, pushEntry{ev: ev})
}

// runParallel is the window loop behind Run and RunUntil for workers > 1.
func (e *Engine) runParallel(limit uint64, deadline Time, bounded bool) uint64 {
	var executed uint64
	for limit == 0 || executed < limit {
		min := e.minLane()
		if min == nil {
			break
		}
		head := min.heap[0]
		if bounded && head.at > deadline {
			break
		}
		if min == e.ambient {
			e.Step()
			executed++
			e.wstats.AmbientSteps++
			continue
		}
		boundAt, boundSeq := head.at+e.horizon, uint64(0)
		if e.ambient.HasPendingEvents() {
			if at, seq := e.ambient.PeekNextEventTime(); keyLess(at, seq, boundAt, boundSeq) {
				boundAt, boundSeq = at, seq
			}
		}
		if bounded && keyLess(deadline+1, 0, boundAt, boundSeq) {
			boundAt, boundSeq = deadline+1, 0
		}
		executed += e.runWindow(boundAt, boundSeq)
	}
	return executed
}

// runWindow executes every event with key below (boundAt, boundSeq) and
// commits the results, returning the number of events executed.
func (e *Engine) runWindow(boundAt Time, boundSeq uint64) uint64 {
	ps := e.participants[:0]
	for _, l := range e.lanes {
		if l == e.ambient || len(l.heap) == 0 {
			continue
		}
		if at, seq := l.PeekNextEventTime(); keyLess(at, seq, boundAt, boundSeq) {
			ps = append(ps, l)
		}
	}
	e.participants = ps

	if len(ps) == 1 {
		// Single-lane window: its events are the global minimum until
		// the bound, so plain serial steps execute the identical
		// sequence with no recording overhead.
		l := ps[0]
		var n uint64
		for l.HasPendingEvents() {
			if at, seq := l.PeekNextEventTime(); !keyLess(at, seq, boundAt, boundSeq) {
				break
			}
			e.Step()
			n++
		}
		e.wstats.SingleLaneWindows++
		return n
	}
	e.wstats.ParallelWindows++
	e.wstats.Participants += uint64(len(ps))

	e.windowBoundAt = boundAt
	e.inWindow = true
	for _, l := range ps {
		l.executing = true
	}
	nw := e.workers
	if nw > len(ps) {
		nw = len(ps)
	}
	var next atomic.Int64
	var panicked atomic.Pointer[any]
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			// Re-raise worker panics on the driving goroutine, so model
			// bugs (horizon violations, barrier misuse) surface as normal
			// panics of the Run call instead of killing the process.
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ps) {
					return
				}
				ps[i].runLaneWindow(boundAt, boundSeq)
			}
		}()
	}
	wg.Wait()
	e.inWindow = false
	if r := panicked.Load(); r != nil {
		panic(*r)
	}
	for _, l := range ps {
		l.executing = false
	}

	n := e.commitWindow(ps)
	e.wstats.ParallelEvents += n
	for _, l := range ps {
		l.recs, l.pushes, l.commits = l.recs[:0], l.pushes[:0], l.commits[:0]
		l.tempSeq = 0
	}
	e.rebuildMerge()
	return n
}

// runLaneWindow executes this lane's events up to the window bound on a
// worker goroutine, logging each executed event with the pushes and
// commits it produced.
func (l *lane) runLaneWindow(boundAt Time, boundSeq uint64) {
	for l.HasPendingEvents() {
		if at, seq := l.PeekNextEventTime(); !keyLess(at, seq, boundAt, boundSeq) {
			return
		}
		ev := l.pop()
		l.recs = append(l.recs, execRec{ev: ev, pushLo: len(l.pushes), comLo: len(l.commits)})
		ri := len(l.recs) - 1
		l.exec(ev)
		l.recs[ri].pushHi = len(l.pushes)
		l.recs[ri].comHi = len(l.commits)
	}
}

// commitWindow replays the participants' execution logs in global
// (at, seq) order: sequence assignment for every push, commit closures,
// step accounting and event recycling all happen exactly as a serial run
// would have interleaved them. A record's key is always resolved by the
// time it reaches a cursor head: window-start events carry real sequence
// numbers, and a descendant's parent precedes it in the same lane's log,
// so the parent's replay assigned the descendant's number already.
func (e *Engine) commitWindow(ps []*lane) uint64 {
	e.inCommit = true
	h := e.cursorHeap[:0]
	for _, l := range ps {
		l.cursor = 0
		h = append(h, l)
	}
	e.cursorHeap = h
	cursorLess := func(a, b *lane) bool {
		return eventLess(a.recs[a.cursor].ev, b.recs[b.cursor].ev)
	}
	siftDown := func(i int) {
		n := len(h)
		for {
			least := i
			if c := 2*i + 1; c < n && cursorLess(h[c], h[least]) {
				least = c
			}
			if c := 2*i + 2; c < n && cursorLess(h[c], h[least]) {
				least = c
			}
			if least == i {
				return
			}
			h[i], h[least] = h[least], h[i]
			i = least
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}

	deferred := e.deferred[:0]
	var executed uint64
	lastAt := e.now
	for len(h) > 0 {
		l := h[0]
		r := &l.recs[l.cursor]
		for i := r.pushLo; i < r.pushHi; i++ {
			p := l.pushes[i]
			e.seq++
			p.ev.seq = e.seq
			if p.dst != nil {
				deferred = append(deferred, p)
			}
		}
		for i := r.comLo; i < r.comHi; i++ {
			l.commits[i]()
			l.commits[i] = nil
		}
		e.nSteps++
		executed++
		lastAt = r.ev.at
		l.recycle(r.ev)
		l.cursor++
		if l.cursor < len(l.recs) {
			siftDown(0)
		} else {
			last := len(h) - 1
			h[0] = h[last]
			h[last] = nil
			h = h[:last]
			if last > 0 {
				siftDown(0)
			}
		}
	}
	e.cursorHeap = h[:0]
	e.now = lastAt
	e.inCommit = false

	// Every temporary sequence number is now resolved, so cross-lane
	// events can join their destination heaps with final keys. The merge
	// heap is rebuilt wholesale by the caller.
	for i, p := range deferred {
		p.dst.push(p.ev)
		deferred[i] = pushEntry{}
	}
	e.deferred = deferred[:0]
	return executed
}
