package simtime

import (
	"testing"

	"repro/internal/rng"
)

// refHeap is the pre-lane kernel's data structure — one global event
// heap with a global sequence counter — kept as the oracle for the
// merge-order property test. Identical comparator, identical
// scheduling-order tie-break.
type refHeap struct {
	events []*event
	seq    uint64
}

func (h *refHeap) push(at Time) {
	h.seq++
	h.events = append(h.events, &event{at: at, seq: h.seq})
	i := len(h.events) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h.events[i], h.events[p]) {
			break
		}
		h.events[i], h.events[p] = h.events[p], h.events[i]
		i = p
	}
}

func (h *refHeap) pop() (Time, uint64) {
	ev := h.events[0]
	last := len(h.events) - 1
	h.events[0] = h.events[last]
	h.events[last] = nil
	h.events = h.events[:last]
	n := len(h.events)
	i := 0
	for {
		least := i
		if c := 2*i + 1; c < n && eventLess(h.events[c], h.events[least]) {
			least = c
		}
		if c := 2*i + 2; c < n && eventLess(h.events[c], h.events[least]) {
			least = c
		}
		if least == i {
			break
		}
		h.events[i], h.events[least] = h.events[least], h.events[i]
		i = least
	}
	return ev.at, ev.seq
}

// TestLaneMergeMatchesReference is the tentpole's property test: for
// randomized schedules — heavy timestamp collisions, past-time clamping,
// and events scheduled from inside running handlers — the lane-decomposed
// engine pops the exact (at, seq) sequence the monolithic global heap
// would have. Scheduling goes through both structures in lockstep, so
// the sequence counters agree by construction and any divergence in pop
// order is a lane/merge bug.
func TestLaneMergeMatchesReference(t *testing.T) {
	r := rng.New(0x1a4e5)
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		actors := make([]*Actor, 1+r.Intn(7))
		for i := range actors {
			actors[i] = NewActor(e, "n")
		}
		ref := &refHeap{}

		// schedule queues one event on a random lane — sometimes the
		// ambient lane, sometimes an actor — and mirrors it into the
		// reference heap with the engine's clamped timestamp. Executed
		// events reschedule children at nearby (often colliding, sometimes
		// past) timestamps, up to a bounded depth.
		var schedule func(at Time, depth int)
		schedule = func(at Time, depth int) {
			lane := r.Intn(len(actors) + 1)
			kids := 0
			if depth < 3 {
				kids = r.Intn(3)
			}
			kidAt := make([]Time, kids)
			for i := range kidAt {
				kidAt[i] = at - 4 + Time(r.Intn(16))
			}
			fn := func() {
				for _, ka := range kidAt {
					schedule(ka, depth+1)
				}
			}
			if lane == 0 {
				e.At(at, fn)
			} else {
				actors[lane-1].Post(at, fn)
			}
			clamped := at
			if clamped < e.Now() {
				clamped = e.Now()
			}
			ref.push(clamped)
		}
		for i, n := 0, 20+r.Intn(60); i < n; i++ {
			schedule(Time(r.Intn(64)), 0)
		}

		steps := 0
		for e.Pending() > 0 {
			wat, wseq := ref.pop()
			gat, gseq := e.minLane().PeekNextEventTime()
			if gat != wat || gseq != wseq {
				t.Fatalf("trial %d step %d: lane merge at (%d,%d), reference heap at (%d,%d)",
					trial, steps, gat, gseq, wat, wseq)
			}
			e.Step()
			steps++
		}
		if len(ref.events) != 0 {
			t.Fatalf("trial %d: reference heap kept %d events after the engine drained",
				trial, len(ref.events))
		}
		if steps == 0 {
			t.Fatalf("trial %d executed no events", trial)
		}
	}
}

// TestStepPrimitives exercises the per-lane step interface directly:
// HasPendingEvents / PeekNextEventTime / ProcessNextEvent on one lane
// behave as an independent queue with a lane-local clock.
func TestStepPrimitives(t *testing.T) {
	e := NewEngine()
	a := NewActor(e, "a")
	b := NewActor(e, "b")
	var ran []Time
	a.Post(30, func() { ran = append(ran, 30) })
	a.Post(10, func() { ran = append(ran, 10) })
	b.Post(5, func() {})
	l := a.lane
	if !l.HasPendingEvents() {
		t.Fatal("lane should have pending events")
	}
	if at, _ := l.PeekNextEventTime(); at != 10 {
		t.Fatalf("peek = %v, want 10", at)
	}
	ev := l.ProcessNextEvent()
	if ev.at != 10 || l.now != 10 {
		t.Fatalf("processed at=%v lane now=%v, want 10/10", ev.at, l.now)
	}
	l.recycle(ev)
	if at, _ := l.PeekNextEventTime(); at != 30 {
		t.Fatalf("peek after pop = %v, want 30", at)
	}
	if !b.lane.HasPendingEvents() {
		t.Fatal("lane b must be untouched by stepping lane a")
	}
	if len(ran) != 1 || ran[0] != 10 {
		t.Fatalf("ran = %v", ran)
	}
}

// TestKernelStepAllocations extends the AllocsPerRun guard from the
// convoy path to the kernel: with warmed free lists and pre-built
// closures, scheduling + executing an event allocates nothing.
func TestKernelStepAllocations(t *testing.T) {
	e := NewEngine()
	a := NewActor(e, "a")
	b := NewActor(e, "b")
	var ping, pong func()
	ping = func() {
		a.Charge(time3)
		b.Post(a.Now()+time2, pong)
	}
	pong = func() {
		b.Charge(time3)
		a.Post(b.Now()+time2, ping)
	}
	// Warm the free lists and the heap/merge capacity.
	a.Post(0, ping)
	e.Run(64)
	avg := testing.AllocsPerRun(200, func() {
		e.Run(2)
	})
	if avg > 0 {
		t.Fatalf("kernel steady state allocates %.2f allocs per 2 events, want 0", avg)
	}
}

const (
	time2 = 2 * Microsecond
	time3 = 3 * Microsecond
)
