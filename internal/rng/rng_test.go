package rng

import (
	"math"
	"testing"
)

func TestCanonSeed(t *testing.T) {
	if got := CanonSeed(0); got != 1 {
		t.Fatalf("CanonSeed(0) = %d, want 1", got)
	}
	for _, s := range []uint64{1, 2, 42, math.MaxUint64} {
		if got := CanonSeed(s); got != s {
			t.Fatalf("CanonSeed(%d) = %d, want identity", s, got)
		}
	}
}

// Seed 0 and seed 1 must be the same stream — the one canonical seed
// rule the trace format and the scenario defaults both rely on.
func TestZeroSeedAliasesOne(t *testing.T) {
	a, b := New(0), New(1)
	for i := 0; i < 64; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: seed 0 gave %#x, seed 1 gave %#x", i, x, y)
		}
	}
}

// The splitmix64 stream is pinned bit-for-bit: recorded serve traces
// and golden scenario traces would silently change if these moved.
func TestSplitmix64KnownAnswers(t *testing.T) {
	r := New(1234567)
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d: got %#016x, want %#016x", i, got, w)
		}
	}
}

func TestDistributionsDeterministicAndInRange(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("Float64 diverged at draw %d", i)
		} else if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", x)
		}
	}
	for i := 0; i < 1000; i++ {
		if x, y := a.Exp(1.5), b.Exp(1.5); x != y {
			t.Fatalf("Exp diverged at draw %d", i)
		} else if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("Exp out of range: %v", x)
		}
	}
	for i := 0; i < 1000; i++ {
		if x, y := a.LogNormal(8, 0.6), b.LogNormal(8, 0.6); x != y {
			t.Fatalf("LogNormal diverged at draw %d", i)
		} else if x <= 0 {
			t.Fatalf("LogNormal non-positive: %v", x)
		}
	}
	for i := 0; i < 1000; i++ {
		if x, y := a.Pareto(8000, 1.5), b.Pareto(8000, 1.5); x != y {
			t.Fatalf("Pareto diverged at draw %d", i)
		} else if x < 8000 {
			t.Fatalf("Pareto below scale: %v", x)
		}
	}
}

// Normal consumes exactly two uniforms per draw — interleaving other
// draws must not shift the stream (no cached second deviate).
func TestNormalFixedDrawCount(t *testing.T) {
	a := New(7)
	a.Normal()
	after := a.Uint64()

	b := New(7)
	b.Uint64()
	b.Uint64()
	if got := b.Uint64(); got != after {
		t.Fatalf("Normal consumed a number of uniforms other than 2")
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("Range(5,9) = %d", v)
		}
	}
	if v := r.Range(4, 4); v != 4 {
		t.Fatalf("Range(4,4) = %d", v)
	}
}
