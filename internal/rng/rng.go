// Package rng is the repository's deterministic random stream: a
// splitmix64 generator owned by us instead of math/rand so workload
// streams are reproducible bit-for-bit across Go releases — golden
// traces and recorded serve traces both depend on it.
//
// Seed handling follows one rule, shared by every consumer (the
// scenario harness defaults, the serve trace-file header, and the
// generator itself): seed 0 is canonicalized to 1 by CanonSeed, and New
// applies CanonSeed before seeding. A recorded trace therefore always
// carries the canonical seed, and replaying it can never desync from a
// live run that was started with seed 0.
package rng

import "math"

// CanonSeed maps the zero seed to the canonical default 1. Every layer
// that stores or compares seeds must canonicalize through this one
// function so recorded and live streams agree.
func CanonSeed(seed uint64) uint64 {
	if seed == 0 {
		return 1
	}
	return seed
}

// Rand is a splitmix64 PRNG.
type Rand struct {
	state uint64
}

// New seeds a generator with CanonSeed(seed).
func New(seed uint64) *Rand {
	return &Rand{state: CanonSeed(seed)}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn on non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a value in [lo, hi].
func (r *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: empty range")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). rate must be positive.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp needs a positive rate")
	}
	// 1-u is in (0, 1], so the log is finite.
	u := r.Float64()
	return -math.Log(1-u) / rate
}

// Normal returns a standard normal value via Box–Muller. Each call
// consumes two uniforms (no caching of the second deviate — keeping the
// draw count per sample fixed keeps recorded streams reproducible even
// if callers interleave other draws).
func (r *Rand) Normal() float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	// u1 = 0 would take log(0); shift into (0, 1].
	radius := math.Sqrt(-2 * math.Log(1-u1))
	angle := 2 * math.Pi * u2
	return radius * math.Cos(angle)
}

// LogNormal returns exp(N(mu, sigma)): median exp(mu), heavy right tail
// growing with sigma. The intermediate products are assigned to
// variables so the compiler cannot fuse them into an FMA — fused
// rounding would make recorded streams architecture-dependent.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	z := r.Normal()
	sz := sigma * z
	return math.Exp(mu + sz)
}

// Pareto returns a Pareto(scale, alpha) value: scale * u^(-1/alpha),
// heavy-tailed with tail index alpha (smaller alpha = heavier tail).
func (r *Rand) Pareto(scale, alpha float64) float64 {
	if alpha <= 0 {
		panic("rng: Pareto needs a positive alpha")
	}
	u := r.Float64()
	return scale * math.Pow(1-u, -1/alpha)
}
