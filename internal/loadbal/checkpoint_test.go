package loadbal

import (
	"bytes"
	"testing"

	"repro/internal/pm2"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// buildImbalanced returns a 4-node cluster with all work piled on node
// 0 and a 2 ms balancer attached — mid-run there is always a round
// pending, which is what a checkpoint has to capture.
func buildImbalanced(t *testing.T) (*pm2.Cluster, *Balancer) {
	t.Helper()
	c := pm2.New(pm2.Config{Nodes: 4}, progs.NewImage())
	for i := 0; i < 12; i++ {
		c.SpawnSync(0, "worker", 60_000)
	}
	b := Attach(c, Config{
		Period:           2 * simtime.Millisecond,
		Threshold:        2,
		MaxMovesPerRound: 2,
	})
	return c, b
}

// TestCheckpointThroughBalancer is the balancer-composition property:
// a checkpoint taken while a balancer is attached and mid-cadence
// succeeds (instead of failing the quiesce budget), serializes as
// pm2ckpt v2 with the round state, and a restored cluster with the
// balancer reattached from that state continues byte-identically to
// resuming the original in place — including the balancer's own
// Rounds/Moves accounting.
func TestCheckpointThroughBalancer(t *testing.T) {
	c, b := buildImbalanced(t)
	c.RunFor(5 * simtime.Millisecond)
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint through an attached balancer: %v", err)
	}
	if ck.Balancer == nil {
		t.Fatal("checkpoint carries no balancer section")
	}
	if ck.Balancer.Rounds == 0 {
		t.Fatal("captured balancer never ran a round before the checkpoint")
	}
	if ck.Balancer.NextRoundAt == 0 || ck.Balancer.NextRoundAt > ck.Now {
		t.Fatalf("captured NextRoundAt = %v, want a pending slot at or before the quiescent instant %v",
			ck.Balancer.NextRoundAt, ck.Now)
	}
	data := ck.Encode()
	if !bytes.HasPrefix(data, []byte("pm2ckpt v2\n")) {
		t.Fatalf("balancer capture not serialized as v2 (starts %q)", data[:12])
	}

	// In-place continuation: Resume restarts the paused balancer.
	c.Resume()
	c.Run(0)
	resumed := c.Trace().String()

	// Restored continuation: decode, restore, reattach from the image.
	ck2, err := pm2.DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decode v2: %v", err)
	}
	if ck2.Balancer == nil || *ck2.Balancer != *ck.Balancer {
		t.Fatalf("balancer state did not round-trip: %+v vs %+v", ck2.Balancer, ck.Balancer)
	}
	rc, err := pm2.RestoreCluster(pm2.Config{Nodes: 4}, progs.NewImage(), ck2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	rb := AttachFromCheckpoint(rc, Config{}, *ck2.Balancer)
	rc.Run(0)
	if got := rc.Trace().String(); got != resumed {
		t.Fatalf("restored continuation diverges from in-place resume:\n--- resumed\n%s\n--- restored\n%s", resumed, got)
	}
	if rb.Rounds() != b.Rounds() || rb.Moves() != b.Moves() {
		t.Fatalf("balancer accounting diverged: restored rounds=%d moves=%d, resumed rounds=%d moves=%d",
			rb.Rounds(), rb.Moves(), b.Rounds(), b.Moves())
	}
	if rb.Rounds() <= ck.Balancer.Rounds {
		t.Fatalf("restored balancer never resumed its cadence (rounds stuck at %d)", rb.Rounds())
	}
	if err := rc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointDrainedBalancerStaysV1 pins the compatibility edge: a
// balancer that already drained (stopped rescheduling on an idle
// cluster) contributes no round state, and the capture stays a plain
// v1 image — byte-compatible with readers that predate the section.
func TestCheckpointDrainedBalancerStaysV1(t *testing.T) {
	c := pm2.New(pm2.Config{Nodes: 2}, progs.NewImage())
	c.SpawnSync(0, "worker", 5_000)
	Attach(c, Config{Period: 2 * simtime.Millisecond})
	c.Run(0) // workload finishes, balancer sees an empty cluster and drains
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint after drain: %v", err)
	}
	if ck.Balancer != nil {
		t.Fatalf("drained balancer still captured: %+v", ck.Balancer)
	}
	if data := ck.Encode(); !bytes.HasPrefix(data, []byte("pm2ckpt v1\n")) {
		t.Fatalf("idle-balancer capture not serialized as v1 (starts %q)", data[:12])
	}
}
