package loadbal

import (
	"strings"
	"testing"

	"repro/internal/pm2"
	"repro/internal/progs"
	"repro/internal/simtime"
)

func TestBalancerSpreadsLoad(t *testing.T) {
	c := pm2.New(pm2.Config{Nodes: 4}, progs.NewImage())
	// All work lands on node 0, as in an irregular application phase.
	for i := 0; i < 12; i++ {
		c.SpawnSync(0, "worker", 60_000)
	}
	b := Attach(c, Config{
		Period:           2 * simtime.Millisecond,
		Threshold:        2,
		MaxMovesPerRound: 2,
	})
	// Let the balancer operate while threads run.
	c.RunFor(40 * simtime.Millisecond)
	// Threads must have been spread out.
	spread := 0
	for i := 1; i < 4; i++ {
		spread += c.Node(i).Scheduler().Threads()
	}
	if b.Moves() == 0 || spread == 0 {
		t.Fatalf("balancer idle: moves=%d spread=%d", b.Moves(), spread)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.Run(0)
	// Every worker finishes despite being bounced around, and the
	// isomalloc cell each carries stays consistent.
	lines := c.Trace().Lines()
	if len(lines) != 12 {
		t.Fatalf("finished = %d, want 12:\n%s", len(lines), c.Trace().String())
	}
	// Some finished away from node 0.
	away := 0
	for _, l := range lines {
		if !strings.HasSuffix(l, "on node 0") {
			away++
		}
	}
	if away == 0 {
		t.Fatal("no worker finished on a remote node")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancerStopsWhenIdle(t *testing.T) {
	c := pm2.New(pm2.Config{Nodes: 2}, progs.NewImage())
	b := Attach(c, Config{Period: 1 * simtime.Millisecond})
	// No threads at all: the balancer must not keep the engine alive
	// forever.
	c.Run(1_000)
	if c.Engine().Pending() != 0 {
		t.Fatalf("events still pending: %d", c.Engine().Pending())
	}
	if b.Rounds() == 0 {
		t.Fatal("balancer never ran")
	}
}

func TestBalancerStop(t *testing.T) {
	c := pm2.New(pm2.Config{Nodes: 2}, progs.NewImage())
	c.SpawnSync(0, "worker", 100_000)
	b := Attach(c, Config{Period: 1 * simtime.Millisecond, Threshold: 1})
	b.Stop()
	c.RunFor(10 * simtime.Millisecond)
	if b.Moves() != 0 {
		t.Fatal("stopped balancer still migrating")
	}
}

func TestBalancerRespectsThreshold(t *testing.T) {
	c := pm2.New(pm2.Config{Nodes: 2}, progs.NewImage())
	// One thread per node: perfectly balanced; threshold 2 must hold it.
	c.SpawnSync(0, "worker", 50_000)
	c.SpawnSync(1, "worker", 50_000)
	b := Attach(c, Config{Period: 1 * simtime.Millisecond, Threshold: 2})
	c.RunFor(20 * simtime.Millisecond)
	if b.Moves() != 0 {
		t.Fatalf("balancer moved threads across a balanced cluster: %d", b.Moves())
	}
}

// TestBalancerConvoysBatchedMoves: with the convoy pipeline on, a
// balancing decision that moves several threads to one destination ships
// them as one convoy message — and the workload still completes with
// every pointer intact. The same run with the pipeline off must use zero
// convoys (golden-neutrality of the default).
func TestBalancerConvoysBatchedMoves(t *testing.T) {
	run := func(convoy bool) (pm2.Stats, int, []string) {
		c := pm2.New(pm2.Config{Nodes: 2, Convoy: convoy}, progs.NewImage())
		for i := 0; i < 10; i++ {
			c.SpawnSync(0, "worker", 60_000)
		}
		b := Attach(c, Config{
			Period:           2 * simtime.Millisecond,
			Threshold:        2,
			MaxMovesPerRound: 4,
		})
		c.Run(0)
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return c.Stats(), b.Moves(), c.Trace().Lines()
	}

	st, moves, lines := run(true)
	if moves == 0 || st.Migrations == 0 {
		t.Fatalf("balancer idle under convoy: moves=%d migrations=%d", moves, st.Migrations)
	}
	if st.Convoys == 0 {
		t.Fatalf("multi-thread moves (%d migrations) produced no convoy message", st.Migrations)
	}
	if len(lines) != 10 {
		t.Fatalf("finished = %d, want 10:\n%s", len(lines), strings.Join(lines, "\n"))
	}

	stOff, _, linesOff := run(false)
	if stOff.Convoys != 0 {
		t.Fatalf("convoy off still sent %d convoy messages", stOff.Convoys)
	}
	if len(linesOff) != 10 {
		t.Fatalf("convoy off finished = %d, want 10", len(linesOff))
	}
}
