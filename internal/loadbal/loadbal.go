// Package loadbal implements the generic load-balancing module the paper
// motivates in §2: "a generic module implemented outside the running
// application could balance the load by migrating the application threads.
// The threads are unaware of their being migrated and keep on running
// irrespective of their location."
//
// The balancer runs as a periodic virtual-time activity: it samples each
// node's resident thread count and preemptively migrates threads from the
// most loaded node to the least loaded one. It uses only the public
// migration mechanism — no cooperation from the threads.
package loadbal

import (
	"repro/internal/marcel"
	"repro/internal/pm2"
	"repro/internal/simtime"
)

// Config parameterizes a balancer.
type Config struct {
	// Period between balancing rounds (default 5 ms of virtual time).
	Period simtime.Time
	// Threshold is the minimum load imbalance (max - min resident
	// threads) that triggers a migration (default 2).
	Threshold int
	// MaxMovesPerRound bounds migrations per round (default 1).
	MaxMovesPerRound int
}

// Balancer periodically redistributes threads over a cluster.
type Balancer struct {
	c       *pm2.Cluster
	cfg     Config
	stopped bool
	moves   int
	rounds  int
}

// Attach starts a balancer on the cluster. It schedules itself on the
// discrete-event engine and keeps running until Stop (or until the engine
// drains with no further work).
func Attach(c *pm2.Cluster, cfg Config) *Balancer {
	if cfg.Period <= 0 {
		cfg.Period = 5 * simtime.Millisecond
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2
	}
	if cfg.MaxMovesPerRound <= 0 {
		cfg.MaxMovesPerRound = 1
	}
	b := &Balancer{c: c, cfg: cfg}
	b.schedule()
	return b
}

// Moves returns the number of migrations the balancer has requested.
func (b *Balancer) Moves() int { return b.moves }

// Rounds returns the number of balancing rounds executed.
func (b *Balancer) Rounds() int { return b.rounds }

// Stop disables further rounds.
func (b *Balancer) Stop() { b.stopped = true }

func (b *Balancer) schedule() {
	b.c.Engine().After(b.cfg.Period, b.round)
}

func (b *Balancer) round() {
	if b.stopped {
		return
	}
	b.rounds++
	// Sample loads. Reading counts is a control-plane observation; the
	// migration requests go through the owning node's actor.
	busiest, idlest := -1, -1
	maxLoad, minLoad := -1, 1<<30
	totalThreads := 0
	for i := 0; i < b.c.Nodes(); i++ {
		load := b.c.Node(i).Scheduler().Threads()
		totalThreads += load
		if load > maxLoad {
			maxLoad, busiest = load, i
		}
		if load < minLoad {
			minLoad, idlest = load, i
		}
	}
	if totalThreads == 0 {
		// Nothing left to balance; stop rescheduling so the engine
		// can drain.
		return
	}
	if maxLoad-minLoad >= b.cfg.Threshold && busiest != idlest {
		moves := b.cfg.MaxMovesPerRound
		if d := (maxLoad - minLoad) / 2; d < moves {
			moves = d
		}
		if moves < 1 {
			moves = 1
		}
		src, dst := busiest, idlest
		b.c.At(src, func(n *pm2.Node) {
			moved := 0
			for _, t := range n.Scheduler().Snapshot() {
				if moved == moves {
					break
				}
				if b.migratable(t) && n.Scheduler().RequestMigration(t.TID, dst) {
					moved++
					b.moves++
				}
			}
		})
	}
	b.schedule()
}

// migratable filters out threads that should not move: blocked threads
// would only migrate on wake-up, so prefer runnable ones.
func (b *Balancer) migratable(t *marcel.Thread) bool {
	return !t.Blocked() && t.MigrateTo < 0
}
