// Package loadbal implements the generic load-balancing module the paper
// motivates in §2: "a generic module implemented outside the running
// application could balance the load by migrating the application threads.
// The threads are unaware of their being migrated and keep on running
// irrespective of their location."
//
// The balancer runs as a periodic virtual-time activity: it samples each
// node's resident thread count into the cluster's policy engine
// (internal/policy) and executes whatever migrations the policy decides.
// With the default negotiation policy this is exactly the seed behavior —
// preemptively migrate from the most loaded node to the least loaded one
// past a threshold — but any policy (round-robin spread, work stealing)
// plugs in through Config.Policy or the cluster's own Config.Placement.
// It uses only the public migration mechanism — no cooperation from the
// threads.
package loadbal

import (
	"repro/internal/marcel"
	"repro/internal/pm2"
	"repro/internal/policy"
	"repro/internal/simtime"
)

// Config parameterizes a balancer.
type Config struct {
	// Period between balancing rounds (default 5 ms of virtual time).
	Period simtime.Time
	// Threshold is the minimum load imbalance (max - min resident
	// threads) that triggers a migration. Applied, only when set, to
	// the threshold/negotiation scheme (which defaults to 2 itself);
	// it is ignored when the deciding policy is anything else,
	// including a wrapped/decorated threshold policy.
	Threshold int
	// MaxMovesPerRound bounds migrations per round, with the same
	// set-only, negotiation-only semantics (the policy defaults to 1).
	MaxMovesPerRound int
	// Policy overrides the cluster's placement policy for balancing
	// decisions. Default nil: share the cluster's policy engine, so
	// spawn placement and balancing see the same state.
	Policy policy.Policy
	// StaleAfter, when set, marks load reports older than this as
	// stale, making their nodes ineligible as migration sources or
	// destinations (0 = leave the engine's current window unchanged).
	// The balancer refreshes every node each round, so this matters
	// for externally fed reports.
	StaleAfter simtime.Time
	// KeepAliveUntil keeps rounds scheduled through this virtual time
	// even when the cluster is momentarily idle, for workloads that
	// spawn in waves. Zero preserves the drain-on-idle behavior: the
	// first round that sees an empty cluster stops rescheduling.
	KeepAliveUntil simtime.Time
}

// Balancer periodically redistributes threads over a cluster.
type Balancer struct {
	c       *pm2.Cluster
	cfg     Config
	eng     *policy.Engine
	stopped bool
	paused  bool
	moves   int
	rounds  int
	// nextRoundAt is the absolute virtual time the next round is
	// scheduled for, zero when no round is pending (drained, stopped or
	// not yet scheduled) — what a checkpoint captures to restart the
	// cadence on the other side.
	nextRoundAt simtime.Time
}

// Attach starts a balancer on the cluster. It schedules itself on the
// discrete-event engine and keeps running until Stop (or until the engine
// drains with no further work).
func Attach(c *pm2.Cluster, cfg Config) *Balancer {
	b := attach(c, cfg)
	b.schedule()
	return b
}

// attach builds and registers a balancer without scheduling its first
// round — shared by Attach and AttachFromCheckpoint, which differ only
// in when (and whether) the cadence starts.
func attach(c *pm2.Cluster, cfg Config) *Balancer {
	if cfg.Period <= 0 {
		cfg.Period = 5 * simtime.Millisecond
	}
	b := &Balancer{c: c, cfg: cfg}
	if cfg.Policy != nil {
		b.eng = policy.NewEngine(cfg.Policy, c.Nodes())
	} else {
		b.eng = c.Placement()
	}
	// Apply only knobs the caller actually set: the engine may be the
	// cluster's shared one, whose existing tuning must survive Attach.
	if cfg.StaleAfter > 0 {
		b.eng.StaleAfter = cfg.StaleAfter
	}
	if neg, ok := b.eng.Policy().(*policy.Negotiation); ok {
		if cfg.Threshold > 0 {
			neg.Threshold = cfg.Threshold
		}
		if cfg.MaxMovesPerRound > 0 {
			neg.MaxMoves = cfg.MaxMovesPerRound
		}
	}
	c.SetBalancer(b)
	return b
}

// AttachFromCheckpoint reattaches a balancer on a restored cluster from
// the round state a pm2ckpt v2 image carries. Config fields left at
// their zero value are filled from the capture, so the common call is
// AttachFromCheckpoint(c, Config{}, *ck.Balancer); the skipped round
// the capture paused is rescheduled at max(NextRoundAt, now), exactly
// as Resume does on the original cluster — the two continuations stay
// byte-identical.
func AttachFromCheckpoint(c *pm2.Cluster, cfg Config, st pm2.BalancerCheckpoint) *Balancer {
	if cfg.Period <= 0 {
		cfg.Period = st.Period
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = st.Threshold
	}
	if cfg.MaxMovesPerRound == 0 {
		cfg.MaxMovesPerRound = st.MaxMoves
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = st.StaleAfter
	}
	if cfg.KeepAliveUntil == 0 {
		cfg.KeepAliveUntil = st.KeepAliveUntil
	}
	b := attach(c, cfg)
	b.CheckpointResume(st)
	return b
}

// CheckpointPause implements pm2.BalancerCheckpointer: stop scheduling
// (the already-pending round, if any, fires as a no-op during the
// checkpoint drain) and hand the round state to the capture.
func (b *Balancer) CheckpointPause() pm2.BalancerCheckpoint {
	b.paused = true
	return pm2.BalancerCheckpoint{
		Period:         b.cfg.Period,
		NextRoundAt:    b.nextRoundAt,
		StaleAfter:     b.cfg.StaleAfter,
		KeepAliveUntil: b.cfg.KeepAliveUntil,
		Threshold:      b.cfg.Threshold,
		MaxMoves:       b.cfg.MaxMovesPerRound,
		Rounds:         b.rounds,
		Moves:          b.moves,
	}
}

// CheckpointResume implements pm2.BalancerCheckpointer: undo the pause
// and re-run the round the drain skipped. The skipped round's slot
// (st.NextRoundAt) is never after the quiescent instant — the drain
// executed past it — so the round fires at the restored clock and the
// cadence continues at its original period from there.
func (b *Balancer) CheckpointResume(st pm2.BalancerCheckpoint) {
	b.paused = false
	b.rounds, b.moves = st.Rounds, st.Moves
	if st.NextRoundAt == 0 {
		return // the balancer had drained before the capture
	}
	at := st.NextRoundAt
	if now := b.c.Engine().Now(); at < now {
		at = now
	}
	b.nextRoundAt = at
	b.c.Engine().At(at, b.round)
}

// Engine returns the policy engine driving this balancer's decisions.
func (b *Balancer) Engine() *policy.Engine { return b.eng }

// Moves returns the number of migrations the balancer has requested.
func (b *Balancer) Moves() int { return b.moves }

// Rounds returns the number of balancing rounds executed.
func (b *Balancer) Rounds() int { return b.rounds }

// Stop disables further rounds.
func (b *Balancer) Stop() { b.stopped = true }

func (b *Balancer) schedule() {
	b.nextRoundAt = b.c.Engine().Now() + b.cfg.Period
	b.c.Engine().After(b.cfg.Period, b.round)
}

func (b *Balancer) round() {
	if b.stopped || b.paused {
		return
	}
	b.nextRoundAt = 0
	b.rounds++
	// The balancing round doubles as the failure detector's heartbeat:
	// each round first ages the leases of nodes that stopped answering
	// (no-op on a healthy cluster; see pm2's fault layer).
	b.c.HeartbeatTick()
	// Sample loads into the engine. Reading counts is a control-plane
	// observation; the migration requests go through the owning node's
	// actor.
	now := b.c.Engine().Now()
	totalThreads := 0
	for i := 0; i < b.c.Nodes(); i++ {
		sched := b.c.Node(i).Scheduler()
		resident := sched.Threads()
		// An unresponsive (crashed but not yet declared) node files no
		// report — its last sample ages into staleness, so the policy
		// stops routing threads at it during the detection window. Its
		// residents still count: the cluster is not drained while a dead
		// node holds threads awaiting evacuation.
		totalThreads += resident
		if !b.c.NodeResponsive(i) {
			continue
		}
		b.eng.Report(policy.LoadReport{
			Node:            i,
			Resident:        resident,
			Runnable:        sched.Runnable(),
			VersionDeclines: b.c.VersionDeclinesOf(i),
			Time:            now,
		})
	}
	if totalThreads == 0 {
		// Nothing left to balance; stop rescheduling so the engine
		// can drain — unless a wave workload asked us to outlive the
		// lull.
		if now < b.cfg.KeepAliveUntil {
			b.schedule()
		}
		return
	}
	for _, mv := range b.eng.Decide(now) {
		b.execute(mv)
	}
	b.schedule()
}

// execute requests mv.Count preemptive migrations from mv.Src to mv.Dst,
// picking runnable threads in TID order. When the convoy pipeline is on
// and the move covers several threads, they are frozen together and
// shipped as one zero-copy convoy message; otherwise each thread is
// marked for migration at its next quantum boundary, exactly as before.
func (b *Balancer) execute(mv policy.Move) {
	convoy := b.c.ConvoyEnabled()
	b.c.At(mv.Src, func(n *pm2.Node) {
		batch := make([]uint32, 0, mv.Count)
		for _, t := range n.Scheduler().Snapshot() {
			if len(batch) == mv.Count {
				break
			}
			if b.migratable(t) {
				batch = append(batch, t.TID)
			}
		}
		// b.moves is balancer-shared state mutated from a node handler:
		// count locally, commit in merge order.
		if convoy && len(batch) > 1 {
			moved := n.MigrateBatch(batch, mv.Dst)
			n.Actor().Commit(func() { b.moves += moved })
			return
		}
		moved := 0
		for _, tid := range batch {
			if n.Scheduler().RequestMigration(tid, mv.Dst) {
				moved++
			}
		}
		if moved > 0 {
			n.Actor().Commit(func() { b.moves += moved })
		}
	})
}

// migratable filters out threads that should not move: blocked threads
// would only migrate on wake-up, so prefer runnable ones.
func (b *Balancer) migratable(t *marcel.Thread) bool {
	return !t.Blocked() && t.MigrateTo < 0
}
