package loadbal

import (
	"testing"

	"repro/internal/pm2"
	"repro/internal/policy"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// TestBalancerEmptyClusterAllPolicies: a balancer over a cluster that
// never hosts a thread must run a round, decide nothing, and let the
// engine drain — under every policy.
func TestBalancerEmptyClusterAllPolicies(t *testing.T) {
	for _, name := range policy.Names() {
		pol, err := policy.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		c := pm2.New(pm2.Config{Nodes: 3}, progs.NewImage())
		b := Attach(c, Config{Period: 1 * simtime.Millisecond, Policy: pol})
		c.Run(10_000)
		if c.Engine().Pending() != 0 {
			t.Fatalf("%s: events still pending on an empty cluster", name)
		}
		if b.Rounds() != 1 || b.Moves() != 0 {
			t.Fatalf("%s: rounds=%d moves=%d, want 1/0", name, b.Rounds(), b.Moves())
		}
	}
}

// TestBalancerSingleNode: with one node there is nowhere to migrate to;
// no policy may request a move.
func TestBalancerSingleNode(t *testing.T) {
	for _, name := range policy.Names() {
		pol, err := policy.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		c := pm2.New(pm2.Config{Nodes: 1}, progs.NewImage())
		for i := 0; i < 5; i++ {
			c.SpawnSync(0, "worker", 5_000)
		}
		b := Attach(c, Config{Period: 1 * simtime.Millisecond, Policy: pol})
		c.Run(0)
		if b.Moves() != 0 {
			t.Fatalf("%s: %d moves on a single-node cluster", name, b.Moves())
		}
		if got := c.Stats().Migrations; got != 0 {
			t.Fatalf("%s: %d migrations on a single-node cluster", name, got)
		}
	}
}

// TestBalancerAllNodesSaturated: a perfectly even, heavily loaded
// cluster gives no policy a reason to move anything — negotiation sees
// no imbalance, round-robin sees everyone at the ceiling, work stealing
// sees no starving node.
func TestBalancerAllNodesSaturated(t *testing.T) {
	for _, name := range policy.Names() {
		pol, err := policy.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		c := pm2.New(pm2.Config{Nodes: 4}, progs.NewImage())
		for node := 0; node < 4; node++ {
			for i := 0; i < 3; i++ {
				c.SpawnSync(node, "worker", 20_000)
			}
		}
		b := Attach(c, Config{Period: 1 * simtime.Millisecond, Policy: pol})
		c.RunFor(6 * simtime.Millisecond)
		if b.Moves() != 0 {
			t.Fatalf("%s: moved %d threads across a saturated, balanced cluster", name, b.Moves())
		}
		c.Run(0)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestBalancerStaleReports: nodes whose load report has expired are
// ineligible as sources and destinations. The balancer refreshes every
// node each round, so staleness is injected directly through its engine.
func TestBalancerStaleReports(t *testing.T) {
	c := pm2.New(pm2.Config{Nodes: 3}, progs.NewImage())
	b := Attach(c, Config{
		Period:     1 * simtime.Millisecond,
		StaleAfter: 2 * simtime.Millisecond,
	})
	b.Stop() // decide by hand below
	e := b.Engine()
	if e.StaleAfter != 2*simtime.Millisecond {
		t.Fatalf("StaleAfter not plumbed: %v", e.StaleAfter)
	}
	now := 10 * simtime.Millisecond
	e.Report(policy.LoadReport{Node: 0, Resident: 6, Runnable: 6, Time: now})
	e.Report(policy.LoadReport{Node: 1, Resident: 0, Runnable: 0, Time: now - 5*simtime.Millisecond})
	e.Report(policy.LoadReport{Node: 2, Resident: 1, Runnable: 1, Time: now})
	moves := e.Decide(now)
	if len(moves) != 1 || moves[0].Dst != 2 {
		t.Fatalf("Decide = %v, want one move to the fresh node 2", moves)
	}
	// Only stale peers left: the imbalance is invisible, nothing moves.
	e.Report(policy.LoadReport{Node: 2, Resident: 1, Runnable: 1, Time: now - 5*simtime.Millisecond})
	if moves := e.Decide(now); len(moves) != 0 {
		t.Fatalf("Decide with only stale peers = %v", moves)
	}
}

// TestAttachPreservesClusterTuning: attaching with a zero Config must
// not clobber tuning already present on the cluster's shared engine.
func TestAttachPreservesClusterTuning(t *testing.T) {
	pol := policy.NewNegotiation()
	pol.Threshold = 5
	pol.MaxMoves = 3
	c := pm2.New(pm2.Config{Nodes: 2, Placement: pol}, progs.NewImage())
	c.Placement().StaleAfter = 7 * simtime.Millisecond
	b := Attach(c, Config{Period: 1 * simtime.Millisecond})
	if pol.Threshold != 5 || pol.MaxMoves != 3 {
		t.Fatalf("Attach clobbered policy tuning: threshold=%d maxMoves=%d", pol.Threshold, pol.MaxMoves)
	}
	if b.Engine().StaleAfter != 7*simtime.Millisecond {
		t.Fatalf("Attach clobbered StaleAfter: %v", b.Engine().StaleAfter)
	}
	// Explicit knobs still win.
	Attach(c, Config{Period: 1 * simtime.Millisecond, Threshold: 4, StaleAfter: simtime.Millisecond})
	if pol.Threshold != 4 || b.Engine().StaleAfter != simtime.Millisecond {
		t.Fatalf("explicit knobs not applied: threshold=%d stale=%v", pol.Threshold, b.Engine().StaleAfter)
	}
}

// TestBalancerKeepAlive: with KeepAliveUntil set, an idle lull between
// workload waves does not kill the balancer; without it, the first idle
// round does (the seed's drain behavior).
func TestBalancerKeepAlive(t *testing.T) {
	c := pm2.New(pm2.Config{Nodes: 2}, progs.NewImage())
	// A wave of work arriving at t=10ms, long after the first round.
	c.Engine().At(10*simtime.Millisecond, func() {
		for i := 0; i < 4; i++ {
			c.Spawn(0, "worker", 8_000)
		}
	})
	b := Attach(c, Config{
		Period:         1 * simtime.Millisecond,
		Threshold:      2,
		KeepAliveUntil: 12 * simtime.Millisecond,
	})
	c.Run(0)
	if b.Moves() == 0 {
		t.Fatal("kept-alive balancer never balanced the late wave")
	}
	if c.Engine().Pending() != 0 {
		t.Fatal("engine did not drain after the keep-alive horizon")
	}

	// Control: without keep-alive the balancer dies at the first idle
	// round and the late wave goes unbalanced.
	c2 := pm2.New(pm2.Config{Nodes: 2}, progs.NewImage())
	c2.Engine().At(10*simtime.Millisecond, func() {
		for i := 0; i < 4; i++ {
			c2.Spawn(0, "worker", 8_000)
		}
	})
	b2 := Attach(c2, Config{Period: 1 * simtime.Millisecond, Threshold: 2})
	c2.Run(0)
	if b2.Moves() != 0 {
		t.Fatalf("drain-on-idle balancer still moved %d threads", b2.Moves())
	}
}
