package loadbal

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/pm2"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// TestBalancerDetectsNodeDeath exercises the piggybacked failure
// detector end to end: the balancer's periodic round is the heartbeat,
// so a crashed node's lease expires after HeartbeatMisses silent
// rounds, the cluster evacuates its threads, and the balancer keeps
// redistributing the survivors' load afterwards.
func TestBalancerDetectsNodeDeath(t *testing.T) {
	plan, err := fault.Parse("crash:2@5000")
	if err != nil {
		t.Fatal(err)
	}
	c := pm2.New(pm2.Config{Nodes: 4, Faults: plan}, progs.NewImage())
	for i := 0; i < 8; i++ {
		c.Spawn(i%4, "worker", 30_000)
	}
	Attach(c, Config{
		Period: 2 * simtime.Millisecond,
		// Reports must age out during the detection window, or the
		// policy would keep proposing the dead node as a destination.
		StaleAfter: 4 * simtime.Millisecond,
	})
	c.Run(0)

	if !c.NodeDown(2) {
		t.Fatal("balancer heartbeats never declared node 2 dead")
	}
	s := c.Stats()
	if s.Evacuations != 1 || s.EvacuatedThreads == 0 {
		t.Fatalf("evacuations = %d, evacuated threads = %d, want 1 and > 0",
			s.Evacuations, s.EvacuatedThreads)
	}
	// Crash at 5 ms, rounds at 2/4/6/8 ms: misses accrue at 6 and 8 ms,
	// so detection costs at most two periods.
	if len(s.DetectionLatencies) != 1 || s.DetectionLatencies[0] > 4*simtime.Millisecond {
		t.Fatalf("detection latencies = %v, want one entry <= 4ms", s.DetectionLatencies)
	}
	finished := 0
	for _, l := range c.Trace().Lines() {
		if strings.Contains(l, "finished on node") {
			finished++
		}
	}
	if finished != 8 {
		t.Fatalf("finished = %d, want 8:\n%s", finished, c.Trace().String())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
