package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitmap"
	"repro/internal/layout"
	"repro/internal/vmem"
)

// TestBlockGeometryProperties pins the block-size arithmetic with
// testing/quick.
func TestBlockGeometryProperties(t *testing.T) {
	f := func(size uint32) bool {
		size = size%(16<<20) + 1 // 1 .. 16 MB
		total := blockTotal(size)
		if total%8 != 0 || total < MinBlock {
			return false
		}
		if total < size { // header must not shrink the payload
			return false
		}
		k := SlotsFor(size)
		if k < 1 {
			return false
		}
		// The chosen k is sufficient...
		if uint64(SlotHeaderSize)+uint64(total) > uint64(k)*layout.SlotSize {
			return false
		}
		// ...and minimal.
		if k > 1 && uint64(SlotHeaderSize)+uint64(total) <= uint64(k-1)*layout.SlotSize {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPlanPurchaseProperties: for random ownership maps and run lengths,
// any successful purchase plan must (a) pick a run that is entirely free,
// (b) attribute every non-requester slot to its true owner, and (c) never
// list requester-owned slots as shares.
func TestPlanPurchaseProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		p := 2 + rng.Intn(4)
		maps := make([]*bitmap.Bitmap, p)
		for i := range maps {
			maps[i] = bitmap.New(layout.SlotCount)
		}
		// Random ownership over a window (busy slots = no owner).
		window := 200
		for s := 0; s < window; s++ {
			if o := rng.Intn(p + 1); o < p {
				maps[o].Set(s)
			}
		}
		k := 1 + rng.Intn(6)
		requester := rng.Intn(p)
		plan, ok := PlanPurchase(maps, k, requester)
		if !ok {
			// Verify there really is no run in the union.
			u := bitmap.New(layout.SlotCount)
			for _, m := range maps {
				u.Or(m)
			}
			if u.FindRun(k) >= 0 {
				t.Fatalf("trial %d: plan failed but a run exists", trial)
			}
			continue
		}
		if plan.N != k {
			t.Fatalf("trial %d: plan.N = %d", trial, plan.N)
		}
		shareAt := map[int]int{} // slot → seller
		for _, sh := range plan.Sellers {
			if sh.Node == requester {
				t.Fatalf("trial %d: requester listed as seller", trial)
			}
			for s := sh.Start; s < sh.Start+sh.N; s++ {
				shareAt[s] = sh.Node
			}
		}
		for s := plan.Start; s < plan.Start+plan.N; s++ {
			owner := -1
			for i, m := range maps {
				if m.Test(s) {
					owner = i
				}
			}
			if owner < 0 {
				t.Fatalf("trial %d: run slot %d is busy", trial, s)
			}
			if owner == requester {
				if _, listed := shareAt[s]; listed {
					t.Fatalf("trial %d: own slot %d listed", trial, s)
				}
			} else if shareAt[s] != owner {
				t.Fatalf("trial %d: slot %d seller %d, owner %d", trial, s, shareAt[s], owner)
			}
		}
	}
}

// TestPlanDefragProperties: random surrendered maps → disjoint outputs with
// preserved counts and union.
func TestPlanDefragProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		p := 1 + rng.Intn(6)
		maps := make([]*bitmap.Bitmap, p)
		for i := range maps {
			maps[i] = bitmap.New(layout.SlotCount)
		}
		for s := 0; s < 500; s++ {
			if o := rng.Intn(p + 2); o < p {
				maps[o].Set(s)
			}
		}
		out := PlanDefrag(maps)
		if CheckSingleOwnership(out) != -1 {
			t.Fatalf("trial %d: double ownership", trial)
		}
		uIn := bitmap.New(layout.SlotCount)
		uOut := bitmap.New(layout.SlotCount)
		for i := range maps {
			uIn.Or(maps[i])
			uOut.Or(out[i])
			if maps[i].Count() != out[i].Count() {
				t.Fatalf("trial %d: node %d count changed", trial, i)
			}
		}
		if !uIn.Equal(uOut) {
			t.Fatalf("trial %d: pool changed", trial)
		}
	}
}

// TestArenaQuickOps drives the arena through quick-generated operation
// sequences, checking invariants at the end of each sequence.
func TestArenaQuickOps(t *testing.T) {
	f := func(ops []uint16) bool {
		fx := newArenaFixtureQuick()
		var live []Addr
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := uint32(op)%4096 + 1
				a, err := fx.ar.Isomalloc(size, fx.ns)
				if err != nil {
					return false
				}
				live = append(live, a)
			} else {
				i := int(op) % len(live)
				if err := fx.ar.Isofree(live[i], fx.ns); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		return CheckArena(fx.sp, fx.headAddr) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

type quickFixture struct {
	ns       *NodeSlots
	sp       *vmem.Space
	ar       *Arena
	headAddr Addr
}

func newArenaFixtureQuick() *quickFixture {
	ns := NewNodeSlots(vmem.NewSpace(), NopCharger{}, NodeConfig{NodeID: 0, NumNodes: 1, CacheCap: 2})
	idx, err := ns.AcquireOne()
	if err != nil {
		panic(err)
	}
	stack := layout.SlotBase(idx)
	headAddr := stack + SlotHeaderSize
	ar := NewArena(ns.Space(), NopCharger{}, nil, headAddr)
	if err := ar.InitStackSlot(stack); err != nil {
		panic(err)
	}
	return &quickFixture{ns: ns, sp: ns.Space(), ar: ar, headAddr: headAddr}
}
