package core

import (
	"testing"

	"repro/internal/bitmap"
	"repro/internal/layout"
)

func emptyMaps(p int) []*bitmap.Bitmap {
	maps := make([]*bitmap.Bitmap, p)
	for i := range maps {
		maps[i] = bitmap.New(layout.SlotCount)
	}
	return maps
}

func rrMaps(p int) []*bitmap.Bitmap {
	maps := emptyMaps(p)
	for i := 0; i < layout.SlotCount; i++ {
		maps[i%p].Set(i)
	}
	return maps
}

func TestPlanPurchaseRoundRobinTwoNodes(t *testing.T) {
	maps := rrMaps(2)
	p, ok := PlanPurchase(maps, 4, 0)
	if !ok {
		t.Fatal("purchase should succeed")
	}
	if p.Start != 0 || p.N != 4 {
		t.Fatalf("run = [%d,+%d), want [0,+4)", p.Start, p.N)
	}
	// Node 0 owns slots 0 and 2; node 1 sells 1 and 3.
	if len(p.Sellers) != 2 {
		t.Fatalf("sellers = %+v", p.Sellers)
	}
	for i, want := range []SellerShare{{Node: 1, Start: 1, N: 1}, {Node: 1, Start: 3, N: 1}} {
		if p.Sellers[i] != want {
			t.Fatalf("seller %d = %+v, want %+v", i, p.Sellers[i], want)
		}
	}
}

func TestPlanPurchaseMergesContiguousSellerShares(t *testing.T) {
	maps := emptyMaps(3)
	// Layout: node0 owns 0; node1 owns 1,2,3; node2 owns 4,5.
	maps[0].Set(0)
	maps[1].SetRun(1, 3)
	maps[2].SetRun(4, 2)
	p, ok := PlanPurchase(maps, 6, 0)
	if !ok {
		t.Fatal("expected success")
	}
	want := []SellerShare{{Node: 1, Start: 1, N: 3}, {Node: 2, Start: 4, N: 2}}
	if len(p.Sellers) != 2 || p.Sellers[0] != want[0] || p.Sellers[1] != want[1] {
		t.Fatalf("sellers = %+v, want %+v", p.Sellers, want)
	}
}

func TestPlanPurchaseSkipsBusySlots(t *testing.T) {
	maps := emptyMaps(2)
	// Free slots: 0 (node0), 1 (node1), gap at 2 (busy: some thread owns
	// it), 3..6 free on node 0.
	maps[0].Set(0)
	maps[1].Set(1)
	maps[0].SetRun(3, 4)
	p, ok := PlanPurchase(maps, 3, 1)
	if !ok {
		t.Fatal("expected success")
	}
	if p.Start != 3 {
		t.Fatalf("run should skip the busy gap: start = %d", p.Start)
	}
	if len(p.Sellers) != 1 || p.Sellers[0] != (SellerShare{Node: 0, Start: 3, N: 3}) {
		t.Fatalf("sellers = %+v", p.Sellers)
	}
}

func TestPlanPurchaseRequesterOwnsEverything(t *testing.T) {
	maps := emptyMaps(2)
	maps[0].SetRun(10, 8)
	p, ok := PlanPurchase(maps, 8, 0)
	if !ok || p.Start != 10 || len(p.Sellers) != 0 {
		t.Fatalf("p = %+v ok=%v, want no sellers", p, ok)
	}
}

func TestPlanPurchaseFailsWhenNoRunExists(t *testing.T) {
	maps := emptyMaps(2)
	// Only isolated free slots.
	for i := 0; i < 100; i += 2 {
		maps[i%2].Set(i)
	}
	if _, ok := PlanPurchase(maps, 2, 0); ok {
		t.Fatal("no contiguous pair exists; purchase must fail")
	}
}

func TestPlanPurchaseFirstFit(t *testing.T) {
	maps := emptyMaps(2)
	maps[0].SetRun(100, 2)
	maps[1].SetRun(50, 2)
	p, ok := PlanPurchase(maps, 2, 0)
	if !ok || p.Start != 50 {
		t.Fatalf("first-fit = %d, want 50 (the earliest run, regardless of owner)", p.Start)
	}
}

func TestPlanPurchaseDoubleOwnershipPanics(t *testing.T) {
	maps := emptyMaps(2)
	maps[0].SetRun(0, 2)
	maps[1].Set(1) // violation
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double ownership")
		}
	}()
	PlanPurchase(maps, 2, 0)
}

func TestCheckSingleOwnership(t *testing.T) {
	maps := rrMaps(4)
	if got := CheckSingleOwnership(maps); got != -1 {
		t.Fatalf("clean round-robin reported violation at %d", got)
	}
	maps[2].Set(3) // slot 3 belongs to node 3 under RR(4)
	if got := CheckSingleOwnership(maps); got != 3 {
		t.Fatalf("violation index = %d, want 3", got)
	}
	if CheckSingleOwnership(maps[:1]) != -1 {
		t.Fatal("single map can't violate")
	}
}

func TestPlanCandidatesOn(t *testing.T) {
	// Three free regions: [0,4) owned by nodes 0/1 alternating, [10,13)
	// owned solely by node 2, [20,22) owned by node 0.
	maps := []*bitmap.Bitmap{bitmap.New(64), bitmap.New(64), bitmap.New(64)}
	maps[0].Set(0)
	maps[1].Set(1)
	maps[0].Set(2)
	maps[1].Set(3)
	maps[2].SetRun(10, 3)
	maps[0].SetRun(20, 2)
	global := bitmap.New(64)
	for _, m := range maps {
		global.Or(m)
	}

	cands := PlanCandidatesOn(global, maps, 2, 0, 0, 8)
	if len(cands) != 3 {
		t.Fatalf("candidates = %d, want one per free region", len(cands))
	}
	if cands[0].Start != 0 || cands[1].Start != 10 || cands[2].Start != 20 {
		t.Fatalf("candidate starts = %d,%d,%d, want 0,10,20", cands[0].Start, cands[1].Start, cands[2].Start)
	}
	if cands[0].Owners() != 1 || cands[1].Owners() != 1 || cands[2].Owners() != 0 {
		t.Fatalf("owner counts = %d,%d,%d", cands[0].Owners(), cands[1].Owners(), cands[2].Owners())
	}

	// Origin mid-space: the forward scan finds the regions at and past
	// the origin first (the tail of [10,13) is too short for a run), and
	// the wrap revisits the space before the origin — including the
	// origin's own region from its start, where a full run does fit.
	wrapped := PlanCandidatesOn(global, maps, 2, 0, 12, 8)
	starts := make([]int, len(wrapped))
	for i, c := range wrapped {
		starts[i] = c.Start
	}
	if len(starts) != 3 || starts[0] != 20 || starts[1] != 0 || starts[2] != 10 {
		t.Fatalf("wrapped candidate starts = %v, want [20 0 10]", starts)
	}

	// The max bound truncates in scan order.
	if one := PlanCandidatesOn(global, maps, 2, 0, 0, 1); len(one) != 1 || one[0].Start != 0 {
		t.Fatalf("bounded candidates wrong: %+v", one)
	}
}
