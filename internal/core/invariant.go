package core

import (
	"fmt"

	"repro/internal/vmem"
)

// CheckArena validates every block-layer invariant of the thread whose
// slot-list head pointer lives at headAddr:
//
//   - the slot list is a well-formed doubly-linked list;
//   - the physical blocks of each data group tile its data area exactly;
//   - no two physically adjacent blocks are both free (coalescing holds);
//   - each free block has a correct footer and prev-free flags are accurate;
//   - the free list contains exactly the physically free blocks;
//   - the header's Used equals the sum of live block sizes.
//
// It is used by unit tests, property tests, and the cluster stress tests
// after every migration.
func CheckArena(sp *vmem.Space, headAddr Addr) error {
	head, err := sp.Load32(headAddr)
	if err != nil {
		return err
	}
	prev := Addr(0)
	seen := 0
	for at := head; at != 0; {
		h, err := readSlotHeader(sp, at)
		if err != nil {
			return err
		}
		if h.Prev != prev {
			return fmt.Errorf("core: group %#08x has prev %#08x, want %#08x", at, h.Prev, prev)
		}
		if h.Kind == KindData {
			if err := checkGroupBlocks(sp, &h); err != nil {
				return err
			}
		}
		prev = at
		at = h.Next
		if seen++; seen > 1<<20 {
			return fmt.Errorf("core: slot list cycle")
		}
	}
	return nil
}

func checkGroupBlocks(sp *vmem.Space, h *SlotHeader) error {
	end := h.End()
	var usedSum uint32
	physFree := map[Addr]uint32{} // addr → size
	prevWasFree := false
	var prevSize uint32
	for at := h.DataStart(); at < end; {
		b, err := readBlock(sp, at)
		if err != nil {
			return err
		}
		if b.size < MinBlock || b.size%8 != 0 || at+Addr(b.size) > end {
			return fmt.Errorf("core: group %#08x: corrupt block %#08x size %d", h.Base, at, b.size)
		}
		if b.prevIsFree() != prevWasFree {
			return fmt.Errorf("core: group %#08x: block %#08x prev-free flag %v, want %v",
				h.Base, at, b.prevIsFree(), prevWasFree)
		}
		if prevWasFree {
			foot, err := sp.Load32(at - 4)
			if err != nil {
				return err
			}
			if foot != prevSize {
				return fmt.Errorf("core: group %#08x: footer before %#08x is %d, want %d", h.Base, at, foot, prevSize)
			}
		}
		if b.isFree() {
			if prevWasFree {
				return fmt.Errorf("core: group %#08x: adjacent free blocks at %#08x", h.Base, at)
			}
			physFree[at] = b.size
			prevWasFree = true
		} else {
			usedSum += b.size
			prevWasFree = false
		}
		prevSize = b.size
		at += Addr(b.size)
	}
	if usedSum != h.Used {
		return fmt.Errorf("core: group %#08x: Used=%d but live blocks sum to %d", h.Base, h.Used, usedSum)
	}
	// Free list must match the physical free set exactly.
	onList := map[Addr]bool{}
	prevLink := Addr(0)
	for at := h.FreeHead; at != 0; {
		if onList[at] {
			return fmt.Errorf("core: group %#08x: free list cycle at %#08x", h.Base, at)
		}
		onList[at] = true
		b, err := readBlock(sp, at)
		if err != nil {
			return err
		}
		if !b.isFree() {
			return fmt.Errorf("core: group %#08x: live block %#08x on free list", h.Base, at)
		}
		if _, ok := physFree[at]; !ok {
			return fmt.Errorf("core: group %#08x: free-list block %#08x not found physically", h.Base, at)
		}
		if b.prevFree != prevLink {
			return fmt.Errorf("core: group %#08x: block %#08x prevFree=%#08x, want %#08x", h.Base, at, b.prevFree, prevLink)
		}
		prevLink = at
		at = b.nextFree
	}
	if len(onList) != len(physFree) {
		return fmt.Errorf("core: group %#08x: %d blocks on free list, %d physically free",
			h.Base, len(onList), len(physFree))
	}
	return nil
}
