package core

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/layout"
)

// Negotiation planning (paper §4.4, step 2). The communication — entering
// the system-wide critical section, gathering bitmaps, sending purchase
// orders — is carried out by the runtime over Madeleine; this file holds the
// pure protocol arithmetic so it can be tested exhaustively in isolation.

// SellerShare is one seller's contribution to a purchased run.
type SellerShare struct {
	Node  int
	Start int
	N     int
}

// Purchase is the outcome of planning a multi-slot acquisition.
type Purchase struct {
	// Start and N identify the chosen run of contiguous slots.
	Start int
	N     int
	// Sellers lists the non-requester nodes to buy sub-runs from, in
	// slot order. Slots already owned by the requester are not listed.
	Sellers []SellerShare
}

// PlanPurchase computes a global OR of the gathered per-node bitmaps,
// first-fit searches it for n contiguous free slots, and splits the chosen
// run into per-owner shares. maps[i] must be node i's bitmap, or nil for a
// node that was not gathered (a hint-skipped peer known to own nothing);
// requester identifies the initiating node. ok is false when no run exists
// anywhere — the allocation fails (out of iso-address memory).
func PlanPurchase(maps []*bitmap.Bitmap, n, requester int) (Purchase, bool) {
	return PlanPurchaseOn(GlobalOr(maps), maps, n, requester)
}

// GlobalOr returns the OR of the gathered per-node bitmaps (nil entries
// are skipped) — the paper's step 2c as one explicit value, so a caller
// that caches the global view between rounds (the delta gather) can
// reuse it instead of recomputing the merge.
func GlobalOr(maps []*bitmap.Bitmap) *bitmap.Bitmap {
	global := bitmap.New(layout.SlotCount)
	for _, m := range maps {
		if m != nil {
			global.Or(m)
		}
	}
	return global
}

// PlanPurchaseOn is PlanPurchase searching a caller-provided global map,
// which must be the OR of maps.
func PlanPurchaseOn(global *bitmap.Bitmap, maps []*bitmap.Bitmap, n, requester int) (Purchase, bool) {
	if n <= 0 {
		panic("core: PlanPurchase with non-positive run")
	}
	if requester < 0 || requester >= len(maps) || maps[requester] == nil {
		panic(fmt.Sprintf("core: requester %d out of range", requester))
	}
	start := global.FindRun(n)
	if start < 0 {
		return Purchase{}, false
	}
	p := Purchase{Start: start, N: n}
	for i := start; i < start+n; {
		owner := ownerOf(maps, i)
		j := i
		for j < start+n && ownerOf(maps, j) == owner {
			j++
		}
		if owner != requester {
			p.Sellers = append(p.Sellers, SellerShare{Node: owner, Start: i, N: j - i})
		}
		i = j
	}
	return p, true
}

// ownerOf returns the node whose bitmap has slot i set. Exactly one node
// may own a free slot; a duplicate is a broken invariant and panics.
func ownerOf(maps []*bitmap.Bitmap, i int) int {
	owner := -1
	for node, m := range maps {
		if m != nil && m.Test(i) {
			if owner >= 0 {
				panic(fmt.Sprintf("core: slot %d owned by both node %d and node %d", i, owner, node))
			}
			owner = node
		}
	}
	if owner < 0 {
		panic(fmt.Sprintf("core: slot %d in ORed run but owned by nobody", i))
	}
	return owner
}

// CheckSingleOwnership validates the global invariant that no slot is owned
// (free) by two nodes at once. It returns the index of the first violating
// slot, or -1.
func CheckSingleOwnership(maps []*bitmap.Bitmap) int {
	if len(maps) < 2 {
		return -1
	}
	seen := maps[0].Clone()
	for _, m := range maps[1:] {
		if seen.Intersects(m) {
			// locate it for the error message
			for i := 0; i < seen.Len(); i++ {
				if seen.Test(i) && m.Test(i) {
					return i
				}
			}
		}
		seen.Or(m)
	}
	return -1
}
