package core

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/layout"
)

// Negotiation planning (paper §4.4, step 2). The communication — entering
// the system-wide critical section, gathering bitmaps, sending purchase
// orders — is carried out by the runtime over Madeleine; this file holds the
// pure protocol arithmetic so it can be tested exhaustively in isolation.

// SellerShare is one seller's contribution to a purchased run.
type SellerShare struct {
	Node  int
	Start int
	N     int
	// Version is the seller's bitmap-journal version the plan was
	// computed against. The optimistic arbiter stamps it into the
	// purchase message so the seller can decline a plan based on a view
	// that is no longer current; zero under the locking arbiters, whose
	// critical section makes the check unnecessary.
	Version uint64
}

// Purchase is the outcome of planning a multi-slot acquisition.
type Purchase struct {
	// Start and N identify the chosen run of contiguous slots.
	Start int
	N     int
	// Sellers lists the non-requester nodes to buy sub-runs from, in
	// slot order. Slots already owned by the requester are not listed.
	Sellers []SellerShare
}

// PlanPurchase computes a global OR of the gathered per-node bitmaps,
// first-fit searches it for n contiguous free slots, and splits the chosen
// run into per-owner shares. maps[i] must be node i's bitmap, or nil for a
// node that was not gathered (a hint-skipped peer known to own nothing);
// requester identifies the initiating node. ok is false when no run exists
// anywhere — the allocation fails (out of iso-address memory).
func PlanPurchase(maps []*bitmap.Bitmap, n, requester int) (Purchase, bool) {
	return PlanPurchaseOn(GlobalOr(maps), maps, n, requester)
}

// GlobalOr returns the OR of the gathered per-node bitmaps (nil entries
// are skipped) — the paper's step 2c as one explicit value, so a caller
// that caches the global view between rounds (the delta gather) can
// reuse it instead of recomputing the merge.
func GlobalOr(maps []*bitmap.Bitmap) *bitmap.Bitmap {
	global := bitmap.New(layout.SlotCount)
	for _, m := range maps {
		if m != nil {
			global.Or(m)
		}
	}
	return global
}

// PlanPurchaseOn is PlanPurchase searching a caller-provided global map,
// which must be the OR of maps.
func PlanPurchaseOn(global *bitmap.Bitmap, maps []*bitmap.Bitmap, n, requester int) (Purchase, bool) {
	checkPlanArgs(maps, n, requester)
	start := global.FindRun(n)
	if start < 0 {
		return Purchase{}, false
	}
	return purchaseAt(maps, start, n, requester), true
}

// PlanCandidatesOn enumerates up to max candidate purchases of n
// contiguous slots, scanning the global map from slot origin and
// wrapping past the end — one candidate per maximal free region, in
// scan order. The decentralized arbiters use it to pick among runs by
// seller count (fewest-owners-first) instead of committing to the
// first fit, and the per-node origin spreads concurrent initiators
// over disjoint regions of the slot space so their shard sets (and
// optimistic version checks) rarely collide.
//
// Unlike PlanPurchaseOn, the maps here were gathered without any lock,
// so the snapshots may be mutually torn: a slot sold mid-gather can
// appear owned by both its old and its new owner. Ownership is
// therefore resolved loosely (deterministically preferring the
// requester's own authoritative map, then the lowest rank) — a wrong
// attribution surfaces as a purchase decline and a retried round,
// never as double ownership, because only the current owner will sell.
func PlanCandidatesOn(global *bitmap.Bitmap, maps []*bitmap.Bitmap, n, requester, origin, max int) []Purchase {
	checkPlanArgs(maps, n, requester)
	if max < 1 {
		max = 1
	}
	if origin < 0 || origin >= global.Len() {
		origin = 0
	}
	var out []Purchase
	scan := func(from, limit int) {
		i := from
		for len(out) < max {
			s := global.FindRunFrom(i, n)
			if s < 0 || s >= limit {
				return
			}
			out = append(out, purchaseAtLoose(maps, s, n, requester))
			// One candidate per maximal free region: skip to the end of
			// the region containing s before searching again.
			e := s + n
			for e < global.Len() && global.Test(e) {
				e++
			}
			i = e + 1
		}
	}
	scan(origin, global.Len())
	if len(out) < max && origin > 0 {
		scan(0, origin)
	}
	return out
}

// Owners returns the number of distinct sellers the purchase buys from.
func (p Purchase) Owners() int {
	seen := make(map[int]bool, len(p.Sellers))
	for _, sh := range p.Sellers {
		seen[sh.Node] = true
	}
	return len(seen)
}

func checkPlanArgs(maps []*bitmap.Bitmap, n, requester int) {
	if n <= 0 {
		panic("core: PlanPurchase with non-positive run")
	}
	if requester < 0 || requester >= len(maps) || maps[requester] == nil {
		panic(fmt.Sprintf("core: requester %d out of range", requester))
	}
}

// purchaseAt splits the chosen run [start, start+n) into per-owner
// seller shares (paper step 2d–2e), with the strict single-owner
// invariant of a lock-protected gather.
func purchaseAt(maps []*bitmap.Bitmap, start, n, requester int) Purchase {
	return splitRun(maps, start, n, requester, ownerOf)
}

// purchaseAtLoose is purchaseAt over possibly-torn unlocked snapshots:
// duplicate apparent owners resolve to the requester's own map first
// (it is local, hence authoritative), then to the lowest rank.
func purchaseAtLoose(maps []*bitmap.Bitmap, start, n, requester int) Purchase {
	return splitRun(maps, start, n, requester, func(maps []*bitmap.Bitmap, i int) int {
		return ownerOfLoose(maps, i, requester)
	})
}

func splitRun(maps []*bitmap.Bitmap, start, n, requester int, owner func([]*bitmap.Bitmap, int) int) Purchase {
	p := Purchase{Start: start, N: n}
	for i := start; i < start+n; {
		o := owner(maps, i)
		j := i
		for j < start+n && owner(maps, j) == o {
			j++
		}
		if o != requester {
			p.Sellers = append(p.Sellers, SellerShare{Node: o, Start: i, N: j - i})
		}
		i = j
	}
	return p
}

// ownerOfLoose returns a node whose bitmap has slot i set, preferring
// the requester (whose map is local and current) and then the lowest
// rank. Used over unlocked gathers, where torn snapshots may show two
// apparent owners; the purchase-time validation at the chosen seller
// catches a wrong pick.
func ownerOfLoose(maps []*bitmap.Bitmap, i, requester int) int {
	if maps[requester] != nil && maps[requester].Test(i) {
		return requester
	}
	for node, m := range maps {
		if m != nil && m.Test(i) {
			return node
		}
	}
	panic(fmt.Sprintf("core: slot %d in ORed run but owned by nobody", i))
}

// ownerOf returns the node whose bitmap has slot i set. Exactly one node
// may own a free slot; a duplicate is a broken invariant and panics.
func ownerOf(maps []*bitmap.Bitmap, i int) int {
	owner := -1
	for node, m := range maps {
		if m != nil && m.Test(i) {
			if owner >= 0 {
				panic(fmt.Sprintf("core: slot %d owned by both node %d and node %d", i, owner, node))
			}
			owner = node
		}
	}
	if owner < 0 {
		panic(fmt.Sprintf("core: slot %d in ORed run but owned by nobody", i))
	}
	return owner
}

// CheckSingleOwnership validates the global invariant that no slot is owned
// (free) by two nodes at once. It returns the index of the first violating
// slot, or -1.
func CheckSingleOwnership(maps []*bitmap.Bitmap) int {
	if len(maps) < 2 {
		return -1
	}
	seen := maps[0].Clone()
	for _, m := range maps[1:] {
		if seen.Intersects(m) {
			// locate it for the error message
			for i := 0; i < seen.Len(); i++ {
				if seen.Test(i) && m.Test(i) {
					return i
				}
			}
		}
		seen.Or(m)
	}
	return -1
}
