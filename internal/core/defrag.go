package core

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/layout"
)

// PlanDefrag computes the global slot restructuring of §4.4: given the free
// slots surrendered by every node, it redistributes them so that each node
// receives (as far as the free pool allows) one contiguous range, sized
// proportionally to what it surrendered — "grouping contiguous free slots
// as much as possible on the various nodes". Slots owned by threads are not
// in any bitmap and are untouched.
//
// The result is one new bitmap per node; they are pairwise disjoint and
// their union is exactly the surrendered pool (the paper's only
// requirement: "each slot present in the bitmaps must finally belong to
// exactly one node").
func PlanDefrag(surrendered []*bitmap.Bitmap) []*bitmap.Bitmap {
	p := len(surrendered)
	if p == 0 {
		panic("core: PlanDefrag with no nodes")
	}
	pool := bitmap.New(layout.SlotCount)
	counts := make([]int, p)
	total := 0
	for i, m := range surrendered {
		if m.Len() != layout.SlotCount {
			panic(fmt.Sprintf("core: node %d bitmap has %d bits", i, m.Len()))
		}
		pool.Or(m)
		counts[i] = m.Count()
		total += counts[i]
	}
	if pool.Count() != total {
		panic("core: surrendered bitmaps overlap (double ownership)")
	}

	out := make([]*bitmap.Bitmap, p)
	for i := range out {
		out[i] = bitmap.New(layout.SlotCount)
	}
	// Walk the pool in address order, granting each node its quota as one
	// consecutive stretch of the free sequence.
	node := 0
	granted := 0
	for idx := pool.FirstSet(0); idx >= 0; idx = pool.FirstSet(idx + 1) {
		for node < p && granted == counts[node] {
			node++
			granted = 0
		}
		if node == p {
			panic("core: defrag accounting error")
		}
		out[node].Set(idx)
		granted++
	}
	return out
}
