package core

// Shard map for the decentralized negotiation arbiter. The sharded
// scheme partitions the slot space into a fixed number of contiguous
// shards; shard s is arbitrated by node s mod n, so disjoint
// negotiations lock different managers and proceed in parallel instead
// of queueing on the single node-0 lock of the paper's §4.4 protocol.
//
// A negotiation takes exactly the shards its planned purchase run
// touches, always in ascending shard order. Because every initiator
// acquires in that same canonical order, no cycle of waiters can form:
// the holder of the highest-numbered contended shard never waits for a
// lower one, so it always completes and unblocks the rest —
// deadlock-freedom by total ordering.

// ShardMap partitions nSlots slots into nShards contiguous shards of
// equal size (the last shard absorbs the remainder).
type ShardMap struct {
	slots  int
	shards int
	size   int // slots per shard (ceil)
}

// NewShardMap builds the partition. nShards is clamped to [1, nSlots].
func NewShardMap(nSlots, nShards int) ShardMap {
	if nSlots <= 0 {
		panic("core: shard map over empty slot space")
	}
	if nShards < 1 {
		nShards = 1
	}
	if nShards > nSlots {
		nShards = nSlots
	}
	return ShardMap{
		slots:  nSlots,
		shards: nShards,
		size:   (nSlots + nShards - 1) / nShards,
	}
}

// Shards returns the number of shards in the partition.
func (m ShardMap) Shards() int { return m.shards }

// ShardOf returns the shard containing slot i.
func (m ShardMap) ShardOf(i int) int {
	if i < 0 || i >= m.slots {
		panic("core: slot out of range in ShardOf")
	}
	s := i / m.size
	if s >= m.shards {
		s = m.shards - 1
	}
	return s
}

// ShardsOfRun returns the shards touched by the slot run [start,
// start+n), in ascending order — the canonical lock-acquisition order.
func (m ShardMap) ShardsOfRun(start, n int) []int {
	if n <= 0 {
		panic("core: ShardsOfRun with non-positive run")
	}
	first, last := m.ShardOf(start), m.ShardOf(start+n-1)
	out := make([]int, 0, last-first+1)
	for s := first; s <= last; s++ {
		out = append(out, s)
	}
	return out
}

// Manager returns the rank arbitrating shard s in an n-node cluster.
func (m ShardMap) Manager(s, nodes int) int { return s % nodes }
