package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/layout"
	"repro/internal/vmem"
)

// arenaFixture wires a node, a space and a thread arena whose list-head
// pointer lives in a mapped scratch page (standing in for the descriptor).
type arenaFixture struct {
	ns    *NodeSlots
	sp    *vmem.Space
	ar    *Arena
	stack Addr // the thread's stack slot base
}

func newArenaFixture(t *testing.T, cacheCap int) *arenaFixture {
	t.Helper()
	ns := NewNodeSlots(vmem.NewSpace(), NopCharger{}, NodeConfig{
		NodeID: 0, NumNodes: 1, Dist: RoundRobin{}, CacheCap: cacheCap,
	})
	sp := ns.Space()
	// The thread's stack slot: header + (stand-in) descriptor holding
	// the slot-list head pointer.
	idx, err := ns.AcquireOne()
	if err != nil {
		t.Fatal(err)
	}
	stack := layout.SlotBase(idx)
	headAddr := stack + SlotHeaderSize // first descriptor word
	ar := NewArena(sp, NopCharger{}, nil, headAddr)
	if err := ar.InitStackSlot(stack); err != nil {
		t.Fatal(err)
	}
	return &arenaFixture{ns: ns, sp: sp, ar: ar, stack: stack}
}

func (f *arenaFixture) check(t *testing.T) {
	t.Helper()
	if err := CheckArena(f.sp, f.stack+SlotHeaderSize); err != nil {
		t.Fatal(err)
	}
}

func TestIsomallocBasic(t *testing.T) {
	f := newArenaFixture(t, 0)
	addr, err := f.ar.Isomalloc(100, f.ns)
	if err != nil {
		t.Fatal(err)
	}
	if !layout.InIsoArea(addr) {
		t.Fatalf("block at %#08x outside iso area", addr)
	}
	if addr%8 != 0 {
		t.Fatalf("block at %#08x not 8-aligned", addr)
	}
	// The block is usable memory.
	payload := bytes.Repeat([]byte{0xAB}, 100)
	if err := f.sp.Write(addr, payload); err != nil {
		t.Fatal(err)
	}
	got, err := f.sp.ReadBytes(addr, 100)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("payload round-trip failed: %v", err)
	}
	f.check(t)
}

func TestIsomallocDistinctBlocks(t *testing.T) {
	f := newArenaFixture(t, 0)
	seen := map[Addr]uint32{}
	for i := 0; i < 50; i++ {
		size := uint32(16 + i*8)
		addr, err := f.ar.Isomalloc(size, f.ns)
		if err != nil {
			t.Fatal(err)
		}
		for prev, psz := range seen {
			if addr < prev+Addr(psz) && prev < addr+Addr(size) {
				t.Fatalf("blocks overlap: [%#x,+%d) and [%#x,+%d)", prev, psz, addr, size)
			}
		}
		seen[addr] = size
	}
	f.check(t)
}

func TestIsomallocReusesFreedBlock(t *testing.T) {
	f := newArenaFixture(t, 0)
	a, err := f.ar.Isomalloc(256, f.ns)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the slot alive with a second block.
	if _, err := f.ar.Isomalloc(64, f.ns); err != nil {
		t.Fatal(err)
	}
	if err := f.ar.Isofree(a, f.ns); err != nil {
		t.Fatal(err)
	}
	b, err := f.ar.Isomalloc(200, f.ns)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("first-fit should reuse freed block: got %#x, want %#x", b, a)
	}
	f.check(t)
}

func TestIsofreeCoalescing(t *testing.T) {
	f := newArenaFixture(t, 0)
	var blocks []Addr
	for i := 0; i < 4; i++ {
		a, err := f.ar.Isomalloc(128, f.ns)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, a)
	}
	groups, _ := f.ar.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want stack + one data", len(groups))
	}
	dataBase := groups[1].Base

	// Free middle two (forward + backward coalescing), then the ends.
	for _, i := range []int{1, 2} {
		if err := f.ar.Isofree(blocks[i], f.ns); err != nil {
			t.Fatal(err)
		}
		f.check(t)
	}
	fl, err := f.ar.FreeBlocks(dataBase)
	if err != nil {
		t.Fatal(err)
	}
	// blocks[1] and blocks[2] must have merged into one free block (plus
	// the tail remainder of the slot).
	if len(fl) != 2 {
		t.Fatalf("free blocks = %d, want 2 (merged middle + tail)", len(fl))
	}
	if err := f.ar.Isofree(blocks[0], f.ns); err != nil {
		t.Fatal(err)
	}
	f.check(t)
	// Freeing the last block empties the group; it is donated to the node
	// and detached.
	if err := f.ar.Isofree(blocks[3], f.ns); err != nil {
		t.Fatal(err)
	}
	groups, _ = f.ar.Groups()
	if len(groups) != 1 || groups[0].Kind != KindStack {
		t.Fatalf("empty data group not released: %+v", groups)
	}
	if f.ns.OwnedFree() != layout.SlotCount-1 {
		t.Fatalf("node owns %d, want all but the stack slot", f.ns.OwnedFree())
	}
	f.check(t)
}

func TestIsofreeErrors(t *testing.T) {
	f := newArenaFixture(t, 0)
	a, err := f.ar.Isomalloc(64, f.ns)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ar.Isomalloc(64, f.ns); err != nil {
		t.Fatal(err)
	}
	if err := f.ar.Isofree(a, f.ns); err != nil {
		t.Fatal(err)
	}
	if err := f.ar.Isofree(a, f.ns); err == nil {
		t.Fatal("double free must fail")
	}
	if err := f.ar.Isofree(0xDEAD0000, f.ns); err == nil {
		t.Fatal("freeing a foreign address must fail")
	}
	if err := f.ar.Isofree(f.stack+SlotHeaderSize+64, f.ns); err == nil {
		t.Fatal("freeing inside the stack slot must fail")
	}
}

func TestIsomallocZeroSizeFails(t *testing.T) {
	f := newArenaFixture(t, 0)
	if _, err := f.ar.Isomalloc(0, f.ns); err == nil {
		t.Fatal("isomalloc(0) must fail")
	}
}

func TestLargeBlockSpansSlots(t *testing.T) {
	f := newArenaFixture(t, 0)
	const size = 3*layout.SlotSize + 1000 // needs 4 contiguous slots
	addr, err := f.ar.Isomalloc(size, f.ns)
	if err != nil {
		t.Fatal(err)
	}
	groups, _ := f.ar.Groups()
	var g *SlotGroup
	for i := range groups {
		if groups[i].Kind == KindData {
			g = &groups[i]
		}
	}
	if g == nil || g.NSlots != 4 {
		t.Fatalf("large group = %+v, want 4 slots", groups)
	}
	// Whole range usable.
	if err := f.sp.Store32(addr+size-4, 0x1234); err != nil {
		t.Fatal(err)
	}
	f.check(t)
	if err := f.ar.Isofree(addr, f.ns); err != nil {
		t.Fatal(err)
	}
	groups, _ = f.ar.Groups()
	if len(groups) != 1 {
		t.Fatal("large group not released after free")
	}
	f.check(t)
}

func TestSlotsForBoundaries(t *testing.T) {
	cases := []struct {
		size uint32
		want int
	}{
		{1, 1},
		{MaxSingleSlotRequest, 1},
		{MaxSingleSlotRequest + 1, 2},
		{layout.SlotSize, 2},
		{2 * layout.SlotSize, 3},
		{8 * 1024 * 1024, 129},
	}
	for _, c := range cases {
		if got := SlotsFor(c.size); got != c.want {
			t.Errorf("SlotsFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestMaxSingleSlotRequestFitsExactly(t *testing.T) {
	f := newArenaFixture(t, 0)
	addr, err := f.ar.Isomalloc(MaxSingleSlotRequest, f.ns)
	if err != nil {
		t.Fatal(err)
	}
	groups, _ := f.ar.Groups()
	if len(groups) != 2 || groups[1].NSlots != 1 {
		t.Fatalf("groups = %+v", groups)
	}
	if err := f.sp.Store8(addr+MaxSingleSlotRequest-1, 0xFF); err != nil {
		t.Fatal(err)
	}
	f.check(t)
}

func TestReleaseAll(t *testing.T) {
	f := newArenaFixture(t, 0)
	for i := 0; i < 5; i++ {
		if _, err := f.ar.Isomalloc(40_000, f.ns); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.ar.ReleaseAll(f.ns); err != nil {
		t.Fatal(err)
	}
	if f.ns.OwnedFree() != layout.SlotCount {
		t.Fatalf("node owns %d, want all %d", f.ns.OwnedFree(), layout.SlotCount)
	}
}

func TestGroupsOrderKeepsStackFirst(t *testing.T) {
	f := newArenaFixture(t, 0)
	for i := 0; i < 3; i++ {
		if _, err := f.ar.Isomalloc(60_000, f.ns); err != nil {
			t.Fatal(err)
		}
	}
	groups, err := f.ar.Groups()
	if err != nil {
		t.Fatal(err)
	}
	if groups[0].Kind != KindStack {
		t.Fatal("stack slot must stay at the list head")
	}
	for _, g := range groups[1:] {
		if g.Kind != KindData {
			t.Fatalf("unexpected kind %d", g.Kind)
		}
	}
}

// TestRandomAllocFreeAgainstShadow drives the block layer with random
// operations and cross-checks against a Go-side shadow model, validating
// contents and full structural invariants at every step.
func TestRandomAllocFreeAgainstShadow(t *testing.T) {
	f := newArenaFixture(t, 4)
	rng := rand.New(rand.NewSource(7))
	type live struct {
		addr Addr
		data []byte
	}
	var blocks []live
	for step := 0; step < 2000; step++ {
		if rng.Intn(100) < 55 || len(blocks) == 0 {
			size := uint32(1 + rng.Intn(3000))
			if rng.Intn(20) == 0 {
				size = uint32(60_000 + rng.Intn(200_000)) // multi-slot
			}
			addr, err := f.ar.Isomalloc(size, f.ns)
			if err != nil {
				t.Fatalf("step %d: isomalloc(%d): %v", step, size, err)
			}
			data := make([]byte, size)
			rng.Read(data)
			if err := f.sp.Write(addr, data); err != nil {
				t.Fatalf("step %d: write: %v", step, err)
			}
			blocks = append(blocks, live{addr, data})
		} else {
			i := rng.Intn(len(blocks))
			b := blocks[i]
			got, err := f.sp.ReadBytes(b.addr, len(b.data))
			if err != nil || !bytes.Equal(got, b.data) {
				t.Fatalf("step %d: block %#x corrupted (err %v)", step, b.addr, err)
			}
			if err := f.ar.Isofree(b.addr, f.ns); err != nil {
				t.Fatalf("step %d: isofree(%#x): %v", step, b.addr, err)
			}
			blocks[i] = blocks[len(blocks)-1]
			blocks = blocks[:len(blocks)-1]
		}
		if step%50 == 0 {
			f.check(t)
			// All surviving blocks intact.
			for _, b := range blocks {
				got, err := f.sp.ReadBytes(b.addr, len(b.data))
				if err != nil || !bytes.Equal(got, b.data) {
					t.Fatalf("step %d: surviving block %#x corrupted", step, b.addr)
				}
			}
		}
	}
	f.check(t)
	for _, b := range blocks {
		if err := f.ar.Isofree(b.addr, f.ns); err != nil {
			t.Fatal(err)
		}
	}
	f.check(t)
	groups, _ := f.ar.Groups()
	if len(groups) != 1 {
		t.Fatalf("after freeing everything, %d groups remain", len(groups))
	}
}

func TestErrNoSlotsPropagatesFromIsomalloc(t *testing.T) {
	// Two-node round-robin: multi-slot requests cannot be satisfied
	// locally (this is what triggers negotiation in the full runtime).
	ns := NewNodeSlots(vmem.NewSpace(), NopCharger{}, NodeConfig{
		NodeID: 0, NumNodes: 2, Dist: RoundRobin{}, CacheCap: 0,
	})
	idx, err := ns.AcquireOne()
	if err != nil {
		t.Fatal(err)
	}
	stack := layout.SlotBase(idx)
	ar := NewArena(ns.Space(), NopCharger{}, nil, stack+SlotHeaderSize)
	if err := ar.InitStackSlot(stack); err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Isomalloc(100_000, ns); err != ErrNoSlots {
		t.Fatalf("err = %v, want ErrNoSlots", err)
	}
	// After buying slot 1 from node 1 (as the negotiation would), slots
	// 1 and 2 form the contiguous run and the same call succeeds.
	if err := ns.BuyRun(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Isomalloc(100_000, ns); err != nil {
		t.Fatalf("post-purchase isomalloc: %v", err)
	}
}
