package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/vmem"
)

// Arena is the block layer (paper §3.3, §4.3) over one thread's slot list.
// The list itself lives in simulated memory: Arena holds only the address of
// the word (inside the thread descriptor) that stores the first slot group's
// base. Everything else is read from and written to the slots, so the whole
// structure migrates by copying bytes.
type Arena struct {
	sp    *vmem.Space
	ch    Charger
	model *cost.Model
	// headAddr is the simulated address of the slot-list head pointer.
	headAddr Addr
}

// NewArena returns the block-layer view of a thread whose slot-list head
// pointer lives at headAddr. An Arena carries no state of its own and may be
// freely recreated (e.g. on the destination node after a migration).
func NewArena(sp *vmem.Space, ch Charger, model *cost.Model, headAddr Addr) *Arena {
	if model == nil {
		model = cost.Default()
	}
	return &Arena{sp: sp, ch: ch, model: model, headAddr: headAddr}
}

// Head returns the first slot group base, or 0 for an empty list.
func (a *Arena) Head() (Addr, error) { return a.sp.Load32(a.headAddr) }

// setHead stores the list head pointer.
func (a *Arena) setHead(v Addr) error { return a.sp.Store32(a.headAddr, v) }

// InitStackSlot writes the slot header of the thread's freshly acquired
// stack slot and makes it the head of the (previously empty) slot list.
func (a *Arena) InitStackSlot(base Addr) error {
	h := SlotHeader{Base: base, NSlots: 1, Kind: KindStack}
	if err := h.write(a.sp); err != nil {
		return err
	}
	return a.setHead(base)
}

// attachGroup initializes a freshly acquired group of n contiguous slots as
// a data slot group (single spanning free block) and links it into the list
// right after the head (the stack slot stays first, so the descriptor's
// position is invariant).
func (a *Arena) attachGroup(base Addr, n int) error {
	head, err := a.Head()
	if err != nil {
		return err
	}
	if head == 0 {
		return fmt.Errorf("core: attachGroup on empty slot list")
	}
	hh, err := readSlotHeader(a.sp, head)
	if err != nil {
		return err
	}
	g := SlotHeader{
		Base:     base,
		Prev:     head,
		Next:     hh.Next,
		NSlots:   uint32(n),
		Kind:     KindData,
		FreeHead: base + SlotHeaderSize,
	}
	free := blockHeader{
		addr:  base + SlotHeaderSize,
		size:  groupDataBytes(n),
		flags: flagFree,
	}
	if err := free.write(a.sp); err != nil {
		return err
	}
	if err := free.writeFooter(a.sp); err != nil {
		return err
	}
	if err := g.write(a.sp); err != nil {
		return err
	}
	if hh.Next != 0 {
		nx, err := readSlotHeader(a.sp, hh.Next)
		if err != nil {
			return err
		}
		nx.Prev = base
		if err := nx.write(a.sp); err != nil {
			return err
		}
	}
	hh.Next = base
	return hh.write(a.sp)
}

// detachGroup unlinks a group from the thread's list.
func (a *Arena) detachGroup(g *SlotHeader) error {
	if g.Prev == 0 {
		if err := a.setHead(g.Next); err != nil {
			return err
		}
	} else {
		p, err := readSlotHeader(a.sp, g.Prev)
		if err != nil {
			return err
		}
		p.Next = g.Next
		if err := p.write(a.sp); err != nil {
			return err
		}
	}
	if g.Next != 0 {
		n, err := readSlotHeader(a.sp, g.Next)
		if err != nil {
			return err
		}
		n.Prev = g.Prev
		if err := n.write(a.sp); err != nil {
			return err
		}
	}
	return nil
}

// SlotGroup describes one entry of a thread's slot list.
type SlotGroup struct {
	Base   Addr
	NSlots int
	Kind   SlotKind
	Used   uint32
}

// Groups walks the thread's slot list (in simulated memory) and returns the
// groups in list order.
func (a *Arena) Groups() ([]SlotGroup, error) {
	head, err := a.Head()
	if err != nil {
		return nil, err
	}
	var out []SlotGroup
	for at := head; at != 0; {
		h, err := readSlotHeader(a.sp, at)
		if err != nil {
			return nil, err
		}
		out = append(out, SlotGroup{Base: at, NSlots: int(h.NSlots), Kind: h.Kind, Used: h.Used})
		at = h.Next
		if len(out) > layout.SlotCount {
			return nil, fmt.Errorf("core: slot list cycle detected")
		}
	}
	return out, nil
}

// Isomalloc allocates size bytes from the thread's slots, acquiring new
// slots from the local node as needed (paper §4.3): first-fit over the free
// lists of the thread's data groups, then a fresh group from the node. It
// returns ErrNoSlots when the node cannot supply the required contiguous
// slots — the caller then runs the negotiation protocol and retries.
func (a *Arena) Isomalloc(size uint32, ns *NodeSlots) (Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("core: isomalloc(0)")
	}
	total := blockTotal(size)

	// First fit across the thread's existing free blocks.
	head, err := a.Head()
	if err != nil {
		return 0, err
	}
	for at := head; at != 0; {
		h, err := readSlotHeader(a.sp, at)
		if err != nil {
			return 0, err
		}
		a.ch.Charge(a.model.Probes(1))
		if h.Kind == KindData {
			addr, ok, err := a.allocIn(&h, total)
			if err != nil {
				return 0, err
			}
			if ok {
				return addr, nil
			}
		}
		at = h.Next
	}

	// No fit: acquire a fresh group from the local node.
	k := SlotsFor(size)
	var start int
	if k == 1 {
		start, err = ns.AcquireOne()
	} else {
		start, err = ns.AcquireRun(k)
	}
	if err != nil {
		return 0, err // ErrNoSlots → negotiation
	}
	base := layout.SlotBase(start)
	if err := a.attachGroup(base, k); err != nil {
		return 0, err
	}
	h, err := readSlotHeader(a.sp, base)
	if err != nil {
		return 0, err
	}
	addr, ok, err := a.allocIn(&h, total)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("core: fresh %d-slot group cannot hold %d bytes", k, total)
	}
	// Model the first-touch cost of the freshly mapped pages backing the
	// new block (kernel zero-fill), the dominant term of Figure 11.
	a.ch.Charge(a.model.ZeroFill(int(total)))
	return addr, nil
}

// allocIn carves a block of the given total size out of group h, first-fit
// over its free list. ok is false when no free block fits.
func (a *Arena) allocIn(h *SlotHeader, total uint32) (Addr, bool, error) {
	for at := h.FreeHead; at != 0; {
		a.ch.Charge(a.model.Probes(1))
		b, err := readBlock(a.sp, at)
		if err != nil {
			return 0, false, err
		}
		if !b.isFree() {
			return 0, false, fmt.Errorf("core: non-free block %#08x on free list", at)
		}
		if b.size >= total {
			if err := a.carve(h, &b, total); err != nil {
				return 0, false, err
			}
			if err := h.write(a.sp); err != nil {
				return 0, false, err
			}
			return b.payload(), true, nil
		}
		at = b.nextFree
	}
	return 0, false, nil
}

// carve turns free block b into a live block of exactly total bytes,
// splitting off the remainder when it is big enough to stand alone.
func (a *Arena) carve(h *SlotHeader, b *blockHeader, total uint32) error {
	remainder := b.size - total
	if remainder >= MinBlock {
		rem := blockHeader{
			addr:     b.addr + Addr(total),
			size:     remainder,
			flags:    flagFree, // previous block (b) is now live
			prevFree: b.prevFree,
			nextFree: b.nextFree,
		}
		if err := rem.write(a.sp); err != nil {
			return err
		}
		if err := rem.writeFooter(a.sp); err != nil {
			return err
		}
		if err := a.relinkFree(h, b, rem.addr); err != nil {
			return err
		}
		b.size = total
	} else {
		total = b.size
		if err := a.relinkFree(h, b, 0); err != nil {
			return err
		}
		// The whole block is consumed: the physically following block
		// no longer has a free predecessor.
		if err := a.setPrevFreeFlag(h, b.addr+Addr(b.size), false); err != nil {
			return err
		}
	}
	b.flags &^= flagFree
	b.prevFree = 0
	b.nextFree = 0
	if err := b.write(a.sp); err != nil {
		return err
	}
	h.Used += total
	return nil
}

// relinkFree replaces b with repl (0 = remove) in h's free list.
func (a *Arena) relinkFree(h *SlotHeader, b *blockHeader, repl Addr) error {
	if repl != 0 {
		// repl has already been written with b's links; just point the
		// neighbours (or the list head) at it.
		if b.prevFree == 0 {
			h.FreeHead = repl
		} else {
			if err := a.patchLink(b.prevFree, blkNextFree, repl); err != nil {
				return err
			}
		}
		if b.nextFree != 0 {
			if err := a.patchLink(b.nextFree, blkPrevFree, repl); err != nil {
				return err
			}
		}
		return nil
	}
	if b.prevFree == 0 {
		h.FreeHead = b.nextFree
	} else {
		if err := a.patchLink(b.prevFree, blkNextFree, b.nextFree); err != nil {
			return err
		}
	}
	if b.nextFree != 0 {
		if err := a.patchLink(b.nextFree, blkPrevFree, b.prevFree); err != nil {
			return err
		}
	}
	return nil
}

func (a *Arena) patchLink(block Addr, fieldOff int, v Addr) error {
	return a.sp.Store32(block+Addr(fieldOff), v)
}

// setPrevFreeFlag updates the flagPrevFree bit of the block at addr, if addr
// is still inside group h.
func (a *Arena) setPrevFreeFlag(h *SlotHeader, addr Addr, free bool) error {
	if addr >= h.End() {
		return nil
	}
	fl, err := a.sp.Load32(addr + blkFlags)
	if err != nil {
		return err
	}
	if free {
		fl |= flagPrevFree
	} else {
		fl &^= flagPrevFree
	}
	return a.sp.Store32(addr+blkFlags, fl)
}

// Isofree releases the block at user address addr (paper §3.4). Fully
// freed data groups are detached and donated to the local node ns — which,
// after a migration, may well not be the node the slots came from.
func (a *Arena) Isofree(addr Addr, ns *NodeSlots) error {
	g, err := a.findGroup(addr)
	if err != nil {
		return err
	}
	b, err := readBlock(a.sp, addr-BlockHeaderSize)
	if err != nil {
		return err
	}
	if b.isFree() {
		return fmt.Errorf("core: double free at %#08x", addr)
	}
	if b.size < MinBlock || b.addr+Addr(b.size) > g.End() {
		return fmt.Errorf("core: corrupt block at %#08x (size %d)", addr, b.size)
	}
	g.Used -= b.size

	// Coalesce backwards: the free predecessor's footer gives its start.
	if b.prevIsFree() {
		psize, err := a.sp.Load32(b.addr - 4)
		if err != nil {
			return err
		}
		p, err := readBlock(a.sp, b.addr-Addr(psize))
		if err != nil {
			return err
		}
		if !p.isFree() || p.size != psize {
			return fmt.Errorf("core: corrupt footer before %#08x", b.addr)
		}
		if err := a.relinkFree(g, &p, 0); err != nil {
			return err
		}
		p.size += b.size
		b = p
	}
	// Coalesce forwards.
	if nxt := b.addr + Addr(b.size); nxt < g.End() {
		n, err := readBlock(a.sp, nxt)
		if err != nil {
			return err
		}
		if n.isFree() {
			if err := a.relinkFree(g, &n, 0); err != nil {
				return err
			}
			b.size += n.size
		}
	}

	// Insert the merged block at the free list head.
	b.flags |= flagFree
	b.flags &^= flagPrevFree // predecessor is live, or we'd have merged
	b.prevFree = 0
	b.nextFree = g.FreeHead
	if g.FreeHead != 0 {
		if err := a.patchLink(g.FreeHead, blkPrevFree, b.addr); err != nil {
			return err
		}
	}
	g.FreeHead = b.addr
	if err := b.write(a.sp); err != nil {
		return err
	}
	if err := b.writeFooter(a.sp); err != nil {
		return err
	}
	if err := a.setPrevFreeFlag(g, b.addr+Addr(b.size), true); err != nil {
		return err
	}
	if err := g.write(a.sp); err != nil {
		return err
	}
	a.ch.Charge(a.model.Probes(3))

	// A fully free data group goes back to the node we are visiting.
	if g.Used == 0 && g.Kind == KindData {
		if err := a.detachGroup(g); err != nil {
			return err
		}
		return ns.Release(layout.SlotIndex(g.Base), int(g.NSlots))
	}
	return nil
}

// findGroup locates the thread's slot group containing user address addr.
func (a *Arena) findGroup(addr Addr) (*SlotHeader, error) {
	head, err := a.Head()
	if err != nil {
		return nil, err
	}
	for at := head; at != 0; {
		h, err := readSlotHeader(a.sp, at)
		if err != nil {
			return nil, err
		}
		a.ch.Charge(a.model.Probes(1))
		if addr >= h.DataStart() && addr < h.End() {
			if h.Kind != KindData {
				return nil, fmt.Errorf("core: %#08x is in a stack slot, not isomalloc data", addr)
			}
			return &h, nil
		}
		at = h.Next
	}
	return nil, fmt.Errorf("core: %#08x does not belong to this thread's slots", addr)
}

// ReleaseAll donates every slot group of the thread (including its stack
// slot) to node ns; used when a thread dies (paper Fig. 6, step 4). Stack
// groups go last: the descriptor — and the list-head pointer inside it —
// lives there, and vanishes with the release.
func (a *Arena) ReleaseAll(ns *NodeSlots) error {
	groups, err := a.Groups()
	if err != nil {
		return err
	}
	for _, g := range groups {
		if g.Kind == KindStack {
			continue
		}
		if err := ns.Release(layout.SlotIndex(g.Base), g.NSlots); err != nil {
			return err
		}
	}
	for _, g := range groups {
		if g.Kind != KindStack {
			continue
		}
		if err := ns.Release(layout.SlotIndex(g.Base), g.NSlots); err != nil {
			return err
		}
	}
	return nil
}

// FreeBlocks returns the free list of the group at base, for tests and
// invariant checks.
func (a *Arena) FreeBlocks(base Addr) ([]Addr, error) {
	h, err := readSlotHeader(a.sp, base)
	if err != nil {
		return nil, err
	}
	var out []Addr
	for at := h.FreeHead; at != 0; {
		b, err := readBlock(a.sp, at)
		if err != nil {
			return nil, err
		}
		if !b.isFree() {
			return nil, fmt.Errorf("core: non-free block %#08x on free list", at)
		}
		out = append(out, at)
		at = b.nextFree
		if len(out) > layout.SlotSize/MinBlock+1 {
			return nil, fmt.Errorf("core: free list cycle in group %#08x", base)
		}
	}
	return out, nil
}
