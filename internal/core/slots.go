// Package core implements the paper's primary contribution: the isomalloc
// iso-address memory allocator (paper §3–§4).
//
// The iso-address area is divided into fixed-size slots, globally reserved
// and locally allocated: each slot belongs to exactly one agent (a node or a
// thread) system-wide, so memory mmapped in a slot on one node is guaranteed
// to be unmapped at the same addresses on every other node. Nodes track
// their free slots in a private bitmap; threads chain their slots in a
// doubly-linked list whose links live inside the slots themselves, in
// simulated memory, so the chain survives iso-address migration verbatim.
// A block layer provides malloc-compatible allocation inside the slots.
package core

import (
	"errors"
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/simtime"
	"repro/internal/vmem"
)

// Addr is a simulated virtual address.
type Addr = layout.Addr

// Charger absorbs virtual CPU time charges; *simtime.Actor implements it.
type Charger interface {
	Charge(simtime.Time)
}

// NopCharger discards charges; used by unit tests that don't model time.
type NopCharger struct{}

// Charge implements Charger.
func (NopCharger) Charge(simtime.Time) {}

// Distribution decides the initial assignment of slots to nodes (paper
// §4.1: "slots are distributed among the nodes according to some
// user-defined distribution pattern").
type Distribution interface {
	// Owns reports whether node owns slot initially, in a p-node cluster.
	Owns(slot, node, p int) bool
	// Name identifies the distribution in stats and benchmarks.
	Name() string
}

// RoundRobin is the paper's default: slot i belongs to node i mod p. Simple,
// but "it behaves rather poorly for multi-slot allocations" — with p >= 2 no
// node ever owns two contiguous slots, so every multi-slot request
// negotiates.
type RoundRobin struct{}

// Owns implements Distribution.
func (RoundRobin) Owns(slot, node, p int) bool { return slot%p == node }

// Name implements Distribution.
func (RoundRobin) Name() string { return "round-robin" }

// BlockCyclic distributes runs of K contiguous slots cyclically: slot i
// belongs to node (i/K) mod p. Multi-slot allocations up to K slots stay
// local.
type BlockCyclic struct{ K int }

// Owns implements Distribution.
func (d BlockCyclic) Owns(slot, node, p int) bool { return (slot/d.K)%p == node }

// Name implements Distribution.
func (d BlockCyclic) Name() string { return fmt.Sprintf("block-cyclic(%d)", d.K) }

// Partition splits the iso-address area into p contiguous sub-areas, one per
// node ("an extreme choice ... not advisable if the heap of the container
// process needs to grow in unpredictable ways").
type Partition struct{}

// Owns implements Distribution.
func (Partition) Owns(slot, node, p int) bool {
	per := layout.SlotCount / p
	lo := node * per
	hi := lo + per
	if node == p-1 {
		hi = layout.SlotCount
	}
	return slot >= lo && slot < hi
}

// Name implements Distribution.
func (Partition) Name() string { return "partition" }

// ErrNoSlots reports that the local node owns no suitable (run of) slots;
// the caller must negotiate with other nodes (paper §4.4) or fail.
var ErrNoSlots = errors.New("isomalloc: no suitable local slots (negotiation required)")

// SlotStats counts slot-layer activity on one node.
type SlotStats struct {
	Acquired      uint64 // slots handed to threads
	Released      uint64 // slots returned by threads
	CacheHits     uint64 // acquisitions served without an mmap call
	Mmaps         uint64 // actual mmap calls
	Munmaps       uint64 // actual munmap calls
	Installed     uint64 // slots mapped on migration arrival
	Evicted       uint64 // slots unmapped on migration departure
	RunSearches   uint64 // contiguous-run searches
	RunSearchFail uint64 // searches that required negotiation
}

// NodeConfig configures a node's slot manager.
type NodeConfig struct {
	NodeID   int
	NumNodes int
	Dist     Distribution
	// CacheCap is the maximum number of free slots kept mmapped (the
	// paper's §6 optimization). 0 disables the cache.
	CacheCap int
	Model    *cost.Model
}

// NodeSlots is the slot layer of one node: the private bitmap of owned free
// slots (bit = 1: owned by this node and free), the mmapped-slot cache, and
// the acquire/release operations threads use. All memory operations charge
// virtual time to the node's Charger.
type NodeSlots struct {
	cfg   NodeConfig
	space *vmem.Space
	ch    Charger
	bm    *bitmap.Bitmap
	// cached tracks owned free slots that are still mmapped; cacheOrder
	// is FIFO for eviction.
	cached     map[int]bool
	cacheOrder []int
	stats      SlotStats
	// onChange, when set, runs after every mutation of the ownership
	// bitmap with the bit range [start, start+n) that changed. The
	// runtime uses it to fan emptiness-hint invalidations out to peers
	// that were told this node owned nothing (the lane-affine hints of
	// the batched/tree gathers) and to feed the delta-gather
	// dirty-word journal.
	onChange func(start, n int)
}

// NewNodeSlots builds the slot layer for one node, populating the bitmap
// from the distribution.
func NewNodeSlots(space *vmem.Space, ch Charger, cfg NodeConfig) *NodeSlots {
	if cfg.NumNodes <= 0 || cfg.NodeID < 0 || cfg.NodeID >= cfg.NumNodes {
		panic(fmt.Sprintf("core: bad node config %d/%d", cfg.NodeID, cfg.NumNodes))
	}
	if cfg.Dist == nil {
		cfg.Dist = RoundRobin{}
	}
	if cfg.Model == nil {
		cfg.Model = cost.Default()
	}
	ns := &NodeSlots{
		cfg:    cfg,
		space:  space,
		ch:     ch,
		bm:     bitmap.New(layout.SlotCount),
		cached: make(map[int]bool),
	}
	for i := 0; i < layout.SlotCount; i++ {
		if cfg.Dist.Owns(i, cfg.NodeID, cfg.NumNodes) {
			ns.bm.Set(i)
		}
	}
	return ns
}

// Stats returns a copy of the counters.
func (ns *NodeSlots) Stats() SlotStats { return ns.stats }

// SetOnChange registers fn to run after every ownership-bitmap mutation,
// with the slot range [start, start+n) whose bits changed.
func (ns *NodeSlots) SetOnChange(fn func(start, n int)) { ns.onChange = fn }

func (ns *NodeSlots) changed(start, n int) {
	if ns.onChange != nil {
		ns.onChange(start, n)
	}
}

// Bitmap exposes the node's private slot bitmap (used by the negotiation
// protocol, which gathers and rewrites bitmaps).
func (ns *NodeSlots) Bitmap() *bitmap.Bitmap { return ns.bm }

// OwnedFree returns the number of slots currently owned (and free).
func (ns *NodeSlots) OwnedFree() int { return ns.bm.Count() }

// Space returns the node's address space.
func (ns *NodeSlots) Space() *vmem.Space { return ns.space }

// Model returns the node's cost model.
func (ns *NodeSlots) Model() *cost.Model { return ns.cfg.Model }

// Charger returns the node's charger.
func (ns *NodeSlots) Charger() Charger { return ns.ch }

// mmapSlots maps n slots starting at slot index start and charges for it.
func (ns *NodeSlots) mmapSlots(start, n int) error {
	ns.stats.Mmaps++
	ns.ch.Charge(ns.cfg.Model.Mmap(n * layout.PagesPerSlot))
	return ns.space.Mmap(layout.SlotBase(start), n*layout.SlotSize)
}

func (ns *NodeSlots) munmapSlots(start, n int) error {
	ns.stats.Munmaps++
	ns.ch.Charge(ns.cfg.Model.Munmap(n * layout.PagesPerSlot))
	return ns.space.Munmap(layout.SlotBase(start), n*layout.SlotSize)
}

func (ns *NodeSlots) uncache(idx int) {
	if ns.cached[idx] {
		delete(ns.cached, idx)
		for i, v := range ns.cacheOrder {
			if v == idx {
				ns.cacheOrder = append(ns.cacheOrder[:i], ns.cacheOrder[i+1:]...)
				break
			}
		}
	}
}

// AcquireOne hands one owned free slot to a thread: the bit is cleared and
// the slot's memory is mapped (reusing a cached mapping when possible). It
// returns the slot index, or ErrNoSlots if the node owns nothing.
func (ns *NodeSlots) AcquireOne() (int, error) {
	// Prefer a cached (already mmapped) slot: this is the paper's §6
	// optimization that saves the mmap at thread creation.
	if len(ns.cacheOrder) > 0 {
		idx := ns.cacheOrder[len(ns.cacheOrder)-1]
		ns.cacheOrder = ns.cacheOrder[:len(ns.cacheOrder)-1]
		delete(ns.cached, idx)
		ns.bm.Clear(idx)
		ns.changed(idx, 1)
		ns.stats.Acquired++
		ns.stats.CacheHits++
		ns.ch.Charge(ns.cfg.Model.Probes(1))
		// Handed out with stale contents, like real mmap reuse under
		// MAP_UNINITIALIZED: the block layer rewrites all metadata and
		// malloc semantics promise nothing about block bodies.
		return idx, nil
	}
	ns.ch.Charge(ns.cfg.Model.Probes(1))
	idx := ns.bm.FirstSet(0)
	if idx < 0 {
		return 0, ErrNoSlots
	}
	ns.bm.Clear(idx)
	ns.changed(idx, 1)
	ns.stats.Acquired++
	if err := ns.mmapSlots(idx, 1); err != nil {
		return 0, err
	}
	return idx, nil
}

// AcquireRun hands a run of n contiguous owned free slots to a thread
// (first-fit over the bitmap, paper §4.4 step 1). It returns ErrNoSlots if
// no such run exists locally, in which case the caller negotiates.
func (ns *NodeSlots) AcquireRun(n int) (int, error) {
	if n == 1 {
		return ns.AcquireOne()
	}
	ns.stats.RunSearches++
	ns.ch.Charge(ns.cfg.Model.BitmapScan(layout.BitmapBytes))
	start := ns.bm.FindRun(n)
	if start < 0 {
		ns.stats.RunSearchFail++
		return 0, ErrNoSlots
	}
	ns.takeRun(start, n)
	return start, nil
}

// takeRun clears bits and maps the slots of a run known to be owned+free.
func (ns *NodeSlots) takeRun(start, n int) {
	ns.bm.ClearRun(start, n)
	ns.changed(start, n)
	ns.stats.Acquired += uint64(n)
	// Map the uncached stretches; consume cached mappings in place.
	i := start
	for i < start+n {
		if ns.cached[i] {
			ns.uncache(i)
			ns.stats.CacheHits++
			i++
			continue
		}
		j := i
		for j < start+n && !ns.cached[j] {
			j++
		}
		if err := ns.mmapSlots(i, j-i); err != nil {
			panic(fmt.Sprintf("core: slot run [%d,%d) already mapped: %v", i, j, err))
		}
		i = j
	}
}

// AcquireAt takes possession of specific owned free slots (used after a
// negotiation marks purchased slots in our bitmap).
func (ns *NodeSlots) AcquireAt(start, n int) error {
	if !ns.bm.TestRun(start, n) {
		return fmt.Errorf("core: AcquireAt [%d,%d): slots not owned+free", start, start+n)
	}
	ns.takeRun(start, n)
	return nil
}

// Release returns a run of slots to this node (thread released or died
// here; paper: released slots go to the node the thread is visiting). The
// memory is unmapped unless the single-slot cache has room.
func (ns *NodeSlots) Release(start, n int) error {
	if ns.bm.TestRun(start, 1) {
		return fmt.Errorf("core: Release [%d,%d): slot already free", start, start+n)
	}
	ns.bm.SetRun(start, n)
	ns.changed(start, n)
	ns.stats.Released += uint64(n)
	if n == 1 && len(ns.cacheOrder) < ns.cfg.CacheCap {
		ns.cached[start] = true
		ns.cacheOrder = append(ns.cacheOrder, start)
		return nil
	}
	return ns.munmapSlots(start, n)
}

// Evict unmaps a thread-owned slot run on migration departure. The bitmap
// is untouched: the slots still belong to the migrating thread (paper §4.2:
// "the bitmaps do not undergo any change on thread migration").
func (ns *NodeSlots) Evict(start, n int) error {
	ns.stats.Evicted += uint64(n)
	return ns.munmapSlots(start, n)
}

// Install maps a thread-owned slot run on migration arrival. The iso-address
// discipline guarantees the range is free here; a mapping collision is a
// protocol-invariant violation and panics.
func (ns *NodeSlots) Install(start, n int) error {
	ns.stats.Installed += uint64(n)
	return ns.mmapSlots(start, n)
}

// SellRun marks [start,start+n) as no longer owned: the slots were bought
// by another node during negotiation.
func (ns *NodeSlots) SellRun(start, n int) error {
	if !ns.bm.TestRun(start, n) {
		return fmt.Errorf("core: SellRun [%d,%d): not owned+free", start, start+n)
	}
	for i := start; i < start+n; i++ {
		if ns.cached[i] {
			ns.uncache(i)
			if err := ns.munmapSlots(i, 1); err != nil {
				return err
			}
		}
	}
	ns.bm.ClearRun(start, n)
	ns.changed(start, n)
	return nil
}

// SellIntersection sells every owned free slot inside [start,start+n) —
// the range-purchase used after a tree gather, where the buyer knows the
// chosen run but not who owns each slot. It returns the maximal sub-runs
// actually sold (possibly none), each cleared from the bitmap exactly as
// SellRun would.
func (ns *NodeSlots) SellIntersection(start, n int) ([][2]int, error) {
	var sold [][2]int
	i := start
	for i < start+n {
		if !ns.bm.Test(i) {
			i++
			continue
		}
		j := i
		for j < start+n && ns.bm.Test(j) {
			j++
		}
		if err := ns.SellRun(i, j-i); err != nil {
			return sold, err
		}
		sold = append(sold, [2]int{i, j - i})
		i = j
	}
	return sold, nil
}

// CanBuyRun reports whether BuyRun of [start,start+n) would succeed: no
// slot in the run is already owned by this node.
func (ns *NodeSlots) CanBuyRun(start, n int) bool {
	return !ns.bm.Intersects(runMask(start, n))
}

// BuyRun marks [start,start+n) as owned+free after purchasing the slots
// from other nodes.
func (ns *NodeSlots) BuyRun(start, n int) error {
	if ns.bm.Intersects(runMask(start, n)) {
		return fmt.Errorf("core: BuyRun [%d,%d): overlap with owned slots", start, start+n)
	}
	ns.bm.SetRun(start, n)
	ns.changed(start, n)
	return nil
}

func runMask(start, n int) *bitmap.Bitmap {
	m := bitmap.New(layout.SlotCount)
	m.SetRun(start, n)
	return m
}

// SurrenderAll hands every owned free slot to a defragmentation
// coordinator: the cache is evicted (the slots may be granted to another
// node), the bitmap is cleared, and the surrendered set is returned. Until
// a replacement bitmap arrives the node owns nothing and local allocations
// fail over to the negotiation path.
func (ns *NodeSlots) SurrenderAll() *bitmap.Bitmap {
	ns.DropCache()
	out := ns.bm
	ns.bm = bitmap.New(layout.SlotCount)
	ns.changed(0, layout.SlotCount)
	return out
}

// ReplaceBitmap installs a new ownership bitmap, as the global
// defragmentation of §4.4 does ("completely restructure the slot
// distribution at the system level ... the only requirement is that each
// slot present in the bitmaps must finally belong to exactly one node").
// Cached mappings of slots we no longer own are evicted first.
func (ns *NodeSlots) ReplaceBitmap(bm *bitmap.Bitmap) error {
	if bm.Len() != layout.SlotCount {
		return fmt.Errorf("core: replacement bitmap has %d bits", bm.Len())
	}
	for _, idx := range append([]int(nil), ns.cacheOrder...) {
		if !bm.Test(idx) {
			ns.uncache(idx)
			if err := ns.munmapSlots(idx, 1); err != nil {
				return err
			}
		}
	}
	ns.bm = bm.Clone()
	ns.changed(0, layout.SlotCount)
	return nil
}

// RestoreBitmap reinstates an ownership bitmap from a checkpoint image.
// Unlike ReplaceBitmap it is a pure state write — no charges, no
// on-change hook, no cache interaction — because the restore path
// rebuilds caches, hints and journals itself from the captured ground
// truth.
func (ns *NodeSlots) RestoreBitmap(bm *bitmap.Bitmap) error {
	if bm.Len() != layout.SlotCount {
		return fmt.Errorf("core: restored bitmap has %d bits, want %d", bm.Len(), layout.SlotCount)
	}
	ns.bm = bm.Clone()
	return nil
}

// DropCache unmaps all cached free slots (used by ablation benchmarks to
// simulate a cold slot cache).
func (ns *NodeSlots) DropCache() {
	for _, idx := range ns.cacheOrder {
		delete(ns.cached, idx)
		if err := ns.munmapSlots(idx, 1); err != nil {
			panic(err)
		}
	}
	ns.cacheOrder = ns.cacheOrder[:0]
}

// CachedSlots returns the number of mmapped free slots currently cached.
func (ns *NodeSlots) CachedSlots() int { return len(ns.cacheOrder) }
