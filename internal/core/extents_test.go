package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/layout"
	"repro/internal/vmem"
)

func TestUsedSpansDataCoversLiveBlocksOnly(t *testing.T) {
	f := newArenaFixture(t, 0)
	a, _ := f.ar.Isomalloc(100, f.ns)
	b, _ := f.ar.Isomalloc(200, f.ns)
	c, _ := f.ar.Isomalloc(300, f.ns)
	if err := f.ar.Isofree(b, f.ns); err != nil {
		t.Fatal(err)
	}
	groups, _ := f.ar.Groups()
	h, err := readSlotHeader(f.sp, groups[1].Base)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := UsedSpansData(f.sp, &h)
	if err != nil {
		t.Fatal(err)
	}
	covered := func(addr Addr, n uint32) bool {
		off := uint32(addr - h.Base)
		for _, s := range spans {
			if off >= s.Off && off+n <= s.Off+s.Len {
				return true
			}
		}
		return false
	}
	if !covered(0+h.Base, SlotHeaderSize) {
		t.Error("header not covered")
	}
	if !covered(a-BlockHeaderSize, blockTotal(100)) || !covered(c-BlockHeaderSize, blockTotal(300)) {
		t.Error("live blocks not covered")
	}
	if covered(b-BlockHeaderSize+8, 8) {
		t.Error("freed block payload should not be shipped")
	}
	// Spans must be well under the whole group.
	if TotalBytes(spans) >= layout.SlotSize/2 {
		t.Errorf("spans total %d, expected far less than a slot", TotalBytes(spans))
	}
}

func TestUsedSpansMergesAdjacentBlocks(t *testing.T) {
	f := newArenaFixture(t, 0)
	// Two back-to-back live blocks directly after the header produce one
	// contiguous span with the header.
	f.ar.Isomalloc(64, f.ns)
	f.ar.Isomalloc(64, f.ns)
	groups, _ := f.ar.Groups()
	h, _ := readSlotHeader(f.sp, groups[1].Base)
	spans, err := UsedSpansData(f.sp, &h)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("spans = %+v, want one merged span", spans)
	}
	if spans[0].Off != 0 || spans[0].Len != SlotHeaderSize+2*blockTotal(64) {
		t.Fatalf("span = %+v", spans[0])
	}
}

func TestUsedSpansStack(t *testing.T) {
	f := newArenaFixture(t, 0)
	h, _ := readSlotHeader(f.sp, f.stack)
	spAddr := h.End() - 128 // 128 live stack bytes
	spans, err := UsedSpansStack(&h, 96, spAddr)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Off != 0 || spans[0].Len != SlotHeaderSize+96 {
		t.Fatalf("desc span = %+v", spans[0])
	}
	if spans[1].Off != uint32(spAddr-h.Base) || spans[1].Len != 128 {
		t.Fatalf("stack span = %+v", spans[1])
	}
	// Empty stack (sp at the very end) ships only the descriptor part.
	spans, err = UsedSpansStack(&h, 96, h.End())
	if err != nil || len(spans) != 1 {
		t.Fatalf("empty-stack spans = %+v, %v", spans, err)
	}
	// SP outside the group is rejected.
	if _, err := UsedSpansStack(&h, 96, h.Base); err == nil {
		t.Fatal("sp inside descriptor must be rejected")
	}
}

func TestKindMismatchErrors(t *testing.T) {
	f := newArenaFixture(t, 0)
	f.ar.Isomalloc(64, f.ns)
	groups, _ := f.ar.Groups()
	stackH, _ := readSlotHeader(f.sp, groups[0].Base)
	dataH, _ := readSlotHeader(f.sp, groups[1].Base)
	if _, err := UsedSpansData(f.sp, &stackH); err == nil {
		t.Error("UsedSpansData on stack group must fail")
	}
	if _, err := UsedSpansStack(&dataH, 96, dataH.End()); err == nil {
		t.Error("UsedSpansStack on data group must fail")
	}
}

// installGroup simulates the destination side of a migration for one data
// group: map the same addresses, copy the spans, rebuild the free lists.
func installGroup(t *testing.T, src *vmem.Space, base Addr, nSlots int, spans []Span) *vmem.Space {
	t.Helper()
	dst := vmem.NewSpace()
	if err := dst.Mmap(base, nSlots*layout.SlotSize); err != nil {
		t.Fatal(err)
	}
	for _, s := range spans {
		data, err := src.ReadBytes(base+Addr(s.Off), int(s.Len))
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Write(base+Addr(s.Off), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := RebuildFreeList(dst, base, spans); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestRebuildFreeListRoundTrip(t *testing.T) {
	f := newArenaFixture(t, 0)
	// Build a group with an interesting free pattern.
	var blocks []Addr
	for i := 0; i < 8; i++ {
		a, err := f.ar.Isomalloc(uint32(100+100*i), f.ns)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, a)
	}
	for _, i := range []int{1, 4, 5} {
		if err := f.ar.Isofree(blocks[i], f.ns); err != nil {
			t.Fatal(err)
		}
	}
	groups, _ := f.ar.Groups()
	base := groups[1].Base
	h, _ := readSlotHeader(f.sp, base)
	spans, err := UsedSpansData(f.sp, &h)
	if err != nil {
		t.Fatal(err)
	}
	dst := installGroup(t, f.sp, base, int(h.NSlots), spans)

	// The destination group must pass the full invariant check when
	// chained as a single-group list.
	scratch := Addr(layout.StackBase)
	if err := dst.Mmap(scratch, layout.PageSize); err != nil {
		t.Fatal(err)
	}
	// Rewrite prev/next to make it a standalone list for the checker.
	dh, err := readSlotHeader(dst, base)
	if err != nil {
		t.Fatal(err)
	}
	dh.Prev, dh.Next = 0, 0
	if err := dh.write(dst); err != nil {
		t.Fatal(err)
	}
	if err := dst.Store32(scratch, uint32(base)); err != nil {
		t.Fatal(err)
	}
	if err := CheckArena(dst, scratch); err != nil {
		t.Fatalf("installed group fails invariants: %v", err)
	}
	// Live payloads must be byte-identical at the same addresses.
	for _, i := range []int{0, 2, 3, 6, 7} {
		want, _ := f.sp.ReadBytes(blocks[i], 64)
		got, err := dst.ReadBytes(blocks[i], 64)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("block %d payload mismatch after install: %v", i, err)
		}
	}
	// Freed regions must be usable free blocks: allocate again on dst.
	ar2 := NewArena(dst, NopCharger{}, nil, scratch)
	ns2 := NewNodeSlots(dst, NopCharger{}, NodeConfig{NodeID: 0, NumNodes: 1})
	// Pre-own nothing: allocation must come from the rebuilt free list.
	if err := ns2.SellRun(0, layout.SlotCount); err != nil {
		t.Fatal(err)
	}
	addr, err := ar2.Isomalloc(80, ns2)
	if err != nil {
		t.Fatalf("allocating from rebuilt free list: %v", err)
	}
	if !layout.InIsoArea(addr) {
		t.Fatalf("addr %#x", addr)
	}
}

func TestRebuildFreeListFullGroupNoGaps(t *testing.T) {
	f := newArenaFixture(t, 0)
	// Fill a slot completely so there is no free space at all.
	a, err := f.ar.Isomalloc(MaxSingleSlotRequest, f.ns)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	groups, _ := f.ar.Groups()
	base := groups[1].Base
	h, _ := readSlotHeader(f.sp, base)
	spans, err := UsedSpansData(f.sp, &h)
	if err != nil {
		t.Fatal(err)
	}
	if TotalBytes(spans) != layout.SlotSize {
		t.Fatalf("full slot spans = %d bytes", TotalBytes(spans))
	}
	dst := installGroup(t, f.sp, base, 1, spans)
	dh, _ := readSlotHeader(dst, base)
	if dh.FreeHead != 0 {
		t.Fatal("full group must have empty free list after rebuild")
	}
}

func TestWholeSpanModeIsByteIdentical(t *testing.T) {
	f := newArenaFixture(t, 0)
	a, _ := f.ar.Isomalloc(500, f.ns)
	b, _ := f.ar.Isomalloc(600, f.ns)
	_ = a
	if err := f.ar.Isofree(b, f.ns); err != nil {
		t.Fatal(err)
	}
	groups, _ := f.ar.Groups()
	base := groups[1].Base
	h, _ := readSlotHeader(f.sp, base)
	spans := WholeSpan(&h)
	if len(spans) != 1 || spans[0].Len != layout.SlotSize {
		t.Fatalf("WholeSpan = %+v", spans)
	}
	dst := vmem.NewSpace()
	if err := dst.Mmap(base, layout.SlotSize); err != nil {
		t.Fatal(err)
	}
	data, _ := f.sp.ReadBytes(base, layout.SlotSize)
	if err := dst.Write(base, data); err != nil {
		t.Fatal(err)
	}
	// Whole-slot mode needs no rebuild: bytes are identical, including
	// the free-list words.
	got, _ := dst.ReadBytes(base, layout.SlotSize)
	if !bytes.Equal(got, data) {
		t.Fatal("whole-slot copy differs")
	}
}

func TestRandomPatternsSurviveInstall(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		f := newArenaFixture(t, 0)
		type rec struct {
			addr Addr
			data []byte
		}
		var live []rec
		for i := 0; i < 30; i++ {
			size := uint32(1 + rng.Intn(2000))
			addr, err := f.ar.Isomalloc(size, f.ns)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, size)
			rng.Read(data)
			f.sp.Write(addr, data)
			live = append(live, rec{addr, data})
		}
		// Free a random subset (keep at least one so the group stays).
		for i := len(live) - 1; i > 0; i-- {
			if rng.Intn(2) == 0 {
				f.ar.Isofree(live[i].addr, f.ns)
				live = append(live[:i], live[i+1:]...)
			}
		}
		groups, _ := f.ar.Groups()
		for _, g := range groups {
			if g.Kind != KindData {
				continue
			}
			h, _ := readSlotHeader(f.sp, g.Base)
			spans, err := UsedSpansData(f.sp, &h)
			if err != nil {
				t.Fatal(err)
			}
			dst := installGroup(t, f.sp, g.Base, g.NSlots, spans)
			for _, r := range live {
				if r.addr < h.DataStart() || r.addr >= h.End() {
					continue
				}
				got, err := dst.ReadBytes(r.addr, len(r.data))
				if err != nil || !bytes.Equal(got, r.data) {
					t.Fatalf("trial %d: block %#x lost after install", trial, r.addr)
				}
			}
		}
	}
}
