package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/layout"
)

func TestPlanDefragRoundRobin(t *testing.T) {
	p := 4
	maps := make([]*bitmap.Bitmap, p)
	for i := range maps {
		maps[i] = bitmap.New(layout.SlotCount)
	}
	for s := 0; s < layout.SlotCount; s++ {
		maps[s%p].Set(s)
	}
	out := PlanDefrag(maps)
	// Every node keeps its count.
	for i := range out {
		if out[i].Count() != maps[i].Count() {
			t.Fatalf("node %d count %d, want %d", i, out[i].Count(), maps[i].Count())
		}
	}
	// Single ownership preserved; union covers the pool.
	if CheckSingleOwnership(out) != -1 {
		t.Fatal("defrag created double ownership")
	}
	union := bitmap.New(layout.SlotCount)
	for _, m := range out {
		union.Or(m)
	}
	if union.Count() != layout.SlotCount {
		t.Fatal("defrag lost slots")
	}
	// The whole point: each node now owns one contiguous range, so a
	// large run is trivially available (round-robin had none).
	for i := range out {
		if got := out[i].FindRun(1000); got < 0 {
			t.Fatalf("node %d has no 1000-run after defrag", i)
		}
	}
	if maps[0].FindRun(2) >= 0 {
		t.Fatal("precondition broken: round-robin should have no runs")
	}
}

func TestPlanDefragWithBusySlots(t *testing.T) {
	// Thread-owned (busy) slots are in nobody's bitmap; the defrag must
	// redistribute only the free ones.
	p := 2
	maps := make([]*bitmap.Bitmap, p)
	for i := range maps {
		maps[i] = bitmap.New(layout.SlotCount)
	}
	rng := rand.New(rand.NewSource(5))
	free := 0
	for s := 0; s < layout.SlotCount; s++ {
		switch rng.Intn(3) {
		case 0:
			maps[0].Set(s)
			free++
		case 1:
			maps[1].Set(s)
			free++
			// case 2: busy — owned by some thread.
		}
	}
	out := PlanDefrag(maps)
	union := bitmap.New(layout.SlotCount)
	for _, m := range out {
		union.Or(m)
	}
	if union.Count() != free {
		t.Fatalf("union %d, want %d free slots", union.Count(), free)
	}
	if CheckSingleOwnership(out) != -1 {
		t.Fatal("double ownership")
	}
	if out[0].Count() != maps[0].Count() || out[1].Count() != maps[1].Count() {
		t.Fatal("counts not preserved")
	}
}

func TestPlanDefragOverlapPanics(t *testing.T) {
	maps := []*bitmap.Bitmap{bitmap.New(layout.SlotCount), bitmap.New(layout.SlotCount)}
	maps[0].Set(7)
	maps[1].Set(7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overlapping bitmaps")
		}
	}()
	PlanDefrag(maps)
}

func TestSurrenderAndReplace(t *testing.T) {
	ns := newSlots(t, 0, 2, RoundRobin{}, 4)
	// Put a slot in the cache first.
	idx, _ := ns.AcquireOne()
	ns.Release(idx, 1)
	if ns.CachedSlots() != 1 {
		t.Fatal("expected a cached slot")
	}
	before := ns.Bitmap().Count()
	given := ns.SurrenderAll()
	if given.Count() != before {
		t.Fatalf("surrendered %d, want %d", given.Count(), before)
	}
	if ns.OwnedFree() != 0 || ns.CachedSlots() != 0 {
		t.Fatal("surrender must empty bitmap and cache")
	}
	if ns.Space().IsMapped(layout.SlotBase(idx), 1) {
		t.Fatal("cached mapping must be evicted on surrender")
	}
	if _, err := ns.AcquireOne(); err != ErrNoSlots {
		t.Fatal("no slots should remain")
	}
	// Install a replacement and allocate again.
	repl := bitmap.New(layout.SlotCount)
	repl.SetRun(100, 50)
	if err := ns.ReplaceBitmap(repl); err != nil {
		t.Fatal(err)
	}
	got, err := ns.AcquireRun(50)
	if err != nil || got != 100 {
		t.Fatalf("AcquireRun after replace = %d, %v", got, err)
	}
}

func TestReplaceBitmapEvictsLostCachedSlots(t *testing.T) {
	ns := newSlots(t, 0, 1, RoundRobin{}, 4)
	a, _ := ns.AcquireOne()
	b, _ := ns.AcquireOne()
	ns.Release(a, 1)
	ns.Release(b, 1)
	if ns.CachedSlots() != 2 {
		t.Fatal("want two cached slots")
	}
	// New bitmap keeps slot a but loses slot b.
	repl := ns.Bitmap().Clone()
	repl.Clear(b)
	if err := ns.ReplaceBitmap(repl); err != nil {
		t.Fatal(err)
	}
	if !ns.Space().IsMapped(layout.SlotBase(a), 1) {
		t.Fatal("kept slot should stay cached and mapped")
	}
	if ns.Space().IsMapped(layout.SlotBase(b), 1) {
		t.Fatal("lost slot must be unmapped")
	}
	if err := ns.ReplaceBitmap(bitmap.New(10)); err == nil {
		t.Fatal("wrong-size bitmap must be rejected")
	}
}
