package core

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/vmem"
)

// All allocator metadata — slot headers chaining a thread's slots, block
// headers, free-list links — is stored in simulated memory as 32-bit words.
// The values are iso-addresses, so after migration a verbatim copy of the
// slot bytes reproduces the entire structure with no fixup (paper §4.2:
// "chaining is carried out by means of pointers stored in the slot headers
// ... an iso-address copy is enough").

// SlotKind distinguishes the two uses of thread-owned slots.
type SlotKind uint32

// Slot kinds.
const (
	// KindStack is a thread's stack slot: slot header, then the thread
	// descriptor, then the stack growing down from the slot end.
	KindStack SlotKind = 1
	// KindData is an isomalloc data slot (or merged run of slots)
	// carrying a block heap.
	KindData SlotKind = 2
)

// SlotMagic marks a valid slot header.
const SlotMagic = 0x51075107

// Slot header field offsets (bytes from the slot group base).
const (
	hdrMagic    = 0
	hdrPrev     = 4  // previous slot group header address (0 = head)
	hdrNext     = 8  // next slot group header address (0 = tail)
	hdrNSlots   = 12 // number of contiguous slots merged into this group
	hdrKind     = 16
	hdrFreeHead = 20 // first free block address (0 = none)
	hdrUsed     = 24 // bytes consumed by live blocks (headers included)

	// SlotHeaderSize is the reserved header area at the start of every
	// slot group.
	SlotHeaderSize = 32
)

// SlotHeader is the decoded in-memory header of a slot group.
type SlotHeader struct {
	Base     Addr
	Prev     Addr
	Next     Addr
	NSlots   uint32
	Kind     SlotKind
	FreeHead Addr
	Used     uint32
}

// DataStart returns the first usable byte of the group.
func (h *SlotHeader) DataStart() Addr { return h.Base + SlotHeaderSize }

// End returns the first address past the group.
func (h *SlotHeader) End() Addr { return h.Base + Addr(h.NSlots)*layout.SlotSize }

// ReadSlotHeader loads and validates the slot group header at base (the
// runtime uses it to pack migrating slot groups).
func ReadSlotHeader(sp *vmem.Space, base Addr) (SlotHeader, error) {
	return readSlotHeader(sp, base)
}

// readSlotHeader loads and validates the header at base.
func readSlotHeader(sp *vmem.Space, base Addr) (SlotHeader, error) {
	var h SlotHeader
	buf, err := sp.ReadBytes(base, SlotHeaderSize)
	if err != nil {
		return h, err
	}
	w := func(off int) uint32 {
		return uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24
	}
	if w(hdrMagic) != SlotMagic {
		return h, fmt.Errorf("core: bad slot magic %#x at %#08x", w(hdrMagic), base)
	}
	h.Base = base
	h.Prev = w(hdrPrev)
	h.Next = w(hdrNext)
	h.NSlots = w(hdrNSlots)
	h.Kind = SlotKind(w(hdrKind))
	h.FreeHead = w(hdrFreeHead)
	h.Used = w(hdrUsed)
	return h, nil
}

// Write stores the header to simulated memory (exported for the runtime's
// relocation baseline, which rebuilds headers at new addresses).
func (h *SlotHeader) Write(sp *vmem.Space) error { return h.write(sp) }

// write stores the header back to simulated memory.
func (h *SlotHeader) write(sp *vmem.Space) error {
	buf := make([]byte, SlotHeaderSize)
	put := func(off int, v uint32) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
		buf[off+2] = byte(v >> 16)
		buf[off+3] = byte(v >> 24)
	}
	put(hdrMagic, SlotMagic)
	put(hdrPrev, h.Prev)
	put(hdrNext, h.Next)
	put(hdrNSlots, h.NSlots)
	put(hdrKind, uint32(h.Kind))
	put(hdrFreeHead, h.FreeHead)
	put(hdrUsed, h.Used)
	return sp.Write(h.Base, buf)
}

// Block header layout. Every block (free or live) starts with a 16-byte
// header; free blocks additionally carry a 4-byte footer (their size) in
// their last word so the physically-following block can find their start
// when coalescing backwards.
const (
	blkSize     = 0 // total block size in bytes, headers included
	blkFlags    = 4
	blkPrevFree = 8  // free-list link (free blocks only)
	blkNextFree = 12 // free-list link (free blocks only)

	// BlockHeaderSize is the per-block metadata overhead.
	BlockHeaderSize = 16
	// MinBlock is the smallest block: header + footer + 8-byte payload,
	// kept 8-aligned.
	MinBlock = 24

	flagFree     = 1 // this block is free
	flagPrevFree = 2 // the physically preceding block is free
)

type blockHeader struct {
	addr     Addr
	size     uint32
	flags    uint32
	prevFree Addr
	nextFree Addr
}

func (b *blockHeader) isFree() bool     { return b.flags&flagFree != 0 }
func (b *blockHeader) prevIsFree() bool { return b.flags&flagPrevFree != 0 }

// payload returns the user address of the block.
func (b *blockHeader) payload() Addr { return b.addr + BlockHeaderSize }

func readBlock(sp *vmem.Space, addr Addr) (blockHeader, error) {
	var b blockHeader
	buf, err := sp.ReadBytes(addr, BlockHeaderSize)
	if err != nil {
		return b, err
	}
	w := func(off int) uint32 {
		return uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24
	}
	b.addr = addr
	b.size = w(blkSize)
	b.flags = w(blkFlags)
	b.prevFree = w(blkPrevFree)
	b.nextFree = w(blkNextFree)
	return b, nil
}

func (b *blockHeader) write(sp *vmem.Space) error {
	buf := make([]byte, BlockHeaderSize)
	put := func(off int, v uint32) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
		buf[off+2] = byte(v >> 16)
		buf[off+3] = byte(v >> 24)
	}
	put(blkSize, b.size)
	put(blkFlags, b.flags)
	put(blkPrevFree, b.prevFree)
	put(blkNextFree, b.nextFree)
	return sp.Write(b.addr, buf)
}

// writeFooter stores the free block's size in its last word.
func (b *blockHeader) writeFooter(sp *vmem.Space) error {
	return sp.Store32(b.addr+Addr(b.size)-4, b.size)
}

// align8 rounds n up to a multiple of 8.
func align8(n uint32) uint32 { return (n + 7) &^ 7 }

// blockTotal returns the total block size needed for a user request.
func blockTotal(size uint32) uint32 {
	t := BlockHeaderSize + align8(size)
	if t < MinBlock {
		t = MinBlock
	}
	return t
}

// groupDataBytes returns the usable bytes of an n-slot group.
func groupDataBytes(n int) uint32 {
	return uint32(n*layout.SlotSize) - SlotHeaderSize
}

// SlotsFor returns the number of contiguous slots needed for a user request
// of size bytes.
func SlotsFor(size uint32) int {
	total := uint64(blockTotal(size)) + SlotHeaderSize
	return int((total + layout.SlotSize - 1) / layout.SlotSize)
}

// MaxSingleSlotRequest is the largest user request that fits in one slot.
const MaxSingleSlotRequest = layout.SlotSize - SlotHeaderSize - BlockHeaderSize
