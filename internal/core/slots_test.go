package core

import (
	"testing"

	"repro/internal/bitmap"
	"repro/internal/layout"
	"repro/internal/vmem"
)

// bitmapT shortens CheckSingleOwnership call sites.
type bitmapT = bitmap.Bitmap

func newSlots(t *testing.T, node, p int, dist Distribution, cache int) *NodeSlots {
	t.Helper()
	return NewNodeSlots(vmem.NewSpace(), NopCharger{}, NodeConfig{
		NodeID: node, NumNodes: p, Dist: dist, CacheCap: cache,
	})
}

func TestDistributions(t *testing.T) {
	cases := []struct {
		dist Distribution
		p    int
	}{
		{RoundRobin{}, 4},
		{BlockCyclic{K: 8}, 4},
		{Partition{}, 4},
		{Partition{}, 3}, // SlotCount not divisible by 3
	}
	for _, c := range cases {
		t.Run(c.dist.Name(), func(t *testing.T) {
			for _, slot := range []int{0, 1, 7, 8, 100, layout.SlotCount - 1} {
				owners := 0
				for node := 0; node < c.p; node++ {
					if c.dist.Owns(slot, node, c.p) {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("slot %d has %d owners", slot, owners)
				}
			}
			// Exhaustive single-ownership check.
			total := 0
			for node := 0; node < c.p; node++ {
				for slot := 0; slot < layout.SlotCount; slot++ {
					if c.dist.Owns(slot, node, c.p) {
						total++
					}
				}
			}
			if total != layout.SlotCount {
				t.Fatalf("total owned = %d, want %d", total, layout.SlotCount)
			}
		})
	}
}

func TestRoundRobinNeverHasContiguousPair(t *testing.T) {
	// The property behind the paper's "every multi-slot allocation
	// negotiates under round-robin" observation (§5).
	ns := newSlots(t, 0, 2, RoundRobin{}, 0)
	if _, err := ns.AcquireRun(2); err != ErrNoSlots {
		t.Fatalf("AcquireRun(2) = %v, want ErrNoSlots", err)
	}
	if ns.Stats().RunSearchFail != 1 {
		t.Fatalf("stats = %+v", ns.Stats())
	}
}

func TestAcquireOneMapsSlot(t *testing.T) {
	ns := newSlots(t, 0, 2, RoundRobin{}, 0)
	idx, err := ns.AcquireOne()
	if err != nil {
		t.Fatal(err)
	}
	if idx%2 != 0 {
		t.Fatalf("node 0 acquired slot %d not owned under RR", idx)
	}
	if ns.Bitmap().Test(idx) {
		t.Fatal("acquired slot still marked free")
	}
	if !ns.Space().IsMapped(layout.SlotBase(idx), layout.SlotSize) {
		t.Fatal("acquired slot not mapped")
	}
	st := ns.Stats()
	if st.Acquired != 1 || st.Mmaps != 1 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReleaseWithoutCacheUnmaps(t *testing.T) {
	ns := newSlots(t, 0, 1, RoundRobin{}, 0)
	idx, err := ns.AcquireOne()
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.Release(idx, 1); err != nil {
		t.Fatal(err)
	}
	if ns.Space().IsMapped(layout.SlotBase(idx), 1) {
		t.Fatal("released slot still mapped with cache disabled")
	}
	if !ns.Bitmap().Test(idx) {
		t.Fatal("released slot not marked free")
	}
}

func TestSlotCacheAvoidsMmap(t *testing.T) {
	ns := newSlots(t, 0, 1, RoundRobin{}, 4)
	idx, err := ns.AcquireOne()
	if err != nil {
		t.Fatal(err)
	}
	if err := ns.Release(idx, 1); err != nil {
		t.Fatal(err)
	}
	if ns.CachedSlots() != 1 {
		t.Fatalf("cached = %d", ns.CachedSlots())
	}
	if !ns.Space().IsMapped(layout.SlotBase(idx), layout.SlotSize) {
		t.Fatal("cached slot should stay mapped")
	}
	idx2, err := ns.AcquireOne()
	if err != nil {
		t.Fatal(err)
	}
	if idx2 != idx {
		t.Fatalf("cache hit should reuse slot %d, got %d", idx, idx2)
	}
	st := ns.Stats()
	if st.CacheHits != 1 || st.Mmaps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheCapRespected(t *testing.T) {
	ns := newSlots(t, 0, 1, RoundRobin{}, 2)
	var idxs []int
	for i := 0; i < 4; i++ {
		idx, err := ns.AcquireOne()
		if err != nil {
			t.Fatal(err)
		}
		idxs = append(idxs, idx)
	}
	for _, idx := range idxs {
		if err := ns.Release(idx, 1); err != nil {
			t.Fatal(err)
		}
	}
	if ns.CachedSlots() != 2 {
		t.Fatalf("cached = %d, want cap 2", ns.CachedSlots())
	}
	st := ns.Stats()
	if st.Munmaps != 2 {
		t.Fatalf("stats = %+v, want 2 munmaps", st)
	}
}

func TestAcquireRunFirstFit(t *testing.T) {
	ns := newSlots(t, 0, 1, RoundRobin{}, 0)
	start, err := ns.AcquireRun(4)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("first-fit run = %d, want 0", start)
	}
	if !ns.Space().IsMapped(layout.SlotBase(start), 4*layout.SlotSize) {
		t.Fatal("run not fully mapped")
	}
	// Next run must come after.
	start2, err := ns.AcquireRun(2)
	if err != nil {
		t.Fatal(err)
	}
	if start2 != 4 {
		t.Fatalf("second run = %d, want 4", start2)
	}
}

func TestAcquireRunConsumesCachedSlots(t *testing.T) {
	ns := newSlots(t, 0, 1, RoundRobin{}, 8)
	// Seed the cache with slots 0 and 1.
	a, _ := ns.AcquireOne()
	b, _ := ns.AcquireOne()
	ns.Release(a, 1)
	ns.Release(b, 1)
	if ns.CachedSlots() != 2 {
		t.Fatalf("cached = %d", ns.CachedSlots())
	}
	start, err := ns.AcquireRun(3)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("run start = %d", start)
	}
	if ns.CachedSlots() != 0 {
		t.Fatal("cached slots not consumed by run")
	}
	if !ns.Space().IsMapped(layout.SlotBase(0), 3*layout.SlotSize) {
		t.Fatal("run not fully mapped")
	}
}

func TestBuySellRun(t *testing.T) {
	a := newSlots(t, 0, 2, RoundRobin{}, 0)
	b := newSlots(t, 1, 2, RoundRobin{}, 0)
	// Node 0 buys slot 1 (owned by node 1) to get a [0,2) run.
	if err := b.SellRun(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.BuyRun(1, 1); err != nil {
		t.Fatal(err)
	}
	if CheckSingleOwnership([]*bitmapT{a.Bitmap(), b.Bitmap()}) != -1 {
		t.Fatal("double ownership after buy/sell")
	}
	start, err := a.AcquireRun(2)
	if err != nil || start != 0 {
		t.Fatalf("post-purchase AcquireRun = %d, %v", start, err)
	}
}

func TestSellRunRejectsUnowned(t *testing.T) {
	b := newSlots(t, 1, 2, RoundRobin{}, 0)
	if err := b.SellRun(0, 1); err == nil {
		t.Fatal("selling an unowned slot must fail")
	}
}

func TestBuyRunRejectsOverlap(t *testing.T) {
	a := newSlots(t, 0, 2, RoundRobin{}, 0)
	if err := a.BuyRun(0, 1); err == nil {
		t.Fatal("buying an already-owned slot must fail")
	}
}

func TestSellRunEvictsCachedMapping(t *testing.T) {
	a := newSlots(t, 0, 1, RoundRobin{}, 4)
	idx, _ := a.AcquireOne()
	a.Release(idx, 1)
	if a.CachedSlots() != 1 {
		t.Fatal("expected cached slot")
	}
	if err := a.SellRun(idx, 1); err != nil {
		t.Fatal(err)
	}
	if a.Space().IsMapped(layout.SlotBase(idx), 1) {
		t.Fatal("sold slot must be unmapped locally")
	}
	if a.CachedSlots() != 0 {
		t.Fatal("sold slot still cached")
	}
}

func TestEvictInstallKeepBitmapUntouched(t *testing.T) {
	src := newSlots(t, 0, 2, RoundRobin{}, 0)
	dst := newSlots(t, 1, 2, RoundRobin{}, 0)
	idx, err := src.AcquireOne()
	if err != nil {
		t.Fatal(err)
	}
	srcBits, dstBits := src.Bitmap().Count(), dst.Bitmap().Count()
	if err := src.Evict(idx, 1); err != nil {
		t.Fatal(err)
	}
	if err := dst.Install(idx, 1); err != nil {
		t.Fatal(err)
	}
	if src.Bitmap().Count() != srcBits || dst.Bitmap().Count() != dstBits {
		t.Fatal("migration changed a bitmap (paper §4.2 forbids this)")
	}
	if src.Space().IsMapped(layout.SlotBase(idx), 1) {
		t.Fatal("evicted slot still mapped at source")
	}
	if !dst.Space().IsMapped(layout.SlotBase(idx), layout.SlotSize) {
		t.Fatal("installed slot not mapped at destination")
	}
	// Releasing on the destination donates the slot there (paper §4.2:
	// "the destination node may eventually acquire slots that it did not
	// possess initially").
	if err := dst.Release(idx, 1); err != nil {
		t.Fatal(err)
	}
	if !dst.Bitmap().Test(idx) {
		t.Fatal("destination did not acquire the donated slot")
	}
	if CheckSingleOwnership([]*bitmapT{src.Bitmap(), dst.Bitmap()}) != -1 {
		t.Fatal("double ownership after donation")
	}
}

func TestAcquireAt(t *testing.T) {
	ns := newSlots(t, 0, 1, RoundRobin{}, 0)
	if err := ns.AcquireAt(10, 3); err != nil {
		t.Fatal(err)
	}
	if !ns.Space().IsMapped(layout.SlotBase(10), 3*layout.SlotSize) {
		t.Fatal("AcquireAt did not map")
	}
	if err := ns.AcquireAt(10, 1); err == nil {
		t.Fatal("AcquireAt on taken slots must fail")
	}
}

func TestDropCache(t *testing.T) {
	ns := newSlots(t, 0, 1, RoundRobin{}, 4)
	idx, _ := ns.AcquireOne()
	ns.Release(idx, 1)
	ns.DropCache()
	if ns.CachedSlots() != 0 || ns.Space().IsMapped(layout.SlotBase(idx), 1) {
		t.Fatal("DropCache left mappings")
	}
	if !ns.Bitmap().Test(idx) {
		t.Fatal("DropCache must not change ownership")
	}
}

func TestExhaustionReturnsErrNoSlots(t *testing.T) {
	// A 1-node partition where we steal all slots via SellRun, then ask.
	ns := newSlots(t, 0, 1, Partition{}, 0)
	if err := ns.SellRun(0, layout.SlotCount); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.AcquireOne(); err != ErrNoSlots {
		t.Fatalf("err = %v, want ErrNoSlots", err)
	}
}
