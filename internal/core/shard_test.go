package core

import "testing"

// TestShardMapPartition: every slot falls in exactly one shard, shards
// are contiguous and ascending, and every shard has a manager in range.
func TestShardMapPartition(t *testing.T) {
	for _, tc := range []struct{ slots, shards int }{
		{57344, 16}, {57344, 1}, {100, 7}, {8, 16}, {1, 1},
	} {
		m := NewShardMap(tc.slots, tc.shards)
		prev := -1
		for i := 0; i < tc.slots; i++ {
			s := m.ShardOf(i)
			if s < 0 || s >= m.Shards() {
				t.Fatalf("slots=%d shards=%d: ShardOf(%d) = %d out of range", tc.slots, tc.shards, i, s)
			}
			if s < prev || s > prev+1 {
				t.Fatalf("slots=%d shards=%d: shard sequence jumps %d -> %d at slot %d", tc.slots, tc.shards, prev, s, i)
			}
			prev = s
		}
		if prev != m.Shards()-1 {
			t.Fatalf("slots=%d shards=%d: last slot in shard %d, want %d", tc.slots, tc.shards, prev, m.Shards()-1)
		}
		for s := 0; s < m.Shards(); s++ {
			for _, nodes := range []int{1, 3, 16} {
				if mgr := m.Manager(s, nodes); mgr < 0 || mgr >= nodes {
					t.Fatalf("Manager(%d, %d) = %d out of range", s, nodes, mgr)
				}
			}
		}
	}
}

// TestShardsOfRun: the shard set of a run is exactly the shards of its
// member slots, in ascending order — the canonical lock order.
func TestShardsOfRun(t *testing.T) {
	m := NewShardMap(1000, 8)
	for _, tc := range []struct{ start, n int }{
		{0, 1}, {0, 1000}, {124, 2}, {125, 1}, {300, 400}, {999, 1},
	} {
		got := m.ShardsOfRun(tc.start, tc.n)
		want := map[int]bool{}
		for i := tc.start; i < tc.start+tc.n; i++ {
			want[m.ShardOf(i)] = true
		}
		if len(got) != len(want) {
			t.Fatalf("ShardsOfRun(%d,%d) = %v, want %d distinct shards", tc.start, tc.n, got, len(want))
		}
		for i, s := range got {
			if !want[s] {
				t.Fatalf("ShardsOfRun(%d,%d) includes %d, not a member shard", tc.start, tc.n, s)
			}
			if i > 0 && got[i-1] >= s {
				t.Fatalf("ShardsOfRun(%d,%d) = %v not strictly ascending", tc.start, tc.n, got)
			}
		}
	}
}
