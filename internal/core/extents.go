package core

import (
	"fmt"
	"sort"

	"repro/internal/vmem"
)

// Migration packing (paper §2 step 1 and the §6 optimization).
//
// A slot group can be shipped in two modes:
//
//   - whole-slot: every byte of the group is copied. Trivially correct —
//     all in-memory pointers, block headers and free-list links arrive
//     verbatim at the same addresses.
//   - used-blocks-only ("when migrating a slot attached to a thread, it is
//     sufficient to send its internally allocated blocks"): only the group
//     header and the live blocks travel; the gaps are reconstructed as free
//     blocks on the destination.
//
// Span lists are what the migration message carries, together with the raw
// bytes they cover.

// Span is a byte extent within a slot group, relative to the group base.
type Span struct {
	Off uint32
	Len uint32
}

// WholeSpan returns the single span covering an n-slot group.
func WholeSpan(h *SlotHeader) []Span {
	return []Span{{Off: 0, Len: uint32(h.End() - h.Base)}}
}

// UsedSpansData walks the physical blocks of a data group and returns spans
// covering the group header plus every live block, merging adjacent spans.
func UsedSpansData(sp *vmem.Space, h *SlotHeader) ([]Span, error) {
	if h.Kind != KindData {
		return nil, fmt.Errorf("core: UsedSpansData on non-data group %#08x", h.Base)
	}
	spans := []Span{{Off: 0, Len: SlotHeaderSize}}
	end := h.End()
	for at := h.DataStart(); at < end; {
		b, err := readBlock(sp, at)
		if err != nil {
			return nil, err
		}
		if b.size < MinBlock || at+Addr(b.size) > end {
			return nil, fmt.Errorf("core: corrupt block %#08x (size %d) walking group %#08x", at, b.size, h.Base)
		}
		if !b.isFree() {
			off := uint32(at - h.Base)
			last := &spans[len(spans)-1]
			if last.Off+last.Len == off {
				last.Len += b.size
			} else {
				spans = append(spans, Span{Off: off, Len: b.size})
			}
		}
		at += Addr(b.size)
	}
	return spans, nil
}

// UsedSpansStack returns the spans of a stack group: the slot header plus
// the thread descriptor at the bottom, and the live stack from the current
// stack pointer up to the group end.
func UsedSpansStack(h *SlotHeader, descBytes uint32, spAddr Addr) ([]Span, error) {
	if h.Kind != KindStack {
		return nil, fmt.Errorf("core: UsedSpansStack on non-stack group %#08x", h.Base)
	}
	reserved := SlotHeaderSize + descBytes
	if spAddr < h.Base+Addr(reserved) || spAddr > h.End() {
		return nil, fmt.Errorf("core: sp %#08x outside stack group %#08x", spAddr, h.Base)
	}
	spans := []Span{{Off: 0, Len: reserved}}
	if live := uint32(h.End() - spAddr); live > 0 {
		spans = append(spans, Span{Off: uint32(spAddr - h.Base), Len: live})
	}
	return spans, nil
}

// TotalBytes sums the lengths of spans.
func TotalBytes(spans []Span) int {
	n := 0
	for _, s := range spans {
		n += int(s.Len)
	}
	return n
}

// RebuildFreeList reconstructs the free blocks of a data group installed
// from used-block spans: every gap between spans (within the data area)
// becomes a free block, chained in address order from the group header's
// FreeHead. Live blocks carried their own headers (including prev-free
// flags) verbatim, so only the gap metadata needs writing.
func RebuildFreeList(sp *vmem.Space, base Addr, spans []Span) error {
	h, err := readSlotHeader(sp, base)
	if err != nil {
		return err
	}
	ss := append([]Span(nil), spans...)
	sort.Slice(ss, func(i, j int) bool { return ss[i].Off < ss[j].Off })

	groupLen := uint32(h.End() - h.Base)
	var gaps []Span
	cursor := uint32(SlotHeaderSize)
	for _, s := range ss {
		if s.Off < cursor {
			if s.Off+s.Len <= cursor {
				continue // header span, already covered
			}
			s.Len -= cursor - s.Off
			s.Off = cursor
		}
		if s.Off > cursor {
			gaps = append(gaps, Span{Off: cursor, Len: s.Off - cursor})
		}
		cursor = s.Off + s.Len
	}
	if cursor < groupLen {
		gaps = append(gaps, Span{Off: cursor, Len: groupLen - cursor})
	}

	var prev Addr
	h.FreeHead = 0
	for _, g := range gaps {
		if g.Len < MinBlock {
			return fmt.Errorf("core: gap of %d bytes at %#08x too small for a free block", g.Len, base+Addr(g.Off))
		}
		fb := blockHeader{
			addr:     base + Addr(g.Off),
			size:     g.Len,
			flags:    flagFree,
			prevFree: prev,
		}
		if err := fb.write(sp); err != nil {
			return err
		}
		if err := fb.writeFooter(sp); err != nil {
			return err
		}
		if prev != 0 {
			if err := sp.Store32(prev+blkNextFree, fb.addr); err != nil {
				return err
			}
		} else {
			h.FreeHead = fb.addr
		}
		prev = fb.addr
	}
	return h.write(sp)
}
