package pm2

import (
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// TestDefragmentationEliminatesNegotiations: under round-robin no node owns
// contiguous slots, so every multi-slot allocation negotiates; after the
// §4.4 global restructuring each node owns one big range and the same
// allocations are purely local.
func TestDefragmentationEliminatesNegotiations(t *testing.T) {
	c := New(Config{Nodes: 4}, progs.NewImage())
	c.DefragmentSync(0)
	st := c.Stats()
	if st.Defragmentations != 1 {
		t.Fatalf("defragmentations = %d", st.Defragmentations)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Each node now holds a contiguous quarter of the area.
	for i := 0; i < 4; i++ {
		bm := c.Node(i).Slots().Bitmap()
		if bm.Count() != layout.SlotCount/4 {
			t.Fatalf("node %d owns %d slots", i, bm.Count())
		}
		if bm.FindRun(1000) < 0 {
			t.Fatalf("node %d not contiguous after defrag", i)
		}
	}
	// A multi-slot allocation is now local: no negotiation.
	th := c.SpawnSync(1, "allocone", 0)
	c.At(1, func(n *Node) {
		tt, _ := n.sched.Lookup(th)
		tt.Regs.R[1] = 500_000
		n.kick()
	})
	c.Run(0)
	if got := c.Stats().Negotiations; got != 0 {
		t.Fatalf("negotiations after defrag = %d, want 0", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDefragmentationPreservesRunningThreads: threads own their slots
// (their bits are 0 everywhere), so a defrag in the middle of the Figure 7
// workload must not disturb them.
func TestDefragmentationPreservesRunningThreads(t *testing.T) {
	c := New(Config{Nodes: 2}, progs.NewImage())
	c.Spawn(0, "p4", 150)
	c.RunFor(100 * simtime.Microsecond) // partway through building the list
	c.DefragmentSync(0)
	c.Run(0)
	lines := c.Trace().Lines()
	if len(lines) != 153 {
		from := len(lines) - 4
		if from < 0 {
			from = 0
		}
		t.Fatalf("trace lines = %d:\n%s", len(lines), strings.Join(lines[from:], "\n"))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSpawnOnExhaustedNodeNegotiates reproduces §4.4's "the same algorithm
// may be used if a node has run out of slots": node 1 surrenders everything
// it owns, then a remote spawn onto it must buy a slot from node 0.
func TestSpawnOnExhaustedNodeNegotiates(t *testing.T) {
	im := progs.NewImage()
	mustAsm(im, `
.program spawner
.string fmt "spawned %x\n"
main:
    loadi r1, 1          ; dest
    loadi r2, p1         ; entry
    loadi r3, 0
    callb spawn_remote
    mov   r2, r0
    loadi r1, fmt
    callb printf
    halt
`)
	c := New(Config{Nodes: 2}, im)
	// Exhaust node 1.
	done := false
	c.At(1, func(n *Node) {
		n.slots.SurrenderAll()
		done = true
	})
	for !done && c.eng.Step() {
	}
	c.Spawn(0, "spawner", 0)
	c.Run(0)
	st := c.Stats()
	if st.Negotiations != 1 {
		t.Fatalf("negotiations = %d, want 1 (slot purchase for the stack)", st.Negotiations)
	}
	out := c.Trace().String()
	if !strings.Contains(out, "spawned") || !strings.Contains(out, "[node1] value = 1") {
		t.Fatalf("trace:\n%s", out)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterSpawnOnExhaustedNode covers the control-plane spawn path.
func TestClusterSpawnOnExhaustedNode(t *testing.T) {
	c := New(Config{Nodes: 2}, progs.NewImage())
	done := false
	c.At(1, func(n *Node) {
		n.slots.SurrenderAll()
		done = true
	})
	for !done && c.eng.Step() {
	}
	c.Spawn(1, "p1", 0) // needs a slot on the exhausted node 1
	c.Run(0)
	if c.Stats().Negotiations != 1 {
		t.Fatalf("negotiations = %d", c.Stats().Negotiations)
	}
	// p1 starts on node 1, migrates to node 1 (no-op): prints twice.
	want := "[node1] value = 1\n[node1] value = 1"
	if got := c.Trace().String(); got != want {
		t.Fatalf("trace = %q", got)
	}
}

// TestPreBuyAvoidsRepeatNegotiations: with PreBuySlots, the first
// negotiation over-purchases so subsequent multi-slot allocations stay
// local.
func TestPreBuyAvoidsRepeatNegotiations(t *testing.T) {
	mk := func(pre int) int {
		im := progs.NewImage()
		mustAsm(im, `
.program bigalloc3
main:
    loadi r1, 100000
    callb isomalloc
    loadi r1, 100000
    callb isomalloc
    loadi r1, 100000
    callb isomalloc
    halt
`)
		c := New(Config{Nodes: 2, PreBuySlots: pre}, im)
		c.Spawn(0, "bigalloc3", 0)
		c.Run(0)
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return c.Stats().Negotiations
	}
	without := mk(0)
	with := mk(8)
	if without != 3 {
		t.Fatalf("without pre-buy: %d negotiations, want 3", without)
	}
	if with != 1 {
		t.Fatalf("with pre-buy: %d negotiations, want 1", with)
	}
}
