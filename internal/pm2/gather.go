package pm2

import (
	"fmt"

	"repro/internal/simtime"
)

// The §4.4 bitmap gather is the dominant term of the negotiation cost:
// the paper's sequential one-peer-at-a-time protocol is what produces the
// "+165 µs per extra node" slope. This file holds the pluggable gather
// strategies (Config.Gather) and the lane-affine free-run hints that let
// an initiator skip peers believed to own nothing.

// GatherMode selects how a negotiation initiator collects the other
// nodes' slot bitmaps (paper §4.4, step 2b).
type GatherMode int

const (
	// GatherSequential is the paper-faithful default: one bitmap Call
	// per peer, each waiting for the previous reply. Cost grows with
	// the sum of the per-peer round trips.
	GatherSequential GatherMode = iota
	// GatherBatched fires one round of concurrent bitmap Calls: the
	// wire time of the replies overlaps, so the latency is dominated by
	// the slowest peer plus the initiator's per-reply merge work.
	GatherBatched
	// GatherTree routes the gather through a binomial combining tree
	// rooted at the initiator: interior nodes OR their children's
	// bitmaps into their own before forwarding one merged map up, so
	// the initiator receives O(log n) messages. The merged map loses
	// per-slot ownership, so the purchase becomes a range buy: every
	// peer is asked to sell its intersection with the chosen run.
	GatherTree
	// GatherDelta is the incremental gather: every node version-stamps
	// its bitmap and journals the words each mutation dirtied; the
	// initiator caches each peer's last-seen map plus version and asks
	// only for the changes since then. Peers reply "unchanged", a
	// word-indexed delta, or a full map (first contact, or the bounded
	// journal truncated), and the initiator patches its cached global
	// OR in place — so the per-peer merge is charged on delta bytes,
	// not on the full 7 KB map.
	GatherDelta
)

func (g GatherMode) String() string {
	switch g {
	case GatherBatched:
		return "batched"
	case GatherTree:
		return "tree"
	case GatherDelta:
		return "delta"
	}
	return "sequential"
}

// ParseGatherMode resolves a gather strategy name. Empty selects the
// paper-faithful sequential gather.
func ParseGatherMode(s string) (GatherMode, error) {
	switch s {
	case "", "sequential", "seq":
		return GatherSequential, nil
	case "batched", "batch":
		return GatherBatched, nil
	case "tree":
		return GatherTree, nil
	case "delta", "incremental":
		return GatherDelta, nil
	}
	return GatherSequential, fmt.Errorf("pm2: unknown gather strategy %q (have %v)", s, GatherModeNames())
}

// GatherModeNames lists the canonical gather strategy names.
func GatherModeNames() []string { return []string{"sequential", "batched", "tree", "delta"} }

// treeChildren returns the ranks node self fans out to in the binomial
// combining tree rooted at root, in an n-node cluster. Ranks are
// relabeled rel = (self-root) mod n; rel's children are rel+2^j for every
// 2^j below rel's lowest set bit (all powers of two below n for the
// root), clipped to the cluster. The root therefore has ceil(log2(n))
// children, and every node appears in exactly one subtree.
func treeChildren(self, root, n int) []int {
	rel := ((self-root)%n + n) % n
	limit := rel & -rel
	if rel == 0 {
		limit = n
	}
	var out []int
	for bit := 1; bit < limit && rel+bit < n; bit <<= 1 {
		out = append(out, (rel+bit+root)%n)
	}
	return out
}

// subtreeRanks returns every rank in the binomial subtree rooted at node
// self (inclusive), for the tree rooted at root. Relabeled, the subtree
// of rel covers [rel, rel+lowbit(rel)), clipped to the cluster.
func subtreeRanks(self, root, n int) []int {
	rel := ((self-root)%n + n) % n
	size := rel & -rel
	if rel == 0 {
		size = n
	}
	if rel+size > n {
		size = n - rel
	}
	out := make([]int, 0, size)
	for i := 0; i < size; i++ {
		out = append(out, (rel+i+root)%n)
	}
	return out
}

// Lane-affine free-run hints (batched and tree gathers only — the
// sequential gather is paper-faithful and the delta gather prunes with
// "unchanged" replies instead).
//
// Each hint is split across two lane-owned tables:
//
//   - hintEmpty is the initiator half: node R's belief, per peer S,
//     that S owns no free slots at all. Owned by R's lane, read only by
//     R's own gather handlers. Emptiness is the only skippable state —
//     a peer with any free slot could still contribute to a multi-owner
//     run.
//   - emptyTold is the server half: node S's record of which peers it
//     has told "I am empty". Owned by S's lane, written only by S's own
//     serve handlers and ReportLoads.
//
// Truth moves between the halves in three ways, none of which touches
// another lane's state from a handler:
//
//   - Cluster.ReportLoads is an ambient event — a barrier under the
//     parallel executor — so it may refresh every table directly.
//   - A served gather implies emptiness: when S serves a bitmap (or
//     surrenders, or installs a defrag share) while owning nothing, it
//     marks emptyTold[initiator] on its own lane, and the initiator
//     derives believesEmpty(S) from the reply content on its own lane.
//     The tree gather's interior servers reply to their parent, not the
//     root, so an empty server instead posts the root a zero-charge
//     control event carrying the fact.
//   - Invalidation is a message: when a mutation gives a told-empty
//     node slots again, its bitmap on-change hook fans a zero-charge
//     control event to every peer in emptyTold, one wire latency out —
//     which also keeps it beyond the parallel executor's window bound.
//
// Beliefs are therefore stale for at most a wire latency. A stale
// "empty" can make an initiator skip a peer that just gained slots; the
// gathers compensate by re-running with hints disabled before reporting
// plan failure (see gatherBatchedFrom / planAndBuyRange), so a skip can
// never turn "the cluster still has space" into a failed negotiation.
// Control events charge no virtual time and are not network messages,
// so message counts, charges and the serial golden traces are all
// byte-identical to the pre-hint protocol.

// hintsOn reports whether the lane-affine hint machinery is active.
// Under the other gather modes the whole mechanism stays off: no
// host-side bitmap scans on the load-report or serve paths.
func (c *Cluster) hintsOn() bool {
	return c.cfg.Gather == GatherBatched || c.cfg.Gather == GatherTree
}

// believesEmpty reports this node's belief that peer p owns no free
// slots. Initiator-lane state: callable only from this node's handlers
// (or an ambient barrier).
func (n *Node) believesEmpty(p int) bool {
	return n.hintEmpty != nil && n.hintEmpty[p]
}

// noteBelief records this node's belief about peer p's emptiness.
func (n *Node) noteBelief(p int, empty bool) {
	if n.hintEmpty == nil {
		if !empty {
			return
		}
		n.hintEmpty = make([]bool, len(n.c.nodes))
	}
	n.hintEmpty[p] = empty
}

// noteEmptyTold records that peer p has been told this node is empty,
// arming the invalidation fan-out for the next slot-gaining mutation.
// Server-lane state: callable only from this node's handlers (or an
// ambient barrier).
func (n *Node) noteEmptyTold(p int) {
	if n.emptyTold == nil {
		n.emptyTold = make([]bool, len(n.c.nodes))
	}
	n.emptyTold[p] = true
	n.emptyToldAny = true
}

// hintInvalidate clears every outstanding "I am empty" claim after this
// node gained free slots: each told peer receives a zero-charge control
// event one wire latency out that flips its belief back to unknown.
// The delay keeps the cross-lane write ordered after any reply the
// mutating handler is about to send (the busy clock serializes both),
// and at or beyond the parallel executor's window bound.
func (n *Node) hintInvalidate() {
	at := n.actor.Now() + simtime.Time(n.c.cfg.Model.WireLatencyNs)
	self := n.id
	for p, told := range n.emptyTold {
		if !told {
			continue
		}
		n.emptyTold[p] = false
		peer := n.c.nodes[p]
		n.actor.PostTo(peer.actor, at, func() {
			peer.noteBelief(self, false)
		})
	}
	n.emptyToldAny = false
}

// refreshHintsBarrier rewrites every node's hint tables to ground
// truth. Ambient contexts only (ReportLoads): under the parallel
// executor these run as barriers, which is what licenses the direct
// cross-lane writes below.
func (c *Cluster) refreshHintsBarrier() {
	for i, src := range c.nodes {
		if !c.nodeAlive(i) {
			continue
		}
		empty := src.slots.Bitmap().Count() == 0
		for j, dst := range c.nodes {
			if j == i || !c.nodeAlive(j) {
				continue
			}
			dst.noteBelief(i, empty)
			if empty {
				src.noteEmptyTold(j)
			} else if src.emptyTold != nil {
				src.emptyTold[j] = false
			}
		}
		if !empty {
			src.emptyToldAny = false
		}
	}
}
