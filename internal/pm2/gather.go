package pm2

import (
	"fmt"
)

// The §4.4 bitmap gather is the dominant term of the negotiation cost:
// the paper's sequential one-peer-at-a-time protocol is what produces the
// "+165 µs per extra node" slope. This file holds the pluggable gather
// strategies (Config.Gather) and the free-run summary hints that let an
// initiator skip peers known to own nothing.

// GatherMode selects how a negotiation initiator collects the other
// nodes' slot bitmaps (paper §4.4, step 2b).
type GatherMode int

const (
	// GatherSequential is the paper-faithful default: one bitmap Call
	// per peer, each waiting for the previous reply. Cost grows with
	// the sum of the per-peer round trips.
	GatherSequential GatherMode = iota
	// GatherBatched fires one round of concurrent bitmap Calls: the
	// wire time of the replies overlaps, so the latency is dominated by
	// the slowest peer plus the initiator's per-reply merge work.
	GatherBatched
	// GatherTree routes the gather through a binomial combining tree
	// rooted at the initiator: interior nodes OR their children's
	// bitmaps into their own before forwarding one merged map up, so
	// the initiator receives O(log n) messages. The merged map loses
	// per-slot ownership, so the purchase becomes a range buy: every
	// peer is asked to sell its intersection with the chosen run.
	GatherTree
	// GatherDelta is the incremental gather: every node version-stamps
	// its bitmap and journals the words each mutation dirtied; the
	// initiator caches each peer's last-seen map plus version and asks
	// only for the changes since then. Peers reply "unchanged", a
	// word-indexed delta, or a full map (first contact, or the bounded
	// journal truncated), and the initiator patches its cached global
	// OR in place — so the per-peer merge is charged on delta bytes,
	// not on the full 7 KB map.
	GatherDelta
)

func (g GatherMode) String() string {
	switch g {
	case GatherBatched:
		return "batched"
	case GatherTree:
		return "tree"
	case GatherDelta:
		return "delta"
	}
	return "sequential"
}

// ParseGatherMode resolves a gather strategy name. Empty selects the
// paper-faithful sequential gather.
func ParseGatherMode(s string) (GatherMode, error) {
	switch s {
	case "", "sequential", "seq":
		return GatherSequential, nil
	case "batched", "batch":
		return GatherBatched, nil
	case "tree":
		return GatherTree, nil
	case "delta", "incremental":
		return GatherDelta, nil
	}
	return GatherSequential, fmt.Errorf("pm2: unknown gather strategy %q (have %v)", s, GatherModeNames())
}

// GatherModeNames lists the canonical gather strategy names.
func GatherModeNames() []string { return []string{"sequential", "batched", "tree", "delta"} }

// treeChildren returns the ranks node self fans out to in the binomial
// combining tree rooted at root, in an n-node cluster. Ranks are
// relabeled rel = (self-root) mod n; rel's children are rel+2^j for every
// 2^j below rel's lowest set bit (all powers of two below n for the
// root), clipped to the cluster. The root therefore has ceil(log2(n))
// children, and every node appears in exactly one subtree.
func treeChildren(self, root, n int) []int {
	rel := ((self-root)%n + n) % n
	limit := rel & -rel
	if rel == 0 {
		limit = n
	}
	var out []int
	for bit := 1; bit < limit && rel+bit < n; bit <<= 1 {
		out = append(out, (rel+bit+root)%n)
	}
	return out
}

// subtreeRanks returns every rank in the binomial subtree rooted at node
// self (inclusive), for the tree rooted at root. Relabeled, the subtree
// of rel covers [rel, rel+lowbit(rel)), clipped to the cluster.
func subtreeRanks(self, root, n int) []int {
	rel := ((self-root)%n + n) % n
	size := rel & -rel
	if rel == 0 {
		size = n
	}
	if rel+size > n {
		size = n - rel
	}
	out := make([]int, 0, size)
	for i := 0; i < size; i++ {
		out = append(out, (rel+i+root)%n)
	}
	return out
}

// gatherHint is one node's published free-run summary: the length of the
// longest run of contiguous free slots it owns. Hints piggyback on the
// control-plane load reports (Cluster.ReportLoads) and on served bitmap
// gathers, and are invalidated the moment the node's ownership bitmap
// changes — so a known hint is always current, and skipping a peer whose
// known longest run is zero can never lose slots the cluster still has.
type gatherHint struct {
	known  bool
	maxRun int
}

// refreshHint publishes node i's current free-run summary. Pure
// control-plane metadata: no virtual time is charged and no events are
// scheduled. Only the batched and tree gathers consult hints — the
// sequential gather is paper-faithful and the delta gather prunes with
// "unchanged" replies instead — so under the other modes the whole
// mechanism stays off: no host-side bitmap scans on the load-report or
// serve paths.
func (c *Cluster) refreshHint(i int) {
	switch c.cfg.Gather {
	case GatherBatched, GatherTree:
		c.hints[i] = gatherHint{known: true, maxRun: c.nodes[i].slots.Bitmap().LongestRun()}
	}
}

// invalidateHint forgets node i's summary after a bitmap mutation.
func (c *Cluster) invalidateHint(i int) {
	c.hints[i].known = false
}

// hintEmpty reports whether node i is known to own no free slots at all —
// the only condition under which skipping it from a gather is safe: a
// peer with any free slot could still contribute to a multi-owner run.
func (c *Cluster) hintEmpty(i int) bool {
	return c.hints[i].known && c.hints[i].maxRun == 0
}
