package pm2

import (
	"fmt"
	"testing"

	"repro/internal/layout"
	"repro/internal/progs"
)

// ownershipFingerprint captures every node's slot bitmap.
func ownershipFingerprint(c *Cluster) []string {
	var out []string
	for i := 0; i < c.Nodes(); i++ {
		out = append(out, string(c.Node(i).Slots().Bitmap().Bytes()))
	}
	return out
}

// freeSlotTotal sums the owned-free slots across the cluster; a
// negotiation only moves ownership, so the total must stay SlotCount.
func freeSlotTotal(c *Cluster) int {
	total := 0
	for i := 0; i < c.Nodes(); i++ {
		total += c.Node(i).Slots().Bitmap().Count()
	}
	return total
}

// TestArbitersAgreeOnSingleInitiatorOutcome: with a single initiator and
// a quiet cluster there is nothing to arbitrate, so the sharded and
// optimistic schemes must reach byte-identical final slot ownership to
// the paper's global lock — the arbiter changes who may negotiate
// concurrently, never what a lone negotiation buys.
func TestArbitersAgreeOnSingleInitiatorOutcome(t *testing.T) {
	for _, nodes := range []int{2, 4, 8} {
		for _, k := range []int{1, 2, 3, 5} {
			var want []string
			for _, arb := range []ArbiterMode{ArbiterGlobal, ArbiterSharded, ArbiterOptimistic} {
				name := fmt.Sprintf("n%d/k%d/%s", nodes, k, arb)
				c := New(Config{Nodes: nodes, Arbiter: arb}, progs.NewImage())
				if !negotiateSync(t, c, 0, k) {
					t.Fatalf("%s: negotiation failed", name)
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got := ownershipFingerprint(c)
				if want == nil {
					want = got
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: node %d ownership differs from the global-arbiter outcome", name, i)
					}
				}
			}
		}
	}
}

// TestConcurrentInitiatorsUnderDecentralizedArbiters: every node starts
// a multi-slot negotiation in the same instant. Under each arbiter, all
// of them must complete, no slot may end up owned-free by two nodes,
// and the owned-free total must be conserved (a negotiation moves
// ownership, it never mints or leaks slots). Two identical runs must
// agree byte-for-byte — the deterministic-backoff guarantee.
func TestConcurrentInitiatorsUnderDecentralizedArbiters(t *testing.T) {
	for _, arb := range []ArbiterMode{ArbiterGlobal, ArbiterSharded, ArbiterOptimistic} {
		for _, nodes := range []int{4, 16} {
			name := fmt.Sprintf("%s/n%d", arb, nodes)
			run := func() ([]string, Stats) {
				c := New(Config{Nodes: nodes, Arbiter: arb}, progs.NewImage())
				succeeded := 0
				for i := 0; i < nodes; i++ {
					id := i
					c.At(id, func(n *Node) {
						n.negotiate(3, func(ok bool) {
							if ok {
								succeeded++
							}
						})
					})
				}
				c.Run(0)
				if succeeded != nodes {
					t.Fatalf("%s: %d of %d concurrent negotiations succeeded", name, succeeded, nodes)
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if got := freeSlotTotal(c); got != layout.SlotCount {
					t.Fatalf("%s: owned-free total %d, want %d", name, got, layout.SlotCount)
				}
				return ownershipFingerprint(c), c.Stats()
			}
			a, sa := run()
			b, sb := run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: two identical concurrent runs diverged at node %d", name, i)
				}
			}
			if sa.NegotiationRetries != sb.NegotiationRetries || sa.VersionDeclines != sb.VersionDeclines {
				t.Fatalf("%s: attempt counts not reproducible: %d/%d vs %d/%d retries/declines",
					name, sa.NegotiationRetries, sa.VersionDeclines, sb.NegotiationRetries, sb.VersionDeclines)
			}
		}
	}
}

// TestShardLocksSerializeOverlappingRuns: overlapping runs share a
// shard, so their lock sets intersect and the purchases serialize;
// disjoint home regions lock disjoint shards and overlap in time. The
// test drives the lock layer directly: every acquisition must be
// granted exactly once, in FIFO order per shard, and the managers must
// end idle.
func TestShardLocksSerializeOverlappingRuns(t *testing.T) {
	c := New(Config{Nodes: 4, Arbiter: ArbiterSharded}, progs.NewImage())
	shardSize := (layout.SlotCount + defaultArbiterShards - 1) / defaultArbiterShards
	var order []int
	// Nodes 1..3 lock runs that all touch shard 2; node 0 locks a run in
	// shard 5. The shard-2 holders must serialize; shard 5 is independent.
	for _, id := range []int{1, 2, 3} {
		nid := id
		c.At(nid, func(n *Node) {
			n.withRunLocks(2*shardSize+10*nid, 5, func() {
				order = append(order, nid)
				n.releaseRunLocks()
			}, func() { panic("unexpected shard-lock failure") })
		})
	}
	c.At(0, func(n *Node) {
		n.withRunLocks(5*shardSize, 3, func() {
			order = append(order, 0)
			n.releaseRunLocks()
		}, func() { panic("unexpected shard-lock failure") })
	})
	c.Run(0)
	if len(order) != 4 {
		t.Fatalf("grants = %v, want all four negotiations granted", order)
	}
	for i := 0; i < c.Nodes(); i++ {
		n := c.Node(i)
		if len(n.heldShards) != 0 {
			t.Fatalf("node %d still holds shards %v", i, n.heldShards)
		}
		for s, held := range n.shardHeld {
			if held {
				t.Fatalf("manager %d still marks shard %d held", i, s)
			}
		}
	}
}

// TestShardLockSpanningRuns: a run crossing a shard boundary takes both
// shards in ascending order, and a contender for either shard waits its
// turn — the canonical-order acquisition that makes the scheme
// deadlock-free even when lock sets overlap partially.
func TestShardLockSpanningRuns(t *testing.T) {
	c := New(Config{Nodes: 3, Arbiter: ArbiterSharded}, progs.NewImage())
	shardSize := (layout.SlotCount + defaultArbiterShards - 1) / defaultArbiterShards
	var order []int
	// Node 1 spans shards 3-4; node 2 spans shards 4-5: both need shard
	// 4, so they serialize despite distinct shard sets.
	c.At(1, func(n *Node) {
		n.withRunLocks(4*shardSize-2, 4, func() {
			order = append(order, 1)
			n.releaseRunLocks()
		}, func() { panic("unexpected shard-lock failure") })
	})
	c.At(2, func(n *Node) {
		n.withRunLocks(5*shardSize-2, 4, func() {
			order = append(order, 2)
			n.releaseRunLocks()
		}, func() { panic("unexpected shard-lock failure") })
	})
	c.Run(0)
	if len(order) != 2 {
		t.Fatalf("grants = %v, want both spanning negotiations granted", order)
	}
}

// TestOptimisticVersionDecline: a seller whose bitmap mutated near the
// requested run between the gather and the purchase declines the stale,
// version-stamped plan; the initiator backs off, re-plans on a fresh
// view and succeeds. A mutation in a far-away bitmap word must NOT
// decline — the journal's dirty words scope the validation. The
// conflict is visible in Stats.VersionDeclines and the attempt count is
// identical across reruns.
func TestOptimisticVersionDecline(t *testing.T) {
	// Initiator 0 plans run [0,3): node 1 sells slot 1, which lives in
	// bitmap word 0. raceSlot 5 (also word 0, owned free by node 1 under
	// 4-node round-robin) collides; a slot in the last word does not.
	run := func(raceSlot int) Stats {
		c := New(Config{Nodes: 4, Arbiter: ArbiterOptimistic}, progs.NewImage())
		fired := false
		n1 := c.Node(1)
		n1.buyHook = func(src int, giveBack bool) bool {
			if !giveBack && !fired {
				fired = true
				// A local allocation lands after the gather: the journal
				// version moves before the purchase is served.
				if err := n1.slots.AcquireAt(raceSlot, 1); err != nil {
					t.Errorf("racing allocation: %v", err)
				}
			}
			return false
		}
		if !negotiateSync(t, c, 0, 3) {
			t.Fatal("negotiation failed after the version decline")
		}
		if !fired {
			t.Fatal("the racing allocation never ran")
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}
	st := run(5)
	if st.VersionDeclines == 0 {
		t.Fatal("stale plan overlapping the mutated word was not declined")
	}
	if st.NegotiationRetries == 0 {
		t.Fatal("version decline did not register a retry")
	}
	st2 := run(5)
	if st.NegotiationRetries != st2.NegotiationRetries || st.VersionDeclines != st2.VersionDeclines {
		t.Fatalf("attempt counts not reproducible: %d/%d vs %d/%d",
			st.NegotiationRetries, st.VersionDeclines, st2.NegotiationRetries, st2.VersionDeclines)
	}
	// A mutation in the last bitmap word is disjoint from the plan: the
	// version moved, but the purchase must still be honored.
	far := run(layout.SlotCount - 3) // owned by node 1: (57344-3) % 4 == 1
	if far.VersionDeclines != 0 {
		t.Fatalf("disjoint mutation declined %d purchase(s) — validation not word-scoped", far.VersionDeclines)
	}
	if far.NegotiationRetries != 0 {
		t.Fatalf("disjoint mutation caused %d retries", far.NegotiationRetries)
	}
}

// TestLocalNegotiationQueue: without the global lock, one node's own
// negotiations must still run one at a time — the second completes
// after the first, and both succeed.
func TestLocalNegotiationQueue(t *testing.T) {
	for _, arb := range []ArbiterMode{ArbiterSharded, ArbiterOptimistic} {
		c := New(Config{Nodes: 4, Arbiter: arb}, progs.NewImage())
		var done []int
		c.At(0, func(n *Node) {
			n.negotiate(2, func(ok bool) {
				if !ok {
					t.Errorf("%s: first negotiation failed", arb)
				}
				done = append(done, 1)
			})
			n.negotiate(3, func(ok bool) {
				if !ok {
					t.Errorf("%s: second negotiation failed", arb)
				}
				done = append(done, 2)
			})
		})
		c.Run(0)
		if len(done) != 2 || done[0] != 1 || done[1] != 2 {
			t.Fatalf("%s: completion order %v, want [1 2]", arb, done)
		}
		n0 := c.Node(0)
		if n0.negBusy || len(n0.negQueue) != 0 {
			t.Fatalf("%s: local queue not drained: busy=%v queue=%d", arb, n0.negBusy, len(n0.negQueue))
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", arb, err)
		}
	}
}

// TestDecentralizedArbitersAcrossGathers: every gather strategy composes
// with every arbiter — concurrent initiators drain, invariants hold,
// ownership is conserved.
func TestDecentralizedArbitersAcrossGathers(t *testing.T) {
	for _, gather := range []GatherMode{GatherSequential, GatherBatched, GatherTree, GatherDelta} {
		for _, arb := range []ArbiterMode{ArbiterSharded, ArbiterOptimistic} {
			name := fmt.Sprintf("%s/%s", gather, arb)
			c := New(Config{Nodes: 8, Gather: gather, Arbiter: arb}, progs.NewImage())
			succeeded := 0
			for i := 0; i < 8; i++ {
				id := i
				c.At(id, func(n *Node) {
					n.negotiate(2, func(ok bool) {
						if ok {
							succeeded++
						}
					})
				})
			}
			c.Run(0)
			if succeeded != 8 {
				t.Fatalf("%s: %d of 8 negotiations succeeded", name, succeeded)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := freeSlotTotal(c); got != layout.SlotCount {
				t.Fatalf("%s: owned-free total %d, want %d", name, got, layout.SlotCount)
			}
		}
	}
}
