package pm2

import (
	"math"
	"sort"

	"repro/internal/simtime"
)

// Percentiles summarizes a latency distribution in microseconds.
type Percentiles struct {
	P50, P95, P99 float64
}

// NearestRank computes nearest-rank percentiles over a latency series
// (zero-valued when the series is empty). The nearest-rank index of
// percentile p over n sorted samples is ceil(p*n)-1 — not the
// round-half-up int(p*n+0.5)-1, which under-reports the tail on small
// series (at n=10, p=0.94 it picks the 9th sample instead of the 10th;
// at n=13, p=0.95 the 12th instead of the 13th). This is the one
// percentile implementation in the repository: the scenario harness,
// the per-cohort SLO accounting and the bench tables all call it.
func NearestRank(ls []simtime.Time) Percentiles {
	if len(ls) == 0 {
		return Percentiles{}
	}
	sorted := append([]simtime.Time(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i].Micros()
	}
	return Percentiles{P50: at(0.50), P95: at(0.95), P99: at(0.99)}
}

// CohortSample is the lifecycle record of one tagged request: a thread
// spawned through Cluster.SpawnCohort on behalf of a named tenant
// cohort. Arrival is when the spawn was requested, Placed when the
// thread existed on its node (slot acquired — negotiated if the node
// was out of slots — descriptor and stack initialized, thread
// enqueued), Finished when it exited, wherever migrations took it.
type CohortSample struct {
	Cohort string
	// Node is the rank the thread was placed on (-1 until placed).
	Node    int
	Arrival simtime.Time
	// Placed is valid once PlacedOK; Placed-Arrival is the
	// time-to-placement.
	Placed   simtime.Time
	PlacedOK bool
	// Finished is valid once Done; Finished-Arrival is the end-to-end
	// latency. A sample with Done == false belongs to a run that was cut
	// off (saturated) before the request completed.
	Finished simtime.Time
	Done     bool
}

// PlacementLatency returns the time-to-placement (zero if never placed).
func (s CohortSample) PlacementLatency() simtime.Time {
	if !s.PlacedOK {
		return 0
	}
	return s.Placed - s.Arrival
}

// EndToEndLatency returns the arrival-to-exit latency (zero if the
// request never completed).
func (s CohortSample) EndToEndLatency() simtime.Time {
	if !s.Done {
		return 0
	}
	return s.Finished - s.Arrival
}

// SpawnCohort is Spawn with per-request SLO accounting: the spawn is
// recorded as a CohortSample under the given cohort name, its placement
// stamped when the thread is created and its completion stamped when
// the thread exits (on whatever node it reached). The serving-workload
// harness tags every open-loop arrival through this entry point; plain
// Spawn records nothing and is byte- and charge-identical to before.
func (c *Cluster) SpawnCohort(i int, prog string, arg uint32, cohort string) {
	idx := len(c.stats.CohortSamples)
	c.stats.CohortSamples = append(c.stats.CohortSamples, CohortSample{
		Cohort:  cohort,
		Node:    -1,
		Arrival: c.eng.Now(),
	})
	c.spawn(i, prog, arg, idx)
}

// noteCohortPlaced stamps sample idx as placed on node at time at and
// indexes it by tid so the exit hook can complete it.
func (c *Cluster) noteCohortPlaced(idx, node int, tid uint32, at simtime.Time) {
	if idx < 0 {
		return
	}
	s := &c.stats.CohortSamples[idx]
	s.Node = node
	s.Placed = at
	s.PlacedOK = true
	if c.cohortByTID == nil {
		c.cohortByTID = make(map[uint32]int)
	}
	c.cohortByTID[tid] = idx
}

// noteCohortExit completes the sample indexed by tid, if any. Called
// from every node's thread-exit hook; TIDs are cluster-unique and
// survive migration, so the completion lands on the right sample no
// matter where the thread died.
func (c *Cluster) noteCohortExit(tid uint32, at simtime.Time) {
	idx, ok := c.cohortByTID[tid]
	if !ok {
		return
	}
	delete(c.cohortByTID, tid)
	s := &c.stats.CohortSamples[idx]
	s.Finished = at
	s.Done = true
}
