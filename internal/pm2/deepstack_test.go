package pm2

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/progs"
	"repro/internal/trace"
)

// deepSrc is a program that recurses to depth r1, migrates at the deepest
// point, then unwinds — every return address and saved frame pointer on the
// stack must remain valid across the migration. This is the paper's central
// claim about compiler-generated pointers: the frame chain needs no
// knowledge and no fixups under iso-addressing.
const deepSrc = `
.program deep
.string fmt_at   "depth %d on node %d\n"
.string fmt_sum  "sum = %d on node %d\n"
main:
    enter 4
    store [fp-4], r1      ; depth
    push  r1
    call  rec
    addi  sp, sp, 4
    mov   r2, r0
    callb self_node
    mov   r3, r0
    loadi r1, fmt_sum
    callb printf          ; sum = <r2> on node <r3>
    leave
    halt

rec:                      ; arg n at [fp+8]; returns sum of 1..n; migrates at n==1
    enter 4
    load  r1, [fp+8]
    loadi r2, 2
    bge   r1, r2, deeper
    ; n <= 1: migrate right here, at maximum stack depth
    callb self_node
    mov   r3, r0
    load  r2, [fp+8]
    loadi r1, fmt_at
    callb printf          ; depth <n> on node <self>
    loadi r1, 1
    callb migrate
    callb self_node
    mov   r3, r0
    load  r2, [fp+8]
    loadi r1, fmt_at
    callb printf          ; depth <n> on node <self> (now node 1)
    load  r0, [fp+8]
    leave
    ret
deeper:
    load  r1, [fp+8]
    store [fp-4], r1      ; save n in a local (in simulated stack memory)
    addi  r1, r1, -1
    push  r1
    call  rec
    addi  sp, sp, 4
    load  r1, [fp-4]
    add   r0, r0, r1      ; sum += n  (r0 survives the unwind)
    leave
    ret
`

// TestMigrationInsideDeepCallChain migrates at recursion depth 40 and
// checks that the unwind completes correctly on the destination: 40 frames
// of return addresses, saved FPs and spilled locals all survive verbatim.
func TestMigrationInsideDeepCallChain(t *testing.T) {
	const depth = 40
	im := progs.NewImage()
	mustAsm(im, deepSrc)
	c := New(Config{Nodes: 2}, im)
	c.Spawn(0, "deep", depth)
	c.Run(0)
	want := []string{
		"[node0] depth 1 on node 0",
		"[node1] depth 1 on node 1",
		fmt.Sprintf("[node1] sum = %d on node 1", depth*(depth+1)/2),
	}
	if i := trace.Equal(c.Trace().Lines(), want); i != -1 {
		t.Fatalf("trace differs at %d:\n%s", i, c.Trace().String())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationInsideDeepCallChainRelocation: the same program under the
// relocation baseline also works — the frame chain is patched with
// "compiler knowledge" — but only because it contains no unregistered user
// pointers. It demonstrates the FP-chain fixup path at depth.
func TestMigrationInsideDeepCallChainRelocation(t *testing.T) {
	const depth = 25
	im := progs.NewImage()
	mustAsm(im, deepSrc)
	c := New(Config{Nodes: 2, Policy: PolicyRelocate}, im)
	c.Spawn(0, "deep", depth)
	c.Run(0)
	lines := c.Trace().Lines()
	if len(lines) != 3 || !strings.Contains(lines[2], fmt.Sprintf("sum = %d", depth*(depth+1)/2)) {
		t.Fatalf("relocation failed the deep unwind:\n%s", c.Trace().String())
	}
}

// TestChainedMigrations sends a thread around a 4-node ring; its list data
// must stay intact through every hop even as slots are evicted/installed
// repeatedly.
func TestChainedMigrations(t *testing.T) {
	im := progs.NewImage()
	mustAsm(im, `
.program ring
.string fmt "check %d ok on node %d\n"
main:
    enter 12              ; rounds fp-4, data fp-8, i fp-12
    store [fp-4], r1
    loadi r1, 4096
    callb isomalloc
    store [fp-8], r0
    ; fill data[i] = i*7
    loadi r2, 0
fill:
    loadi r3, 1024
    bge   r2, r3, go
    loadi r4, 7
    mul   r5, r2, r4
    load  r6, [fp-8]
    loadi r7, 4
    mul   r8, r2, r7
    add   r6, r6, r8
    store [r6], r5
    addi  r2, r2, 1
    br    fill
go:
    loadi r2, 0
    store [fp-12], r2
ring:
    load  r2, [fp-12]
    load  r3, [fp-4]
    bge   r2, r3, out
    ; dest = (self + 1) mod 4
    callb self_node
    addi  r1, r0, 1
    callb node_count
    mov   r2, r0
    mod   r1, r1, r2
    callb migrate
    ; verify data[513] == 513*7
    load  r6, [fp-8]
    loadi r7, 2052     ; 513*4
    add   r6, r6, r7
    load  r2, [r6]
    loadi r3, 3591     ; 513*7
    bne   r2, r3, bad
    load  r2, [fp-12]
    addi  r2, r2, 1
    store [fp-12], r2
    br    ring
bad:
    loadi r1, 0
    load  r2, [r1]     ; deliberate fault: data corrupted
out:
    load  r2, [fp-12]
    callb self_node
    mov   r3, r0
    loadi r1, fmt
    callb printf
    load  r1, [fp-8]
    callb isofree
    leave
    halt
`)
	c := New(Config{Nodes: 4}, im)
	const rounds = 12
	c.Spawn(0, "ring", rounds)
	c.Run(0)
	want := fmt.Sprintf("[node0] check %d ok on node 0", rounds) // 12 hops = back at node 0
	got := c.Trace().Lines()
	if len(got) != 1 || got[0] != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
	if c.Stats().Migrations != rounds {
		t.Fatalf("migrations = %d", c.Stats().Migrations)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Everything released: full ownership across the cluster.
	total := 0
	for i := 0; i < 4; i++ {
		total += c.Node(i).Slots().OwnedFree()
	}
	if total != 57344 {
		t.Fatalf("slots accounted = %d", total)
	}
}

// TestMigrationByteIdentityWholeSlot: under whole-slot packing, the stack
// slot bytes at the destination are identical to the source's at freeze
// time — the strongest form of "no post-migration processing".
func TestMigrationByteIdentityWholeSlot(t *testing.T) {
	im := progs.NewImage()
	c := New(Config{Nodes: 2, Pack: PackWhole}, im)

	var before []byte
	var stackBase Addr
	// Capture the frozen stack slot just before it leaves node 0.
	// We use the worker and freeze it via preemptive request, then
	// snapshot in the Migrate hook — simplest is to snapshot after the
	// run using determinism: run once to learn the slot, run again and
	// sample at the right virtual time. Instead, exploit the migration
	// path directly: snapshot when the slots have been evicted is too
	// late, so intercept via a custom spawn + RunFor windows.
	tid := c.SpawnSync(0, "worker", 50_000)
	c.RunFor(2_000_000) // 2 ms: mid-run
	gotSnapshot := false
	c.At(0, func(n *Node) {
		th, ok := n.sched.Lookup(tid)
		if !ok {
			t.Error("thread not found")
			return
		}
		// Freeze materializes the registers in the in-memory
		// descriptor; snapshot the whole slot and launch the
		// migration by hand.
		stackBase = th.StackBase()
		if err := n.sched.Freeze(th); err != nil {
			t.Error(err)
			return
		}
		b, err := n.space.ReadBytes(stackBase, 65536)
		if err != nil {
			t.Error(err)
			return
		}
		before = append([]byte(nil), b...)
		gotSnapshot = true
		n.sched.Detach(th)
		n.migrateOut(th, 1)
	})
	// Drive the engine just past the installation event, before the
	// thread runs a single instruction on node 1.
	for c.stats.Migrations == 0 && c.eng.Step() {
	}
	if !gotSnapshot {
		t.Fatal("no snapshot taken")
	}
	after, err := c.Node(1).Space().ReadBytes(stackBase, 65536)
	if err != nil {
		t.Fatalf("stack slot not installed on node 1: %v", err)
	}
	if string(after) != string(before) {
		for i := range after {
			if after[i] != before[i] {
				t.Fatalf("slot byte %d differs after migration (%#x vs %#x)", i, after[i], before[i])
			}
		}
	}
	// And the source mapping is gone.
	if c.Node(0).Space().IsMapped(stackBase, 1) {
		t.Fatal("source still maps the migrated slot")
	}
	c.Run(0) // the worker finishes on node 1
	if got := c.Trace().Lines(); len(got) != 1 || !strings.HasSuffix(got[0], "on node 1") {
		t.Fatalf("trace = %q", got)
	}
}
