package pm2

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/marcel"
	"repro/internal/simtime"
)

// The relocation baseline (paper §2): the migration scheme of early PM2 and
// of systems like Ariadne, kept here for the comparison figures.
//
// The destination installs the migrated stack at a *different* address
// (whatever slot it has free), so every pointer into the stack must be
// patched: the compiler-generated frame-pointer chain (walked with
// "compiler knowledge") and the user pointers explicitly declared through
// pm2_register_pointer (Figure 3). Pointers that were never registered
// keep their old values and break (Figure 2). Isomalloc'd data is not
// supported by this policy — precisely the limitation that motivates the
// paper.

const chRelocMigrate uint32 = 7

func init() {
	// chRelocMigrate must not collide with the service channels.
	if chRelocMigrate == chMigrate || chRelocMigrate == chBuy {
		panic("pm2: channel collision")
	}
}

func (n *Node) relocMigrateOut(t *marcel.Thread, dest int) {
	ar := n.sched.Arena(t)
	groups, err := ar.Groups()
	if err != nil {
		panic(err)
	}
	if len(groups) != 1 || groups[0].Kind != core.KindStack {
		panic(fmt.Sprintf("pm2: relocation policy cannot migrate thread %#x with isomalloc data (%d groups) — this is the limitation the iso-address scheme removes", t.TID, len(groups)))
	}
	g := groups[0]
	h, err := core.ReadSlotHeader(n.space, g.Base)
	if err != nil {
		panic(err)
	}
	spans, err := core.UsedSpansStack(&h, marcel.DescSize, t.Regs.SP)
	if err != nil {
		panic(err)
	}

	start := n.actor.Now()
	buf := madeleine.NewBuffer()
	buf.PackU32(g.Base)
	buf.PackU64(uint64(start))
	// Registered pointers travel with the thread.
	regs := n.regPtrs[t.TID]
	buf.PackU32(uint32(len(regs)))
	for _, addr := range sortedRegAddrs(regs) {
		buf.PackU32(addr)
	}
	delete(n.regPtrs, t.TID)

	buf.PackU32(uint32(len(spans)))
	for _, s := range spans {
		data, err := n.space.ReadBytes(g.Base+Addr(s.Off), int(s.Len))
		if err != nil {
			panic(err)
		}
		n.actor.Charge(n.c.cfg.Model.Memcpy(int(s.Len)))
		buf.PackU32(s.Off)
		buf.PackBytes(data)
	}

	// The old stack area returns to this node: under relocation there is
	// no cross-node address reservation to honour. Release both returns
	// ownership and unmaps (or caches) the memory.
	if err := n.slots.Release(layout.SlotIndex(g.Base), 1); err != nil {
		panic(err)
	}

	n.ep.Send(dest, chRelocMigrate, func(b *madeleine.Buffer) {
		b.PackBytes(buf.Bytes())
	})
}

// sortedRegAddrs returns the registered-pointer addresses in key order, for
// a deterministic wire format.
func sortedRegAddrs(m map[uint32]Addr) []Addr {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Addr, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// onRelocMigrateMsg installs a relocated thread: new slot, copied stack,
// then the post-migration pointer-update pass the iso-address scheme
// eliminates.
func (n *Node) onRelocMigrateMsg(src int, msg *madeleine.Buffer) {
	inner := madeleine.FromBytes(msg.BytesSection())
	model := n.c.cfg.Model

	oldBase := Addr(inner.U32())
	start := simtime.Time(inner.U64())
	nRegs := int(inner.U32())
	regAddrs := make([]Addr, nRegs)
	for i := range regAddrs {
		regAddrs[i] = inner.U32()
	}
	nSpans := int(inner.U32())

	// A fresh slot from this node's own pool: the new stack address.
	idx, err := n.slots.AcquireOne()
	if err != nil {
		panic(fmt.Sprintf("pm2: node %d out of slots for relocated thread", n.id))
	}
	newBase := layout.SlotBase(idx)
	delta := newBase - oldBase

	for si := 0; si < nSpans; si++ {
		off := inner.U32()
		data := inner.BytesSection()
		if inner.Err() != nil {
			panic("pm2: corrupt relocation message")
		}
		if err := n.space.Write(newBase+Addr(off), data); err != nil {
			panic(err)
		}
		n.actor.Charge(model.Memcpy(len(data)))
		n.actor.Charge(model.ZeroFill(len(data)))
	}

	oldLo, oldHi := oldBase, oldBase+layout.SlotSize
	inOld := func(v uint32) bool { return v >= oldLo && v < oldHi }
	reloc := func(v uint32) uint32 {
		if inOld(v) {
			return v + delta
		}
		return v
	}

	// Rewrite the slot header in place (prev/next are nil for a lone
	// stack slot; the base changed).
	hdr := core.SlotHeader{Base: newBase, NSlots: 1, Kind: core.KindStack}
	if err := hdr.Write(n.space); err != nil {
		panic(err)
	}

	// Patch the descriptor: SP, FP and the slot-list head all moved.
	desc := newBase + core.SlotHeaderSize
	for _, off := range []Addr{marcel.DescOffSP, marcel.DescOffFP, marcel.DescOffSlotHead} {
		v, err := n.space.Load32(desc + off)
		if err != nil {
			panic(err)
		}
		if err := n.space.Store32(desc+off, reloc(v)); err != nil {
			panic(err)
		}
		n.actor.Charge(cost.Fixed(model.PointerFixupNs))
	}

	// Walk and patch the frame-pointer chain ("implicit pointers
	// generated by the compiler in order to chain the stack frames").
	fp, err := n.space.Load32(desc + marcel.DescOffFP)
	if err != nil {
		panic(err)
	}
	for fp != 0 {
		saved, err := n.space.Load32(fp)
		if err != nil {
			panic(err)
		}
		if saved == 0 {
			break
		}
		if !inOld(saved) {
			panic(fmt.Sprintf("pm2: frame chain escaped the stack: %#08x", saved))
		}
		if err := n.space.Store32(fp, saved+delta); err != nil {
			panic(err)
		}
		n.actor.Charge(cost.Fixed(model.PointerFixupNs))
		fp = saved + delta
	}

	// Patch the registered user pointers (Figure 3). Each entry is the
	// address of a pointer variable; both the variable's location and
	// its value may need the delta.
	newRegs := make(map[uint32]Addr, len(regAddrs))
	for i, pa := range regAddrs {
		loc := reloc(pa)
		v, err := n.space.Load32(loc)
		if err != nil {
			panic(err)
		}
		if inOld(v) {
			if err := n.space.Store32(loc, v+delta); err != nil {
				panic(err)
			}
		}
		n.actor.Charge(cost.Fixed(model.PointerFixupNs))
		newRegs[uint32(i+1)] = loc
	}

	th, err := n.sched.Thaw(desc)
	if err != nil {
		panic(fmt.Sprintf("pm2: thawing relocated thread: %v", err))
	}
	if len(newRegs) > 0 {
		n.regPtrs[th.TID] = newRegs
	}
	n.kick()

	n.c.stats.Migrations++
	n.c.stats.MigrationLatencies = append(n.c.stats.MigrationLatencies, n.actor.Now()-start)
}
