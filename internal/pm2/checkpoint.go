package pm2

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/marcel"
	"repro/internal/simtime"
)

// Cluster checkpoint/restore.
//
// A checkpoint is the cluster's complete virtual-time state at a
// quiescent instant, serialized to the digest-sealed "pm2ckpt v1" text
// format: the engine clock, every node's busy horizon, slot bitmap,
// scheduler counters and NIC tallies, every resident thread's slot
// image (the same wire encoding migration uses — iso-addressing makes
// the bytes valid on any node, including a future one), the cluster
// stats and the trace so far. Restoring into a structurally identical
// configuration yields a cluster whose continuation is byte-identical
// to resuming the original in place — the property pm2load's
// -checkpoint/-restore flags and TestCheckpointRoundTrip pin.
//
// Reaching the quiescent instant is the interesting part. Checkpoint
// parks every runnable thread (freeze + detach, exactly the migration
// departure sequence, minus the eviction) and then single-steps the
// engine until no event is pending, re-parking anything that becomes
// runnable along the way — an in-flight migration lands and is parked
// on arrival, a sleeper's timer fires and the woken thread is parked
// before its next dispatch. All capture-side work runs muted, so
// taking a checkpoint charges no virtual time and perturbs nothing.
//
// Both continuations must observe the same derived state, so capture
// normalizes what it cannot serialize on the live cluster too: the
// mmapped free-slot cache is dropped, the gather hint tables and
// delta-gather caches are cleared, and each bitmap journal is
// truncated at its captured version. The re-enqueue order of parked
// threads (TID order per node, nodes in rank order) is recorded and
// replayed identically by Resume and RestoreCluster.
//
// Refused configurations, all diagnosed with errors: a cluster with an
// installed fault plan (crash barriers are scheduled closures), the
// relocation baseline (host-side pointer registries), any node that
// used the non-migratable pm2_malloc heap, and threads still blocked
// on another thread once the engine drains (a joiner whose joinee was
// parked) — checkpoint at a phase boundary instead. Endpoint call-id
// counters are not carried: the quiescent instant has no outstanding
// calls, and the ids never influence timing or traces.
//
// An attached load balancer that registered through SetBalancer is no
// obstacle: it is paused for the drain and its round state rides an
// optional trailing section that upgrades the image to "pm2ckpt v2"
// (v1 images stay valid and unchanged). And while a capture refuses an
// installed fault plan, a *restore* accepts a fresh one whose events
// all lie after the checkpoint clock — the restart-and-refail
// experiment (see RestoreCluster).

// Checkpoint is a captured cluster state (see the package comment
// above). Build one with Cluster.Checkpoint, serialize with Encode,
// read back with DecodeCheckpoint, and reinstate with RestoreCluster.
type Checkpoint struct {
	// Structural identity of the configuration the capture was taken
	// under; RestoreCluster refuses a configuration that differs.
	// Workers deliberately absent: the parallel kernel is trace-
	// equivalent by construction, so a checkpoint taken at Workers=1
	// restores fine under Workers=4 and vice versa.
	Nodes           int
	Policy          string
	Arbiter         string
	Gather          string
	Dist            string
	Convoy          bool
	Pack            int
	HeartbeatMisses int

	// Engine clock at the quiescent instant.
	Now  simtime.Time
	Seq  uint64
	Step uint64

	Stats Stats
	Trace []string

	NodeStates []CheckpointNode

	// Balancer is the attached balancer's round state — nil when no
	// balancer had registered (SetBalancer) or it was idle at capture.
	// Its presence is what upgrades the serialization to "pm2ckpt v2";
	// captures without it stay byte-identical v1.
	Balancer *BalancerCheckpoint
	// MissedBeats is each rank's consecutive-heartbeat-miss counter at
	// capture, carried alongside Balancer (all zeros today: a capture
	// refuses an installed fault plan, so the counters cannot have
	// moved — they are serialized so a v2 reader never has to guess).
	MissedBeats []int
}

// BalancerCheckpoint is the round state of an attached periodic load
// balancer: enough to restart the cadence — and the Rounds/Moves
// accounting — at the same virtual instant on both continuations.
// Policy-internal memory is deliberately not serialized: every round
// re-samples all nodes before deciding, so the default (memoryless)
// threshold scheme decides identically on both sides; a policy with
// cross-round memory (a rotation cursor, contention history) may place
// differently after a restore than after an in-place resume.
type BalancerCheckpoint struct {
	// Period between rounds and the absolute time the next round was
	// scheduled for when the capture paused the balancer. The pending
	// round itself fires as a no-op during the quiescing drain, so the
	// restored/resumed balancer re-runs it at max(NextRoundAt, ck.Now).
	Period      simtime.Time
	NextRoundAt simtime.Time
	// StaleAfter and KeepAliveUntil echo the balancer's Config so an
	// attach-from-checkpoint needs no operator re-specification.
	StaleAfter     simtime.Time
	KeepAliveUntil simtime.Time
	// Threshold and MaxMoves are the negotiation-policy tuning knobs
	// the balancer applied at attach (0 = was left at policy default).
	Threshold int
	MaxMoves  int
	// Rounds and Moves are the accounting counters so far.
	Rounds int
	Moves  int
}

// BalancerCheckpointer is the checkpoint contract a periodic balancer
// registers through SetBalancer. CheckpointPause must stop the balancer
// from rescheduling (its already-pending round fires as a no-op) and
// return its round state, with NextRoundAt zero if no round was pending
// (the balancer had already drained — nothing to restart). Checkpoint
// Resume undoes the pause and, when NextRoundAt is set, reschedules the
// skipped round at max(NextRoundAt, now).
type BalancerCheckpointer interface {
	CheckpointPause() BalancerCheckpoint
	CheckpointResume(BalancerCheckpoint)
}

// SetBalancer registers an attached balancer for checkpoint
// cooperation. Without a registration, Checkpoint on a cluster with an
// active periodic balancer fails the quiesce budget (the balancer keeps
// scheduling rounds); with it, the balancer is paused, its round state
// rides the checkpoint's v2 section, and both continuations resume the
// cadence identically.
func (c *Cluster) SetBalancer(b BalancerCheckpointer) { c.balancer = b }

// CheckpointNode is one rank's share of a checkpoint.
type CheckpointNode struct {
	Busy                                           simtime.Time
	NextSeq                                        uint32
	Created, Finished, Faulted, Dispatches, Instrs uint64
	Sent, SentBytes, Dropped                       uint64
	// Journal is the bitmap-journal version stamp (0 when the
	// configuration runs no journal).
	Journal uint64
	Bitmap  []byte
	Exited  []uint32
	Threads []CheckpointThread
}

// CheckpointThread is one parked thread: its id and its slot image in
// the migration wire encoding (descriptor address, pack mode, slot
// groups and spans).
type CheckpointThread struct {
	TID   uint32
	Image []byte
}

// quiesceStepBudget bounds the drain: a cluster that schedules new
// events indefinitely (an attached load balancer, a KeepAliveUntil
// far in the future) never quiesces, and the budget turns that into an
// error instead of a hang.
const quiesceStepBudget = 4 << 20

// Checkpoint drives the cluster to a quiescent instant and captures
// its state. The cluster is left parked: call Resume to continue it in
// place, or drop it and RestoreCluster the capture elsewhere. On error
// the cluster may already be partially parked — Resume restarts
// whatever was parked.
func (c *Cluster) Checkpoint() (*Checkpoint, error) {
	if c.cfg.Policy != PolicyIso {
		return nil, fmt.Errorf("pm2: checkpoint requires the iso-address policy; relocated stacks keep host-side pointer registries no image captures")
	}
	if c.faults != nil {
		return nil, fmt.Errorf("pm2: checkpoint does not compose with an installed fault plan (crash barriers are scheduled closures)")
	}
	// An active balancer would reschedule itself forever and defeat the
	// drain below. A registered one (SetBalancer) is paused instead: its
	// pending round fires as a no-op during the drain and its state is
	// captured, so the resumed and the restored continuation restart the
	// cadence at the same virtual instant.
	if c.balancer != nil && c.pausedBalancer == nil {
		st := c.balancer.CheckpointPause()
		c.pausedBalancer = &st
	}
	if err := c.quiesce(); err != nil {
		return nil, err
	}
	for i, n := range c.nodes {
		if allocs, _ := n.heap.Counts(); allocs > 0 {
			return nil, fmt.Errorf("pm2: node %d used pm2_malloc (%d allocations); the node-local heap does not migrate and is not checkpointable", i, allocs)
		}
		for _, t := range n.sched.Snapshot() {
			return nil, fmt.Errorf("pm2: thread %#x on node %d is still blocked at the quiescent instant (joined thread parked?); checkpoint at a phase boundary instead", t.TID, i)
		}
	}

	ck := &Checkpoint{
		Nodes:           c.cfg.Nodes,
		Policy:          c.cfg.Policy.String(),
		Arbiter:         c.cfg.Arbiter.String(),
		Gather:          c.cfg.Gather.String(),
		Dist:            c.cfg.Dist.Name(),
		Convoy:          c.cfg.Convoy,
		Pack:            int(c.cfg.Pack),
		HeartbeatMisses: c.cfg.HeartbeatMisses,
		Stats:           cloneStats(c.stats),
		Trace:           c.log.Lines(),
	}
	ck.Now, ck.Seq, ck.Step = c.eng.Clock()
	if c.pausedBalancer != nil && c.pausedBalancer.NextRoundAt > 0 {
		// Only a balancer with a round actually pending upgrades the
		// image to v2; a drained one restores drained, and the capture
		// bytes stay v1 exactly as before balancers were capturable.
		bc := *c.pausedBalancer
		ck.Balancer = &bc
		ck.MissedBeats = make([]int, c.cfg.Nodes)
		copy(ck.MissedBeats, c.missedBeats)
	}

	for _, n := range c.nodes {
		d := n
		st := CheckpointNode{}
		d.actor.Mute(func() {
			// The mmapped free-slot cache is host state a restored
			// cluster starts without; drop it here too so both
			// continuations re-mmap (and charge) identically.
			d.slots.DropCache()
			for _, t := range d.parked {
				buf := c.bufPool.Get()
				d.packThreadImage(buf, t, 0, false)
				img := append([]byte(nil), buf.Bytes()...)
				c.bufPool.Put(buf)
				st.Threads = append(st.Threads, CheckpointThread{TID: t.TID, Image: img})
			}
		})
		// Derived gather state is rebuilt, not serialized: clear it on
		// the live cluster so the in-process continuation re-learns it
		// exactly like a restored one.
		d.hintEmpty, d.emptyTold, d.emptyToldAny = nil, nil, false
		d.gatherVersions = nil
		d.deltaPeers, d.deltaOr = nil, nil
		if d.journal != nil {
			st.Journal = d.journal.Version()
			d.journal.Truncate()
		}
		st.Busy = d.actor.BusyUntil()
		st.NextSeq = d.sched.NextSeq()
		st.Created, st.Finished, st.Faulted, st.Dispatches, st.Instrs = d.sched.Stats()
		st.Exited = d.sched.ExitedTIDs()
		st.Sent, st.SentBytes, st.Dropped = d.ep.NIC().SentCounters()
		st.Bitmap = d.slots.Bitmap().Bytes()
		ck.NodeStates = append(ck.NodeStates, st)
	}
	return ck, nil
}

// quiesce parks every runnable thread and drains the engine. Parked
// threads dispatch nothing, so each pending event completes whatever
// protocol step it carries and the event count runs dry; threads a
// drained event makes runnable (migration arrivals, timer wakes) are
// parked before their next dispatch.
func (c *Cluster) quiesce() error {
	steps := 0
	for {
		c.parkSweep()
		// A thread carrying a pending migration request is left
		// unparked (its Thread object's MigrateTo mark has no place in
		// the image); kicking lets it dispatch, depart and re-park on
		// arrival as a plain resident.
		for _, n := range c.nodes {
			n.kick()
		}
		if c.eng.Pending() == 0 {
			return nil
		}
		if steps++; steps > quiesceStepBudget {
			return fmt.Errorf("pm2: cluster did not quiesce within %d events — periodic activity (an attached load balancer?) keeps scheduling work", quiesceStepBudget)
		}
		c.eng.Step()
	}
}

// parkSweep freezes and detaches every dispatchable thread, muted, in
// TID order per node and rank order across nodes — the canonical
// re-enqueue order both continuations replay.
func (c *Cluster) parkSweep() {
	for _, n := range c.nodes {
		d := n
		var ts []*marcel.Thread
		for _, t := range d.sched.Snapshot() {
			if !t.Blocked() && t.MigrateTo < 0 {
				ts = append(ts, t)
			}
		}
		if len(ts) == 0 {
			continue
		}
		d.actor.Mute(func() {
			for _, t := range ts {
				if err := d.sched.Freeze(t); err != nil {
					panic(fmt.Sprintf("pm2: freezing thread %#x for checkpoint: %v", t.TID, err))
				}
				d.sched.Detach(t)
				d.parked = append(d.parked, t)
			}
		})
	}
}

// Resume restarts a cluster Checkpoint left parked: every parked
// thread is re-enqueued (muted — the restore path charges nothing
// either) in capture order and the schedulers are kicked. Continue
// with Run as usual.
func (c *Cluster) Resume() {
	if c.balancer != nil && c.pausedBalancer != nil {
		c.balancer.CheckpointResume(*c.pausedBalancer)
		c.pausedBalancer = nil
	}
	for _, n := range c.nodes {
		d := n
		if len(d.parked) > 0 {
			d.actor.Mute(func() {
				for _, t := range d.parked {
					if _, err := d.sched.Thaw(t.Desc); err != nil {
						panic(fmt.Sprintf("pm2: resuming thread %#x: %v", t.TID, err))
					}
				}
			})
			d.parked = nil
		}
		d.kick()
	}
}

// RestoreCluster builds a fresh cluster over cfg and im and reinstates
// a checkpoint into it. cfg must be structurally identical to the
// configuration the checkpoint was taken under (node count, policy,
// arbiter, gather, distribution, convoy, pack mode, heartbeat lease);
// Workers and cost-model choices are free, and so is RPCTimeout — like
// Workers it must simply match between two restores whose continuations
// are to be compared. The returned cluster is running — its next Run
// continues the checkpointed execution, byte-identical to Resume on the
// original.
//
// cfg.Faults composes with a restore as long as every event lies
// strictly after the checkpoint clock: the restart-and-refail
// experiment. Events at or before ck.Now are rejected — their crash
// barriers could never fire (the restored clock is already past them),
// and a partition or slow window that straddles the capture instant
// describes a network state the checkpoint, taken on a quiescent
// healthy cluster, cannot contain.
func RestoreCluster(cfg Config, im *isa.Image, ck *Checkpoint) (*Cluster, error) {
	refail := cfg.Faults
	if !refail.Empty() {
		for _, ev := range refail.Events {
			if ev.At <= ck.Now {
				return nil, fmt.Errorf("pm2: restore fault plan does not compose: %s is not after the checkpoint clock t=%dus",
					ev, int64(ck.Now)/int64(simtime.Microsecond))
			}
		}
	}
	// The plan is installed after the clock restore below, not through
	// NewChecked: installation schedules one ambient barrier per crash
	// event, and RestoreClock refuses a non-empty engine.
	cfg.Faults = nil
	c, err := NewChecked(cfg, im)
	if err != nil {
		return nil, err
	}
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("pm2: checkpoint/config mismatch: %s is %v here, %v in the checkpoint", field, got, want)
	}
	rc := c.cfg // post-default values
	switch {
	case rc.Nodes != ck.Nodes:
		return nil, mismatch("node count", rc.Nodes, ck.Nodes)
	case rc.Policy.String() != ck.Policy:
		return nil, mismatch("migration policy", rc.Policy, ck.Policy)
	case rc.Arbiter.String() != ck.Arbiter:
		return nil, mismatch("arbiter", rc.Arbiter, ck.Arbiter)
	case rc.Gather.String() != ck.Gather:
		return nil, mismatch("gather strategy", rc.Gather, ck.Gather)
	case rc.Dist.Name() != ck.Dist:
		return nil, mismatch("slot distribution", rc.Dist.Name(), ck.Dist)
	case rc.Convoy != ck.Convoy:
		return nil, mismatch("convoy pipeline", rc.Convoy, ck.Convoy)
	case int(rc.Pack) != ck.Pack:
		return nil, mismatch("pack mode", rc.Pack, PackMode(ck.Pack))
	case rc.HeartbeatMisses != ck.HeartbeatMisses:
		return nil, mismatch("heartbeat lease", rc.HeartbeatMisses, ck.HeartbeatMisses)
	case len(ck.NodeStates) != len(c.nodes):
		return nil, fmt.Errorf("pm2: checkpoint carries %d node states for %d nodes", len(ck.NodeStates), len(c.nodes))
	}

	c.eng.RestoreClock(ck.Now, ck.Seq, ck.Step)
	c.stats = cloneStats(ck.Stats)
	c.log.Restore(ck.Trace)
	for i, n := range c.nodes {
		st := ck.NodeStates[i]
		n.actor.RestoreBusy(st.Busy)
		bm, err := bitmap.FromBytes(layout.SlotCount, st.Bitmap)
		if err != nil {
			return nil, fmt.Errorf("pm2: node %d checkpoint bitmap: %v", i, err)
		}
		if err := n.slots.RestoreBitmap(bm); err != nil {
			return nil, err
		}
		n.sched.RestoreStats(st.Created, st.Finished, st.Faulted, st.Dispatches, st.Instrs)
		n.sched.RestoreNextSeq(st.NextSeq)
		n.sched.RestoreExited(st.Exited)
		if n.journal != nil {
			n.journal.RestoreVersion(st.Journal)
		}
		n.ep.NIC().RestoreSentCounters(st.Sent, st.SentBytes, st.Dropped)

		d := n
		var thawErr error
		d.actor.Mute(func() {
			for _, th := range st.Threads {
				inner := madeleine.FromBytes(th.Image)
				desc := Addr(inner.U32())
				_ = inner.U64() // migration start stamp, unused here
				mode := PackMode(inner.U32())
				nGroups := int(inner.U32())
				d.installGroups(inner, mode, nGroups, false)
				t, err := d.sched.Thaw(desc)
				if err != nil {
					thawErr = fmt.Errorf("pm2: restoring thread %#x on node %d: %v", th.TID, i, err)
					return
				}
				if t.TID != th.TID {
					thawErr = fmt.Errorf("pm2: node %d image for thread %#x thawed as %#x", i, th.TID, t.TID)
					return
				}
			}
		})
		if thawErr != nil {
			return nil, thawErr
		}
		n.kick()
	}
	if !refail.Empty() {
		if err := c.InstallFaults(refail); err != nil {
			return nil, err
		}
		if len(ck.MissedBeats) == len(c.missedBeats) {
			copy(c.missedBeats, ck.MissedBeats)
		}
	}
	return c, nil
}

// cloneStats deep-copies a Stats value so neither side aliases the
// other's slices.
func cloneStats(s Stats) Stats {
	s.MigrationLatencies = append([]simtime.Time(nil), s.MigrationLatencies...)
	s.NegotiationLatencies = append([]simtime.Time(nil), s.NegotiationLatencies...)
	s.EvacuationLatencies = append([]simtime.Time(nil), s.EvacuationLatencies...)
	s.DetectionLatencies = append([]simtime.Time(nil), s.DetectionLatencies...)
	s.CohortSamples = append([]CohortSample(nil), s.CohortSamples...)
	return s
}

// --- pm2ckpt v1 wire format ---------------------------------------------
//
// Line-oriented text, sealed by a trailing FNV-1a-64 digest over every
// byte that precedes the digest line. Trace lines are carried verbatim
// behind a ">" sentinel. The format is versioned by its first line;
// DecodeCheckpoint rejects unknown versions, truncation and any byte
// flip (the digest covers the whole body).

const (
	ckptMagic = "pm2ckpt v1"
	// ckptMagicV2 marks an image carrying the optional balancer section
	// (one "balancer" line and one "missedbeats" line after the node
	// records). Everything before it is v1-identical, and v1 images —
	// no balancer at capture — still encode and decode unchanged.
	ckptMagicV2 = "pm2ckpt v2"
)

func fnvSum(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// Digest returns the seal a serialization of this checkpoint carries —
// what trace headers and replay tools record to name the state they
// started from.
func (ck *Checkpoint) Digest() uint64 { return fnvSum(ck.body()) }

// Encode serializes the checkpoint, digest-sealed.
func (ck *Checkpoint) Encode() []byte {
	body := ck.body()
	return append(body, fmt.Sprintf("digest %016x\n", fnvSum(body))...)
}

func (ck *Checkpoint) body() []byte {
	var b bytes.Buffer
	magic := ckptMagic
	if ck.Balancer != nil {
		magic = ckptMagicV2
	}
	fmt.Fprintf(&b, "%s\n", magic)
	fmt.Fprintf(&b, "config nodes=%d policy=%s arbiter=%s gather=%s dist=%s convoy=%t pack=%d heartbeat-misses=%d\n",
		ck.Nodes, ck.Policy, ck.Arbiter, ck.Gather, ck.Dist, ck.Convoy, ck.Pack, ck.HeartbeatMisses)
	fmt.Fprintf(&b, "clock now=%d seq=%d steps=%d\n", int64(ck.Now), ck.Seq, ck.Step)
	stats, err := json.Marshal(ck.Stats)
	if err != nil {
		panic(fmt.Sprintf("pm2: encoding checkpoint stats: %v", err))
	}
	fmt.Fprintf(&b, "stats %s\n", stats)
	fmt.Fprintf(&b, "trace %d\n", len(ck.Trace))
	for _, line := range ck.Trace {
		fmt.Fprintf(&b, ">%s\n", line)
	}
	for i, st := range ck.NodeStates {
		fmt.Fprintf(&b, "node %d busy=%d nextseq=%d created=%d finished=%d faulted=%d dispatches=%d instrs=%d sent=%d sentbytes=%d dropped=%d journal=%d\n",
			i, int64(st.Busy), st.NextSeq, st.Created, st.Finished, st.Faulted, st.Dispatches, st.Instrs,
			st.Sent, st.SentBytes, st.Dropped, st.Journal)
		fmt.Fprintf(&b, "bitmap %s\n", hex.EncodeToString(st.Bitmap))
		b.WriteString("exited")
		for _, tid := range st.Exited {
			fmt.Fprintf(&b, " %d", tid)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "threads %d\n", len(st.Threads))
		for _, th := range st.Threads {
			fmt.Fprintf(&b, "thread tid=%d image=%s\n", th.TID, hex.EncodeToString(th.Image))
		}
	}
	if bc := ck.Balancer; bc != nil {
		fmt.Fprintf(&b, "balancer period=%d next=%d staleafter=%d keepalive=%d threshold=%d maxmoves=%d rounds=%d moves=%d\n",
			int64(bc.Period), int64(bc.NextRoundAt), int64(bc.StaleAfter), int64(bc.KeepAliveUntil),
			bc.Threshold, bc.MaxMoves, bc.Rounds, bc.Moves)
		b.WriteString("missedbeats")
		for _, m := range ck.MissedBeats {
			fmt.Fprintf(&b, " %d", m)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// DecodeCheckpoint parses and digest-verifies a pm2ckpt v1 or v2
// serialization.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	idx := bytes.LastIndex(data, []byte("\ndigest "))
	if idx < 0 {
		return nil, fmt.Errorf("pm2: checkpoint has no digest trailer (truncated?)")
	}
	body := data[:idx+1]
	var want uint64
	if _, err := fmt.Sscanf(string(data[idx+1:]), "digest %x", &want); err != nil {
		return nil, fmt.Errorf("pm2: unreadable checkpoint digest trailer: %v", err)
	}
	if got := fnvSum(body); got != want {
		return nil, fmt.Errorf("pm2: checkpoint digest mismatch: computed %016x, sealed %016x (corrupt or truncated)", got, want)
	}

	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	pos := 0
	next := func() (string, error) {
		if pos >= len(lines) {
			return "", fmt.Errorf("pm2: checkpoint ends early at line %d", pos+1)
		}
		pos++
		return lines[pos-1], nil
	}
	expect := func(format string, args ...any) error {
		line, err := next()
		if err != nil {
			return err
		}
		if n, err := fmt.Sscanf(line, format, args...); err != nil || n != len(args) {
			return fmt.Errorf("pm2: checkpoint line %d: want %q, got %q", pos, format, line)
		}
		return nil
	}

	v2 := false
	if line, err := next(); err != nil {
		return nil, err
	} else if line == ckptMagicV2 {
		v2 = true
	} else if line != ckptMagic {
		return nil, fmt.Errorf("pm2: not a %s file (starts %q)", ckptMagic, line)
	}
	ck := &Checkpoint{}
	if err := expect("config nodes=%d policy=%s arbiter=%s gather=%s dist=%s convoy=%t pack=%d heartbeat-misses=%d",
		&ck.Nodes, &ck.Policy, &ck.Arbiter, &ck.Gather, &ck.Dist, &ck.Convoy, &ck.Pack, &ck.HeartbeatMisses); err != nil {
		return nil, err
	}
	var now int64
	if err := expect("clock now=%d seq=%d steps=%d", &now, &ck.Seq, &ck.Step); err != nil {
		return nil, err
	}
	ck.Now = simtime.Time(now)
	statsLine, err := next()
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(statsLine, "stats ") {
		return nil, fmt.Errorf("pm2: checkpoint line %d: want stats, got %q", pos, statsLine)
	}
	if err := json.Unmarshal([]byte(statsLine[len("stats "):]), &ck.Stats); err != nil {
		return nil, fmt.Errorf("pm2: checkpoint stats: %v", err)
	}
	var nTrace int
	if err := expect("trace %d", &nTrace); err != nil {
		return nil, err
	}
	for i := 0; i < nTrace; i++ {
		line, err := next()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(line, ">") {
			return nil, fmt.Errorf("pm2: checkpoint line %d: want trace line, got %q", pos, line)
		}
		ck.Trace = append(ck.Trace, line[1:])
	}
	for i := 0; i < ck.Nodes; i++ {
		var (
			rank int
			busy int64
			st   CheckpointNode
		)
		if err := expect("node %d busy=%d nextseq=%d created=%d finished=%d faulted=%d dispatches=%d instrs=%d sent=%d sentbytes=%d dropped=%d journal=%d",
			&rank, &busy, &st.NextSeq, &st.Created, &st.Finished, &st.Faulted, &st.Dispatches, &st.Instrs,
			&st.Sent, &st.SentBytes, &st.Dropped, &st.Journal); err != nil {
			return nil, err
		}
		if rank != i {
			return nil, fmt.Errorf("pm2: checkpoint node records out of order: want %d, got %d", i, rank)
		}
		st.Busy = simtime.Time(busy)
		var bmHex string
		if err := expect("bitmap %s", &bmHex); err != nil {
			return nil, err
		}
		if st.Bitmap, err = hex.DecodeString(bmHex); err != nil {
			return nil, fmt.Errorf("pm2: checkpoint node %d bitmap: %v", i, err)
		}
		exLine, err := next()
		if err != nil {
			return nil, err
		}
		if exLine != "exited" && !strings.HasPrefix(exLine, "exited ") {
			return nil, fmt.Errorf("pm2: checkpoint line %d: want exited, got %q", pos, exLine)
		}
		for _, f := range strings.Fields(exLine)[1:] {
			var tid uint32
			if _, err := fmt.Sscanf(f, "%d", &tid); err != nil {
				return nil, fmt.Errorf("pm2: checkpoint node %d exited tid %q: %v", i, f, err)
			}
			st.Exited = append(st.Exited, tid)
		}
		var nThreads int
		if err := expect("threads %d", &nThreads); err != nil {
			return nil, err
		}
		for k := 0; k < nThreads; k++ {
			var (
				th     CheckpointThread
				imgHex string
			)
			if err := expect("thread tid=%d image=%s", &th.TID, &imgHex); err != nil {
				return nil, err
			}
			if th.Image, err = hex.DecodeString(imgHex); err != nil {
				return nil, fmt.Errorf("pm2: checkpoint thread %#x image: %v", th.TID, err)
			}
			st.Threads = append(st.Threads, th)
		}
		ck.NodeStates = append(ck.NodeStates, st)
	}
	if v2 {
		bc := &BalancerCheckpoint{}
		var period, nextAt, stale, keep int64
		if err := expect("balancer period=%d next=%d staleafter=%d keepalive=%d threshold=%d maxmoves=%d rounds=%d moves=%d",
			&period, &nextAt, &stale, &keep, &bc.Threshold, &bc.MaxMoves, &bc.Rounds, &bc.Moves); err != nil {
			return nil, err
		}
		bc.Period, bc.NextRoundAt = simtime.Time(period), simtime.Time(nextAt)
		bc.StaleAfter, bc.KeepAliveUntil = simtime.Time(stale), simtime.Time(keep)
		ck.Balancer = bc
		mbLine, err := next()
		if err != nil {
			return nil, err
		}
		if mbLine != "missedbeats" && !strings.HasPrefix(mbLine, "missedbeats ") {
			return nil, fmt.Errorf("pm2: checkpoint line %d: want missedbeats, got %q", pos, mbLine)
		}
		for _, f := range strings.Fields(mbLine)[1:] {
			var m int
			if _, err := fmt.Sscanf(f, "%d", &m); err != nil {
				return nil, fmt.Errorf("pm2: checkpoint missedbeats %q: %v", f, err)
			}
			ck.MissedBeats = append(ck.MissedBeats, m)
		}
	}
	if pos != len(lines) {
		return nil, fmt.Errorf("pm2: %d trailing checkpoint lines after node records", len(lines)-pos)
	}
	return ck, nil
}

// DistFromName resolves a Distribution.Name() string — the form a
// checkpoint records — back to the distribution it names, so a restorer
// can rebuild Config.Dist from the capture instead of asking the
// operator to re-specify it.
func DistFromName(s string) (core.Distribution, error) {
	switch {
	case s == "round-robin":
		return core.RoundRobin{}, nil
	case s == "partition":
		return core.Partition{}, nil
	default:
		var k int
		if _, err := fmt.Sscanf(s, "block-cyclic(%d)", &k); err == nil && k > 0 {
			return core.BlockCyclic{K: k}, nil
		}
	}
	return nil, fmt.Errorf("pm2: unknown distribution %q in checkpoint", s)
}
