package pm2

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/simtime"
)

// The request/reply deadline layer (Config.RPCTimeout). The paper's
// protocol assumes a reliable interconnect: every Call blocks its
// continuation until the reply arrives, so a partition or a crashed
// peer hangs the initiator forever. With a timeout configured, every
// protocol exchange that awaits a remote reply arms a zero-charge
// virtual-time timer on the initiator's own lane; at expiry the
// initiator stops waiting, counts Stats.RPCTimeouts, and either
// retries with deterministic exponential backoff (idempotent gather
// requests), falls back (remote spawn), or fails the operation
// gracefully (purchases, locks).
//
// Two hazards shape the per-channel policies:
//
//   - A partition-delayed *request* must not execute after its
//     initiator timed out and moved on — a retried purchase would then
//     apply twice. Deadline requests carry their expiry on the wire
//     (madeleine kindCallDL) and the receiver discards late arrivals
//     unanswered.
//   - A request that *did* execute, whose reply outran the initiator's
//     patience, leaves dangling remote state. Non-idempotent channels
//     therefore keep their reply handler armed past the timeout and
//     compensate: a late purchase acceptance is given straight back, a
//     late lock grant released immediately. Idempotent channels simply
//     cancel the wait (madeleine tombstones the orphan reply).
//
// With RPCTimeout == 0 every helper degrades to the plain ep.Call —
// no timer, no envelope change, byte-identical traces.

const (
	// rpcMaxAttempts bounds an idempotent request's tries: the initial
	// send plus retries, each preceded by a doubling backoff.
	rpcMaxAttempts = 3
	// rpcBackoffBase and rpcBackoffCap shape the retry backoff, the
	// same 25 µs-doubling style the optimistic arbiter uses.
	rpcBackoffBase = 25 * simtime.Microsecond
	rpcBackoffCap  = 400 * simtime.Microsecond
)

// rpcBackoff returns the deterministic delay before retry number
// try+1 of a timed-out idempotent request.
func rpcBackoff(try int) simtime.Time {
	d := rpcBackoffBase << uint(try)
	if d > rpcBackoffCap {
		return rpcBackoffCap
	}
	return d
}

// DefaultRPCTimeout derives the timeout from the cost model: twice the
// round trip of the heaviest common exchange (a small request shipping
// a full bitmap back), so a healthy reply always beats the timer with
// margin while a partitioned peer is abandoned within a few round
// trips.
func DefaultRPCTimeout(m *cost.Model) simtime.Time {
	return 2 * m.RoundTrip(128, layout.BitmapBytes)
}

// callRPC issues one deadline-guarded Call. done runs on a reply
// inside the deadline; timedOut runs at expiry. late, when non-nil,
// receives a reply that arrives after expiry — the compensation hook
// for non-idempotent requests; when nil the wait is canceled at expiry
// and a late reply is dropped by the endpoint's tombstone. With
// RPCTimeout == 0 this is exactly ep.Call and timedOut/late never run.
func (n *Node) callRPC(dst int, ch uint32, build func(*madeleine.Buffer), done func(*madeleine.Buffer), timedOut func(), late func(*madeleine.Buffer)) {
	n.callRPCWithin(n.c.cfg.RPCTimeout, dst, ch, build, done, timedOut, late)
}

// callRPCWithin is callRPC with an explicit patience. The tree gather
// widens the deadline of a call to an interior relay, whose reply nests
// its own children's deadlines and retries — see treeDeadlineScale.
func (n *Node) callRPCWithin(timeout simtime.Time, dst int, ch uint32, build func(*madeleine.Buffer), done func(*madeleine.Buffer), timedOut func(), late func(*madeleine.Buffer)) {
	if timeout == 0 {
		n.ep.Call(dst, ch, build, done)
		return
	}
	deadline := n.actor.Now() + timeout
	answered := false
	expired := false
	id := n.ep.CallDL(dst, ch, deadline, build, func(reply *madeleine.Buffer) {
		if expired {
			if late != nil {
				late(reply)
			}
			return
		}
		answered = true
		done(reply)
	})
	n.actor.Post(deadline, func() {
		if answered {
			return
		}
		expired = true
		if late == nil {
			n.ep.Cancel(id)
		}
		n.actor.Commit(func() { n.c.stats.RPCTimeouts++ })
		timedOut()
	})
}

// gatherCall issues one idempotent gather request (chBitmap,
// chGatherTree, chBitmapDelta) with deadline and backoff retries; miss
// runs once the retry budget is exhausted, and the caller skips the
// unresponsive rank — safe for planning, which then simply does not
// see that peer's free slots. Replies that arrive after a timeout are
// dropped: the retry (or the next round's gather) re-reads the peer.
func (n *Node) gatherCall(dst int, ch uint32, build func(*madeleine.Buffer), done func(*madeleine.Buffer), miss func()) {
	n.gatherCallScaled(dst, ch, 1, build, done, miss)
}

// gatherCallScaled is gatherCall with the per-attempt deadline widened
// by an integer factor. The combining tree uses it for calls to interior
// relays: a relay cannot reply before its own children's retry budgets
// resolve, so a flat deadline at every level would expire at the parent
// first and cascade the loss of one unreachable leaf into the loss of
// every subtree above it.
func (n *Node) gatherCallScaled(dst int, ch uint32, scale int, build func(*madeleine.Buffer), done func(*madeleine.Buffer), miss func()) {
	if n.c.cfg.RPCTimeout == 0 {
		n.ep.Call(dst, ch, build, done)
		return
	}
	timeout := n.c.cfg.RPCTimeout * simtime.Time(scale)
	var attempt func(try int)
	attempt = func(try int) {
		n.callRPCWithin(timeout, dst, ch, build, done, func() {
			if try+1 >= rpcMaxAttempts {
				miss()
				return
			}
			n.actor.Post(n.actor.Now()+rpcBackoff(try), func() { attempt(try + 1) })
		}, nil)
	}
	attempt(0)
}

// acquireLockOr is acquireLock with a timeout continuation for the
// negotiation path: expiry abandons the negotiation (the caller counts
// a failure) instead of hanging it. A grant that outruns the timeout is
// released immediately — the system-wide section must never be left
// held by a waiter that walked away.
func (n *Node) acquireLockOr(granted, timedOut func()) {
	if n.c.cfg.RPCTimeout == 0 {
		n.acquireLock(granted)
		return
	}
	n.callRPCWithin(n.lockPatience(), 0, chLock, nil,
		func(*madeleine.Buffer) { granted() },
		timedOut,
		func(*madeleine.Buffer) { n.releaseLock() })
}

// lockPatience is the deadline for the system-wide lock acquisition.
// Unlike a gather, a lock request legitimately queues: up to Nodes-1
// earlier holders may each burn up to Nodes × rpcMaxAttempts gather
// deadlines routing around unreachable peers before releasing, so the
// flat RPC deadline would read healthy contention as a dead manager
// and fail negotiations that merely queued. Quadratic in the cluster
// size, the wait is still bounded and deterministic when the manager
// really is unreachable.
func (n *Node) lockPatience() simtime.Time {
	nodes := simtime.Time(n.c.Nodes())
	return n.c.cfg.RPCTimeout * rpcMaxAttempts * nodes * nodes
}

// compGiveBack returns shares a seller sold to a purchase whose reply
// arrived after the initiator's timeout: the initiator already treated
// the purchase as declined and re-planned, so the orphaned shares go
// straight back. Unlike returnSlots this rides outside the round's
// give-back accounting (the round that bought them is long gone). A
// decline — or a timeout of the give-back itself — parks the slots at
// neither party until the next defragmentation: a bounded loss in an
// already-pathological race.
func (n *Node) compGiveBack(seller int, shares []core.SellerShare) {
	n.callRPC(seller, chBuy, func(b *madeleine.Buffer) {
		b.PackU32(opGiveBack)
		packShares(b, shares)
	}, func(*madeleine.Buffer) {}, func() {}, nil)
}

// spawnRemote issues the remote thread-creation LRPC. With a timeout
// configured, an unresponsive destination is abandoned and the spawn
// falls back to further live, unsuspected ranks; exhaustion reports
// tid 0 to the caller, like a local creation failure.
func (n *Node) spawnRemote(dest int, entry, arg uint32, done func(tid uint32)) {
	pack := func(b *madeleine.Buffer) { b.PackU32(entry).PackU32(arg) }
	reply := func(r *madeleine.Buffer) { done(r.U32()) }
	if n.c.cfg.RPCTimeout == 0 {
		n.ep.Call(dest, chSpawn, pack, reply)
		return
	}
	tried := 0
	var attempt func(d int)
	attempt = func(d int) {
		n.callRPC(d, chSpawn, pack, reply, func() {
			tried++
			next := n.c.nextSpawnFallback(d, n.id)
			if tried >= n.c.Nodes()-1 || next < 0 {
				done(0)
				return
			}
			attempt(next)
		}, nil)
	}
	attempt(dest)
}

// nextSpawnFallback returns the first rank after a timed-out spawn
// destination that is neither the requester, declared dead, nor
// suspected — the next candidate for the LRPC — or -1 when none
// remains.
func (c *Cluster) nextSpawnFallback(after, self int) int {
	for k := 1; k < c.Nodes(); k++ {
		cand := (after + k) % c.Nodes()
		if cand == self || !c.nodeAlive(cand) {
			continue
		}
		return cand
	}
	return -1
}
