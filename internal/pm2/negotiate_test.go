package pm2

import (
	"testing"

	"repro/internal/progs"
	"repro/internal/simtime"
)

// negotiateSync drives one direct negotiation for k slots on node id and
// returns its outcome.
func negotiateSync(t *testing.T, c *Cluster, id, k int) bool {
	t.Helper()
	ok, fired := false, false
	c.At(id, func(n *Node) {
		n.negotiate(k, func(got bool) {
			ok, fired = got, true
		})
	})
	c.Run(0)
	if !fired {
		t.Fatal("negotiation never completed")
	}
	return ok
}

// TestGatherStrategiesAgreeOnOutcome: one quiet negotiation must end in
// the same cluster-wide slot ownership under every gather strategy — the
// strategies change what the gather costs, never what it buys.
func TestGatherStrategiesAgreeOnOutcome(t *testing.T) {
	var want []string
	for _, gather := range []GatherMode{GatherSequential, GatherBatched, GatherTree, GatherDelta} {
		c := New(Config{Nodes: 4, Gather: gather}, progs.NewImage())
		if !negotiateSync(t, c, 0, 3) {
			t.Fatalf("%s: negotiation failed", gather)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", gather, err)
		}
		var got []string
		for i := 0; i < c.Nodes(); i++ {
			got = append(got, string(c.Node(i).Slots().Bitmap().Bytes()))
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: node %d ownership differs from sequential outcome", gather, i)
			}
		}
	}
}

// TestGatherStrategiesScaleBelowSequential pins the point of the whole
// exercise: at 16 nodes, one negotiation under the batched or tree gather
// must cost measurably less virtual time than the paper's sequential
// gather (whose +165 µs/node slope is the figure being attacked).
func TestGatherStrategiesScaleBelowSequential(t *testing.T) {
	lat := func(gather GatherMode) simtime.Time {
		c := New(Config{Nodes: 16, Gather: gather}, progs.NewImage())
		if !negotiateSync(t, c, 0, 3) {
			t.Fatalf("%s: negotiation failed", gather)
		}
		st := c.Stats()
		if st.Negotiations != 1 {
			t.Fatalf("%s: %d negotiations", gather, st.Negotiations)
		}
		return st.NegotiationLatencies[0]
	}
	seq, bat, tree := lat(GatherSequential), lat(GatherBatched), lat(GatherTree)
	if bat*2 >= seq {
		t.Errorf("batched gather %v not well below sequential %v", bat, seq)
	}
	if tree*2 >= seq {
		t.Errorf("tree gather %v not well below sequential %v", tree, seq)
	}
	// A cold delta gather ships full maps (first contact), so it lands in
	// batched territory — still far below sequential.
	if delta := lat(GatherDelta); delta*2 >= seq {
		t.Errorf("delta gather %v not well below sequential %v", delta, seq)
	}
}

// TestTreeTopology: the binomial combining tree must partition the
// cluster — every rank reachable from the root exactly once, and each
// child's advertised subtree matching what recursion actually visits.
func TestTreeTopology(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 17, 64} {
		for _, root := range []int{0, n / 2, n - 1} {
			seen := make(map[int]int)
			var walk func(node int)
			walk = func(node int) {
				seen[node]++
				for _, ch := range treeChildren(node, root, n) {
					walk(ch)
				}
			}
			walk(root)
			if len(seen) != n {
				t.Fatalf("n=%d root=%d: tree reaches %d ranks", n, root, len(seen))
			}
			for r, k := range seen {
				if k != 1 {
					t.Fatalf("n=%d root=%d: rank %d visited %d times", n, root, r, k)
				}
			}
			for _, ch := range treeChildren(root, root, n) {
				sub := make(map[int]bool)
				var collect func(node int)
				collect = func(node int) {
					sub[node] = true
					for _, g := range treeChildren(node, root, n) {
						collect(g)
					}
				}
				collect(ch)
				ranks := subtreeRanks(ch, root, n)
				if len(ranks) != len(sub) {
					t.Fatalf("n=%d root=%d child %d: subtreeRanks %v vs walked %v", n, root, ch, ranks, sub)
				}
				for _, r := range ranks {
					if !sub[r] {
						t.Fatalf("n=%d root=%d child %d: rank %d in subtreeRanks but not walked", n, root, ch, r)
					}
				}
			}
		}
	}
}

// TestRetryWaitsForGiveBacks is the §4.4 retry/give-back regression: a
// local allocation at the second seller lands between the gather and the
// purchase, the batch is declined, the already-secured first-seller share
// is given back, and only then — negotiateRound panics on any give-back
// still in flight — does the next round re-gather. The retry must find
// the returned slots and succeed.
func TestRetryWaitsForGiveBacks(t *testing.T) {
	c := New(Config{Nodes: 4}, progs.NewImage())
	// Plan for k=3 is run [0,3): slot 0 is the initiator's own, slot 1
	// is bought from node 1, slot 2 from node 2 — a multi-seller
	// purchase. The hook interleaves a local allocation of slot 2 at
	// node 2 just before it serves the purchase, so the batch fails its
	// ownership check organically.
	fired := false
	n2 := c.Node(2)
	n2.buyHook = func(src int, giveBack bool) bool {
		if !giveBack && !fired {
			fired = true
			if err := n2.slots.AcquireAt(2, 1); err != nil {
				t.Errorf("racing allocation: %v", err)
			}
		}
		return false
	}
	if !negotiateSync(t, c, 0, 3) {
		t.Fatal("negotiation failed after the declined round")
	}
	if !fired {
		t.Fatal("the racing allocation never ran")
	}
	st := c.Stats()
	if st.NegotiationRetries == 0 {
		t.Fatal("the declined purchase did not register a retry")
	}
	if got := c.Node(0).pendingGiveBacks; got != 0 {
		t.Fatalf("%d give-backs still pending after the negotiation", got)
	}
	// The retry's fresh gather saw the returned slot: the initiator now
	// owns a contiguous 3-run (slots 3..5: own slot 4 plus purchases).
	if c.Node(0).Slots().Bitmap().FindRun(3) < 0 {
		t.Fatal("initiator holds no contiguous 3-run after the retry")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRangeBuyRetriesOnShortfall is the tree-gather counterpart of the
// retry regression: a racing local allocation at one owner lands between
// the tree gather and the range purchase, the sold pieces no longer tile
// the chosen run, everything is given back (acknowledged before the next
// round — the same pendingGiveBacks assertion guards this path), and the
// retry succeeds against fresh bitmaps.
func TestRangeBuyRetriesOnShortfall(t *testing.T) {
	c := New(Config{Nodes: 4, Gather: GatherTree}, progs.NewImage())
	fired := false
	n2 := c.Node(2)
	n2.buyHook = func(src int, giveBack bool) bool {
		if !giveBack && !fired {
			fired = true
			if err := n2.slots.AcquireAt(2, 1); err != nil {
				t.Errorf("racing allocation: %v", err)
			}
		}
		return false
	}
	if !negotiateSync(t, c, 0, 3) {
		t.Fatal("range purchase failed after the shortfall round")
	}
	if !fired {
		t.Fatal("the racing allocation never ran")
	}
	st := c.Stats()
	if st.NegotiationRetries == 0 {
		t.Fatal("the shortfall did not register a retry")
	}
	if got := c.Node(0).pendingGiveBacks; got != 0 {
		t.Fatalf("%d give-backs still pending after the negotiation", got)
	}
	if c.Node(0).Slots().Bitmap().FindRun(3) < 0 {
		t.Fatal("initiator holds no contiguous 3-run after the retry")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGiveBackDeclineDoesNotCrash: if the seller re-acquired a returned
// slot before the give-back arrives, the old code panicked in BuyRun;
// now the seller declines the batch and the initiator drops its claim,
// so ownership stays single and the node survives.
func TestGiveBackDeclineDoesNotCrash(t *testing.T) {
	c := New(Config{Nodes: 4}, progs.NewImage())
	// Force the multi-seller decline: node 2 refuses the purchase of
	// slot 2 outright, so the initiator gives slot 1 back to node 1 —
	// which meanwhile "re-acquired" it, colliding with the give-back.
	n1, n2 := c.Node(1), c.Node(2)
	declined := false
	n2.buyHook = func(src int, giveBack bool) bool {
		if !giveBack && !declined {
			declined = true
			return true
		}
		return false
	}
	collided := false
	n1.buyHook = func(src int, giveBack bool) bool {
		if giveBack && !collided {
			collided = true
			if err := n1.slots.BuyRun(1, 1); err != nil {
				t.Errorf("simulated re-acquisition: %v", err)
			}
		}
		return false
	}
	if !negotiateSync(t, c, 0, 3) {
		t.Fatal("negotiation failed after the declined give-back")
	}
	if !collided {
		t.Fatal("the give-back collision never happened")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("ownership broke after a declined give-back: %v", err)
	}
}

// TestLockManagerFIFO: contending acquisitions are granted strictly in
// arrival order by the node-0 lock manager.
func TestLockManagerFIFO(t *testing.T) {
	c := New(Config{Nodes: 5}, progs.NewImage())
	var grants []int
	// Node 1 takes the lock at t=0 and sits on it; nodes 2, 3, 4
	// request while it is held, in a scattered order.
	c.At(1, func(n *Node) {
		n.acquireLock(func() { grants = append(grants, 1) })
	})
	for i, at := range map[int]simtime.Time{3: 10, 2: 20, 4: 30} {
		i, at := i, at
		c.Engine().At(at*simtime.Microsecond, func() {
			c.At(i, func(n *Node) {
				n.acquireLock(func() {
					grants = append(grants, n.id)
					n.releaseLock()
				})
			})
		})
	}
	c.Engine().At(100*simtime.Microsecond, func() {
		c.At(1, func(n *Node) { n.releaseLock() })
	})
	c.Run(0)
	want := []int{1, 3, 2, 4}
	if len(grants) != len(want) {
		t.Fatalf("grants = %v", grants)
	}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("grant order = %v, want %v (FIFO by arrival)", grants, want)
		}
	}
	mgr := c.Node(0)
	if mgr.lockHeld || len(mgr.lockQueue) != 0 {
		t.Fatalf("lock manager not idle: held=%v queue=%d", mgr.lockHeld, len(mgr.lockQueue))
	}
}

// TestNegotiationRoundsExhausted: when every round's purchase is declined,
// the negotiation gives up after maxNegotiationRounds with done(false),
// the lock is released for the next contender, and the attempt still
// lands in the stats.
func TestNegotiationRoundsExhausted(t *testing.T) {
	c := New(Config{Nodes: 2}, progs.NewImage())
	declines := 0
	c.Node(1).buyHook = func(src int, giveBack bool) bool {
		if !giveBack {
			declines++
			return true
		}
		return false
	}
	if negotiateSync(t, c, 0, 2) {
		t.Fatal("negotiation succeeded against an always-declining seller")
	}
	if declines != maxNegotiationRounds {
		t.Fatalf("declines = %d, want %d", declines, maxNegotiationRounds)
	}
	st := c.Stats()
	if st.Negotiations != 1 || st.NegotiationFailures != 1 {
		t.Fatalf("stats not recorded: %+v", st)
	}
	// A failed attempt must not enter the latency series: the p50/p95/p99
	// percentiles describe successful protocol runs only.
	if len(st.NegotiationLatencies) != 0 {
		t.Fatalf("failed negotiation leaked %d latencies into the percentile series", len(st.NegotiationLatencies))
	}
	if st.NegotiationRetries != maxNegotiationRounds {
		t.Fatalf("retries = %d, want %d", st.NegotiationRetries, maxNegotiationRounds)
	}
	mgr := c.Node(0)
	if mgr.lockHeld || len(mgr.lockQueue) != 0 {
		t.Fatalf("lock not released after exhaustion: held=%v queue=%d", mgr.lockHeld, len(mgr.lockQueue))
	}
	// The lock is actually re-acquirable.
	granted := false
	c.At(1, func(n *Node) {
		n.acquireLock(func() {
			granted = true
			n.releaseLock()
		})
	})
	c.Run(0)
	if !granted {
		t.Fatal("lock could not be re-acquired after an exhausted negotiation")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHintSkipsEmptyPeer: a peer the initiator believes owns nothing is
// skipped by the batched gather — fewer messages, same successful
// outcome — and a slot-gaining mutation on a told-empty node fans out
// invalidation events that clear the stale beliefs.
func TestHintSkipsEmptyPeer(t *testing.T) {
	run := func(hinted bool) (msgs uint64, ok bool) {
		c := New(Config{Nodes: 3, Gather: GatherBatched}, progs.NewImage())
		c.Node(2).Slots().SurrenderAll() // node 2 owns nothing now
		if hinted {
			c.ReportLoads() // barrier refresh of every hint table
			if !c.Node(0).believesEmpty(2) {
				t.Fatal("empty node not believed empty after a load report")
			}
		}
		ok = negotiateSync(t, c, 0, 2)
		return c.Stats().Net.Messages, ok
	}
	withHint, ok1 := run(true)
	without, ok2 := run(false)
	if !ok1 || !ok2 {
		t.Fatal("negotiation failed")
	}
	if withHint >= without {
		t.Fatalf("hinted gather used %d messages, unhinted %d — the empty peer was not skipped", withHint, without)
	}
	// A slot-gaining mutation invalidates every outstanding belief so a
	// peer gaining slots is never skipped for more than a wire latency.
	c := New(Config{Nodes: 3, Gather: GatherBatched}, progs.NewImage())
	c.ReportLoads()
	if c.Node(0).believesEmpty(2) {
		t.Fatal("node with slots believed empty")
	}
	c.Node(2).Slots().SurrenderAll()
	c.ReportLoads()
	if !c.Node(0).believesEmpty(2) || !c.Node(1).believesEmpty(2) {
		t.Fatal("surrendered node not believed empty after a load report")
	}
	if err := c.Node(2).Slots().BuyRun(0, 1); err != nil {
		t.Fatal(err)
	}
	// The invalidation travels as control events one wire latency out.
	c.Run(0)
	if c.Node(0).believesEmpty(2) || c.Node(1).believesEmpty(2) {
		t.Fatal("belief survived a slot-gaining mutation")
	}
}
