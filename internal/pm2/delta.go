package pm2

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/layout"
	"repro/internal/madeleine"
)

// The delta gather (Config.Gather == GatherDelta): incremental,
// version-stamped bitmap exchange. PR 2's batched and tree gathers cut
// the wire term of the §4.4 negotiation, but the initiator still merges
// a full 7 KB map per peer per round. Here every node version-stamps its
// slot bitmap and journals the 64-bit words each ownership mutation
// dirtied (bitmap.Journal, fed from NodeSlots.SetOnChange); a
// negotiation initiator caches each peer's last-seen map plus version
// and asks only for the changes since then over chBitmapDelta. A peer
// replies:
//
//   - "unchanged" — the cached view is current; nothing shipped, nothing
//     merged;
//   - a word-indexed delta — the dirty words' absolute values, applied
//     onto the cached view and patched into the cached global OR in
//     place, charging merge cost on the delta bytes only;
//   - a full map — first contact, or the bounded journal truncated; the
//     cached view is replaced and the global OR rebuilt, at the same
//     cost a batched gather pays every round.
//
// Because every ownership mutation — local allocation, purchase,
// give-back, defragmentation install — bumps the owner's version, a
// cached view can never silently claim a slot the owner no longer has
// free: the next request's version mismatch ships the correction. The
// delta gather deliberately contacts every peer each round instead of
// hint-skipping: the "unchanged" reply is the pruning (a skipped peer's
// view would go stale and could plan doomed purchases forever), and it
// keeps every cached view coherent.

// deltaJournalWords bounds the per-node dirty-word journal. 64 words
// cover 4096 slots' worth of churn between two contacts by the same
// initiator; beyond that the journal truncates and the next request is
// answered with a full map — a pure bandwidth fallback.
const deltaJournalWords = 64

// deltaWordWireBytes is the wire footprint of one delta word: a u32
// word index plus the u64 word value.
const deltaWordWireBytes = 12

// chBitmapDelta reply statuses.
const (
	deltaReplyUnchanged uint32 = 0 // cached view is current
	deltaReplyWords     uint32 = 1 // word-indexed delta follows
	deltaReplyFull      uint32 = 2 // full map follows
)

// deltaPeerView is the initiator's cached knowledge of one peer: the
// last-seen bitmap and the version it corresponds to.
type deltaPeerView struct {
	known   bool
	version uint64
	bm      *bitmap.Bitmap
}

// gatherDelta runs one incremental gather round: every peer is asked
// for its bitmap changes since the cached version, the replies patch the
// cached views and global OR, and the purchase is planned on the result.
func (n *Node) gatherDelta(k, round int, done func(bool)) {
	if n.deltaPeers == nil {
		n.deltaPeers = make([]deltaPeerView, n.c.Nodes())
		n.deltaOr = bitmap.New(layout.SlotCount)
	}
	outstanding := 0
	for i := 0; i < n.c.Nodes(); i++ {
		if i != n.id && n.c.nodeAlive(i) {
			outstanding++
		}
	}
	if outstanding == 0 {
		n.planAndBuyDelta(k, round, done)
		return
	}
	for i := 0; i < n.c.Nodes(); i++ {
		if i == n.id || !n.c.nodeAlive(i) {
			continue
		}
		p := i
		known, version := n.deltaPeers[p].known, n.deltaPeers[p].version
		n.gatherCall(p, chBitmapDelta, func(b *madeleine.Buffer) {
			flag := uint32(0)
			if known {
				flag = 1
			}
			b.PackU32(flag).PackU64(version)
		}, func(reply *madeleine.Buffer) {
			n.applyDeltaReply(p, reply)
			outstanding--
			if outstanding == 0 {
				n.planAndBuyDelta(k, round, done)
			}
		}, func() {
			// Retries exhausted: plan on the cached view as-is. If the
			// peer's bitmap moved meanwhile, any purchase planned on the
			// stale view is declined and retried as usual.
			outstanding--
			if outstanding == 0 {
				n.planAndBuyDelta(k, round, done)
			}
		})
	}
}

// applyDeltaReply folds one peer's reply into the cached view and the
// cached global OR, charging merge cost on the bytes actually shipped.
func (n *Node) applyDeltaReply(p int, reply *madeleine.Buffer) {
	status := reply.U32()
	ver := reply.U64()
	view := &n.deltaPeers[p]
	switch status {
	case deltaReplyUnchanged:
		if view.bm == nil {
			panic(fmt.Sprintf("pm2: node %d claims unchanged on first contact", p))
		}
		// The cached view is current; nothing to merge.
	case deltaReplyWords:
		if view.bm == nil {
			panic(fmt.Sprintf("pm2: node %d sent a delta on first contact", p))
		}
		count := int(reply.U32())
		for i := 0; i < count; i++ {
			w := int(reply.U32())
			v := reply.U64()
			if w < 0 || w >= view.bm.Words() {
				panic(fmt.Sprintf("pm2: delta word %d from node %d out of range", w, p))
			}
			view.bm.SetWord(w, v)
			n.patchGlobalWord(w)
		}
		n.mergeCharge(count * deltaWordWireBytes)
	case deltaReplyFull:
		bm := n.unpackBitmap(p, reply)
		first := view.bm == nil
		view.bm = bm
		if first {
			n.deltaOr.Or(bm)
		} else {
			n.rebuildGlobalOr()
		}
		n.mergeCharge(layout.BitmapBytes)
	default:
		panic(fmt.Sprintf("pm2: bad delta-gather status %d from node %d", status, p))
	}
	if reply.Err() != nil {
		panic("pm2: corrupt delta-gather reply")
	}
	view.known = true
	view.version = ver
}

// patchGlobalWord recomputes one word of the cached global OR from the
// cached peer views — the in-place patch that replaces a full re-merge.
func (n *Node) patchGlobalWord(w int) {
	var or uint64
	for q := range n.deltaPeers {
		if q == n.id {
			continue
		}
		if bm := n.deltaPeers[q].bm; bm != nil {
			or |= bm.Word(w)
		}
	}
	n.deltaOr.SetWord(w, or)
}

// rebuildGlobalOr recomputes the cached global OR from scratch, needed
// only when a non-first-contact full map replaces a view (journal
// truncation) and stale bits may have to disappear.
func (n *Node) rebuildGlobalOr() {
	n.deltaOr = bitmap.New(layout.SlotCount)
	for q := range n.deltaPeers {
		if q == n.id {
			continue
		}
		if bm := n.deltaPeers[q].bm; bm != nil {
			n.deltaOr.Or(bm)
		}
	}
}

// planAndBuyDelta plans the purchase on the cached global view — own
// bitmap merged fresh, it is local and always current — and executes it
// through the same per-owner purchase path as the sequential and batched
// gathers, so declines and give-backs retry identically (and the retry's
// re-gather ships only the deltas the failed round caused).
func (n *Node) planAndBuyDelta(k, round int, done func(bool)) {
	// First-fit search over the global map (step 2d).
	n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
	own := n.slots.Bitmap().Clone()
	global := n.deltaOr.Clone()
	global.Or(own)
	maps := make([]*bitmap.Bitmap, n.c.Nodes())
	maps[n.id] = own
	for p := range n.deltaPeers {
		if p != n.id {
			maps[p] = n.deltaPeers[p].bm
		}
	}
	plan, ok := n.planOn(global, maps, k)
	if !ok {
		done(false)
		return
	}
	n.withRunLocks(plan.Start, plan.N, func() {
		n.executePurchase(k, round, plan, done)
	}, func() {
		// A shard manager timed out: nothing was secured, re-plan after
		// the usual backoff.
		n.retryAfterReturns(k, round, nil, done)
	})
}

// onBitmapDeltaCall serves the incremental gather: answer with nothing,
// the dirty words, or the full map, depending on what the journal still
// knows about the caller's cached version.
func (n *Node) onBitmapDeltaCall(src int, req *madeleine.Call) {
	known := req.Msg.U32()
	since := req.Msg.U64()
	if req.Msg.Err() != nil || known > 1 {
		panic("pm2: corrupt delta-gather request")
	}
	if n.journal == nil {
		panic("pm2: delta gather served by a node without a journal")
	}
	ver := n.journal.Version()
	if known == 1 {
		if words, ok := n.journal.WordsSince(since); ok {
			if len(words) == 0 {
				req.Reply(func(b *madeleine.Buffer) {
					b.PackU32(deltaReplyUnchanged).PackU64(ver)
				})
				return
			}
			bm := n.slots.Bitmap()
			n.actor.Charge(n.c.cfg.Model.Memcpy(len(words) * deltaWordWireBytes))
			req.Reply(func(b *madeleine.Buffer) {
				b.PackU32(deltaReplyWords).PackU64(ver)
				b.PackU32(uint32(len(words)))
				for _, w := range words {
					b.PackU32(uint32(w)).PackU64(bm.Word(w))
				}
			})
			return
		}
	}
	// First contact, or the journal truncated past the caller's version:
	// fall back to the full map, exactly as a batched gather ships it.
	raw := n.slots.Bitmap().Bytes()
	n.actor.Charge(n.c.cfg.Model.Memcpy(len(raw)))
	req.Reply(func(b *madeleine.Buffer) {
		b.PackU32(deltaReplyFull).PackU64(ver)
		b.PackBytes(raw)
	})
}
