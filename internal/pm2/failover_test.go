package pm2

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// mustPlan parses a fault-plan spec or fails the test.
func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", spec, err)
	}
	return p
}

// tickHeartbeats schedules periodic failure-detection rounds, standing in
// for an attached balancer (loadbal's round calls HeartbeatTick; its own
// integration test lives in internal/loadbal).
func tickHeartbeats(c *Cluster, period simtime.Time, rounds int) {
	for i := 1; i <= rounds; i++ {
		c.Engine().At(simtime.Time(i)*period, c.HeartbeatTick)
	}
}

// TestFailoverKillOneOf16 is the headline fault-tolerance scenario: a
// 16-node cluster running 32 workers loses node 3 mid-run. The lease
// expires after two missed heartbeats, every thread resident on the dead
// node is evacuated with zero TID loss, the dead rank's slots are
// reclaimed by the survivors, and a post-failover negotiation that must
// cross the reclaimed range succeeds — under all three arbiters, with
// traces byte-identical between the serial and parallel kernels.
func TestFailoverKillOneOf16(t *testing.T) {
	const (
		nodes   = 16
		threads = 32
		crashUs = 3000
		tick    = simtime.Millisecond
	)
	for _, arb := range []ArbiterMode{ArbiterGlobal, ArbiterSharded, ArbiterOptimistic} {
		traces := map[int]string{}
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("arbiter=%v/workers=%d", arb, workers)
			t.Run(name, func(t *testing.T) {
				cfg := Config{
					Nodes:   nodes,
					Arbiter: arb,
					Workers: workers,
					Faults:  mustPlan(t, fmt.Sprintf("crash:3@%d", crashUs)),
				}
				c := New(cfg, progs.NewImage())
				for i := 0; i < threads; i++ {
					c.Spawn(i%nodes, "worker", 20_000)
				}
				tickHeartbeats(c, tick, 40)

				// Census of the doomed node just before the crash.
				var doomed []uint32
				c.Engine().At(crashUs*simtime.Microsecond-1, func() {
					for _, th := range c.Node(3).Scheduler().Snapshot() {
						doomed = append(doomed, th.TID)
					}
				})
				c.Run(0)

				if len(doomed) == 0 {
					t.Fatal("workload finished before the crash; nothing was evacuated")
				}
				if !c.NodeDown(3) {
					t.Fatal("node 3 never declared dead")
				}
				s := c.Stats()
				if s.Evacuations != 1 || s.EvacuatedThreads != len(doomed) {
					t.Fatalf("evacuations = %d, evacuated threads = %d, want 1 and %d",
						s.Evacuations, s.EvacuatedThreads, len(doomed))
				}
				if len(s.EvacuationLatencies) != len(doomed) {
					t.Fatalf("evacuation latencies = %d, want %d", len(s.EvacuationLatencies), len(doomed))
				}
				// Crash at 3 ms, ticks every 1 ms: miss one at 3 ms, miss
				// two — the declaration — at 4 ms.
				if len(s.DetectionLatencies) != 1 || s.DetectionLatencies[0] != tick {
					t.Fatalf("detection latencies = %v, want [%v]", s.DetectionLatencies, tick)
				}
				if s.ReclaimedSlots == 0 {
					t.Fatal("no slots reclaimed from the dead rank")
				}
				if got := c.Node(3).Slots().Bitmap().Count(); got != 0 {
					t.Fatalf("dead node still owns %d free slots", got)
				}
				// Zero lost TIDs: every worker ran to completion somewhere.
				finished := 0
				for _, line := range c.Trace().Lines() {
					if strings.Contains(line, "finished on node") {
						finished++
						if strings.HasSuffix(line, "node 3") {
							// Finishing on node 3 before the crash is fine;
							// nothing may run there after it.
							continue
						}
					}
				}
				if finished != threads {
					t.Fatalf("%d workers finished, want %d:\n%s", finished, threads, c.Trace().String())
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatal(err)
				}

				// A negotiation crossing the reclaimed range: round-robin
				// distribution interleaves ranks slot by slot, so any
				// contiguous run of 16+ free slots includes former node-3
				// words — now version-bumped property of the survivors.
				ok := false
				c.At(0, func(n *Node) { n.Negotiate(24, func(r bool) { ok = r }) })
				c.Run(0)
				if !ok {
					t.Fatal("post-failover negotiation across the reclaimed range failed")
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("after reclaimed-range purchase: %v", err)
				}
				traces[workers] = c.Trace().String()
			})
			if t.Failed() {
				return
			}
		}
		if traces[1] != traces[4] {
			t.Fatalf("arbiter %v: failover trace differs between workers 1 and 4", arb)
		}
	}
}

const sleeperSrc = `
.program sleeper
.string fmt_awake "sleeper woke on node %d\n"
main:
    loadi r1, 50000
    callb sleep
    callb self_node
    mov   r2, r0
    loadi r1, fmt_awake
    callb printf
    halt
`

// TestFailoverEvacuatesBlockedSleeper pins the fail-stop semantics for
// blocked threads: a thread asleep on the dying node is evacuated like
// any resident and thaws runnable on its survivor — the local timer that
// would have woken it died with the node, and the armed wake must be
// dropped as stale rather than corrupt the dead scheduler's accounting.
func TestFailoverEvacuatesBlockedSleeper(t *testing.T) {
	im := progs.NewImage()
	asm.MustAssemble(im, sleeperSrc)
	cfg := Config{
		Nodes:  4,
		Faults: mustPlan(t, "crash:1@1000"),
	}
	c := New(cfg, im)
	c.Spawn(1, "sleeper", 0)
	tickHeartbeats(c, simtime.Millisecond, 10)
	c.Run(0)

	if !c.NodeDown(1) {
		t.Fatal("node 1 never declared dead")
	}
	s := c.Stats()
	if s.EvacuatedThreads != 1 {
		t.Fatalf("evacuated threads = %d, want 1", s.EvacuatedThreads)
	}
	want := "[node0] sleeper woke on node 0"
	found := false
	for _, line := range c.Trace().Lines() {
		if line == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("sleeper never resumed on its survivor:\n%s", c.Trace().String())
	}
	// CheckInvariants runs every scheduler's counter self-check: a
	// mishandled blocked-count or a stale wake that slipped through
	// shows up here.
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultPlanConfigValidation covers the configurations a fault plan
// refuses to compose with.
func TestFaultPlanConfigValidation(t *testing.T) {
	plan := mustPlan(t, "crash:1@1000")
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"relocation baseline", Config{Nodes: 4, Policy: PolicyRelocate, Faults: plan}, "iso-address"},
		{"single node", Config{Nodes: 1, Faults: mustPlan(t, "slow:0x2@0..1000")}, "two nodes"},
		{"negative lease", Config{Nodes: 4, HeartbeatMisses: -1}, "heartbeat"},
		{"rank out of range", Config{Nodes: 2, Faults: mustPlan(t, "crash:7@1000")}, "outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewChecked(tc.cfg, progs.NewImage()); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
