package pm2

import (
	"testing"

	"repro/internal/progs"
)

// TestDefragPublishesHints is the post-defragmentation hint regression:
// gathering surrenders and scattering replacement bitmaps must leave the
// coordinator's emptiness beliefs at ground truth, so a batched gather
// running right after DefragmentSync skips the peers the restructuring
// emptied instead of paying a round trip for an all-zero map.
func TestDefragPublishesHints(t *testing.T) {
	run := func(defrag bool) (msgs uint64, ok bool) {
		c := New(Config{Nodes: 4, Gather: GatherBatched}, progs.NewImage())
		// Node 3 surrenders everything up front: it brings no slots to
		// the defragmentation pool, so the restructuring hands it none.
		c.Node(3).Slots().SurrenderAll()
		if defrag {
			c.DefragmentSync(0)
			if !c.Node(0).believesEmpty(3) {
				t.Fatal("coordinator does not believe the emptied node empty right after defragmentation")
			}
			for _, full := range []int{1, 2} {
				if c.Node(0).believesEmpty(full) {
					t.Fatalf("coordinator believes node %d empty after the scatter handed it slots", full)
				}
			}
		}
		before := c.Stats().Net.Messages
		ok = negotiateSync(t, c, 0, 2)
		return c.Stats().Net.Messages - before, ok
	}
	withDefrag, ok1 := run(true)
	withoutDefrag, ok2 := run(false)
	if !ok1 || !ok2 {
		t.Fatal("negotiation failed")
	}
	if withDefrag >= withoutDefrag {
		t.Fatalf("post-defrag gather used %d messages, undefragged %d — the emptied peer was not skipped",
			withDefrag, withoutDefrag)
	}
}

// TestTreePartitionProperty is the exhaustive topology property: for
// every cluster size 1..33 and every root, the root's child subtrees
// plus the root itself partition the ranks — each rank in exactly one
// subtree — and the root's fan-out is ceil(log2 n).
func TestTreePartitionProperty(t *testing.T) {
	ceilLog2 := func(n int) int {
		k := 0
		for 1<<k < n {
			k++
		}
		return k
	}
	for n := 1; n <= 33; n++ {
		for root := 0; root < n; root++ {
			children := treeChildren(root, root, n)
			if got, want := len(children), ceilLog2(n); got != want {
				t.Fatalf("n=%d root=%d: fan-out %d, want ceil(log2 n) = %d", n, root, got, want)
			}
			seen := make([]int, n)
			seen[root]++
			for _, ch := range children {
				for _, r := range subtreeRanks(ch, root, n) {
					if r < 0 || r >= n {
						t.Fatalf("n=%d root=%d: subtree of %d names rank %d", n, root, ch, r)
					}
					seen[r]++
				}
			}
			for r, k := range seen {
				if k != 1 {
					t.Fatalf("n=%d root=%d: rank %d covered %d times — subtrees do not partition", n, root, r, k)
				}
			}
		}
	}
}
