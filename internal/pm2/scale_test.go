package pm2

import (
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/progs"
)

// TestThousandThreads exercises the §2 claim that a PM2 process copes with
// very large numbers of concurrent threads: 1000 workers across 4 nodes,
// created in bursts, all completing, with full invariant checks. (The paper
// speaks of tens of thousands per node; a thousand keeps the test fast
// while exercising the same paths — slot churn, scheduler fairness, cache.)
func TestThousandThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	const nThreads = 1000
	c := New(Config{Nodes: 4, Quantum: 128}, progs.NewImage())
	entry, _ := c.im.EntryOf("worker")
	for node := 0; node < 4; node++ {
		node := node
		c.At(node, func(n *Node) {
			for i := 0; i < nThreads/4; i++ {
				if _, err := n.sched.Create(entry, 500); err != nil {
					t.Errorf("create %d on node %d: %v", i, node, err)
					return
				}
			}
			n.kick()
		})
	}
	c.Run(0)
	lines := c.Trace().Lines()
	if len(lines) != nThreads {
		t.Fatalf("finished = %d, want %d", len(lines), nThreads)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every slot back with a node.
	total := 0
	for i := 0; i < 4; i++ {
		total += c.Node(i).Slots().OwnedFree()
	}
	if total != layout.SlotCount {
		t.Fatalf("slots accounted = %d", total)
	}
}

// TestSlotDonationAcrossNodes pins the §4.2 observation: "due to migration,
// a slot may be allocated on a node and released on another, so that the
// destination node may eventually acquire slots that it did not possess
// initially".
func TestSlotDonationAcrossNodes(t *testing.T) {
	im := progs.NewImage()
	mustAsm(im, `
.program donor
main:
    enter 4
    loadi r1, 4000
    callb isomalloc      ; allocated from node 0's slots
    store [fp-4], r1
    mov   r5, r0
    loadi r1, 1
    callb migrate        ; slots travel with us
    mov   r1, r5
    callb isofree        ; released on node 1: donated there
    halt
`)
	c := New(Config{Nodes: 2}, im)
	node0Before := c.Node(0).Slots().OwnedFree()
	node1Before := c.Node(1).Slots().OwnedFree()
	c.Spawn(0, "donor", 0)
	c.Run(0)
	node0After := c.Node(0).Slots().OwnedFree()
	node1After := c.Node(1).Slots().OwnedFree()
	// Node 0 lost at least the data slot (and the stack slot, released on
	// node 1 when the thread died there); node 1 gained them.
	if node0After >= node0Before {
		t.Fatalf("node 0: %d -> %d, expected a loss", node0Before, node0After)
	}
	if node1After <= node1Before {
		t.Fatalf("node 1: %d -> %d, expected a gain", node1Before, node1After)
	}
	if node0After+node1After != node0Before+node1Before {
		t.Fatal("slots leaked")
	}
	// Node 1 now owns slots whose index is even (initially node 0's under
	// round-robin).
	gained := false
	bm := c.Node(1).Slots().Bitmap()
	for i := 0; i < 100; i += 2 {
		if bm.Test(i) {
			gained = true
			break
		}
	}
	if !gained {
		t.Fatal("node 1 owns no initially-node-0 slot")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentNegotiationsSerialize: several threads on different nodes
// negotiate at once; the system-wide critical section serializes them and
// all succeed.
func TestConcurrentNegotiationsSerialize(t *testing.T) {
	c := New(Config{Nodes: 4}, progs.NewImage())
	for node := 0; node < 4; node++ {
		node := node
		c.At(node, func(n *Node) {
			th, err := n.sched.Create(mustEntry(c, "allocone"), 0)
			if err != nil {
				t.Error(err)
				return
			}
			th.Regs.R[1] = 150_000 // 3 slots: negotiation under RR
			n.kick()
		})
	}
	c.Run(0)
	st := c.Stats()
	if st.Negotiations != 4 {
		t.Fatalf("negotiations = %d, want 4", st.Negotiations)
	}
	// Later negotiations include lock queueing: latencies must be
	// strictly increasing when sorted by completion... at least the max
	// must exceed the min noticeably.
	min, max := st.NegotiationLatencies[0], st.NegotiationLatencies[0]
	for _, l := range st.NegotiationLatencies {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max <= min {
		t.Fatalf("expected queueing spread: min %v max %v", min, max)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultTraceForNonSegfault: non-memory faults (here: division by zero)
// are reported with the thread id rather than the SIGSEGV line.
func TestFaultTraceForNonSegfault(t *testing.T) {
	im := progs.NewImage()
	mustAsm(im, `
.program crashdiv
main:
    loadi r1, 3
    loadi r2, 0
    div   r3, r1, r2
    halt
`)
	c := New(Config{Nodes: 1}, im)
	c.Spawn(0, "crashdiv", 0)
	c.Run(0)
	lines := c.Trace().Lines()
	if len(lines) != 1 || !strings.Contains(lines[0], "killed") || !strings.Contains(lines[0], "division by zero") {
		t.Fatalf("trace = %q", lines)
	}
	// Slots reclaimed even after a fault.
	if c.Node(0).Slots().OwnedFree() != layout.SlotCount {
		t.Fatal("faulted thread leaked slots")
	}
}

// TestSleepBuiltin: pm2_sleep blocks a thread for virtual time without
// busy-waiting, and the wake order respects the sleep durations.
func TestSleepBuiltin(t *testing.T) {
	im := progs.NewImage()
	mustAsm(im, `
.program napper
.string fmt "woke %d at %d\n"
main:
    mov   r5, r1          ; sleep duration µs
    callb sleep
    callb clock
    mov   r3, r0
    mov   r2, r5
    loadi r1, fmt
    callb printf
    halt
`)
	c := New(Config{Nodes: 1}, im)
	c.Spawn(0, "napper", 900)
	c.Spawn(0, "napper", 300)
	c.Spawn(0, "napper", 600)
	c.Run(0)
	lines := c.Trace().Lines()
	if len(lines) != 3 {
		t.Fatalf("lines = %q", lines)
	}
	// Wake order follows durations, not spawn order.
	for i, prefix := range []string{"[node0] woke 300", "[node0] woke 600", "[node0] woke 900"} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Fatalf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
	// The 900µs sleeper woke at or after 900µs of virtual time.
	if c.Now() < 900*1000 {
		t.Fatalf("virtual end time %v too early", c.Now())
	}
}
