package pm2

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/madeleine"
)

// Global defragmentation (paper §4.4): "Notice also that the manipulation
// of the bitmaps on the local node may be completely arbitrary. ... It is
// also possible to completely restructure the slot distribution at the
// system level, for instance by grouping contiguous free slots as much as
// possible on the various nodes."
//
// Protocol, race-free by ownership transfer:
//
//  1. the coordinator enters the system-wide critical section;
//  2. it gathers every node's bitmap with surrender semantics — the reply
//     hands over all the node's free slots, leaving it with none (a node
//     that needs a slot meanwhile falls into the negotiation path, which
//     blocks on the same lock until the defragmentation completes);
//  3. core.PlanDefrag splits the pooled free slots into per-node
//     contiguous ranges sized by what each node surrendered;
//  4. the new bitmaps are scattered and installed;
//  5. the critical section is released.

// Service channels for defragmentation.
const (
	chSurrender uint32 = 8 // call: return bitmap and give up all free slots
	chInstall   uint32 = 9 // call: install a replacement bitmap
)

// Defragment triggers a global slot restructuring, coordinated by node
// coord. done (may be nil) runs on the coordinator when the protocol has
// completed.
func (c *Cluster) Defragment(coord int, done func()) {
	c.At(coord, func(n *Node) { n.defragment(done) })
}

// DefragmentSync runs Defragment and drives the engine until it completes.
func (c *Cluster) DefragmentSync(coord int) {
	fin := false
	c.Defragment(coord, func() { fin = true })
	for !fin && c.eng.Step() {
	}
	if !fin {
		panic("pm2: defragmentation never completed")
	}
}

func (n *Node) defragment(done func()) {
	model := n.c.cfg.Model
	n.acquireLock(func() {
		maps := make([]*bitmap.Bitmap, n.c.Nodes())
		maps[n.id] = n.slots.SurrenderAll()

		order := make([]int, 0, n.c.Nodes()-1)
		for i := 0; i < n.c.Nodes(); i++ {
			if i == n.id {
				continue
			}
			if !n.c.nodeAlive(i) {
				// A declared-dead rank surrendered everything at its
				// failover; it owns nothing and gets nothing back.
				maps[i] = bitmap.New(layout.SlotCount)
				continue
			}
			order = append(order, i)
		}
		var gather func(i int)
		gather = func(i int) {
			if i == len(order) {
				n.defragScatter(maps, done)
				return
			}
			peer := order[i]
			n.ep.Call(peer, chSurrender, nil, func(reply *madeleine.Buffer) {
				bm, err := bitmap.FromBytes(layout.SlotCount, reply.BytesSection())
				if err != nil {
					panic(fmt.Sprintf("pm2: bad surrendered bitmap from %d: %v", peer, err))
				}
				maps[peer] = bm
				// A surrendered peer owns nothing until the scatter
				// hands it a share back (the peer recorded that we were
				// told — see onSurrenderCall).
				if n.c.hintsOn() {
					n.noteBelief(peer, true)
				}
				n.actor.Charge(model.BitmapScan(layout.BitmapBytes))
				gather(i + 1)
			})
		}
		gather(0)
	})
}

func (n *Node) defragScatter(maps []*bitmap.Bitmap, done func()) {
	model := n.c.cfg.Model
	n.actor.Charge(model.BitmapScan(layout.BitmapBytes * len(maps)))
	newMaps := core.PlanDefrag(maps)

	if err := n.slots.ReplaceBitmap(newMaps[n.id]); err != nil {
		panic(err)
	}
	order := make([]int, 0, n.c.Nodes()-1)
	for i := 0; i < n.c.Nodes(); i++ {
		if i != n.id && n.c.nodeAlive(i) {
			order = append(order, i)
		}
	}
	var scatter func(i int)
	scatter = func(i int) {
		if i == len(order) {
			n.releaseLock()
			n.actor.Commit(func() { n.c.stats.Defragmentations++ })
			if done != nil {
				done()
			}
			return
		}
		peer := order[i]
		raw := newMaps[peer].Bytes()
		n.actor.Charge(model.Memcpy(len(raw)))
		n.ep.Call(peer, chInstall, func(b *madeleine.Buffer) {
			b.PackBytes(raw)
		}, func(*madeleine.Buffer) {
			// The restructured distribution is known exactly: a node
			// handed no slots stays believed-empty (and so skippable by
			// post-defrag gathers) without waiting for a load report.
			if n.c.hintsOn() {
				n.noteBelief(peer, newMaps[peer].Count() == 0)
			}
			scatter(i + 1)
		})
	}
	scatter(0)
}

// onSurrenderCall hands all free slots to a defrag coordinator. Like the
// chBitmap serve path, surrendering tells the coordinator we are empty:
// record it so a later slot-gaining mutation (normally the coordinator's
// own install) invalidates the belief.
func (n *Node) onSurrenderCall(src int, req *madeleine.Call) {
	given := n.slots.SurrenderAll()
	if n.c.hintsOn() {
		n.noteEmptyTold(src)
	}
	raw := given.Bytes()
	n.actor.Charge(n.c.cfg.Model.Memcpy(len(raw)))
	req.Reply(func(b *madeleine.Buffer) { b.PackBytes(raw) })
}

// onInstallCall installs a replacement bitmap from a defrag coordinator.
func (n *Node) onInstallCall(src int, req *madeleine.Call) {
	bm, err := bitmap.FromBytes(layout.SlotCount, req.Msg.BytesSection())
	if err != nil {
		panic(fmt.Sprintf("pm2: bad replacement bitmap: %v", err))
	}
	n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
	if err := n.slots.ReplaceBitmap(bm); err != nil {
		panic(err)
	}
	// A node handed no slots is still empty: the coordinator keeps
	// believing so, and the told-set must stay armed for the mutation
	// that eventually gives this node slots again.
	if n.c.hintsOn() && bm.Count() == 0 {
		n.noteEmptyTold(src)
	}
	// Threads that blocked on an empty bitmap can be retried now; they
	// are woken by their negotiation callbacks, which serialize behind
	// the same lock.
	req.Reply(nil)
}
