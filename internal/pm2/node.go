package pm2

import (
	"fmt"
	"strings"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/marcel"
	"repro/internal/simtime"
	"repro/internal/vm"
	"repro/internal/vmem"
)

// Addr is a simulated virtual address.
type Addr = layout.Addr

// Madeleine channels used by the runtime services.
const (
	chMigrate uint32 = 1 // one-way: packed thread
	chSpawn   uint32 = 2 // call: remote thread creation
	chLock    uint32 = 3 // call to node 0: system-wide critical section
	chUnlock  uint32 = 4 // one-way to node 0
	chBitmap  uint32 = 5 // call: gather a node's slot bitmap
	chBuy     uint32 = 6 // call: purchase a slot run from its owner

	chGatherTree  uint32 = 10 // call: OR-merge and return a binomial subtree's bitmaps
	chBitmapDelta uint32 = 11 // call: bitmap changes since a cached version (delta gather)
	chShardLock   uint32 = 12 // call to shard manager: one shard of the sharded arbiter
	chShardUnlock uint32 = 13 // one-way to shard manager
	chConvoy      uint32 = 14 // one-way: zero-copy thread convoy (Config.Convoy)
)

// Node is one PM2 node: a heavy container process with its own simulated
// address space, slot layer, heap, thread scheduler and Madeleine endpoint.
type Node struct {
	c     *Cluster
	id    int
	actor *simtime.Actor
	space *vmem.Space
	ep    *madeleine.Endpoint
	slots *core.NodeSlots
	sched *marcel.Scheduler
	heap  *heap.Heap

	// pumpPosted tracks whether a scheduler-run event is queued.
	pumpPosted bool

	// dead marks a crashed node (fault plan, see fault.go): the
	// scheduler pump is gated off, so events already queued on the lane
	// still fire but dispatch no further thread execution. Set by the
	// ambient crash barrier InstallFaults schedules.
	dead bool

	// Registered-pointer tables for the relocation baseline (§2):
	// tid → key → address of the registered pointer variable.
	regPtrs map[uint32]map[uint32]Addr
	nextKey uint32

	// lock manager state (only used on node 0, Config.Arbiter global).
	lockHeld  bool
	lockQueue []*madeleine.Call

	// Sharded-arbiter state. shardHeld/shardQueue are the manager half
	// for shards with shard mod n == id (allocated lazily on first
	// lock); heldShards lists the shards this node's own in-flight
	// negotiation has locked. negBusy/negQueue serialize this node's
	// own negotiations under the decentralized arbiters, replacing the
	// global queue on node 0 (see arbiter.go).
	shardHeld  map[int]bool
	shardQueue map[int][]*madeleine.Call
	heldShards []int
	negBusy    bool
	negQueue   []func()

	// Lane-affine gather-hint state (batched/tree gathers; see
	// gather.go). hintEmpty is the initiator half: this node's belief,
	// per peer, that the peer owns no free slots. emptyTold is the
	// server half: the peers this node has told "I am empty", with
	// emptyToldAny as its fast-path summary for the bitmap on-change
	// hook. Both allocated lazily.
	hintEmpty    []bool
	emptyTold    []bool
	emptyToldAny bool

	// gatherVersions records, per peer, the bitmap-journal version the
	// last full-map gather observed — what the optimistic arbiter
	// stamps into purchase messages (the delta gather tracks versions
	// in deltaPeers instead). Allocated lazily on first gather.
	gatherVersions []uint64

	// pendingGiveBacks counts give-back Calls whose reply has not yet
	// arrived; a new negotiation round must never start before it drops
	// to zero (see negotiateRound).
	pendingGiveBacks int

	// Delta-gather state (Config.Gather == GatherDelta; see delta.go).
	// journal is the server half: the version stamp and bounded
	// dirty-word journal of this node's own bitmap. deltaPeers and
	// deltaOr are the initiator half: the cached last-seen map+version
	// per peer and the cached global OR of those views, both allocated
	// lazily on the node's first negotiation.
	journal    *bitmap.Journal
	deltaPeers []deltaPeerView
	deltaOr    *bitmap.Bitmap

	// buyHook, when non-nil, runs before onBuyCall processes a request;
	// returning true declines the batch outright. Test-only seam for
	// deterministically interleaving racing allocations with the
	// negotiation retry path.
	buyHook func(src int, giveBack bool) (decline bool)

	// Migration-install scratch state, reused across messages so the
	// receive path stops allocating per group (see installGroups): the
	// first-touch page set and the span list handed to RebuildFreeList.
	touchScratch map[Addr]bool
	spanScratch  []core.Span

	// parked holds threads a checkpoint capture froze and detached, in
	// capture order — the order Resume (and a restore) re-enqueues
	// them, which is what keeps the two continuations byte-identical
	// (see checkpoint.go).
	parked []*marcel.Thread
}

func newNode(c *Cluster, id int) *Node {
	n := &Node{
		c:       c,
		id:      id,
		actor:   simtime.NewActor(c.eng, fmt.Sprintf("node%d", id)),
		space:   vmem.NewSpace(),
		regPtrs: make(map[uint32]map[uint32]Addr),
	}
	n.ep = madeleine.Attach(c.nw, id, n.actor)
	n.ep.SetPool(c.bufPool)
	n.slots = core.NewNodeSlots(n.space, n.actor, core.NodeConfig{
		NodeID:   id,
		NumNodes: c.cfg.Nodes,
		Dist:     c.cfg.Dist,
		CacheCap: c.cfg.CacheCap,
		Model:    c.cfg.Model,
	})
	n.sched = marcel.NewScheduler(n.space, c.im, n.slots, n.actor, marcel.Config{
		NodeID:  id,
		Quantum: c.cfg.Quantum,
		Model:   c.cfg.Model,
	})
	n.sched.SetEnv(n)
	n.sched.SetHooks(marcel.Hooks{
		Exit: func(t *marcel.Thread) {
			delete(n.regPtrs, t.TID)
			tid, at := t.TID, n.actor.Now()
			n.actor.Commit(func() { c.noteCohortExit(tid, at) })
		},
		Fault:   n.onFault,
		Migrate: n.migrateOut,
	})
	n.heap = heap.New(n.space, n.actor, c.cfg.Model)
	// Any ownership change — under the delta gather or the optimistic
	// arbiter — bumps the bitmap version and journals the dirtied
	// words, so purchases, give-backs and defrag installs all
	// invalidate cached remote views and stale optimistic plans. Under
	// the batched/tree gathers, a change that gives a told-empty node
	// slots again fans invalidation control events to the peers that
	// still believe it empty (gather.go). The paper-faithful sequential
	// gather under a locking arbiter never reads hints or versions, so
	// it skips the bookkeeping entirely.
	if c.cfg.Gather == GatherDelta || c.cfg.Arbiter == ArbiterOptimistic {
		n.journal = bitmap.NewJournal(deltaJournalWords)
	}
	if c.hintsOn() || n.journal != nil {
		n.slots.SetOnChange(func(start, count int) {
			if n.journal != nil {
				n.journal.NoteBits(start, count)
			}
			if n.emptyToldAny && n.slots.Bitmap().Count() > 0 {
				n.hintInvalidate()
			}
		})
	}

	// Map the replicated static data segment at the same address on
	// every node (paper rule 1).
	if data := c.im.DataImage(); len(data) > 0 {
		sz := int(layout.PageCeil(uint32(len(data))))
		if err := n.space.Mmap(layout.DataBase, sz); err != nil {
			panic(err)
		}
		if err := n.space.Write(layout.DataBase, data); err != nil {
			panic(err)
		}
	}

	n.ep.Handle(chMigrate, n.onMigrateMsg)
	n.ep.Handle(chConvoy, n.onConvoyMsg)
	n.ep.Handle(chRelocMigrate, n.onRelocMigrateMsg)
	n.ep.HandleCall(chSpawn, n.onSpawnCall)
	n.ep.HandleCall(chLock, n.onLockCall)
	n.ep.Handle(chUnlock, n.onUnlockMsg)
	n.ep.HandleCall(chBitmap, n.onBitmapCall)
	n.ep.HandleCall(chBuy, n.onBuyCall)
	n.ep.HandleCall(chGatherTree, n.onGatherTreeCall)
	n.ep.HandleCall(chBitmapDelta, n.onBitmapDeltaCall)
	n.ep.HandleCall(chShardLock, n.onShardLockCall)
	n.ep.Handle(chShardUnlock, n.onShardUnlockMsg)
	n.ep.HandleCall(chSurrender, n.onSurrenderCall)
	n.ep.HandleCall(chInstall, n.onInstallCall)
	return n
}

// ID returns the node's rank (pm2_self()).
func (n *Node) ID() int { return n.id }

// Space returns the node's simulated address space.
func (n *Node) Space() *vmem.Space { return n.space }

// Slots returns the node's slot layer.
func (n *Node) Slots() *core.NodeSlots { return n.slots }

// Scheduler returns the node's thread scheduler.
func (n *Node) Scheduler() *marcel.Scheduler { return n.sched }

// Heap returns the node's baseline malloc heap.
func (n *Node) Heap() *heap.Heap { return n.heap }

// Actor returns the node's CPU actor.
func (n *Node) Actor() *simtime.Actor { return n.actor }

// Kick ensures the scheduler keeps running while threads are ready; callers
// that create or wake threads from outside the builtin path (benchmarks,
// load balancers) call it after mutating the run queue.
func (n *Node) Kick() { n.kick() }

// Negotiate runs the §4.4 slot negotiation for k contiguous slots under
// the configured gather strategy and arbiter, calling done with the
// outcome. Exposed for benchmarks that drive the protocol directly; it
// must be called from within the node's actor (Cluster.At).
func (n *Node) Negotiate(k int, done func(bool)) { n.negotiate(k, done) }

// kick ensures a scheduler-run event is queued while threads are ready.
// One event runs one quantum, so message handling interleaves with thread
// execution at quantum granularity.
func (n *Node) kick() {
	if n.dead || n.pumpPosted || !n.sched.Ready() {
		return
	}
	n.pumpPosted = true
	n.actor.Post(n.actor.Now(), func() {
		n.pumpPosted = false
		if n.dead {
			return // crashed while the pump event was in flight
		}
		if n.sched.RunOne() {
			n.kick()
		}
	})
}

// onFault reports a dying thread the way the paper's traces do. The
// trace writes commit in merge order so the log bytes match a serial
// run at any worker count.
func (n *Node) onFault(t *marcel.Thread, err error) {
	tid := t.TID
	n.actor.Commit(func() {
		n.c.log.Flush(n.id)
		if vmem.IsSegfault(err) {
			n.c.log.Raw("Segmentation fault")
		} else {
			n.c.log.Raw(fmt.Sprintf("thread %#x killed: %v", tid, err))
		}
	})
	delete(n.regPtrs, t.TID)
}

// checkThreads runs the arena invariant checker over every resident
// thread, plus the scheduler's load-accounting self-check.
func (n *Node) checkThreads() error {
	if err := n.sched.CheckCounters(); err != nil {
		return fmt.Errorf("node %d: %w", n.id, err)
	}
	for _, t := range n.sched.Snapshot() {
		if err := core.CheckArena(n.space, t.HeadAddr()); err != nil {
			return fmt.Errorf("node %d thread %#x: %w", n.id, t.TID, err)
		}
	}
	return nil
}

// Builtin dispatches one runtime call (vm.Env). It runs inside the node's
// actor, during a scheduler quantum.
func (n *Node) Builtin(id uint32, args [4]uint32) vm.BuiltinResult {
	model := n.c.cfg.Model
	n.actor.Charge(model.Builtin())
	t := n.sched.Current()

	switch id {
	case isa.BIsomalloc:
		return n.doIsomalloc(t, args[0])

	case isa.BIsofree:
		if err := n.sched.Arena(t).Isofree(args[0], n.slots); err != nil {
			return vm.BuiltinResult{Ctl: vm.CtlFault, Err: err}
		}
		return vm.BuiltinResult{Ctl: vm.CtlReturn}

	case isa.BMalloc:
		start := n.actor.Now()
		addr, err := n.heap.Malloc(args[0])
		if n.c.cfg.RecordAllocs {
			sample := AllocSample{
				Node: n.id, Size: args[0], Iso: false,
				Latency: n.actor.Now() - start, OK: err == nil,
			}
			n.actor.Commit(func() {
				n.c.allocSamples = append(n.c.allocSamples, sample)
			})
		}
		if err != nil {
			return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: 0}
		}
		return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: addr}

	case isa.BFree:
		if err := n.heap.Free(args[0]); err != nil {
			return vm.BuiltinResult{Ctl: vm.CtlFault, Err: err}
		}
		return vm.BuiltinResult{Ctl: vm.CtlReturn}

	case isa.BMigrate:
		dest := int(args[0])
		if dest < 0 || dest >= n.c.Nodes() {
			return vm.BuiltinResult{Ctl: vm.CtlFault, Err: fmt.Errorf("pm2_migrate to invalid node %d", dest)}
		}
		if dest == n.id {
			return vm.BuiltinResult{Ctl: vm.CtlReturn}
		}
		return vm.BuiltinResult{Ctl: vm.CtlMigrate, Dest: dest}

	case isa.BSelfNode:
		return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: uint32(n.id)}

	case isa.BSelfThread:
		return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: t.Desc}

	case isa.BPrintf:
		return n.doPrintf(args)

	case isa.BYield:
		return vm.BuiltinResult{Ctl: vm.CtlYield}

	case isa.BExit:
		return vm.BuiltinResult{Ctl: vm.CtlExit}

	case isa.BSpawn:
		th, err := n.sched.Create(args[0], args[1])
		if err == nil {
			n.kick()
			return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: th.TID}
		}
		// The node ran out of slots: "the same algorithm may be used if
		// a node has run out of slots" (§4.4). Negotiate for one and
		// retry while the caller blocks.
		waiter := t
		n.sched.Block(waiter)
		n.createNegotiated(args[0], args[1], func(tid uint32) {
			n.sched.Wake(waiter, tid)
			n.kick()
		})
		return vm.BuiltinResult{Ctl: vm.CtlBlock}

	case isa.BSpawnRemote:
		dest := int(args[0])
		if dest < 0 || dest >= n.c.Nodes() {
			return vm.BuiltinResult{Ctl: vm.CtlFault, Err: fmt.Errorf("spawn_remote to invalid node %d", dest)}
		}
		if dest == n.id {
			th, err := n.sched.Create(args[1], args[2])
			if err != nil {
				return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: 0}
			}
			n.kick()
			return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: th.TID}
		}
		waiter := t
		n.sched.Block(waiter)
		n.spawnRemote(dest, args[1], args[2], func(tid uint32) {
			n.sched.Wake(waiter, tid)
			n.kick()
		})
		return vm.BuiltinResult{Ctl: vm.CtlBlock}

	case isa.BJoin:
		if n.sched.Join(t, args[0]) {
			return vm.BuiltinResult{Ctl: vm.CtlReturn}
		}
		return vm.BuiltinResult{Ctl: vm.CtlBlock}

	case isa.BNodeCount:
		return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: uint32(n.c.Nodes())}

	case isa.BClock:
		return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: uint32(n.actor.Now() / simtime.Microsecond)}

	case isa.BSleep:
		sleeper := t
		n.sched.Block(sleeper)
		n.actor.PostAfter(simtime.Time(args[0])*simtime.Microsecond, func() {
			n.sched.Wake(sleeper, 0)
			n.kick()
		})
		return vm.BuiltinResult{Ctl: vm.CtlBlock}

	case isa.BRegisterPtr:
		m := n.regPtrs[t.TID]
		if m == nil {
			m = make(map[uint32]Addr)
			n.regPtrs[t.TID] = m
		}
		n.nextKey++
		m[n.nextKey] = args[0]
		return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: n.nextKey}

	case isa.BUnregisterPtr:
		if m := n.regPtrs[t.TID]; m != nil {
			delete(m, args[0])
		}
		return vm.BuiltinResult{Ctl: vm.CtlReturn}
	}
	return vm.BuiltinResult{Ctl: vm.CtlFault, Err: fmt.Errorf("unknown builtin %d", id)}
}

// doIsomalloc serves pm2_isomalloc, falling back to the negotiation
// protocol when the local node lacks the contiguous slots (paper §4.4).
func (n *Node) doIsomalloc(t *marcel.Thread, size uint32) vm.BuiltinResult {
	start := n.actor.Now()
	record := func(latency simtime.Time, ok bool) {
		if n.c.cfg.RecordAllocs {
			sample := AllocSample{
				Node: n.id, Size: size, Iso: true, Latency: latency, OK: ok,
			}
			n.actor.Commit(func() {
				n.c.allocSamples = append(n.c.allocSamples, sample)
			})
		}
	}
	ar := n.sched.Arena(t)
	addr, err := ar.Isomalloc(size, n.slots)
	if err == nil {
		record(n.actor.Now()-start, true)
		return vm.BuiltinResult{Ctl: vm.CtlReturn, Ret: addr}
	}
	if err != core.ErrNoSlots {
		return vm.BuiltinResult{Ctl: vm.CtlFault, Err: err}
	}
	// Block the thread and negotiate for the required run.
	waiter := t
	n.sched.Block(waiter)
	n.negotiate(core.SlotsFor(size), func(ok bool) {
		var ret uint32
		if ok {
			if a, err := ar.Isomalloc(size, n.slots); err == nil {
				ret = a
			}
		}
		record(n.actor.Now()-start, ret != 0)
		n.sched.Wake(waiter, ret)
		n.kick()
	})
	return vm.BuiltinResult{Ctl: vm.CtlBlock}
}

// doPrintf formats and emits pm2_printf output.
func (n *Node) doPrintf(args [4]uint32) vm.BuiltinResult {
	format, err := n.space.ReadCString(args[0], 4096)
	if err != nil {
		return vm.BuiltinResult{Ctl: vm.CtlFault, Err: err}
	}
	text, err := n.formatVM(format, [3]uint32{args[1], args[2], args[3]})
	if err != nil {
		return vm.BuiltinResult{Ctl: vm.CtlFault, Err: err}
	}
	n.actor.Charge(n.c.cfg.Model.Probes(len(text)))
	n.actor.Commit(func() { n.c.log.Printf(n.id, text) })
	return vm.BuiltinResult{Ctl: vm.CtlReturn}
}

// formatVM implements the pm2_printf conversions: %d (signed), %u, %x,
// %p (bare 8-digit hex, as in the paper's thread ids), %s, %%.
func (n *Node) formatVM(format string, args [3]uint32) (string, error) {
	var out strings.Builder
	ai := 0
	next := func() uint32 {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return 0
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(format) {
			out.WriteByte('%')
			break
		}
		switch format[i] {
		case 'd':
			fmt.Fprintf(&out, "%d", int32(next()))
		case 'u':
			fmt.Fprintf(&out, "%d", next())
		case 'x':
			fmt.Fprintf(&out, "%x", next())
		case 'p':
			fmt.Fprintf(&out, "%08x", next())
		case 's':
			s, err := n.space.ReadCString(next(), 4096)
			if err != nil {
				return "", err
			}
			out.WriteString(s)
		case '%':
			out.WriteByte('%')
		default:
			out.WriteByte('%')
			out.WriteByte(format[i])
		}
	}
	return out.String(), nil
}

// onSpawnCall services remote thread creation (LRPC). If this node has run
// out of slots the reply is deferred through a one-slot negotiation (§4.4:
// the algorithm "simply enables a node to buy slots from some other
// nodes").
func (n *Node) onSpawnCall(src int, req *madeleine.Call) {
	entry := req.Msg.U32()
	arg := req.Msg.U32()
	th, err := n.sched.Create(entry, arg)
	if err == nil {
		n.kick()
		tid := th.TID
		req.Reply(func(b *madeleine.Buffer) { b.PackU32(tid) })
		return
	}
	r := req
	n.createNegotiated(entry, arg, func(tid uint32) {
		n.kick()
		r.Reply(func(b *madeleine.Buffer) { b.PackU32(tid) })
	})
}

// createNegotiated creates a thread after buying a slot through the
// negotiation protocol; done receives the tid (0 on failure).
func (n *Node) createNegotiated(entry, arg uint32, done func(tid uint32)) {
	n.negotiate(1, func(ok bool) {
		if !ok {
			done(0)
			return
		}
		th, err := n.sched.Create(entry, arg)
		if err != nil {
			done(0)
			return
		}
		done(th.TID)
	})
}
