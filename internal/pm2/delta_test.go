package pm2

import (
	"testing"

	"repro/internal/layout"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// TestDeltaGatherWarmRoundsShipDeltas is the point of the delta gather:
// the first negotiation pays the batched price (full maps, first
// contact), but from the second on the same initiator merges only the
// words that changed — orders of magnitude fewer bytes, and measurably
// less virtual time than a batched gather spends on the same workload.
func TestDeltaGatherWarmRoundsShipDeltas(t *testing.T) {
	run := func(gather GatherMode) (second simtime.Time, merged uint64) {
		c := New(Config{Nodes: 8, Gather: gather}, progs.NewImage())
		if !negotiateSync(t, c, 0, 3) {
			t.Fatalf("%s: first negotiation failed", gather)
		}
		if !negotiateSync(t, c, 0, 3) {
			t.Fatalf("%s: second negotiation failed", gather)
		}
		st := c.Stats()
		if st.Negotiations != 2 || len(st.NegotiationLatencies) != 2 {
			t.Fatalf("%s: stats %+v", gather, st)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", gather, err)
		}
		return st.NegotiationLatencies[1], st.GatherMergedBytes
	}
	batSecond, batMerged := run(GatherBatched)
	delSecond, delMerged := run(GatherDelta)

	// Both negotiations under batched merge a full map per peer: 2×7×7 KB.
	if want := uint64(2 * 7 * layout.BitmapBytes); batMerged != want {
		t.Fatalf("batched merged %d bytes, want %d", batMerged, want)
	}
	// Delta pays full maps once (first contact), then only dirty words.
	if delMerged >= batMerged*3/4 {
		t.Fatalf("delta merged %d bytes, not well below batched's %d", delMerged, batMerged)
	}
	if warmDelta := delMerged - 7*uint64(layout.BitmapBytes); warmDelta > 7*4*deltaWordWireBytes {
		t.Fatalf("warm delta round merged %d bytes — views are not incremental", warmDelta)
	}
	if delSecond >= batSecond {
		t.Fatalf("warm delta negotiation (%v) not cheaper than batched (%v)", delSecond, batSecond)
	}
}

// TestDeltaGatherTracksRemoteChanges: a peer whose bitmap changed
// between two negotiations must not be claimed from its stale cached
// view — the version bump forces a delta that removes the sold slots
// before planning. Exercised through a racing local allocation at the
// peer, which declines the purchase and must NOT decline again on the
// retry (the retry re-gathers deltas, so the second plan sees the
// truth).
func TestDeltaGatherTracksRemoteChanges(t *testing.T) {
	c := New(Config{Nodes: 4, Gather: GatherDelta}, progs.NewImage())
	fired := false
	n2 := c.Node(2)
	n2.buyHook = func(src int, giveBack bool) bool {
		if !giveBack && !fired {
			fired = true
			if err := n2.slots.AcquireAt(2, 1); err != nil {
				t.Errorf("racing allocation: %v", err)
			}
		}
		return false
	}
	if !negotiateSync(t, c, 0, 3) {
		t.Fatal("negotiation failed after the declined round")
	}
	if !fired {
		t.Fatal("the racing allocation never ran")
	}
	st := c.Stats()
	if st.NegotiationRetries == 0 {
		t.Fatal("the declined purchase did not register a retry")
	}
	if got := c.Node(0).pendingGiveBacks; got != 0 {
		t.Fatalf("%d give-backs still pending after the negotiation", got)
	}
	if c.Node(0).Slots().Bitmap().FindRun(3) < 0 {
		t.Fatal("initiator holds no contiguous 3-run after the retry")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaGatherJournalTruncationFallsBack: when a peer mutates more
// distinct bitmap words than its journal holds between two contacts,
// the journal truncates and the next request is served a full map — a
// bandwidth fallback that must leave the outcome correct. The scenario
// runs at workers 1 and 4 with identical merged-byte accounting: the
// truncation fallback is initiator-lane state, so it composes with the
// parallel kernel like everything else.
func TestDeltaGatherJournalTruncationFallsBack(t *testing.T) {
	warmByWorkers := make(map[int]uint64)
	for _, workers := range []int{1, 4} {
		warmByWorkers[workers] = deltaTruncationWarmBytes(t, workers)
	}
	if warmByWorkers[1] != warmByWorkers[4] {
		t.Fatalf("truncation-fallback merged bytes deviate across worker counts: workers=1 %d, workers=4 %d",
			warmByWorkers[1], warmByWorkers[4])
	}
}

func deltaTruncationWarmBytes(t *testing.T, workers int) uint64 {
	t.Helper()
	c := New(Config{Nodes: 4, Gather: GatherDelta, Workers: workers}, progs.NewImage())
	if !negotiateSync(t, c, 0, 2) {
		t.Fatal("first negotiation failed")
	}
	merged0 := c.Stats().GatherMergedBytes

	// Overflow node 1's journal: dirty more distinct words than it can
	// track (one slot every 64*4 bits spreads across > deltaJournalWords
	// words), through real ownership mutations.
	n1 := c.Node(1)
	done := false
	c.At(1, func(n *Node) {
		for w := 0; w < deltaJournalWords+8; w++ {
			// Slot w*256+5 is ≡1 mod 4 (node 1's under round-robin),
			// beyond the run the first negotiation bought, and each
			// iteration lands in a distinct bitmap word.
			slot := w*256 + 5
			if !n.slots.Bitmap().Test(slot) {
				t.Errorf("setup: node 1 does not own slot %d", slot)
			}
			if err := n.slots.SellRun(slot, 1); err != nil {
				t.Errorf("selling slot %d: %v", slot, err)
			}
			if err := n.slots.BuyRun(slot, 1); err != nil {
				t.Errorf("re-buying slot %d: %v", slot, err)
			}
		}
		done = true
	})
	c.Run(0)
	if !done {
		t.Fatal("journal overflow setup never ran")
	}
	if _, ok := n1.journal.WordsSince(0); ok {
		t.Fatal("journal did not truncate under overflow")
	}

	if !negotiateSync(t, c, 0, 2) {
		t.Fatal("negotiation after truncation failed")
	}
	// Node 1 must have served a full 7 KB map again; the other peers
	// shipped deltas or nothing.
	warm := c.Stats().GatherMergedBytes - merged0
	if warm < uint64(layout.BitmapBytes) {
		t.Fatalf("post-truncation round merged only %d bytes — no full-map fallback", warm)
	}
	if warm >= uint64(2*layout.BitmapBytes) {
		t.Fatalf("post-truncation round merged %d bytes — more than one full map", warm)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return warm
}

// TestDeltaGatherSeesDefragInstalls: a defragmentation rewrites every
// node's bitmap wholesale; the install bumps versions, so an initiator
// holding pre-defrag cached views must resync (via deltas or full maps)
// and plan on the restructured distribution without ever double-owning
// a slot.
func TestDeltaGatherSeesDefragInstalls(t *testing.T) {
	c := New(Config{Nodes: 4, Gather: GatherDelta}, progs.NewImage())
	if !negotiateSync(t, c, 0, 3) {
		t.Fatal("pre-defrag negotiation failed")
	}
	c.DefragmentSync(1)
	if !negotiateSync(t, c, 0, 3) {
		t.Fatal("post-defrag negotiation failed")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
