package pm2

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/policy"
	"repro/internal/simtime"
)

// The negotiation protocol (paper §4.4, step 2). When a node cannot satisfy
// a multi-slot allocation from its own bitmap, it:
//
//	(a) enters a system-wide critical section (lock manager on node 0);
//	(b) gathers the bitmaps of all other nodes;
//	(c) computes a global OR and first-fit searches it for the run;
//	(d) buys the non-local slots from their owners;
//	(e) the owners' bitmaps are updated by the purchase; the requester
//	    marks the bought slots in its own bitmap;
//	(f) exits the critical section.
//
// The per-node gather of the 7 KB bitmap dominates the cost, which is how
// the paper's "+165 µs per extra node" arises: the paper performs step (b)
// one peer at a time. Config.Gather makes the gather topology pluggable —
// sequential (paper-faithful), batched (one round of concurrent Calls), or
// a binomial combining tree (interior nodes OR their children's maps
// before forwarding one merged map up) — see gather.go.
//
// Because other nodes keep allocating slots locally while the section is
// held (the paper permits block allocation; we also allow slot allocation
// and handle the race), a purchase can be declined — the initiator then
// gives secured shares back, waits for every give-back to be acknowledged,
// and re-gathers with fresh bitmaps.

const maxNegotiationRounds = 8

// Purchase-channel operations (first word of every chBuy message).
const (
	opPurchase uint32 = 0 // buy explicit slot runs from their owner
	opGiveBack uint32 = 1 // return secured runs after a failed round
	opRangeBuy uint32 = 2 // buy the owner's intersection with a run
)

// negotiate acquires n contiguous slots into this node's bitmap and calls
// done(true), or done(false) if the cluster is out of contiguous space.
func (n *Node) negotiate(k int, done func(bool)) {
	start := n.actor.Now()
	finish := func(ok bool) {
		lat := n.actor.Now() - start
		n.actor.Commit(func() {
			n.c.stats.Negotiations++
			if ok {
				// Only successful negotiations enter the latency series the
				// percentiles summarize; a failure (round exhaustion, cluster
				// out of contiguous space) is counted on its own instead of
				// skewing the p50/p95/p99 columns.
				n.c.stats.NegotiationLatencies = append(n.c.stats.NegotiationLatencies, lat)
			} else {
				n.c.stats.NegotiationFailures++
			}
		})
		done(ok)
	}
	if n.c.cfg.Arbiter == ArbiterGlobal {
		// With a timeout configured, an unreachable lock manager fails
		// the negotiation instead of hanging this thread forever.
		n.acquireLockOr(func() {
			n.negotiateRound(k, 0, func(ok bool) {
				n.releaseLock()
				finish(ok)
			})
		}, func() { finish(false) })
		return
	}
	// Decentralized arbiters: no system-wide section. The node's own
	// negotiations still run one at a time through the local queue;
	// locking (sharded) or validation (optimistic) happens per round,
	// after planning — see arbiter.go.
	n.startLocalNegotiation(func() {
		n.negotiateRound(k, 0, func(ok bool) {
			n.finishLocalNegotiation()
			finish(ok)
		})
	})
}

// negotiateRound runs one gather/plan/buy attempt under the configured
// gather strategy.
func (n *Node) negotiateRound(k, round int, done func(bool)) {
	if n.pendingGiveBacks > 0 {
		// A round must see every give-back acknowledged, or its gather
		// could observe slots still marked sold at their sellers.
		panic(fmt.Sprintf("pm2: node %d started a negotiation round with %d give-backs in flight", n.id, n.pendingGiveBacks))
	}
	if round >= maxNegotiationRounds {
		done(false)
		return
	}
	switch n.c.cfg.Gather {
	case GatherBatched:
		n.gatherBatched(k, round, done)
	case GatherTree:
		if n.c.anyDown() {
			// A combining tree routed through a declared-dead interior
			// node would lose its whole subtree; after a failover the
			// gather degrades to the flat batched round.
			n.gatherBatched(k, round, done)
			return
		}
		n.gatherTree(k, round, done)
	case GatherDelta:
		n.gatherDelta(k, round, done)
	default:
		n.gatherSequential(k, round, done)
	}
}

// gatherSequential is the paper's step 2b verbatim: one bitmap Call per
// peer, each waiting for the previous reply. No hint is consulted, so the
// event sequence (and every golden trace) is byte-identical to the seed.
func (n *Node) gatherSequential(k, round int, done func(bool)) {
	maps := make([]*bitmap.Bitmap, n.c.Nodes())
	maps[n.id] = n.slots.Bitmap().Clone()

	order := make([]int, 0, n.c.Nodes()-1)
	for i := 0; i < n.c.Nodes(); i++ {
		if i != n.id && n.c.nodeAlive(i) {
			order = append(order, i)
		}
	}
	var gatherNext func(i int)
	gatherNext = func(i int) {
		if i == len(order) {
			n.planAndBuy(k, round, maps, done)
			return
		}
		peer := order[i]
		n.gatherCall(peer, chBitmap, nil, func(reply *madeleine.Buffer) {
			maps[peer] = n.unpackGathered(peer, reply)
			// Merging this bitmap into the global OR (step 2c is
			// incremental).
			n.mergeCharge(layout.BitmapBytes)
			gatherNext(i + 1)
		}, func() {
			// Retries exhausted: plan without this peer's slots.
			gatherNext(i + 1)
		})
	}
	gatherNext(0)
}

// gatherBatched fires the whole gather as one round of concurrent Calls:
// the replies' wire time overlaps, so the round costs roughly the slowest
// peer plus the initiator's per-reply merge work, instead of the sum of
// all round trips. Peers this node believes own nothing are skipped
// outright; a belief can be stale for up to a wire latency, so a failed
// plan after any skip re-runs the round with hints disabled before
// giving up.
func (n *Node) gatherBatched(k, round int, done func(bool)) {
	n.gatherBatchedFrom(k, round, true, done)
}

func (n *Node) gatherBatchedFrom(k, round int, useHints bool, done func(bool)) {
	maps := make([]*bitmap.Bitmap, n.c.Nodes())
	maps[n.id] = n.slots.Bitmap().Clone()

	skipped := false
	peers := make([]int, 0, n.c.Nodes()-1)
	for i := 0; i < n.c.Nodes(); i++ {
		if i == n.id || !n.c.nodeAlive(i) {
			continue
		}
		if useHints && n.believesEmpty(i) {
			skipped = true
			continue
		}
		peers = append(peers, i)
	}
	planFail := func() {
		if skipped {
			// A skipped peer may have gained slots after the belief
			// formed (its invalidation is at most a wire latency
			// behind): re-gather everything before concluding the
			// cluster is out of contiguous space.
			n.gatherBatchedFrom(k, round, false, done)
			return
		}
		done(false)
	}
	if len(peers) == 0 {
		n.planAndBuyOr(k, round, maps, done, planFail)
		return
	}
	outstanding := len(peers)
	for _, peer := range peers {
		p := peer
		n.gatherCall(p, chBitmap, nil, func(reply *madeleine.Buffer) {
			maps[p] = n.unpackGathered(p, reply)
			// The reply content is ground truth about the peer's
			// emptiness; the peer recorded who it told (emptyTold).
			n.noteBelief(p, maps[p].Count() == 0)
			n.mergeCharge(layout.BitmapBytes)
			outstanding--
			if outstanding == 0 {
				n.planAndBuyOr(k, round, maps, done, planFail)
			}
		}, func() {
			// Retries exhausted: plan without this peer's slots.
			outstanding--
			if outstanding == 0 {
				n.planAndBuyOr(k, round, maps, done, planFail)
			}
		})
	}
}

// gatherTree routes the gather through the binomial combining tree rooted
// at this node: each child returns the OR of its whole subtree, so the
// initiator receives O(log n) messages. Subtrees in which every member is
// believed to own nothing are pruned; a failed plan after any pruning
// re-runs the round with hints disabled before giving up. The merged map
// has no per-slot ownership, so the purchase proceeds as a range buy
// (planAndBuyRange).
func (n *Node) gatherTree(k, round int, done func(bool)) {
	n.gatherTreeFrom(k, round, true, done)
}

func (n *Node) gatherTreeFrom(k, round int, useHints bool, done func(bool)) {
	global := n.slots.Bitmap().Clone()
	children := treeChildren(n.id, n.id, n.c.Nodes())

	// Prune children whose entire subtree is believed empty.
	pruned := false
	live := children
	if useHints {
		live = children[:0]
		for _, child := range children {
			empty := true
			for _, r := range subtreeRanks(child, n.id, n.c.Nodes()) {
				if !n.believesEmpty(r) {
					empty = false
					break
				}
			}
			if !empty {
				live = append(live, child)
			} else {
				pruned = true
			}
		}
	}
	if len(live) == 0 {
		n.planAndBuyRange(k, round, global, useHints, pruned, done)
		return
	}
	outstanding := len(live)
	for _, child := range live {
		n.gatherCallScaled(child, chGatherTree, treeDeadlineScale(child, n.id, n.c.Nodes()), func(b *madeleine.Buffer) {
			b.PackU32(uint32(n.id)) // tree root
		}, func(reply *madeleine.Buffer) {
			if err := global.OrBytes(reply.BytesSection()); err != nil {
				panic(fmt.Sprintf("pm2: bad subtree bitmap: %v", err))
			}
			n.mergeCharge(layout.BitmapBytes)
			outstanding--
			if outstanding == 0 {
				n.planAndBuyRange(k, round, global, useHints, pruned, done)
			}
		}, func() {
			// Retries exhausted: the whole subtree contributes nothing
			// to this round's view.
			outstanding--
			if outstanding == 0 {
				n.planAndBuyRange(k, round, global, useHints, pruned, done)
			}
		})
	}
}

// treeDeadlineScale widens a tree-gather call's deadline by the height
// of the callee's subtree. An interior relay only replies after every
// child resolved — in the worst case rpcMaxAttempts timed-out tries
// plus backoffs against an unreachable grandchild — so the parent's
// patience must dominate the child's whole retry budget or one
// unreachable leaf cascades into the loss of every subtree above it.
// One factor of rpcMaxAttempts+1 per level covers attempts × the
// child's own (already scaled) deadline with margin for backoffs and
// merge charges.
func treeDeadlineScale(child, root, nodes int) int {
	size := len(subtreeRanks(child, root, nodes))
	scale := 1
	for size > 1 {
		scale *= rpcMaxAttempts + 1
		size >>= 1
	}
	return scale
}

// onGatherTreeCall serves an interior (or leaf) position of a combining
// tree: gather the children's subtree maps, OR them into our own bitmap,
// and forward one merged map up.
func (n *Node) onGatherTreeCall(src int, req *madeleine.Call) {
	root := int(req.Msg.U32())
	if req.Msg.Err() != nil || root < 0 || root >= n.c.Nodes() {
		panic("pm2: corrupt tree-gather request")
	}
	merged := n.slots.Bitmap().Clone()
	// An empty server publishes the fact to the gather's root: tree
	// replies travel to the parent, not the root, so the claim rides a
	// separate zero-charge control event. emptyTold arms the
	// invalidation fan-out for the next slot-gaining mutation.
	if root != n.id && merged.Count() == 0 {
		n.noteEmptyTold(root)
		rootNode := n.c.nodes[root]
		self := n.id
		n.actor.PostTo(rootNode.actor, n.actor.Now()+simtime.Time(n.c.cfg.Model.WireLatencyNs),
			func() { rootNode.noteBelief(self, true) })
	}
	reply := func() {
		raw := merged.Bytes()
		n.actor.Charge(n.c.cfg.Model.Memcpy(len(raw)))
		req.Reply(func(b *madeleine.Buffer) { b.PackBytes(raw) })
	}
	children := treeChildren(n.id, root, n.c.Nodes())
	if len(children) == 0 {
		reply()
		return
	}
	outstanding := len(children)
	for _, child := range children {
		n.gatherCallScaled(child, chGatherTree, treeDeadlineScale(child, root, n.c.Nodes()), func(b *madeleine.Buffer) {
			b.PackU32(uint32(root))
		}, func(sub *madeleine.Buffer) {
			if err := merged.OrBytes(sub.BytesSection()); err != nil {
				panic(fmt.Sprintf("pm2: bad subtree bitmap: %v", err))
			}
			n.mergeCharge(layout.BitmapBytes)
			outstanding--
			if outstanding == 0 {
				reply()
			}
		}, func() {
			// Retries exhausted: forward the merge without this subtree,
			// exactly as the initiator would.
			outstanding--
			if outstanding == 0 {
				reply()
			}
		})
	}
}

// mergeCharge charges the cost of folding bytes of gathered bitmap
// payload into a global view and accounts them in
// Stats.GatherMergedBytes — the merge term the delta gather attacks.
func (n *Node) mergeCharge(bytes int) {
	n.actor.Charge(n.c.cfg.Model.BitmapScan(bytes))
	n.actor.Commit(func() { n.c.stats.GatherMergedBytes += uint64(bytes) })
}

// unpackBitmap decodes a gathered bitmap reply.
func (n *Node) unpackBitmap(peer int, reply *madeleine.Buffer) *bitmap.Bitmap {
	bm, err := bitmap.FromBytes(layout.SlotCount, reply.BytesSection())
	if err != nil {
		panic(fmt.Sprintf("pm2: bad bitmap from node %d: %v", peer, err))
	}
	return bm
}

// unpackGathered decodes a chBitmap reply. Under the optimistic arbiter
// the reply leads with the peer's bitmap-journal version, recorded for
// stamping any purchase planned on this view. (The delta gather carries
// versions in its own envelope — see applyDeltaReply.)
func (n *Node) unpackGathered(peer int, reply *madeleine.Buffer) *bitmap.Bitmap {
	if n.c.cfg.Arbiter == ArbiterOptimistic {
		if n.gatherVersions == nil {
			n.gatherVersions = make([]uint64, n.c.Nodes())
		}
		n.gatherVersions[peer] = reply.U64()
	}
	return n.unpackBitmap(peer, reply)
}

// sellerVersion returns the bitmap-journal version of peer that the
// current plan's view corresponds to: the delta gather's cached view
// version, or the version the last full-map gather shipped.
func (n *Node) sellerVersion(peer int) uint64 {
	if n.c.cfg.Gather == GatherDelta {
		return n.deltaPeers[peer].version
	}
	if n.gatherVersions == nil {
		panic(fmt.Sprintf("pm2: node %d stamping a purchase with no gathered versions", n.id))
	}
	return n.gatherVersions[peer]
}

// purchaseCandidates bounds how many runs the decentralized planners
// enumerate before ranking them fewest-owners-first.
const purchaseCandidates = 4

// planAndBuy computes the purchase and executes it (paper steps 2c–2e).
// With PreBuySlots configured, a larger run is tried first, "to pre-buy
// slots in prevision of foreseeable large allocation requests" (§4.4).
func (n *Node) planAndBuy(k, round int, maps []*bitmap.Bitmap, done func(bool)) {
	n.planAndBuyOr(k, round, maps, done, func() { done(false) })
}

// planAndBuyOr is planAndBuy with an explicit plan-failure continuation,
// so gathers that skipped believed-empty peers can retry hint-free
// instead of reporting the cluster out of contiguous space.
func (n *Node) planAndBuyOr(k, round int, maps []*bitmap.Bitmap, done func(bool), planFail func()) {
	// First-fit search over the global map (step 2d).
	n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
	plan, ok := n.planOn(core.GlobalOr(maps), maps, k)
	if !ok {
		planFail()
		return
	}
	n.withRunLocks(plan.Start, plan.N, func() {
		n.executePurchase(k, round, plan, done)
	}, func() {
		// A shard manager timed out: nothing was secured, re-plan after
		// the usual backoff.
		n.retryAfterReturns(k, round, nil, done)
	})
}

// planOn chooses the purchase plan on a prepared global view,
// preferring the PreBuySlots-padded run when one exists.
func (n *Node) planOn(global *bitmap.Bitmap, maps []*bitmap.Bitmap, k int) (core.Purchase, bool) {
	if pre := n.c.cfg.PreBuySlots; pre > 0 {
		if plan, ok := n.planRun(global, maps, k+pre); ok {
			return plan, true
		}
	}
	return n.planRun(global, maps, k)
}

// planRun plans one purchase of k slots. The global arbiter keeps the
// paper's first fit verbatim; the decentralized arbiters search from
// this node's home origin and rank a handful of candidate runs
// fewest-owners-first through the cost model (internal/policy), then
// stamp each seller share with the bitmap version the plan saw when
// running optimistically.
func (n *Node) planRun(global *bitmap.Bitmap, maps []*bitmap.Bitmap, k int) (core.Purchase, bool) {
	if n.c.cfg.Arbiter == ArbiterGlobal {
		return core.PlanPurchaseOn(global, maps, k, n.id)
	}
	cands := core.PlanCandidatesOn(global, maps, k, n.id, n.homeOrigin(), purchaseCandidates)
	if len(cands) == 0 {
		return core.Purchase{}, false
	}
	plan := cands[policy.CheapestPurchase(cands, n.c.cfg.Model)]
	if n.c.cfg.Arbiter == ArbiterOptimistic {
		for i := range plan.Sellers {
			plan.Sellers[i].Version = n.sellerVersion(plan.Sellers[i].Node)
		}
	}
	return plan, true
}

// executePurchase carries out a planned purchase (paper step 2e): one
// atomic purchase message per seller, the initiator-side race check, and
// the give-back/retry path on any decline. Shared by the per-peer-map
// gathers (sequential, batched, delta).
func (n *Node) executePurchase(k, round int, plan core.Purchase, done func(bool)) {
	// Group the shares by owner: one purchase message per seller node
	// (paper 2e sends one updated bitmap back to each owner, not one
	// message per slot run).
	order := make([]int, 0, len(plan.Sellers))
	byNode := make(map[int][]core.SellerShare)
	for _, sh := range plan.Sellers {
		if _, seen := byNode[sh.Node]; !seen {
			order = append(order, sh.Node)
		}
		byNode[sh.Node] = append(byNode[sh.Node], sh)
	}

	var buyNext func(i int)
	buyNext = func(i int) {
		if i == len(order) {
			// All shares secured. Re-validate our own contribution to
			// the run before recording it: a racing local allocation
			// may have consumed one of our slots during the gather, in
			// which case the run is broken — give every secured share
			// back and retry with fresh bitmaps.
			if !n.ownShareIntact(plan) {
				var returns []pendingReturn
				for _, seller := range order {
					returns = append(returns, pendingReturn{seller: seller, shares: byNode[seller]})
				}
				n.retryAfterReturns(k, round, returns, done)
				return
			}
			// Mark the bought slots ours (paper 2d: "mark these slots
			// with 1 in the bitmap of the requesting node").
			for _, sh := range plan.Sellers {
				if err := n.slots.BuyRun(sh.Start, sh.N); err != nil {
					panic(fmt.Sprintf("pm2: recording purchase: %v", err))
				}
			}
			n.releaseRunLocks()
			done(true)
			return
		}
		seller := order[i]
		shares := byNode[seller]
		declined := func() {
			// The owner allocated some of those slots since the
			// gather: give already-secured shares straight back to
			// their sellers, and only once every give-back has been
			// acknowledged retry with fresh bitmaps — re-gathering
			// earlier could observe the returned slots at neither
			// party.
			var returns []pendingReturn
			for j := 0; j < i; j++ {
				returns = append(returns, pendingReturn{seller: order[j], shares: byNode[order[j]]})
			}
			n.retryAfterReturns(k, round, returns, done)
		}
		n.callRPC(seller, chBuy, func(b *madeleine.Buffer) {
			b.PackU32(opPurchase)
			if n.c.cfg.Arbiter == ArbiterOptimistic {
				// One version per message: every share bought from this
				// seller was planned on the same gathered view.
				b.PackU64(shares[0].Version)
			}
			packShares(b, shares)
		}, func(reply *madeleine.Buffer) {
			if reply.U32() == 1 {
				buyNext(i + 1)
				return
			}
			declined()
		}, declined, func(reply *madeleine.Buffer) {
			// A timeout reads as a decline, so an acceptance arriving
			// after it leaves the shares sold to a buyer that already
			// re-planned without them: return the orphans at once.
			if reply.U32() == 1 {
				n.compGiveBack(seller, shares)
			}
		})
	}
	buyNext(0)
}

// ownShareIntact reports whether every slot of the planned run that the
// plan attributed to this node (rather than to a seller) is still
// owned+free here — the initiator-side half of the purchase race check.
func (n *Node) ownShareIntact(plan core.Purchase) bool {
	for s := plan.Start; s < plan.Start+plan.N; s++ {
		sold := false
		for _, sh := range plan.Sellers {
			if s >= sh.Start && s < sh.Start+sh.N {
				sold = true
				break
			}
		}
		if !sold && !n.slots.Bitmap().Test(s) {
			return false
		}
	}
	return true
}

// pendingReturn is one seller's worth of secured shares to give back.
type pendingReturn struct {
	seller int
	shares []core.SellerShare
}

// retryAfterReturns gives every secured share back and re-runs the round
// only after all give-back replies arrived (the §4.4 retry/give-back
// ordering fix). Any shard locks the failed plan held are released
// first — the retry re-plans and may touch different shards — and the
// re-run waits out a deterministic per-attempt backoff, so two
// optimistic initiators declining each other's purchases re-plan at
// different virtual times instead of re-colliding forever, and the
// attempt count of any race is reproducible run to run.
func (n *Node) retryAfterReturns(k, round int, returns []pendingReturn, done func(bool)) {
	n.actor.Commit(func() { n.c.stats.NegotiationRetries++ })
	n.releaseRunLocks()
	retry := func() {
		if n.c.cfg.Arbiter == ArbiterGlobal {
			// Under the system-wide lock a retry can only be racing a
			// local allocation, which is finite: re-issue immediately,
			// keeping the paper-faithful path (and its goldens) intact.
			n.negotiateRound(k, round+1, done)
			return
		}
		n.actor.Post(n.actor.Now()+negotiationBackoff(round), func() {
			n.negotiateRound(k, round+1, done)
		})
	}
	if len(returns) == 0 {
		retry()
		return
	}
	outstanding := len(returns)
	for _, r := range returns {
		n.returnSlots(r.seller, r.shares, func() {
			outstanding--
			if outstanding == 0 {
				retry()
			}
		})
	}
}

// planAndBuyRange is the purchase step after a tree gather: the merged
// map names the run but not its owners, so every peer that may own slots
// is asked to sell its intersection with the chosen run. If the sold
// pieces plus our own free slots cover the run, the purchase stands;
// otherwise everything sold is given back and the round retries. When no
// run exists but the gather pruned believed-empty subtrees, the round
// re-runs hint-free instead of failing.
func (n *Node) planAndBuyRange(k, round int, global *bitmap.Bitmap, useHints, pruned bool, done func(bool)) {
	n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
	// The merged map has no per-slot ownership, so fewest-owners ranking
	// is impossible here; the decentralized arbiters still search from
	// the node's home origin (wrapping) to keep concurrent initiators in
	// disjoint regions.
	find := func(size int) int {
		if n.c.cfg.Arbiter == ArbiterGlobal {
			return global.FindRun(size)
		}
		if s := global.FindRunFrom(n.homeOrigin(), size); s >= 0 {
			return s
		}
		return global.FindRun(size)
	}
	size := 0
	start := -1
	if pre := n.c.cfg.PreBuySlots; pre > 0 {
		if s := find(k + pre); s >= 0 {
			start, size = s, k+pre
		}
	}
	if start < 0 {
		if s := find(k); s >= 0 {
			start, size = s, k
		}
	}
	if start < 0 {
		if pruned {
			// A pruned subtree may have gained slots after the beliefs
			// formed (invalidations are at most a wire latency behind):
			// re-gather everything before concluding the cluster is out
			// of contiguous space.
			n.gatherTreeFrom(k, round, false, done)
			return
		}
		done(false)
		return
	}

	peers := make([]int, 0, n.c.Nodes()-1)
	for i := 0; i < n.c.Nodes(); i++ {
		if i == n.id || !n.c.nodeAlive(i) || (useHints && n.believesEmpty(i)) {
			continue
		}
		peers = append(peers, i)
	}
	sold := make(map[int][]core.SellerShare)
	complete := func() {
		// Coverage check: our own free slots plus everything sold
		// must tile the whole run.
		covered := n.slots.Bitmap().Clone()
		for _, shares := range sold {
			for _, sh := range shares {
				covered.SetRun(sh.Start, sh.N)
			}
		}
		n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
		if covered.TestRun(start, size) {
			for _, peer := range peers {
				for _, sh := range sold[peer] {
					if err := n.slots.BuyRun(sh.Start, sh.N); err != nil {
						panic(fmt.Sprintf("pm2: recording range purchase: %v", err))
					}
				}
			}
			n.releaseRunLocks()
			done(true)
			return
		}
		// Some owner allocated part of the run since the gather: give
		// everything back and retry with a fresh gather.
		var returns []pendingReturn
		for _, peer := range peers {
			if len(sold[peer]) > 0 {
				returns = append(returns, pendingReturn{seller: peer, shares: sold[peer]})
			}
		}
		n.retryAfterReturns(k, round, returns, done)
	}
	n.withRunLocks(start, size, func() {
		if len(peers) == 0 {
			complete()
			return
		}
		outstanding := len(peers)
		for _, peer := range peers {
			p := peer
			n.callRPC(p, chBuy, func(b *madeleine.Buffer) {
				b.PackU32(opRangeBuy)
				b.PackU32(uint32(start)).PackU32(uint32(size))
			}, func(reply *madeleine.Buffer) {
				count := int(reply.U32())
				for i := 0; i < count; i++ {
					s := int(reply.U32())
					c := int(reply.U32())
					sold[p] = append(sold[p], core.SellerShare{Node: p, Start: s, N: c})
				}
				outstanding--
				if outstanding == 0 {
					complete()
				}
			}, func() {
				// Timeout reads as zero runs sold; the coverage check in
				// complete() handles any shortfall.
				outstanding--
				if outstanding == 0 {
					complete()
				}
			}, func(reply *madeleine.Buffer) {
				// The peer did sell after all, to a buyer that already
				// counted it as zero: return the orphaned runs at once.
				count := int(reply.U32())
				var orphans []core.SellerShare
				for i := 0; i < count; i++ {
					s := int(reply.U32())
					c := int(reply.U32())
					orphans = append(orphans, core.SellerShare{Node: p, Start: s, N: c})
				}
				if len(orphans) > 0 {
					n.compGiveBack(p, orphans)
				}
			})
		}
	}, func() {
		// A shard manager timed out: nothing was secured, re-plan after
		// the usual backoff.
		n.retryAfterReturns(k, round, nil, done)
	})
}

func packShares(b *madeleine.Buffer, shares []core.SellerShare) {
	b.PackU32(uint32(len(shares)))
	for _, sh := range shares {
		b.PackU32(uint32(sh.Start)).PackU32(uint32(sh.N))
	}
}

// returnSlots gives secured (but not yet recorded) shares back to their
// original owner after a failed round; done runs when the owner has
// acknowledged. If the owner declines the give-back (it re-acquired some
// of those slots in the meantime), we simply drop our claim: the owner
// keeps whatever it holds, and claiming the rest ourselves could
// double-own the collided slots. A declined give-back can park the
// non-collided slots out of circulation until the next defragmentation —
// a bounded loss in an already-pathological race, and strictly better
// than the crash it replaces.
func (n *Node) returnSlots(seller int, shares []core.SellerShare, done func()) {
	n.pendingGiveBacks++
	n.callRPC(seller, chBuy, func(b *madeleine.Buffer) {
		b.PackU32(opGiveBack)
		packShares(b, shares)
	}, func(reply *madeleine.Buffer) {
		_ = reply.U32()
		n.pendingGiveBacks--
		done()
	}, func() {
		// Timeout reads as acknowledged: the give-back either executed
		// (its late ack is ignored below) or was discarded at arrival,
		// which parks the slots at neither party — the same bounded loss
		// as a declined give-back, and strictly better than blocking the
		// next round forever on an unreachable seller.
		n.pendingGiveBacks--
		done()
	}, func(reply *madeleine.Buffer) {
		// Late ack after the timeout already advanced the round: the
		// slots are back with their owner, nothing more to do.
		_ = reply.U32()
	})
}

// onBitmapCall serves a gather request: serialize and return our bitmap.
// Under the optimistic arbiter the reply leads with the bitmap-journal
// version the map corresponds to, so the caller can stamp any purchase
// it plans on this view.
func (n *Node) onBitmapCall(src int, req *madeleine.Call) {
	bm := n.slots.Bitmap()
	// Serving a gather while owning nothing tells the initiator we are
	// empty (it derives the belief from the reply content); record who
	// was told so a later slot-gaining mutation can invalidate.
	if n.c.hintsOn() && bm.Count() == 0 {
		n.noteEmptyTold(src)
	}
	raw := bm.Bytes()
	n.actor.Charge(n.c.cfg.Model.Memcpy(len(raw)))
	req.Reply(func(b *madeleine.Buffer) {
		if n.c.cfg.Arbiter == ArbiterOptimistic {
			b.PackU64(n.journal.Version())
		}
		b.PackBytes(raw)
	})
}

// onBuyCall serves a purchase, give-back, or range purchase of slot runs.
// A purchase is atomic: either every requested run is still owned free
// and all are sold, or the whole batch is declined. A give-back is
// likewise atomic: if any returned run collides with slots we re-acquired
// in the meantime, the whole batch is declined (the giver keeps it) —
// a racing re-allocation must not crash the node.
func (n *Node) onBuyCall(src int, req *madeleine.Call) {
	op := req.Msg.U32()
	// The test seam runs before any branch so races can be injected
	// into every purchase flavor; a 0 reply reads as "declined" for a
	// purchase or give-back and as "zero runs sold" for a range buy.
	if n.buyHook != nil && n.buyHook(src, op == opGiveBack) {
		req.Reply(func(b *madeleine.Buffer) { b.PackU32(0) })
		return
	}
	if op == opRangeBuy {
		start := int(req.Msg.U32())
		k := int(req.Msg.U32())
		if req.Msg.Err() != nil || start < 0 || k <= 0 || start+k > layout.SlotCount {
			panic("pm2: corrupt range-purchase message")
		}
		n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
		sold, err := n.slots.SellIntersection(start, k)
		if err != nil {
			panic(fmt.Sprintf("pm2: node %d selling range [%d,+%d): %v", n.id, start, k, err))
		}
		req.Reply(func(b *madeleine.Buffer) {
			b.PackU32(uint32(len(sold)))
			for _, r := range sold {
				b.PackU32(uint32(r[0])).PackU32(uint32(r[1]))
			}
		})
		return
	}
	giveBack := op == opGiveBack
	planVersion, versioned := uint64(0), false
	if op == opPurchase && n.c.cfg.Arbiter == ArbiterOptimistic {
		planVersion, versioned = req.Msg.U64(), true
	}
	count := int(req.Msg.U32())
	type run struct{ start, k int }
	runs := make([]run, count)
	for i := range runs {
		runs[i] = run{int(req.Msg.U32()), int(req.Msg.U32())}
	}
	if req.Msg.Err() != nil {
		panic("pm2: corrupt purchase message")
	}
	decline := func() {
		req.Reply(func(b *madeleine.Buffer) { b.PackU32(0) })
	}
	// Updating the bitmap for the batch costs one scan, like installing
	// the returned bitmap of the paper's step 2e.
	n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
	if versioned && planVersion != n.journal.Version() {
		// The optimistic validation: the plan was computed against a
		// view of our bitmap that is no longer current. The journal
		// knows *which* words moved since the plan's version, so only a
		// mutation overlapping the requested runs makes the plan stale —
		// concurrent purchases in disjoint regions sail through. If the
		// bounded journal can no longer answer for that version, the
		// safe reading is "stale". A declined buyer gives secured shares
		// back and re-plans on a fresh view after its backoff.
		stale := true
		if words, ok := n.journal.WordsSince(planVersion); ok {
			stale = false
			for _, w := range words {
				for _, r := range runs {
					if r.start/64 <= w && w <= (r.start+r.k-1)/64 {
						stale = true
					}
				}
			}
		}
		if stale {
			n.actor.Commit(func() { n.c.noteVersionDecline(src) })
			decline()
			return
		}
	}
	if giveBack {
		for _, r := range runs {
			if !n.slots.CanBuyRun(r.start, r.k) {
				// We re-acquired some of those slots since selling
				// them (a racing purchase of our own): decline the
				// whole batch, the giver keeps the slots.
				decline()
				return
			}
		}
		for _, r := range runs {
			if err := n.slots.BuyRun(r.start, r.k); err != nil {
				panic(fmt.Sprintf("pm2: node %d taking back checked [%d,+%d): %v", n.id, r.start, r.k, err))
			}
		}
		req.Reply(func(b *madeleine.Buffer) { b.PackU32(1) })
		return
	}
	for _, r := range runs {
		if !n.slots.Bitmap().TestRun(r.start, r.k) {
			// We no longer own (all of) those slots: decline the
			// whole batch.
			decline()
			return
		}
	}
	for _, r := range runs {
		if err := n.slots.SellRun(r.start, r.k); err != nil {
			panic(fmt.Sprintf("pm2: node %d selling checked run: %v", n.id, err))
		}
	}
	req.Reply(func(b *madeleine.Buffer) { b.PackU32(1) })
}

// Lock manager (system-wide critical section), hosted on node 0.

func (n *Node) acquireLock(granted func()) {
	n.ep.Call(0, chLock, nil, func(*madeleine.Buffer) { granted() })
}

func (n *Node) releaseLock() {
	n.ep.Send(0, chUnlock, nil)
}

// onLockCall queues or grants the global lock (node 0 only).
func (n *Node) onLockCall(src int, req *madeleine.Call) {
	if n.id != 0 {
		panic("pm2: lock request at non-manager node")
	}
	if n.lockHeld {
		n.lockQueue = append(n.lockQueue, req)
		return
	}
	n.lockHeld = true
	req.Reply(nil)
}

// onUnlockMsg releases the lock and grants the next waiter (node 0 only).
func (n *Node) onUnlockMsg(src int, _ *madeleine.Buffer) {
	if !n.lockHeld {
		panic("pm2: unlock without lock")
	}
	if len(n.lockQueue) > 0 {
		next := n.lockQueue[0]
		n.lockQueue = n.lockQueue[:copy(n.lockQueue, n.lockQueue[1:])]
		next.Reply(nil)
		return
	}
	n.lockHeld = false
}
