package pm2

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/madeleine"
)

// The negotiation protocol (paper §4.4, step 2). When a node cannot satisfy
// a multi-slot allocation from its own bitmap, it:
//
//	(a) enters a system-wide critical section (lock manager on node 0);
//	(b) gathers the bitmaps of all other nodes, one by one;
//	(c) computes a global OR and first-fit searches it for the run;
//	(d) buys the non-local slots from their owners;
//	(e) the owners' bitmaps are updated by the purchase; the requester
//	    marks the bought slots in its own bitmap;
//	(f) exits the critical section.
//
// The per-node gather of the 7 KB bitmap dominates the cost, which is how
// the paper's "+165 µs per extra node" arises. Because other nodes keep
// allocating slots locally while the section is held (the paper permits
// block allocation; we also allow slot allocation and handle the race), a
// purchase can be declined — the initiator then re-gathers and retries.

const maxNegotiationRounds = 8

// negotiate acquires n contiguous slots into this node's bitmap and calls
// done(true), or done(false) if the cluster is out of contiguous space.
func (n *Node) negotiate(k int, done func(bool)) {
	start := n.actor.Now()
	finish := func(ok bool) {
		n.c.stats.Negotiations++
		n.c.stats.NegotiationLatencies = append(n.c.stats.NegotiationLatencies, n.actor.Now()-start)
		done(ok)
	}
	n.acquireLock(func() {
		n.negotiateRound(k, 0, func(ok bool) {
			n.releaseLock()
			finish(ok)
		})
	})
}

// negotiateRound runs one gather/plan/buy attempt.
func (n *Node) negotiateRound(k, round int, done func(bool)) {
	if round >= maxNegotiationRounds {
		done(false)
		return
	}
	maps := make([]*bitmap.Bitmap, n.c.Nodes())
	maps[n.id] = n.slots.Bitmap().Clone()

	// Gather the other nodes' bitmaps sequentially (paper step 2b).
	order := make([]int, 0, n.c.Nodes()-1)
	for i := 0; i < n.c.Nodes(); i++ {
		if i != n.id {
			order = append(order, i)
		}
	}
	var gatherNext func(i int)
	gatherNext = func(i int) {
		if i == len(order) {
			n.planAndBuy(k, round, maps, done)
			return
		}
		peer := order[i]
		n.ep.Call(peer, chBitmap, nil, func(reply *madeleine.Buffer) {
			raw := reply.BytesSection()
			bm, err := bitmap.FromBytes(layout.SlotCount, raw)
			if err != nil {
				panic(fmt.Sprintf("pm2: bad bitmap from node %d: %v", peer, err))
			}
			maps[peer] = bm
			// Merging this bitmap into the global OR (step 2c is
			// incremental).
			n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
			gatherNext(i + 1)
		})
	}
	gatherNext(0)
}

// planAndBuy computes the purchase and executes it (paper steps 2c–2e).
// With PreBuySlots configured, a larger run is tried first, "to pre-buy
// slots in prevision of foreseeable large allocation requests" (§4.4).
func (n *Node) planAndBuy(k, round int, maps []*bitmap.Bitmap, done func(bool)) {
	// First-fit search over the global map (step 2d).
	n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
	plan, ok := core.Purchase{}, false
	if pre := n.c.cfg.PreBuySlots; pre > 0 {
		plan, ok = planPurchase(maps, k+pre, n.id)
	}
	if !ok {
		plan, ok = planPurchase(maps, k, n.id)
	}
	if !ok {
		done(false)
		return
	}

	// Group the shares by owner: one purchase message per seller node
	// (paper 2e sends one updated bitmap back to each owner, not one
	// message per slot run).
	order := make([]int, 0, len(plan.Sellers))
	byNode := make(map[int][]core.SellerShare)
	for _, sh := range plan.Sellers {
		if _, seen := byNode[sh.Node]; !seen {
			order = append(order, sh.Node)
		}
		byNode[sh.Node] = append(byNode[sh.Node], sh)
	}

	var buyNext func(i int)
	buyNext = func(i int) {
		if i == len(order) {
			// All shares secured: mark the bought slots ours
			// (paper 2d: "mark these slots with 1 in the bitmap of
			// the requesting node").
			for _, sh := range plan.Sellers {
				if err := n.slots.BuyRun(sh.Start, sh.N); err != nil {
					panic(fmt.Sprintf("pm2: recording purchase: %v", err))
				}
			}
			done(true)
			return
		}
		seller := order[i]
		shares := byNode[seller]
		n.ep.Call(seller, chBuy, func(b *madeleine.Buffer) {
			b.PackU32(0) // purchase
			packShares(b, shares)
		}, func(reply *madeleine.Buffer) {
			if reply.U32() == 1 {
				buyNext(i + 1)
				return
			}
			// The owner allocated some of those slots since the
			// gather: give already-secured shares straight back
			// to their sellers and retry with fresh bitmaps.
			for j := 0; j < i; j++ {
				n.returnSlots(order[j], byNode[order[j]])
			}
			n.negotiateRound(k, round+1, done)
		})
	}
	buyNext(0)
}

func packShares(b *madeleine.Buffer, shares []core.SellerShare) {
	b.PackU32(uint32(len(shares)))
	for _, sh := range shares {
		b.PackU32(uint32(sh.Start)).PackU32(uint32(sh.N))
	}
}

// returnSlots gives secured (but not yet recorded) shares back to their
// original owner after a failed round.
func (n *Node) returnSlots(seller int, shares []core.SellerShare) {
	n.ep.Call(seller, chBuy, func(b *madeleine.Buffer) {
		b.PackU32(1) // give-back
		packShares(b, shares)
	}, func(*madeleine.Buffer) {})
}

// onBitmapCall serves a gather request: serialize and return our bitmap.
func (n *Node) onBitmapCall(src int, req *madeleine.Call) {
	raw := n.slots.Bitmap().Bytes()
	n.actor.Charge(n.c.cfg.Model.Memcpy(len(raw)))
	req.Reply(func(b *madeleine.Buffer) { b.PackBytes(raw) })
}

// onBuyCall serves a purchase (or give-back) of a batch of slot runs. A
// purchase is atomic: either every requested run is still owned free and
// all are sold, or the whole batch is declined.
func (n *Node) onBuyCall(src int, req *madeleine.Call) {
	giveBack := req.Msg.U32() == 1
	count := int(req.Msg.U32())
	type run struct{ start, k int }
	runs := make([]run, count)
	for i := range runs {
		runs[i] = run{int(req.Msg.U32()), int(req.Msg.U32())}
	}
	if req.Msg.Err() != nil {
		panic("pm2: corrupt purchase message")
	}
	// Updating the bitmap for the batch costs one scan, like installing
	// the returned bitmap of the paper's step 2e.
	n.actor.Charge(n.c.cfg.Model.BitmapScan(layout.BitmapBytes))
	if giveBack {
		for _, r := range runs {
			if err := n.slots.BuyRun(r.start, r.k); err != nil {
				panic(fmt.Sprintf("pm2: node %d taking back [%d,+%d): %v", n.id, r.start, r.k, err))
			}
		}
		req.Reply(func(b *madeleine.Buffer) { b.PackU32(1) })
		return
	}
	for _, r := range runs {
		if !n.slots.Bitmap().TestRun(r.start, r.k) {
			// We no longer own (all of) those slots: decline the
			// whole batch.
			req.Reply(func(b *madeleine.Buffer) { b.PackU32(0) })
			return
		}
	}
	for _, r := range runs {
		if err := n.slots.SellRun(r.start, r.k); err != nil {
			panic(fmt.Sprintf("pm2: node %d selling checked run: %v", n.id, err))
		}
	}
	req.Reply(func(b *madeleine.Buffer) { b.PackU32(1) })
}

// Lock manager (system-wide critical section), hosted on node 0.

func (n *Node) acquireLock(granted func()) {
	n.ep.Call(0, chLock, nil, func(*madeleine.Buffer) { granted() })
}

func (n *Node) releaseLock() {
	n.ep.Send(0, chUnlock, nil)
}

// onLockCall queues or grants the global lock (node 0 only).
func (n *Node) onLockCall(src int, req *madeleine.Call) {
	if n.id != 0 {
		panic("pm2: lock request at non-manager node")
	}
	if n.lockHeld {
		n.lockQueue = append(n.lockQueue, req)
		return
	}
	n.lockHeld = true
	req.Reply(nil)
}

// onUnlockMsg releases the lock and grants the next waiter (node 0 only).
func (n *Node) onUnlockMsg(src int, _ *madeleine.Buffer) {
	if !n.lockHeld {
		panic("pm2: unlock without lock")
	}
	if len(n.lockQueue) > 0 {
		next := n.lockQueue[0]
		n.lockQueue = n.lockQueue[:copy(n.lockQueue, n.lockQueue[1:])]
		next.Reply(nil)
		return
	}
	n.lockHeld = false
}

func planPurchase(maps []*bitmap.Bitmap, k, requester int) (core.Purchase, bool) {
	return core.PlanPurchase(maps, k, requester)
}
