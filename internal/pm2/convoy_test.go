package pm2

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// holdPatternSrc isomallocs r1 bytes, fills them with a thread-unique
// word pattern (seeded from the tid), then parks in a yield loop. The
// loop leaves registers and stack at the same values every iteration, so
// a thread frozen at any scheduling boundary has a time-invariant image —
// which is what lets the property test compare a convoy freeze against k
// staggered sequential freezes byte for byte.
const holdPatternSrc = `
.program holdpattern
main:
    enter 8
    store [fp-4], r1        ; size
    callb isomalloc
    store [fp-8], r0
    callb self_thread
    mov   r3, r0            ; pattern seed = tid
    load  r2, [fp-8]        ; p
    load  r4, [fp-4]
    add   r4, r2, r4        ; end
fill:
    bgeu  r2, r4, park
    store [r2], r3
    addi  r3, r3, 1
    addi  r2, r2, 4
    br    fill
park:
    callb yield
    br    park
`

// convoyImages stages k holdpattern threads on node 0, moves them all to
// node 1 — as one convoy or as k individual migrations — and returns each
// thread's full post-migration slot image (concatenated groups, read the
// instant the batch completes, before any destination quantum runs).
func convoyImages(t *testing.T, k int, pack PackMode, convoy bool) map[uint32][]byte {
	t.Helper()
	im := progs.NewImage()
	asm.MustAssemble(im, holdPatternSrc)
	c := New(Config{Nodes: 2, Pack: pack, Convoy: convoy, Dist: core.Partition{}}, im)
	entry, ok := im.EntryOf("holdpattern")
	if !ok {
		t.Fatal("holdpattern not registered")
	}
	for i := 0; i < k; i++ {
		size := uint32(3000 + 4096*i)
		c.At(0, func(n *Node) {
			if _, err := n.sched.Create(entry, size); err != nil {
				t.Errorf("create: %v", err)
			}
			n.kick()
		})
	}
	// Let every thread finish its fill and settle into the yield loop.
	c.RunFor(20 * simtime.Millisecond)

	var tids []uint32
	c.At(0, func(n *Node) {
		for _, th := range n.sched.Snapshot() {
			tids = append(tids, th.TID)
		}
	})
	if convoy {
		c.At(0, func(n *Node) {
			if moved := n.MigrateBatch(tids, 1); moved != k {
				t.Errorf("MigrateBatch moved %d of %d", moved, k)
			}
		})
	} else {
		c.At(0, func(n *Node) {
			for _, tid := range tids {
				if !n.sched.RequestMigration(tid, 1) {
					t.Errorf("thread %#x not found for migration", tid)
				}
			}
		})
	}
	for c.Stats().Migrations < k {
		if !c.Engine().Step() {
			t.Fatal("engine drained before the batch completed")
		}
	}
	if len(tids) != k {
		t.Fatalf("staged %d threads, want %d", len(tids), k)
	}

	// Read the images on the destination and validate pointer integrity:
	// every arena must pass its structural checks at the same addresses,
	// and the cluster-wide iso-address invariants must hold.
	dst := c.Node(1)
	images := make(map[uint32][]byte, k)
	for _, tid := range tids {
		th, ok := dst.sched.Lookup(tid)
		if !ok {
			t.Fatalf("thread %#x did not arrive on node 1", tid)
		}
		groups, err := dst.sched.Arena(th).Groups()
		if err != nil {
			t.Fatalf("thread %#x groups: %v", tid, err)
		}
		var img []byte
		for _, g := range groups {
			raw, err := dst.space.ReadBytes(g.Base, g.NSlots*layout.SlotSize)
			if err != nil {
				t.Fatalf("thread %#x group %#08x: %v", tid, g.Base, err)
			}
			img = append(img, raw...)
		}
		if err := core.CheckArena(dst.space, th.HeadAddr()); err != nil {
			t.Fatalf("thread %#x arena after migration: %v", tid, err)
		}
		images[tid] = img
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if convoy {
		if st := c.Stats(); st.Convoys != 1 {
			t.Fatalf("batch used %d convoy messages, want 1", st.Convoys)
		}
	}
	return images
}

// TestConvoyMatchesSequentialMigrations is the convoy correctness
// property: a k-thread convoy must produce byte-identical post-migration
// slot images — descriptor, stack, every isomalloc'd span, rebuilt free
// lists included — and identical pointer-integrity results, compared with
// the same k threads migrated by k sequential messages. Checked under
// both packing modes; used-blocks packing also exercises the free-list
// rebuild on the convoy path.
func TestConvoyMatchesSequentialMigrations(t *testing.T) {
	const k = 3
	for _, pack := range []PackMode{PackUsed, PackWhole} {
		t.Run(pack.String(), func(t *testing.T) {
			sequential := convoyImages(t, k, pack, false)
			convoy := convoyImages(t, k, pack, true)
			if len(sequential) != k || len(convoy) != k {
				t.Fatalf("image sets: sequential %d, convoy %d, want %d", len(sequential), len(convoy), k)
			}
			for tid, want := range sequential {
				got, ok := convoy[tid]
				if !ok {
					t.Fatalf("thread %#x missing from convoy run", tid)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("thread %#x: convoy slot image differs from sequential (%d vs %d bytes)",
						tid, len(got), len(want))
				}
			}
		})
	}
}

// TestConvoySingleMessageAccounting: a k-thread convoy is one wire
// message; the per-thread messages of the legacy path cost k. Payload
// accounting (Stats.MigratedBytes) must agree between the two paths.
func TestConvoySingleMessageAccounting(t *testing.T) {
	run := func(convoy bool) (msgs uint64, migrated uint64) {
		im := progs.NewImage()
		asm.MustAssemble(im, holdPatternSrc)
		c := New(Config{Nodes: 2, Convoy: convoy, Dist: core.Partition{}}, im)
		entry, _ := im.EntryOf("holdpattern")
		const k = 4
		for i := 0; i < k; i++ {
			c.At(0, func(n *Node) {
				if _, err := n.sched.Create(entry, 5000); err != nil {
					t.Errorf("create: %v", err)
				}
				n.kick()
			})
		}
		c.RunFor(10 * simtime.Millisecond)
		var tids []uint32
		c.At(0, func(n *Node) {
			for _, th := range n.sched.Snapshot() {
				tids = append(tids, th.TID)
			}
		})
		pre := c.Stats().Net.Messages
		c.At(0, func(n *Node) {
			if convoy {
				n.MigrateBatch(tids, 1)
				return
			}
			for _, tid := range tids {
				n.sched.RequestMigration(tid, 1)
			}
		})
		for c.Stats().Migrations < k {
			if !c.Engine().Step() {
				t.Fatal("engine drained early")
			}
		}
		st := c.Stats()
		return st.Net.Messages - pre, st.MigratedBytes
	}
	seqMsgs, seqBytes := run(false)
	convMsgs, convBytes := run(true)
	if seqMsgs != 4 {
		t.Fatalf("sequential batch used %d messages, want 4", seqMsgs)
	}
	if convMsgs != 1 {
		t.Fatalf("convoy batch used %d messages, want 1", convMsgs)
	}
	if seqBytes != convBytes {
		t.Fatalf("migrated payload differs: sequential %d B, convoy %d B", seqBytes, convBytes)
	}
}

// pingPongRun drives one ping-pong cluster to completion; the shared body
// of the zero-copy and allocation measurements below.
func pingPongRun(hops int, payload uint32, convoy bool) Stats {
	im := progs.NewImage()
	c := New(Config{Nodes: 2, Convoy: convoy}, im)
	prog := "pingpong"
	if payload > 0 {
		prog = "pingpongdata"
	}
	entry, _ := im.EntryOf(prog)
	c.At(0, func(n *Node) {
		th, err := n.sched.Create(entry, uint32(hops))
		if err != nil {
			panic(err)
		}
		th.Regs.R[2] = payload
		n.kick()
	})
	c.Run(0)
	st := c.Stats()
	if st.Migrations != hops {
		panic(fmt.Sprintf("pingPongRun: %d migrations, want %d", st.Migrations, hops))
	}
	return st
}

// TestZeroCopyPingPongReduction pins the headline acceptance figure: at a
// one-slot (64 KB) payload, the zero-copy pipeline must cut the ping-pong
// migration latency by at least 30% versus the copying path.
func TestZeroCopyPingPongReduction(t *testing.T) {
	legacy := pingPongRun(20, 64<<10, false).AvgMigrationMicros()
	zc := pingPongRun(20, 64<<10, true).AvgMigrationMicros()
	if zc >= legacy {
		t.Fatalf("zero-copy (%.1fµs) not below legacy (%.1fµs)", zc, legacy)
	}
	if reduction := 1 - zc/legacy; reduction < 0.30 {
		t.Fatalf("zero-copy reduction %.1f%% below the 30%% target (legacy %.1fµs, zero-copy %.1fµs)",
			100*reduction, legacy, zc)
	}
}

// TestMigrationBufferPoolReuse is the allocation guard for the buffer
// half of the pipeline: on a 50-hop ping-pong, the cluster's Madeleine
// pool must serve nearly every outgoing buffer from reuse — only the
// pool's warm-up misses may allocate. The counters are deterministic per
// run (the pool is per-cluster), so an exact ceiling holds.
func TestMigrationBufferPoolReuse(t *testing.T) {
	for _, convoy := range []bool{false, true} {
		im := progs.NewImage()
		c := New(Config{Nodes: 2, Convoy: convoy}, im)
		entry, _ := im.EntryOf("pingpong")
		c.At(0, func(n *Node) {
			if _, err := n.sched.Create(entry, 50); err != nil {
				t.Fatal(err)
			}
			n.kick()
		})
		c.Run(0)
		gets, hits := c.BufferPoolStats()
		if gets < 100 {
			t.Fatalf("convoy=%v: pool saw only %d gets — migration sends are not pooled", convoy, gets)
		}
		if misses := gets - hits; misses > 4 {
			t.Fatalf("convoy=%v: %d pool misses in %d gets — steady state still allocates", convoy, misses, gets)
		}
	}
}

// TestMigrationAllocationGuard pins the host-side allocation win of the
// pooled, borrowed-section data path: the marginal Go allocations per
// ping-pong hop must stay under a ceiling far below what the triple-copy
// path cost (measured ≈95 allocs/hop before pooling; ≈35 after). Measured
// as a long-run/short-run difference so cluster construction cancels out.
func TestMigrationAllocationGuard(t *testing.T) {
	perHop := func(convoy bool) float64 {
		const short, long = 10, 110
		base := testing.AllocsPerRun(3, func() { pingPongRun(short, 0, convoy) })
		full := testing.AllocsPerRun(3, func() { pingPongRun(long, 0, convoy) })
		return (full - base) / float64(long-short)
	}
	const ceiling = 60.0
	if got := perHop(false); got > ceiling {
		t.Fatalf("legacy path allocates %.1f/hop, ceiling %.0f", got, ceiling)
	}
	if got := perHop(true); got > ceiling {
		t.Fatalf("zero-copy path allocates %.1f/hop, ceiling %.0f", got, ceiling)
	}
}
