package pm2

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/marcel"
	"repro/internal/simtime"
)

// Fault tolerance: node death, thread evacuation, slot reclaim.
//
// The paper's cluster is failure-free; this file adds the fail-stop model
// operators actually run under. A fault plan (internal/fault) schedules
// crash, partition and slow-node events in virtual time:
//
//   - a crash is fail-stop with a recoverable image: at the crash instant
//     the node's scheduler pump is gated off (its lane drains to a
//     tombstone — already-queued events still fire but dispatch no
//     further work), and every message whose delivery would land on the
//     dead node is dropped at the wire (bip.FaultPolicy). The node's
//     simulated memory stays readable, which is what makes evacuation
//     possible: the survivors recover the resident thread images over
//     the interconnect, as a checkpoint-on-peer scheme would.
//   - detection is a lease piggybacked on the load-report heartbeat: the
//     balancer's periodic round calls Cluster.HeartbeatTick, a crashed
//     node misses its report, and Config.HeartbeatMisses consecutive
//     misses expire the lease — the node is declared dead.
//   - declaration triggers evacuation and reclaim (declareDead below):
//     the dead node's resident threads are frozen in place, convoyed to
//     the survivors round-robin, and thawed there; the dead rank's
//     owned-free slots are surrendered and re-dealt to the survivors.
//     Every reclaimed run lands through NodeSlots.BuyRun on its new
//     owner, firing the owner's bitmap on-change hook — the journal
//     version bumps, so an optimistic purchase stamped with a
//     pre-reclaim view of those words is version-declined by the
//     seller's validation. Reclaim needs no lock to be safe.
//
// With Config.RPCTimeout set, detection additionally distinguishes
// *suspected* from *declared dead* (the partial-failure model):
//
//   - a node that misses HeartbeatMisses consecutive heartbeats — because
//     it crashed, or because a live partition cut it off from rank 0's
//     vantage — is suspected: the placement engine and the gather,
//     purchase and defrag loops route around it (the widened nodeAlive
//     predicate below), but nothing is evacuated or reclaimed, because
//     it may still be alive and owning its threads and slots.
//   - a suspected node that answers again (the partition healed) rejoins:
//     suspicion is cleared and every cached cross-node belief about it —
//     gather hints, delta views, gathered versions, in both directions —
//     is dropped, so the next negotiation resyncs from ground truth via
//     the existing full-map first-contact fallback.
//   - only a suspected node that stays silent through a second full
//     confirmation window *and* has actually crashed is declared dead
//     and evacuated. A partitioned-but-alive node is never evacuated:
//     fail-stop recovery of a node that still runs would double-own its
//     threads and slots the moment the partition healed.
//
// Residual hazard, by design out of scope (documented in DESIGN.md): a
// thread migrated *to* a crashed node between crash and declaration is
// lost with it. With RPCTimeout unset the seed's behavior — in-flight
// protocol exchanges against a failing node hang their initiator — is
// preserved exactly, goldens included.

// InstallFaults installs a failure plan on a cluster that has not run
// yet: the wire-level fault policy is attached and one ambient crash
// barrier is scheduled per crash event. Clusters built with Config.Faults
// get this implicitly; it is exported for drivers that build the cluster
// first and decide the plan afterwards (the scenario harness).
func (c *Cluster) InstallFaults(plan *fault.Plan) error {
	if plan == nil || plan.Empty() {
		return nil
	}
	if c.faults != nil {
		return fmt.Errorf("pm2: a fault plan is already installed")
	}
	if err := validateFaultPlan(plan, c.cfg); err != nil {
		return err
	}
	c.faults = fault.NewState(plan)
	c.down = make([]bool, c.Nodes())
	c.suspected = make([]bool, c.Nodes())
	c.suspectedAt = make([]simtime.Time, c.Nodes())
	c.missedBeats = make([]int, c.Nodes())
	c.nw.SetFaults(c.faults)
	for _, ev := range plan.Crashes() {
		node := ev.Node
		// The barrier was scheduled before any workload event at the
		// same instant, so it runs first: nothing dispatched at the
		// crash time starts on the dead node.
		c.eng.At(ev.At, func() { c.nodes[node].dead = true })
	}
	return nil
}

// validateFaultPlan checks a plan against the cluster shape: fail-stop
// recovery needs survivors to evacuate to, and the relocation baseline
// has no iso-address images to recover.
func validateFaultPlan(plan *fault.Plan, cfg Config) error {
	if cfg.Nodes < 2 {
		return fmt.Errorf("pm2: a fault plan needs at least two nodes (Nodes = %d)", cfg.Nodes)
	}
	if cfg.Policy != PolicyIso {
		return fmt.Errorf("pm2: fault tolerance requires the iso-address migration policy")
	}
	return plan.Validate(cfg.Nodes)
}

// FaultState returns the installed fault state (nil on a healthy cluster).
func (c *Cluster) FaultState() *fault.State { return c.faults }

// NodeResponsive reports whether node i would answer a heartbeat right
// now: false once the node has crashed — whether or not the failure has
// been declared yet — or while a live partition cuts it off from rank 0,
// where the balancer (and its heartbeat vantage) lives. Balancers use it
// to skip sampling unreachable nodes.
func (c *Cluster) NodeResponsive(i int) bool {
	if c.faults == nil {
		return true
	}
	now := c.eng.Now()
	return !c.faults.Crashed(i, now) && !c.faults.Partitioned(0, i, now)
}

// NodeSuspected reports whether node i is currently suspected: routed
// around but not evacuated, pending confirmation or rejoin.
func (c *Cluster) NodeSuspected(i int) bool {
	return c.suspected != nil && i >= 0 && i < len(c.suspected) && c.suspected[i]
}

// NodeDown reports whether node i has been declared dead (lease expired,
// threads evacuated, slots reclaimed).
func (c *Cluster) NodeDown(i int) bool {
	return c.down != nil && i >= 0 && i < len(c.down) && c.down[i]
}

// nodeAlive is the down-skip predicate the gather, purchase and defrag
// loops consult: true for every rank on a healthy cluster, false for
// declared-dead ranks and — under suspicion mode — for suspected ones,
// which are routed around but keep everything they own.
func (c *Cluster) nodeAlive(i int) bool {
	return (c.down == nil || !c.down[i]) && (c.suspected == nil || !c.suspected[i])
}

// anyDown reports whether any rank is declared dead or suspected. The
// tree gather falls back to the batched topology then — a combining tree
// through an unreachable interior node would stall (or time out) its
// whole subtree.
func (c *Cluster) anyDown() bool { return c.nDown > 0 || c.nSuspected > 0 }

// shardManager returns the live manager rank of shard s: the canonical
// shard-mod-n owner, rerouted past declared-dead ranks so the sharded
// arbiter keeps arbitrating across a failover.
func (c *Cluster) shardManager(s int) int {
	m := c.shardMap.Manager(s, c.Nodes())
	if c.down != nil && c.down[m] {
		m = c.pol.NextLive(m)
	}
	return m
}

// HeartbeatTick runs one failure-detection round. Ambient contexts only
// (the balancer round, a test driver) — suspicion, rejoin and
// declaration are barriers that touch every lane's state. No-op on a
// healthy cluster.
//
// With RPCTimeout unset the seed's one-stage detection runs verbatim:
// every undeclared crashed node accrues a missed heartbeat, and
// HeartbeatMisses consecutive misses expire its lease. With it set,
// detection is two-stage: HeartbeatMisses misses *suspect* the node
// (reversible — a healed partition rejoins it), and only a suspected
// node that stays unresponsive through a second full window and has
// actually crashed is declared dead. A partitioned-but-alive node is
// never evacuated.
func (c *Cluster) HeartbeatTick() {
	if c.faults == nil {
		return
	}
	now := c.eng.Now()
	if c.cfg.RPCTimeout == 0 {
		for i := range c.nodes {
			if c.down[i] {
				continue
			}
			if !c.faults.Crashed(i, now) {
				c.missedBeats[i] = 0
				continue
			}
			c.missedBeats[i]++
			if c.missedBeats[i] >= c.cfg.HeartbeatMisses {
				c.declareDead(i, now)
			}
		}
		return
	}
	for i := range c.nodes {
		if c.down[i] {
			continue
		}
		// The heartbeat rides the load-report round, which rank 0's
		// balancer drives: a node is responsive when it is neither
		// crashed nor partitioned away from rank 0.
		responsive := !c.faults.Crashed(i, now) && !c.faults.Partitioned(0, i, now)
		if responsive {
			if c.suspected[i] {
				c.rejoin(i, now)
			} else {
				c.missedBeats[i] = 0
			}
			continue
		}
		c.missedBeats[i]++
		if !c.suspected[i] {
			if c.missedBeats[i] >= c.cfg.HeartbeatMisses {
				c.suspect(i, now)
			}
			continue
		}
		// Confirmation window: a second full lease of silence, and only
		// an actual crash graduates to declared dead — suspicion caused
		// by a live partition stays suspicion until the heal rejoins it.
		if c.missedBeats[i] >= 2*c.cfg.HeartbeatMisses && c.faults.Crashed(i, now) {
			c.declareDead(i, now)
		}
	}
}

// suspect marks node i suspected: placement and the protocol loops stop
// routing to it, and every survivor's cached delta view of it is dropped
// so no purchase is planned on slots only an unreachable peer could
// sell. Nothing is evacuated or reclaimed — the node may be alive behind
// a partition, still running its threads. Runs as an ambient barrier.
func (c *Cluster) suspect(i int, now simtime.Time) {
	c.suspected[i] = true
	c.suspectedAt[i] = now
	c.nSuspected++
	c.stats.Suspicions++
	c.pol.SetSuspect(i, true)
	for j, n := range c.nodes {
		if j == i || c.down[j] {
			continue
		}
		if n.deltaPeers != nil && n.deltaPeers[i].bm != nil {
			n.deltaPeers[i] = deltaPeerView{}
			n.rebuildGlobalOr()
		}
	}
	c.log.Raw(fmt.Sprintf("[suspect] node %d suspected at t=%dus (%d heartbeats missed)",
		i, now/simtime.Microsecond, c.missedBeats[i]))
}

// rejoin clears node i's suspicion after it answered a heartbeat again
// (the partition healed). Every cached cross-node belief involving it is
// dropped, in both directions: the survivors' gather hints, delta views
// and gathered versions of i went stale while it was unreachable, and
// i's own view of the whole cluster went stale behind the partition. The
// next gather resyncs from ground truth — the delta gather through its
// full-map first-contact fallback, the hinted gathers by simply not
// skipping anyone until fresh beliefs form. Runs as an ambient barrier.
func (c *Cluster) rejoin(i int, now simtime.Time) {
	c.suspected[i] = false
	c.nSuspected--
	c.missedBeats[i] = 0
	c.stats.Rejoins++
	c.stats.RejoinLatencies = append(c.stats.RejoinLatencies, now-c.suspectedAt[i])
	c.pol.SetSuspect(i, false)
	r := c.nodes[i]
	for j, n := range c.nodes {
		if j == i || c.down[j] {
			continue
		}
		if n.hintEmpty != nil {
			n.hintEmpty[i] = false
		}
		if n.emptyTold != nil {
			n.emptyTold[i] = false
		}
		if n.deltaPeers != nil && n.deltaPeers[i].bm != nil {
			n.deltaPeers[i] = deltaPeerView{}
			n.rebuildGlobalOr()
		}
		if n.gatherVersions != nil {
			n.gatherVersions[i] = 0
		}
	}
	if r.hintEmpty != nil {
		for p := range r.hintEmpty {
			r.hintEmpty[p] = false
		}
	}
	if r.emptyTold != nil {
		for p := range r.emptyTold {
			r.emptyTold[p] = false
		}
		r.emptyToldAny = false
	}
	if r.deltaPeers != nil {
		r.deltaPeers = make([]deltaPeerView, c.Nodes())
		r.deltaOr = bitmap.New(layout.SlotCount)
	}
	if r.gatherVersions != nil {
		for p := range r.gatherVersions {
			r.gatherVersions[p] = 0
		}
	}
	c.log.Raw(fmt.Sprintf("[rejoin] node %d rejoined at t=%dus (suspicion cleared)",
		i, now/simtime.Microsecond))
}

// declareDead expires node i's lease: the placement engine stops routing
// to it, its resident threads are evacuated to the survivors as convoys,
// and its owned-free slots are reclaimed. Runs as an ambient barrier.
func (c *Cluster) declareDead(i int, now simtime.Time) {
	if c.suspected != nil && c.suspected[i] {
		// Graduating from suspected to declared dead: the permanent
		// down state supersedes the reversible suspicion bookkeeping.
		c.suspected[i] = false
		c.nSuspected--
		c.pol.SetSuspect(i, false)
	}
	c.down[i] = true
	c.nDown++
	c.pol.SetDown(i)
	d := c.nodes[i]

	if at, ok := c.faults.CrashTime(i); ok {
		c.stats.DetectionLatencies = append(c.stats.DetectionLatencies, now-at)
	}

	live := make([]int, 0, c.Nodes()-1)
	for j := range c.nodes {
		if !c.down[j] {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		panic("pm2: every node declared dead") // rank 0 cannot crash
	}

	evacuated := c.evacuate(d, live, now)
	reclaimed := c.reclaim(d, live)

	c.stats.Evacuations++
	c.stats.EvacuatedThreads += evacuated
	c.stats.ReclaimedSlots += reclaimed
	c.log.Raw(fmt.Sprintf("[failover] node %d declared dead at t=%dus (%d heartbeats missed)",
		i, now/simtime.Microsecond, c.missedBeats[i]))
	c.log.Raw(fmt.Sprintf("[failover] node %d: evacuating %d threads to %d survivors, reclaiming %d slots",
		i, evacuated, len(live), reclaimed))
}

// evacuate freezes every thread resident on the dead node (in TID order),
// packs their slot images, and ships one convoy per destination. All of
// the dead node's work runs muted — its CPU charges nothing; the
// survivors pay the receive and install, exactly like a convoy arrival.
// Destinations rotate round-robin over the live ranks so the orphaned
// load spreads. Returns the number of threads evacuated.
func (c *Cluster) evacuate(d *Node, live []int, declared simtime.Time) int {
	residents := d.sched.Snapshot()
	if len(residents) == 0 {
		return 0
	}
	// Zero-copy record layout when the convoy pipeline is on, the
	// paper-faithful copying charges otherwise. Either way the wire
	// format is packThreadImage's, so the install side is the convoy
	// receive path reused verbatim.
	zeroCopy := c.cfg.Convoy
	byDest := make(map[int][]*marcel.Thread, len(live))
	order := make([]int, 0, len(live))
	for k, t := range residents {
		dest := live[k%len(live)]
		if byDest[dest] == nil {
			order = append(order, dest)
		}
		byDest[dest] = append(byDest[dest], t)
	}

	at := c.eng.Now() + simtime.Time(c.cfg.Model.WireLatencyNs)*simtime.Nanosecond
	for _, dest := range order {
		ts := byDest[dest]
		var body []byte
		d.actor.Mute(func() {
			buf := c.bufPool.Get()
			buf.PackU32(uint32(len(ts)))
			var groups []core.SlotGroup
			for _, t := range ts {
				if err := d.sched.Freeze(t); err != nil {
					panic(fmt.Sprintf("pm2: freezing thread %#x for evacuation: %v", t.TID, err))
				}
				d.sched.Detach(t)
				groups = append(groups, d.packThreadImage(buf, t, declared, zeroCopy)...)
			}
			// Bytes gathers the borrowed page aliases into the wire
			// body; copy it out before the buffer returns to the pool
			// (the pool reuses the backing array).
			body = append([]byte(nil), buf.Bytes()...)
			c.bufPool.Put(buf)
			d.evictGroups(groups)
		})
		node := c.nodes[dest]
		node.actor.Post(at, func() {
			node.recoverConvoy(body, declared, zeroCopy)
		})
	}
	return len(residents)
}

// recoverConvoy installs an evacuation convoy on a survivor: every
// thread's slot groups are mapped and filled at their iso-addresses,
// then the threads thaw in freeze order and the scheduler is kicked
// once. A thread that was blocked on the dead node thaws runnable:
// whatever it was waiting for lived on a node that no longer exists, so
// it resumes with whatever result its waker had not yet delivered.
func (n *Node) recoverConvoy(body []byte, declared simtime.Time, zeroCopy bool) {
	model := n.c.cfg.Model
	n.actor.Charge(model.Recv(len(body)))
	inner := madeleine.FromBytes(body)
	k := int(inner.U32())
	if inner.Err() != nil || k <= 0 {
		panic("pm2: corrupt evacuation convoy")
	}
	descs := make([]Addr, 0, k)
	for i := 0; i < k; i++ {
		desc := Addr(inner.U32())
		_ = inner.U64() // pack-time stamp; latency is measured from declaration
		mode := PackMode(inner.U32())
		nGroups := int(inner.U32())
		n.installGroups(inner, mode, nGroups, zeroCopy)
		if inner.Err() != nil {
			panic("pm2: corrupt evacuation convoy")
		}
		descs = append(descs, desc)
	}
	lats := make([]simtime.Time, len(descs))
	for i, desc := range descs {
		if _, err := n.sched.Thaw(desc); err != nil {
			panic(fmt.Sprintf("pm2: thawing evacuated thread on node %d: %v", n.id, err))
		}
		lats[i] = n.actor.Now() - declared
	}
	n.kick()
	n.actor.Commit(func() {
		n.c.stats.EvacuationLatencies = append(n.c.stats.EvacuationLatencies, lats...)
	})
}

// reclaim surrenders the dead rank's owned-free slots and deals the
// maximal free runs round-robin to the survivors. Each share lands
// through a posted, charged BuyRun on its new owner, so the on-change
// hook fires: journal version bump, hint invalidation — every cached
// remote view of the reclaimed words goes stale, which is what makes
// lock-free reclaim safe under optimistic arbitration. The survivors'
// cached delta views of the dead rank are dropped here too: it will
// never answer a delta request again, and its surrendered bits must not
// linger in any cached global OR. Returns the slots reclaimed.
func (c *Cluster) reclaim(d *Node, live []int) int {
	var given *bitmap.Bitmap
	d.actor.Mute(func() { given = d.slots.SurrenderAll() })

	for _, j := range live {
		n := c.nodes[j]
		if n.deltaPeers != nil && n.deltaPeers[d.id].bm != nil {
			n.deltaPeers[d.id] = deltaPeerView{}
			n.rebuildGlobalOr()
		}
		if n.gatherVersions != nil {
			n.gatherVersions[d.id] = 0
		}
	}

	total := given.Count()
	if total == 0 {
		return 0
	}
	// Carve the surrendered map into maximal set runs, dealt round-robin.
	shares := make(map[int][][2]int, len(live))
	run := 0
	for s := given.FirstSet(0); s >= 0 && s < given.Len(); {
		e := s
		for e < given.Len() && given.Test(e) {
			e++
		}
		dest := live[run%len(live)]
		shares[dest] = append(shares[dest], [2]int{s, e - s})
		run++
		if e >= given.Len() {
			break
		}
		s = given.FirstSet(e)
	}
	at := c.eng.Now() + simtime.Time(c.cfg.Model.WireLatencyNs)*simtime.Nanosecond
	for _, dest := range live {
		runs := shares[dest]
		if len(runs) == 0 {
			continue
		}
		node := c.nodes[dest]
		node.actor.Post(at, func() {
			node.actor.Charge(node.c.cfg.Model.BitmapScan(layout.BitmapBytes))
			for _, r := range runs {
				if err := node.slots.BuyRun(r[0], r[1]); err != nil {
					panic(fmt.Sprintf("pm2: reclaiming [%d,+%d) on node %d: %v", r[0], r[1], node.id, err))
				}
			}
		})
	}
	return total
}
