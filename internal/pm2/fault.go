package pm2

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/marcel"
	"repro/internal/simtime"
)

// Fault tolerance: node death, thread evacuation, slot reclaim.
//
// The paper's cluster is failure-free; this file adds the fail-stop model
// operators actually run under. A fault plan (internal/fault) schedules
// crash, partition and slow-node events in virtual time:
//
//   - a crash is fail-stop with a recoverable image: at the crash instant
//     the node's scheduler pump is gated off (its lane drains to a
//     tombstone — already-queued events still fire but dispatch no
//     further work), and every message whose delivery would land on the
//     dead node is dropped at the wire (bip.FaultPolicy). The node's
//     simulated memory stays readable, which is what makes evacuation
//     possible: the survivors recover the resident thread images over
//     the interconnect, as a checkpoint-on-peer scheme would.
//   - detection is a lease piggybacked on the load-report heartbeat: the
//     balancer's periodic round calls Cluster.HeartbeatTick, a crashed
//     node misses its report, and Config.HeartbeatMisses consecutive
//     misses expire the lease — the node is declared dead.
//   - declaration triggers evacuation and reclaim (declareDead below):
//     the dead node's resident threads are frozen in place, convoyed to
//     the survivors round-robin, and thawed there; the dead rank's
//     owned-free slots are surrendered and re-dealt to the survivors.
//     Every reclaimed run lands through NodeSlots.BuyRun on its new
//     owner, firing the owner's bitmap on-change hook — the journal
//     version bumps, so an optimistic purchase stamped with a
//     pre-reclaim view of those words is version-declined by the
//     seller's validation. Reclaim needs no lock to be safe.
//
// Known hazards, by design out of scope (documented in DESIGN.md): a
// negotiation or LRPC in flight against the node at its crash instant
// hangs its initiator (the reply is dropped, as on real hardware without
// client-side timeouts), and a thread migrated *to* the node between
// crash and declaration is lost with it. The failover scenarios keep
// crashes away from in-flight protocol exchanges.

// InstallFaults installs a failure plan on a cluster that has not run
// yet: the wire-level fault policy is attached and one ambient crash
// barrier is scheduled per crash event. Clusters built with Config.Faults
// get this implicitly; it is exported for drivers that build the cluster
// first and decide the plan afterwards (the scenario harness).
func (c *Cluster) InstallFaults(plan *fault.Plan) error {
	if plan == nil || plan.Empty() {
		return nil
	}
	if c.faults != nil {
		return fmt.Errorf("pm2: a fault plan is already installed")
	}
	if err := validateFaultPlan(plan, c.cfg); err != nil {
		return err
	}
	c.faults = fault.NewState(plan)
	c.down = make([]bool, c.Nodes())
	c.missedBeats = make([]int, c.Nodes())
	c.nw.SetFaults(c.faults)
	for _, ev := range plan.Crashes() {
		node := ev.Node
		// The barrier was scheduled before any workload event at the
		// same instant, so it runs first: nothing dispatched at the
		// crash time starts on the dead node.
		c.eng.At(ev.At, func() { c.nodes[node].dead = true })
	}
	return nil
}

// validateFaultPlan checks a plan against the cluster shape: fail-stop
// recovery needs survivors to evacuate to, and the relocation baseline
// has no iso-address images to recover.
func validateFaultPlan(plan *fault.Plan, cfg Config) error {
	if cfg.Nodes < 2 {
		return fmt.Errorf("pm2: a fault plan needs at least two nodes (Nodes = %d)", cfg.Nodes)
	}
	if cfg.Policy != PolicyIso {
		return fmt.Errorf("pm2: fault tolerance requires the iso-address migration policy")
	}
	return plan.Validate(cfg.Nodes)
}

// FaultState returns the installed fault state (nil on a healthy cluster).
func (c *Cluster) FaultState() *fault.State { return c.faults }

// NodeResponsive reports whether node i would answer a heartbeat right
// now: false once the node has crashed, whether or not the failure has
// been declared yet. Balancers use it to skip sampling dead nodes.
func (c *Cluster) NodeResponsive(i int) bool {
	return c.faults == nil || !c.faults.Crashed(i, c.eng.Now())
}

// NodeDown reports whether node i has been declared dead (lease expired,
// threads evacuated, slots reclaimed).
func (c *Cluster) NodeDown(i int) bool {
	return c.down != nil && i >= 0 && i < len(c.down) && c.down[i]
}

// nodeAlive is the down-skip predicate the gather, purchase and defrag
// loops consult: true for every rank on a healthy cluster.
func (c *Cluster) nodeAlive(i int) bool { return c.down == nil || !c.down[i] }

// anyDown reports whether any rank has been declared dead. The tree
// gather falls back to the batched topology then — a combining tree
// through a dead interior node would stall forever.
func (c *Cluster) anyDown() bool { return c.nDown > 0 }

// shardManager returns the live manager rank of shard s: the canonical
// shard-mod-n owner, rerouted past declared-dead ranks so the sharded
// arbiter keeps arbitrating across a failover.
func (c *Cluster) shardManager(s int) int {
	m := c.shardMap.Manager(s, c.Nodes())
	if c.down != nil && c.down[m] {
		m = c.pol.NextLive(m)
	}
	return m
}

// HeartbeatTick runs one failure-detection round: every undeclared
// crashed node accrues a missed heartbeat, and HeartbeatMisses
// consecutive misses expire its lease. Ambient contexts only (the
// balancer round, a test driver) — declaration is a barrier that touches
// every lane's state. No-op on a healthy cluster.
func (c *Cluster) HeartbeatTick() {
	if c.faults == nil {
		return
	}
	now := c.eng.Now()
	for i := range c.nodes {
		if c.down[i] {
			continue
		}
		if !c.faults.Crashed(i, now) {
			c.missedBeats[i] = 0
			continue
		}
		c.missedBeats[i]++
		if c.missedBeats[i] >= c.cfg.HeartbeatMisses {
			c.declareDead(i, now)
		}
	}
}

// declareDead expires node i's lease: the placement engine stops routing
// to it, its resident threads are evacuated to the survivors as convoys,
// and its owned-free slots are reclaimed. Runs as an ambient barrier.
func (c *Cluster) declareDead(i int, now simtime.Time) {
	c.down[i] = true
	c.nDown++
	c.pol.SetDown(i)
	d := c.nodes[i]

	if at, ok := c.faults.CrashTime(i); ok {
		c.stats.DetectionLatencies = append(c.stats.DetectionLatencies, now-at)
	}

	live := make([]int, 0, c.Nodes()-1)
	for j := range c.nodes {
		if !c.down[j] {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		panic("pm2: every node declared dead") // rank 0 cannot crash
	}

	evacuated := c.evacuate(d, live, now)
	reclaimed := c.reclaim(d, live)

	c.stats.Evacuations++
	c.stats.EvacuatedThreads += evacuated
	c.stats.ReclaimedSlots += reclaimed
	c.log.Raw(fmt.Sprintf("[failover] node %d declared dead at t=%dus (%d heartbeats missed)",
		i, now/simtime.Microsecond, c.missedBeats[i]))
	c.log.Raw(fmt.Sprintf("[failover] node %d: evacuating %d threads to %d survivors, reclaiming %d slots",
		i, evacuated, len(live), reclaimed))
}

// evacuate freezes every thread resident on the dead node (in TID order),
// packs their slot images, and ships one convoy per destination. All of
// the dead node's work runs muted — its CPU charges nothing; the
// survivors pay the receive and install, exactly like a convoy arrival.
// Destinations rotate round-robin over the live ranks so the orphaned
// load spreads. Returns the number of threads evacuated.
func (c *Cluster) evacuate(d *Node, live []int, declared simtime.Time) int {
	residents := d.sched.Snapshot()
	if len(residents) == 0 {
		return 0
	}
	// Zero-copy record layout when the convoy pipeline is on, the
	// paper-faithful copying charges otherwise. Either way the wire
	// format is packThreadImage's, so the install side is the convoy
	// receive path reused verbatim.
	zeroCopy := c.cfg.Convoy
	byDest := make(map[int][]*marcel.Thread, len(live))
	order := make([]int, 0, len(live))
	for k, t := range residents {
		dest := live[k%len(live)]
		if byDest[dest] == nil {
			order = append(order, dest)
		}
		byDest[dest] = append(byDest[dest], t)
	}

	at := c.eng.Now() + simtime.Time(c.cfg.Model.WireLatencyNs)*simtime.Nanosecond
	for _, dest := range order {
		ts := byDest[dest]
		var body []byte
		d.actor.Mute(func() {
			buf := c.bufPool.Get()
			buf.PackU32(uint32(len(ts)))
			var groups []core.SlotGroup
			for _, t := range ts {
				if err := d.sched.Freeze(t); err != nil {
					panic(fmt.Sprintf("pm2: freezing thread %#x for evacuation: %v", t.TID, err))
				}
				d.sched.Detach(t)
				groups = append(groups, d.packThreadImage(buf, t, declared, zeroCopy)...)
			}
			// Bytes gathers the borrowed page aliases into the wire
			// body; copy it out before the buffer returns to the pool
			// (the pool reuses the backing array).
			body = append([]byte(nil), buf.Bytes()...)
			c.bufPool.Put(buf)
			d.evictGroups(groups)
		})
		node := c.nodes[dest]
		node.actor.Post(at, func() {
			node.recoverConvoy(body, declared, zeroCopy)
		})
	}
	return len(residents)
}

// recoverConvoy installs an evacuation convoy on a survivor: every
// thread's slot groups are mapped and filled at their iso-addresses,
// then the threads thaw in freeze order and the scheduler is kicked
// once. A thread that was blocked on the dead node thaws runnable:
// whatever it was waiting for lived on a node that no longer exists, so
// it resumes with whatever result its waker had not yet delivered.
func (n *Node) recoverConvoy(body []byte, declared simtime.Time, zeroCopy bool) {
	model := n.c.cfg.Model
	n.actor.Charge(model.Recv(len(body)))
	inner := madeleine.FromBytes(body)
	k := int(inner.U32())
	if inner.Err() != nil || k <= 0 {
		panic("pm2: corrupt evacuation convoy")
	}
	descs := make([]Addr, 0, k)
	for i := 0; i < k; i++ {
		desc := Addr(inner.U32())
		_ = inner.U64() // pack-time stamp; latency is measured from declaration
		mode := PackMode(inner.U32())
		nGroups := int(inner.U32())
		n.installGroups(inner, mode, nGroups, zeroCopy)
		if inner.Err() != nil {
			panic("pm2: corrupt evacuation convoy")
		}
		descs = append(descs, desc)
	}
	lats := make([]simtime.Time, len(descs))
	for i, desc := range descs {
		if _, err := n.sched.Thaw(desc); err != nil {
			panic(fmt.Sprintf("pm2: thawing evacuated thread on node %d: %v", n.id, err))
		}
		lats[i] = n.actor.Now() - declared
	}
	n.kick()
	n.actor.Commit(func() {
		n.c.stats.EvacuationLatencies = append(n.c.stats.EvacuationLatencies, lats...)
	})
}

// reclaim surrenders the dead rank's owned-free slots and deals the
// maximal free runs round-robin to the survivors. Each share lands
// through a posted, charged BuyRun on its new owner, so the on-change
// hook fires: journal version bump, hint invalidation — every cached
// remote view of the reclaimed words goes stale, which is what makes
// lock-free reclaim safe under optimistic arbitration. The survivors'
// cached delta views of the dead rank are dropped here too: it will
// never answer a delta request again, and its surrendered bits must not
// linger in any cached global OR. Returns the slots reclaimed.
func (c *Cluster) reclaim(d *Node, live []int) int {
	var given *bitmap.Bitmap
	d.actor.Mute(func() { given = d.slots.SurrenderAll() })

	for _, j := range live {
		n := c.nodes[j]
		if n.deltaPeers != nil && n.deltaPeers[d.id].bm != nil {
			n.deltaPeers[d.id] = deltaPeerView{}
			n.rebuildGlobalOr()
		}
		if n.gatherVersions != nil {
			n.gatherVersions[d.id] = 0
		}
	}

	total := given.Count()
	if total == 0 {
		return 0
	}
	// Carve the surrendered map into maximal set runs, dealt round-robin.
	shares := make(map[int][][2]int, len(live))
	run := 0
	for s := given.FirstSet(0); s >= 0 && s < given.Len(); {
		e := s
		for e < given.Len() && given.Test(e) {
			e++
		}
		dest := live[run%len(live)]
		shares[dest] = append(shares[dest], [2]int{s, e - s})
		run++
		if e >= given.Len() {
			break
		}
		s = given.FirstSet(e)
	}
	at := c.eng.Now() + simtime.Time(c.cfg.Model.WireLatencyNs)*simtime.Nanosecond
	for _, dest := range live {
		runs := shares[dest]
		if len(runs) == 0 {
			continue
		}
		node := c.nodes[dest]
		node.actor.Post(at, func() {
			node.actor.Charge(node.c.cfg.Model.BitmapScan(layout.BitmapBytes))
			for _, r := range runs {
				if err := node.slots.BuyRun(r[0], r[1]); err != nil {
					panic(fmt.Sprintf("pm2: reclaiming [%d,+%d) on node %d: %v", r[0], r[1], node.id, err))
				}
			}
		})
	}
	return total
}
