package pm2

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/simtime"
)

// The negotiation arbiter (Config.Arbiter) is the concurrency scheme of
// the §4.4 protocol's step 2a. The paper funnels every negotiation
// through one system-wide critical section hosted on node 0; with the
// gather payload already cut (Config.Gather), that single lock is the
// remaining serialization point. Two decentralized schemes relax it:
//
//   - sharded: the slot space is partitioned into contiguous shards
//     (core.ShardMap), shard s arbitrated by rank s mod n. A
//     negotiation gathers and plans without any lock, then takes only
//     the shards its planned run touches — in ascending shard order, so
//     no cycle of waiters can form — buys, and releases. Disjoint
//     negotiations hold disjoint shard sets and proceed in parallel.
//
//   - optimistic: no lock at all. Initiators plan against their
//     gathered (or delta-cached) view and stamp each purchase with the
//     seller's bitmap-journal version that view corresponds to; a
//     seller whose version moved since then declines the stale plan.
//     The initiator gives secured shares back and re-plans after a
//     deterministic per-attempt backoff, within the usual round bound;
//     exhaustion feeds Stats.NegotiationFailures.
//
// Under both schemes a node still runs its *own* negotiations one at a
// time (a local queue replaces the global one), which keeps the
// give-back accounting and retry invariants intact; the parallelism is
// across initiators, which is where the contention was.

// ArbiterMode selects the negotiation concurrency scheme.
type ArbiterMode int

const (
	// ArbiterGlobal is the paper-faithful default: one system-wide
	// critical section hosted on node 0. Every golden trace pins it.
	ArbiterGlobal ArbiterMode = iota
	// ArbiterSharded partitions the slot space into shards arbitrated
	// by rank shard mod n; a negotiation locks only the shards its
	// planned purchase touches, in canonical ascending order.
	ArbiterSharded
	// ArbiterOptimistic takes no lock: purchases are version-stamped
	// and sellers decline plans computed against a stale bitmap view.
	ArbiterOptimistic
)

func (a ArbiterMode) String() string {
	switch a {
	case ArbiterSharded:
		return "sharded"
	case ArbiterOptimistic:
		return "optimistic"
	}
	return "global"
}

// ParseArbiterMode resolves an arbiter name. Empty selects the
// paper-faithful global lock.
func ParseArbiterMode(s string) (ArbiterMode, error) {
	switch s {
	case "", "global", "lock":
		return ArbiterGlobal, nil
	case "sharded", "shard":
		return ArbiterSharded, nil
	case "optimistic", "opt", "occ":
		return ArbiterOptimistic, nil
	}
	return ArbiterGlobal, fmt.Errorf("pm2: unknown arbiter %q (have %v)", s, ArbiterModeNames())
}

// ArbiterModeNames lists the canonical arbiter names.
func ArbiterModeNames() []string { return []string{"global", "sharded", "optimistic"} }

// defaultArbiterShards partitions the 57344-slot space into 3584-slot
// shards: fine enough that initiators planning in distinct home regions
// lock disjoint managers, coarse enough that a multi-slot run almost
// always stays inside one shard.
const defaultArbiterShards = 16

// negotiationBackoffBase is the first retry's deterministic delay; each
// further attempt doubles it. The backoff breaks optimistic livelock —
// two initiators declining each other's purchases re-plan at different
// virtual times instead of re-colliding forever — and makes attempt
// counts reproducible run to run.
const negotiationBackoffBase = 25 * simtime.Microsecond

// negotiationBackoff returns the deterministic delay before re-running
// a declined round: 25 µs doubling per attempt.
func negotiationBackoff(round int) simtime.Time {
	return negotiationBackoffBase << uint(round)
}

// startLocalNegotiation runs fn now, or queues it behind this node's
// negotiation in flight. The decentralized arbiters drop the global
// queue on node 0; this local queue preserves the invariant the retry
// path relies on — one negotiation per node at a time, so give-backs of
// one round can never interleave with another round's gather.
func (n *Node) startLocalNegotiation(fn func()) {
	if n.negBusy {
		n.negQueue = append(n.negQueue, fn)
		return
	}
	n.negBusy = true
	fn()
}

// finishLocalNegotiation releases the local slot and starts the next
// queued negotiation, if any.
func (n *Node) finishLocalNegotiation() {
	if len(n.negQueue) > 0 {
		next := n.negQueue[0]
		n.negQueue = n.negQueue[:copy(n.negQueue, n.negQueue[1:])]
		next()
		return
	}
	n.negBusy = false
}

// homeOrigin returns where this node starts its run search under the
// decentralized arbiters: the slot space divided into per-rank home
// regions. Concurrent initiators therefore plan in disjoint regions —
// disjoint shard sets under the sharded arbiter, non-colliding version
// checks under the optimistic one — while the wrap-around keeps every
// slot reachable when a home region is exhausted.
func (n *Node) homeOrigin() int {
	return n.id * (layout.SlotCount / n.c.Nodes())
}

// withRunLocks acquires the shard locks covering the planned run and
// then calls then. Under any arbiter but the sharded one it is a
// pass-through. Shards are acquired strictly one at a time in ascending
// order — the canonical order every initiator uses, which is the
// deadlock-freedom argument: the holder of the highest contended shard
// never waits on a lower one, so it completes and unblocks the rest.
//
// With a timeout configured, an unreachable shard manager fails the
// acquisition instead of hanging the negotiation: the shards already
// held are released and fail runs (the caller re-plans after a
// backoff). A grant that outruns the timeout is released the moment it
// arrives — a manager's lock must never be parked with a waiter that
// walked away.
func (n *Node) withRunLocks(start, count int, then, fail func()) {
	if n.c.cfg.Arbiter != ArbiterSharded {
		then()
		return
	}
	shards := n.c.shardMap.ShardsOfRun(start, count)
	var acquire func(i int)
	acquire = func(i int) {
		if i == len(shards) {
			then()
			return
		}
		s := shards[i]
		mgr := n.c.shardManager(s)
		n.callRPC(mgr, chShardLock, func(b *madeleine.Buffer) {
			b.PackU32(uint32(s))
		}, func(*madeleine.Buffer) {
			n.heldShards = append(n.heldShards, s)
			acquire(i + 1)
		}, func() {
			n.releaseRunLocks()
			fail()
		}, func(*madeleine.Buffer) {
			n.ep.Send(mgr, chShardUnlock, func(b *madeleine.Buffer) {
				b.PackU32(uint32(s))
			})
		})
	}
	acquire(0)
}

// releaseRunLocks releases every shard lock this node's negotiation
// holds (one-way, like the global unlock). No-op when none are held.
func (n *Node) releaseRunLocks() {
	for _, s := range n.heldShards {
		shard := s
		n.ep.Send(n.c.shardManager(shard), chShardUnlock, func(b *madeleine.Buffer) {
			b.PackU32(uint32(shard))
		})
	}
	n.heldShards = n.heldShards[:0]
}

// onShardLockCall queues or grants one shard's lock (manager rank only).
func (n *Node) onShardLockCall(src int, req *madeleine.Call) {
	s := int(req.Msg.U32())
	if req.Msg.Err() != nil || s < 0 || s >= n.c.shardMap.Shards() {
		panic(fmt.Sprintf("pm2: corrupt shard-lock request for shard %d", s))
	}
	if n.c.shardManager(s) != n.id {
		panic(fmt.Sprintf("pm2: shard %d lock request at non-manager node %d", s, n.id))
	}
	if n.shardHeld == nil {
		n.shardHeld = make(map[int]bool)
		n.shardQueue = make(map[int][]*madeleine.Call)
	}
	if n.shardHeld[s] {
		n.shardQueue[s] = append(n.shardQueue[s], req)
		return
	}
	n.shardHeld[s] = true
	req.Reply(nil)
}

// onShardUnlockMsg releases one shard and grants the next waiter in
// FIFO order (manager rank only).
func (n *Node) onShardUnlockMsg(src int, msg *madeleine.Buffer) {
	s := int(msg.U32())
	if msg.Err() != nil || n.shardHeld == nil || !n.shardHeld[s] {
		panic(fmt.Sprintf("pm2: unlock of unheld shard %d at node %d", s, n.id))
	}
	if q := n.shardQueue[s]; len(q) > 0 {
		next := q[0]
		n.shardQueue[s] = q[:copy(q, q[1:])]
		next.Reply(nil)
		return
	}
	delete(n.shardHeld, s)
}
