package pm2

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/madeleine"
	"repro/internal/marcel"
	"repro/internal/simtime"
)

// The zero-copy scatter-gather migration pipeline (Config.Convoy).
//
// The paper's data path copies every migrated span three times on the host
// (slot memory → pack buffer → outer send buffer → NIC) and charges the
// cost model a memcpy on each side of the wire, then ships one Madeleine
// message per thread even when a balancing round moves several threads to
// the same destination. BIP's long-message mode was zero-copy on the real
// hardware — the NIC DMAs directly from and into user memory — so this
// pipeline models exactly that:
//
//   - the packer borrows page aliases of every span (vmem.ReadAliases +
//     Buffer.PackBytesVec); nothing is copied until the NIC gathers the
//     message body, and the CPUs on both sides are charged one DMA-setup
//     per span instead of a per-byte copy (Endpoint.SendBodyZeroCopy);
//   - k threads bound for one destination travel as a single chConvoy
//     message: one express header, one send/receive overhead and one wire
//     latency for the whole batch, with wire serialization still covering
//     every payload byte;
//   - the destination installs all slot groups, rebuilds the free lists
//     of used-mode data groups, thaws every thread and kicks the
//     scheduler once.
//
// Everything here is off by default; with Config.Convoy unset, migrations
// take the copying single-thread path and every golden trace stays
// byte-identical.

// Convoy wire format (body of a chConvoy message):
//
//	k u32 | k× thread record (see packThreadImage)

// convoyMigrateOut packs the already-frozen, detached threads into one
// convoy message for dest. Must run on the node's actor.
func (n *Node) convoyMigrateOut(ts []*marcel.Thread, dest int) {
	start := n.actor.Now()
	buf := n.c.bufPool.Get()
	buf.PackU32(uint32(len(ts)))
	var groups []core.SlotGroup
	for _, t := range ts {
		groups = append(groups, n.packThreadImage(buf, t, start, true)...)
	}
	// Send first (the gather consumes the page aliases), then set the
	// source areas free — the bits change on no node (paper step 1).
	n.ep.SendBodyZeroCopy(dest, chConvoy, buf)
	n.c.bufPool.Put(buf)
	n.evictGroups(groups)
}

// MigrateBatch preemptively migrates the given resident threads to dest
// as one convoy: they are frozen and detached on the spot (the caller's
// event is a scheduling boundary — no quantum is in progress) and shipped
// in a single zero-copy message. Threads that are blocked, already marked
// for migration, or no longer resident are skipped. When the convoy
// pipeline is off — or the relocation baseline is active — it falls back
// to per-thread RequestMigration, preserving the legacy behavior exactly.
// Must be called from the node's actor (Cluster.At); returns the number
// of threads that will move.
func (n *Node) MigrateBatch(tids []uint32, dest int) int {
	if dest < 0 || dest >= n.c.Nodes() || dest == n.id {
		return 0
	}
	eligible := func(t *marcel.Thread) bool { return !t.Blocked() && t.MigrateTo < 0 }
	if !n.c.cfg.Convoy || n.c.cfg.Policy != PolicyIso {
		moved := 0
		for _, tid := range tids {
			if t, ok := n.sched.Lookup(tid); ok && eligible(t) && n.sched.RequestMigration(tid, dest) {
				moved++
			}
		}
		return moved
	}
	var ts []*marcel.Thread
	for _, tid := range tids {
		if t, ok := n.sched.Lookup(tid); ok && eligible(t) {
			ts = append(ts, t)
		}
	}
	if len(ts) == 0 {
		return 0
	}
	for _, t := range ts {
		if err := n.sched.Freeze(t); err != nil {
			panic(fmt.Sprintf("pm2: freezing thread %#x for convoy: %v", t.TID, err))
		}
		n.sched.Detach(t)
	}
	n.convoyMigrateOut(ts, dest)
	return len(ts)
}

// onConvoyMsg is the destination half: install every thread's slot
// groups, then thaw them all and kick the scheduler once. The whole
// handler is one receive event — the convoy pays one express header and
// one receive overhead however many threads it carries.
func (n *Node) onConvoyMsg(src int, msg *madeleine.Buffer) {
	inner := madeleine.FromBytes(msg.BytesSection())
	k := int(inner.U32())
	if inner.Err() != nil || k <= 0 {
		panic("pm2: corrupt convoy message")
	}
	descs := make([]Addr, 0, k)
	starts := make([]simtime.Time, 0, k)
	installed := 0
	for i := 0; i < k; i++ {
		desc := Addr(inner.U32())
		start := simtime.Time(inner.U64())
		mode := PackMode(inner.U32())
		nGroups := int(inner.U32())
		installed += n.installGroups(inner, mode, nGroups, true)
		if inner.Err() != nil {
			panic("pm2: corrupt convoy message")
		}
		descs = append(descs, desc)
		starts = append(starts, start)
	}

	// All slot groups are in place: resume every thread (paper step 3),
	// then run the scheduler once for the whole batch.
	lats := make([]simtime.Time, len(descs))
	for i, desc := range descs {
		if _, err := n.sched.Thaw(desc); err != nil {
			panic(fmt.Sprintf("pm2: thawing convoy thread on node %d: %v", n.id, err))
		}
		lats[i] = n.actor.Now() - starts[i]
	}
	n.kick()
	n.actor.Commit(func() {
		for _, lat := range lats {
			n.c.stats.Migrations++
			n.c.stats.MigrationLatencies = append(n.c.stats.MigrationLatencies, lat)
		}
		n.c.stats.Convoys++
		n.c.stats.MigratedBytes += uint64(installed)
	})
}
