package pm2

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/progs"
)

// runParallelWorkload drives a migration- and negotiation-heavy workload
// on an 8-node cluster with the given configuration and returns its
// observable outcome: the full trace bytes and the cluster stats.
func runParallelWorkload(t *testing.T, cfg Config) (string, Stats) {
	t.Helper()
	cfg.Nodes = 8
	c := newCluster(t, cfg)
	// Ping-pong threads hop between nodes (cross-lane migrations), and
	// multi-slot isomallocs force §4.4 negotiations through the
	// configured arbiter — initiators, sellers and any lock queue all
	// live on different lanes.
	for i := 0; i < 8; i++ {
		c.Spawn(i, "pingpong", 6)
		c.Spawn(i, "allocone", 200_000)
	}
	c.Run(0)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return c.Trace().String(), c.Stats()
}

// TestParallelClusterMatchesSerial exercises the full pm2 runtime on the
// parallel kernel — this is the test `go test -race ./internal/pm2` uses
// to shake out the windowed executor — and pins that the trace bytes and
// every stat match the serial run exactly.
func TestParallelClusterMatchesSerial(t *testing.T) {
	serialTrace, serialStats := runParallelWorkload(t, Config{Workers: 1})
	if serialStats.Migrations == 0 || serialStats.Negotiations == 0 {
		t.Fatalf("workload performed %d migrations / %d negotiations — not exercising the kernel",
			serialStats.Migrations, serialStats.Negotiations)
	}
	for _, workers := range []int{2, 4, 8} {
		gotTrace, gotStats := runParallelWorkload(t, Config{Workers: workers})
		if gotTrace != serialTrace {
			t.Fatalf("workers=%d trace deviates from serial run:\ngot:\n%s\nwant:\n%s",
				workers, gotTrace, serialTrace)
		}
		if !reflect.DeepEqual(gotStats, serialStats) {
			t.Fatalf("workers=%d stats deviate:\ngot:  %+v\nwant: %+v", workers, gotStats, serialStats)
		}
	}
}

// TestParallelGatherMatrix runs the workload across the full gather ×
// arbiter × workers matrix and pins byte-identical traces and identical
// stats at every worker count. This is the tentpole's composition
// property: since the lane-affine hint protocol, no gather strategy
// reads another lane's state, so every one of them runs under the
// windowed parallel executor.
func TestParallelGatherMatrix(t *testing.T) {
	gathers := []GatherMode{GatherSequential, GatherBatched, GatherTree, GatherDelta}
	arbiters := []ArbiterMode{ArbiterGlobal, ArbiterSharded, ArbiterOptimistic}
	for _, gather := range gathers {
		for _, arbiter := range arbiters {
			gather, arbiter := gather, arbiter
			t.Run(fmt.Sprintf("%v_%v", gather, arbiter), func(t *testing.T) {
				t.Parallel()
				base := Config{Gather: gather, Arbiter: arbiter}
				serialCfg := base
				serialCfg.Workers = 1
				serialTrace, serialStats := runParallelWorkload(t, serialCfg)
				if serialStats.Negotiations == 0 {
					t.Fatal("workload performed no negotiations — not exercising the gather")
				}
				for _, workers := range []int{2, 4} {
					cfg := base
					cfg.Workers = workers
					gotTrace, gotStats := runParallelWorkload(t, cfg)
					if gotTrace != serialTrace {
						t.Fatalf("workers=%d trace deviates from serial run", workers)
					}
					if !reflect.DeepEqual(gotStats, serialStats) {
						t.Fatalf("workers=%d stats deviate:\ngot:  %+v\nwant: %+v",
							workers, gotStats, serialStats)
					}
				}
			})
		}
	}
}

// TestConfigValidate pins the construction-time validation contract:
// structural errors are reported by NewChecked (and Validate) instead of
// a panic, and the historical Workers-vs-batched/tree rejection is gone —
// every gather builds and runs with a parallel kernel.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nodes: 0},
		{Nodes: -3},
		{Nodes: 4, Workers: -1},
		{Nodes: 4, ArbiterShards: -2},
		{Nodes: 4, PreBuySlots: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v): expected an error", cfg)
		}
		if _, err := NewChecked(cfg, progs.NewImage()); err == nil {
			t.Errorf("NewChecked(%+v): expected an error", cfg)
		}
	}
	for _, gather := range []GatherMode{GatherBatched, GatherTree} {
		c, err := NewChecked(Config{Nodes: 4, Workers: 4, Gather: gather}, progs.NewImage())
		if err != nil {
			t.Fatalf("Workers=4 with %v gather: %v", gather, err)
		}
		if got := c.Engine().Workers(); got != 4 {
			t.Fatalf("Workers=4 with %v gather: kernel runs %d workers", gather, got)
		}
	}
}
