package pm2

import (
	"reflect"
	"testing"
)

// runParallelWorkload drives a migration- and negotiation-heavy workload
// on a cluster with the given kernel worker count and returns its
// observable outcome: the full trace bytes and the cluster stats.
func runParallelWorkload(t *testing.T, workers int) (string, Stats) {
	t.Helper()
	c := newCluster(t, Config{Nodes: 8, Workers: workers})
	// Ping-pong threads hop between nodes (cross-lane migrations), and
	// multi-slot isomallocs force §4.4 negotiations through node 0's
	// lock manager — initiators, sellers and the lock queue all live on
	// different lanes.
	for i := 0; i < 8; i++ {
		c.Spawn(i, "pingpong", 6)
		c.Spawn(i, "allocone", 200_000)
	}
	c.Run(0)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return c.Trace().String(), c.Stats()
}

// TestParallelClusterMatchesSerial exercises the full pm2 runtime on the
// parallel kernel — this is the test `go test -race ./internal/pm2` uses
// to shake out the windowed executor — and pins that the trace bytes and
// every stat match the serial run exactly.
func TestParallelClusterMatchesSerial(t *testing.T) {
	serialTrace, serialStats := runParallelWorkload(t, 1)
	if serialStats.Migrations == 0 || serialStats.Negotiations == 0 {
		t.Fatalf("workload performed %d migrations / %d negotiations — not exercising the kernel",
			serialStats.Migrations, serialStats.Negotiations)
	}
	for _, workers := range []int{2, 4, 8} {
		gotTrace, gotStats := runParallelWorkload(t, workers)
		if gotTrace != serialTrace {
			t.Fatalf("workers=%d trace deviates from serial run:\ngot:\n%s\nwant:\n%s",
				workers, gotTrace, serialTrace)
		}
		if !reflect.DeepEqual(gotStats, serialStats) {
			t.Fatalf("workers=%d stats deviate:\ngot:  %+v\nwant: %+v", workers, gotStats, serialStats)
		}
	}
}

// TestParallelRejectsBatchedGather pins the construction-time guard: the
// batched/tree gather initiators read peer hints cross-lane, which a
// parallel kernel cannot allow.
func TestParallelRejectsBatchedGather(t *testing.T) {
	for _, gather := range []GatherMode{GatherBatched, GatherTree} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Workers=4 with %v gather: expected panic", gather)
				}
			}()
			newCluster(t, Config{Nodes: 4, Workers: 4, Gather: gather})
		}()
	}
}
