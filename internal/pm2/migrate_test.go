package pm2

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/layout"
	"repro/internal/progs"
	"repro/internal/simtime"
)

func TestFreshPageBytes(t *testing.T) {
	const pg = layout.PageSize
	base := layout.SlotBase(0)
	touched := make(map[Addr]bool)

	// First span in a page charges its own bytes.
	if got := freshPageBytes(touched, base+100, base+300); got != 200 {
		t.Fatalf("first span charged %d bytes, want 200", got)
	}
	// A second span in the same page is free: the page was already
	// faulted and cleared.
	if got := freshPageBytes(touched, base+1000, base+1500); got != 0 {
		t.Fatalf("same-page span charged %d bytes, want 0", got)
	}
	// A span crossing into a fresh page charges only the fresh part.
	if got := freshPageBytes(touched, base+Addr(pg)-100, base+Addr(pg)+200); got != 200 {
		t.Fatalf("boundary span charged %d bytes, want 200", got)
	}
	// A span covering several fresh pages charges all of its bytes.
	if got := freshPageBytes(touched, base+Addr(2*pg), base+Addr(5*pg)); got != 3*pg {
		t.Fatalf("multi-page span charged %d bytes, want %d", got, 3*pg)
	}
	// Replaying it charges nothing.
	if got := freshPageBytes(touched, base+Addr(2*pg), base+Addr(5*pg)); got != 0 {
		t.Fatalf("replayed span charged %d bytes, want 0", got)
	}
}

// fragallocSrc builds a deliberately fragmented data group: r1 pairs of
// 200-byte blocks, the first of each pair freed — so the used spans are
// interleaved with gaps and many spans share a freshly-installed page —
// then migrates to node 1.
const fragallocSrc = `
.program fragalloc
main:
    enter 8
    store [fp-4], r1      ; pairs remaining
ftop:
    load  r2, [fp-4]
    loadi r3, 0
    beq   r2, r3, fmig
    loadi r1, 200
    callb isomalloc
    store [fp-8], r0      ; a
    loadi r1, 200
    callb isomalloc       ; b survives
    load  r1, [fp-8]
    callb isofree         ; freeing a leaves a gap before b
    load  r2, [fp-4]
    addi  r2, r2, -1
    store [fp-4], r2
    br    ftop
fmig:
    loadi r1, 1
    callb migrate
    halt
`

// TestMultiSpanZeroFillNotDoubleCharged is the first-touch accounting
// regression (charge zero-fill once per fresh page of each installed
// group): on a thread whose data group is many gap-separated spans in
// the same slot, used-blocks packing must migrate strictly cheaper than
// whole-slot packing, and the spans sharing a page must not each pay the
// page's first touch — so the fragmented group's install stays cheaper
// than one contiguous span of the same byte total would be.
func TestMultiSpanZeroFillNotDoubleCharged(t *testing.T) {
	migrate := func(pack PackMode) (lat simtime.Time, wire uint64) {
		im := progs.NewImage()
		asm.MustAssemble(im, fragallocSrc)
		c := New(Config{Nodes: 2, Pack: pack}, im)
		c.Spawn(0, "fragalloc", 10)
		c.Run(0)
		st := c.Stats()
		if st.Migrations != 1 {
			t.Fatalf("%v: %d migrations, want 1", pack, st.Migrations)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", pack, err)
		}
		return st.MigrationLatencies[0], st.Net.Bytes
	}
	used, usedWire := migrate(PackUsed)
	whole, wholeWire := migrate(PackWhole)
	if used >= whole {
		t.Fatalf("multi-span used-blocks migration (%v) not below whole-slot (%v)", used, whole)
	}
	if usedWire >= wholeWire {
		t.Fatalf("used-blocks wire bytes %d not below whole-slot %d", usedWire, wholeWire)
	}
}
