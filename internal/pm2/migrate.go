package pm2

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/marcel"
	"repro/internal/simtime"
)

// Iso-address migration (paper §2 steps 1–3 with the §4.2 slot machinery):
//
//  1. the thread is frozen (registers spilled into its in-memory
//     descriptor) and its slot groups are packed into a Madeleine buffer —
//     whole slots or just the used extents, per Config.Pack. The source
//     mappings are destroyed; ownership bits change on no node.
//  2. the buffer travels over BIP.
//  3. the destination mmaps the *same* virtual ranges, copies the extents,
//     rebuilds free lists for used-mode data groups, and re-enqueues the
//     thread. Nothing is relocated and no pointer is updated.

// migrateOut is the marcel Migrate hook: the thread is already frozen and
// detached.
func (n *Node) migrateOut(t *marcel.Thread, dest int) {
	switch n.c.cfg.Policy {
	case PolicyIso:
		if n.c.cfg.Convoy {
			n.convoyMigrateOut([]*marcel.Thread{t}, dest)
			return
		}
		n.isoMigrateOut(t, dest)
	case PolicyRelocate:
		n.relocMigrateOut(t, dest)
	default:
		panic("pm2: unknown migration policy")
	}
}

// packThreadImage appends one frozen thread's migration record to buf:
//
//	desc u32 | start u64 | pack-mode u32 | nGroups u32
//	per group: base u32 | nSlots u32 | kind u32 | nSpans u32
//	  per span: off u32 | length-prefixed data
//
// The span payloads are borrowed (PackBytesVec over page aliases), never
// copied host-side: they are gathered exactly once, into the wire body, at
// send time. The page aliases stay valid past Evict — the simulator never
// recycles page arrays — and the send materializes synchronously, so the
// caller may evict immediately after the message leaves. zeroCopy selects
// the charge discipline: the legacy path pays the paper's per-byte pack
// memcpy, the scatter-gather path pays one DMA-setup per span. The
// returned groups are what the caller must Evict once the message is sent.
func (n *Node) packThreadImage(buf *madeleine.Buffer, t *marcel.Thread, start simtime.Time, zeroCopy bool) []core.SlotGroup {
	model := n.c.cfg.Model
	ar := n.sched.Arena(t)
	groups, err := ar.Groups()
	if err != nil {
		panic(fmt.Sprintf("pm2: packing thread %#x: %v", t.TID, err))
	}

	buf.PackU32(t.Desc)
	buf.PackU64(uint64(start))
	buf.PackU32(uint32(n.c.cfg.Pack))
	buf.PackU32(uint32(len(groups)))

	for _, g := range groups {
		h, err := core.ReadSlotHeader(n.space, g.Base)
		if err != nil {
			panic(err)
		}
		var spans []core.Span
		if n.c.cfg.Pack == PackWhole {
			spans = core.WholeSpan(&h)
		} else {
			switch g.Kind {
			case core.KindStack:
				// The live stack runs from the frozen SP to the
				// slot end; SP is in the descriptor we just wrote.
				spans, err = core.UsedSpansStack(&h, marcel.DescSize, t.Regs.SP)
			case core.KindData:
				spans, err = core.UsedSpansData(n.space, &h)
			default:
				err = fmt.Errorf("bad slot kind %d", g.Kind)
			}
			if err != nil {
				panic(fmt.Sprintf("pm2: packing thread %#x: %v", t.TID, err))
			}
		}
		buf.PackU32(g.Base)
		buf.PackU32(uint32(g.NSlots))
		buf.PackU32(uint32(g.Kind))
		buf.PackU32(uint32(len(spans)))
		for _, s := range spans {
			frags, err := n.space.ReadAliases(g.Base+Addr(s.Off), int(s.Len))
			if err != nil {
				panic(err)
			}
			if zeroCopy {
				n.actor.Charge(model.DmaSetup(1))
			} else {
				n.actor.Charge(model.Memcpy(int(s.Len)))
			}
			buf.PackU32(s.Off)
			buf.PackBytesVec(frags)
		}
	}
	return groups
}

// evictGroups sets the packed memory areas free on the source (paper step
// 1); the ownership bits stay 0 everywhere — the thread still owns its
// slots.
func (n *Node) evictGroups(groups []core.SlotGroup) {
	for _, g := range groups {
		if err := n.slots.Evict(layout.SlotIndex(g.Base), g.NSlots); err != nil {
			panic(err)
		}
	}
}

func (n *Node) isoMigrateOut(t *marcel.Thread, dest int) {
	buf := n.c.bufPool.Get()
	groups := n.packThreadImage(buf, t, n.actor.Now(), false)
	n.evictGroups(groups)
	n.ep.SendBody(dest, chMigrate, buf)
	n.c.bufPool.Put(buf)
}

// freshPageBytes returns how many bytes of the extent [lo, hi) lie in
// pages not yet recorded in touched, and marks every page the extent
// covers as touched. It is the first-touch accounting unit of migration
// install: the portion of a span landing on already-touched pages costs
// no zero-fill, because those pages were cleared when an earlier span
// faulted them in. A page's clear is deliberately attributed to the
// first-touching span's bytes rather than to the full PageSize: the
// cost model's ZeroFill constant is calibrated byte-proportionally
// (Figure 11, the §5 migration headline), and this keeps single-span
// groups — every calibrated path — charged exactly as before while
// removing the repeat charges for multi-span groups.
func freshPageBytes(touched map[Addr]bool, lo, hi Addr) int {
	fresh := 0
	for page := layout.PageFloor(lo); page < hi; page += layout.PageSize {
		if touched[page] {
			continue
		}
		touched[page] = true
		s, e := lo, hi
		if page > s {
			s = page
		}
		if page+layout.PageSize < e {
			e = page + layout.PageSize
		}
		fresh += int(e - s)
	}
	return fresh
}

// installGroups unpacks and installs nGroups slot groups of one thread
// record from inner, charging copy (or DMA-setup) and first-touch costs,
// and returns the payload bytes installed. Shared by the single-thread and
// convoy receive paths.
func (n *Node) installGroups(inner *madeleine.Buffer, mode PackMode, nGroups int, zeroCopy bool) int {
	model := n.c.cfg.Model
	installed := 0
	if n.touchScratch == nil {
		n.touchScratch = make(map[Addr]bool, 64)
	}
	for gi := 0; gi < nGroups; gi++ {
		base := Addr(inner.U32())
		nSlots := int(inner.U32())
		kind := core.SlotKind(inner.U32())
		nSpans := int(inner.U32())

		// An adequate memory area is allocated on the destination
		// node (paper step 3) — at the same virtual addresses. The
		// iso-address discipline guarantees this cannot collide.
		if err := n.slots.Install(layout.SlotIndex(base), nSlots); err != nil {
			panic(fmt.Sprintf("pm2: iso-address collision installing %#08x on node %d: %v", base, n.id, err))
		}

		// First-touch accounting is per page, not per span: the kernel
		// clears a freshly installed page once, when the first span
		// lands on it. Later spans of the same group that fall into an
		// already-touched page pay only the copy — charging their bytes
		// zero-fill again would double-charge the page's first touch.
		// The page set is per group (scratch map, cleared here), as it
		// always was.
		clear(n.touchScratch)
		n.spanScratch = n.spanScratch[:0]
		for si := 0; si < nSpans; si++ {
			off := inner.U32()
			data := inner.BytesSection()
			if inner.Err() != nil {
				panic("pm2: corrupt migration message")
			}
			if err := n.space.Write(base+Addr(off), data); err != nil {
				panic(err)
			}
			if zeroCopy {
				n.actor.Charge(model.DmaSetup(1))
			} else {
				n.actor.Charge(model.Memcpy(len(data)))
			}
			if fresh := freshPageBytes(n.touchScratch, base+Addr(off), base+Addr(off)+Addr(len(data))); fresh > 0 {
				n.actor.Charge(model.ZeroFill(fresh)) // first touch of fresh pages
			}
			installed += len(data)
			n.spanScratch = append(n.spanScratch, core.Span{Off: off, Len: uint32(len(data))})
		}
		if mode == PackUsed && kind == core.KindData {
			if err := core.RebuildFreeList(n.space, base, n.spanScratch); err != nil {
				panic(err)
			}
		}
	}
	return installed
}

// onMigrateMsg is the destination half.
func (n *Node) onMigrateMsg(src int, msg *madeleine.Buffer) {
	inner := madeleine.FromBytes(msg.BytesSection())

	desc := inner.U32()
	start := simtime.Time(inner.U64())
	mode := PackMode(inner.U32())
	nGroups := int(inner.U32())

	installed := n.installGroups(inner, mode, nGroups, false)
	if inner.Err() != nil {
		panic("pm2: corrupt migration message")
	}

	// Thread execution is resumed (paper step 3): thaw from memory only.
	if _, err := n.sched.Thaw(desc); err != nil {
		panic(fmt.Sprintf("pm2: thawing migrated thread on node %d: %v", n.id, err))
	}
	n.kick()

	lat := n.actor.Now() - start
	n.actor.Commit(func() {
		n.c.stats.Migrations++
		n.c.stats.MigratedBytes += uint64(installed)
		n.c.stats.MigrationLatencies = append(n.c.stats.MigrationLatencies, lat)
	})
}
