package pm2

import (
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/progs"
)

// TestFig6SlotLifecycle walks the exact four steps of the paper's Figure 6:
//
//	Step 1  a thread is created and acquires a slot owned by the local
//	        node to store its stack;
//	Step 2  the thread acquires other slots from the local node, to store
//	        its private data;
//	Step 3  the thread migrates along with its slots;
//	Step 4  the thread dies and its slots are acquired by the destination
//	        node.
//
// At every step the test checks who owns what: the node bitmaps, the
// thread's in-memory slot list, and the mapped ranges.
func TestFig6SlotLifecycle(t *testing.T) {
	im := progs.NewImage()
	mustAsm(im, `
.program fig6
main:
    enter 4
    callb yield         ; checkpoint after step 1 (stack slot only)
    loadi r1, 40000
    callb isomalloc
    store [fp-4], r0
    callb yield         ; checkpoint after step 2 (stack + data slots)
    loadi r1, 1
    callb migrate       ; step 3
    callb yield         ; checkpoint after arrival
    halt                ; step 4: death releases everything to node 1
`)
	c := New(Config{Nodes: 2}, im)
	node0, node1 := c.Node(0), c.Node(1)
	free0 := node0.Slots().OwnedFree()
	free1 := node1.Slots().OwnedFree()

	tid := c.SpawnSync(0, "fig6", 0)

	// until steps the engine event-by-event to the first instant cond
	// holds, so each Figure 6 step can be inspected exactly when it
	// happens.
	until := func(what string, cond func() bool) {
		for i := 0; i < 1_000_000; i++ {
			if cond() {
				return
			}
			if !c.eng.Step() {
				break
			}
		}
		if !cond() {
			t.Fatalf("never reached: %s", what)
		}
	}

	// --- Step 1: the stack slot has left node 0's bitmap and belongs to
	// the thread.
	th, ok := node0.Scheduler().Lookup(tid)
	if !ok {
		t.Fatal("thread not resident on node 0")
	}
	if got := node0.Slots().OwnedFree(); got != free0-1 {
		t.Fatalf("step 1: node 0 owns %d, want %d", got, free0-1)
	}
	groups, err := node0.Scheduler().Arena(th).Groups()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Kind != core.KindStack {
		t.Fatalf("step 1: thread groups = %+v", groups)
	}
	stackBase := groups[0].Base

	// --- Step 2: a data slot joined the thread's list; node 0 lost
	// another slot.
	until("data slot attached", func() bool {
		gs, err := node0.Scheduler().Arena(th).Groups()
		return err == nil && len(gs) == 2
	})
	groups, err = node0.Scheduler().Arena(th).Groups()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[1].Kind != core.KindData {
		t.Fatalf("step 2: thread groups = %+v", groups)
	}
	dataBase := groups[1].Base
	if got := node0.Slots().OwnedFree(); got != free0-2 {
		t.Fatalf("step 2: node 0 owns %d, want %d", got, free0-2)
	}
	// Both slots are mapped on node 0 and unmapped on node 1.
	for _, base := range []Addr{stackBase, dataBase} {
		if !node0.Space().IsMapped(base, layout.SlotSize) {
			t.Fatalf("step 2: %#x not mapped at source", base)
		}
		if node1.Space().IsMapped(base, 1) {
			t.Fatalf("step 2: %#x mapped at destination already", base)
		}
	}

	// --- Step 3: after migration the same addresses are mapped on node 1
	// and gone from node 0; no bitmap changed ("the bitmaps do not undergo
	// any change on thread migration").
	bm0 := node0.Slots().Bitmap().Clone()
	bm1 := node1.Slots().Bitmap().Clone()
	until("thread arrived on node 1", func() bool {
		_, there := node1.Scheduler().Lookup(tid)
		return there
	})
	if _, still := node0.Scheduler().Lookup(tid); still {
		t.Fatal("step 3: thread still on node 0")
	}
	th1, ok := node1.Scheduler().Lookup(tid)
	if !ok {
		t.Fatal("step 3: thread not on node 1")
	}
	if th1.Desc != th.Desc {
		t.Fatalf("step 3: descriptor moved: %#x vs %#x", th1.Desc, th.Desc)
	}
	if !node0.Slots().Bitmap().Equal(bm0) || !node1.Slots().Bitmap().Equal(bm1) {
		t.Fatal("step 3: a bitmap changed during migration")
	}
	for _, base := range []Addr{stackBase, dataBase} {
		if node0.Space().IsMapped(base, 1) {
			t.Fatalf("step 3: %#x still mapped at source", base)
		}
		if !node1.Space().IsMapped(base, layout.SlotSize) {
			t.Fatalf("step 3: %#x not mapped at destination", base)
		}
	}
	// The slot list arrived intact, readable from node 1's memory.
	groups, err = node1.Scheduler().Arena(th1).Groups()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0].Base != stackBase || groups[1].Base != dataBase {
		t.Fatalf("step 3: groups = %+v", groups)
	}

	// --- Step 4: on death, both slots are acquired by the destination
	// node.
	c.Run(0)
	if got := node1.Slots().OwnedFree(); got != free1+2 {
		t.Fatalf("step 4: node 1 owns %d, want %d", got, free1+2)
	}
	if got := node0.Slots().OwnedFree(); got != free0-2 {
		t.Fatalf("step 4: node 0 owns %d, want %d", got, free0-2)
	}
	if !node1.Slots().Bitmap().Test(layout.SlotIndex(stackBase)) ||
		!node1.Slots().Bitmap().Test(layout.SlotIndex(dataBase)) {
		t.Fatal("step 4: node 1 did not acquire the thread's slots")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
