package pm2

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/progs"
	"repro/internal/simtime"
)

// TestPartitionSuspectRejoinNoEvacuation is the heartbeat
// false-positive property (two-stage detection): a live node
// partitioned away from the heartbeat vantage (rank 0) long enough to
// blow its lease must be suspected — routed around — but never
// declared dead or evacuated, and must rejoin cleanly once the
// partition heals. Declaration requires the node to actually be
// crashed; a partition alone, however long, is not evidence of death.
func TestPartitionSuspectRejoinNoEvacuation(t *testing.T) {
	const (
		nodes  = 4
		victim = 2
		tick   = simtime.Millisecond
	)
	spec := fmt.Sprintf("partition:%d-0@2000..6000;partition:%d-1@2000..6000;partition:%d-3@2000..6000",
		victim, victim, victim)
	traces := map[int]string{}
	for _, workers := range []int{1, 4} {
		cfg := Config{
			Nodes:      nodes,
			Workers:    workers,
			RPCTimeout: -1, // cost-model default: two-stage detection on
			Faults:     mustPlan(t, spec),
		}
		c := New(cfg, progs.NewImage())
		for i := 0; i < 2*nodes; i++ {
			c.Spawn(i%nodes, "worker", 20_000)
		}
		tickHeartbeats(c, tick, 40)
		c.Run(0)

		if c.NodeDown(victim) {
			t.Fatal("live partitioned node declared dead")
		}
		s := c.Stats()
		if s.Evacuations != 0 || s.EvacuatedThreads != 0 {
			t.Fatalf("evacuations = %d (threads %d), want 0 — the node is alive",
				s.Evacuations, s.EvacuatedThreads)
		}
		if s.Suspicions != 1 || s.Rejoins != 1 {
			t.Fatalf("suspicions = %d, rejoins = %d, want 1 and 1", s.Suspicions, s.Rejoins)
		}
		// Window 2000..6000 with 1 ms ticks and a 2-miss lease: misses
		// at 2 ms and 3 ms suspect the node at 3 ms; the first round
		// after the heal, 6 ms, clears it — 3 ms spent suspected.
		if len(s.RejoinLatencies) != 1 || s.RejoinLatencies[0] != 3*tick {
			t.Fatalf("rejoin latencies = %v, want [%v]", s.RejoinLatencies, 3*tick)
		}
		finished := 0
		for _, line := range c.Trace().Lines() {
			if strings.Contains(line, "finished on node") {
				finished++
			}
		}
		if finished != 2*nodes {
			t.Fatalf("%d workers finished, want %d:\n%s", finished, 2*nodes, c.Trace().String())
		}
		out := c.Trace().String()
		for _, want := range []string{
			fmt.Sprintf("[suspect] node %d suspected", victim),
			fmt.Sprintf("[rejoin] node %d rejoined", victim),
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("trace lacks %q:\n%s", want, out)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		traces[workers] = out
	}
	if traces[1] != traces[4] {
		t.Fatal("suspicion lifecycle trace differs between the serial and parallel kernels")
	}
}

// TestGatherTimeoutAcrossPartition pins the deadline layer on the
// negotiation path for every gather strategy: a negotiation launched
// while one rank is unreachable must abandon that rank at its deadline
// (counting Stats.RPCTimeouts) and still succeed by planning around
// the missing peer's slots. The victim is rank 7 of 8 — the deepest
// leaf of the binomial combining tree (0 → 4 → 6 → 7) — so the tree
// case additionally exercises the depth-scaled relay deadlines: with a
// flat deadline the relays' own retry budgets would expire their
// parents first and one lost leaf would cascade into losing every
// subtree above it.
func TestGatherTimeoutAcrossPartition(t *testing.T) {
	const (
		nodes  = 8
		victim = 7
	)
	evs := make([]string, 0, nodes-1)
	for p := 0; p < nodes; p++ {
		if p != victim {
			evs = append(evs, fmt.Sprintf("partition:%d-%d@1000..20000", victim, p))
		}
	}
	spec := strings.Join(evs, ";")
	for _, gather := range []GatherMode{GatherSequential, GatherBatched, GatherTree, GatherDelta} {
		t.Run(fmt.Sprintf("gather=%v", gather), func(t *testing.T) {
			cfg := Config{
				Nodes:      nodes,
				Gather:     gather,
				RPCTimeout: -1,
				Faults:     mustPlan(t, spec),
			}
			c := New(cfg, progs.NewImage())
			ok := false
			c.Engine().At(2000*simtime.Microsecond, func() {
				c.At(0, func(n *Node) { n.Negotiate(3, func(r bool) { ok = r }) })
			})
			c.Run(0)

			if !ok {
				t.Fatalf("negotiation failed with one rank unreachable:\n%s", c.Trace().String())
			}
			s := c.Stats()
			if s.RPCTimeouts == 0 {
				t.Fatal("no RPC timeouts — the deadline layer never fired against the partitioned rank")
			}
			if s.NegotiationFailures != 0 {
				t.Fatalf("negotiation failures = %d, want 0", s.NegotiationFailures)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSlowNodeTimesOutButLives pins the slow-fault interaction with
// both the deadline layer and failure detection: a drastically slowed
// node blows RPC deadlines (its replies arrive late and are dropped),
// yet it is never suspected — detection is reachability-based, and a
// slow link delivers heartbeats eventually — and never evacuated. The
// negotiation plans around the slots it could not read in time and
// still succeeds.
func TestSlowNodeTimesOutButLives(t *testing.T) {
	const (
		nodes  = 4
		victim = 3
	)
	cfg := Config{
		Nodes:      nodes,
		RPCTimeout: -1,
		Faults:     mustPlan(t, fmt.Sprintf("slow:%dx50@0..40000", victim)),
	}
	c := New(cfg, progs.NewImage())
	for i := 0; i < nodes; i++ {
		c.Spawn(i, "worker", 20_000)
	}
	tickHeartbeats(c, simtime.Millisecond, 40)
	ok := false
	c.Engine().At(1000*simtime.Microsecond, func() {
		c.At(0, func(n *Node) { n.Negotiate(3, func(r bool) { ok = r }) })
	})
	c.Run(0)

	if !ok {
		t.Fatalf("negotiation failed with one rank slowed:\n%s", c.Trace().String())
	}
	s := c.Stats()
	if s.RPCTimeouts == 0 {
		t.Fatal("no RPC timeouts — a 50x wire slowdown should blow the two-round-trip deadline")
	}
	if s.Suspicions != 0 || s.Evacuations != 0 {
		t.Fatalf("suspicions = %d, evacuations = %d, want 0 and 0 — slow is not dead",
			s.Suspicions, s.Evacuations)
	}
	if c.NodeDown(victim) {
		t.Fatal("slow node declared dead")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
