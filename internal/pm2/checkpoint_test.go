package pm2

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/progs"
	"repro/internal/simtime"
)

// runCheckpointed runs the workload to checkpointAt, captures, resumes
// in place to completion, and returns the serialized checkpoint plus
// the full continuation trace.
func runCheckpointed(t *testing.T, cfg Config, checkpointAt simtime.Time) ([]byte, string) {
	t.Helper()
	c := New(cfg, progs.NewImage())
	for i := 0; i < 8; i++ {
		c.Spawn(i%cfg.Nodes, "worker", 20_000)
	}
	c.Engine().RunUntil(checkpointAt)
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	data := ck.Encode()
	c.Resume()
	c.Run(0)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("after in-place resume: %v", err)
	}
	return data, c.Trace().String()
}

// TestCheckpointRoundTrip is the headline property: checkpoint →
// encode → decode → restore → run yields a byte-identical trace to
// resuming the original cluster in place, under the serial and the
// parallel kernel, with the worker counts freely mixed between the
// capture side and the restore side.
func TestCheckpointRoundTrip(t *testing.T) {
	base := Config{Nodes: 4}
	const at = 3 * simtime.Millisecond
	traces := map[int]string{}
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		data, resumed := runCheckpointed(t, cfg, at)

		ck, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("workers=%d: decode: %v", workers, err)
		}
		if len(ck.NodeStates) != 4 {
			t.Fatalf("workers=%d: %d node states", workers, len(ck.NodeStates))
		}
		parked := 0
		for _, st := range ck.NodeStates {
			parked += len(st.Threads)
		}
		if parked == 0 {
			t.Fatalf("workers=%d: workload drained before the checkpoint; nothing captured", workers)
		}
		// Restore under the OTHER worker count: the checkpoint is
		// kernel-agnostic by design.
		rcfg := base
		rcfg.Workers = 5 - workers
		rc, err := RestoreCluster(rcfg, progs.NewImage(), ck)
		if err != nil {
			t.Fatalf("workers=%d: restore: %v", workers, err)
		}
		rc.Run(0)
		if err := rc.CheckInvariants(); err != nil {
			t.Fatalf("workers=%d: after restored run: %v", workers, err)
		}
		if got := rc.Trace().String(); got != resumed {
			t.Fatalf("workers=%d: restored continuation diverges from in-place resume:\n--- resumed\n%s\n--- restored\n%s", workers, resumed, got)
		}
		if finished := strings.Count(resumed, "finished on node"); finished != 8 {
			t.Fatalf("workers=%d: %d workers finished, want 8:\n%s", workers, finished, resumed)
		}
		traces[workers] = resumed
	}
	if traces[1] != traces[4] {
		t.Fatal("checkpointed trace differs between workers 1 and 4")
	}
}

// TestCheckpointBlockedSleeper pins the drain-forward behavior: a
// checkpoint requested while the only thread is asleep drains to the
// timer, parks the woken thread, and both continuations agree.
func TestCheckpointBlockedSleeper(t *testing.T) {
	im := progs.NewImage()
	asm.MustAssemble(im, sleeperSrc)
	cfg := Config{Nodes: 2}
	c := New(cfg, im)
	c.Spawn(1, "sleeper", 0)
	c.Engine().RunUntil(1 * simtime.Millisecond)
	ck, err := c.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// The sleeper sleeps 50 ms; quiescence is only reachable after its
	// timer fires.
	if ck.Now < 50*simtime.Millisecond {
		t.Fatalf("quiescent instant %v predates the sleeper's timer", ck.Now)
	}
	c.Resume()
	c.Run(0)
	rc, err := RestoreCluster(cfg, im, ck)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	rc.Run(0)
	want := "[node1] sleeper woke on node 1"
	if got := rc.Trace().String(); got != c.Trace().String() || !strings.Contains(got, want) {
		t.Fatalf("restored sleeper diverged:\n--- resumed\n%s\n--- restored\n%s", c.Trace().String(), got)
	}
}

// TestRestoreWithFaultPlan covers the restart-and-refail composition:
// a restore accepts a fresh fault plan whose events all lie strictly
// after the checkpoint clock — and the plan is live, driving detection
// and evacuation on the restored cluster — while events at or before
// the clock are rejected.
func TestRestoreWithFaultPlan(t *testing.T) {
	data, _ := runCheckpointed(t, Config{Nodes: 2}, 2*simtime.Millisecond)
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}

	crash := func(at simtime.Time) *fault.Plan {
		return &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Node: 1, At: at}}}
	}
	t.Run("event before the clock", func(t *testing.T) {
		cfg := Config{Nodes: 2, Faults: crash(ck.Now - simtime.Millisecond)}
		if _, err := RestoreCluster(cfg, progs.NewImage(), ck); err == nil || !strings.Contains(err.Error(), "checkpoint clock") {
			t.Fatalf("error = %v, want checkpoint-clock rejection", err)
		}
	})
	t.Run("event at the clock", func(t *testing.T) {
		cfg := Config{Nodes: 2, Faults: crash(ck.Now)}
		if _, err := RestoreCluster(cfg, progs.NewImage(), ck); err == nil || !strings.Contains(err.Error(), "checkpoint clock") {
			t.Fatalf("error = %v, want checkpoint-clock rejection", err)
		}
	})
	t.Run("re-crash after restore", func(t *testing.T) {
		crashAt := ck.Now + 2*simtime.Millisecond
		cfg := Config{Nodes: 2, Faults: crash(crashAt)}
		rc, err := RestoreCluster(cfg, progs.NewImage(), ck)
		if err != nil {
			t.Fatalf("restore with future fault plan: %v", err)
		}
		// Heartbeat rounds after the restored clock, standing in for an
		// attached balancer (as tickHeartbeats does for fresh clusters).
		for i := 1; i <= 32; i++ {
			rc.Engine().At(ck.Now+simtime.Time(i)*simtime.Millisecond, rc.HeartbeatTick)
		}
		rc.Run(0)
		if !rc.NodeDown(1) {
			t.Fatal("restored cluster never declared the re-crashed node dead")
		}
		if ev := rc.Stats().Evacuations; ev != 1 {
			t.Fatalf("Evacuations = %d, want 1 after the restored crash", ev)
		}
		if err := rc.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCheckpointRejectsCorruption covers the digest seal: any byte
// flip, truncation or foreign header fails DecodeCheckpoint loudly.
func TestCheckpointRejectsCorruption(t *testing.T) {
	data, _ := runCheckpointed(t, Config{Nodes: 2}, 2*simtime.Millisecond)
	if _, err := DecodeCheckpoint(data); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x40
	if _, err := DecodeCheckpoint(flip); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("byte flip: error = %v, want digest mismatch", err)
	}
	if _, err := DecodeCheckpoint(data[:len(data)*2/3]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	if _, err := DecodeCheckpoint([]byte("pm2ckpt v9\ndigest 0000000000000000\n")); err == nil {
		t.Fatal("foreign version accepted")
	}
}

// TestCheckpointRefusals covers the states a checkpoint refuses to
// capture and the configurations a restore refuses to land on.
func TestCheckpointRefusals(t *testing.T) {
	t.Run("heap in use", func(t *testing.T) {
		c := New(Config{Nodes: 2}, progs.NewImage())
		c.Spawn(0, "heapjunk", 256)
		c.Run(0)
		if _, err := c.Checkpoint(); err == nil || !strings.Contains(err.Error(), "pm2_malloc") {
			t.Fatalf("error = %v, want heap refusal", err)
		}
	})
	t.Run("fault plan installed", func(t *testing.T) {
		c := New(Config{Nodes: 2, Faults: mustPlan(t, "crash:1@1000")}, progs.NewImage())
		if _, err := c.Checkpoint(); err == nil || !strings.Contains(err.Error(), "fault plan") {
			t.Fatalf("error = %v, want fault-plan refusal", err)
		}
	})
	t.Run("relocation policy", func(t *testing.T) {
		c := New(Config{Nodes: 2, Policy: PolicyRelocate}, progs.NewImage())
		if _, err := c.Checkpoint(); err == nil || !strings.Contains(err.Error(), "iso-address") {
			t.Fatalf("error = %v, want policy refusal", err)
		}
	})
	t.Run("config mismatch", func(t *testing.T) {
		data, _ := runCheckpointed(t, Config{Nodes: 2}, 2*simtime.Millisecond)
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreCluster(Config{Nodes: 4}, progs.NewImage(), ck); err == nil || !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("node-count mismatch: error = %v", err)
		}
		if _, err := RestoreCluster(Config{Nodes: 2, Arbiter: ArbiterOptimistic}, progs.NewImage(), ck); err == nil || !strings.Contains(err.Error(), "mismatch") {
			t.Fatalf("arbiter mismatch: error = %v", err)
		}
	})
}
