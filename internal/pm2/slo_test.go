package pm2

import (
	"math"
	"testing"

	"repro/internal/progs"
	"repro/internal/simtime"
)

// TestNearestRankCeilRule pins the percentile helper against
// hand-computed nearest-rank values, including the small-series cases
// the old round-half-up implementation got wrong: the nearest-rank
// index must be ceil(p*n)-1.
func TestNearestRankCeilRule(t *testing.T) {
	series := func(n int) []simtime.Time {
		// 10, 20, ..., 10n µs — shuffled order must not matter.
		ls := make([]simtime.Time, n)
		for i := range ls {
			ls[i] = simtime.Time(10*(n-i)) * simtime.Microsecond
		}
		return ls
	}
	cases := []struct {
		n             int
		p50, p95, p99 float64
	}{
		// n=10: ceil(5)=5th, ceil(9.5)=10th, ceil(9.9)=10th sample.
		{10, 50, 100, 100},
		// n=13: ceil(6.5)=7th, ceil(12.35)=13th, ceil(12.87)=13th.
		// Round-half-up picked int(12.85)-1 = the 12th sample for p95.
		{13, 70, 130, 130},
		// n=20: ceil(10)=10th, ceil(19)=19th, ceil(19.8)=20th.
		{20, 100, 190, 200},
		// n=100: ceil(50)=50th, ceil(95)=95th, ceil(99)=99th.
		{100, 500, 950, 990},
		// n=1: everything is the single sample.
		{1, 10, 10, 10},
	}
	for _, tc := range cases {
		got := NearestRank(series(tc.n))
		if got.P50 != tc.p50 || got.P95 != tc.p95 || got.P99 != tc.p99 {
			t.Errorf("n=%d: got p50/p95/p99 = %v/%v/%v, want %v/%v/%v",
				tc.n, got.P50, got.P95, got.P99, tc.p50, tc.p95, tc.p99)
		}
	}
	if got := NearestRank(nil); got != (Percentiles{}) {
		t.Errorf("empty series: got %+v, want zeros", got)
	}
}

// TestNearestRankRejectsRoundHalfUp is the regression guard the issue
// asks for: it evaluates the OLD round-half-up indexing alongside the
// corrected ceil rule on a series where they disagree, and fails if the
// helper ever reverts. n=13 at p=0.95: ceil(12.35)-1 = 12 (the maximum
// sample), round-half-up int(12.85)-1 = 11 (one below it).
func TestNearestRankRejectsRoundHalfUp(t *testing.T) {
	n := 13
	ls := make([]simtime.Time, n)
	for i := range ls {
		ls[i] = simtime.Time(10*(i+1)) * simtime.Microsecond
	}
	oldIndex := int(0.95*float64(n)+0.5) - 1
	newIndex := int(math.Ceil(0.95*float64(n))) - 1
	if oldIndex == newIndex {
		t.Fatalf("test series does not discriminate the two rules (both index %d)", oldIndex)
	}
	oldP95 := ls[oldIndex].Micros()
	got := NearestRank(ls)
	if got.P95 == oldP95 {
		t.Fatalf("p95 = %v matches the round-half-up value — helper regressed to int(p*n+0.5)-1", got.P95)
	}
	if want := ls[newIndex].Micros(); got.P95 != want {
		t.Fatalf("p95 = %v, want ceil-rule value %v", got.P95, want)
	}
}

// TestSpawnCohortLifecycle drives tagged spawns end to end: every
// sample must be placed and completed, with monotone arrival ≤ placed ≤
// finished stamps, and untagged spawns must record nothing.
func TestSpawnCohortLifecycle(t *testing.T) {
	c := newCluster(t, Config{Nodes: 2})
	c.SpawnCohort(0, "worker", 2000, "api")
	c.SpawnCohort(1, "worker", 3000, "api")
	c.SpawnCohort(0, "pingpong", 2, "bounce")
	c.Spawn(1, "worker", 1000) // untagged
	c.Run(0)
	st := c.Stats()
	if len(st.CohortSamples) != 3 {
		t.Fatalf("got %d cohort samples, want 3 (untagged spawn must not record)", len(st.CohortSamples))
	}
	byCohort := map[string]int{}
	for i, s := range st.CohortSamples {
		byCohort[s.Cohort]++
		if !s.PlacedOK || !s.Done {
			t.Fatalf("sample %d (%s): placed=%v done=%v, want both true", i, s.Cohort, s.PlacedOK, s.Done)
		}
		if s.Node < 0 || s.Node >= 2 {
			t.Fatalf("sample %d: placed on node %d", i, s.Node)
		}
		if s.Placed < s.Arrival || s.Finished < s.Placed {
			t.Fatalf("sample %d: non-monotone stamps arrival=%v placed=%v finished=%v",
				i, s.Arrival, s.Placed, s.Finished)
		}
		if s.EndToEndLatency() <= 0 || s.PlacementLatency() < 0 {
			t.Fatalf("sample %d: latencies e2e=%v placement=%v", i, s.EndToEndLatency(), s.PlacementLatency())
		}
	}
	if byCohort["api"] != 2 || byCohort["bounce"] != 1 {
		t.Fatalf("cohort counts = %v, want api:2 bounce:1", byCohort)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSpawnCohortCompletesAcrossMigration pins the part that makes the
// accounting trustworthy under the balancer: a tagged thread that
// migrates (pingpong hops between both nodes) must still complete its
// sample — TIDs survive migration and the exit hook fires wherever the
// thread dies.
func TestSpawnCohortCompletesAcrossMigration(t *testing.T) {
	c := newCluster(t, Config{Nodes: 2})
	c.SpawnCohort(0, "pingpong", 5, "hopper")
	c.Run(0)
	st := c.Stats()
	if st.Migrations != 5 {
		t.Fatalf("migrations = %d, want 5", st.Migrations)
	}
	if len(st.CohortSamples) != 1 || !st.CohortSamples[0].Done {
		t.Fatalf("sample not completed across migrations: %+v", st.CohortSamples)
	}
	// 5 hops from node 0 ends on node 1; the completion stamp must come
	// from after the last hop, i.e. at least the sum of the migration
	// latencies after placement.
	s := st.CohortSamples[0]
	var mig simtime.Time
	for _, l := range st.MigrationLatencies {
		mig += l
	}
	if s.EndToEndLatency() < mig {
		t.Fatalf("end-to-end %v < total migration time %v", s.EndToEndLatency(), mig)
	}
}

// allToNode1 is a slot distribution that leaves node 0 with nothing, so
// any thread creation there must buy a slot through the §4.4 protocol.
type allToNode1 struct{}

func (allToNode1) Owns(slot, node, p int) bool { return node == 1 }
func (allToNode1) Name() string                { return "all-to-node1" }

// TestSpawnCohortNegotiatedPlacement forces the placement through the
// §4.4 negotiation path: node 0 owns zero slots, so the cohort spawn
// must negotiate one before creating the thread — and the sample's
// time-to-placement must cover that negotiation.
func TestSpawnCohortNegotiatedPlacement(t *testing.T) {
	c := New(Config{Nodes: 2, Dist: allToNode1{}}, progs.NewImage())
	c.SpawnCohort(0, "worker", 1000, "t")
	c.Run(0)
	st := c.Stats()
	if st.Negotiations == 0 {
		t.Fatal("spawn on an empty node did not negotiate")
	}
	if len(st.CohortSamples) != 1 {
		t.Fatalf("got %d samples, want 1", len(st.CohortSamples))
	}
	s := st.CohortSamples[0]
	if !s.PlacedOK || !s.Done {
		t.Fatalf("sample not completed: %+v", s)
	}
	if s.PlacementLatency() < st.NegotiationLatencies[0] {
		t.Fatalf("time-to-placement %v < negotiation latency %v — the negotiation is not inside the placement window",
			s.PlacementLatency(), st.NegotiationLatencies[0])
	}
}
