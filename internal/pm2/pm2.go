// Package pm2 is the runtime system: it composes the simulated substrates
// (address spaces, BIP/Madeleine networking, Marcel threads, the isomalloc
// core) into a cluster of PM2 nodes with transparent, preemptive,
// iso-address thread migration — the system the paper describes.
//
// One heavy process runs per node; threads are created locally or remotely
// (LRPC-style), allocate private data with pm2_isomalloc, and migrate
// between nodes, voluntarily or preemptively, with no post-migration pointer
// processing. The package also implements the paper's §2 baseline — stack
// relocation with registered-pointer fixup — for the comparison figures.
package pm2

import (
	"fmt"

	"repro/internal/bip"
	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/madeleine"
	"repro/internal/policy"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// PackMode selects how slot contents travel during migration.
type PackMode int

// Pack modes.
const (
	// PackUsed ships only the used blocks and live stack (the paper's §6
	// optimization; the default).
	PackUsed PackMode = iota
	// PackWhole ships every byte of every slot.
	PackWhole
)

func (m PackMode) String() string {
	if m == PackWhole {
		return "whole-slot"
	}
	return "used-blocks"
}

// MigrationPolicy selects the migration mechanism.
type MigrationPolicy int

// Policies.
const (
	// PolicyIso is the paper's contribution: same-address reinstallation,
	// no fixups.
	PolicyIso MigrationPolicy = iota
	// PolicyRelocate is the §2 baseline: the stack is re-installed at a
	// different address on the destination and the frame chain plus
	// registered user pointers are patched. Unregistered pointers break.
	PolicyRelocate
)

func (p MigrationPolicy) String() string {
	if p == PolicyRelocate {
		return "relocate"
	}
	return "iso-address"
}

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the cluster size (>= 1).
	Nodes int
	// Dist is the initial slot distribution (default round-robin, as in
	// the paper's experiments).
	Dist core.Distribution
	// CacheCap bounds the per-node mmapped-slot cache (default 8).
	CacheCap int
	// Quantum is the scheduling quantum in instructions (default 64).
	Quantum int64
	// Model is the cost model (default cost.Default()).
	Model *cost.Model
	// Pack selects the migration pack mode (default PackUsed).
	Pack PackMode
	// Policy selects the migration mechanism (default PolicyIso).
	Policy MigrationPolicy
	// NoCache disables the slot cache entirely (ablation A1).
	NoCache bool
	// RecordAllocs makes the runtime sample the virtual-time latency of
	// every pm2_isomalloc and malloc call (the Figure 11 measurement).
	RecordAllocs bool
	// PreBuySlots makes every negotiation try to purchase this many
	// extra contiguous slots beyond the request, "in prevision of
	// foreseeable large allocation requests" (§4.4). Falls back to the
	// exact request when no larger run exists.
	PreBuySlots int
	// Gather selects the §4.4 bitmap-gather strategy: GatherSequential
	// (the paper's one-peer-at-a-time default), GatherBatched (one round
	// of concurrent Calls), GatherTree (binomial combining tree) or
	// GatherDelta (version-stamped incremental exchange: peers ship only
	// the bitmap words changed since the initiator's cached view).
	Gather GatherMode
	// Arbiter selects the negotiation concurrency scheme:
	// ArbiterGlobal (the paper's node-0 system-wide lock, the default),
	// ArbiterSharded (per-shard locks spread over the ranks, taken in
	// canonical order for only the shards a planned purchase touches)
	// or ArbiterOptimistic (no lock; version-stamped purchases that
	// sellers validate against their bitmap journal). See arbiter.go.
	Arbiter ArbiterMode
	// ArbiterShards overrides the shard count of the sharded arbiter
	// (default 16).
	ArbiterShards int
	// Placement is the thread-placement policy: Spawn preferences route
	// through it, and an attached load balancer (internal/loadbal)
	// shares its state. Default policy.NewNegotiation(), which never
	// reroutes a spawn — the seed's behavior.
	Placement policy.Policy
	// Convoy enables the zero-copy scatter-gather migration pipeline:
	// iso-address migrations hand their slot spans to the NIC as a
	// gather list (BIP's zero-copy long-message mode — no pack, NIC or
	// install copy is charged, only per-segment DMA setup), and a
	// balancer move of k threads to one destination travels as a single
	// convoy message paying one header and one wire latency instead of
	// k. Default off: every migration uses the paper-faithful copying
	// path, byte- and charge-identical to the seed.
	Convoy bool
	// Faults schedules crash/partition/slow-node events (internal/fault;
	// see fault.go). Default nil: a healthy cluster, with zero fault
	// machinery on any path — every trace stays byte-identical to a
	// build without the fault layer. Requires PolicyIso and Nodes >= 2.
	Faults *fault.Plan
	// HeartbeatMisses is the failure-detection lease: a crashed node is
	// declared dead after missing this many consecutive heartbeat rounds
	// (Cluster.HeartbeatTick, driven by the load balancer's period).
	// Default 2. Only consulted when Faults is set.
	HeartbeatMisses int
	// RPCTimeout is the virtual-time deadline for every protocol exchange
	// that awaits a remote reply — gather requests, purchase and lock
	// traffic, the remote-spawn LRPC. Zero (the default) means infinite:
	// no timers, no envelope changes, every trace byte-identical to a
	// build without the deadline layer. When set, a timed-out wait counts
	// Stats.RPCTimeouts and retries with deterministic capped backoff or
	// fails gracefully, and heartbeat failure detection splits into
	// suspected (routed around, reversible) vs declared dead (evacuated) —
	// see rpc.go and fault.go. Any negative value selects the cost-model
	// default (DefaultRPCTimeout, about two bitmap-sized round trips).
	RPCTimeout simtime.Time
	// Workers sets the simulation kernel's worker count. The default (0
	// or 1) is the exact serial executor; >1 runs node lanes on a worker
	// pool under the conservative time-window scheme, with all traces,
	// stats and goldens bit-identical to the serial run (the window
	// horizon is Model.WireLatencyNs, the cross-node latency floor).
	// Every gather strategy composes with Workers > 1: the free-run
	// hints the batched and tree gathers consult are lane-affine,
	// exchanged by message instead of read from peers (see gather.go).
	Workers int
}

// AllocSample is one recorded allocation.
type AllocSample struct {
	Node    int
	Size    uint32
	Iso     bool
	Latency simtime.Time
	// OK reports whether the allocation succeeded.
	OK bool
}

// avgMicros averages a latency series in simtime then converts, so
// every consumer reports the same figure.
func avgMicros(ls []simtime.Time) float64 {
	if len(ls) == 0 {
		return 0
	}
	var sum simtime.Time
	for _, l := range ls {
		sum += l
	}
	return (sum / simtime.Time(len(ls))).Micros()
}

// Stats aggregates cluster-wide measurements.
type Stats struct {
	// Migrations counts completed migrations; Latencies holds the
	// end-to-end virtual time of each (freeze to resume).
	Migrations         int
	MigrationLatencies []simtime.Time
	// MigratedBytes totals the slot-image payload bytes installed by
	// iso-address migrations (span data only, not protocol framing).
	MigratedBytes uint64
	// Convoys counts multi-thread convoy messages processed: one per
	// chConvoy message, however many threads it carried (Config.Convoy).
	Convoys int
	// Negotiations counts completed slot negotiations and their
	// latencies (critical-section entry to exit).
	Negotiations         int
	NegotiationLatencies []simtime.Time
	// NegotiationRetries counts declined purchase rounds: the initiator
	// gave secured shares back and re-gathered with fresh bitmaps.
	NegotiationRetries int
	// VersionDeclines counts purchases a seller declined because the
	// plan was stamped with a stale bitmap-journal version — the
	// optimistic arbiter's conflict signal (a subset of the declines
	// that feed NegotiationRetries).
	VersionDeclines int
	// NegotiationFailures counts negotiations that gave up — round
	// exhaustion or cluster out of contiguous space. Failed attempts are
	// counted in Negotiations but excluded from NegotiationLatencies, so
	// the latency percentiles describe successful protocol runs only.
	NegotiationFailures int
	// GatherMergedBytes totals the bitmap payload bytes gather
	// participants folded into global views — the merge term the delta
	// gather attacks: a full 7 KB per peer per round under the
	// sequential/batched/tree gathers, only the shipped delta words
	// under GatherDelta.
	GatherMergedBytes uint64
	// Defragmentations counts completed global restructurings (§4.4).
	Defragmentations int
	// Evacuations counts dead-node declarations that ran the evacuation
	// path; EvacuatedThreads totals the threads moved off dead nodes.
	Evacuations      int
	EvacuatedThreads int
	// EvacuationLatencies holds, per evacuated thread, the virtual time
	// from the death declaration to the thread's thaw on its survivor.
	EvacuationLatencies []simtime.Time
	// DetectionLatencies holds, per declared death, the virtual time
	// from the crash instant to the lease expiry that declared it.
	DetectionLatencies []simtime.Time
	// ReclaimedSlots totals the owned-free slots re-dealt from dead
	// ranks to survivors.
	ReclaimedSlots int
	// RPCTimeouts counts request/reply waits abandoned at their deadline
	// (Config.RPCTimeout): each is one timer expiry on the initiator,
	// whether the operation then retried, fell back, or failed.
	RPCTimeouts int
	// Suspicions and Rejoins count the reversible detection transitions
	// (Config.RPCTimeout only): a node marked suspected after missing
	// its lease, and a suspected node cleared after answering again.
	// RejoinLatencies holds, per rejoin, the virtual time the node spent
	// suspected — the routed-around window a healed partition costs.
	Suspicions      int
	Rejoins         int
	RejoinLatencies []simtime.Time
	// CohortSamples holds the per-request SLO records of every spawn
	// tagged through SpawnCohort, in spawn order: arrival,
	// time-to-placement and end-to-end completion per named tenant
	// cohort (see slo.go). Empty unless the serving-workload harness
	// (or another caller) tags its spawns.
	CohortSamples []CohortSample
	// Net mirrors the BIP traffic counters.
	Net bip.Stats
}

// AvgMigrationMicros returns the mean end-to-end migration latency.
func (s Stats) AvgMigrationMicros() float64 { return avgMicros(s.MigrationLatencies) }

// AvgNegotiationMicros returns the mean negotiation latency.
func (s Stats) AvgNegotiationMicros() float64 { return avgMicros(s.NegotiationLatencies) }

// Cluster is a running PM2 configuration: the replicated program image and
// one node per configured rank, in one deterministic virtual-time world.
type Cluster struct {
	cfg   Config
	eng   *simtime.Engine
	im    *isa.Image
	nw    *bip.Network
	nodes []*Node
	log   *trace.Log
	pol   *policy.Engine
	stats Stats
	// shardMap partitions the slot space for the sharded arbiter.
	shardMap core.ShardMap
	// allocSamples records allocation latencies when cfg.RecordAllocs.
	allocSamples []AllocSample
	// bufPool recycles outgoing Madeleine buffers across all of the
	// cluster's endpoints and the migration packers. Per-cluster (not
	// global) so reuse statistics are deterministic per run.
	bufPool *madeleine.Pool
	// versionDeclines attributes each optimistic-arbiter version decline
	// to the *initiator* whose plan was declined, so load reports can
	// tell the placement policy which nodes are fighting over contended
	// slot regions.
	versionDeclines []int
	// cohortByTID maps a live tagged thread to its CohortSample index so
	// the exit hook can stamp its completion (see slo.go). Lazily
	// allocated on the first SpawnCohort.
	cohortByTID map[uint32]int
	// Fault-tolerance state (fault.go), all nil/zero on a healthy
	// cluster: the installed fault plan's runtime state, the declared-
	// dead flags and per-node missed-heartbeat counters, and the count
	// of declared deaths (the fast-path gate for the down-skips).
	// suspected marks nodes routed around but not evacuated — the
	// reversible first stage of failure detection, only ever set when
	// Config.RPCTimeout is on (see fault.go).
	faults      *fault.State
	down        []bool
	suspected   []bool
	suspectedAt []simtime.Time
	missedBeats []int
	nDown       int
	nSuspected  int
	// balancer is the attached periodic balancer, when it registered
	// for checkpoint cooperation (SetBalancer); pausedBalancer holds
	// its captured round state between Checkpoint and Resume.
	balancer       BalancerCheckpointer
	pausedBalancer *BalancerCheckpoint
}

// Validate checks the configuration for structural errors. NewChecked
// runs it implicitly; it is exported so front-ends can report a bad
// configuration before building anything.
func (cfg Config) Validate() error {
	if cfg.Nodes <= 0 {
		return fmt.Errorf("pm2: cluster needs at least one node (Nodes = %d)", cfg.Nodes)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("pm2: negative kernel worker count %d", cfg.Workers)
	}
	if cfg.ArbiterShards < 0 {
		return fmt.Errorf("pm2: negative arbiter shard count %d", cfg.ArbiterShards)
	}
	if cfg.PreBuySlots < 0 {
		return fmt.Errorf("pm2: negative pre-buy slot count %d", cfg.PreBuySlots)
	}
	if cfg.HeartbeatMisses < 0 {
		return fmt.Errorf("pm2: negative heartbeat-miss threshold %d", cfg.HeartbeatMisses)
	}
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		if err := validateFaultPlan(cfg.Faults, cfg); err != nil {
			return err
		}
	}
	return nil
}

// New builds a cluster over the (sealed) program image, panicking on an
// invalid configuration. NewChecked is the error-returning variant.
func New(cfg Config, im *isa.Image) *Cluster {
	c, err := NewChecked(cfg, im)
	if err != nil {
		panic(err)
	}
	return c
}

// NewChecked builds a cluster over the (sealed) program image. Any
// configuration that passes Validate builds and runs: in particular,
// every gather strategy composes with every worker count — the
// historical Workers-vs-batched/tree restriction is gone.
func NewChecked(cfg Config, im *isa.Image) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dist == nil {
		cfg.Dist = core.RoundRobin{}
	}
	if cfg.Model == nil {
		cfg.Model = cost.Default()
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 64
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 8
	}
	if cfg.NoCache {
		cfg.CacheCap = 0
	}
	if cfg.Placement == nil {
		cfg.Placement = policy.NewNegotiation()
	}
	if cfg.ArbiterShards == 0 {
		cfg.ArbiterShards = defaultArbiterShards
	}
	if cfg.HeartbeatMisses == 0 {
		cfg.HeartbeatMisses = 2
	}
	if cfg.RPCTimeout < 0 {
		cfg.RPCTimeout = DefaultRPCTimeout(cfg.Model)
	}
	im.Seal()
	c := &Cluster{
		cfg: cfg,
		eng: simtime.NewEngine(),
		im:  im,
		log: trace.New(),
	}
	if cfg.Workers > 1 {
		c.eng.SetParallel(cfg.Workers, simtime.Time(cfg.Model.WireLatencyNs))
	}
	c.pol = policy.NewEngine(cfg.Placement, cfg.Nodes)
	c.shardMap = core.NewShardMap(layout.SlotCount, cfg.ArbiterShards)
	c.bufPool = madeleine.NewPool()
	c.versionDeclines = make([]int, cfg.Nodes)
	c.nw = bip.NewNetwork(c.eng, cfg.Model, cfg.Nodes)
	c.nodes = make([]*Node, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes[i] = newNode(c, i)
	}
	if err := c.InstallFaults(cfg.Faults); err != nil {
		return nil, err
	}
	return c, nil
}

// Placement returns the cluster's policy engine. Attached balancers use
// it so balancing rounds and spawn placement share one policy state.
func (c *Cluster) Placement() *policy.Engine { return c.pol }

// ReportLoads feeds every node's current load into the policy engine as
// a fresh sample. Spawn placement calls it implicitly; balancers call it
// once per round.
func (c *Cluster) ReportLoads() {
	now := c.eng.Now()
	for i, n := range c.nodes {
		c.pol.Report(policy.LoadReport{
			Node:            i,
			Resident:        n.sched.Threads(),
			Runnable:        n.sched.Runnable(),
			VersionDeclines: c.versionDeclines[i],
			Time:            now,
		})
	}
	// Load reports run on the ambient lane — a barrier under the parallel
	// executor — which is what lets them piggyback a full refresh of the
	// lane-affine gather-hint tables (batched/tree gathers only).
	if c.hintsOn() {
		c.refreshHintsBarrier()
	}
}

// Engine exposes the discrete-event engine (for time-based test driving).
func (c *Cluster) Engine() *simtime.Engine { return c.eng }

// ConvoyEnabled reports whether the zero-copy convoy migration pipeline
// is on (Config.Convoy). The load balancer consults it to decide whether
// a multi-thread move can travel as one message.
func (c *Cluster) ConvoyEnabled() bool { return c.cfg.Convoy }

// VersionDeclinesOf returns the cumulative count of optimistic-arbiter
// version declines node i has suffered as a negotiation initiator — the
// per-node contention signal load reports carry to the placement policy.
func (c *Cluster) VersionDeclinesOf(i int) int { return c.versionDeclines[i] }

// noteVersionDecline records one declined version-stamped purchase,
// attributed to the initiator whose plan was stale.
func (c *Cluster) noteVersionDecline(initiator int) {
	c.stats.VersionDeclines++
	if initiator >= 0 && initiator < len(c.versionDeclines) {
		c.versionDeclines[initiator]++
	}
}

// BufferPoolStats reports the cluster-wide Madeleine buffer pool's reuse
// counters (gets served, gets that reused a pooled buffer).
func (c *Cluster) BufferPoolStats() (gets, hits uint64) { return c.bufPool.Stats() }

// Image returns the replicated program image.
func (c *Cluster) Image() *isa.Image { return c.im }

// Trace returns the cluster's output log.
func (c *Cluster) Trace() *trace.Log { return c.log }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// AllocSamples returns the recorded allocation latencies (empty unless
// Config.RecordAllocs).
func (c *Cluster) AllocSamples() []AllocSample {
	return append([]AllocSample(nil), c.allocSamples...)
}

// Stats returns a copy of the aggregate measurements.
func (c *Cluster) Stats() Stats {
	s := c.stats
	s.Net = c.nw.Stats()
	s.MigrationLatencies = append([]simtime.Time(nil), c.stats.MigrationLatencies...)
	s.NegotiationLatencies = append([]simtime.Time(nil), c.stats.NegotiationLatencies...)
	s.CohortSamples = append([]CohortSample(nil), c.stats.CohortSamples...)
	s.EvacuationLatencies = append([]simtime.Time(nil), c.stats.EvacuationLatencies...)
	s.DetectionLatencies = append([]simtime.Time(nil), c.stats.DetectionLatencies...)
	s.RejoinLatencies = append([]simtime.Time(nil), c.stats.RejoinLatencies...)
	return s
}

// At schedules fn on node i's actor at the current virtual time. All
// interactions with node state must go through the actor to keep the cost
// accounting sound.
func (c *Cluster) At(i int, fn func(n *Node)) {
	n := c.nodes[i]
	n.actor.Post(c.eng.Now(), func() { fn(n) })
}

// Spawn schedules the creation of a thread running program prog (by
// name) with argument arg. Node i is the caller's preference; the
// placement policy has the final word (the default negotiation policy
// always honors the preference). If the chosen node has run out of
// slots, one is bought through the negotiation protocol first (§4.4).
func (c *Cluster) Spawn(i int, prog string, arg uint32) {
	c.spawn(i, prog, arg, -1)
}

// spawn is the shared spawn path; sample >= 0 names the CohortSample to
// stamp when the thread is placed (see slo.go).
func (c *Cluster) spawn(i int, prog string, arg uint32, sample int) {
	entry, ok := c.im.EntryOf(prog)
	if !ok {
		panic(fmt.Sprintf("pm2: unknown program %q", prog))
	}
	if policy.Reroutes(c.cfg.Placement) {
		c.ReportLoads()
		i = c.pol.PlaceSpawn(i, c.eng.Now())
	} else if c.nDown+c.nSuspected > 0 {
		// Non-rerouting policies still must not place work on a rank
		// that has been declared dead or is currently suspected.
		i = c.pol.NextLive(i)
	}
	c.At(i, func(n *Node) {
		if th, err := n.sched.Create(entry, arg); err == nil {
			tid, at := th.TID, n.actor.Now()
			n.actor.Commit(func() { c.noteCohortPlaced(sample, n.id, tid, at) })
			n.kick()
			return
		}
		n.createNegotiated(entry, arg, func(tid uint32) {
			if tid == 0 {
				panic(fmt.Sprintf("pm2: spawn %s on node %d: cluster out of slots", prog, i))
			}
			at := n.actor.Now()
			n.actor.Commit(func() { c.noteCohortPlaced(sample, n.id, tid, at) })
			n.kick()
		})
	})
}

// SpawnSync creates the thread and drives the engine until creation has
// executed, returning the thread id. Intended for test and benchmark
// setup; it pins the thread to node i, bypassing the placement policy.
func (c *Cluster) SpawnSync(i int, prog string, arg uint32) uint32 {
	entry, ok := c.im.EntryOf(prog)
	if !ok {
		panic(fmt.Sprintf("pm2: unknown program %q", prog))
	}
	var tid uint32
	done := false
	c.At(i, func(n *Node) {
		th, err := n.sched.Create(entry, arg)
		if err != nil {
			panic(fmt.Sprintf("pm2: spawn %s on node %d: %v", prog, i, err))
		}
		tid = th.TID
		done = true
		n.kick()
	})
	for !done && c.eng.Step() {
	}
	if !done {
		panic("pm2: SpawnSync never ran")
	}
	return tid
}

// Run drives the simulation until no events remain (all threads exited or
// blocked) or the step limit is reached (0 = unlimited). It returns the
// number of events executed.
func (c *Cluster) Run(limit uint64) uint64 {
	return c.eng.Run(limit)
}

// RunFor drives the simulation for d of virtual time.
func (c *Cluster) RunFor(d simtime.Time) {
	c.eng.RunUntil(c.eng.Now() + d)
}

// Now returns the current virtual time.
func (c *Cluster) Now() simtime.Time { return c.eng.Now() }

// CheckInvariants validates the cluster-wide iso-address discipline:
// no slot is owned-free by two nodes, no iso slot is mapped in two address
// spaces, and every resident thread's arena passes its structural checks.
func (c *Cluster) CheckInvariants() error {
	maps := make([]*bitmap.Bitmap, len(c.nodes))
	for i, n := range c.nodes {
		maps[i] = n.slots.Bitmap()
	}
	if i := core.CheckSingleOwnership(maps); i >= 0 {
		return fmt.Errorf("pm2: slot %d owned free by two nodes", i)
	}
	// No iso-area page mapped on two nodes.
	for s := 0; s < layout.SlotCount; s++ {
		base := layout.SlotBase(s)
		mappedOn := -1
		for _, n := range c.nodes {
			if n.space.IsMapped(base, 1) {
				if mappedOn >= 0 {
					return fmt.Errorf("pm2: slot %d mapped on nodes %d and %d", s, mappedOn, n.id)
				}
				mappedOn = n.id
			}
		}
	}
	for _, n := range c.nodes {
		if err := n.checkThreads(); err != nil {
			return err
		}
	}
	return nil
}
