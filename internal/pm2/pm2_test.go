package pm2

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/progs"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	return New(cfg, progs.NewImage())
}

// TestFig1Trace reproduces Figure 1: the stack variable migrates with the
// thread and prints the same value on both nodes.
func TestFig1Trace(t *testing.T) {
	c := newCluster(t, Config{})
	c.Spawn(0, "p1", 0)
	c.Run(0)
	want := []string{
		"[node0] value = 1",
		"[node1] value = 1",
	}
	if i := trace.Equal(c.Trace().Lines(), want); i != -1 {
		t.Fatalf("trace differs at line %d:\n%s", i, c.Trace().String())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Migrations != 1 {
		t.Fatalf("migrations = %d", c.Stats().Migrations)
	}
}

// TestFig2TraceRelocate reproduces Figure 2: under the §2 relocation
// baseline an unregistered pointer to stack data breaks after migration.
func TestFig2TraceRelocate(t *testing.T) {
	c := newCluster(t, Config{Policy: PolicyRelocate})
	c.Spawn(0, "p2", 0)
	c.Run(0)
	want := []string{
		"[node0] value = 1",
		"Segmentation fault",
	}
	if i := trace.Equal(c.Trace().Lines(), want); i != -1 {
		t.Fatalf("trace differs at line %d:\n%s", i, c.Trace().String())
	}
}

// TestFig2UnderIsoIsTransparent shows the paper's point: the same program
// is migration-safe under iso-address allocation, with no registration.
func TestFig2UnderIsoIsTransparent(t *testing.T) {
	c := newCluster(t, Config{Policy: PolicyIso})
	c.Spawn(0, "p2", 0)
	c.Run(0)
	want := []string{
		"[node0] value = 1",
		"[node1] value = 1",
	}
	if i := trace.Equal(c.Trace().Lines(), want); i != -1 {
		t.Fatalf("trace differs at line %d:\n%s", i, c.Trace().String())
	}
}

// TestFig3TraceRegisteredPointers reproduces Figure 3: with explicit
// registration the relocation baseline patches the pointer and the program
// works.
func TestFig3TraceRegisteredPointers(t *testing.T) {
	c := newCluster(t, Config{Policy: PolicyRelocate})
	c.Spawn(0, "p2r", 0)
	c.Run(0)
	want := []string{
		"[node0] value = 1",
		"[node1] value = 1",
	}
	if i := trace.Equal(c.Trace().Lines(), want); i != -1 {
		t.Fatalf("trace differs at line %d:\n%s", i, c.Trace().String())
	}
}

// TestFig4Trace reproduces Figure 4: malloc'd data does not migrate, so the
// access after migration faults — under the iso policy too, which is why
// pm2_isomalloc exists.
func TestFig4Trace(t *testing.T) {
	c := newCluster(t, Config{})
	c.Spawn(0, "p3", 0)
	c.Run(0)
	want := []string{
		"[node0] value = 1",
		"Segmentation fault",
	}
	if i := trace.Equal(c.Trace().Lines(), want); i != -1 {
		t.Fatalf("trace differs at line %d:\n%s", i, c.Trace().String())
	}
}

// TestFig7Fig8Trace reproduces Figures 7–8: the isomalloc list is traversed
// across a migration; every pointer stays valid with no fixups.
func TestFig7Fig8Trace(t *testing.T) {
	const n = 120
	c := newCluster(t, Config{})
	c.Spawn(0, "p4", n)
	c.Run(0)
	lines := c.Trace().Lines()
	if len(lines) != 1+100+1+1+(n-100) {
		t.Fatalf("got %d lines:\n%s", len(lines), strings.Join(lines[:min(len(lines), 10)], "\n"))
	}
	if !strings.HasPrefix(lines[0], "[node0] I am thread ") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	// Elements 0..99 print on node 0 with ascending odd values.
	for j := 0; j < 100; j++ {
		want := fmt.Sprintf("[node0] Element %d = %d", j, j*2+1)
		if lines[1+j] != want {
			t.Fatalf("line %d = %q, want %q", 1+j, lines[1+j], want)
		}
	}
	if lines[101] != "[node0] Initializing migration from node 0" {
		t.Fatalf("line 101 = %q", lines[101])
	}
	if lines[102] != "[node1] Arrived at node 1" {
		t.Fatalf("line 102 = %q", lines[102])
	}
	// The remaining elements print on node 1, same addresses, no fixup.
	for j := 100; j < n; j++ {
		want := fmt.Sprintf("[node1] Element %d = %d", j, j*2+1)
		if lines[103+(j-100)] != want {
			t.Fatalf("line %d = %q, want %q", 103+(j-100), lines[103+(j-100)], want)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFig9MallocCrash reproduces Figure 9: with malloc instead of
// pm2_isomalloc the traversal reads foreign heap garbage after migration
// and crashes. The destination heap is warmed with junk first, as a
// long-running process's heap would be.
func TestFig9MallocCrash(t *testing.T) {
	const n = 300
	c := newCluster(t, Config{})
	// Warm node 1's heap with stale data covering the list's addresses.
	c.Spawn(1, "heapjunk", 64*1024)
	c.Run(0)
	c.Spawn(0, "p4m", n)
	c.Run(0)
	lines := c.Trace().Lines()
	// Elements 0..99 fine on node 0, then the migration, then garbage
	// and a segmentation fault on node 1.
	if lines[len(lines)-1] != "Segmentation fault" {
		t.Fatalf("last line = %q", lines[len(lines)-1])
	}
	sawGarbage := false
	for _, l := range lines {
		if strings.HasPrefix(l, "[node1] Element 100 = ") &&
			!strings.HasPrefix(l, "[node1] Element 100 = 201") {
			sawGarbage = true
			// The junk pattern is the paper's own garbage value.
			if l != "[node1] Element 100 = -1797270816" {
				t.Errorf("garbage line = %q, want the 0x94DFD2E0 pattern", l)
			}
		}
		if strings.HasPrefix(l, "[node1] Element") && strings.Contains(l, "= 201") {
			t.Errorf("node 1 read a correct value through a dead heap: %q", l)
		}
	}
	if !sawGarbage {
		t.Fatalf("expected a garbage element before the fault:\n%s", strings.Join(lines[len(lines)-5:], "\n"))
	}
}

// TestPingPongMigrationUnder75us reproduces the paper's §5 headline: a
// thread with no static data migrates between two Myrinet nodes in less
// than 75 µs.
func TestPingPongMigrationUnder75us(t *testing.T) {
	const hops = 100
	c := newCluster(t, Config{})
	c.Spawn(0, "pingpong", hops)
	c.Run(0)
	st := c.Stats()
	if st.Migrations != hops {
		t.Fatalf("migrations = %d, want %d", st.Migrations, hops)
	}
	var sum simtime.Time
	var worst simtime.Time
	for _, l := range st.MigrationLatencies {
		sum += l
		if l > worst {
			worst = l
		}
	}
	avg := sum / simtime.Time(len(st.MigrationLatencies))
	t.Logf("migration latency: avg %v, worst %v", avg, worst)
	if avg >= 75*simtime.Microsecond {
		t.Errorf("average migration latency %v, paper reports < 75µs", avg)
	}
	if worst >= 100*simtime.Microsecond {
		t.Errorf("worst migration latency %v", worst)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNegotiationTriggeredByMultiSlotAlloc: with round-robin slots on two
// nodes, a multi-slot pm2_isomalloc cannot be local (no node owns two
// contiguous slots) and must negotiate — and still succeed transparently.
func TestNegotiationTriggeredByMultiSlotAlloc(t *testing.T) {
	c2 := newCluster(t, Config{RecordAllocs: true})
	c2.At(0, func(n *Node) {
		th, err := n.sched.Create(mustEntry(c2, "allocone"), 0)
		if err != nil {
			t.Error(err)
			return
		}
		th.Regs.R[1] = 100_000 // needs 2 contiguous slots
		th.Regs.R[2] = 0       // isomalloc
		n.kick()
	})
	c2.Run(0)
	st := c2.Stats()
	if st.Negotiations != 1 {
		t.Fatalf("negotiations = %d, want 1", st.Negotiations)
	}
	samples := c2.AllocSamples()
	if len(samples) != 1 || !samples[0].OK || !samples[0].Iso {
		t.Fatalf("samples = %+v", samples)
	}
	if err := c2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("negotiated alloc latency: %v (negotiation %v)", samples[0].Latency, st.NegotiationLatencies[0])
}

func mustEntry(c *Cluster, prog string) uint32 {
	e, ok := c.Image().EntryOf(prog)
	if !ok {
		panic("unknown program " + prog)
	}
	return e
}

// TestNegotiationCostScaling reproduces the §5 claim: negotiation costs
// about 255 µs on two nodes, plus about 165 µs per extra node (sequential
// bitmap gather).
func TestNegotiationCostScaling(t *testing.T) {
	costOf := func(nodes int) simtime.Time {
		c := New(Config{Nodes: nodes}, progs.NewImage())
		c.At(0, func(n *Node) {
			th, err := n.sched.Create(mustEntry(c, "allocone"), 0)
			if err != nil {
				t.Fatal(err)
			}
			th.Regs.R[1] = 100_000
			n.kick()
		})
		c.Run(0)
		st := c.Stats()
		if st.Negotiations != 1 {
			t.Fatalf("nodes=%d: negotiations = %d", nodes, st.Negotiations)
		}
		return st.NegotiationLatencies[0]
	}
	c2 := costOf(2)
	c3 := costOf(3)
	c4 := costOf(4)
	c8 := costOf(8)
	t.Logf("negotiation: 2 nodes %v, 3 nodes %v, 4 nodes %v, 8 nodes %v", c2, c3, c4, c8)
	t.Logf("per extra node: %v, %v", c3-c2, c4-c3)

	if c2 < 150*simtime.Microsecond || c2 > 400*simtime.Microsecond {
		t.Errorf("2-node negotiation %v, paper reports ≈255µs", c2)
	}
	d1, d2 := c3-c2, c4-c3
	for _, d := range []simtime.Time{d1, d2} {
		if d < 100*simtime.Microsecond || d > 250*simtime.Microsecond {
			t.Errorf("per-extra-node cost %v, paper reports ≈165µs", d)
		}
	}
	// Linear scaling: the 8-node extrapolation should hold.
	predicted := c2 + 6*d1
	diff := c8 - predicted
	if diff < 0 {
		diff = -diff
	}
	if diff > predicted/5 {
		t.Errorf("8-node negotiation %v deviates from linear prediction %v", c8, predicted)
	}
}

// TestWorkerMigratesWithItsData: the worker keeps a private isomalloc cell
// accessed through a pointer before and after a preemptive migration.
func TestWorkerPreemptiveMigration(t *testing.T) {
	c := newCluster(t, Config{})
	tid := c.SpawnSync(0, "worker", 10_000)
	// Let it run a little, then preempt it from "outside the
	// application" (the paper's generic load balancer scenario).
	c.RunFor(2 * simtime.Millisecond)
	c.At(0, func(n *Node) {
		if !n.sched.RequestMigration(tid, 1) {
			t.Error("thread not found for preemptive migration")
		}
	})
	c.Run(0)
	lines := c.Trace().Lines()
	if len(lines) != 1 || !strings.HasSuffix(lines[0], "finished on node 1") {
		t.Fatalf("trace = %q", lines)
	}
	if c.Stats().Migrations != 1 {
		t.Fatalf("migrations = %d", c.Stats().Migrations)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationIsVerbatimUnderWholeSlotPack: with whole-slot packing the
// migrated slots are byte-identical at the destination.
func TestWholeSlotPackMode(t *testing.T) {
	for _, mode := range []PackMode{PackUsed, PackWhole} {
		c := New(Config{Nodes: 2, Pack: mode}, progs.NewImage())
		c.Spawn(0, "p4", 150)
		c.Run(0)
		lines := c.Trace().Lines()
		if len(lines) != 153 {
			t.Fatalf("pack=%v: %d lines", mode, len(lines))
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("pack=%v: %v", mode, err)
		}
	}
}

// TestRemoteSpawn exercises the LRPC-style remote thread creation.
func TestRemoteSpawn(t *testing.T) {
	im := progs.NewImage()
	// A driver that spawns p1's entry on node 1 and waits for the ack.
	mustAsm(im, `
.program driver
.string fmt "spawned tid %x on node 1\n"
main:
    loadi r1, 1          ; dest node
    loadi r2, p1         ; entry address of program p1
    loadi r3, 0          ; arg
    callb spawn_remote
    mov   r2, r0
    loadi r1, fmt
    callb printf
    halt
`)
	c := New(Config{Nodes: 2}, im)
	c.Spawn(0, "driver", 0)
	c.Run(0)
	lines := c.Trace().Lines()
	// The remote thread is p1 starting on node 1: it prints value = 1 on
	// node 1, migrates to node 1 (no-op, already there), prints again.
	var sawSpawn, sawP1 int
	for _, l := range lines {
		if strings.HasPrefix(l, "[node0] spawned tid") {
			sawSpawn++
		}
		if l == "[node1] value = 1" {
			sawP1++
		}
	}
	if sawSpawn != 1 || sawP1 != 2 {
		t.Fatalf("trace:\n%s", c.Trace().String())
	}
}

func mustAsm(im *isa.Image, src string) { asm.MustAssemble(im, src) }

// TestDeterminism: identical configurations produce identical traces and
// identical final virtual times.
func TestDeterminism(t *testing.T) {
	run := func() (string, simtime.Time, Stats) {
		c := newCluster(t, Config{})
		c.Spawn(0, "p4", 150)
		c.Spawn(1, "worker", 5000)
		c.Spawn(0, "worker", 3000)
		c.Run(0)
		return c.Trace().String(), c.Now(), c.Stats()
	}
	t1, n1, s1 := run()
	t2, n2, s2 := run()
	if t1 != t2 {
		t.Fatal("traces differ between identical runs")
	}
	if n1 != n2 {
		t.Fatalf("final times differ: %v vs %v", n1, n2)
	}
	if s1.Migrations != s2.Migrations || s1.Net != s2.Net {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
}

// TestManyThreadsStress runs a batch of workers over 4 nodes with periodic
// preemptive migrations and validates the global invariants afterwards.
func TestManyThreadsStress(t *testing.T) {
	c := New(Config{Nodes: 4}, progs.NewImage())
	var tids []uint32
	for i := 0; i < 24; i++ {
		tids = append(tids, c.SpawnSync(i%4, "worker", 20_000))
	}
	// Preemptively bounce threads around while they run.
	for round := 0; round < 6; round++ {
		c.RunFor(3 * simtime.Millisecond)
		for i, tid := range tids {
			src := -1
			for nid := 0; nid < 4; nid++ {
				if _, ok := c.Node(nid).sched.Lookup(tid); ok {
					src = nid
					break
				}
			}
			if src < 0 {
				continue // finished or in flight
			}
			dst := (src + 1 + i%3) % 4
			if dst == src {
				continue
			}
			func(src int, tid uint32, dst int) {
				c.At(src, func(n *Node) { n.sched.RequestMigration(tid, dst) })
			}(src, tid, dst)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	c.Run(0)
	lines := c.Trace().Lines()
	if len(lines) != 24 {
		t.Fatalf("finished workers = %d, want 24:\n%s", len(lines), c.Trace().String())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Migrations == 0 {
		t.Fatal("stress produced no migrations")
	}
	// All slots eventually return to the nodes: every thread died, so
	// cluster-wide ownership must cover every slot exactly once.
	total := 0
	for i := 0; i < 4; i++ {
		total += c.Node(i).Slots().OwnedFree()
	}
	if total != slotCountForTest() {
		t.Fatalf("owned slots total %d", total)
	}
}

func slotCountForTest() int { return 57344 }
