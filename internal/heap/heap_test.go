package heap

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/layout"
	"repro/internal/simtime"
	"repro/internal/vmem"
)

type nop struct{}

func (nop) Charge(simtime.Time) {}

func newHeap() *Heap {
	return New(vmem.NewSpace(), nop{}, nil)
}

func TestMallocBasic(t *testing.T) {
	h := newHeap()
	a, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if !layout.InHeap(a) {
		t.Fatalf("addr %#x outside heap region", a)
	}
	if a%8 != 0 {
		t.Fatalf("addr %#x not aligned", a)
	}
	data := bytes.Repeat([]byte{0x5A}, 100)
	if err := h.sp.Write(a, data); err != nil {
		t.Fatal(err)
	}
	got, _ := h.sp.ReadBytes(a, 100)
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMallocDistinct(t *testing.T) {
	h := newHeap()
	type rec struct {
		a Addr
		n uint32
	}
	var all []rec
	for i := 0; i < 100; i++ {
		n := uint32(8 + 13*i)
		a, err := h.Malloc(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range all {
			if a < r.a+Addr(r.n) && r.a < a+Addr(n) {
				t.Fatalf("overlap %#x and %#x", r.a, a)
			}
		}
		all = append(all, rec{a, n})
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := newHeap()
	a, _ := h.Malloc(500)
	if _, err := h.Malloc(100); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := h.Malloc(400)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("first-fit reuse failed: got %#x want %#x", b, a)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeErrors(t *testing.T) {
	h := newHeap()
	a, _ := h.Malloc(64)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Fatal("double free must fail")
	}
	if err := h.Free(0x100); err == nil {
		t.Fatal("free outside heap must fail")
	}
	if err := h.Free(layout.IsoBase); err == nil {
		t.Fatal("free of iso address must fail")
	}
}

func TestCoalescing(t *testing.T) {
	h := newHeap()
	var a [4]Addr
	for i := range a {
		a[i], _ = h.Malloc(256)
	}
	// Free in an order that exercises forward, backward, and both-sides
	// coalescing.
	for _, i := range []int{0, 2, 1, 3} {
		if err := h.Free(a[i]); err != nil {
			t.Fatal(err)
		}
		if err := h.Check(); err != nil {
			t.Fatalf("after freeing %d: %v", i, err)
		}
	}
	// Everything merged: next alloc of the combined size reuses block 0.
	big, err := h.Malloc(4 * 256)
	if err != nil {
		t.Fatal(err)
	}
	if big != a[0] {
		t.Fatalf("coalesced reuse = %#x, want %#x", big, a[0])
	}
}

func TestBrkGrowsInPages(t *testing.T) {
	h := newHeap()
	if h.Brk() != layout.HeapBase {
		t.Fatal("initial brk wrong")
	}
	h.Malloc(10)
	if h.Brk() != layout.HeapBase+layout.PageSize {
		t.Fatalf("brk = %#x, want one page", h.Brk())
	}
	h.Malloc(layout.PageSize * 3)
	if h.Brk()%layout.PageSize != 0 {
		t.Fatal("brk not page aligned")
	}
}

func TestMallocZeroFails(t *testing.T) {
	h := newHeap()
	if _, err := h.Malloc(0); err == nil {
		t.Fatal("malloc(0) must fail")
	}
}

func TestExhaustion(t *testing.T) {
	h := newHeap()
	// The heap region is 352 MB; a 400 MB request must fail cleanly.
	if _, err := h.Malloc(400 * 1024 * 1024); err == nil {
		t.Fatal("oversized malloc must fail")
	}
	// And the heap is still usable.
	if _, err := h.Malloc(64); err != nil {
		t.Fatal(err)
	}
}

func TestLargeAllocation(t *testing.T) {
	h := newHeap()
	a, err := h.Malloc(8 * 1024 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.sp.Store32(a+8*1024*1024-4, 0xFEED); err != nil {
		t.Fatal(err)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomStress(t *testing.T) {
	h := newHeap()
	rng := rand.New(rand.NewSource(3))
	type rec struct {
		a    Addr
		data []byte
	}
	var live []rec
	for step := 0; step < 3000; step++ {
		if rng.Intn(100) < 60 || len(live) == 0 {
			n := uint32(1 + rng.Intn(5000))
			a, err := h.Malloc(n)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			d := make([]byte, n)
			rng.Read(d)
			h.sp.Write(a, d)
			live = append(live, rec{a, d})
		} else {
			i := rng.Intn(len(live))
			got, err := h.sp.ReadBytes(live[i].a, len(live[i].data))
			if err != nil || !bytes.Equal(got, live[i].data) {
				t.Fatalf("step %d: block %#x corrupted", step, live[i].a)
			}
			if err := h.Free(live[i].a); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%100 == 0 {
			if err := h.Check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	allocs, frees := h.Counts()
	if allocs == 0 || frees == 0 {
		t.Fatal("stress did nothing")
	}
}

func TestHeapsAreNodeLocal(t *testing.T) {
	// The core failure mode of Figures 4/9: an address malloc'd on one
	// node is unmapped on another node's space.
	h0 := newHeap()
	h1 := newHeap()
	a, _ := h0.Malloc(100)
	if h1.sp.IsMapped(a, 4) {
		t.Fatal("fresh node 1 should not have node 0's heap mapped")
	}
	if _, err := h1.sp.Load32(a); !vmem.IsSegfault(err) {
		t.Fatalf("expected segfault, got %v", err)
	}
}
